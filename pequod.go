// Package pequod is a Go implementation of Pequod, the distributed
// application-level key-value cache with cache joins from
//
//	Kate, Kohler, Kester, Narula, Mao, Morris.
//	"Easy Freshness with Pequod Cache Joins." NSDI '14.
//
// A cache join declaratively defines computed data in terms of simple
// transformations of base data; Pequod computes joined ranges on demand,
// keeps them fresh with eager incremental maintenance and lazy
// invalidation, and serves them with ordinary ordered key-value reads.
// The paper's running example, the Twip timeline join, is written
//
//	t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>
//
// and makes the scan of [t|ann|, t|ann}) return ann's timeline, computed
// from her subscriptions (s|…) and her followees' posts (p|…), kept up
// to date as posts and subscriptions change.
//
// # The Store interface
//
// Applications talk to Pequod through one interface, Store — context-
// aware, error-returning, with pipelined batch forms — implemented by
// all three deployment shapes:
//
//   - Embedded: NewCache returns a thread-safe in-process Cache.
//   - Networked: NewServer/ListenAndServe + DialContext, speaking a
//     compact binary protocol with pipelining and per-call deadlines.
//   - Distributed: NewCluster connects to multiple servers with
//     key-range partitioning. The Cluster owns the routing: point ops
//     go to the key's home server, cross-server scans fan out
//     concurrently and merge, and installing joins wires cross-server
//     base-data subscriptions with asynchronous update notification
//     (eventually consistent; Quiesce settles it). The partition is
//     live: Cluster.MoveBound migrates a key range between servers
//     without downtime, and Cluster.StartRebalancer watches per-server
//     load and moves hot ranges itself — servers publish a versioned
//     cluster map and re-validate ownership per request, so clients
//     (even stale ones) re-route and retry instead of losing writes.
//
// # Concurrency
//
// Each core engine is single-writer, like the paper's event-driven
// server, but a Cache or Server hosts a pool of them partitioned by key
// range (§2.4, §5.5 scaled down into one process): pass WithShards /
// WithBounds to NewCache, or set ServerConfig.Shards/Bounds. Operations
// lock only the shard owning their key, and cross-shard scans fan out
// concurrently, so read throughput scales with shards on a multi-core
// machine. Joins run on every shard; base writes to join source tables
// are forwarded between shards asynchronously, in owner order — the same
// eventual-consistency model as the paper's cross-server subscriptions.
// Quiesce waits for that propagation to settle. The default is one
// shard, which is fully synchronous.
//
// To verify a checkout, run the tier-1 gate:
//
//	go build ./... && go test ./...
//
// See DESIGN.md for the architecture (Store, Cache, Client, Cluster,
// and the shard pool); bench_test.go and cmd/repro reproduce the
// paper's evaluation.
package pequod

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pequod/internal/backdb"
	"pequod/internal/client"
	"pequod/internal/cluster"
	"pequod/internal/core"
	"pequod/internal/freshness"
	"pequod/internal/join"
	"pequod/internal/perrs"
	"pequod/internal/rpc"
	"pequod/internal/server"
	"pequod/internal/shard"
)

// KV is one key-value pair in a scan result.
type KV = core.KV

// Options configure a Cache or a Server's engine; the zero value enables
// all of the paper's optimizations and never evicts.
type Options = core.Options

// Stats are engine activity counters.
type Stats = core.Stats

// ServerConfig configures a networked server.
type ServerConfig = server.Config

// Server is a networked Pequod cache server.
type Server = server.Server

// DB is an in-memory stand-in for the backing database of a write-around
// deployment; see Server.AttachDB.
type DB = backdb.DB

// ErrClosed is returned for operations on a closed networked store.
var ErrClosed = client.ErrClosed

// NewServer creates a networked server. Call Start (loopback, test
// convenience), Serve, or ListenAndServe on the result.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewDB creates a backing database for write-around deployments.
func NewDB() *DB { return backdb.New() }

// ParseJoins parses a semicolon/newline-separated cache-join
// specification without installing it (syntax checking, tooling).
func ParseJoins(text string) error {
	_, err := join.ParseAll(text)
	return err
}

// PrefixEnd returns the smallest key greater than every key with the
// given prefix — the paper's "t|ann|+" bound, spelled "t|ann}".
func PrefixEnd(prefix string) string {
	return keysPrefixEnd(prefix)
}

// WithFreshness returns a context carrying a staleness budget for the
// reads issued under it (Get/Scan/Count and their batch forms, on every
// deployment shape). A budget maxStale > 0 lets the store answer from
// its current view when all deferred maintenance covering the read —
// queued cross-shard forwards, unapplied lazy invalidation logs, dirty
// sub-intervals from range-granular invalidation — is younger than
// maxStale; anything older is applied first, exactly as a fresh read
// would. Bounded reads may return old state, never absent state: data
// that was never computed is computed fresh regardless of budget.
// maxStale <= 0 clears the budget (fully fresh, the default).
//
// On networked deployments the budget travels with each request frame
// and is re-stamped per retry, so re-routing around a migration or a
// failed member preserves it.
func WithFreshness(ctx context.Context, maxStale time.Duration) context.Context {
	return freshness.WithBudget(ctx, maxStale)
}

// FreshnessOf returns ctx's staleness budget (0 = fully fresh).
func FreshnessOf(ctx context.Context) time.Duration {
	return freshness.Budget(ctx)
}

// ctxDeadline extracts a context's deadline as the zero-able time the
// shard pool understands.
func ctxDeadline(ctx context.Context) time.Time {
	dl, _ := ctx.Deadline()
	return dl
}

// ctxErr maps a pool deadline failure back onto the context's own error
// when the deadline came from the context, preserving the over-budget
// sentinel so bounded-read failures stay matchable.
func ctxErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		if errors.Is(err, perrs.ErrOverBudget) {
			return fmt.Errorf("%w: %w", perrs.ErrOverBudget, cerr)
		}
		return cerr
	}
	return err
}

// ---------------------------------------------------------------------
// Embedded deployment: Cache
// ---------------------------------------------------------------------

// CacheOption tunes an embedded Cache beyond the engine Options — shard
// count and partition bounds.
type CacheOption func(*shard.Config)

// WithShards runs the cache as n partitioned engines served
// concurrently (default 1). Pair with WithBounds: without it the key
// space is split evenly by 16-bit prefix, which only balances uniformly
// distributed binary keys — ASCII table-prefixed keys ("t|ann|...")
// cluster onto one shard.
func WithShards(n int) CacheOption {
	return func(c *shard.Config) { c.Shards = n }
}

// WithBounds sets the partition split points between shards: shard i
// owns [bounds[i-1], bounds[i]). n bounds imply n+1 shards; combine with
// WithShards only if the counts agree. partition.UserBounds builds
// bounds for the Twip-style zero-padded user keyspace.
func WithBounds(bounds ...string) CacheOption {
	return func(c *shard.Config) { c.Bounds = append([]string(nil), bounds...) }
}

// Rebalance configures the load-aware shard rebalancer; the zero value
// picks sensible defaults for every knob (100ms sampling interval, a
// 1.5x hot/mean trigger ratio).
type Rebalance = shard.Rebalance

// RebalanceStats snapshots rebalancer activity: migrations run, rows
// moved, the live partition bounds, and each shard's recent load.
type RebalanceStats = shard.RebalanceStats

// WithRebalance enables load-aware rebalancing on a multi-shard cache:
// per-shard load is sampled into a moving average and hot key ranges
// migrate live to cooler neighboring shards, with readers and writers
// rerouting seamlessly. The initial bounds then need not anticipate the
// workload — a skewed (Zipf-like) read mix no longer pins one shard at
// its ceiling. No-op for single-shard caches.
func WithRebalance(rb Rebalance) CacheOption {
	return func(c *shard.Config) { c.Rebalance = &rb }
}

// Cache is an embedded, thread-safe Pequod cache: the full cache-join
// machinery without the network, over a pool of one or more partitioned
// engines. A Cache is what one server process hosts; applications
// embedding Pequod use it directly. It implements Store with thin
// adapters over the shard pool; context deadlines bound the waits on
// outstanding base-data loads.
type Cache struct {
	p *shard.Pool
}

// NewCache returns an embedded cache, or an error when the shard
// options do not form a valid partition (mismatched counts, unsorted
// bounds).
func NewCache(opts Options, extra ...CacheOption) (*Cache, error) {
	cfg := shard.Config{Engine: opts}
	for _, o := range extra {
		o(&cfg)
	}
	p, err := shard.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Cache{p: p}, nil
}

// New returns an embedded cache, panicking on invalid shard options.
//
// Deprecated: use NewCache, which returns the configuration error
// instead of panicking.
func New(opts Options, extra ...CacheOption) *Cache {
	c, err := NewCache(opts, extra...)
	if err != nil {
		panic("pequod: " + err.Error())
	}
	return c
}

// Shards returns the number of partitioned engines serving this cache.
func (c *Cache) Shards() int { return c.p.NumShards() }

// Install parses and installs cache joins ("add-join", §3) on every
// shard.
func (c *Cache) Install(ctx context.Context, joins string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.p.InstallText(joins)
}

// Put stores value under key and runs incremental view maintenance on
// the owning shard, forwarding source-table writes to sibling shards.
func (c *Cache) Put(ctx context.Context, key, value string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.p.Put(key, value)
	return nil
}

// Remove deletes key, reporting whether it existed.
func (c *Cache) Remove(ctx context.Context, key string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return c.p.Remove(key), nil
}

// Get returns the value under key, computing covering joins on demand.
// A staleness budget on ctx (WithFreshness) may serve the read from the
// current view, skipping deferred maintenance younger than the budget.
func (c *Cache) Get(ctx context.Context, key string) (string, bool, error) {
	if err := ctx.Err(); err != nil {
		return "", false, err
	}
	v, ok, err := c.p.GetBounded(key, freshness.Budget(ctx), ctxDeadline(ctx))
	return v, ok, ctxErr(ctx, err)
}

// Scan returns up to limit (0 = all) pairs in [lo, hi), computing
// overlapping joins on demand; cross-shard ranges are scanned
// concurrently.
func (c *Cache) Scan(ctx context.Context, lo, hi string, limit int) ([]KV, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	kvs, err := c.p.ScanBounded(lo, hi, limit, nil, nil, freshness.Budget(ctx), ctxDeadline(ctx))
	return kvs, ctxErr(ctx, err)
}

// Count returns the number of keys in [lo, hi) after join computation.
func (c *Cache) Count(ctx context.Context, lo, hi string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	n, err := c.p.CountBounded(lo, hi, freshness.Budget(ctx), ctxDeadline(ctx))
	return int64(n), ctxErr(ctx, err)
}

// GetBatch fetches many keys; results align with keys.
func (c *Cache) GetBatch(ctx context.Context, keys []string) ([]Lookup, error) {
	out := make([]Lookup, len(keys))
	for i, k := range keys {
		v, ok, err := c.Get(ctx, k)
		if err != nil {
			return nil, err
		}
		out[i] = Lookup{Value: v, Found: ok}
	}
	return out, nil
}

// PutBatch stores many pairs in order.
func (c *Cache) PutBatch(ctx context.Context, pairs []KV) error {
	for _, kv := range pairs {
		if err := c.Put(ctx, kv.Key, kv.Value); err != nil {
			return err
		}
	}
	return nil
}

// ScanBatch runs several range scans, each with its own limit budget.
func (c *Cache) ScanBatch(ctx context.Context, ranges []Range, limit int) ([][]KV, error) {
	out := make([][]KV, len(ranges))
	for i, r := range ranges {
		kvs, err := c.Scan(ctx, r.Lo, r.Hi, limit)
		if err != nil {
			return nil, err
		}
		out[i] = kvs
	}
	return out, nil
}

// SetSubtableDepth marks a natural key boundary for a table (§4.1).
func (c *Cache) SetSubtableDepth(table string, depth int) {
	c.p.SetSubtableDepth(table, depth)
}

// RebalanceStats snapshots the rebalancer's activity and the current
// partition. Meaningful on multi-shard caches built WithRebalance, but
// always safe to call (Enabled reports whether the rebalancer runs).
func (c *Cache) RebalanceStats() RebalanceStats {
	return c.p.RebalanceStats()
}

// MoveBound forces one live boundary migration (operators and tests;
// the rebalancer normally decides moves itself). Bound index i divides
// shard i from shard i+1.
func (c *Cache) MoveBound(i int, bound string) error {
	return c.p.MoveBound(i, bound)
}

// Stats snapshots the engine counters, summed across shards.
func (c *Cache) Stats(ctx context.Context) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	return c.p.Stats(), nil
}

// Bytes returns the approximate memory footprint of the cache.
func (c *Cache) Bytes() int64 {
	return c.p.Bytes()
}

// Len returns the number of cached keys (base + computed + replicated).
func (c *Cache) Len() int {
	return c.p.Len()
}

// Quiesce blocks until cross-shard source replication has settled: after
// it returns, reads anywhere see every write issued before the call. A
// single-shard cache is always settled.
func (c *Cache) Quiesce(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.p.Quiesce()
	return nil
}

// Close stops the cache's background shard appliers. Only multi-shard
// caches run goroutines; closing a single-shard cache is a no-op and
// using a cache after Close is not allowed.
func (c *Cache) Close() error {
	c.p.Close()
	return nil
}

// Pool exposes the shard pool for benchmarks and tests that need the
// raw, context-free surface.
func (c *Cache) Pool() *shard.Pool { return c.p }

// ---------------------------------------------------------------------
// Networked deployment: Client
// ---------------------------------------------------------------------

// Client is a connection to one Server, implementing Store over the
// pipelined binary protocol: methods are safe for concurrent use,
// requests from concurrent callers pipeline on the single connection,
// context deadlines travel with each request (the server bounds its
// blocking work by them), and cancellation fails the call fast while
// leaving the connection usable.
type Client struct {
	raw *client.Client
}

// Dial connects to a server, bounding the attempt by a default connect
// timeout.
//
// Deprecated: use DialContext, which makes the bound explicit.
func Dial(addr string) (*Client, error) {
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{raw: c}, nil
}

// DialContext connects to a server under ctx: cancellation or deadline
// expiry aborts the connection attempt.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	c, err := client.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &Client{raw: c}, nil
}

// Raw returns the low-level pipelined client (async futures, notify
// hooks) for callers that outgrow Store.
func (c *Client) Raw() *client.Client { return c.raw }

// RPCs reports the number of requests sent on this connection; the §5.2
// comparison uses it to show client-managed systems' RPC amplification.
func (c *Client) RPCs() int64 { return c.raw.RPCs() }

// Close shuts the connection down; outstanding calls fail.
func (c *Client) Close() error { return c.raw.Close() }

// Get returns the value under key.
func (c *Client) Get(ctx context.Context, key string) (string, bool, error) {
	m, err := c.raw.Do(ctx, &rpc.Message{Type: rpc.MsgGet, Key: key})
	if err != nil {
		return "", false, err
	}
	return m.Value, m.Found, nil
}

// Put stores value under key.
func (c *Client) Put(ctx context.Context, key, value string) error {
	_, err := c.raw.Do(ctx, &rpc.Message{Type: rpc.MsgPut, Key: key, Value: value})
	return err
}

// Remove deletes key, reporting whether it existed.
func (c *Client) Remove(ctx context.Context, key string) (bool, error) {
	m, err := c.raw.Do(ctx, &rpc.Message{Type: rpc.MsgRemove, Key: key})
	if err != nil {
		return false, err
	}
	return m.Found, nil
}

// Scan returns up to limit (0 = all) pairs from [lo, hi).
func (c *Client) Scan(ctx context.Context, lo, hi string, limit int) ([]KV, error) {
	m, err := c.raw.Do(ctx, &rpc.Message{Type: rpc.MsgScan, Lo: lo, Hi: hi, Limit: limit})
	if err != nil {
		return nil, err
	}
	return m.KVs, nil
}

// Count returns the number of keys in [lo, hi).
func (c *Client) Count(ctx context.Context, lo, hi string) (int64, error) {
	m, err := c.raw.Do(ctx, &rpc.Message{Type: rpc.MsgCount, Lo: lo, Hi: hi})
	if err != nil {
		return 0, err
	}
	return m.Count, nil
}

// Install installs cache joins ("add-join" RPC, §3).
func (c *Client) Install(ctx context.Context, joins string) error {
	_, err := c.raw.Do(ctx, &rpc.Message{Type: rpc.MsgAddJoin, Text: joins})
	return err
}

// GetBatch fetches many keys in one pipelined burst: every request is
// sent before any reply is awaited.
func (c *Client) GetBatch(ctx context.Context, keys []string) ([]Lookup, error) {
	futs := make([]*client.Future, len(keys))
	for i, k := range keys {
		futs[i] = c.raw.Send(ctx, &rpc.Message{Type: rpc.MsgGet, Key: k})
	}
	replies, err := client.CollectReplies(ctx, futs)
	if err != nil {
		return nil, err
	}
	out := make([]Lookup, len(replies))
	for i, m := range replies {
		out[i] = Lookup{Value: m.Value, Found: m.Found}
	}
	return out, nil
}

// PutBatch stores many pairs in one pipelined burst, applied in order.
func (c *Client) PutBatch(ctx context.Context, pairs []KV) error {
	futs := make([]*client.Future, len(pairs))
	for i, kv := range pairs {
		futs[i] = c.raw.Send(ctx, &rpc.Message{Type: rpc.MsgPut, Key: kv.Key, Value: kv.Value})
	}
	return client.WaitAll(ctx, futs)
}

// ScanBatch runs several range scans in one pipelined burst, each with
// its own limit budget.
func (c *Client) ScanBatch(ctx context.Context, ranges []Range, limit int) ([][]KV, error) {
	futs := make([]*client.Future, len(ranges))
	for i, r := range ranges {
		futs[i] = c.raw.Send(ctx, &rpc.Message{Type: rpc.MsgScan, Lo: r.Lo, Hi: r.Hi, Limit: limit})
	}
	replies, err := client.CollectReplies(ctx, futs)
	if err != nil {
		return nil, err
	}
	out := make([][]KV, len(replies))
	for i, m := range replies {
		out[i] = m.KVs
	}
	return out, nil
}

// Stats fetches the server's engine counters, summed across its shards.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	return c.raw.Stats(ctx)
}

// Stat returns the server's raw JSON statistics snapshot (name, shard
// count, entries, bytes, counters).
func (c *Client) Stat(ctx context.Context) (string, error) {
	m, err := c.raw.Do(ctx, &rpc.Message{Type: rpc.MsgStat})
	if err != nil {
		return "", err
	}
	return m.Value, nil
}

// SetSubtableDepth configures a table's subtable boundary (§4.1).
func (c *Client) SetSubtableDepth(ctx context.Context, table string, depth int) error {
	_, err := c.raw.Do(ctx, &rpc.Message{Type: rpc.MsgSetSubtable, Table: table, Depth: depth})
	return err
}

// Quiesce blocks until replication visible to the server has settled;
// see Store.Quiesce.
func (c *Client) Quiesce(ctx context.Context) error {
	return c.raw.Quiesce(ctx)
}

// ---------------------------------------------------------------------
// Distributed deployment: Cluster
// ---------------------------------------------------------------------

// Cluster is a client for a partitioned set of servers that owns the
// key routing: point operations go to the key's home server, range
// operations split by owner and fan out concurrently, batches pipeline
// per server, and installing joins wires the cross-server base-data
// subscriptions that keep computed ranges fresh (§2.4). It implements
// Store.
type Cluster = cluster.Cluster

// ClusterConfig describes the partition of the key space and the member
// serving each range; see NewCluster.
type ClusterConfig = cluster.Config

// NewCluster connects to every member of a partitioned deployment and,
// if cfg.Joins is set, installs the joins everywhere and wires the
// subscription mesh before returning.
func NewCluster(ctx context.Context, cfg ClusterConfig) (*Cluster, error) {
	return cluster.New(ctx, cfg)
}
