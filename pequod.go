// Package pequod is a Go implementation of Pequod, the distributed
// application-level key-value cache with cache joins from
//
//	Kate, Kohler, Kester, Narula, Mao, Morris.
//	"Easy Freshness with Pequod Cache Joins." NSDI '14.
//
// A cache join declaratively defines computed data in terms of simple
// transformations of base data; Pequod computes joined ranges on demand,
// keeps them fresh with eager incremental maintenance and lazy
// invalidation, and serves them with ordinary ordered key-value reads.
// The paper's running example, the Twip timeline join, is written
//
//	t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>
//
// and makes the scan of [t|ann|, t|ann}) return ann's timeline, computed
// from her subscriptions (s|…) and her followees' posts (p|…), kept up
// to date as posts and subscriptions change.
//
// Three deployment shapes are supported:
//
//   - Embedded: New() returns a thread-safe in-process Cache.
//   - Networked: NewServer/ListenAndServe + Dial, speaking a compact
//     binary protocol with pipelining.
//   - Distributed: multiple servers with key-range partitioning,
//     cross-server base-data subscriptions, and asynchronous update
//     notification (eventually consistent), plus an optional
//     write-around backing database.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package pequod

import (
	"sync"

	"pequod/internal/backdb"
	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/join"
	"pequod/internal/server"
)

// KV is one key-value pair in a scan result.
type KV = core.KV

// Options configure a Cache or a Server's engine; the zero value enables
// all of the paper's optimizations and never evicts.
type Options = core.Options

// Stats are engine activity counters.
type Stats = core.Stats

// ServerConfig configures a networked server.
type ServerConfig = server.Config

// Server is a networked Pequod cache server.
type Server = server.Server

// Client is a connection to a Server.
type Client = client.Client

// DB is an in-memory stand-in for the backing database of a write-around
// deployment; see Server.AttachDB.
type DB = backdb.DB

// NewServer creates a networked server. Call Start (loopback, test
// convenience), Serve, or ListenAndServe on the result.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Dial connects to a server.
func Dial(addr string) (*Client, error) { return client.Dial(addr) }

// NewDB creates a backing database for write-around deployments.
func NewDB() *DB { return backdb.New() }

// ParseJoins parses a semicolon/newline-separated cache-join
// specification without installing it (syntax checking, tooling).
func ParseJoins(text string) error {
	_, err := join.ParseAll(text)
	return err
}

// Cache is an embedded, thread-safe Pequod engine: the full cache-join
// machinery without the network. A Cache is what one server process
// hosts; applications embedding Pequod use it directly.
type Cache struct {
	mu sync.Mutex
	e  *core.Engine
}

// New returns an embedded cache.
func New(opts Options) *Cache {
	return &Cache{e: core.New(opts)}
}

// Install parses and installs cache joins ("add-join", §3).
func (c *Cache) Install(joins string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.e.InstallText(joins)
}

// Put stores value under key and runs incremental view maintenance.
func (c *Cache) Put(key, value string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.e.Put(key, value)
}

// Remove deletes key, reporting whether it existed.
func (c *Cache) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.e.Remove(key)
}

// Get returns the value under key, computing covering joins on demand.
func (c *Cache) Get(key string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok, _ := c.e.Get(key)
	return v, ok
}

// Scan returns up to limit (0 = all) pairs in [lo, hi), computing
// overlapping joins on demand. An empty hi means "to the end of the
// keyspace"; use keys like "t|ann}" (see PrefixEnd) for prefix scans.
func (c *Cache) Scan(lo, hi string, limit int) []KV {
	c.mu.Lock()
	defer c.mu.Unlock()
	kvs, _ := c.e.Scan(lo, hi, limit)
	return kvs
}

// Count returns the number of keys in [lo, hi) after join computation.
func (c *Cache) Count(lo, hi string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, _ := c.e.Count(lo, hi)
	return n
}

// SetSubtableDepth marks a natural key boundary for a table (§4.1).
func (c *Cache) SetSubtableDepth(table string, depth int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.e.SetSubtableDepth(table, depth)
}

// Stats snapshots the engine counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.e.Stats()
}

// Bytes returns the approximate memory footprint of the cache.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.e.Store().Bytes()
}

// Len returns the number of cached keys (base + computed).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.e.Store().Len()
}

// PrefixEnd returns the smallest key greater than every key with the
// given prefix — the paper's "t|ann|+" bound, spelled "t|ann}".
func PrefixEnd(prefix string) string {
	return keysPrefixEnd(prefix)
}
