// Package pequod is a Go implementation of Pequod, the distributed
// application-level key-value cache with cache joins from
//
//	Kate, Kohler, Kester, Narula, Mao, Morris.
//	"Easy Freshness with Pequod Cache Joins." NSDI '14.
//
// A cache join declaratively defines computed data in terms of simple
// transformations of base data; Pequod computes joined ranges on demand,
// keeps them fresh with eager incremental maintenance and lazy
// invalidation, and serves them with ordinary ordered key-value reads.
// The paper's running example, the Twip timeline join, is written
//
//	t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>
//
// and makes the scan of [t|ann|, t|ann}) return ann's timeline, computed
// from her subscriptions (s|…) and her followees' posts (p|…), kept up
// to date as posts and subscriptions change.
//
// Three deployment shapes are supported:
//
//   - Embedded: New() returns a thread-safe in-process Cache.
//   - Networked: NewServer/ListenAndServe + Dial, speaking a compact
//     binary protocol with pipelining.
//   - Distributed: multiple servers with key-range partitioning,
//     cross-server base-data subscriptions, and asynchronous update
//     notification (eventually consistent), plus an optional
//     write-around backing database.
//
// # Concurrency
//
// Each core engine is single-writer, like the paper's event-driven
// server, but a Cache or Server hosts a pool of them partitioned by key
// range (§2.4, §5.5 scaled down into one process): pass WithShards /
// WithBounds to New, or set ServerConfig.Shards/Bounds. Operations lock
// only the shard owning their key, and cross-shard scans fan out
// concurrently, so read throughput scales with shards on a multi-core
// machine. Joins run on every shard; base writes to join source tables
// are forwarded between shards asynchronously, in owner order — the same
// eventual-consistency model as the paper's cross-server subscriptions.
// Quiesce waits for that propagation to settle. The default is one
// shard, which is fully synchronous.
//
// To verify a checkout, run the tier-1 gate:
//
//	go build ./... && go test ./...
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package pequod

import (
	"pequod/internal/backdb"
	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/join"
	"pequod/internal/server"
	"pequod/internal/shard"
)

// KV is one key-value pair in a scan result.
type KV = core.KV

// Options configure a Cache or a Server's engine; the zero value enables
// all of the paper's optimizations and never evicts.
type Options = core.Options

// Stats are engine activity counters.
type Stats = core.Stats

// ServerConfig configures a networked server.
type ServerConfig = server.Config

// Server is a networked Pequod cache server.
type Server = server.Server

// Client is a connection to a Server.
type Client = client.Client

// DB is an in-memory stand-in for the backing database of a write-around
// deployment; see Server.AttachDB.
type DB = backdb.DB

// NewServer creates a networked server. Call Start (loopback, test
// convenience), Serve, or ListenAndServe on the result.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Dial connects to a server.
func Dial(addr string) (*Client, error) { return client.Dial(addr) }

// NewDB creates a backing database for write-around deployments.
func NewDB() *DB { return backdb.New() }

// ParseJoins parses a semicolon/newline-separated cache-join
// specification without installing it (syntax checking, tooling).
func ParseJoins(text string) error {
	_, err := join.ParseAll(text)
	return err
}

// CacheOption tunes an embedded Cache beyond the engine Options — shard
// count and partition bounds.
type CacheOption func(*shard.Config)

// WithShards runs the cache as n partitioned engines served
// concurrently (default 1). Pair with WithBounds: without it the key
// space is split evenly by 16-bit prefix, which only balances uniformly
// distributed binary keys — ASCII table-prefixed keys ("t|ann|...")
// cluster onto one shard.
func WithShards(n int) CacheOption {
	return func(c *shard.Config) { c.Shards = n }
}

// WithBounds sets the partition split points between shards: shard i
// owns [bounds[i-1], bounds[i]). n bounds imply n+1 shards; combine with
// WithShards only if the counts agree. partition.UserBounds builds
// bounds for the Twip-style zero-padded user keyspace.
func WithBounds(bounds ...string) CacheOption {
	return func(c *shard.Config) { c.Bounds = append([]string(nil), bounds...) }
}

// Cache is an embedded, thread-safe Pequod cache: the full cache-join
// machinery without the network, over a pool of one or more partitioned
// engines. A Cache is what one server process hosts; applications
// embedding Pequod use it directly.
type Cache struct {
	p *shard.Pool
}

// New returns an embedded cache. Shard options that do not form a valid
// partition (mismatched counts, unsorted bounds) panic, like a malformed
// static partition.Map — they are configuration errors.
func New(opts Options, extra ...CacheOption) *Cache {
	cfg := shard.Config{Engine: opts}
	for _, o := range extra {
		o(&cfg)
	}
	p, err := shard.New(cfg)
	if err != nil {
		panic("pequod: " + err.Error())
	}
	return &Cache{p: p}
}

// Shards returns the number of partitioned engines serving this cache.
func (c *Cache) Shards() int { return c.p.NumShards() }

// Install parses and installs cache joins ("add-join", §3) on every
// shard.
func (c *Cache) Install(joins string) error {
	return c.p.InstallText(joins)
}

// Put stores value under key and runs incremental view maintenance on
// the owning shard, forwarding source-table writes to sibling shards.
func (c *Cache) Put(key, value string) {
	c.p.Put(key, value)
}

// Remove deletes key, reporting whether it existed.
func (c *Cache) Remove(key string) bool {
	return c.p.Remove(key)
}

// Get returns the value under key, computing covering joins on demand.
func (c *Cache) Get(key string) (string, bool) {
	return c.p.Get(key)
}

// Scan returns up to limit (0 = all) pairs in [lo, hi), computing
// overlapping joins on demand; cross-shard ranges are scanned
// concurrently. An empty hi means "to the end of the keyspace"; use keys
// like "t|ann}" (see PrefixEnd) for prefix scans.
func (c *Cache) Scan(lo, hi string, limit int) []KV {
	return c.p.Scan(lo, hi, limit, nil, nil)
}

// Count returns the number of keys in [lo, hi) after join computation.
func (c *Cache) Count(lo, hi string) int {
	return c.p.Count(lo, hi)
}

// SetSubtableDepth marks a natural key boundary for a table (§4.1).
func (c *Cache) SetSubtableDepth(table string, depth int) {
	c.p.SetSubtableDepth(table, depth)
}

// Stats snapshots the engine counters, summed across shards.
func (c *Cache) Stats() Stats {
	return c.p.Stats()
}

// Bytes returns the approximate memory footprint of the cache.
func (c *Cache) Bytes() int64 {
	return c.p.Bytes()
}

// Len returns the number of cached keys (base + computed + replicated).
func (c *Cache) Len() int {
	return c.p.Len()
}

// Quiesce blocks until cross-shard source replication has settled: after
// it returns, reads anywhere see every write issued before the call. A
// single-shard cache is always settled.
func (c *Cache) Quiesce() {
	c.p.Quiesce()
}

// Close stops the cache's background shard appliers. Only multi-shard
// caches run goroutines; closing a single-shard cache is a no-op and
// using a cache after Close is not allowed.
func (c *Cache) Close() {
	c.p.Close()
}

// PrefixEnd returns the smallest key greater than every key with the
// given prefix — the paper's "t|ann|+" bound, spelled "t|ann}".
func PrefixEnd(prefix string) string {
	return keysPrefixEnd(prefix)
}
