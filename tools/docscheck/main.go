// Command docscheck is the CI docs gate: it fails on broken relative
// links in the given markdown files and on Go code snippets that do not
// parse.
//
// Usage:
//
//	go run ./tools/docscheck README.md DESIGN.md ROADMAP.md
//
// Links: every inline markdown link [text](target) whose target is not
// an absolute URL or a pure #anchor must resolve to an existing file
// (or directory) relative to the document. Go snippets: every fenced
// ```go block must parse — as a file, as declarations, or as statements
// — so documentation examples cannot rot silently when the API moves.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck FILE.md ...")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			failed = true
			continue
		}
		for _, problem := range check(path, string(data)) {
			fmt.Fprintf(os.Stderr, "docscheck: %s\n", problem)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// check returns every problem found in one document.
func check(path, doc string) []string {
	var problems []string
	dir := filepath.Dir(path)
	for _, m := range linkRE.FindAllStringSubmatch(stripCodeBlocks(doc), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
			problems = append(problems, fmt.Sprintf("%s: broken relative link %q", path, m[1]))
		}
	}
	for i, snippet := range goSnippets(doc) {
		if err := parseGo(snippet); err != nil {
			problems = append(problems, fmt.Sprintf("%s: go snippet %d does not parse: %v", path, i+1, err))
		}
	}
	return problems
}

// stripCodeBlocks removes fenced code blocks so example links inside
// them are not treated as document links.
func stripCodeBlocks(doc string) string {
	var out []string
	in := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			in = !in
			continue
		}
		if !in {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// goSnippets extracts the bodies of ```go fenced blocks.
func goSnippets(doc string) []string {
	var out []string
	lines := strings.Split(doc, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		var body []string
		for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			body = append(body, lines[i])
		}
		out = append(out, strings.Join(body, "\n"))
	}
	return out
}

// parseGo accepts a snippet that parses as a whole file, as a set of
// declarations, or as a statement list.
func parseGo(src string) error {
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "snippet.go", src, 0); err == nil {
		return nil
	}
	if _, err := parser.ParseFile(fset, "snippet.go", "package snippet\n"+src, 0); err == nil {
		return nil
	}
	_, err := parser.ParseFile(fset, "snippet.go", "package snippet\nfunc _() {\n"+src+"\n}", 0)
	return err
}
