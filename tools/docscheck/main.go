// Command docscheck is the CI docs gate: it fails on broken relative
// links in the given markdown files, on Go code snippets that do not
// parse, and — when -cli points at the pequod-cli source — on
// pequod-cli subcommands named in the docs that the CLI's usage text
// does not actually offer.
//
// Usage:
//
//	go run ./tools/docscheck [-cli cmd/pequod-cli/main.go] README.md DESIGN.md docs
//
// A directory argument expands to every .md file under it, so new
// documents under docs/ are linted without touching CI.
//
// Links: every inline markdown link [text](target) whose target is not
// an absolute URL or a pure #anchor must resolve to an existing file
// (or directory) relative to the document. Go snippets: every fenced
// ```go block must parse — as a file, as declarations, or as statements
// — so documentation examples cannot rot silently when the API moves.
// CLI commands: every `pequod-cli <subcommand>` invocation in a checked
// document (prose or shell block) must name a subcommand present in the
// usageText constant of the CLI source, so runbooks cannot drift from
// the tool they describe.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	linkRE   = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	cmdShape = regexp.MustCompile(`^[a-z][a-z-]*$`)
)

func main() {
	cliSrc := flag.String("cli", "", "path to the pequod-cli source; its usageText subcommands validate `pequod-cli ...` mentions in the docs")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: docscheck [-cli cmd/pequod-cli/main.go] FILE.md|DIR ...")
		os.Exit(2)
	}
	var cliCmds map[string]bool
	if *cliSrc != "" {
		var err error
		cliCmds, err = usageCommands(*cliSrc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(1)
		}
	}
	paths, err := expand(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	failed := false
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			failed = true
			continue
		}
		for _, problem := range check(path, string(data), cliCmds) {
			fmt.Fprintf(os.Stderr, "docscheck: %s\n", problem)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("docscheck: ok (%d files)\n", len(paths))
}

// expand resolves arguments: files stay as-is, directories become every
// .md file under them (sorted, for stable output).
func expand(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, a)
			continue
		}
		err = filepath.WalkDir(a, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				out = append(out, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// check returns every problem found in one document.
func check(path, doc string, cliCmds map[string]bool) []string {
	var problems []string
	dir := filepath.Dir(path)
	for _, m := range linkRE.FindAllStringSubmatch(stripCodeBlocks(doc), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
			problems = append(problems, fmt.Sprintf("%s: broken relative link %q", path, m[1]))
		}
	}
	for i, snippet := range goSnippets(doc) {
		if err := parseGo(snippet); err != nil {
			problems = append(problems, fmt.Sprintf("%s: go snippet %d does not parse: %v", path, i+1, err))
		}
	}
	if cliCmds != nil {
		for _, cmd := range cliMentions(doc) {
			if !cliCmds[cmd] {
				problems = append(problems, fmt.Sprintf("%s: pequod-cli subcommand %q is not in the CLI's usage text", path, cmd))
			}
		}
	}
	return problems
}

// stripCodeBlocks removes fenced code blocks so example links inside
// them are not treated as document links.
func stripCodeBlocks(doc string) string {
	var out []string
	in := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			in = !in
			continue
		}
		if !in {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// goSnippets extracts the bodies of ```go fenced blocks.
func goSnippets(doc string) []string {
	var out []string
	lines := strings.Split(doc, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		var body []string
		for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			body = append(body, lines[i])
		}
		out = append(out, strings.Join(body, "\n"))
	}
	return out
}

// parseGo accepts a snippet that parses as a whole file, as a set of
// declarations, or as a statement list.
func parseGo(src string) error {
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "snippet.go", src, 0); err == nil {
		return nil
	}
	if _, err := parser.ParseFile(fset, "snippet.go", "package snippet\n"+src, 0); err == nil {
		return nil
	}
	_, err := parser.ParseFile(fset, "snippet.go", "package snippet\nfunc _() {\n"+src+"\n}", 0)
	return err
}

// usageCommands parses the CLI source and collects the subcommand names
// its usageText constant offers: lines of the form "  name ..." in the
// command sections (everything before the "flags:" footer).
func usageCommands(path string) (map[string]bool, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	var usage string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if name.Name != "usageText" || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				if usage, err = strconv.Unquote(lit.Value); err != nil {
					return nil, fmt.Errorf("unquoting usageText in %s: %w", path, err)
				}
			}
		}
	}
	if usage == "" {
		return nil, fmt.Errorf("%s: no usageText constant found", path)
	}
	cmds := make(map[string]bool)
	cmdLine := regexp.MustCompile(`^  ([a-z][a-z-]*)\s`)
	for _, line := range strings.Split(usage, "\n") {
		if strings.TrimSpace(line) == "flags:" {
			break
		}
		if m := cmdLine.FindStringSubmatch(line); m != nil {
			cmds[m[1]] = true
		}
	}
	if len(cmds) == 0 {
		return nil, fmt.Errorf("%s: usageText lists no commands", path)
	}
	return cmds, nil
}

// cliMentions extracts the subcommand of every `pequod-cli ...`
// invocation in the document (prose and code blocks alike): tokens
// after "pequod-cli", skipping flags and their values, until the first
// command-shaped word. Slash-joined mentions ("move/rebalance") yield
// each part.
func cliMentions(doc string) []string {
	var out []string
	for _, line := range strings.Split(doc, "\n") {
		fields := strings.Fields(line)
		for i, f := range fields {
			if cleanToken(f) != "pequod-cli" {
				continue
			}
			if trimmed := strings.Trim(f, `"'()[]{},.;:*`); strings.HasPrefix(trimmed, "`") && strings.HasSuffix(trimmed, "`") {
				continue // a fully wrapped `pequod-cli` is prose, not an invocation
			}
			rest := fields[i+1:]
			for j := 0; j < len(rest); j++ {
				tok := rest[j]
				if strings.HasPrefix(tok, "-") {
					if c := cleanToken(tok); c == "-h" || c == "--help" {
						break // help form; no subcommand follows
					}
					// A flag; ours all take a value. "=" keeps flag and
					// value in one token.
					if !strings.Contains(tok, "=") {
						j++ // skip the flag's value
					}
					continue
				}
				for _, part := range strings.Split(tok, "/") {
					if p := cleanToken(part); cmdShape.MatchString(p) {
						out = append(out, p)
					}
				}
				break
			}
		}
	}
	return out
}

// cleanToken strips the punctuation prose wraps around a token.
func cleanToken(tok string) string {
	return strings.Trim(tok, "`\"'()[]{},.;:*")
}
