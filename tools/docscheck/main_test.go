package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cliFixture is a minimal pequod-cli source carrying the usageText
// shape docscheck parses.
const cliFixture = `package main

const usageText = ` + "`" + `usage:
  pequod-cli [-addr host:port] command args...

commands (both modes):
  get KEY                  print the value under KEY
  put KEY VALUE            store VALUE under KEY

commands (cluster mode only):
  move IDX BOUND           live-migrate bound IDX to BOUND
  add ADDR [OWNER BOUND]   join the server at ADDR live
  drain ADDR               drain the member at ADDR live

flags:
` + "`" + `
`

// TestRedToGreen is the gate's own gate: a document with a broken
// link, a rotten snippet, and a stale CLI subcommand fails with one
// problem each (red); fixing the document clears every problem
// (green). This is what CI relies on to keep README/DESIGN/docs
// honest.
func TestRedToGreen(t *testing.T) {
	dir := t.TempDir()
	cliPath := filepath.Join(dir, "cli.go")
	if err := os.WriteFile(cliPath, []byte(cliFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	cmds, err := usageCommands(cliPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"get", "put", "move", "add", "drain"} {
		if !cmds[want] {
			t.Fatalf("usageCommands missed %q: %v", want, cmds)
		}
	}
	if cmds["flags"] || cmds["usage"] {
		t.Fatalf("usageCommands picked up non-commands: %v", cmds)
	}

	red := `# Ops

See [the design](MISSING.md) for background.

` + "```go" + `
func broken( {
` + "```" + `

Run ` + "`pequod-cli -addrs a:1,a:2 -bounds 'm' frobnicate 1`" + ` to proceed.
`
	redPath := filepath.Join(dir, "ops.md")
	if err := os.WriteFile(redPath, []byte(red), 0o644); err != nil {
		t.Fatal(err)
	}
	problems := check(redPath, red, cmds)
	if len(problems) != 3 {
		t.Fatalf("red fixture: got %d problems, want 3: %v", len(problems), problems)
	}
	for i, wantSub := range []string{"broken relative link", "does not parse", `subcommand "frobnicate"`} {
		if !strings.Contains(problems[i], wantSub) {
			t.Fatalf("problem %d = %q, want it to mention %q", i, problems[i], wantSub)
		}
	}

	green := strings.ReplaceAll(red, "MISSING.md", "design.md")
	green = strings.ReplaceAll(green, "func broken( {", "func fixed() {}")
	green = strings.ReplaceAll(green, "frobnicate 1", "move 1 't|m'")
	if err := os.WriteFile(filepath.Join(dir, "design.md"), []byte("# design\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if problems := check(redPath, green, cmds); len(problems) != 0 {
		t.Fatalf("green fixture still fails: %v", problems)
	}
}

// TestExpandDirectories: a directory argument lints every .md beneath
// it, so new runbooks are covered without CI edits.
func TestExpandDirectories(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "docs", "deep")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		filepath.Join(dir, "README.md"),
		filepath.Join(dir, "docs", "OPERATIONS.md"),
		filepath.Join(sub, "more.md"),
		filepath.Join(dir, "docs", "not-markdown.txt"),
	} {
		if err := os.WriteFile(p, []byte("# x\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := expand([]string{filepath.Join(dir, "README.md"), filepath.Join(dir, "docs")})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("expand = %v, want README + 2 docs", got)
	}
	for _, p := range got {
		if strings.HasSuffix(p, ".txt") {
			t.Fatalf("expand picked up a non-markdown file: %v", got)
		}
	}
}

// TestCLIMentionParsing: flags (with and without values) are skipped,
// prose punctuation is stripped, and slash-joined mentions check each
// part.
func TestCLIMentionParsing(t *testing.T) {
	doc := "Use `pequod-cli -addrs a:1,a:2 -bounds 'm' move 1 't|m'`,\n" +
		"then (`pequod-cli drain a:2`). The `pequod-cli move`/`rebalance`\n" +
		"pair also appears as pequod-cli -timeout=5s add host:1.\n" +
		"A bare pequod-cli -h prints usage.\n" +
		"Drive `pequod-cli` in cluster mode for these.\n"
	got := cliMentions(doc)
	want := []string{"move", "drain", "move", "rebalance", "add"}
	if len(got) != len(want) {
		t.Fatalf("cliMentions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cliMentions[%d] = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}
