// Command covercheck enforces the committed per-package coverage
// floors against a Go cover profile. It parses the profile itself
// (rather than scraping `go test -cover` output) so one merged
// -coverprofile run over ./internal/... yields every package's
// statement coverage, and fails if any package listed in the floors
// file is below its floor — or missing from the profile entirely,
// which is what a deleted test file looks like.
//
// The floors file is the contract: a line per package, import path
// then minimum percent, '#' comments allowed. Floors are ratchets set
// below current coverage — they catch regressions, not enforce
// targets; raise them as packages earn higher coverage.
//
//	pequod/internal/core 70
//
// Usage:
//
//	covercheck -profile coverage.out -floors coverage-floors.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// pkgCover accumulates one package's statement counts.
type pkgCover struct {
	total   int
	covered int
}

func (p pkgCover) percent() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

func main() {
	profilePath := flag.String("profile", "coverage.out", "cover profile from go test -coverprofile")
	floorsPath := flag.String("floors", "coverage-floors.txt", "committed per-package floors")
	flag.Parse()

	pkgs, err := parseProfile(*profilePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(2)
	}
	floors, err := parseFloors(*floorsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		pc := pkgs[name]
		floor, gated := floors[name]
		mark := " "
		if gated && pc.percent() < floor {
			mark = "!"
			failed = true
		}
		fmt.Printf("%s %-40s %6.1f%% (floor %s)\n", mark, name, pc.percent(), floorString(floor, gated))
	}
	for name, floor := range floors {
		if _, ok := pkgs[name]; !ok {
			fmt.Printf("! %-40s absent from profile (floor %.0f%%)\n", name, floor)
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "covercheck: coverage below committed floors")
		os.Exit(1)
	}
}

func floorString(floor float64, gated bool) string {
	if !gated {
		return "none"
	}
	return fmt.Sprintf("%.0f%%", floor)
}

// parseProfile folds a cover profile into per-package statement
// coverage. Blocks are deduplicated by position keeping the highest
// count, so a merged or appended profile never double-counts.
func parseProfile(path string) (map[string]pkgCover, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type block struct {
		stmts int
		hit   bool
	}
	blocks := make(map[string]block)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		// file.go:sl.sc,el.ec numstmts count
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed profile line %q", path, lineNo, line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: statement count: %w", path, lineNo, err)
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: hit count: %w", path, lineNo, err)
		}
		key := fields[0]
		b := blocks[key]
		b.stmts = stmts
		b.hit = b.hit || count > 0
		blocks[key] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	pkgs := make(map[string]pkgCover)
	for key, b := range blocks {
		file, _, ok := strings.Cut(key, ":")
		if !ok {
			return nil, fmt.Errorf("%s: block key %q has no position", path, key)
		}
		pkg := path2pkg(file)
		pc := pkgs[pkg]
		pc.total += b.stmts
		if b.hit {
			pc.covered += b.stmts
		}
		pkgs[pkg] = pc
	}
	return pkgs, nil
}

func path2pkg(file string) string { return path.Dir(file) }

func parseFloors(p string) (map[string]float64, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	floors := make(map[string]float64)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<package> <floor>\", got %q", p, lineNo, line)
		}
		floor, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || floor < 0 || floor > 100 {
			return nil, fmt.Errorf("%s:%d: floor %q is not a percentage", p, lineNo, fields[1])
		}
		if _, dup := floors[fields[0]]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate floor for %s", p, lineNo, fields[0])
		}
		floors[fields[0]] = floor
	}
	return floors, sc.Err()
}
