package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// The profile parser must fold blocks into per-package statement
// coverage, deduplicating repeated blocks by keeping any hit (a merged
// or appended profile never double-counts).
func TestParseProfile(t *testing.T) {
	p := write(t, "cover.out", `mode: atomic
pequod/internal/a/x.go:1.1,3.2 4 1
pequod/internal/a/x.go:5.1,7.2 6 0
pequod/internal/a/x.go:5.1,7.2 6 2
pequod/internal/b/y.go:1.1,2.2 10 0
`)
	pkgs, err := parseProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	a := pkgs["pequod/internal/a"]
	if a.total != 10 || a.covered != 10 {
		t.Fatalf("package a = %+v, want 10/10 (dedup keeps the hit)", a)
	}
	if got := a.percent(); got != 100 {
		t.Fatalf("package a percent = %v", got)
	}
	b := pkgs["pequod/internal/b"]
	if b.total != 10 || b.covered != 0 || b.percent() != 0 {
		t.Fatalf("package b = %+v", b)
	}
}

func TestParseProfileMalformed(t *testing.T) {
	p := write(t, "cover.out", "mode: set\nnot a profile line\n")
	if _, err := parseProfile(p); err == nil {
		t.Fatal("malformed profile accepted")
	}
}

func TestParseFloors(t *testing.T) {
	p := write(t, "floors.txt", `# comment
pequod/internal/a 70
pequod/internal/b 42.5
`)
	floors, err := parseFloors(p)
	if err != nil {
		t.Fatal(err)
	}
	if floors["pequod/internal/a"] != 70 || floors["pequod/internal/b"] != 42.5 {
		t.Fatalf("floors = %+v", floors)
	}
	for _, bad := range []string{"pequod/internal/a\n", "pequod/internal/a 123\n", "pequod/internal/a 70\npequod/internal/a 60\n"} {
		if _, err := parseFloors(write(t, "bad.txt", bad)); err == nil {
			t.Fatalf("accepted bad floors file %q", bad)
		}
	}
}
