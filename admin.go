package pequod

import (
	"context"

	"pequod/internal/cluster"
	"pequod/internal/durable"
)

// Admin is the cluster-operations surface, split from Store: Store is
// what applications read and write through; Admin is what operators
// (and pequod-cli) reshape the cluster through. The value returned by
// NewCluster satisfies both:
//
//	st, _ := pequod.NewCluster(ctx, cfg)
//	var adm pequod.Admin = st
//
// (Since NewCluster returns the concrete *Cluster, the methods are also
// directly callable; the interface exists so tools depend on the
// operational contract, not the concrete type.)
//
// Errors: AddServer and DrainServer wrap ErrMemberDown when a transfer
// participant is unreachable past the retry budget, DrainServer refuses
// the last member with ErrDraining, MoveBound reports a concurrent
// coordinator winning the epoch race as ErrConflict, and Repair with no
// surviving member fails with ErrMemberDown — all matchable with
// errors.Is.
type Admin interface {
	// Health probes every member concurrently and reports liveness,
	// durable identity, owned ranges, and replica footprint per member.
	// It never fails as a whole; an unreachable member is a row with
	// Alive=false.
	Health(ctx context.Context) []MemberHealth
	// Members returns the number of distinct servers in the cluster.
	Members() int
	// MemberAddrs returns the distinct member addresses under the
	// current map, in first-appearance order.
	MemberAddrs() []string
	// AddServer splices the server at addr into the cluster live,
	// wiring it into the subscription mesh and granting it an initial
	// key-range slice.
	AddServer(ctx context.Context, addr string) error
	// AddServerAt is AddServer with an explicit initial grant: donor
	// owner index owner's range splits at bound, the new member taking
	// the upper slice.
	AddServerAt(ctx context.Context, addr string, owner int, bound string) error
	// DrainServer streams every range the member at addr owns to its
	// neighbors and removes it from the map, live and loss-free.
	DrainServer(ctx context.Context, addr string) error
	// Repair probes the membership and publishes a successor map that
	// reassigns every unreachable member's ranges to surviving replica
	// holders, promoting their warm copies. It returns the repaired
	// addresses (none when all members are healthy). With
	// ClusterConfig.FailoverInterval set, the failure detector calls it
	// automatically.
	Repair(ctx context.Context) ([]string, error)
	// MoveBound migrates the key range implied by moving partition
	// bound i between the members on either side of it, live.
	MoveBound(ctx context.Context, i int, bound string) error
	// Restore substitutes newAddr for the confirmed-dead member oldAddr
	// in the map, serving oldAddr's ranges from the durable lineage the
	// server at newAddr recovered. The operator workflow: re-key the
	// dead member's data dir to the new address (RekeyDataDir, or
	// `pequod-cli restore -from DIR NEWADDR`), start a server with
	// -data-dir over it at newAddr, then call Restore. oldAddr must
	// still be in the map (after a completed Repair its ranges moved on
	// — use AddServer) and must fail the same consecutive-probe death
	// test Repair applies; newAddr must be running with a durable store.
	Restore(ctx context.Context, oldAddr, newAddr string) error
	// Snapshot asks every member to write a durable snapshot now,
	// bounding each one's restart replay to the log written afterwards.
	// Memory-only members (no data dir) fail theirs; the joined error
	// names them while the rest still snapshot.
	Snapshot(ctx context.Context) error
	// RebalancerStats snapshots the cluster rebalancer's activity and
	// the live map.
	RebalancerStats() ClusterRebalancerStats
}

// MemberHealth is one member's row in an Admin.Health report.
type MemberHealth = cluster.MemberHealth

// ClusterRebalancerStats snapshots the cluster rebalancer's activity;
// see Admin.RebalancerStats. (RebalanceStats, without the "r", is the
// embedded Cache's shard-level equivalent.)
type ClusterRebalancerStats = cluster.RebalancerStats

// RekeyDataDir rewrites the meta.json identity of a dead member's data
// dir so a server started over it at newAddr recovers the lineage as
// its own — the offline first step of a cross-address restore (see
// Admin.Restore). It returns the old (dead) address, needed for the
// Restore call that publishes the substitution. Idempotent; the write
// is atomic, so a crash mid-rekey leaves either identity intact. The
// dir must not be in use by a running server.
func RekeyDataDir(dir, newAddr string) (oldAddr string, err error) {
	return durable.Rekey(dir, newAddr)
}

// NewCluster's result is both a Store and an Admin.
var _ Admin = (*Cluster)(nil)
