module pequod

go 1.24
