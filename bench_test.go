package pequod

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§5), plus the §4 optimization ablations. Each regenerates
// the corresponding result at a laptop scale; EXPERIMENTS.md records
// paper-vs-measured values. cmd/repro runs the same experiments with
// nicer output and configurable scales.
//
// Run all:   go test -bench=. -benchmem
// One table: go test -bench=BenchmarkFig7 -benchtime=1x

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"pequod/internal/core"
	"pequod/internal/experiments"
	"pequod/internal/loadgen"
)

// metricName makes a label safe as a testing.B metric unit (no spaces).
func metricName(s string) string {
	return strings.ReplaceAll(s, " ", "_")
}

// benchScale picks a scale small enough for repeated benchmark runs.
var benchScale = experiments.Tiny

// BenchmarkFig7SystemComparison regenerates Figure 7 ("Time to process a
// Twip experiment to completion"): Pequod vs Redis vs client Pequod vs
// memcached vs PostgreSQL. Reported metric: runtime ratio vs Pequod
// (paper: 1.00 / 1.33 / 1.64 / 3.98 / 9.55).
func BenchmarkFig7SystemComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(benchScale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Ratio, metricName(r.System)+"_ratio")
			}
		}
	}
}

// BenchmarkFig8Materialization regenerates Figure 8: runtime of no/full/
// dynamic materialization as the active-user percentage (and with it the
// check:post ratio) sweeps.
func BenchmarkFig8Materialization(b *testing.B) {
	for _, pct := range []int{1, 10, 50, 90, 100} {
		b.Run(fmt.Sprintf("active=%d", pct), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig8(benchScale, []int{pct}, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					for _, r := range rows {
						b.ReportMetric(r.Runtime.Seconds(), shortName(r.Strategy)+"_s")
					}
				}
			}
		})
	}
}

func shortName(s string) string {
	switch s {
	case "No materialization":
		return "none"
	case "Full materialization":
		return "full"
	case "Dynamic materialization":
		return "dynamic"
	}
	return s
}

// BenchmarkFig9NewpJoinChoice regenerates Figure 9: interleaved vs
// non-interleaved Newp page assembly across vote rates (paper crossover
// ~90% votes).
func BenchmarkFig9NewpJoinChoice(b *testing.B) {
	for _, vr := range []int{0, 25, 50, 75, 100} {
		b.Run(fmt.Sprintf("votes=%d", vr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig9(benchScale, []int{vr}, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					for _, r := range rows {
						b.ReportMetric(r.Runtime.Seconds(), metricName(r.Strategy)+"_s")
					}
				}
			}
		})
	}
}

// BenchmarkFig10Scalability regenerates Figure 10: aggregate timeline
// throughput as compute servers are added against a fixed base store
// (paper: 3x from 12→48 servers; here 1→4).
func BenchmarkFig10Scalability(b *testing.B) {
	for _, nc := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("compute=%d", nc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig10(benchScale, []int{nc}, 2, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(rows[0].QPS, "qps")
				}
			}
		})
	}
}

// BenchmarkShardScaling measures within-process read scaling: closed-loop
// multi-goroutine timeline checks against the embedded shard pool as the
// shard count sweeps (target: ≥2x at 4 shards on a 4+ core machine;
// sharded results are verified byte-identical to a single engine inside
// the experiment).
func BenchmarkShardScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ShardScale(benchScale, []int{1, 2, 4}, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.QPS, fmt.Sprintf("qps_%dshard", r.Shards))
				b.ReportMetric(r.Speedup, fmt.Sprintf("speedup_%dshard", r.Shards))
			}
		}
	}
}

// BenchmarkRebalance measures load-aware rebalancing under skew:
// Zipf-distributed timeline checks against a 4-shard pool whose default
// bounds cluster every key onto one shard. Reported metrics: steady-
// state checks/s with the static partition, with live rebalancing, the
// speedup, and how many boundary migrations the rebalancer ran. Both
// configurations' timelines are verified byte-identical to a single
// engine inside the experiment.
func BenchmarkRebalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RebalanceScale(benchScale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].QPS, "qps_static")
			b.ReportMetric(rows[1].QPS, "qps_rebalance")
			b.ReportMetric(rows[1].Speedup, "speedup_x")
			b.ReportMetric(float64(rows[1].Migrations), "migrations")
			b.ReportMetric(rows[0].HotShare, "hotshare_static")
			b.ReportMetric(rows[1].HotShare, "hotshare_rebalance")
		}
	}
}

// BenchmarkClusterRebalance measures cluster-level live re-partitioning
// under skew: Zipf timeline checks against four networked servers whose
// bounds cram every key onto one member. The client-driven rebalancer
// migrates hot ranges between servers live (ExtractRange/SpliceRange/
// MapUpdate on the wire); the headline metric is the hottest server's
// share of the served load — ~1.0 statically, dropping toward
// 1/servers once ranges have moved. Timelines are verified
// byte-identical to a reference inside the experiment.
func BenchmarkClusterRebalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ClusterRebalance(benchScale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].QPS, "qps_static")
			b.ReportMetric(rows[1].QPS, "qps_rebalance")
			b.ReportMetric(rows[1].Speedup, "speedup_x")
			b.ReportMetric(float64(rows[1].Migrations), "migrations")
			b.ReportMetric(rows[0].HotShare, "hotshare_static")
			b.ReportMetric(rows[1].HotShare, "hotshare_rebalance")
		}
	}
}

// BenchmarkElasticScale measures elastic cluster membership: a uniform
// closed-loop timeline-check stream against three networked servers, a
// fourth joining live under that traffic (Cluster.AddServer: mesh
// wiring, an extract/splice granting it the busiest member's upper
// slice, a published grown map), and a drain shrinking back to three.
// The headline metrics are the per-phase aggregate throughputs —
// qps_joined rises above qps_static when cores are available, since
// each single-shard member serializes its reads — plus the join's
// speedup. Timelines are verified byte-identical to a reference before
// every timed phase inside the experiment.
func BenchmarkElasticScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ElasticScale(benchScale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].QPS, "qps_static")
			b.ReportMetric(rows[1].QPS, "qps_joined")
			b.ReportMetric(rows[2].QPS, "qps_drained")
			b.ReportMetric(rows[1].Speedup, "join_speedup_x")
		}
	}
}

// BenchmarkAblationSubtables regenerates the §4.1 measurement (paper:
// 1.55x faster, 1.17x memory with subtables).
func BenchmarkAblationSubtables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSubtables(benchScale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].Runtime.Seconds()/rows[1].Runtime.Seconds(), "speedup_x")
			b.ReportMetric(float64(rows[1].Bytes)/float64(rows[0].Bytes), "memratio_x")
		}
	}
}

// BenchmarkAblationOutputHints regenerates the §4.2 measurement (paper:
// 1.11x faster with output hints).
func BenchmarkAblationOutputHints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationOutputHints(benchScale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].Runtime.Seconds()/rows[1].Runtime.Seconds(), "speedup_x")
		}
	}
}

// BenchmarkAblationValueSharing regenerates the §4.3 measurement (paper:
// 1.14x less memory with value sharing).
func BenchmarkAblationValueSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationValueSharing(benchScale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(rows[0].Bytes)/float64(rows[1].Bytes), "memratio_x")
		}
	}
}

// BenchmarkEmbeddedOps micro-benchmarks the embedded cache's hot paths
// with the timeline join installed: the per-op costs underlying every
// macro result above.
func BenchmarkEmbeddedOps(b *testing.B) {
	ctx := context.Background()
	setup := func() *Cache {
		c, err := NewCache(Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Install(ctx, "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>"); err != nil {
			b.Fatal(err)
		}
		c.SetSubtableDepth("t", 2)
		for u := 0; u < 100; u++ {
			for p := 0; p < 20; p++ {
				c.Put(ctx, fmt.Sprintf("s|u%07d|u%07d", u, (u+p+1)%100), "1")
			}
		}
		for p := 0; p < 100; p++ {
			for i := 0; i < 50; i++ {
				c.Put(ctx, fmt.Sprintf("p|u%07d|%010d", p, i), "tweet body text")
			}
		}
		// Warm all timelines.
		for u := 0; u < 100; u++ {
			r := ScanRange("t", fmt.Sprintf("u%07d", u))
			c.Scan(ctx, r.Lo, r.Hi, 0)
		}
		return c
	}

	b.Run("PostFanout", func(b *testing.B) {
		c := setup()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Each post eagerly updates ~20 materialized timelines.
			c.Put(ctx, fmt.Sprintf("p|u%07d|%010d", i%100, 1000+i), "new tweet")
		}
	})
	b.Run("WarmTimelineScan", func(b *testing.B) {
		c := setup()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := ScanRange("t", fmt.Sprintf("u%07d", i%100))
			c.Scan(ctx, r.Lo, r.Hi, 0)
		}
	})
	b.Run("IncrementalCheck", func(b *testing.B) {
		c := setup()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u := fmt.Sprintf("u%07d", i%100)
			c.Scan(ctx, JoinKey("t", u, fmt.Sprintf("%010d", 40)), PrefixEnd(JoinKey("t", u)+"|"), 0)
		}
	})
}

// BenchmarkOpenLoop runs the open-loop million-user harness at CI
// scale: a 100k-user universe with Zipf celebrity skew driven at a
// fixed arrival rate (latency measured from scheduled arrival, so
// queueing delay is charged — no coordinated omission) across the full
// chaos script — steady, live join, drain, bound rebalance, warm
// restart, member kill + automatic repair — with the online checker
// auditing sampled timelines throughout. Reported metrics: steady-state
// p50/p99/p999 and achieved vs offered throughput. Any checker
// violation fails the benchmark. The full-scale run's report is
// committed as BENCH_9.json (regenerate with cmd/pequod-load).
func BenchmarkOpenLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
		rep, err := loadgen.Run(ctx, loadgen.Config{
			Users:       100_000,
			ActiveUsers: 1000,
			Rate:        400,
			Seed:        1,
			Workers:     8,
			Budget:      10 * time.Second,
			Phases:      loadgen.StandardPhases(500 * time.Millisecond),
			Servers:     4,
			DataDir:     b.TempDir(),
			// Shared-runner tolerance: at the 25ms×3 default a scheduling
			// pause reads as death and a false repair loses warm copies.
			FailoverInterval: 100 * time.Millisecond,
			FailoverMisses:   5,
		})
		cancel()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Checker.Violations != 0 {
			b.Fatalf("checker violations (%d): %v", rep.Checker.Violations, rep.Checker.Samples)
		}
		if i == b.N-1 {
			steady := rep.Phases[0]
			b.ReportMetric(float64(steady.P50us), "steady_p50_us")
			b.ReportMetric(float64(steady.P99us), "steady_p99_us")
			b.ReportMetric(float64(steady.P999us), "steady_p999_us")
			b.ReportMetric(steady.OfferedRate, "offered_ops_s")
			b.ReportMetric(steady.AchievedRate, "achieved_ops_s")
			b.ReportMetric(float64(rep.Checker.RowsVerified), "rows_verified")
		}
	}
}

// BenchmarkBoundedStaleness holds the bounded-staleness contract's
// economics visible. The workload models a mixed fleet under
// write-heavy subscription churn: a background reader keeps fresh
// traffic flowing over every timeline (the maintenance pressure any
// real deployment has), while the measured reader interleaves edge
// toggles — each lazily invalidating the timeline about to be read —
// with timeline scans. A measured fresh scan races the background
// reader for the pending maintenance and pays the apply whenever it
// gets there first; a scan carrying a staleness budget serves the
// materialized rows as they stand whenever the backlog is younger
// than the budget, keeping the apply off its critical path entirely.
// Both modes run the identical workload; reported metrics are each
// mode's scan p50/p99 plus the engine counter that proves the bounded
// path actually engaged (bounded_srv > 0). Set
// PEQUOD_BOUNDED_BENCH_OUT=BENCH_10.json to commit the comparison.
func BenchmarkBoundedStaleness(b *testing.B) {
	ctx := context.Background()
	const (
		users         = 128
		follows       = 16
		posts         = 64
		iters         = 4000
		writesPerRead = 4
		// The background reader cycles all timelines in well under the
		// budget, so a bounded read's backlog is always young enough to
		// skip; an over-budget backlog would fall back to the fresh
		// path (applying it all), per the contract.
		budget = 100 * time.Millisecond
	)
	uid := func(u int) string { return fmt.Sprintf("u%07d", ((u%users)+users)%users) }
	setup := func() *Cache {
		c, err := NewCache(Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Install(ctx, "t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>"); err != nil {
			b.Fatal(err)
		}
		for u := 0; u < users; u++ {
			for f := 0; f < follows; f++ {
				c.Put(ctx, JoinKey("s", uid(u), uid(u+f+1)), "1")
			}
		}
		for p := 0; p < users; p++ {
			for i := 0; i < posts; i++ {
				c.Put(ctx, JoinKey("p", uid(p), fmt.Sprintf("%010d", i)), "tweet body text")
			}
		}
		for u := 0; u < users; u++ {
			r := ScanRange("t", uid(u))
			if _, err := c.Scan(ctx, r.Lo, r.Hi, 0); err != nil {
				b.Fatal(err)
			}
		}
		return c
	}
	run := func(c *Cache, rctx context.Context) *loadgen.Hist {
		// The background reader: continuous fresh scans round-robin over
		// every timeline — the rest of the fleet's traffic, which is what
		// keeps maintenance backlogs young in any real deployment.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := 0; ; u++ {
				select {
				case <-stop:
					return
				default:
				}
				r := ScanRange("t", uid(u))
				if _, err := c.Scan(ctx, r.Lo, r.Hi, 0); err != nil {
					return
				}
			}
		}()
		defer func() { close(stop); wg.Wait() }()
		h := &loadgen.Hist{}
		toggle := make([]bool, users)
		for i := 0; i < iters; i++ {
			// Write-heavy churn on the check source: toggle one
			// subscription edge for the user about to be read (and its
			// neighbors), so every scan finds lazily-logged maintenance
			// pending against its timeline.
			for w := 0; w < writesPerRead; w++ {
				u := (i + w) % users
				edge := JoinKey("s", uid(u), uid(u+follows+1))
				var err error
				if toggle[u] {
					_, err = c.Remove(ctx, edge)
				} else {
					err = c.Put(ctx, edge, "1")
				}
				if err != nil {
					b.Fatal(err)
				}
				toggle[u] = !toggle[u]
			}
			r := ScanRange("t", uid(i))
			t0 := time.Now()
			if _, err := c.Scan(rctx, r.Lo, r.Hi, 0); err != nil {
				b.Fatal(err)
			}
			h.Record(time.Since(t0).Microseconds())
		}
		return h
	}
	for i := 0; i < b.N; i++ {
		freshCache := setup()
		fh := run(freshCache, ctx)
		boundedCache := setup()
		bh := run(boundedCache, WithFreshness(ctx, budget))
		if i < b.N-1 {
			continue
		}
		fs, bs := fh.Snapshot(), bh.Snapshot()
		st := boundedCache.p.Stats()
		b.ReportMetric(float64(fs.Quantile(0.50)), "fresh_p50_us")
		b.ReportMetric(float64(fs.Quantile(0.99)), "fresh_p99_us")
		b.ReportMetric(float64(bs.Quantile(0.50)), "bounded_p50_us")
		b.ReportMetric(float64(bs.Quantile(0.99)), "bounded_p99_us")
		b.ReportMetric(float64(st.BoundedStaleServes), "bounded_srv")
		if st.BoundedStaleServes == 0 {
			b.Fatal("bounded reads never engaged the budget path")
		}
		if out := os.Getenv("PEQUOD_BOUNDED_BENCH_OUT"); out != "" {
			writeBoundedBenchReport(b, out, budget, fs, bs, st)
		}
	}
}

// writeBoundedBenchReport commits the fresh-vs-bounded comparison as a
// JSON artifact (BENCH_10.json), regenerable with the command recorded
// inside it.
func writeBoundedBenchReport(b *testing.B, path string, budget time.Duration, fresh, bounded *loadgen.HistSnapshot, st core.Stats) {
	rep := struct {
		Command      string  `json:"command"`
		BudgetMs     int64   `json:"read_stale_ms"`
		FreshP50us   int64   `json:"fresh_p50_us"`
		FreshP99us   int64   `json:"fresh_p99_us"`
		FreshMeanUs  float64 `json:"fresh_mean_us"`
		BoundP50us   int64   `json:"bounded_p50_us"`
		BoundP99us   int64   `json:"bounded_p99_us"`
		BoundMeanUs  float64 `json:"bounded_mean_us"`
		BoundedSrv   int64   `json:"bounded_srv"`
		BoundedWins  bool    `json:"bounded_beats_fresh_p99"`
		P99SpeedupX  float64 `json:"p99_speedup_x"`
		MeanSpeedupX float64 `json:"mean_speedup_x"`
	}{
		Command:     "PEQUOD_BOUNDED_BENCH_OUT=BENCH_10.json go test -bench BenchmarkBoundedStaleness -run '^$' -benchtime 1x .",
		BudgetMs:    budget.Milliseconds(),
		FreshP50us:  fresh.Quantile(0.50),
		FreshP99us:  fresh.Quantile(0.99),
		FreshMeanUs: fresh.Mean(),
		BoundP50us:  bounded.Quantile(0.50),
		BoundP99us:  bounded.Quantile(0.99),
		BoundMeanUs: bounded.Mean(),
		BoundedSrv:  st.BoundedStaleServes,
	}
	rep.BoundedWins = rep.BoundP99us < rep.FreshP99us
	rep.P99SpeedupX = float64(rep.FreshP99us) / float64(rep.BoundP99us)
	rep.MeanSpeedupX = rep.FreshMeanUs / rep.BoundMeanUs
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s (bounded p99 %dµs vs fresh p99 %dµs)", path, rep.BoundP99us, rep.FreshP99us)
}

// BenchmarkClusterScan measures networked scan fan-out: warm timeline
// scans against a Cluster of 1, 2, and 4 single-shard servers, the
// on-the-wire counterpart of BenchmarkShardScaling. Cross-server ranges
// split by owner, fetch concurrently, and merge at the client.
func BenchmarkClusterScan(b *testing.B) {
	ctx := context.Background()
	const users = 64
	uid := func(u int) string { return fmt.Sprintf("u%03d", u%users) }
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) {
			var addrs []string
			var bounds []string
			for i := 0; i < n; i++ {
				s, err := NewServer(ServerConfig{Name: fmt.Sprintf("b%d", i)})
				if err != nil {
					b.Fatal(err)
				}
				addr, err := s.Start()
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				addrs = append(addrs, addr)
				if i > 0 {
					// Split the timeline table across the members; base
					// tables land on member 0.
					bounds = append(bounds, fmt.Sprintf("t|%s", uid(users*i/n)))
				}
			}
			cl, err := NewCluster(ctx, ClusterConfig{
				Addrs:  addrs,
				Bounds: bounds,
				Joins:  "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>",
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			var pairs []KV
			for u := 0; u < users; u++ {
				for p := 0; p < 8; p++ {
					pairs = append(pairs, KV{Key: JoinKey("s", uid(u), uid(u+p+1)), Value: "1"})
				}
				for i := 0; i < 16; i++ {
					pairs = append(pairs, KV{Key: JoinKey("p", uid(u), fmt.Sprintf("%04d", i)), Value: "tweet body text"})
				}
			}
			if err := cl.PutBatch(ctx, pairs); err != nil {
				b.Fatal(err)
			}
			if err := cl.Quiesce(ctx); err != nil {
				b.Fatal(err)
			}
			// Warm every timeline, then measure: per-user warm scans plus
			// one full cross-server sweep per round.
			for u := 0; u < users; u++ {
				r := ScanRange("t", uid(u))
				if _, err := cl.Scan(ctx, r.Lo, r.Hi, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := ScanRange("t", uid(i))
				if _, err := cl.Scan(ctx, r.Lo, r.Hi, 0); err != nil {
					b.Fatal(err)
				}
				if i%users == 0 {
					if _, err := cl.Scan(ctx, "t|", "t}", 0); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
