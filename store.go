package pequod

import (
	"context"

	"pequod/internal/core"
	"pequod/internal/keys"
)

// Store is the unified Pequod API: every deployment shape — the
// embedded Cache, the networked Client, the partitioned Cluster —
// presents the same surface, so applications write to one interface
// and choose (or change) the deployment underneath.
//
// Every method takes a context and returns an error. Deadlines bound
// blocking work: an operation that would wait on outstanding base-data
// loads (§3.3) past the deadline fails instead of hanging, and on the
// networked implementations the remaining budget travels with the
// request so the server stops work on doomed calls. Cancellation fails
// the call fast and leaves the store usable.
//
// The batch forms exist for the paper's event-driven clients (§5.1),
// which keep many RPCs outstanding: a batch pipelines every element
// before waiting on any, so it costs one network round trip per server
// touched rather than one per element. On the embedded Cache they are
// simple loops.
//
// Distributed failures surface as wrapped sentinel errors, matchable
// with errors.Is: ErrNotOwner when a routing retry budget ran out
// mid-migration, ErrMemberDown when a member stayed unreachable past
// the budget (which spans an automatic failover — see Admin.Repair).
// Cluster-reshaping failures on the Admin surface additionally use
// ErrDraining and ErrConflict.
type Store interface {
	// Get returns the value under key, computing covering joins on
	// demand.
	Get(ctx context.Context, key string) (value string, found bool, err error)
	// Put stores value under key and runs incremental view maintenance.
	Put(ctx context.Context, key, value string) error
	// Remove deletes key, reporting whether it existed.
	Remove(ctx context.Context, key string) (found bool, err error)
	// Scan returns up to limit (0 = all) pairs in [lo, hi) in key
	// order, computing overlapping joins on demand. An empty hi means
	// "to the end of the keyspace"; use PrefixEnd for prefix scans.
	Scan(ctx context.Context, lo, hi string, limit int) ([]KV, error)
	// Count returns the number of keys in [lo, hi) after join
	// computation.
	Count(ctx context.Context, lo, hi string) (int64, error)
	// Install parses and installs cache joins ("add-join", §3).
	Install(ctx context.Context, joins string) error
	// Stats snapshots the engine activity counters, aggregated over
	// whatever the store spans (shards, servers).
	Stats(ctx context.Context) (Stats, error)
	// Quiesce blocks until asynchronous replication visible to this
	// store has settled: after it returns, reads see every write
	// acknowledged before the call (§2.4's eventual consistency,
	// settled on demand).
	Quiesce(ctx context.Context) error
	// Close releases the store's resources. Networked stores close
	// their connections; the servers they talk to keep running.
	Close() error

	// GetBatch fetches many keys; results align with keys.
	GetBatch(ctx context.Context, keys []string) ([]Lookup, error)
	// PutBatch stores many pairs. Pairs with the same home apply in
	// slice order; pairs with different homes are concurrent, like
	// independent callers.
	PutBatch(ctx context.Context, pairs []KV) error
	// ScanBatch runs several range scans, each with its own limit
	// budget (0 = all), returning results aligned with ranges.
	ScanBatch(ctx context.Context, ranges []Range, limit int) ([][]KV, error)
}

// Lookup is one result of a batched point read.
type Lookup = core.Lookup

// Range is a half-open key range [Lo, Hi); an empty Hi means "to the
// end of the keyspace". ScanRange builds one from key components.
type Range = keys.Range

// ScanRange returns the Range covering exactly the keys that begin with
// the given components: ScanRange("t", "ann") spans ("t|ann|", "t|ann}").
func ScanRange(comps ...string) Range {
	return keys.RangeOf(comps...)
}

// The three deployment shapes all satisfy Store.
var (
	_ Store = (*Cache)(nil)
	_ Store = (*Client)(nil)
	_ Store = (*Cluster)(nil)
)
