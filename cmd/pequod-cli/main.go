// Command pequod-cli is a command-line client for Pequod servers. It
// speaks the unified Store API: point it at one server (-addr) or at a
// partitioned cluster (-addrs with -bounds), and the same commands work
// against either. Cluster mode additionally drives live re-partitioning
// (the move and rebalance subcommands).
//
// Usage:
//
//	pequod-cli [-addr host:port] command args...
//	pequod-cli -addrs a:1,a:2 -bounds 'm' command args...
//
// Flags:
//
//	-addr host:port   single server address (default 127.0.0.1:7744)
//	-addrs a,b,...    cluster member addresses, one per partition range
//	-bounds k1,k2     partition split points (cluster mode; one fewer
//	                  than -addrs)
//	-timeout dur      per-invocation deadline (default 10s)
//	-stale dur        staleness budget for reads (get/scan/scanpfx/count;
//	                  default 0 = fully fresh): the server may answer
//	                  from its current view when all deferred
//	                  maintenance covering the read is younger than the
//	                  budget — see `health`'s lag column for what the
//	                  cluster's current debt looks like
//
// Commands (both modes):
//
//	get KEY                  print the value under KEY
//	put KEY VALUE            store VALUE under KEY
//	rm KEY                   remove KEY
//	scan LO HI [LIMIT]       print pairs in [LO, HI)
//	scanpfx COMP [COMP...]   print pairs with the component prefix
//	count LO HI              count keys in [LO, HI)
//	addjoin SPEC             install a cache join
//	quiesce                  settle asynchronous replication
//	stat                     print engine counters
//
// Commands (single-server mode only):
//
//	statjson                 print the raw per-server stats JSON
//	                         (entries, bytes, rebalancer state, load,
//	                         cluster map) — cluster members each have
//	                         their own; point -addr at one to inspect it
//
// Commands (cluster mode only — the pequod.Admin surface):
//
//	move IDX BOUND           live-migrate: move partition bound IDX to
//	                         BOUND, transferring the implied key range
//	                         between the servers on either side
//	rebalance [DUR]          watch per-server load and migrate hot
//	                         ranges for DUR (default 30s), one decision
//	                         per second, printing each move
//	add ADDR [OWNER BOUND]   join the server at ADDR to the cluster
//	                         live: wire it into the mesh, grant it an
//	                         initial slice (owner OWNER's range split
//	                         at BOUND; picked from load samples when
//	                         omitted), and publish the grown map
//	drain ADDR               stream every range the member at ADDR
//	                         owns to its neighbors, remove it from the
//	                         map, and tear down its mesh wiring — then
//	                         it is safe to stop the process
//	health                   probe every member and print one line each:
//	                         liveness, durable ID, owned ranges, replicas
//	                         held, replication lag and staleness debt
//	                         (what bounded reads trade against a -stale
//	                         budget), and — on members running with a
//	                         -data-dir — durability state (write-behind
//	                         log lag, last snapshot age, and lineage
//	                         damage: a corrupt lineage or dropped records
//	                         print a CORRUPT/DROPPED marker, while a
//	                         recovered crash tail prints torn-tail —
//	                         healthy, nothing beyond the crash window
//	                         was lost)
//	repair                   reassign every unreachable member's ranges
//	                         to surviving replica holders and publish
//	                         the repaired map (what the automatic
//	                         failure detector runs on a confirmed death)
//	snapshot                 ask every member to write a durable snapshot
//	                         now, bounding restart replay before planned
//	                         maintenance (members without a -data-dir
//	                         fail theirs and are named in the error)
//	restore OLD NEW          substitute NEW for the confirmed-dead member
//	                         OLD in the map, serving OLD's ranges from
//	                         the durable lineage the server at NEW
//	                         recovered (start it with -data-dir over the
//	                         re-keyed dir first; see -from below)
//
// Commands (no server connection — local data dir):
//
//	restore -from DIR NEW    re-key the meta.json identity of the dead
//	                         member's data dir DIR to the new address
//	                         NEW, the offline first step of a
//	                         cross-address restore; prints the old
//	                         address to pass to the cluster-mode restore
//
// See docs/OPERATIONS.md for the full add/drain/repair runbooks
// (including what the failure modes look like and how to read the stat
// output).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"pequod"
)

// usageText is the -h command summary (the flag package prints the
// flags themselves).
const usageText = `usage:
  pequod-cli [-addr host:port] command args...
  pequod-cli -addrs a:1,a:2 -bounds 'm' command args...

commands (both modes):
  get KEY                  print the value under KEY
  put KEY VALUE            store VALUE under KEY
  rm KEY                   remove KEY
  scan LO HI [LIMIT]       print pairs in [LO, HI)
  scanpfx COMP [COMP...]   print pairs with the component prefix
  count LO HI              count keys in [LO, HI)
  addjoin SPEC             install a cache join
  quiesce                  settle asynchronous replication
  stat                     print engine counters

commands (single-server mode only):
  statjson                 print the raw per-server stats JSON

commands (cluster mode only):
  move IDX BOUND           live-migrate bound IDX to BOUND
  rebalance [DUR]          auto-migrate hot ranges for DUR (default 30s)
  add ADDR [OWNER BOUND]   join the server at ADDR live (see docs/OPERATIONS.md)
  drain ADDR               drain the member at ADDR live, then remove it
  health                   probe every member: liveness, ID, ranges, replicas,
                           replication lag / staleness debt, durability
                           (log lag, snapshot age, lineage damage)
  repair                   promote replicas over unreachable members (failover)
  snapshot                 durable snapshot at every member (bounds restart replay)
  restore OLD NEW          substitute NEW for dead member OLD, serving OLD's
                           ranges from the lineage the server at NEW recovered

commands (no server connection):
  restore -from DIR NEW    re-key the data dir DIR's identity to address NEW
                           (the offline first step of a cross-address restore)

flags:
`

func main() {
	log.SetPrefix("pequod-cli: ")
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:7744", "server address")
	addrs := flag.String("addrs", "", "comma-separated cluster member addresses, one per partition range")
	bounds := flag.String("bounds", "", "comma-separated partition split points (cluster mode; one fewer than -addrs)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-invocation deadline")
	stale := flag.Duration("stale", 0, "staleness budget for reads (0 = fully fresh)")
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), usageText)
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	// `restore -from DIR NEW` is purely local (it rewrites a data dir's
	// meta.json); handle it before dialing anything.
	if args[0] == "restore" && len(args) == 4 && args[1] == "-from" {
		dir, newAddr := args[2], args[3]
		old, err := pequod.RekeyDataDir(dir, newAddr)
		if err != nil {
			log.Fatal(err)
		}
		if old == newAddr {
			fmt.Printf("%s already keyed to %s (re-key is idempotent)\n", dir, newAddr)
		} else {
			fmt.Printf("re-keyed %s: %s -> %s\n", dir, old, newAddr)
		}
		fmt.Printf("next: start the server over it:\n  pequod-server -addr %s -data-dir %s ...\n", newAddr, dir)
		fmt.Printf("then publish the substitution:\n  pequod-cli -addrs ... -bounds ... restore %s %s\n", old, newAddr)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if *stale > 0 {
		ctx = pequod.WithFreshness(ctx, *stale)
	}

	var store pequod.Store
	if *addrs != "" {
		cfg := pequod.ClusterConfig{Addrs: strings.Split(*addrs, ",")}
		if *bounds != "" {
			cfg.Bounds = strings.Split(*bounds, ",")
		}
		cl, err := pequod.NewCluster(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		store = cl
	} else {
		c, err := pequod.DialContext(ctx, *addr)
		if err != nil {
			log.Fatal(err)
		}
		store = c
	}
	defer store.Close()
	if err := run(ctx, store, args); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, c pequod.Store, args []string) error {
	switch cmd := args[0]; cmd {
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("get KEY")
		}
		v, found, err := c.Get(ctx, args[1])
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("%q not found", args[1])
		}
		fmt.Println(v)
	case "put":
		if len(args) != 3 {
			return fmt.Errorf("put KEY VALUE")
		}
		return c.Put(ctx, args[1], args[2])
	case "rm":
		if len(args) != 2 {
			return fmt.Errorf("rm KEY")
		}
		found, err := c.Remove(ctx, args[1])
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("%q not found", args[1])
		}
	case "scan":
		if len(args) < 3 || len(args) > 4 {
			return fmt.Errorf("scan LO HI [LIMIT]")
		}
		limit := 0
		if len(args) == 4 {
			var err error
			limit, err = strconv.Atoi(args[3])
			if err != nil {
				return err
			}
		}
		return printScan(ctx, c, args[1], args[2], limit)
	case "scanpfx":
		if len(args) < 2 {
			return fmt.Errorf("scanpfx COMP [COMP...]")
		}
		r := pequod.ScanRange(args[1:]...)
		return printScan(ctx, c, r.Lo, r.Hi, 0)
	case "count":
		if len(args) != 3 {
			return fmt.Errorf("count LO HI")
		}
		n, err := c.Count(ctx, args[1], args[2])
		if err != nil {
			return err
		}
		fmt.Println(n)
	case "addjoin":
		if len(args) != 2 {
			return fmt.Errorf("addjoin SPEC")
		}
		return c.Install(ctx, args[1])
	case "quiesce":
		return c.Quiesce(ctx)
	case "stat":
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%+v\n", st)
	case "statjson":
		cl, ok := c.(*pequod.Client)
		if !ok {
			return fmt.Errorf("statjson needs a single server (-addr); cluster members each have their own")
		}
		raw, err := cl.Stat(ctx)
		if err != nil {
			return err
		}
		fmt.Println(raw)
	case "move":
		adm, ok := c.(pequod.Admin)
		if !ok {
			return fmt.Errorf("move needs cluster mode (-addrs with -bounds)")
		}
		if len(args) != 3 {
			return fmt.Errorf("move IDX BOUND")
		}
		idx, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		if err := adm.MoveBound(ctx, idx, args[2]); err != nil {
			return err
		}
		st := adm.RebalancerStats()
		fmt.Printf("moved bound %d to %q (map v%d: %q)\n", idx, args[2], st.Version, st.Bounds)
	case "add":
		adm, ok := c.(pequod.Admin)
		if !ok {
			return fmt.Errorf("add needs cluster mode (-addrs with -bounds)")
		}
		switch len(args) {
		case 2:
			if err := adm.AddServer(ctx, args[1]); err != nil {
				return err
			}
		case 4:
			owner, err := strconv.Atoi(args[2])
			if err != nil {
				return err
			}
			if err := adm.AddServerAt(ctx, args[1], owner, args[3]); err != nil {
				return err
			}
		default:
			return fmt.Errorf("add ADDR [OWNER BOUND]")
		}
		st := adm.RebalancerStats()
		fmt.Printf("added %s (map e%d v%d: %d members, bounds %q)\n",
			args[1], st.Epoch, st.Version, adm.Members(), st.Bounds)
	case "drain":
		adm, ok := c.(pequod.Admin)
		if !ok {
			return fmt.Errorf("drain needs cluster mode (-addrs with -bounds)")
		}
		if len(args) != 2 {
			return fmt.Errorf("drain ADDR")
		}
		if err := adm.DrainServer(ctx, args[1]); err != nil {
			return err
		}
		st := adm.RebalancerStats()
		fmt.Printf("drained %s (map e%d v%d: %d members, bounds %q); the process can be stopped\n",
			args[1], st.Epoch, st.Version, adm.Members(), st.Bounds)
	case "health":
		adm, ok := c.(pequod.Admin)
		if !ok {
			return fmt.Errorf("health needs cluster mode (-addrs with -bounds)")
		}
		if len(args) != 1 {
			return fmt.Errorf("health")
		}
		down, damaged := 0, 0
		for _, h := range adm.Health(ctx) {
			if h.Alive {
				durable := "durable=off"
				if h.Durable {
					age := "none"
					if h.SnapshotAgeMS >= 0 {
						age = (time.Duration(h.SnapshotAgeMS) * time.Millisecond).String()
					}
					durable = fmt.Sprintf("log-lag=%dB\tsnapshot-age=%s", h.LogLagBytes, age)
					// A recovered crash tail is healthy — only the un-fsynced
					// window was lost, by design. Corruption and drops mean
					// fsynced, acknowledged data is gone; mark them loudly.
					if h.TornTail {
						durable += "\ttorn-tail (healthy post-crash recovery)"
					}
					if h.CorruptSegments > 0 || h.CorruptSnapshots > 0 {
						damaged++
						durable += fmt.Sprintf("\tCORRUPT lineage: %d segment(s), %d snapshot(s)", h.CorruptSegments, h.CorruptSnapshots)
					}
					if h.DroppedRecords > 0 {
						damaged++
						durable += fmt.Sprintf("\tDROPPED %d record(s)", h.DroppedRecords)
					}
					if h.PendingRecords > 0 {
						durable += fmt.Sprintf("\tpending %d record(s) on flush retry", h.PendingRecords)
					}
				}
				lag := fmt.Sprintf("lag=%s", time.Duration(h.LagUS)*time.Microsecond)
				if h.StaleSpans > 0 {
					lag += fmt.Sprintf("\tstale-spans=%d\tstale-oldest=%s", h.StaleSpans, time.Duration(h.StaleOldUS)*time.Microsecond)
				}
				fmt.Printf("%s\talive\tid=%s\towners=%d\treplicas=%d\t%s\t%s\n", h.Addr, h.ID, h.Owners, h.Replicas, lag, durable)
				continue
			}
			down++
			fmt.Printf("%s\tDOWN\towners=%d\t%s\n", h.Addr, h.Owners, h.Err)
		}
		if down > 0 {
			return fmt.Errorf("%d member(s) down; run `pequod-cli repair` (or let the failure detector catch it)", down)
		}
		if damaged > 0 {
			return fmt.Errorf("%d member(s) report durable lineage damage; see the scrub triage row in docs/OPERATIONS.md", damaged)
		}
	case "repair":
		adm, ok := c.(pequod.Admin)
		if !ok {
			return fmt.Errorf("repair needs cluster mode (-addrs with -bounds)")
		}
		if len(args) != 1 {
			return fmt.Errorf("repair")
		}
		repaired, err := adm.Repair(ctx)
		if err != nil {
			return err
		}
		st := adm.RebalancerStats()
		if len(repaired) == 0 {
			fmt.Printf("all members healthy; nothing to repair (map e%d v%d)\n", st.Epoch, st.Version)
		} else {
			fmt.Printf("repaired %s out of the map (map e%d v%d: %d members remain)\n",
				strings.Join(repaired, ","), st.Epoch, st.Version, adm.Members())
		}
	case "restore":
		adm, ok := c.(pequod.Admin)
		if !ok {
			return fmt.Errorf("restore OLD NEW needs cluster mode (-addrs with -bounds); restore -from DIR NEW needs no connection")
		}
		if len(args) != 3 {
			return fmt.Errorf("restore OLD NEW (or restore -from DIR NEW for the offline re-key step)")
		}
		if err := adm.Restore(ctx, args[1], args[2]); err != nil {
			return err
		}
		st := adm.RebalancerStats()
		fmt.Printf("restored %s as %s (map e%d v%d: %d members, bounds %q)\n",
			args[1], args[2], st.Epoch, st.Version, adm.Members(), st.Bounds)
	case "snapshot":
		adm, ok := c.(pequod.Admin)
		if !ok {
			return fmt.Errorf("snapshot needs cluster mode (-addrs with -bounds)")
		}
		if len(args) != 1 {
			return fmt.Errorf("snapshot")
		}
		if err := adm.Snapshot(ctx); err != nil {
			return err
		}
		fmt.Printf("snapshot written at all %d members; restart replay starts from here\n", adm.Members())
	case "rebalance":
		cl, ok := c.(*pequod.Cluster)
		if !ok {
			return fmt.Errorf("rebalance needs cluster mode (-addrs with -bounds)")
		}
		dur := 30 * time.Second
		if len(args) > 2 {
			return fmt.Errorf("rebalance [DUR]")
		}
		if len(args) == 2 {
			var err error
			if dur, err = time.ParseDuration(args[1]); err != nil {
				return err
			}
		}
		return rebalance(cl, dur)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// rebalance drives one load-sampling/migration decision per second for
// dur, printing each executed move. Each tick gets its own deadline so
// a long watch is not cut short by the -timeout connection budget.
func rebalance(cl *pequod.Cluster, dur time.Duration) error {
	deadline := time.Now().Add(dur)
	for {
		tctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		moved, err := cl.RebalanceTick(tctx)
		cancel()
		if err != nil {
			return err
		}
		if moved {
			st := cl.RebalancerStats()
			fmt.Printf("migration %d: map v%d, bounds %q, loads %.0f\n",
				st.Migrations, st.Version, st.Bounds, st.Loads)
		}
		if !time.Now().Add(time.Second).Before(deadline) {
			st := cl.RebalancerStats()
			fmt.Printf("done: %d migrations, map v%d\n", st.Migrations, st.Version)
			return nil
		}
		time.Sleep(time.Second)
	}
}

func printScan(ctx context.Context, c pequod.Store, lo, hi string, limit int) error {
	kvs, err := c.Scan(ctx, lo, hi, limit)
	if err != nil {
		return err
	}
	for _, kv := range kvs {
		fmt.Printf("%s\t%s\n", kv.Key, kv.Value)
	}
	return nil
}
