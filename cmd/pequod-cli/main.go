// Command pequod-cli is a command-line client for a Pequod server.
//
// Usage:
//
//	pequod-cli [-addr host:port] command args...
//
// Commands:
//
//	get KEY                  print the value under KEY
//	put KEY VALUE            store VALUE under KEY
//	rm KEY                   remove KEY
//	scan LO HI [LIMIT]       print pairs in [LO, HI)
//	scanpfx COMP [COMP...]   print pairs with the component prefix
//	count LO HI              count keys in [LO, HI)
//	addjoin SPEC             install a cache join
//	stat                     print server statistics (JSON)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"pequod/internal/client"
	"pequod/internal/keys"
)

func main() {
	log.SetPrefix("pequod-cli: ")
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:7744", "server address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	c, err := client.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := run(c, args); err != nil {
		log.Fatal(err)
	}
}

func run(c *client.Client, args []string) error {
	switch cmd := args[0]; cmd {
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("get KEY")
		}
		v, found, err := c.Get(args[1])
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("%q not found", args[1])
		}
		fmt.Println(v)
	case "put":
		if len(args) != 3 {
			return fmt.Errorf("put KEY VALUE")
		}
		return c.Put(args[1], args[2])
	case "rm":
		if len(args) != 2 {
			return fmt.Errorf("rm KEY")
		}
		found, err := c.Remove(args[1])
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("%q not found", args[1])
		}
	case "scan":
		if len(args) < 3 || len(args) > 4 {
			return fmt.Errorf("scan LO HI [LIMIT]")
		}
		limit := 0
		if len(args) == 4 {
			var err error
			limit, err = strconv.Atoi(args[3])
			if err != nil {
				return err
			}
		}
		kvs, err := c.Scan(args[1], args[2], limit)
		if err != nil {
			return err
		}
		for _, kv := range kvs {
			fmt.Printf("%s\t%s\n", kv.Key, kv.Value)
		}
	case "scanpfx":
		if len(args) < 2 {
			return fmt.Errorf("scanpfx COMP [COMP...]")
		}
		r := keys.RangeOf(args[1:]...)
		kvs, err := c.Scan(r.Lo, r.Hi, 0)
		if err != nil {
			return err
		}
		for _, kv := range kvs {
			fmt.Printf("%s\t%s\n", kv.Key, kv.Value)
		}
	case "count":
		if len(args) != 3 {
			return fmt.Errorf("count LO HI")
		}
		n, err := c.Count(args[1], args[2])
		if err != nil {
			return err
		}
		fmt.Println(n)
	case "addjoin":
		if len(args) != 2 {
			return fmt.Errorf("addjoin SPEC")
		}
		return c.AddJoin(args[1])
	case "stat":
		s, err := c.Stat()
		if err != nil {
			return err
		}
		fmt.Println(s)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}
