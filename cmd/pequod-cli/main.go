// Command pequod-cli is a command-line client for Pequod servers. It
// speaks the unified Store API: point it at one server (-addr) or at a
// partitioned cluster (-addrs with -bounds), and the same commands work
// against either.
//
// Usage:
//
//	pequod-cli [-addr host:port] command args...
//	pequod-cli -addrs a:1,a:2 -bounds 'm' command args...
//
// Commands:
//
//	get KEY                  print the value under KEY
//	put KEY VALUE            store VALUE under KEY
//	rm KEY                   remove KEY
//	scan LO HI [LIMIT]       print pairs in [LO, HI)
//	scanpfx COMP [COMP...]   print pairs with the component prefix
//	count LO HI              count keys in [LO, HI)
//	addjoin SPEC             install a cache join
//	quiesce                  settle asynchronous replication
//	stat                     print engine counters
//	statjson                 print the raw per-server stats JSON
//	                         (entries, bytes, rebalancer state) —
//	                         single-server mode only
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"pequod"
)

func main() {
	log.SetPrefix("pequod-cli: ")
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:7744", "server address")
	addrs := flag.String("addrs", "", "comma-separated cluster member addresses, one per partition range")
	bounds := flag.String("bounds", "", "comma-separated partition split points (cluster mode; one fewer than -addrs)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-invocation deadline")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var store pequod.Store
	if *addrs != "" {
		cfg := pequod.ClusterConfig{Addrs: strings.Split(*addrs, ",")}
		if *bounds != "" {
			cfg.Bounds = strings.Split(*bounds, ",")
		}
		cl, err := pequod.NewCluster(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		store = cl
	} else {
		c, err := pequod.DialContext(ctx, *addr)
		if err != nil {
			log.Fatal(err)
		}
		store = c
	}
	defer store.Close()
	if err := run(ctx, store, args); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, c pequod.Store, args []string) error {
	switch cmd := args[0]; cmd {
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("get KEY")
		}
		v, found, err := c.Get(ctx, args[1])
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("%q not found", args[1])
		}
		fmt.Println(v)
	case "put":
		if len(args) != 3 {
			return fmt.Errorf("put KEY VALUE")
		}
		return c.Put(ctx, args[1], args[2])
	case "rm":
		if len(args) != 2 {
			return fmt.Errorf("rm KEY")
		}
		found, err := c.Remove(ctx, args[1])
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("%q not found", args[1])
		}
	case "scan":
		if len(args) < 3 || len(args) > 4 {
			return fmt.Errorf("scan LO HI [LIMIT]")
		}
		limit := 0
		if len(args) == 4 {
			var err error
			limit, err = strconv.Atoi(args[3])
			if err != nil {
				return err
			}
		}
		return printScan(ctx, c, args[1], args[2], limit)
	case "scanpfx":
		if len(args) < 2 {
			return fmt.Errorf("scanpfx COMP [COMP...]")
		}
		r := pequod.ScanRange(args[1:]...)
		return printScan(ctx, c, r.Lo, r.Hi, 0)
	case "count":
		if len(args) != 3 {
			return fmt.Errorf("count LO HI")
		}
		n, err := c.Count(ctx, args[1], args[2])
		if err != nil {
			return err
		}
		fmt.Println(n)
	case "addjoin":
		if len(args) != 2 {
			return fmt.Errorf("addjoin SPEC")
		}
		return c.Install(ctx, args[1])
	case "quiesce":
		return c.Quiesce(ctx)
	case "stat":
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%+v\n", st)
	case "statjson":
		cl, ok := c.(*pequod.Client)
		if !ok {
			return fmt.Errorf("statjson needs a single server (-addr); cluster members each have their own")
		}
		raw, err := cl.Stat(ctx)
		if err != nil {
			return err
		}
		fmt.Println(raw)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

func printScan(ctx context.Context, c pequod.Store, lo, hi string, limit int) error {
	kvs, err := c.Scan(ctx, lo, hi, limit)
	if err != nil {
		return err
	}
	for _, kv := range kvs {
		fmt.Printf("%s\t%s\n", kv.Key, kv.Value)
	}
	return nil
}
