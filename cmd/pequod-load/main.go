// Command pequod-load is the open-loop load harness: it simulates a
// large Twip user universe posting and reading temporal-bucketed
// timelines against a Pequod cluster at a fixed offered arrival rate —
// arrivals are scheduled by a Poisson clock that never slackens when
// the cluster slows, so the latency distribution is free of
// coordinated omission — while an online checker audits sampled
// timelines for lost acknowledged writes, out-of-budget staleness,
// phantoms, duplicates, and payload corruption as the load runs.
//
// Two modes:
//
//   - Self-contained (default): the harness builds its own durable
//     cluster of -servers members and drives the full chaos script
//     through the Admin API — steady state, live join, drain, bound
//     rebalance, warm restart, and a member kill repaired by the
//     automatic failure detector — all under fire.
//   - Connect (-addrs with -bounds, as for pequod-cli): the harness
//     drives load at an existing deployment. Events that need to own
//     the server processes (join/drain/kill/restart) are rejected;
//     steady and rebalance phases work.
//
// The run is fully determined by -seed (printed at start): the social
// graph, the celebrity skew, the arrival schedule, and the operation
// blend all derive from it, so a failing run replays exactly.
//
// Usage:
//
//	pequod-load [flags]
//	pequod-load -addrs a:1,a:2 -bounds 't|' -phases steady [flags]
//
// The per-phase report — offered vs achieved throughput and latency
// quantiles (p50/p99/p999/max, measured from scheduled arrival) plus
// the checker's verdict — is written as JSON to -out ("-" = stdout).
// The process exits 1 if the checker found any violation, so a CI
// smoke step is just: pequod-load -rate 300 -phase-dur 500ms.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"pequod/internal/loadgen"
	"pequod/internal/twip"
)

func main() {
	var (
		users      = flag.Int("users", 1_000_000, "simulated universe size (users that can post / be followed)")
		active     = flag.Int("active", 2000, "reader pool actually issuing timeline checks")
		follows    = flag.Int("follows", 8, "mean followee-set size for active users")
		trackEvery = flag.Int("track-every", 16, "every k-th active user is checker-audited")

		rate     = flag.Float64("rate", 2000, "offered arrival rate, ops/sec (open-loop; never slackens)")
		workers  = flag.Int("workers", 16, "concurrent executors draining the arrival queue")
		queue    = flag.Int("queue", 0, "arrival queue depth; 0 = workers*64 (overflow is shed, not back-pressured)")
		budget   = flag.Duration("budget", 2*time.Second, "staleness budget for the online checker")
		tweetLen = flag.Int("tweet-len", 100, "synthetic post payload size, bytes")
		mixFlag  = flag.String("mix", "", "operation blend as login:check:subscribe:post percentages, e.g. 5:70:5:20")
		seed     = flag.Int64("seed", 1, "determinism root: graph, skew, arrivals, and blend all derive from it")

		phases   = flag.String("phases", "steady,join,drain,rebalance,restart,kill", "comma-separated phase script (names are events; 'steady' is traffic only)")
		phaseDur = flag.Duration("phase-dur", 10*time.Second, "traffic duration per phase (extended if its event runs longer)")

		servers     = flag.Int("servers", 4, "self-contained mode: cluster size")
		replicas    = flag.Int("replicas", 2, "self-contained mode: replica copies per range")
		dataDir     = flag.String("data-dir", "", "self-contained mode: root for per-member durable dirs (default: a temp dir; required by the restart event)")
		failEvery   = flag.Duration("failover-interval", 25*time.Millisecond, "self-contained mode: failure-detector probe interval")
		failMisses  = flag.Int("failover-misses", 3, "self-contained mode: missed probes before a member is declared dead")
		addrsFlag   = flag.String("addrs", "", "connect mode: comma-separated member addresses of an existing cluster")
		boundsFlag  = flag.String("bounds", "", "connect mode: comma-separated partition split points (one fewer than -addrs)")
		out         = flag.String("out", "-", "write the JSON report here ('-' = stdout)")
		timeoutFlag = flag.Duration("timeout", 15*time.Minute, "whole-run deadline")
		quiet       = flag.Bool("q", false, "suppress progress output on stderr")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("pequod-load: ")

	cfg := loadgen.Config{
		Users:            *users,
		ActiveUsers:      *active,
		Follows:          *follows,
		TrackEvery:       *trackEvery,
		Rate:             *rate,
		Workers:          *workers,
		Queue:            *queue,
		Budget:           *budget,
		TweetLen:         *tweetLen,
		Seed:             *seed,
		Servers:          *servers,
		Replicas:         *replicas,
		DataDir:          *dataDir,
		FailoverInterval: *failEvery,
		FailoverMisses:   *failMisses,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}

	var err error
	if cfg.Mix, err = parseMix(*mixFlag); err != nil {
		log.Fatal(err)
	}
	if cfg.Phases, err = parsePhases(*phases, *phaseDur); err != nil {
		log.Fatal(err)
	}
	if *addrsFlag != "" {
		cfg.Addrs = strings.Split(*addrsFlag, ",")
		if *boundsFlag != "" {
			cfg.Bounds = strings.Split(*boundsFlag, ",")
		}
		if len(cfg.Bounds) != len(cfg.Addrs)-1 {
			log.Fatalf("connect mode: %d addrs need %d -bounds split points, have %d",
				len(cfg.Addrs), len(cfg.Addrs)-1, len(cfg.Bounds))
		}
	} else if cfg.DataDir == "" {
		dir, err := os.MkdirTemp("", "pequod-load-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		cfg.DataDir = dir
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeoutFlag)
	defer cancel()

	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(rep.JSON()); err != nil {
		log.Fatal(err)
	}

	if rep.Checker.Violations != 0 {
		log.Printf("FAIL: %d checker violations (kinds: %v); replay with -seed %d",
			rep.Checker.Violations, rep.Checker.ViolationKinds, rep.Seed)
		for _, s := range rep.Checker.Samples {
			log.Printf("  %s", s)
		}
		os.Exit(1)
	}
	if !*quiet {
		log.Printf("OK: %d posts tracked, %d checks audited, %d rows verified, 0 violations (seed %d)",
			rep.Checker.PostsTracked, rep.Checker.ChecksAudited, rep.Checker.RowsVerified, rep.Seed)
	}
}

// parseMix reads "login:check:subscribe:post" percentages; empty means
// the loadgen default blend.
func parseMix(s string) (twip.Mix, error) {
	if s == "" {
		return twip.Mix{}, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return twip.Mix{}, fmt.Errorf("-mix wants login:check:subscribe:post, got %q", s)
	}
	var pct [4]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return twip.Mix{}, fmt.Errorf("-mix component %q: want a non-negative integer", p)
		}
		pct[i] = n
	}
	m := twip.Mix{Login: pct[0], Check: pct[1], Subscribe: pct[2], Post: pct[3]}
	if m.Total() != 100 {
		return twip.Mix{}, fmt.Errorf("-mix percentages sum to %d, want 100", m.Total())
	}
	return m, nil
}

// parsePhases turns the comma-separated script into loadgen phases:
// each name is an event ("join", "drain", "rebalance", "restart",
// "kill") except "steady", which is traffic only. Names may repeat.
func parsePhases(s string, d time.Duration) ([]loadgen.Phase, error) {
	var out []loadgen.Phase
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		ph := loadgen.Phase{Name: name, Duration: d}
		switch name {
		case "steady":
		case loadgen.EventJoin, loadgen.EventDrain, loadgen.EventRebalance,
			loadgen.EventKill, loadgen.EventRestart:
			ph.Event = name
		default:
			return nil, fmt.Errorf("unknown phase %q (want steady, join, drain, rebalance, restart, or kill)", name)
		}
		out = append(out, ph)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty phase script")
	}
	return out, nil
}
