// Command twip-bench runs the Twip workload (§5.1) against one chosen
// backend, for interactive performance work on a single system.
//
// Usage:
//
//	twip-bench [-system pequod|client-pequod|redis|memcached|postgres]
//	           [-users N] [-edges N] [-posts N] [-checks N]
//	           [-active pct] [-servers N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"

	"pequod/internal/baselines"
	"pequod/internal/baselines/memsim"
	"pequod/internal/baselines/redisim"
	"pequod/internal/baselines/sqlsim"
	"pequod/internal/client"
	"pequod/internal/server"
	"pequod/internal/twip"
)

func main() {
	log.SetPrefix("twip-bench: ")
	log.SetFlags(0)
	system := flag.String("system", "pequod", "backend: pequod|client-pequod|redis|memcached|postgres")
	users := flag.Int("users", 2000, "graph users")
	edges := flag.Int("edges", 30000, "graph edges")
	posts := flag.Int("posts", 4000, "historical posts")
	checks := flag.Int("checks", 15, "timeline checks per active user")
	active := flag.Int("active", 70, "active user percentage")
	servers := flag.Int("servers", 3, "cache servers")
	workers := flag.Int("workers", 16, "client worker goroutines")
	tweetLen := flag.Int("tweet", 100, "tweet length in bytes")
	flag.Parse()

	g := twip.Generate(*users, *edges, 42)
	hist := twip.GeneratePosts(g, *posts, 43, *tweetLen)
	w := twip.GenerateWorkload(g, twip.WorkloadConfig{
		ActiveFraction: float64(*active) / 100,
		ChecksPerUser:  *checks,
		Seed:           44,
		StartTime:      int64(len(hist)),
		TweetLen:       *tweetLen,
	})
	log.Printf("graph: %d users, %d edges (max followers %d); workload: %d ops",
		g.Users, g.Edges(), g.MaxFollowers(), len(w.Ops))

	b, cleanup, err := makeBackend(*system, *servers)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()

	log.Printf("loading graph and %d historical posts...", len(hist))
	if err := twip.LoadGraph(b, g, *workers); err != nil {
		log.Fatal(err)
	}
	if err := twip.LoadPosts(b, hist, *workers); err != nil {
		log.Fatal(err)
	}
	log.Printf("running...")
	res, err := twip.Run(b, w, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
}

func makeBackend(system string, n int) (twip.Backend, func(), error) {
	startPequod := func(joins string) ([]*client.Client, func(), error) {
		var clients []*client.Client
		var closers []func()
		cleanup := func() {
			for _, c := range clients {
				c.Close()
			}
			for _, f := range closers {
				f()
			}
		}
		for i := 0; i < n; i++ {
			s, err := server.New(server.Config{
				Name:           fmt.Sprintf("twip%d", i),
				Joins:          joins,
				SubtableDepths: map[string]int{"t": 2},
			})
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			addr, err := s.Start()
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			closers = append(closers, s.Close)
			c, err := client.Dial(addr)
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			clients = append(clients, c)
		}
		return clients, cleanup, nil
	}
	startBaseline := func(mk func() baselines.Handler, count int) ([]*client.Client, func(), error) {
		var clients []*client.Client
		var closers []func()
		cleanup := func() {
			for _, c := range clients {
				c.Close()
			}
			for _, f := range closers {
				f()
			}
		}
		for i := 0; i < count; i++ {
			srv := baselines.NewServer(mk())
			addr, err := srv.Start()
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			closers = append(closers, srv.Close)
			c, err := client.Dial(addr)
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			clients = append(clients, c)
		}
		return clients, cleanup, nil
	}

	switch system {
	case "pequod":
		cs, cleanup, err := startPequod(twip.Joins)
		if err != nil {
			return nil, nil, err
		}
		return &twip.PequodBackend{Clients: cs}, cleanup, nil
	case "client-pequod":
		cs, cleanup, err := startPequod("")
		if err != nil {
			return nil, nil, err
		}
		return &twip.ClientPequodBackend{Clients: cs}, cleanup, nil
	case "redis":
		cs, cleanup, err := startBaseline(func() baselines.Handler { return redisim.New() }, n)
		if err != nil {
			return nil, nil, err
		}
		return &twip.RedisBackend{Clients: cs}, cleanup, nil
	case "memcached":
		cs, cleanup, err := startBaseline(func() baselines.Handler { return memsim.New() }, n)
		if err != nil {
			return nil, nil, err
		}
		return &twip.MemcachedBackend{Clients: cs}, cleanup, nil
	case "postgres":
		cs, cleanup, err := startBaseline(func() baselines.Handler { return sqlsim.NewTwip() }, 1)
		if err != nil {
			return nil, nil, err
		}
		return &twip.PostgresBackend{Client: cs[0]}, cleanup, nil
	}
	return nil, nil, fmt.Errorf("unknown system %q", system)
}
