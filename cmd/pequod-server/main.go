// Command pequod-server runs a standalone Pequod cache server.
//
// Usage:
//
//	pequod-server [-addr :7744] [-joins file.pql] [-subtable t=2]...
//	              [-mem bytes] [-no-hints] [-no-sharing]
//
// The joins file holds cache-join specifications, one per line or
// semicolon-separated (// comments allowed), e.g. the Twip timeline join:
//
//	t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"pequod/internal/core"
	"pequod/internal/join"
	"pequod/internal/server"
)

type subtableFlags map[string]int

func (s subtableFlags) String() string { return fmt.Sprint(map[string]int(s)) }

func (s subtableFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want table=depth, got %q", v)
	}
	d, err := strconv.Atoi(parts[1])
	if err != nil {
		return err
	}
	s[parts[0]] = d
	return nil
}

func main() {
	log.SetPrefix("pequod-server: ")
	log.SetFlags(0)

	addr := flag.String("addr", ":7744", "listen address")
	joinsFile := flag.String("joins", "", "file of cache-join specifications to install at startup")
	memLimit := flag.Int64("mem", 0, "eviction threshold in bytes (0 = never evict)")
	noHints := flag.Bool("no-hints", false, "disable output hints (§4.2)")
	noSharing := flag.Bool("no-sharing", false, "disable value sharing (§4.3)")
	name := flag.String("name", "pequod", "server name for stats")
	subtables := subtableFlags{}
	flag.Var(subtables, "subtable", "subtable boundary, table=depth (repeatable, §4.1)")
	flag.Parse()

	joins := ""
	if *joinsFile != "" {
		data, err := os.ReadFile(*joinsFile)
		if err != nil {
			log.Fatal(err)
		}
		joins = string(data)
	}

	s, err := server.New(server.Config{
		Name: *name,
		Engine: core.Options{
			DisableOutputHints:  *noHints,
			DisableValueSharing: *noSharing,
			MemLimit:            *memLimit,
		},
		Joins:          joins,
		SubtableDepths: subtables,
	})
	if err != nil {
		log.Fatal(err)
	}
	installed, err := join.ParseAll(joins)
	if err != nil {
		log.Fatal(err) // unreachable: server.New validated already
	}
	log.Printf("listening on %s (%d joins installed)", *addr, len(installed))
	if err := s.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
}
