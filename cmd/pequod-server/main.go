// Command pequod-server runs a standalone Pequod cache server.
//
// Usage:
//
//	pequod-server [-addr :7744] [-name pequod] [-id node-a]
//	              [-joins file.pql] [-subtable t=2]...
//	              [-mem bytes] [-no-hints] [-no-sharing]
//	              [-shards n] [-bounds k1,k2,...]
//	              [-rebalance 100ms] [-rebalance-ratio 1.5]
//	              [-data-dir dir] [-sync-interval 25ms] [-snapshot-interval 30s]
//	              [-scrub-interval 1m] [-compact-interval 10s]
//
// -shards runs n partitioned engines served concurrently (§2.4 scaled
// into one process); -bounds sets the n-1 split points between them
// (comma-separated keys, e.g. -bounds "p|u0000500,s|,t|"). With -shards
// alone the key space is split evenly by key prefix. -name labels the
// server in stats; -id sets its durable member identity (shown by
// `pequod-cli health` and the stat RPC, so operators can tell a
// restarted member from a fresh one; defaults to the name); -mem sets
// the §2.5 eviction threshold; -no-hints and -no-sharing disable the
// §4.2/§4.3 optimizations (ablations).
//
// -rebalance enables load-aware *in-process* rebalancing at the given
// sampling interval (0 disables): hot key ranges migrate live between
// neighboring shards, so -bounds need not anticipate the workload's
// skew; -rebalance-ratio sets how far above the mean a shard's load
// must run to trigger a migration. The stat RPC reports migrations,
// the live bounds, and per-shard load.
//
// -data-dir enables the durable range store: base writes stream to a
// write-behind log under the directory (fsynced in batches every
// -sync-interval), periodic snapshots (every -snapshot-interval)
// truncate the log, and a restart with the same -data-dir recovers the
// member's rows, cluster position, and mesh wiring from disk before it
// serves — warm restarts, and the last-resort rebuild source for
// `pequod-cli` repairs when no live replica holder survives. Without
// the flag the server is purely in-memory, exactly as before. Two
// background loops ride along: a CRC scrub over the committed lineage
// (every -scrub-interval) that surfaces mid-lineage corruption through
// stats and `pequod-cli health` while replicas that could repair it
// still exist, and log compaction (every -compact-interval) that
// rewrites sealed segments dominated by dead overwrites so restart
// replay tracks live data rather than write volume. A negative
// interval disables its loop. See docs/OPERATIONS.md for sizing and
// recovery triage.
//
// Cluster deployments need no flags here: a pequod cluster client (or
// pequod-cli -addrs ... move/rebalance) publishes the cluster partition
// map to each member and drives *server-to-server* live migration over
// the wire; the stat RPC's cluster block shows this member's current
// map and owned ranges.
//
// The joins file holds cache-join specifications, one per line or
// semicolon-separated (// comments allowed), e.g. the Twip timeline join:
//
//	t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"pequod/internal/core"
	"pequod/internal/join"
	"pequod/internal/server"
	"pequod/internal/shard"
)

type subtableFlags map[string]int

func (s subtableFlags) String() string { return fmt.Sprint(map[string]int(s)) }

func (s subtableFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want table=depth, got %q", v)
	}
	d, err := strconv.Atoi(parts[1])
	if err != nil {
		return err
	}
	s[parts[0]] = d
	return nil
}

// splitBounds parses the -bounds flag ("" means none).
func splitBounds(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func main() {
	log.SetPrefix("pequod-server: ")
	log.SetFlags(0)

	addr := flag.String("addr", ":7744", "listen address")
	joinsFile := flag.String("joins", "", "file of cache-join specifications to install at startup")
	memLimit := flag.Int64("mem", 0, "eviction threshold in bytes (0 = never evict)")
	noHints := flag.Bool("no-hints", false, "disable output hints (§4.2)")
	noSharing := flag.Bool("no-sharing", false, "disable value sharing (§4.3)")
	name := flag.String("name", "pequod", "server name for stats")
	id := flag.String("id", "", "durable member identity, stable across restarts and address changes (default: the name)")
	shards := flag.Int("shards", 0, "number of partitioned in-process engines (0 = derived from -bounds, else 1); without -bounds the raw byte space is split evenly, which clusters ASCII-prefixed keys")
	bounds := flag.String("bounds", "", "comma-separated partition split points (shards-1 keys)")
	rebalance := flag.Duration("rebalance", 0, "load sampling interval for live shard rebalancing (0 = static bounds)")
	rebalanceRatio := flag.Float64("rebalance-ratio", 0, "hot-shard load ratio over the mean that triggers a migration (0 = default 1.5)")
	dataDir := flag.String("data-dir", "", "durable range store directory (empty = in-memory only)")
	syncInterval := flag.Duration("sync-interval", 0, "write-behind log fsync batching interval (0 = default 25ms; needs -data-dir)")
	snapshotInterval := flag.Duration("snapshot-interval", 0, "durable snapshot interval (0 = default 30s; needs -data-dir)")
	scrubInterval := flag.Duration("scrub-interval", 0, "durable lineage CRC scrub interval (0 = default 1m, negative = off; needs -data-dir)")
	compactInterval := flag.Duration("compact-interval", 0, "durable log compaction interval (0 = default 10s, negative = off; needs -data-dir)")
	subtables := subtableFlags{}
	flag.Var(subtables, "subtable", "subtable boundary, table=depth (repeatable, §4.1)")
	flag.Parse()

	joins := ""
	if *joinsFile != "" {
		data, err := os.ReadFile(*joinsFile)
		if err != nil {
			log.Fatal(err)
		}
		joins = string(data)
	}

	if *dataDir == "" && (*syncInterval != 0 || *snapshotInterval != 0 || *scrubInterval != 0 || *compactInterval != 0) {
		log.Fatal("-sync-interval, -snapshot-interval, -scrub-interval, and -compact-interval tune the durable store; pass -data-dir to enable it")
	}
	if *shards > 1 && *bounds == "" && *rebalance == 0 {
		log.Printf("warning: -shards without -bounds splits the raw byte space evenly;" +
			" keys with ASCII table prefixes (p|, s|, t|, ...) all land on one shard" +
			" — pass -bounds matched to your key distribution, or -rebalance to" +
			" let the server migrate hot ranges itself")
	}
	var reb *shard.Rebalance
	if *rebalance > 0 {
		reb = &shard.Rebalance{Interval: *rebalance, Ratio: *rebalanceRatio}
	}
	s, err := server.New(server.Config{
		Name: *name,
		ID:   *id,
		Engine: core.Options{
			DisableOutputHints:  *noHints,
			DisableValueSharing: *noSharing,
			MemLimit:            *memLimit,
		},
		Joins:            joins,
		SubtableDepths:   subtables,
		Shards:           *shards,
		Bounds:           splitBounds(*bounds),
		Rebalance:        reb,
		DataDir:          *dataDir,
		SyncInterval:     *syncInterval,
		SnapshotInterval: *snapshotInterval,
		ScrubInterval:    *scrubInterval,
		CompactInterval:  *compactInterval,
	})
	if err != nil {
		log.Fatal(err)
	}
	installed, err := join.ParseAll(joins)
	if err != nil {
		log.Fatal(err) // unreachable: server.New validated already
	}
	durably := ""
	if *dataDir != "" {
		durably = fmt.Sprintf(", durable in %s", *dataDir)
	}
	log.Printf("listening on %s (%d joins installed, %d shards%s)", *addr, len(installed), s.Pool().NumShards(), durably)
	if err := s.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
}
