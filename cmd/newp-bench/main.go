// Command newp-bench runs the Newp workload (§5.4) against the
// interleaved or non-interleaved page-assembly strategy.
//
// Usage:
//
//	newp-bench [-strategy interleaved|non-interleaved] [-users N]
//	           [-sessions N] [-votes pct] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pequod/internal/client"
	"pequod/internal/newp"
	"pequod/internal/server"
)

func main() {
	log.SetPrefix("newp-bench: ")
	log.SetFlags(0)
	strategy := flag.String("strategy", "interleaved", "interleaved|non-interleaved")
	users := flag.Int("users", 1000, "users")
	sessions := flag.Int("sessions", 10000, "user sessions")
	votePct := flag.Int("votes", 10, "vote rate percent")
	workers := flag.Int("workers", 16, "client worker goroutines")
	flag.Parse()

	joins := newp.InterleavedJoins
	if *strategy == "non-interleaved" {
		joins = newp.AggregateJoins
	} else if *strategy != "interleaved" {
		log.Fatalf("unknown strategy %q", *strategy)
	}

	s, err := server.New(server.Config{Name: "newp", Joins: joins})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	c, err := client.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	var b newp.Backend
	if *strategy == "interleaved" {
		b = &newp.Interleaved{C: c}
	} else {
		b = &newp.NonInterleaved{C: c}
	}

	d := &newp.Dataset{
		Users:    *users,
		Articles: *users * 2,
		Comments: *users * 5,
		Votes:    *users * 10,
		Seed:     5,
	}
	log.Printf("populating %d articles, %d comments, %d votes...", d.Articles, d.Comments, d.Votes)
	if err := d.Populate(b); err != nil {
		log.Fatal(err)
	}
	ops := d.Sessions(*sessions, float64(*votePct)/100, 9)
	log.Printf("running %d sessions at %d%% vote rate...", len(ops), *votePct)
	start := time.Now()
	items, err := newp.RunSessions(b, ops, *workers)
	if err != nil {
		log.Fatal(err)
	}
	dur := time.Since(start)
	fmt.Printf("%-16s %d sessions in %.3fs (%.0f sessions/s, %d items fetched)\n",
		b.Name(), len(ops), dur.Seconds(), float64(len(ops))/dur.Seconds(), items)
}
