// Command repro regenerates the paper's evaluation (§5): every table and
// figure, at a configurable scale, printing the same rows/series the
// paper reports.
//
// Usage:
//
//	repro [-scale tiny|small|medium] [-fig 7|8|9|10|ablations|all]
//
// Absolute numbers differ from the paper (the authors ran 32-core EC2
// instances against the 2009 Twitter crawl); the shape — which system
// wins, by roughly what factor, where crossovers fall — is the
// reproduction target. EXPERIMENTS.md records paper-vs-measured.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pequod/internal/experiments"
)

func main() {
	log.SetPrefix("repro: ")
	log.SetFlags(0)
	scaleName := flag.String("scale", "small", "experiment scale: tiny|small|medium")
	fig := flag.String("fig", "all", "which experiment: 7|8|9|10|celebrity|ablations|all")
	seed := flag.Int64("seed", 0, "determinism root for graph/post/workload streams (0 = the historical default, 42)")
	flag.Parse()

	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	sc.Seed = *seed
	out := os.Stdout
	fmt.Fprintf(out, "scale=%s seed=%d (every generated stream derives from the seed; rerun with -seed %d to replay)\n",
		sc.Name, sc.EffectiveSeed(), sc.EffectiveSeed())

	runFig := func(name string, fn func() error) {
		fmt.Fprintf(out, "\n=== %s ===\n", name)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	if *fig == "7" || *fig == "all" {
		runFig("Figure 7: system comparison", func() error {
			_, err := experiments.Fig7(sc, out)
			return err
		})
	}
	if *fig == "8" || *fig == "all" {
		runFig("Figure 8: materialization strategy", func() error {
			_, err := experiments.Fig8(sc, []int{1, 5, 10, 25, 50, 75, 90, 100}, out)
			return err
		})
	}
	if *fig == "9" || *fig == "all" {
		runFig("Figure 9: Newp cache-join choice", func() error {
			_, err := experiments.Fig9(sc, []int{0, 10, 25, 50, 75, 90, 100}, out)
			return err
		})
	}
	if *fig == "10" || *fig == "all" {
		runFig("Figure 10: scalability", func() error {
			_, err := experiments.Fig10(sc, []int{1, 2, 4, 8}, 2, out)
			return err
		})
	}
	if *fig == "celebrity" || *fig == "all" {
		runFig("Celebrity joins (§2.3)", func() error {
			_, err := experiments.Celebrity(sc, out)
			return err
		})
	}
	if *fig == "ablations" || *fig == "all" {
		runFig("Ablations (§4)", func() error {
			if _, err := experiments.AblationSubtables(sc, out); err != nil {
				return err
			}
			if _, err := experiments.AblationOutputHints(sc, out); err != nil {
				return err
			}
			_, err := experiments.AblationValueSharing(sc, out)
			return err
		})
	}
}
