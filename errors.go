package pequod

import "pequod/internal/perrs"

// Sentinel errors, matchable with errors.Is against whatever a Store or
// Admin method returns — implementations wrap them with context (the
// member address, the range, the underlying transport failure), so
// match, don't compare:
//
//	if errors.Is(err, pequod.ErrMemberDown) { ... }
var (
	// ErrNotOwner marks an operation that reached a server not serving
	// the key's range under the current cluster map. The Cluster client
	// retries these internally; seeing one escape means the retry
	// budget was exhausted mid-migration.
	ErrNotOwner = perrs.ErrNotOwner

	// ErrMemberDown marks an operation or repair that could not reach a
	// cluster member past the retry budget — the budget spans an
	// automatic failover, so with replication enabled this escapes only
	// when no repaired map routed around the death in time (or, from
	// Repair itself, when no member survived).
	ErrMemberDown = perrs.ErrMemberDown

	// ErrDraining marks a refused drain: DrainServer will not remove
	// the last member.
	ErrDraining = perrs.ErrDraining

	// ErrConflict marks a map change that lost to a concurrent
	// coordinator even after re-proposing against the winner's map.
	ErrConflict = perrs.ErrConflict

	// ErrOverBudget marks a bounded-staleness read (WithFreshness)
	// whose range lag exceeded the budget and whose fresh-path
	// fallback then failed — typically the context deadline expired
	// while the fallback waited for base data. Reads that fall back
	// and succeed return fresh data with no error.
	ErrOverBudget = perrs.ErrOverBudget
)
