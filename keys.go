package pequod

import "pequod/internal/keys"

// Key helpers re-exported for applications composing Pequod keys.

// keysPrefixEnd delegates to the internal key utilities.
func keysPrefixEnd(p string) string { return keys.PrefixEnd(p) }

// JoinKey joins key components with '|': JoinKey("t", "ann", "100") ==
// "t|ann|100".
func JoinKey(comps ...string) string { return keys.Join(comps...) }

// SplitKey splits a key into its '|'-separated components.
func SplitKey(key string) []string { return keys.Split(key) }

// RangeOf returns the scan bounds covering exactly the keys that begin
// with the given components: RangeOf("t", "ann") == ("t|ann|", "t|ann}").
func RangeOf(comps ...string) (lo, hi string) {
	r := keys.RangeOf(comps...)
	return r.Lo, r.Hi
}
