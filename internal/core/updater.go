package core

import (
	"pequod/internal/interval"
	"pequod/internal/join"
	"pequod/internal/keys"
	"pequod/internal/pattern"
	"pequod/internal/store"
)

// updCtx is one updater context: "a cache join, a slot set, and a join
// status range" (§3.2). The slot set is stored compressed: slots
// derivable from the status's scan binding or from the matched source key
// are omitted ("compressing or eliminating the context information stored
// with updaters", §3.2).
type updCtx struct {
	js     *JoinStatus
	srcIdx int
	extra  pattern.Binding
	lazy   bool
}

// Updater links a range of source keys with one or more contexts.
// Overlapping installations against the same source range merge into a
// single Updater by appending contexts — the paper's updater-merging
// optimization.
type Updater struct {
	entry    *interval.Entry[*Updater]
	table    string
	indexKey string
	contexts []updCtx
}

func (u *Updater) removeContextsOf(js *JoinStatus) {
	u.removeContextsMatching(js, func(*updCtx) bool { return true })
}

func (u *Updater) removeContextsMatching(js *JoinStatus, pred func(*updCtx) bool) {
	out := u.contexts[:0]
	for i := range u.contexts {
		c := &u.contexts[i]
		if c.js == js && pred(c) {
			continue
		}
		out = append(out, *c)
	}
	u.contexts = out
}

func updaterIndexKey(table string, r keys.Range) string {
	return table + "\x00" + r.Lo + "\x00" + r.Hi
}

// installUpdater attaches an updater covering cr for source srcIdx of
// st's join, with context binding b (Fig 5). Check sources get lazy
// (invalidating) updaters; all others are eager — the paper's prototype
// policy (§3.2).
func (e *Engine) installUpdater(st *JoinStatus, srcIdx int, b pattern.Binding, cr keys.Range) {
	if cr.Empty() {
		return
	}
	j := st.ij.j
	src := j.Sources[srcIdx]
	// Maintenance policy (§3.2): lazy invalidation for check sources,
	// eager for all others — unless the join overrides it per source
	// with an eager/lazy prefix (the control the paper's discussion
	// asks for).
	lazy := src.Op == join.Check
	switch src.Mode {
	case join.ModeEager:
		lazy = false
	case join.ModeLazy:
		lazy = true
	}

	// Context compression: drop slots recoverable from the status's scan
	// binding or from any matched source key.
	extra := b
	derivable := st.scanB.Mask() | src.Pat.Slots()
	compressed := pattern.Binding{}
	for i := 0; i < pattern.MaxSlots; i++ {
		if v, ok := extra.Get(i); ok && (derivable>>i)&1 == 0 {
			compressed = compressed.With(i, v)
		}
	}

	ik := updaterIndexKey(src.Pat.Table(), cr)
	u := e.updIndex[ik]
	if u == nil {
		u = &Updater{table: src.Pat.Table(), indexKey: ik}
		u.entry = e.updaterTree(u.table).Insert(cr.Lo, cr.Hi, u)
		e.updIndex[ik] = u
		e.stats.UpdatersInstalled++
	} else {
		e.stats.UpdatersMerged++
	}
	// Deduplicate identical contexts (re-ensures of the same status).
	for i := range u.contexts {
		c := &u.contexts[i]
		if c.js == st && c.srcIdx == srcIdx && c.extra == compressed && c.lazy == lazy {
			return
		}
	}
	u.contexts = append(u.contexts, updCtx{js: st, srcIdx: srcIdx, extra: compressed, lazy: lazy})
	// Track on the status for uninstallation; avoid duplicates.
	for _, have := range st.updaters {
		if have == u {
			return
		}
	}
	st.updaters = append(st.updaters, u)
}

// dropUpdater removes an updater with no live contexts.
func (e *Engine) dropUpdater(u *Updater) {
	if u.entry != nil {
		e.updaterTree(u.table).Delete(u.entry)
		u.entry = nil
	}
	delete(e.updIndex, u.indexKey)
}

// fireUpdaters runs incremental maintenance for a modification of key:
// "Whenever Pequod modifies its store, it finds all updaters applicable
// to the modified key and runs the indicated incremental maintenance for
// each" (§3.2). old/new describe the change (nil old = insert, nil new =
// remove).
func (e *Engine) fireUpdaters(key string, old, new *store.Value) {
	ut := e.updaters[keys.Table(key)]
	if ut == nil {
		return
	}
	// Collect first: firing may mutate the tree (aggregate outputs
	// cascading, context uninstalls).
	var hits []*Updater
	ut.Stab(key, func(en *interval.Entry[*Updater]) bool {
		hits = append(hits, en.Val)
		return true
	})
	for _, u := range hits {
		// Contexts may be appended during cascaded firing; iterate a
		// snapshot.
		ctxs := make([]updCtx, len(u.contexts))
		copy(ctxs, u.contexts)
		for i := range ctxs {
			e.fireContext(&ctxs[i], key, old, new)
		}
	}
}

func (e *Engine) fireContext(c *updCtx, key string, old, new *store.Value) {
	js := c.js
	if !js.valid {
		// Invalid ranges recompute wholesale on next access; per-key
		// maintenance would be wasted (and logs would be superseded).
		return
	}
	e.stats.UpdaterFires++
	if c.lazy {
		// Lazy maintenance for check sources: log a partial invalidation
		// to be applied on the next read (§3.2). The stamp lets bounded
		// reads age the unapplied entry against their budget.
		op := OpPut
		if new == nil {
			op = OpRemove
		}
		js.logs = append(js.logs, logEntry{srcIdx: c.srcIdx, key: key, op: op, had: old != nil, at: e.now()})
		return
	}

	j := js.ij.j
	src := j.Sources[c.srcIdx]
	if c.srcIdx != j.ValueSource {
		// Eager maintenance of a check source: apply the delta join
		// immediately instead of logging it (per-source eager mode).
		op := OpPut
		if new == nil {
			op = OpRemove
		}
		if !e.applyCheckDelta(js, c.srcIdx, key, op, old != nil) {
			// Unsupported shape (aggregates through check deltas):
			// range-granular fallback — only the output sub-interval the
			// key can affect goes dirty, not the whole status.
			if b2, ok := src.Pat.Match(key, js.scanB); ok {
				e.markDirty(js, outAffectedRange(j, b2, js.r), e.now())
			}
		}
		return
	}
	b := mergeBinding(js.scanB, c.extra)
	b2, ok := src.Pat.Match(key, b)
	if !ok {
		return
	}
	switch j.ValueOp() {
	case join.Copy:
		outKey, ok := j.Out.BuildKey(b2)
		if !ok || !js.r.Contains(outKey) {
			return
		}
		if new == nil {
			e.removeInternal(outKey)
			return
		}
		v := new
		if e.opts.DisableValueSharing {
			v = store.NewValue(new.String())
		}
		e.applyValue(outKey, v, &js.hint)

	case join.Count, join.Sum:
		outKey, okk := e.aggOutKey(j, b2)
		if !okk || !js.r.Contains(outKey) {
			return
		}
		if len(j.Sources) > 1 && !e.checkTuplesExist(j, b2) {
			return
		}
		var delta int64
		isCount := j.ValueOp() == join.Count
		switch {
		case old == nil && new != nil: // insert
			if isCount {
				delta = 1
			} else {
				delta = atoi(new.String())
			}
		case old != nil && new == nil: // remove
			if isCount {
				delta = -1
			} else {
				delta = -atoi(old.String())
			}
		default: // update
			if !isCount {
				delta = atoi(new.String()) - atoi(old.String())
			}
		}
		if delta == 0 {
			return
		}
		cur := int64(0)
		exists := false
		if v, ok := e.s.Get(outKey); ok {
			cur = atoi(v.String())
			exists = true
		}
		next := cur + delta
		if isCount && next <= 0 {
			if exists {
				e.removeInternal(outKey)
			}
			return
		}
		e.applyValue(outKey, store.NewValue(itoa(next)), &js.hint)

	case join.Min, join.Max:
		outKey, okk := e.aggOutKey(j, b2)
		if !okk || !js.r.Contains(outKey) {
			return
		}
		if len(j.Sources) > 1 && !e.checkTuplesExist(j, b2) {
			return
		}
		isMin := j.ValueOp() == join.Min
		better := func(x, cur int64) bool {
			if isMin {
				return x < cur
			}
			return x > cur
		}
		curV, exists := e.s.Get(outKey)
		cur := int64(0)
		if exists {
			cur = atoi(curV.String())
		}
		switch {
		case old == nil && new != nil: // insert: extremum can only improve
			x := atoi(new.String())
			if !exists || better(x, cur) {
				e.applyValue(outKey, store.NewValue(itoa(x)), &js.hint)
			}
		case new == nil: // remove: recompute if the extremum departed
			if exists && atoi(old.String()) == cur {
				e.recomputeAggGroup(js, b2, outKey)
			}
		default: // update
			x := atoi(new.String())
			switch {
			case !exists || better(x, cur):
				e.applyValue(outKey, store.NewValue(itoa(x)), &js.hint)
			case atoi(old.String()) == cur && x != cur:
				// The previous extremum holder moved to a worse value.
				e.recomputeAggGroup(js, b2, outKey)
			}
		}
	}
}

// aggOutKey builds the aggregate output key from the binding restricted
// to output slots (source-only slots vary across the folded group).
func (e *Engine) aggOutKey(j *join.Join, b pattern.Binding) (string, bool) {
	group := pattern.Binding{}
	mask := j.Out.Slots()
	for i := 0; i < pattern.MaxSlots; i++ {
		if (mask>>i)&1 == 1 {
			v, ok := b.Get(i)
			if !ok {
				return "", false
			}
			group = group.With(i, v)
		}
	}
	return j.Out.BuildKey(group)
}

// checkTuplesExist verifies that every check source of an aggregate join
// has at least one matching tuple under b — guarding eager aggregate
// deltas against firing for tuples whose check constraints no longer
// hold.
func (e *Engine) checkTuplesExist(j *join.Join, b pattern.Binding) bool {
	for i, s := range j.Sources {
		if i == j.ValueSource {
			continue
		}
		cr := pattern.ContainingRange(s.Pat, j.Out, b, s.Pat.TableRange())
		found := false
		e.s.Scan(cr.Lo, cr.Hi, func(k string, v *store.Value) bool {
			if _, ok := s.Pat.Match(k, b); ok {
				found = true
				return false
			}
			return true
		})
		if !found {
			return false
		}
	}
	return true
}

// recomputeAggGroup recomputes one aggregate output key from scratch by
// folding its value-source containing range (used when a min/max extremum
// departs).
func (e *Engine) recomputeAggGroup(js *JoinStatus, b pattern.Binding, outKey string) {
	j := js.ij.j
	group := pattern.Binding{}
	mask := j.Out.Slots()
	for i := 0; i < pattern.MaxSlots; i++ {
		if (mask>>i)&1 == 1 {
			if v, ok := b.Get(i); ok {
				group = group.With(i, v)
			}
		}
	}
	src := j.Sources[j.ValueSource]
	cr := pattern.ContainingRange(src.Pat, j.Out, group, pattern.PointRange(outKey))
	a := &aggState{op: j.ValueOp()}
	e.s.Scan(cr.Lo, cr.Hi, func(k string, v *store.Value) bool {
		if _, ok := src.Pat.Match(k, group); ok {
			a.add(v.String())
		}
		return true
	})
	if !a.set {
		e.removeInternal(outKey)
		return
	}
	e.applyValue(outKey, store.NewValue(itoa(a.n)), &js.hint)
}
