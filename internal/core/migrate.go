package core

// Live range migration (the shard pool's rebalancer): ExtractRange pulls
// one key range's state out of an engine and SpliceRange folds it into a
// neighbor, so a partition boundary can move without a stop-the-world
// rebuild. The contract divides an engine's state in a range into three
// kinds, each handled differently:
//
//   - Owned rows — tables that are neither replicated join sources nor
//     loader-backed (plain client data, including hand-written rows in
//     output tables). These exist only at the owner and move physically.
//
//   - Replicated rows — join source tables forwarded to every shard.
//     Both sides already hold them; ownership flips in the partition map
//     and nothing moves (the pool's keep predicate excludes them).
//
//   - Derived and loader-backed state — computed join ranges (statuses +
//     outputs) and presence-tracked base ranges. These are caches over
//     data that survives elsewhere (sibling replicas, the backing
//     database, a remote home server), so migration drops them with
//     eviction semantics (§2.5: evicting cached ranges is always safe,
//     notified as OpEvict so subscribers and siblings keep their copies)
//     and the destination recomputes or reloads on demand. The ranges
//     that were materialized and valid at the source are recorded in
//     RangeState.Warm so the destination can recompute them eagerly
//     during the splice — hot ranges arrive hot, they are not re-derived
//     from a cold start by the first unlucky reader.
//
// Both calls must run on the engine's driving goroutine (under the
// shard's lock, like every other engine entry point).

import (
	"pequod/internal/keys"
	"pequod/internal/store"
)

// WarmRange records one previously-valid computed range: Join indexes
// the engine's installed joins (identical order on every shard — the
// pool installs join texts in lockstep).
type WarmRange struct {
	Join int
	R    keys.Range
}

// PresenceRange records one evicted loader-backed range, for stats and
// tests.
type PresenceRange struct {
	Table string
	R     keys.Range
}

// RangeState is the extracted state of one key range, produced by
// ExtractRange and consumed by SpliceRange on the destination engine.
type RangeState struct {
	R    keys.Range
	KVs  []KV        // physically moved owned rows
	Warm []WarmRange // computed coverage to rebuild eagerly at the destination

	// EvictedPresence lists the loader-backed ranges dropped at the
	// source; the destination loads its own (per-shard subscriptions and
	// write-around feeds are wired per engine, so residency metadata
	// cannot transfer with its freshness guarantees).
	EvictedPresence []PresenceRange
}

// ExtractRange removes range r's state from the engine and returns the
// portion a destination engine needs. keep reports tables whose rows are
// replicated on every shard (the pool's forwarded source set) — those
// rows stay in place and are not captured. Owned rows are removed
// silently (no change notification, no updater cascade: the data is
// moving, not being deleted; dependent computed ranges are invalidated
// so they recompute against post-migration state).
//
// movePresence selects what loader-backed (presence-tracked) rows in r
// mean. In-process migration passes false: the rows are a cache over a
// remote home or a backing database, so they are evicted and the
// destination shard reloads its own (per-shard subscriptions cannot
// transfer). Cluster-level migration passes true: the extracting server
// IS the range's home — in a symmetric mesh its own tables are presence-
// tracked too — so those rows are the authoritative copy and move
// physically like owned rows. Presence records are clipped either way;
// the destination re-marks residency through its own loader (self-owned
// pieces mark without fetching).
func (e *Engine) ExtractRange(r keys.Range, keep func(table string) bool, movePresence bool) RangeState {
	rs := RangeState{R: r}

	// Computed state: drop every join status overlapping r, recording the
	// valid coverage for the destination's warm rebuild. A status
	// straddling r's edge is dropped whole — its outputs outside r would
	// otherwise linger uncovered — and the source recomputes its retained
	// side on the next read.
	for idx, ij := range e.joins {
		for _, st := range e.statusesOverlapping(ij, r) {
			if st.valid {
				if wr := st.r.Intersect(r); !wr.Empty() {
					rs.Warm = append(rs.Warm, WarmRange{Join: idx, R: wr})
				}
			}
			e.stats.Invalidations++
			e.detachStatus(st)
			e.removeOutputsOp(ij, st.r, OpEvict)
		}
	}

	// Loader-backed state: evict resident rows of presence tables inside
	// r and clip the residency records. Records still loading are dropped
	// whole (LoadComplete matches ranges exactly; a clipped record would
	// never be marked resident) — their data lands unmarked and a retry
	// refetches whatever the post-migration owner needs.
	for table, pt := range e.presence {
		tr := keys.Range{Lo: table, Hi: keys.PrefixEnd(table + keys.SepString)}
		rr := r.Intersect(tr)
		if rr.Empty() {
			continue
		}
		var overlapping []*presRange
		start := pt.ranges.SeekAtOrBefore(rr.Lo)
		if start == nil {
			start = pt.ranges.Seek(rr.Lo)
		}
		for n := start; n != nil; n = n.Next() {
			pr := n.Val
			if rr.Hi != "" && pr.r.Lo >= rr.Hi {
				break
			}
			if pr.r.Overlaps(rr) {
				overlapping = append(overlapping, pr)
			}
		}
		for _, pr := range overlapping {
			cut := pr.r.Intersect(rr)
			rs.EvictedPresence = append(rs.EvictedPresence, PresenceRange{Table: table, R: cut})
			if pr.loading {
				pt.ranges.Delete(pr.node)
				pr.node = nil
				continue
			}
			sides := []keys.Range{{Lo: pr.r.Lo, Hi: cut.Lo}}
			if cut.Hi != "" { // a cut to +inf leaves nothing above
				sides = append(sides, keys.Range{Lo: cut.Hi, Hi: pr.r.Hi})
			}
			e.lruRemovePresence(pr)
			pt.ranges.Delete(pr.node)
			pr.node = nil
			for _, side := range sides {
				if side.Empty() {
					continue
				}
				np := &presRange{table: table, r: side}
				n, _ := pt.ranges.Insert(side.Lo, np)
				n.Val = np
				np.node = n
				e.lruTouch2(&np.lru, np)
			}
			if !movePresence {
				// Drop the evicted rows like memory-pressure eviction
				// does (§2.5): OpEvict, dependents invalidated, replicas
				// keep theirs.
				e.evictRows(cut)
			}
			// movePresence: leave the rows in place; the owned-row
			// capture below moves them with the rest.
		}
	}

	// Owned rows: capture and silently remove everything left in r that
	// is not replicated (kept) and not loader-backed (just evicted) —
	// plus, under movePresence, the authoritative presence-table rows.
	e.s.Scan(r.Lo, r.Hi, func(k string, v *store.Value) bool {
		t := keys.Table(k)
		if keep(t) || (!movePresence && e.presence[t] != nil) {
			return true
		}
		rs.KVs = append(rs.KVs, KV{Key: k, Value: v.String()})
		return true
	})
	for _, kv := range rs.KVs {
		if _, ok := e.s.Remove(kv.Key); ok {
			e.invalidateDependents(kv.Key)
		}
	}
	return rs
}

// SpliceRange folds an extracted range into this engine, which is about
// to become (or just became) the range's owner. Its own cached computed
// state overlapping the range is dropped first — the spliced rows are
// now the authority and stale local replicas must not shadow them — then
// the moved rows are installed silently, and the source's previously
// valid computed coverage is rebuilt eagerly from this engine's own
// replicated sources so the range arrives warm.
func (e *Engine) SpliceRange(rs RangeState) {
	for _, ij := range e.joins {
		for _, st := range e.statusesOverlapping(ij, rs.R) {
			e.stats.Invalidations++
			e.detachStatus(st)
			e.removeOutputsOp(ij, st.r, OpEvict)
		}
	}
	for _, kv := range rs.KVs {
		e.s.Put(kv.Key, store.NewValue(kv.Value))
		e.invalidateDependents(kv.Key)
	}
	for _, w := range rs.Warm {
		if w.Join >= len(e.joins) {
			continue // source had joins this engine lacks; cannot happen via the pool
		}
		ij := e.joins[w.Join]
		if rr := w.R.Intersect(ij.j.Out.TableRange()); !rr.Empty() {
			e.ensure(ij, rr, 0)
		}
	}
	// Spliced rows may satisfy readers blocked waiting for data; bump
	// the load generation so they retry (and re-route if the wait began
	// before the migration).
	e.loadGen++
	e.evictIfNeeded()
}

// RestoreRange folds a previously extracted range back into this
// engine without clobbering anything written since: only keys absent
// from the store are re-installed (with dependent invalidation, so
// computed coverage over them recomputes). It is the recovery half of
// the retained-extract buffer — when a published map hands a range back
// to the server that extracted it, without an accompanying splice, the
// retained rows are the freshest surviving copy, but any row the engine
// does hold is newer still.
func (e *Engine) RestoreRange(rs RangeState) {
	restored := 0
	for _, kv := range rs.KVs {
		if _, ok := e.s.Get(kv.Key); ok {
			continue
		}
		e.s.Put(kv.Key, store.NewValue(kv.Value))
		e.invalidateDependents(kv.Key)
		restored++
	}
	if restored > 0 {
		e.loadGen++
		e.evictIfNeeded()
	}
}

// DropRange discards every cached trace of range r with §2.5 eviction
// semantics: computed join coverage is invalidated and its outputs
// removed as OpEvict, presence records are clipped (in-flight loads are
// abandoned; a late LoadComplete for a dropped record is a no-op), and
// the rows themselves are evicted with dependent invalidation. Members
// of a cluster run it when a published partition map moves a range they
// had loaded (or computed from) to a new home server: everything local
// is a stale replica the moment ownership flips, and the §2.5 rule —
// evicting cached data is always safe, because it can be re-fetched or
// recomputed — is exactly the invalidation-correct way to retire it.
// The next read re-loads from, and re-subscribes at, the new owner.
func (e *Engine) DropRange(r keys.Range) {
	for _, ij := range e.joins {
		for _, st := range e.statusesOverlapping(ij, r) {
			e.stats.Invalidations++
			e.detachStatus(st)
			e.removeOutputsOp(ij, st.r, OpEvict)
		}
	}
	for table, pt := range e.presence {
		tr := keys.Range{Lo: table, Hi: keys.PrefixEnd(table + keys.SepString)}
		rr := r.Intersect(tr)
		if rr.Empty() {
			continue
		}
		var overlapping []*presRange
		start := pt.ranges.SeekAtOrBefore(rr.Lo)
		if start == nil {
			start = pt.ranges.Seek(rr.Lo)
		}
		for n := start; n != nil; n = n.Next() {
			pr := n.Val
			if rr.Hi != "" && pr.r.Lo >= rr.Hi {
				break
			}
			if pr.r.Overlaps(rr) {
				overlapping = append(overlapping, pr)
			}
		}
		for _, pr := range overlapping {
			cut := pr.r.Intersect(rr)
			if pr.loading {
				// Abandon the in-flight load whole: LoadComplete matches
				// ranges exactly, so the late result cannot re-mark it.
				pt.ranges.Delete(pr.node)
				pr.node = nil
				continue
			}
			sides := []keys.Range{{Lo: pr.r.Lo, Hi: cut.Lo}}
			if cut.Hi != "" {
				sides = append(sides, keys.Range{Lo: cut.Hi, Hi: pr.r.Hi})
			}
			e.lruRemovePresence(pr)
			pt.ranges.Delete(pr.node)
			pr.node = nil
			for _, side := range sides {
				if side.Empty() {
					continue
				}
				np := &presRange{table: table, r: side}
				n, _ := pt.ranges.Insert(side.Lo, np)
				n.Val = np
				np.node = n
				e.lruTouch2(&np.lru, np)
			}
		}
	}
	e.evictRows(r)
	// Readers blocked on the abandoned loads must retry (and re-route);
	// their retry restarts the load against the new owner.
	e.loadGen++
}

// statusesOverlapping collects ij's join statuses overlapping r, in
// range order.
func (e *Engine) statusesOverlapping(ij *installedJoin, r keys.Range) []*JoinStatus {
	var out []*JoinStatus
	start := ij.status.SeekAtOrBefore(r.Lo)
	if start == nil {
		start = ij.status.Seek(r.Lo)
	}
	for n := start; n != nil; n = n.Next() {
		st := n.Val
		if r.Hi != "" && st.r.Lo >= r.Hi {
			break
		}
		if st.r.Overlaps(r) {
			out = append(out, st)
		}
	}
	return out
}

// evictRows removes every stored row in r with eviction semantics:
// OpEvict notification (ignored by replication and subscription
// forwarding) and dependent invalidation.
func (e *Engine) evictRows(r keys.Range) {
	var doomed []string
	e.s.Scan(r.Lo, r.Hi, func(k string, v *store.Value) bool {
		doomed = append(doomed, k)
		return true
	})
	for _, k := range doomed {
		old, ok := e.s.Remove(k)
		if !ok {
			continue
		}
		e.notify(Change{Op: OpEvict, Key: k, Value: old.String()})
		e.invalidateDependents(k)
	}
}

// lruRemovePresence unlinks a presence range from the LRU.
func (e *Engine) lruRemovePresence(pr *presRange) { e.lru.remove(&pr.lru) }
