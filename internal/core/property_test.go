package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pequod/internal/keys"
)

// These tests check the system's central theorem: after ANY interleaving
// of base writes, subscription changes, scans, and evictions, a push
// join's materialized output equals a from-scratch recomputation of the
// join over current base data. Eager maintenance, lazy invalidation logs,
// updater merging/compression, and eviction must all be invisible.

// twipModel recomputes the timeline join naively.
type twipModel struct {
	subs  map[string]map[string]bool // user -> poster set
	posts map[string]map[string]string
}

func newTwipModel() *twipModel {
	return &twipModel{subs: map[string]map[string]bool{}, posts: map[string]map[string]string{}}
}

func (m *twipModel) subscribe(u, p string) {
	if m.subs[u] == nil {
		m.subs[u] = map[string]bool{}
	}
	m.subs[u][p] = true
}

func (m *twipModel) unsubscribe(u, p string) { delete(m.subs[u], p) }

func (m *twipModel) post(p, ts, v string) {
	if m.posts[p] == nil {
		m.posts[p] = map[string]string{}
	}
	m.posts[p][ts] = v
}

func (m *twipModel) unpost(p, ts string) { delete(m.posts[p], ts) }

// timeline computes the expected scan of [lo, hi) over the t table.
func (m *twipModel) timeline(lo, hi string) []KV {
	var out []KV
	for u, posters := range m.subs {
		for p := range posters {
			for ts, v := range m.posts[p] {
				k := keys.Join("t", u, ts, p)
				if (keys.Range{Lo: lo, Hi: hi}).Contains(k) {
					out = append(out, KV{k, v})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func compareKVs(t *testing.T, step int, got, want []KV) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("step %d: got %d kvs, want %d\n got: %v\nwant: %v", step, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: kv[%d] = %v, want %v", step, i, got[i], want[i])
		}
	}
}

func runTwipSoak(t *testing.T, seed int64, opts Options, steps int) {
	runTwipSoakJoin(t, seed, opts, steps, timelineJoin)
}

func runTwipSoakJoin(t *testing.T, seed int64, opts Options, steps int, joinSpec string) {
	rng := rand.New(rand.NewSource(seed))
	e := New(opts)
	if err := e.InstallText(joinSpec); err != nil {
		t.Fatal(err)
	}
	m := newTwipModel()

	users := []string{"u00", "u01", "u02", "u03", "u04", "u05"}
	posters := []string{"a00", "a01", "a02", "a03"}
	times := func() string { return fmt.Sprintf("%04d", rng.Intn(200)) }

	for step := 0; step < steps; step++ {
		switch rng.Intn(12) {
		case 0, 1: // subscribe
			u, p := users[rng.Intn(len(users))], posters[rng.Intn(len(posters))]
			e.Put(keys.Join("s", u, p), "1")
			m.subscribe(u, p)
		case 2: // unsubscribe
			u, p := users[rng.Intn(len(users))], posters[rng.Intn(len(posters))]
			e.Remove(keys.Join("s", u, p))
			m.unsubscribe(u, p)
		case 3, 4, 5, 6: // post (insert or overwrite)
			p, ts := posters[rng.Intn(len(posters))], times()
			v := fmt.Sprintf("v%d", step)
			e.Put(keys.Join("p", p, ts), v)
			m.post(p, ts, v)
		case 7: // delete post
			p, ts := posters[rng.Intn(len(posters))], times()
			e.Remove(keys.Join("p", p, ts))
			m.unpost(p, ts)
		case 8, 9, 10: // user timeline scan
			u := users[rng.Intn(len(users))]
			lo, hi := "t|"+u+"|", keys.PrefixEnd("t|"+u+"|")
			if rng.Intn(3) == 0 { // random time subrange
				lo = keys.Join("t", u, times())
				hi = keys.Join("t", u, times())
				if hi < lo {
					lo, hi = hi, lo
				}
			}
			got, pending := e.Scan(lo, hi, 0)
			if pending != 0 {
				t.Fatalf("step %d: pending=%d without a loader", step, pending)
			}
			compareKVs(t, step, got, m.timeline(lo, hi))
		default: // cross-timeline scan
			lo := "t|" + users[rng.Intn(len(users))]
			hi := "t|" + users[rng.Intn(len(users))]
			if hi < lo {
				lo, hi = hi, lo
			}
			got, _ := e.Scan(lo, hi, 0)
			compareKVs(t, step, got, m.timeline(lo, hi))
		}
	}
	// Final full-table check.
	got, _ := e.Scan("t|", "t}", 0)
	compareKVs(t, steps, got, m.timeline("t|", "t}"))
}

func TestTimelinePushEqualsRecompute(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runTwipSoak(t, seed, Options{}, 4000)
		})
	}
}

func TestTimelinePushEqualsRecomputeNoOptimizations(t *testing.T) {
	// The §4 optimizations must be semantically invisible.
	runTwipSoak(t, 99, Options{DisableOutputHints: true, DisableValueSharing: true}, 3000)
}

func TestTimelinePushEqualsRecomputeUnderEviction(t *testing.T) {
	// Eviction discards cache, never truth (§2.5).
	runTwipSoak(t, 7, Options{MemLimit: 16 * 1024}, 3000)
}

// TestAggregatePushEqualsRecompute soaks the karma count join.
func TestAggregatePushEqualsRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	e := New(Options{})
	if err := e.InstallText("karma|<author> = count vote|<author>|<id>|<voter>"); err != nil {
		t.Fatal(err)
	}
	votes := map[string]bool{} // full vote key set
	authors := []string{"w", "x", "y", "z"}
	voteKey := func() string {
		return keys.Join("vote", authors[rng.Intn(len(authors))],
			fmt.Sprintf("a%02d", rng.Intn(12)), fmt.Sprintf("u%02d", rng.Intn(10)))
	}
	expected := func() []KV {
		counts := map[string]int{}
		for k := range votes {
			counts["karma|"+keys.Split(k)[1]]++
		}
		var out []KV
		for k, n := range counts {
			out = append(out, KV{k, fmt.Sprint(n)})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		return out
	}
	for step := 0; step < 6000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			k := voteKey()
			e.Put(k, "1")
			votes[k] = true
		case 5, 6:
			k := voteKey()
			e.Remove(k)
			delete(votes, k)
		case 7:
			a := authors[rng.Intn(len(authors))]
			got, _, _ := e.Get("karma|" + a)
			n := 0
			for k := range votes {
				if keys.Split(k)[1] == a {
					n++
				}
			}
			want := ""
			if n > 0 {
				want = fmt.Sprint(n)
			}
			if got != want {
				t.Fatalf("step %d: karma|%s = %q, want %q", step, a, got, want)
			}
		default:
			got, _ := e.Scan("karma|", "karma}", 0)
			compareKVs(t, step, got, expected())
		}
	}
}

// TestNewpInterleavedEqualsRecompute soaks the full Fig 1 join set,
// including the two-hop karma cascade.
func TestNewpInterleavedEqualsRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	e := New(Options{})
	if err := e.InstallText(newpJoins); err != nil {
		t.Fatal(err)
	}
	authors := []string{"aa", "bb", "cc"}
	articles := map[string]string{}           // author|id -> text
	comments := map[string]string{}           // author|id|cid|commenter -> text
	votes := map[string]bool{}                // author|id|voter
	users := []string{"aa", "bb", "cc", "dd"} // commenters/voters

	karma := func(u string) int {
		n := 0
		for v := range votes {
			if keys.Split(v)[0] == u {
				n++
			}
		}
		return n
	}
	expectedPage := func(author, id string) []KV {
		var out []KV
		pfx := keys.Join("page", author, id)
		if txt, ok := articles[author+"|"+id]; ok {
			out = append(out, KV{pfx + "|a", txt})
		}
		rank := 0
		for v := range votes {
			p := keys.Split(v)
			if p[0] == author && p[1] == id {
				rank++
			}
		}
		if rank > 0 {
			out = append(out, KV{pfx + "|r", fmt.Sprint(rank)})
		}
		for ck, txt := range comments {
			p := keys.Split(ck)
			if p[0] == author && p[1] == id {
				out = append(out, KV{keys.Join(pfx, "c", p[2], p[3]), txt})
				if k := karma(p[3]); k > 0 {
					out = append(out, KV{keys.Join(pfx, "k", p[2], p[3]), fmt.Sprint(k)})
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		return out
	}

	for step := 0; step < 4000; step++ {
		author := authors[rng.Intn(len(authors))]
		id := fmt.Sprintf("%02d", rng.Intn(4))
		switch rng.Intn(10) {
		case 0:
			txt := fmt.Sprintf("art%d", step)
			e.Put(keys.Join("article", author, id), txt)
			articles[author+"|"+id] = txt
		case 1, 2:
			cid := fmt.Sprintf("c%02d", rng.Intn(6))
			commenter := users[rng.Intn(len(users))]
			txt := fmt.Sprintf("cm%d", step)
			e.Put(keys.Join("comment", author, id, cid, commenter), txt)
			comments[keys.Join(author, id, cid, commenter)] = txt
		case 3, 4, 5:
			voter := users[rng.Intn(len(users))]
			e.Put(keys.Join("vote", author, id, voter), "1")
			votes[keys.Join(author, id, voter)] = true
		case 6:
			voter := users[rng.Intn(len(users))]
			e.Remove(keys.Join("vote", author, id, voter))
			delete(votes, keys.Join(author, id, voter))
		default:
			lo := keys.Join("page", author, id) + "|"
			got, _ := e.Scan(lo, keys.PrefixEnd(lo), 0)
			compareKVs(t, step, got, expectedPage(author, id))
		}
	}
}

// TestScanDeterminism: scanning twice in a row returns identical results
// (materialization is idempotent) — via testing/quick over range choices.
func TestScanDeterminism(t *testing.T) {
	e := New(Options{})
	if err := e.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 50; i++ {
		e.Put(fmt.Sprintf("s|u%02d|a%02d", rng.Intn(10), rng.Intn(5)), "1")
		e.Put(fmt.Sprintf("p|a%02d|%04d", rng.Intn(5), rng.Intn(100)), "x")
	}
	f := func(a, b uint8) bool {
		lo := fmt.Sprintf("t|u%02d", a%12)
		hi := fmt.Sprintf("t|u%02d", b%12)
		if hi < lo {
			lo, hi = hi, lo
		}
		first, _ := e.Scan(lo, hi, 0)
		second, _ := e.Scan(lo, hi, 0)
		if len(first) != len(second) {
			return false
		}
		for i := range first {
			if first[i] != second[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
