package core

import (
	"testing"

	"pequod/internal/keys"
)

// keepNone is the keep predicate of a pool with no replicated tables.
func keepNone(string) bool { return false }

// TestExtractSpliceMovesOwnedRows: plain rows inside the range move to
// the destination; rows outside stay; nothing is notified as a logical
// removal.
func TestExtractSpliceMovesOwnedRows(t *testing.T) {
	src, dst := New(Options{}), New(Options{})
	var changes []Change
	src.SetChangeHook(func(c Change) { changes = append(changes, c) })
	src.Put("a|1", "v1")
	src.Put("a|5", "v5")
	src.Put("a|9", "v9")
	changes = nil

	rs := src.ExtractRange(keys.Range{Lo: "a|3", Hi: "a|7"}, keepNone, false)
	if len(rs.KVs) != 1 || rs.KVs[0] != (KV{Key: "a|5", Value: "v5"}) {
		t.Fatalf("extracted %v", rs.KVs)
	}
	for _, c := range changes {
		if c.Op == OpRemove {
			t.Fatalf("extraction notified a logical removal: %+v", c)
		}
	}
	if _, ok := src.Store().Get("a|5"); ok {
		t.Fatal("moved row still at source")
	}
	for _, k := range []string{"a|1", "a|9"} {
		if _, ok := src.Store().Get(k); !ok {
			t.Fatalf("row %q outside the range left the source", k)
		}
	}
	dst.SpliceRange(rs)
	if v, ok := dst.Store().Get("a|5"); !ok || v.String() != "v5" {
		t.Fatal("moved row missing at destination")
	}
}

// TestExtractDropsComputedAndRecordsWarm: computed coverage overlapping
// the migrated range is dropped at the source (whole statuses, outputs
// removed with OpEvict so nothing downstream treats it as deletion) and
// the valid portions are reported for the destination's warm rebuild.
func TestExtractDropsComputedAndRecordsWarm(t *testing.T) {
	src := newTwipEngine(t, Options{})
	src.Put("s|ann|bob", "1")
	src.Put("p|bob|100", "Hi")
	scanKeys(t, src, "t|ann|", "t|ann}") // materialize a valid status

	var evicts, removes int
	src.SetChangeHook(func(c Change) {
		switch c.Op {
		case OpEvict:
			evicts++
		case OpRemove:
			removes++
		}
	})
	rs := src.ExtractRange(keys.Range{Lo: "t|", Hi: "t}"}, func(table string) bool {
		return table == "s" || table == "p" // the pool's forwarded sources
	}, false)
	if len(rs.Warm) != 1 || rs.Warm[0].Join != 0 {
		t.Fatalf("warm ranges = %+v", rs.Warm)
	}
	if len(rs.KVs) != 0 {
		t.Fatalf("computed rows were captured as owned: %v", rs.KVs)
	}
	if evicts == 0 || removes != 0 {
		t.Fatalf("drop notified evicts=%d removes=%d", evicts, removes)
	}
	if got := scanKeys(t, src, "p|", "p}"); len(got) != 1 {
		t.Fatalf("replicated source rows left the source: %v", got)
	}
	if n := src.LRULen(); n != 0 {
		t.Fatalf("status still tracked after extraction: LRULen=%d", n)
	}

	// A destination holding the same replicated sources rebuilds the
	// warm coverage during the splice: the first read is already warm.
	dst := newTwipEngine(t, Options{})
	dst.Put("s|ann|bob", "1")
	dst.Put("p|bob|100", "Hi")
	dst.SpliceRange(rs)
	execs := dst.Stats().JoinExecs
	got := scanKeys(t, dst, "t|ann|", "t|ann}")
	wantKeys(t, got, "t|ann|100|bob")
	if dst.Stats().JoinExecs != execs {
		t.Fatal("read after warm splice re-executed the join")
	}
}

// TestExtractClipsPresence: a resident loader-backed range straddling
// the migrated range is clipped — the evicted middle reloads on demand,
// the survivors stay resident — and rows under it are evicted, not
// moved.
func TestExtractClipsPresence(t *testing.T) {
	e := New(Options{})
	ld := &recordingLoader{}
	e.SetLoader(ld, "x")
	e.Scan("x|a", "x|z", 0) // one gap load for [x|a, x|z)
	if len(ld.loads) != 1 {
		t.Fatalf("loads = %v", ld.loads)
	}
	e.LoadComplete("x", ld.loads[0], []KV{{"x|b", "1"}, {"x|m", "2"}, {"x|y", "3"}})

	rs := e.ExtractRange(keys.Range{Lo: "x|g", Hi: "x|p"}, keepNone, false)
	if len(rs.KVs) != 0 {
		t.Fatalf("loader-backed rows captured as owned: %v", rs.KVs)
	}
	if len(rs.EvictedPresence) != 1 || rs.EvictedPresence[0].R != (keys.Range{Lo: "x|g", Hi: "x|p"}) {
		t.Fatalf("evicted presence = %+v", rs.EvictedPresence)
	}
	if _, ok := e.Store().Get("x|m"); ok {
		t.Fatal("row inside the migrated range survived")
	}
	for _, k := range []string{"x|b", "x|y"} {
		if _, ok := e.Store().Get(k); !ok {
			t.Fatalf("row %q under a surviving presence clip was evicted", k)
		}
	}
	// Reads over the survivors stay resident (no new load); the evicted
	// middle triggers a reload.
	ld.loads = nil
	if _, pending := e.Scan("x|a", "x|g", 0); pending != 0 || len(ld.loads) != 0 {
		t.Fatalf("left clip not resident: pending=%d loads=%v", pending, ld.loads)
	}
	if _, pending := e.Scan("x|g", "x|p", 0); pending != 1 || len(ld.loads) != 1 {
		t.Fatalf("evicted middle did not reload: loads=%v", ld.loads)
	}
}

// recordingLoader records StartLoad calls without completing them.
type recordingLoader struct{ loads []keys.Range }

func (l *recordingLoader) StartLoad(table string, r keys.Range) {
	l.loads = append(l.loads, r)
}

// TestExtractMovePresence: under movePresence (cluster migration — the
// extracting server is the range's home), loader-backed rows inside the
// range are captured and moved instead of evicted, and presence records
// are still clipped.
func TestExtractMovePresence(t *testing.T) {
	e := New(Options{})
	ld := &recordingLoader{}
	e.SetLoader(ld, "x")
	e.Scan("x|a", "x|z", 0)
	e.LoadComplete("x", ld.loads[0], []KV{{"x|b", "1"}, {"x|m", "2"}, {"x|y", "3"}})
	e.Put("y|m", "owned") // a plain owned row in the same range

	rs := e.ExtractRange(keys.Range{Lo: "x|g", Hi: "y}"}, keepNone, true)
	want := map[string]string{"x|m": "2", "x|y": "3", "y|m": "owned"}
	if len(rs.KVs) != len(want) {
		t.Fatalf("extracted %v, want %v", rs.KVs, want)
	}
	for _, kv := range rs.KVs {
		if want[kv.Key] != kv.Value {
			t.Fatalf("extracted %v, want %v", rs.KVs, want)
		}
	}
	for k := range want {
		if _, ok := e.Store().Get(k); ok {
			t.Fatalf("moved row %q still at source", k)
		}
	}
	if _, ok := e.Store().Get("x|b"); !ok {
		t.Fatal("row outside the range left the source")
	}
	// The clipped left side stays resident; the extracted side reloads.
	ld.loads = nil
	if _, pending := e.Scan("x|a", "x|g", 0); pending != 0 || len(ld.loads) != 0 {
		t.Fatalf("left clip not resident: loads=%v", ld.loads)
	}
	if _, pending := e.Scan("x|g", "x|o", 0); pending != 1 {
		t.Fatal("extracted side did not reload")
	}
}

// TestDropRange: every cached trace of the range goes — computed
// coverage (as OpEvict), presence records, and the rows themselves —
// with dependents invalidated, while state outside the range survives.
func TestDropRange(t *testing.T) {
	e := newTwipEngine(t, Options{})
	e.Put("s|ann|bob", "1")
	e.Put("p|bob|100", "Hi")
	e.Put("s|cat|dan", "1")
	e.Put("p|dan|200", "Yo")
	scanKeys(t, e, "t|ann|", "t|ann}")
	scanKeys(t, e, "t|cat|", "t|cat}")

	var evicts, removes int
	e.SetChangeHook(func(c Change) {
		switch c.Op {
		case OpEvict:
			evicts++
		case OpRemove:
			removes++
		}
	})
	e.DropRange(keys.Range{Lo: "p|bob|", Hi: "p|bob}"})
	if evicts == 0 || removes != 0 {
		t.Fatalf("drop notified evicts=%d removes=%d", evicts, removes)
	}
	if _, ok := e.Store().Get("p|bob|100"); ok {
		t.Fatal("dropped row survived")
	}
	if _, ok := e.Store().Get("p|dan|200"); !ok {
		t.Fatal("row outside the dropped range went too")
	}
	// ann's timeline was computed from the dropped source: it must have
	// been invalidated, and recompute against post-drop state (empty).
	if got := scanKeys(t, e, "t|ann|", "t|ann}"); len(got) != 0 {
		t.Fatalf("dependent computed range served stale rows: %v", got)
	}
	// cat's timeline is untouched.
	wantKeys(t, scanKeys(t, e, "t|cat|", "t|cat}"), "t|cat|200|dan")
}

// TestDropRangeAbandonsLoads: an in-flight load overlapping the drop is
// abandoned whole — the late LoadComplete must not re-mark it resident —
// and the next read restarts it.
func TestDropRangeAbandonsLoads(t *testing.T) {
	e := New(Options{})
	ld := &recordingLoader{}
	e.SetLoader(ld, "x")
	e.Scan("x|a", "x|z", 0)
	if len(ld.loads) != 1 {
		t.Fatalf("loads = %v", ld.loads)
	}
	gen := e.LoadGen()
	e.DropRange(keys.Range{Lo: "x|g", Hi: "x|p"})
	if e.LoadGen() == gen {
		t.Fatal("drop did not advance the load generation")
	}
	// The late result of the abandoned load: applied rows are fine (the
	// range will be refetched) but nothing may be marked resident.
	e.LoadComplete("x", ld.loads[0], nil)
	ld.loads = nil
	if _, pending := e.Scan("x|a", "x|z", 0); pending == 0 || len(ld.loads) == 0 {
		t.Fatalf("abandoned load left the range marked resident (loads=%v)", ld.loads)
	}
}

// TestLoadFailed: a failed load drops its loading record (no false
// residency) and advances the generation so waiters retry.
func TestLoadFailed(t *testing.T) {
	e := New(Options{})
	ld := &recordingLoader{}
	e.SetLoader(ld, "x")
	e.Scan("x|a", "x|z", 0)
	gen := e.LoadGen()
	e.LoadFailed("x", ld.loads[0])
	if e.LoadGen() == gen {
		t.Fatal("LoadFailed did not advance the load generation")
	}
	ld.loads = nil
	if _, pending := e.Scan("x|a", "x|z", 0); pending != 1 || len(ld.loads) != 1 {
		t.Fatalf("failed load did not restart: pending=%d loads=%v", 1, ld.loads)
	}
	// Completing the restarted load works normally.
	e.LoadComplete("x", ld.loads[0], []KV{{"x|m", "1"}})
	if kvs, pending := e.Scan("x|a", "x|z", 0); pending != 0 || len(kvs) != 1 {
		t.Fatalf("restarted load did not land: pending=%d kvs=%v", pending, kvs)
	}
}

// TestEvictSkipsInFlightRanges is the regression test for the eviction
// sweep: a range with loads in flight must be skipped without escaping
// the LRU (re-linked, still tracked by LRULen) and without being counted
// as an eviction — and a sweep where every range is in flight must
// terminate.
func TestEvictSkipsInFlightRanges(t *testing.T) {
	e := newTwipEngine(t, Options{})
	e.Put("s|ann|bob", "1")
	e.Put("p|bob|100", "Hi")
	scanKeys(t, e, "t|ann|", "t|ann}")
	if e.LRULen() != 1 {
		t.Fatalf("LRULen = %d", e.LRULen())
	}
	e.opts.MemLimit = 1 // from here on any byte is over the limit
	st := e.joins[0].status.First().Val
	st.pendingLoads = 1 // loads in flight: unevictable for now

	before := e.Stats().Evictions
	e.evictIfNeeded()
	if e.LRULen() != 1 {
		t.Fatalf("in-flight range escaped the LRU: LRULen = %d", e.LRULen())
	}
	if got := e.Stats().Evictions; got != before {
		t.Fatalf("skipped range counted as %d evictions", got-before)
	}

	// Once the loads land the same range must evict normally.
	st.pendingLoads = 0
	e.evictIfNeeded()
	if e.LRULen() != 0 || e.Stats().Evictions != before+1 {
		t.Fatalf("range did not evict after loads landed: LRULen=%d evictions=%d",
			e.LRULen(), e.Stats().Evictions-before)
	}
	if _, ok := e.Store().Get("t|ann|100|bob"); ok {
		t.Fatal("evicted output still stored")
	}
}
