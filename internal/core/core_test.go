package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pequod/internal/join"
	"pequod/internal/keys"
)

const timelineJoin = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

func newTwipEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := New(opts)
	if err := e.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	return e
}

func scanKeys(t *testing.T, e *Engine, lo, hi string) []string {
	t.Helper()
	kvs, pending := e.Scan(lo, hi, 0)
	if pending != 0 {
		t.Fatalf("unexpected pending loads: %d", pending)
	}
	out := make([]string, len(kvs))
	for i, kv := range kvs {
		out[i] = kv.Key
	}
	return out
}

func wantKeys(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d keys %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestTimelineJoinBasic(t *testing.T) {
	e := newTwipEngine(t, Options{})
	// §2.2's example data.
	e.Put("s|ann|bob", "1")
	e.Put("p|bob|100", "Hi")

	got := scanKeys(t, e, "t|ann|", keys.PrefixEnd("t|ann|"))
	wantKeys(t, got, "t|ann|100|bob")

	kvs, _ := e.Scan("t|ann|", "t|ann}", 0)
	if kvs[0].Value != "Hi" {
		t.Fatalf("timeline value = %q", kvs[0].Value)
	}
}

func TestTimelineIncrementalPost(t *testing.T) {
	e := newTwipEngine(t, Options{})
	e.Put("s|ann|bob", "1")
	e.Put("p|bob|100", "Hi")
	scanKeys(t, e, "t|ann|", "t|ann}") // materialize
	execs := e.Stats().JoinExecs

	// "If bob tweets again at time 120 ... Pequod automatically copies
	// the tweet to key t|ann|120|bob" (§2.2) — eagerly, with no further
	// join execution.
	e.Put("p|bob|120", "Hi again")
	if v, ok := e.Store().Get("t|ann|120|bob"); !ok || v.String() != "Hi again" {
		t.Fatal("eager maintenance did not copy the new post")
	}
	got := scanKeys(t, e, "t|ann|", "t|ann}")
	wantKeys(t, got, "t|ann|100|bob", "t|ann|120|bob")
	if e.Stats().JoinExecs != execs {
		t.Fatalf("timeline recomputed: %d execs, want %d", e.Stats().JoinExecs, execs)
	}
}

func TestTimelinePostRemovalAndUpdate(t *testing.T) {
	e := newTwipEngine(t, Options{})
	e.Put("s|ann|bob", "1")
	e.Put("p|bob|100", "Hi")
	scanKeys(t, e, "t|ann|", "t|ann}")

	e.Put("p|bob|100", "edited")
	if v, _ := e.Store().Get("t|ann|100|bob"); v.String() != "edited" {
		t.Fatal("update not propagated")
	}
	e.Remove("p|bob|100")
	got := scanKeys(t, e, "t|ann|", "t|ann}")
	wantKeys(t, got)
}

func TestSubscriptionChangeLazy(t *testing.T) {
	e := newTwipEngine(t, Options{})
	e.Put("s|ann|bob", "1")
	e.Put("p|bob|100", "from bob")
	e.Put("p|liz|090", "from liz")
	e.Put("p|liz|150", "more liz")
	scanKeys(t, e, "t|ann|", "t|ann}")

	// New subscription: lazily maintained (§3.2) — outputs appear on the
	// next read, including liz's *old* posts.
	e.Put("s|ann|liz", "1")
	if _, ok := e.Store().Get("t|ann|090|liz"); ok {
		t.Fatal("check-source maintenance should be lazy, not eager")
	}
	got := scanKeys(t, e, "t|ann|", "t|ann}")
	wantKeys(t, got, "t|ann|090|liz", "t|ann|100|bob", "t|ann|150|liz")

	// After log application the new poster is eagerly maintained too.
	e.Put("p|liz|200", "even more")
	if _, ok := e.Store().Get("t|ann|200|liz"); !ok {
		t.Fatal("updater not installed by delta application")
	}

	// Unsubscription logically shifts tweets out of the timeline.
	e.Remove("s|ann|liz")
	got = scanKeys(t, e, "t|ann|", "t|ann}")
	wantKeys(t, got, "t|ann|100|bob")
	// And liz's future posts stay out.
	e.Put("p|liz|300", "gone")
	got = scanKeys(t, e, "t|ann|", "t|ann}")
	wantKeys(t, got, "t|ann|100|bob")
}

func TestPartialTimelineScanAndGapFill(t *testing.T) {
	e := newTwipEngine(t, Options{})
	e.Put("s|ann|bob", "1")
	for i := 0; i < 10; i++ {
		e.Put(fmt.Sprintf("p|bob|%03d", i*10), "x")
	}
	// Dynamic materialization: only the requested range is computed.
	got := scanKeys(t, e, "t|ann|050", "t|ann}")
	wantKeys(t, got, "t|ann|050|bob", "t|ann|060|bob", "t|ann|070|bob", "t|ann|080|bob", "t|ann|090|bob")
	if _, ok := e.Store().Get("t|ann|000|bob"); ok {
		t.Fatal("materialized outside requested range")
	}
	// Widening the scan fills only the gap.
	got = scanKeys(t, e, "t|ann|", "t|ann}")
	if len(got) != 10 {
		t.Fatalf("full scan found %d", len(got))
	}
	// Incremental updates continue to cover both status ranges.
	e.Put("p|bob|005", "early")
	e.Put("p|bob|095", "late")
	got = scanKeys(t, e, "t|ann|", "t|ann}")
	if len(got) != 12 {
		t.Fatalf("after inserts: %d", len(got))
	}
}

func TestMultiTimelineScan(t *testing.T) {
	// "we correctly implement queries like [t|a,t|b) that cross multiple
	// timelines" (§3.1).
	e := newTwipEngine(t, Options{})
	e.Put("s|ann|bob", "1")
	e.Put("s|art|liz", "1")
	e.Put("s|bea|bob", "1")
	e.Put("p|bob|100", "b")
	e.Put("p|liz|200", "l")
	got := scanKeys(t, e, "t|a", "t|b")
	wantKeys(t, got, "t|ann|100|bob", "t|art|200|liz")
	// The bea timeline was outside the scan and must not be materialized.
	if _, ok := e.Store().Get("t|bea|100|bob"); ok {
		t.Fatal("materialized beyond scan range")
	}
	got = scanKeys(t, e, "t|", "t}")
	wantKeys(t, got, "t|ann|100|bob", "t|art|200|liz", "t|bea|100|bob")
}

func TestGetComputesJoins(t *testing.T) {
	e := newTwipEngine(t, Options{})
	e.Put("s|ann|bob", "1")
	e.Put("p|bob|100", "Hi")
	v, ok, pending := e.Get("t|ann|100|bob")
	if !ok || v != "Hi" || pending != 0 {
		t.Fatalf("Get = %q %v %d", v, ok, pending)
	}
	if _, ok, _ := e.Get("t|ann|999|bob"); ok {
		t.Fatal("absent output present")
	}
}

func TestCountAggregate(t *testing.T) {
	e := New(Options{})
	if err := e.InstallText("karma|<author> = count vote|<author>|<id>|<voter>"); err != nil {
		t.Fatal(err)
	}
	e.Put("vote|liz|a1|u1", "1")
	e.Put("vote|liz|a1|u2", "1")
	e.Put("vote|liz|a2|u1", "1")
	e.Put("vote|pat|a9|u1", "1")

	v, ok, _ := e.Get("karma|liz")
	if !ok || v != "3" {
		t.Fatalf("karma|liz = %q %v", v, ok)
	}
	// Eager incremental updates (§2.3: "Aggregated data is kept up to
	// date just like copied data").
	e.Put("vote|liz|a3|u7", "1")
	if v, _ := e.Store().Get("karma|liz"); v.String() != "4" {
		t.Fatalf("karma after vote = %s", v.String())
	}
	e.Remove("vote|liz|a1|u1")
	if v, _ := e.Store().Get("karma|liz"); v.String() != "3" {
		t.Fatalf("karma after unvote = %s", v.String())
	}
	// Value update on a count source doesn't change the count.
	e.Put("vote|liz|a1|u2", "weight2")
	if v, _ := e.Store().Get("karma|liz"); v.String() != "3" {
		t.Fatal("count changed on value update")
	}
	// Scanning the whole karma table aggregates every author.
	got := scanKeys(t, e, "karma|", "karma}")
	wantKeys(t, got, "karma|liz", "karma|pat")
	// Dropping to zero removes the output key.
	e.Remove("vote|pat|a9|u1")
	got = scanKeys(t, e, "karma|", "karma}")
	wantKeys(t, got, "karma|liz")
}

func TestSumAggregate(t *testing.T) {
	e := New(Options{})
	if err := e.InstallText("total|<acct> = sum txn|<acct>|<id>"); err != nil {
		t.Fatal(err)
	}
	e.Put("txn|a|1", "10")
	e.Put("txn|a|2", "32")
	if v, _, _ := e.Get("total|a"); v != "42" {
		t.Fatalf("sum = %q", v)
	}
	e.Put("txn|a|2", "12") // update: delta -20
	if v, _ := e.Store().Get("total|a"); v.String() != "22" {
		t.Fatalf("sum after update = %s", v.String())
	}
	e.Remove("txn|a|1")
	if v, _ := e.Store().Get("total|a"); v.String() != "12" {
		t.Fatalf("sum after remove = %s", v.String())
	}
}

func TestMinMaxAggregate(t *testing.T) {
	e := New(Options{})
	if err := e.InstallText("lo|<g> = min m|<g>|<id>; hi|<g> = max m|<g>|<id>"); err != nil {
		t.Fatal(err)
	}
	e.Put("m|g|1", "5")
	e.Put("m|g|2", "3")
	e.Put("m|g|3", "9")
	if v, _, _ := e.Get("lo|g"); v != "3" {
		t.Fatalf("min = %q", v)
	}
	if v, _, _ := e.Get("hi|g"); v != "9" {
		t.Fatalf("max = %q", v)
	}
	// Improvement: eager update without recompute.
	e.Put("m|g|4", "1")
	if v, _ := e.Store().Get("lo|g"); v.String() != "1" {
		t.Fatal("min improvement")
	}
	// Removing the extremum forces a group recompute.
	e.Remove("m|g|4")
	if v, _ := e.Store().Get("lo|g"); v.String() != "3" {
		t.Fatalf("min after extremum removal = %s", v.String())
	}
	// Update displacing the max.
	e.Put("m|g|3", "2")
	if v, _ := e.Store().Get("hi|g"); v.String() != "5" {
		t.Fatalf("max after displacement = %s", v.String())
	}
	// Removing everything removes the aggregate output.
	e.Remove("m|g|1")
	e.Remove("m|g|2")
	e.Remove("m|g|3")
	if _, ok := e.Store().Get("lo|g"); ok {
		t.Fatal("empty group should remove output")
	}
}

const newpJoins = `
  karma|<author> = count vote|<author>|<id>|<voter>;
  rank|<author>|<id> = count vote|<author>|<id>|<voter>;
  page|<author>|<id>|a = copy article|<author>|<id>;
  page|<author>|<id>|r = copy rank|<author>|<id>;
  page|<author>|<id>|c|<cid>|<commenter> = copy comment|<author>|<id>|<cid>|<commenter>;
  page|<author>|<id>|k|<cid>|<commenter> = check comment|<author>|<id>|<cid>|<commenter> copy karma|<commenter>
`

func TestNewpInterleavedJoins(t *testing.T) {
	// Fig 1: "Interleaved cache joins bring the data necessary to render
	// a Newp article into one contiguous range."
	e := New(Options{})
	if err := e.InstallText(newpJoins); err != nil {
		t.Fatal(err)
	}
	e.Put("article|bob|101", "A story")
	e.Put("comment|bob|101|c1|liz", "first!")
	e.Put("comment|bob|101|c2|pat", "nice")
	e.Put("vote|bob|101|u1", "1")
	e.Put("vote|bob|101|u2", "1")
	e.Put("vote|liz|x1|u3", "1") // liz's own article's vote -> liz karma
	e.Put("article|liz|x1", "liz's piece")

	got := scanKeys(t, e, "page|bob|101|", keys.PrefixEnd("page|bob|101|"))
	wantKeys(t, got,
		"page|bob|101|a",
		"page|bob|101|c|c1|liz",
		"page|bob|101|c|c2|pat",
		"page|bob|101|k|c1|liz",
		"page|bob|101|r",
	)
	kvmap := map[string]string{}
	kvs, _ := e.Scan("page|bob|101|", "page|bob|101}", 0)
	for _, kv := range kvs {
		kvmap[kv.Key] = kv.Value
	}
	if kvmap["page|bob|101|a"] != "A story" {
		t.Fatal("article copy")
	}
	if kvmap["page|bob|101|r"] != "2" {
		t.Fatalf("rank copy = %q", kvmap["page|bob|101|r"])
	}
	if kvmap["page|bob|101|k|c1|liz"] != "1" {
		t.Fatalf("karma copy = %q", kvmap["page|bob|101|k|c1|liz"])
	}
	// pat has no karma (no votes on pat's articles): no k entry for c2.
	if _, ok := kvmap["page|bob|101|k|c2|pat"]; ok {
		t.Fatal("karma entry for karma-less commenter")
	}
}

func TestNewpCascadingUpdates(t *testing.T) {
	// A vote must cascade: vote -> rank -> page|r, and vote -> karma ->
	// page|k (join-on-join, two hops).
	e := New(Options{})
	if err := e.InstallText(newpJoins); err != nil {
		t.Fatal(err)
	}
	e.Put("article|bob|101", "A story")
	e.Put("comment|bob|101|c1|liz", "first!")
	e.Put("vote|bob|101|u1", "1")
	e.Put("vote|liz|x1|u3", "1")
	scanKeys(t, e, "page|bob|101|", "page|bob|101}") // materialize

	e.Put("vote|bob|101|u9", "1") // new vote on bob's article
	if v, _ := e.Store().Get("page|bob|101|r"); v.String() != "2" {
		t.Fatalf("rank cascade = %s", v.String())
	}
	e.Put("vote|liz|x1|u4", "1") // new vote on liz's article -> liz karma 2
	if v, _ := e.Store().Get("page|bob|101|k|c1|liz"); v.String() != "2" {
		t.Fatalf("karma cascade = %s", v.String())
	}
}

func TestPullJoin(t *testing.T) {
	// Celebrity timelines (§2.3): pull joins recompute on each request
	// and cache nothing.
	e := New(Options{})
	spec := `
	  ct|<time>|<poster> = copy cp|<poster>|<time>;
	  t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>;
	  t|<user>|<time>|<poster> = pull copy ct|<time>|<poster> check s|<user>|<poster>
	`
	if err := e.InstallText(spec); err != nil {
		t.Fatal(err)
	}
	e.Put("s|ann|bob", "1")
	e.Put("s|ann|celeb", "1")
	e.Put("p|bob|100", "normal tweet")
	e.Put("cp|celeb|150", "celebrity tweet")

	got := scanKeys(t, e, "t|ann|", "t|ann}")
	wantKeys(t, got, "t|ann|100|bob", "t|ann|150|celeb")
	// The celebrity part is never materialized.
	if _, ok := e.Store().Get("t|ann|150|celeb"); ok {
		t.Fatal("pull join materialized")
	}
	pulls := e.Stats().PullExecs
	got = scanKeys(t, e, "t|ann|", "t|ann}")
	wantKeys(t, got, "t|ann|100|bob", "t|ann|150|celeb")
	if e.Stats().PullExecs <= pulls {
		t.Fatal("pull join should recompute per request")
	}
	// New celebrity tweet appears with no maintenance work.
	e.Put("cp|celeb|200", "more")
	got = scanKeys(t, e, "t|ann|", "t|ann}")
	wantKeys(t, got, "t|ann|100|bob", "t|ann|150|celeb", "t|ann|200|celeb")
	// Get reads through the pull overlay too.
	if v, ok, _ := e.Get("t|ann|150|celeb"); !ok || v != "celebrity tweet" {
		t.Fatalf("Get through pull = %q %v", v, ok)
	}
}

func TestSnapshotJoin(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	e := New(Options{Clock: clock})
	if err := e.InstallText("snap|<a> = snapshot 30 copy src|<a>"); err != nil {
		t.Fatal(err)
	}
	e.Put("src|x", "v1")
	if v, _, _ := e.Get("snap|x"); v != "v1" {
		t.Fatalf("snapshot initial = %q", v)
	}
	// Updates are NOT pushed; the snapshot stays stale within T.
	e.Put("src|x", "v2")
	if v, _, _ := e.Get("snap|x"); v != "v1" {
		t.Fatalf("snapshot should stay stale within T, got %q", v)
	}
	// After T the snapshot recomputes.
	now = now.Add(31 * time.Second)
	if v, _, _ := e.Get("snap|x"); v != "v2" {
		t.Fatalf("snapshot after expiry = %q", v)
	}
}

func TestCycleRejected(t *testing.T) {
	e := New(Options{})
	if err := e.InstallText("b|<x> = copy a|<x>"); err != nil {
		t.Fatal(err)
	}
	if err := e.InstallText("c|<x> = copy b|<x>"); err != nil {
		t.Fatal(err)
	}
	err := e.InstallText("a|<x> = copy c|<x>")
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not rejected: %v", err)
	}
}

func TestEviction(t *testing.T) {
	e := New(Options{MemLimit: 40 * 1024})
	if err := e.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20; u++ {
		user := fmt.Sprintf("u%02d", u)
		e.Put("s|"+user+"|bob", "1")
	}
	for i := 0; i < 50; i++ {
		e.Put(fmt.Sprintf("p|bob|%03d", i), "tweet tweet tweet")
	}
	// Materialize many timelines to blow the limit.
	for u := 0; u < 20; u++ {
		user := fmt.Sprintf("u%02d", u)
		scanKeys(t, e, "t|"+user+"|", "t|"+user+"}")
	}
	if e.Stats().Evictions == 0 {
		t.Fatal("no evictions under memory pressure")
	}
	if e.Store().Bytes() > 80*1024 {
		t.Fatalf("store did not shrink: %d bytes", e.Store().Bytes())
	}
	// Evicted timelines recompute correctly on demand.
	got := scanKeys(t, e, "t|u00|", "t|u00}")
	if len(got) != 50 {
		t.Fatalf("recomputed timeline has %d entries", len(got))
	}
}

// fakeLoader simulates the backing database of a write-around deployment
// (§2, §3.3): loads complete asynchronously via LoadComplete.
type fakeLoader struct {
	e       *Engine
	data    map[string]string
	pending []func()
	loads   int
}

func (f *fakeLoader) StartLoad(table string, r keys.Range) {
	f.loads++
	f.pending = append(f.pending, func() {
		var kvs []KV
		for k, v := range f.data {
			if keys.Table(k) == table && r.Contains(k) {
				kvs = append(kvs, KV{k, v})
			}
		}
		f.e.LoadComplete(table, r, kvs)
	})
}

func (f *fakeLoader) drain() {
	p := f.pending
	f.pending = nil
	for _, fn := range p {
		fn()
	}
}

func TestRestartContexts(t *testing.T) {
	e := New(Options{})
	fl := &fakeLoader{e: e, data: map[string]string{
		"s|ann|bob": "1",
		"s|ann|liz": "1",
		"p|bob|100": "hello",
		"p|liz|150": "world",
	}}
	e.SetLoader(fl, "s", "p")
	if err := e.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}

	// First scan: subscriptions missing -> fetch starts, result pending.
	kvs, pending := e.Scan("t|ann|", "t|ann}", 0)
	if pending == 0 {
		t.Fatal("expected pending loads")
	}
	if len(kvs) != 0 {
		t.Fatalf("partial results: %v", kvs)
	}
	gen := e.LoadGen()
	fl.drain() // subscriptions arrive
	if e.LoadGen() == gen {
		t.Fatal("LoadGen should advance")
	}

	// Retry: posts now missing -> second round of fetches ("in most
	// cases, this requires at most one round of fetches", §3.3 — here
	// two because posts depend on subscription contents).
	_, pending = e.Scan("t|ann|", "t|ann}", 0)
	if pending == 0 {
		t.Fatal("expected post loads")
	}
	fl.drain()

	kvs, pending = e.Scan("t|ann|", "t|ann}", 0)
	if pending != 0 {
		t.Fatalf("still pending after loads: %d", pending)
	}
	got := make([]string, len(kvs))
	for i, kv := range kvs {
		got[i] = kv.Key
	}
	wantKeys(t, got, "t|ann|100|bob", "t|ann|150|liz")

	// Subsequent scans hit cache: no more loads.
	loads := fl.loads
	e.Scan("t|ann|", "t|ann}", 0)
	if fl.loads != loads {
		t.Fatal("cached ranges refetched")
	}
}

func TestChangeHook(t *testing.T) {
	e := newTwipEngine(t, Options{})
	var changes []Change
	e.SetChangeHook(func(c Change) { changes = append(changes, c) })
	e.Put("s|ann|bob", "1")
	e.Put("p|bob|100", "Hi")
	scanKeys(t, e, "t|ann|", "t|ann}")
	// Hook sees base writes and computed writes.
	var sawBase, sawComputed bool
	for _, c := range changes {
		if c.Key == "p|bob|100" {
			sawBase = true
		}
		if c.Key == "t|ann|100|bob" {
			sawComputed = true
		}
	}
	if !sawBase || !sawComputed {
		t.Fatalf("hook coverage: base=%v computed=%v", sawBase, sawComputed)
	}
}

func TestAmbiguousJoinInstallAllowed(t *testing.T) {
	// §3: ambiguous joins are the user's responsibility, not an install
	// error.
	e := New(Options{})
	j, err := join.Parse("t|<user>|<time> = check s|<user>|<poster> copy p|<poster>|<time>")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Install(j); err != nil {
		t.Fatal(err)
	}
	e.Put("s|ann|bob", "1")
	e.Put("p|bob|100", "only one poster at this time")
	got := scanKeys(t, e, "t|ann|", "t|ann}")
	wantKeys(t, got, "t|ann|100")
}

func TestScanLimit(t *testing.T) {
	e := newTwipEngine(t, Options{})
	e.Put("s|ann|bob", "1")
	for i := 0; i < 20; i++ {
		e.Put(fmt.Sprintf("p|bob|%03d", i), "x")
	}
	kvs, _ := e.Scan("t|ann|", "t|ann}", 5)
	if len(kvs) != 5 {
		t.Fatalf("limit ignored: %d", len(kvs))
	}
}

func TestJoinsListing(t *testing.T) {
	e := newTwipEngine(t, Options{})
	js := e.Joins()
	if len(js) != 1 || !strings.Contains(js[0], "check s|") {
		t.Fatalf("Joins = %v", js)
	}
}

func TestDirectWritesToOutputTableCoexist(t *testing.T) {
	// The store is schema-free: clients may write into a join's output
	// range (client Pequod does exactly this when no joins are
	// installed; with joins, mixing is the user's responsibility).
	e := New(Options{})
	e.Put("t|ann|100|bob", "hand-written")
	got := scanKeys(t, e, "t|", "t}")
	wantKeys(t, got, "t|ann|100|bob")
}

func TestUpdaterMergingStats(t *testing.T) {
	e := newTwipEngine(t, Options{})
	for u := 0; u < 5; u++ {
		e.Put(fmt.Sprintf("s|u%d|bob", u), "1")
	}
	e.Put("p|bob|100", "x")
	for u := 0; u < 5; u++ {
		scanKeys(t, e, fmt.Sprintf("t|u%d|", u), fmt.Sprintf("t|u%d}", u))
	}
	st := e.Stats()
	// All five timelines install updaters on overlapping p|bob| ranges;
	// the exact-range ones merge.
	if st.UpdatersMerged == 0 {
		t.Fatalf("no updater merging: %+v", st)
	}
}
