// Package core implements the Pequod cache-join engine: query execution
// (§3.1), incremental maintenance (§3.2), missing-data resolution (§3.3),
// and performance annotations (§3.4), layered over the ordered store of
// package store.
//
// An Engine is single-writer, exactly like the paper's single-threaded
// event-driven server; the network server serializes access to it, and
// scale-out runs many engines partitioned by key range (§2.4, §5.5).
package core

import (
	"fmt"
	"sort"
	"time"

	"pequod/internal/interval"
	"pequod/internal/join"
	"pequod/internal/keys"
	"pequod/internal/rbtree"
	"pequod/internal/store"
)

// KV is one key-value pair in a scan result.
type KV struct {
	Key   string
	Value string
}

// Lookup is one result of a batched point read: the value and whether
// the key existed.
type Lookup struct {
	Value string
	Found bool
}

// ChangeOp classifies a store mutation reported through OnChange.
type ChangeOp int

const (
	// OpPut is an insert of a new key or update of an existing one.
	OpPut ChangeOp = iota
	// OpRemove is a removal requested by a client or by maintenance.
	OpRemove
	// OpEvict is a removal due to memory pressure; replicas are not told
	// to drop evicted data (it remains valid, just no longer cached
	// here), so subscription forwarding ignores these.
	OpEvict
)

// Change describes one store mutation, for cross-server subscriptions.
type Change struct {
	Op    ChangeOp
	Key   string
	Value string // new value for OpPut; previous value otherwise
}

// BaseLoader loads missing base data from a backing database or a remote
// home server (§3.3). StartLoad must eventually call the engine's
// LoadComplete with the same table and range, from the same goroutine
// that drives the engine (the server's command loop).
type BaseLoader interface {
	StartLoad(table string, r keys.Range)
}

// Options configure an Engine. The zero value enables every paper
// optimization; the ablation benchmarks switch them off individually.
type Options struct {
	// DisableOutputHints turns off §4.2 output hints.
	DisableOutputHints bool
	// DisableValueSharing turns off §4.3 value sharing for copy outputs.
	DisableValueSharing bool
	// MemLimit is the eviction threshold in accounted bytes (0 = never
	// evict), per §2.5.
	MemLimit int64
	// Clock overrides time.Now for snapshot joins and LRU; tests inject
	// a fake clock.
	Clock func() time.Time
}

// Stats counts engine activity; the evaluation harness reports these.
type Stats struct {
	Gets, Puts, Removes, Scans int64
	ScannedKeys                int64
	JoinExecs                  int64 // forward executions (Fig 5)
	PullExecs                  int64 // pull-join executions (§3.4)
	UpdatersInstalled          int64
	UpdatersMerged             int64 // §3.2 overlapping-updater merging
	UpdaterFires               int64
	LogsApplied                int64 // partial invalidation entries applied
	Invalidations              int64 // complete invalidations
	PartialInvalidations       int64 // range-granular dirty marks (vs whole-range)
	DirtyRecomputes            int64 // dirty sub-intervals recomputed in place
	BoundedStaleServes         int64 // within-budget staleness served by bounded reads
	Evictions                  int64
	LoadsStarted               int64 // §3.3 async base-data fetches
	NotifiedChanges            int64
}

// Add accumulates o into s — aggregation across shards and servers.
func (s *Stats) Add(o Stats) {
	s.Gets += o.Gets
	s.Puts += o.Puts
	s.Removes += o.Removes
	s.Scans += o.Scans
	s.ScannedKeys += o.ScannedKeys
	s.JoinExecs += o.JoinExecs
	s.PullExecs += o.PullExecs
	s.UpdatersInstalled += o.UpdatersInstalled
	s.UpdatersMerged += o.UpdatersMerged
	s.UpdaterFires += o.UpdaterFires
	s.LogsApplied += o.LogsApplied
	s.Invalidations += o.Invalidations
	s.PartialInvalidations += o.PartialInvalidations
	s.DirtyRecomputes += o.DirtyRecomputes
	s.BoundedStaleServes += o.BoundedStaleServes
	s.Evictions += o.Evictions
	s.LoadsStarted += o.LoadsStarted
	s.NotifiedChanges += o.NotifiedChanges
}

// Engine is a single Pequod cache engine.
type Engine struct {
	s    *store.Store
	opts Options

	joins    []*installedJoin
	outJoins map[string][]*installedJoin         // by output table
	updaters map[string]*interval.Tree[*Updater] // by source table
	updIndex map[string]*Updater                 // exact-range merge index

	presence map[string]*presenceTable // loader-backed base tables
	loader   BaseLoader
	loadGen  int64 // increments on every LoadComplete, for waiters

	onChange func(Change)

	lru   lruList
	stats Stats
}

// New returns an engine over a fresh store.
func New(opts Options) *Engine {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Engine{
		s:        store.New(),
		opts:     opts,
		outJoins: make(map[string][]*installedJoin),
		updaters: make(map[string]*interval.Tree[*Updater]),
		updIndex: make(map[string]*Updater),
		presence: make(map[string]*presenceTable),
	}
}

// Store exposes the underlying store (read-only use: stats, tests).
func (e *Engine) Store() *store.Store { return e.s }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetChangeHook registers the cross-server subscription callback, invoked
// for every store mutation (§2.4).
func (e *Engine) SetChangeHook(fn func(Change)) { e.onChange = fn }

// SetLoader registers the base-data loader and marks the given tables as
// loader-backed: scans touching uncached ranges of these tables trigger
// asynchronous fetches with restart contexts (§3.3).
func (e *Engine) SetLoader(l BaseLoader, tables ...string) {
	e.loader = l
	for _, t := range tables {
		if e.presence[t] == nil {
			e.presence[t] = newPresenceTable()
		}
	}
}

// SetSubtableDepth forwards to the store (§4.1).
func (e *Engine) SetSubtableDepth(table string, depth int) {
	e.s.SetSubtableDepth(table, depth)
}

// installedJoin is a join plus its runtime bookkeeping.
type installedJoin struct {
	j *join.Join
	// status holds this join's join status ranges keyed by range start;
	// ranges are disjoint and cover exactly the materialized portions of
	// the output space (§3.2).
	status rbtree.Tree[*JoinStatus]
}

// Install compiles bookkeeping for a parsed join and activates it. It
// rejects joins that would create a cycle through the installed join
// graph ("Users should not install circular cache joins" — Pequod checks
// for errors such as recursive queries at installation time, §3).
func (e *Engine) Install(j *join.Join) error {
	// Cycle check on the table graph: edge src-table -> out-table for
	// every installed join plus the candidate.
	edges := map[string][]string{}
	add := func(jj *join.Join) {
		for _, st := range jj.SourceTables() {
			edges[st] = append(edges[st], jj.Out.Table())
		}
	}
	for _, ij := range e.joins {
		add(ij.j)
	}
	add(j)
	// DFS from the candidate's output table; reaching any of its source
	// tables closes a cycle.
	srcSet := map[string]bool{}
	for _, t := range j.SourceTables() {
		srcSet[t] = true
	}
	seen := map[string]bool{}
	var stack []string
	stack = append(stack, j.Out.Table())
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[t] {
			continue
		}
		seen[t] = true
		if srcSet[t] {
			return fmt.Errorf("install %s: would create a recursive join cycle through table %q", j, t)
		}
		stack = append(stack, edges[t]...)
	}

	ij := &installedJoin{j: j}
	e.joins = append(e.joins, ij)
	e.outJoins[j.Out.Table()] = append(e.outJoins[j.Out.Table()], ij)
	return nil
}

// InstallText parses and installs a join specification ("add-join" RPC).
func (e *Engine) InstallText(text string) error {
	js, err := join.ParseAll(text)
	if err != nil {
		return err
	}
	for _, j := range js {
		if err := e.Install(j); err != nil {
			return err
		}
	}
	return nil
}

// Joins returns the installed joins' texts.
func (e *Engine) Joins() []string {
	var out []string
	for _, ij := range e.joins {
		out = append(out, ij.j.Text)
	}
	return out
}

// updaterTree returns (creating) the updater interval tree for a table.
func (e *Engine) updaterTree(table string) *interval.Tree[*Updater] {
	t := e.updaters[table]
	if t == nil {
		t = interval.New[*Updater]()
		e.updaters[table] = t
	}
	return t
}

// Put installs value under key (client write or database notification)
// and runs incremental maintenance.
func (e *Engine) Put(key, value string) {
	e.stats.Puts++
	e.applyValue(key, store.NewValue(value), nil)
	e.evictIfNeeded()
}

// PutQuiet is Put without the served-operation counter: cluster replica
// maintenance mirrors a write already counted at its owning member, so
// counting it again would double the cluster's apparent work.
func (e *Engine) PutQuiet(key, value string) {
	e.applyValue(key, store.NewValue(value), nil)
	e.evictIfNeeded()
}

// Remove deletes key and runs incremental maintenance.
func (e *Engine) Remove(key string) bool {
	e.stats.Removes++
	old, ok := e.s.Remove(key)
	if !ok {
		return false
	}
	e.notify(Change{Op: OpRemove, Key: key, Value: old.String()})
	e.fireUpdaters(key, old, nil)
	return true
}

// RemoveQuiet is Remove without the served-operation counter; see
// PutQuiet.
func (e *Engine) RemoveQuiet(key string) bool {
	old, ok := e.s.Remove(key)
	if !ok {
		return false
	}
	e.notify(Change{Op: OpRemove, Key: key, Value: old.String()})
	e.fireUpdaters(key, old, nil)
	return true
}

// applyValue is the single mutation path shared by client puts and join
// emission: store write (optionally hinted, §4.2), change notification,
// then updater firing so downstream joins cascade.
func (e *Engine) applyValue(key string, v *store.Value, hint *store.Hint) {
	var old *store.Value
	if hint != nil && !e.opts.DisableOutputHints {
		old = e.s.PutHint(key, v, hint)
	} else {
		old = e.s.Put(key, v)
	}
	e.notify(Change{Op: OpPut, Key: key, Value: v.String()})
	e.fireUpdaters(key, old, v)
}

// removeInternal removes a key as part of maintenance (updater-driven),
// cascading like applyValue.
func (e *Engine) removeInternal(key string) {
	old, ok := e.s.Remove(key)
	if !ok {
		return
	}
	e.notify(Change{Op: OpRemove, Key: key, Value: old.String()})
	e.fireUpdaters(key, old, nil)
}

func (e *Engine) notify(c Change) {
	if e.onChange != nil {
		e.stats.NotifiedChanges++
		e.onChange(c)
	}
}

// Get returns the value for key, computing any covering cache joins on
// demand. pending is the number of outstanding base-data loads; when
// nonzero the result may be incomplete and the caller should retry after
// the loads finish (§3.3).
func (e *Engine) Get(key string) (val string, ok bool, pending int) {
	return e.GetBounded(key, 0)
}

// GetBounded is Get with a staleness budget: maxStale zero reads fresh;
// a positive budget may serve key from a dirty span or ahead of
// unapplied lazy logs whose age is within the budget, skipping their
// recomputation. Coverage gaps still compute (and load) fresh — a
// bounded read serves old state, never absent state.
func (e *Engine) GetBounded(key string, maxStale time.Duration) (val string, ok bool, pending int) {
	e.stats.Gets++
	var overlay []KV
	pending = e.ensureRangeBounded(keys.Range{Lo: key, Hi: key + "\x00"}, &overlay, maxStale)
	if v, ok := e.s.Get(key); ok {
		return v.String(), true, pending
	}
	for _, kv := range overlay {
		if kv.Key == key {
			return kv.Value, true, pending
		}
	}
	return "", false, pending
}

// Scan returns up to limit (0 = unlimited) key-value pairs in [lo, hi),
// computing overlapping cache joins on demand. pending reports
// outstanding base-data loads as for Get.
func (e *Engine) Scan(lo, hi string, limit int) (kvs []KV, pending int) {
	return e.ScanInto(lo, hi, limit, nil)
}

// ScanInto is Scan appending into buf (reusing its capacity), the
// zero-steady-state-garbage path servers use for large timeline reads.
func (e *Engine) ScanInto(lo, hi string, limit int, buf []KV) (kvs []KV, pending int) {
	return e.ScanIntoBounded(lo, hi, limit, buf, 0)
}

// ScanIntoBounded is ScanInto with a staleness budget (see GetBounded).
func (e *Engine) ScanIntoBounded(lo, hi string, limit int, buf []KV, maxStale time.Duration) (kvs []KV, pending int) {
	e.stats.Scans++
	kvs = buf[:0]
	r := keys.Range{Lo: lo, Hi: hi}
	var overlay []KV
	pending = e.ensureRangeBounded(r, &overlay, maxStale)

	if len(overlay) == 0 {
		// Fast path: no pull joins contributed; stream the store range.
		e.s.Scan(lo, hi, func(k string, v *store.Value) bool {
			kvs = append(kvs, KV{k, v.String()})
			e.stats.ScannedKeys++
			return limit == 0 || len(kvs) < limit
		})
		e.evictIfNeeded()
		return kvs, pending
	}

	// Each pull execution sorted its own segment; merge across joins.
	sort.Slice(overlay, func(i, k int) bool { return overlay[i].Key < overlay[k].Key })

	// Merge the store contents with pull-join overlays (both sorted).
	oi := 0
	e.s.Scan(lo, hi, func(k string, v *store.Value) bool {
		for oi < len(overlay) && overlay[oi].Key < k {
			kvs = append(kvs, overlay[oi])
			oi++
			if limit > 0 && len(kvs) >= limit {
				return false
			}
		}
		if oi < len(overlay) && overlay[oi].Key == k {
			oi++ // store wins on duplicates
		}
		kvs = append(kvs, KV{k, v.String()})
		e.stats.ScannedKeys++
		return limit == 0 || len(kvs) < limit
	})
	for oi < len(overlay) && (limit == 0 || len(kvs) < limit) {
		kvs = append(kvs, overlay[oi])
		oi++
	}
	e.evictIfNeeded()
	return kvs, pending
}

// Count returns the number of keys in [lo, hi) after join computation.
func (e *Engine) Count(lo, hi string) (n int, pending int) {
	kvs, pending := e.Scan(lo, hi, 0)
	return len(kvs), pending
}

// CountBounded is Count with a staleness budget (see GetBounded).
func (e *Engine) CountBounded(lo, hi string, maxStale time.Duration) (n int, pending int) {
	kvs, pending := e.ScanIntoBounded(lo, hi, 0, nil, maxStale)
	return len(kvs), pending
}

// ensureRange computes every installed join overlapping r and resolves
// direct reads of loader-backed base ranges ("If a request is made for a
// database-sourced key, Pequod will query the database and cache the
// result", §2). Pull-join results are appended to *overlay (sorted per
// join; merged by caller). It returns the number of outstanding loads.
func (e *Engine) ensureRange(r keys.Range, overlay *[]KV) (pending int) {
	return e.ensureRangeBounded(r, overlay, 0)
}

// ensureRangeBounded is ensureRange carrying a bounded read's staleness
// budget into each join's ensure pass. Loader-backed presence and pull
// joins are budget-blind: presence gaps must load regardless (absent
// rows are not stale rows), and pull joins recompute per read by
// design.
func (e *Engine) ensureRangeBounded(r keys.Range, overlay *[]KV, maxStale time.Duration) (pending int) {
	for table, pt := range e.presence {
		tr := keys.Range{Lo: table, Hi: keys.PrefixEnd(table + keys.SepString)}
		rr := r.Intersect(tr)
		if !rr.Empty() {
			pending += e.ensurePresent(table, pt, rr)
		}
	}
	for _, ij := range e.joins {
		tr := ij.j.Out.TableRange()
		rr := r.Intersect(tr)
		if rr.Empty() {
			continue
		}
		switch ij.j.Maint {
		case join.Pull:
			if overlay != nil {
				pending += e.execPull(ij, rr, overlay)
			} else {
				// Point lookups on pull joins still need the overlay to
				// be visible; Get handles pull joins via Scan instead.
				var tmp []KV
				pending += e.execPull(ij, rr, &tmp)
			}
		default:
			pending += e.ensure(ij, rr, maxStale)
		}
	}
	return pending
}

// StalenessDebt reports the engine's lazy-maintenance backlog: the
// number of dirty spans and unapplied log batches across all join
// statuses, and the age of the oldest unapplied write among them — the
// staleness a bounded read with an infinite budget could observe.
// Health reporting walks every status; call it at monitoring cadence,
// not per read (reads age their own ranges inside ensure).
func (e *Engine) StalenessDebt(now time.Time) (spans int, oldest time.Duration) {
	for _, ij := range e.joins {
		for n := ij.status.First(); n != nil; n = n.Next() {
			st := n.Val
			for _, d := range st.dirty {
				spans++
				if a := now.Sub(d.at); a > oldest {
					oldest = a
				}
			}
			if len(st.logs) > 0 {
				spans++
				if a := now.Sub(st.logs[0].at); a > oldest {
					oldest = a
				}
			}
		}
	}
	return spans, oldest
}

// LoadGen returns a counter incremented whenever an asynchronous base-data
// load completes; servers use it to wait for progress before retrying an
// incomplete scan.
func (e *Engine) LoadGen() int64 { return e.loadGen }

func (e *Engine) now() time.Time { return e.opts.Clock() }
