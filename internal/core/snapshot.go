package core

// Durable snapshot support: a non-destructive walk of the engine's
// persistent-worthy state (base rows + valid computed coverage), and the
// recovery-side warm rebuild. Unlike ExtractRange these leave the engine
// untouched — they feed the durable store's periodic snapshots, which
// must not perturb serving.
//
// Both must run under the shard's lock, like every engine entry point.

import (
	"pequod/internal/keys"
	"pequod/internal/store"
)

// SnapshotWalk emits every stored row whose table skip does not exclude,
// then every valid computed range per installed join (by join index, the
// same indexing WarmRange uses everywhere else). Join output rows are
// the canonical skip: they are derived state, captured as warm coverage
// and recomputed at recovery instead of being persisted row by row.
func (e *Engine) SnapshotWalk(skip func(table string) bool, emitKV func(k, v string), emitWarm func(w WarmRange)) {
	e.s.Scan("", "", func(k string, v *store.Value) bool {
		if skip == nil || !skip(keys.Table(k)) {
			emitKV(k, v.String())
		}
		return true
	})
	for idx, ij := range e.joins {
		for n := ij.status.First(); n != nil; n = n.Next() {
			if st := n.Val; st.valid {
				emitWarm(WarmRange{Join: idx, R: st.r})
			}
		}
	}
}

// RebuildWarm eagerly re-derives previously valid computed coverage
// after a recovery restore, so ranges that were hot before the restart
// come back hot instead of being recomputed by the first unlucky
// reader. Entries indexing joins this engine lacks (the recovered join
// set diverged from the snapshot's) are skipped — they recompute on
// demand, which is only a cold start, never a correctness problem.
func (e *Engine) RebuildWarm(ws []WarmRange) {
	n := 0
	for _, w := range ws {
		if w.Join < 0 || w.Join >= len(e.joins) {
			continue
		}
		ij := e.joins[w.Join]
		if rr := w.R.Intersect(ij.j.Out.TableRange()); !rr.Empty() {
			e.ensure(ij, rr, 0)
			n++
		}
	}
	if n > 0 {
		e.loadGen++
	}
}
