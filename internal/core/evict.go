package core

// Eviction (§2.5): "an overloaded Pequod server simply evicts the least
// recently used data ranges." Evictable units are join status ranges
// (computed data) and presence ranges (cached base / remote data); both
// carry an intrusive lruEntry. Eviction removes the range's data,
// uninstalls its bookkeeping, and invalidates dependents transitively.

// lruEntry is an intrusive doubly-linked list node.
type lruEntry struct {
	prev, next *lruEntry
	owner      any // *JoinStatus or *presRange
}

// lruList is a doubly-linked LRU list with sentinel; front = most recent.
type lruList struct {
	head lruEntry // sentinel
	n    int
}

func (l *lruList) init() {
	if l.head.next == nil {
		l.head.next = &l.head
		l.head.prev = &l.head
	}
}

func (l *lruList) moveFront(en *lruEntry) {
	l.init()
	if en.next != nil { // linked: unlink first
		en.prev.next = en.next
		en.next.prev = en.prev
		l.n--
	}
	en.next = l.head.next
	en.prev = &l.head
	l.head.next.prev = en
	l.head.next = en
	l.n++
}

func (l *lruList) remove(en *lruEntry) {
	if en.next == nil {
		return
	}
	en.prev.next = en.next
	en.next.prev = en.prev
	en.next, en.prev = nil, nil
	l.n--
}

func (l *lruList) back() *lruEntry {
	l.init()
	if l.head.prev == &l.head {
		return nil
	}
	return l.head.prev
}

// lruTouch marks a join status as recently used.
func (e *Engine) lruTouch(st *JoinStatus) {
	st.lru.owner = st
	e.lru.moveFront(&st.lru)
}

// lruTouch2 marks any evictable as recently used.
func (e *Engine) lruTouch2(en *lruEntry, owner any) {
	en.owner = owner
	e.lru.moveFront(en)
}

// lruRemove unlinks a join status from the LRU.
func (e *Engine) lruRemove(st *JoinStatus) { e.lru.remove(&st.lru) }

// evictIfNeeded enforces the memory limit by evicting LRU ranges. Ranges
// with loads in flight are skipped — but stay tracked: they are re-linked
// at the front of the list (not silently dropped, which would let them
// escape eviction forever once their loads land) and are not counted as
// evictions. firstSkipped stops the sweep once every remaining range is
// in flight, so the loop cannot spin moving the same entries to the
// front.
func (e *Engine) evictIfNeeded() {
	if e.opts.MemLimit <= 0 {
		return
	}
	var firstSkipped *lruEntry
	for e.s.Bytes() > e.opts.MemLimit {
		en := e.lru.back()
		if en == nil || en == firstSkipped {
			return
		}
		inFlight := false
		switch v := en.owner.(type) {
		case *JoinStatus:
			inFlight = v.pendingLoads > 0
		case *presRange:
			inFlight = v.loading
		}
		if inFlight {
			e.lru.moveFront(en)
			if firstSkipped == nil {
				firstSkipped = en
			}
			continue
		}
		e.lru.remove(en)
		e.stats.Evictions++
		switch v := en.owner.(type) {
		case *JoinStatus:
			e.invalidateStatus(v)
		case *presRange:
			e.evictPresence(v)
		}
	}
}

// LRULen reports the number of evictable ranges tracked (for tests).
func (e *Engine) LRULen() int { return e.lru.n }
