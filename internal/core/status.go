package core

import (
	"time"

	"pequod/internal/interval"
	"pequod/internal/join"
	"pequod/internal/keys"
	"pequod/internal/pattern"
	"pequod/internal/rbtree"
	"pequod/internal/store"
)

// JoinStatus is a join status range (§3.2): it records whether a range of
// output keys is up to date with respect to one cache join. Status ranges
// for a join are disjoint; keys outside every status range are simply not
// materialized yet.
type JoinStatus struct {
	ij *installedJoin
	r  keys.Range

	valid   bool
	expires time.Time // snapshot joins: recompute after this instant

	// scanB is the slot set derived from r at creation; updater contexts
	// are compressed against it (§3.2's context compression).
	scanB pattern.Binding

	// logs holds partially-invalidating source modifications to be
	// applied on the next read (§3.2 lazy maintenance).
	logs []logEntry

	// dirty lists sub-intervals of r whose outputs are stale: a source
	// write landed whose effect on this range could not (or chose not
	// to) be applied incrementally, and the affected output
	// sub-interval — keyed through the join's key transform — was
	// marked instead of invalidating the whole range, so sibling
	// coverage stays valid and warm. A fresh read recomputes the dirty
	// intersection before serving; a bounded read may serve a span's
	// rows as they stand while the span's age is within its budget.
	dirty []dirtySpan

	// hint is the output hint (§4.2).
	hint store.Hint

	// updaters lists the updaters carrying contexts for this status, so
	// invalidation can uninstall them.
	updaters []*Updater

	// pendingLoads counts outstanding base-data fetches whose restart
	// contexts point here (§3.3).
	pendingLoads int

	node *rbtree.Node[*JoinStatus]
	lru  lruEntry
}

// logEntry records one modification to a lazily-maintained (check) source.
type logEntry struct {
	srcIdx int
	key    string
	op     ChangeOp
	had    bool      // key existed before the change (update vs insert)
	at     time.Time // when the modification landed (staleness bookkeeping)
}

// dirtySpan is one stale sub-interval of a join status range.
type dirtySpan struct {
	r  keys.Range
	at time.Time // when the span first went stale (its oldest unapplied write)
}

// maxDirtySpans bounds per-status dirty bookkeeping. Past it the spans
// collapse into one covering span — degrading to whole-range
// granularity for that status, never losing an invalidation.
const maxDirtySpans = 32

// markDirty records that outputs of st inside r are stale as of `at`.
// Overlapping spans coalesce, keeping the earliest stamp so a span's
// age always reflects its oldest unapplied write.
func (e *Engine) markDirty(st *JoinStatus, r keys.Range, at time.Time) {
	r = r.Intersect(st.r)
	if r.Empty() || !st.valid {
		return // invalid statuses recompute wholesale anyway
	}
	e.stats.PartialInvalidations++
	out := st.dirty[:0]
	for _, d := range st.dirty {
		if d.r.Overlaps(r) {
			r = spanUnion(d.r, r)
			if d.at.Before(at) {
				at = d.at
			}
			continue
		}
		out = append(out, d)
	}
	st.dirty = append(out, dirtySpan{r: r, at: at})
	if len(st.dirty) > maxDirtySpans {
		oldest := st.dirty[0].at
		for _, d := range st.dirty[1:] {
			if d.at.Before(oldest) {
				oldest = d.at
			}
		}
		st.dirty = append(st.dirty[:0], dirtySpan{r: st.r, at: oldest})
	}
}

// spanUnion returns the smallest range containing both a and b.
func spanUnion(a, b keys.Range) keys.Range {
	lo := a.Lo
	if b.Lo < lo {
		lo = b.Lo
	}
	hi := a.Hi
	if keys.HiLess(hi, b.Hi) {
		hi = b.Hi
	}
	return keys.Range{Lo: lo, Hi: hi}
}

// ensure brings the join's coverage of rr up to date within maxStale:
// applies pending logs, recomputes invalid or expired ranges and dirty
// sub-intervals, and forward-executes uncovered gaps (Fig 5). maxStale
// zero is a fresh read (today's semantics). A positive maxStale lets
// the read skip applying logs and recomputing dirty spans whose oldest
// unapplied write is younger than the budget — the materialized rows
// are served as they stand, stale by at most maxStale. Coverage gaps
// and invalid ranges always compute fresh regardless of budget: a
// bounded read may serve old state, never fabricate or lose rows. It
// returns outstanding load count.
func (e *Engine) ensure(ij *installedJoin, rr keys.Range, maxStale time.Duration) (pending int) {
	// Pass 0: freshen cascaded sources. A valid status here may have been
	// computed from another join's output whose own maintenance was
	// lazily logged (check sources, §3.2); reading only this join would
	// otherwise serve results the pending log entries invalidate. Ensure
	// source joins over their containing ranges first — their eager
	// updaters then propagate any late changes into this range before we
	// trust it. Base-table sources skip this entirely.
	if b, clip := ij.j.Out.ScanBinding(rr); !clip.Empty() {
		for _, src := range ij.j.Sources {
			table := src.Pat.Table()
			if len(e.outJoins[table]) == 0 {
				continue
			}
			cr := pattern.ContainingRange(src.Pat, ij.j.Out, b, rr)
			if cr.Empty() {
				continue
			}
			pending += e.ensureSourceJoins(table, cr, maxStale)
		}
	}

	// Pass 1: collect overlapping statuses; decide their fate.
	var overlapping []*JoinStatus
	// The only status that can straddle rr.Lo is the last one starting at
	// or before it; everything earlier ends before that one starts.
	start := ij.status.SeekAtOrBefore(rr.Lo)
	if start == nil {
		start = ij.status.Seek(rr.Lo)
	}
	for n := start; n != nil; n = n.Next() {
		st := n.Val
		if rr.Hi != "" && st.r.Lo >= rr.Hi {
			break
		}
		if st.r.Overlaps(rr) {
			overlapping = append(overlapping, st)
		}
	}

	now := e.now()
	var live []*JoinStatus
	for _, st := range overlapping {
		if st.valid && ij.j.Maint == join.Snapshot && !st.expires.IsZero() && now.After(st.expires) {
			e.invalidateStatus(st) // snapshot expired
			continue
		}
		if !st.valid && st.pendingLoads > 0 {
			// Restart context: data is still on the way; keep the status
			// so the retry recomputes it, report pending.
			pending += st.pendingLoads
			live = append(live, st) // occupies its range; not recomputed yet
			continue
		}
		if !st.valid {
			e.invalidateStatus(st)
			continue
		}
		if len(st.logs) > 0 {
			if maxStale > 0 && now.Sub(st.logs[0].at) <= maxStale {
				// Bounded read: the oldest unapplied log entry is within
				// budget. Serve the materialized rows as they stand and
				// leave the log for a fresh (or over-budget) read.
				e.stats.BoundedStaleServes++
			} else {
				e.applyLogs(st)
			}
		}
		if len(st.dirty) > 0 {
			pending += e.recomputeDirty(st, rr, maxStale, now)
		}
		e.lruTouch(st)
		live = append(live, st)
	}

	// Pass 2: fill gaps in rr not covered by surviving statuses. live is
	// sorted by range start (status tree order preserved the order).
	cursor := rr.Lo
	for _, st := range live {
		if st.r.Lo > cursor {
			gap := keys.Range{Lo: cursor, Hi: st.r.Lo}.Intersect(rr)
			if !gap.Empty() {
				pending += e.forwardExec(ij, gap)
			}
		}
		if keys.HiLess(cursor, st.r.Hi) {
			cursor = st.r.Hi
			if cursor == "" {
				break
			}
		}
	}
	if cursor != "" && (rr.Hi == "" || cursor < rr.Hi) {
		gap := keys.Range{Lo: cursor, Hi: rr.Hi}
		if !gap.Empty() {
			pending += e.forwardExec(ij, gap)
		}
	}
	return pending
}

// invalidateStatus completely invalidates a status range: outputs matching
// the join's pattern are removed, updater contexts uninstalled, and the
// status discarded so the next read recomputes from scratch (§3.2).
func (e *Engine) invalidateStatus(st *JoinStatus) {
	e.stats.Invalidations++
	e.detachStatus(st)
	e.removeOutputs(st.ij, st.r)
}

// detachStatus removes bookkeeping (status node, updater contexts, LRU)
// without touching output data.
func (e *Engine) detachStatus(st *JoinStatus) {
	if st.node != nil {
		st.ij.status.Delete(st.node)
		st.node = nil
	}
	for _, u := range st.updaters {
		u.removeContextsOf(st)
		if len(u.contexts) == 0 {
			e.dropUpdater(u)
		}
	}
	st.updaters = nil
	st.valid = false
	st.logs = nil
	st.dirty = nil
	e.lruRemove(st)
}

// recomputeDirty refreshes st's dirty sub-intervals overlapping rr: each
// over-budget span has its outputs removed and re-derived in place — the
// rest of the status's coverage stays untouched and warm. Spans within a
// positive maxStale budget are served as they stand and stay dirty for
// the next fresh read. Returns loads started.
func (e *Engine) recomputeDirty(st *JoinStatus, rr keys.Range, maxStale time.Duration, now time.Time) (pending int) {
	var redo []dirtySpan
	kept := st.dirty[:0]
	for _, d := range st.dirty {
		switch {
		case !d.r.Overlaps(rr):
			kept = append(kept, d)
		case maxStale > 0 && now.Sub(d.at) <= maxStale:
			// Within the read's staleness budget: serve the span's rows
			// stale (by at most maxStale) instead of recomputing.
			e.stats.BoundedStaleServes++
			kept = append(kept, d)
		default:
			redo = append(redo, d)
		}
	}
	st.dirty = kept
	for _, d := range redo {
		pending += e.recomputeSpan(st, d.r)
	}
	return pending
}

// recomputeSpan re-derives st's outputs inside r: the dirty-interval
// twin of forwardExec, executing into the *existing* status so its
// scanB-compressed updater contexts stay correct (installUpdater
// deduplicates re-installations). Missing base data leaves the status
// invalid with pending loads, exactly like a fresh forward execution.
func (e *Engine) recomputeSpan(st *JoinStatus, r keys.Range) (pending int) {
	e.stats.DirtyRecomputes++
	r = r.Intersect(st.r)
	if r.Empty() {
		return 0
	}
	e.removeOutputs(st.ij, r)
	b, clip := st.ij.j.Out.ScanBinding(r)
	if clip.Empty() {
		return 0 // nothing in the span can match the output pattern
	}
	ex := &exec{
		e:          e,
		ij:         st.ij,
		st:         st,
		clip:       r,
		installUpd: st.ij.j.Maint == join.Push,
		skipIdx:    -1,
	}
	if st.ij.j.IsAggregate() {
		ex.aggs = make(map[string]*aggState)
	}
	ex.run(0, b, nil)
	ex.flushAggs()
	if ex.missing > 0 {
		st.pendingLoads += ex.missing
		st.valid = false // the retry recomputes the whole range
		return ex.missing
	}
	return 0
}

// removeOutputs deletes stored outputs of ij within r (only keys matching
// the join's output pattern — interleaved joins share ranges, §2.3) and
// invalidates dependent downstream joins rather than updating them, as
// eviction/invalidation semantics require (§2.5).
func (e *Engine) removeOutputs(ij *installedJoin, r keys.Range) {
	e.removeOutputsOp(ij, r, OpRemove)
}

// removeOutputsOp is removeOutputs notifying the given op: migration
// drops computed ranges with OpEvict, which subscription forwarding
// ignores — the data stays valid, it just stops being cached here.
func (e *Engine) removeOutputsOp(ij *installedJoin, r keys.Range, op ChangeOp) {
	var doomed []string
	e.s.Scan(r.Lo, r.Hi, func(k string, v *store.Value) bool {
		if _, ok := ij.j.Out.Match(k, st0); ok {
			doomed = append(doomed, k)
		}
		return true
	})
	for _, k := range doomed {
		old, ok := e.s.Remove(k)
		if !ok {
			continue
		}
		e.notify(Change{Op: op, Key: k, Value: old.String()})
		e.invalidateDependents(k)
	}
}

// st0 is the empty binding shared by read-only matches.
var st0 pattern.Binding

// invalidateDependents marks the computed sub-intervals depending on key
// dirty in every join status whose updaters cover it (transitive effects
// happen when those spans recompute). This is the range-granular
// replacement for whole-status invalidation: the affected output
// sub-interval is derived by projecting the source key through the
// join's key transform (the output pattern under the context's merged
// binding), so sibling coverage in the same status stays valid and warm.
// A context whose binding conflicts with the key is skipped outright —
// the key cannot contribute tuples through it.
func (e *Engine) invalidateDependents(key string) {
	ut := e.updaters[keys.Table(key)]
	if ut == nil {
		return
	}
	var hit []updCtx
	ut.Stab(key, func(en *interval.Entry[*Updater]) bool {
		hit = append(hit, en.Val.contexts...)
		return true
	})
	if len(hit) == 0 {
		return
	}
	now := e.now()
	for i := range hit {
		c := &hit[i]
		js := c.js
		if !js.valid {
			continue // recomputes wholesale anyway
		}
		src := js.ij.j.Sources[c.srcIdx]
		b2, ok := src.Pat.Match(key, mergeBinding(js.scanB, c.extra))
		if !ok {
			continue
		}
		e.markDirty(js, outAffectedRange(js.ij.j, b2, js.r), now)
	}
}

// outAffectedRange returns the sub-interval of clip that outputs
// depending on binding b can occupy: the output key itself when b
// determines it completely (for aggregates that complete key IS the
// group key, since source-only slots never appear in the output
// pattern), otherwise the range under the longest determined output
// prefix — the join's key transform applied to what is known. An
// unbound leading slot widens to the whole clip.
func outAffectedRange(j *join.Join, b pattern.Binding, clip keys.Range) keys.Range {
	if k, ok := j.Out.BuildKey(b); ok {
		return pattern.PointRange(k).Intersect(clip)
	}
	prefix, _ := j.Out.BuildPrefix(b)
	if prefix == "" {
		return clip
	}
	return keys.Range{Lo: prefix, Hi: keys.PrefixEnd(prefix)}.Intersect(clip)
}
