package core

import (
	"time"

	"pequod/internal/interval"
	"pequod/internal/join"
	"pequod/internal/keys"
	"pequod/internal/pattern"
	"pequod/internal/rbtree"
	"pequod/internal/store"
)

// JoinStatus is a join status range (§3.2): it records whether a range of
// output keys is up to date with respect to one cache join. Status ranges
// for a join are disjoint; keys outside every status range are simply not
// materialized yet.
type JoinStatus struct {
	ij *installedJoin
	r  keys.Range

	valid   bool
	expires time.Time // snapshot joins: recompute after this instant

	// scanB is the slot set derived from r at creation; updater contexts
	// are compressed against it (§3.2's context compression).
	scanB pattern.Binding

	// logs holds partially-invalidating source modifications to be
	// applied on the next read (§3.2 lazy maintenance).
	logs []logEntry

	// hint is the output hint (§4.2).
	hint store.Hint

	// updaters lists the updaters carrying contexts for this status, so
	// invalidation can uninstall them.
	updaters []*Updater

	// pendingLoads counts outstanding base-data fetches whose restart
	// contexts point here (§3.3).
	pendingLoads int

	node *rbtree.Node[*JoinStatus]
	lru  lruEntry
}

// logEntry records one modification to a lazily-maintained (check) source.
type logEntry struct {
	srcIdx int
	key    string
	op     ChangeOp
	had    bool // key existed before the change (update vs insert)
}

// ensure brings the join's coverage of rr fully up to date: applies
// pending logs, recomputes invalid or expired ranges, and forward-executes
// uncovered gaps (Fig 5). It returns outstanding load count.
func (e *Engine) ensure(ij *installedJoin, rr keys.Range) (pending int) {
	// Pass 0: freshen cascaded sources. A valid status here may have been
	// computed from another join's output whose own maintenance was
	// lazily logged (check sources, §3.2); reading only this join would
	// otherwise serve results the pending log entries invalidate. Ensure
	// source joins over their containing ranges first — their eager
	// updaters then propagate any late changes into this range before we
	// trust it. Base-table sources skip this entirely.
	if b, clip := ij.j.Out.ScanBinding(rr); !clip.Empty() {
		for _, src := range ij.j.Sources {
			table := src.Pat.Table()
			if len(e.outJoins[table]) == 0 {
				continue
			}
			cr := pattern.ContainingRange(src.Pat, ij.j.Out, b, rr)
			if cr.Empty() {
				continue
			}
			pending += e.ensureSourceJoins(table, cr)
		}
	}

	// Pass 1: collect overlapping statuses; decide their fate.
	var overlapping []*JoinStatus
	// The only status that can straddle rr.Lo is the last one starting at
	// or before it; everything earlier ends before that one starts.
	start := ij.status.SeekAtOrBefore(rr.Lo)
	if start == nil {
		start = ij.status.Seek(rr.Lo)
	}
	for n := start; n != nil; n = n.Next() {
		st := n.Val
		if rr.Hi != "" && st.r.Lo >= rr.Hi {
			break
		}
		if st.r.Overlaps(rr) {
			overlapping = append(overlapping, st)
		}
	}

	now := e.now()
	var live []*JoinStatus
	for _, st := range overlapping {
		if st.valid && ij.j.Maint == join.Snapshot && !st.expires.IsZero() && now.After(st.expires) {
			e.invalidateStatus(st) // snapshot expired
			continue
		}
		if !st.valid && st.pendingLoads > 0 {
			// Restart context: data is still on the way; keep the status
			// so the retry recomputes it, report pending.
			pending += st.pendingLoads
			live = append(live, st) // occupies its range; not recomputed yet
			continue
		}
		if !st.valid {
			e.invalidateStatus(st)
			continue
		}
		if len(st.logs) > 0 {
			if !e.applyLogs(st) {
				// Delta application unsupported for this shape: fall back
				// to complete invalidation (§3.2).
				e.invalidateStatus(st)
				continue
			}
		}
		e.lruTouch(st)
		live = append(live, st)
	}

	// Pass 2: fill gaps in rr not covered by surviving statuses. live is
	// sorted by range start (status tree order preserved the order).
	cursor := rr.Lo
	for _, st := range live {
		if st.r.Lo > cursor {
			gap := keys.Range{Lo: cursor, Hi: st.r.Lo}.Intersect(rr)
			if !gap.Empty() {
				pending += e.forwardExec(ij, gap)
			}
		}
		if keys.HiLess(cursor, st.r.Hi) {
			cursor = st.r.Hi
			if cursor == "" {
				break
			}
		}
	}
	if cursor != "" && (rr.Hi == "" || cursor < rr.Hi) {
		gap := keys.Range{Lo: cursor, Hi: rr.Hi}
		if !gap.Empty() {
			pending += e.forwardExec(ij, gap)
		}
	}
	return pending
}

// invalidateStatus completely invalidates a status range: outputs matching
// the join's pattern are removed, updater contexts uninstalled, and the
// status discarded so the next read recomputes from scratch (§3.2).
func (e *Engine) invalidateStatus(st *JoinStatus) {
	e.stats.Invalidations++
	e.detachStatus(st)
	e.removeOutputs(st.ij, st.r)
}

// detachStatus removes bookkeeping (status node, updater contexts, LRU)
// without touching output data.
func (e *Engine) detachStatus(st *JoinStatus) {
	if st.node != nil {
		st.ij.status.Delete(st.node)
		st.node = nil
	}
	for _, u := range st.updaters {
		u.removeContextsOf(st)
		if len(u.contexts) == 0 {
			e.dropUpdater(u)
		}
	}
	st.updaters = nil
	st.valid = false
	st.logs = nil
	e.lruRemove(st)
}

// removeOutputs deletes stored outputs of ij within r (only keys matching
// the join's output pattern — interleaved joins share ranges, §2.3) and
// invalidates dependent downstream joins rather than updating them, as
// eviction/invalidation semantics require (§2.5).
func (e *Engine) removeOutputs(ij *installedJoin, r keys.Range) {
	e.removeOutputsOp(ij, r, OpRemove)
}

// removeOutputsOp is removeOutputs notifying the given op: migration
// drops computed ranges with OpEvict, which subscription forwarding
// ignores — the data stays valid, it just stops being cached here.
func (e *Engine) removeOutputsOp(ij *installedJoin, r keys.Range, op ChangeOp) {
	var doomed []string
	e.s.Scan(r.Lo, r.Hi, func(k string, v *store.Value) bool {
		if _, ok := ij.j.Out.Match(k, st0); ok {
			doomed = append(doomed, k)
		}
		return true
	})
	for _, k := range doomed {
		old, ok := e.s.Remove(k)
		if !ok {
			continue
		}
		e.notify(Change{Op: op, Key: k, Value: old.String()})
		e.invalidateDependents(k)
	}
}

// st0 is the empty binding shared by read-only matches.
var st0 pattern.Binding

// invalidateDependents marks every join status whose updaters cover key as
// invalid (transitive effects happen when those ranges recompute).
func (e *Engine) invalidateDependents(key string) {
	ut := e.updaters[keys.Table(key)]
	if ut == nil {
		return
	}
	var hit []*JoinStatus
	ut.Stab(key, func(en *interval.Entry[*Updater]) bool {
		for _, c := range en.Val.contexts {
			hit = append(hit, c.js)
		}
		return true
	})
	for _, js := range hit {
		if js.valid {
			js.valid = false
		}
	}
}
