package core

import (
	"pequod/internal/keys"
	"pequod/internal/rbtree"
	"pequod/internal/store"
)

// presenceTable tracks which ranges of a loader-backed base table are
// resident in the cache (§3.3: "the data is loaded and metadata is
// installed to indicate its presence").
type presenceTable struct {
	// ranges holds disjoint presence records keyed by range start.
	ranges rbtree.Tree[*presRange]
}

func newPresenceTable() *presenceTable { return &presenceTable{} }

// presRange is one resident (or in-flight) base range.
type presRange struct {
	table   string
	r       keys.Range
	loading bool
	node    *rbtree.Node[*presRange]
	lru     lruEntry
}

// ensurePresent checks residency of cr and starts asynchronous loads for
// the gaps. It returns the number of ranges still in flight (both newly
// started and previously outstanding) — the query's restart contexts.
func (e *Engine) ensurePresent(table string, pt *presenceTable, cr keys.Range) (pending int) {
	// Walk overlapping presence records, accumulating gaps.
	var overlapping []*presRange
	start := pt.ranges.SeekBefore(cr.Lo + "\x00")
	if start == nil {
		start = pt.ranges.Seek(cr.Lo)
	}
	for n := start; n != nil; n = n.Next() {
		pr := n.Val
		if cr.Hi != "" && pr.r.Lo >= cr.Hi {
			break
		}
		if pr.r.Overlaps(cr) {
			overlapping = append(overlapping, pr)
		}
	}
	cursor := cr.Lo
	startLoad := func(gap keys.Range) {
		if gap.Empty() {
			return
		}
		pr := &presRange{table: table, r: gap, loading: true}
		n, _ := pt.ranges.Insert(gap.Lo, pr)
		n.Val = pr
		pr.node = n
		e.stats.LoadsStarted++
		pending++
		e.loader.StartLoad(table, gap)
	}
	for _, pr := range overlapping {
		if pr.r.Lo > cursor {
			startLoad(keys.Range{Lo: cursor, Hi: pr.r.Lo}.Intersect(cr))
		}
		if pr.loading {
			pending++
		} else {
			e.lruTouch2(&pr.lru, pr)
		}
		if keys.HiLess(cursor, pr.r.Hi) {
			cursor = pr.r.Hi
			if cursor == "" {
				break
			}
		}
	}
	if cursor != "" && (cr.Hi == "" || cursor < cr.Hi) {
		startLoad(keys.Range{Lo: cursor, Hi: cr.Hi})
	}
	return pending
}

// LoadComplete delivers the result of a BaseLoader.StartLoad: the fetched
// pairs are installed (running maintenance like any other base write) and
// the range is marked resident. Must be called from the engine's driving
// goroutine. Queries whose restart contexts reference this range succeed
// on their next execution (§3.3: "the restarted query behaves as if
// executed from scratch", and completed parts are simply re-used because
// their join status ranges remained valid).
func (e *Engine) LoadComplete(table string, r keys.Range, kvs []KV) {
	pt := e.presence[table]
	if pt == nil {
		return
	}
	for _, kv := range kvs {
		e.applyValue(kv.Key, store.NewValue(kv.Value), nil)
	}
	if n := pt.ranges.Find(r.Lo); n != nil && n.Val.r == r {
		pr := n.Val
		pr.loading = false
		e.lruTouch2(&pr.lru, pr)
	}
	// Any join status waiting on this load stays invalid; clear its
	// pending counter so the retry recomputes it.
	for _, ij := range e.joins {
		for sn := ij.status.First(); sn != nil; sn = sn.Next() {
			if sn.Val.pendingLoads > 0 {
				sn.Val.pendingLoads = 0
				sn.Val.valid = false
			}
		}
	}
	e.loadGen++
}

// LoadFailed abandons a StartLoad that could not be satisfied (the
// remote owner refused — e.g. the range migrated away mid-fetch — or the
// transport died): the loading record is dropped so nothing is falsely
// marked resident, and the load generation advances so blocked readers
// retry, which restarts the load — by then against a refreshed owner
// map. Must be called from the engine's driving goroutine, like
// LoadComplete.
func (e *Engine) LoadFailed(table string, r keys.Range) {
	pt := e.presence[table]
	if pt == nil {
		return
	}
	if n := pt.ranges.Find(r.Lo); n != nil && n.Val.r == r && n.Val.loading {
		pt.ranges.Delete(n)
		n.Val.node = nil
	}
	e.loadGen++
}

// evictPresence drops a resident base range under memory pressure: its
// keys are removed (with OpEvict, which subscription forwarding ignores)
// and dependent computed ranges are invalidated (§2.5).
func (e *Engine) evictPresence(pr *presRange) {
	pt := e.presence[pr.table]
	if pt == nil || pr.node == nil {
		return
	}
	pt.ranges.Delete(pr.node)
	pr.node = nil
	var doomed []string
	e.s.Scan(pr.r.Lo, pr.r.Hi, func(k string, v *store.Value) bool {
		doomed = append(doomed, k)
		return true
	})
	for _, k := range doomed {
		old, ok := e.s.Remove(k)
		if !ok {
			continue
		}
		e.notify(Change{Op: OpEvict, Key: k, Value: old.String()})
		e.invalidateDependents(k)
	}
}
