package core

import (
	"sort"
	"strconv"
	"time"

	"pequod/internal/join"
	"pequod/internal/keys"
	"pequod/internal/pattern"
	"pequod/internal/store"
)

// exec carries the state of one join execution: forward (materializing
// into the store under a join status range) or pull (into an overlay).
type exec struct {
	e    *Engine
	ij   *installedJoin
	st   *JoinStatus // nil for pull executions
	clip keys.Range  // emission clip: st.r, or the requested range for pull

	overlay *[]KV // pull destination

	// aggs accumulates aggregate groups during the run and is flushed at
	// the end; non-aggregate joins leave it nil.
	aggs map[string]*aggState

	installUpd bool // install updaters (push joins only, Fig 5)
	skipIdx    int  // source to skip during log delta application (-1 none)
	missing    int  // count of base-data loads started
}

// aggState folds one output group for count/sum/min/max.
type aggState struct {
	op  join.Op
	n   int64
	set bool
}

func (a *aggState) add(v string) {
	switch a.op {
	case join.Count:
		a.n++
		a.set = true
	case join.Sum:
		a.n += atoi(v)
		a.set = true
	case join.Min:
		x := atoi(v)
		if !a.set || x < a.n {
			a.n = x
		}
		a.set = true
	case join.Max:
		x := atoi(v)
		if !a.set || x > a.n {
			a.n = x
		}
		a.set = true
	}
}

// atoi parses an aggregate operand; unparsable values count as 0, matching
// the store's schema-free tolerance.
func atoi(s string) int64 {
	n, _ := strconv.ParseInt(s, 10, 64)
	return n
}

func itoa(n int64) string { return strconv.FormatInt(n, 10) }

// forwardExec materializes the join over gap, creating a join status
// range, installing updaters as it goes (Fig 5), and emitting outputs
// into the store. Returns the number of async loads started (the gap's
// status stays invalid until they land and a retry recomputes it).
func (e *Engine) forwardExec(ij *installedJoin, gap keys.Range) (pending int) {
	e.stats.JoinExecs++
	b, clip := ij.j.Out.ScanBinding(gap)
	st := &JoinStatus{ij: ij, r: gap, scanB: b}
	n, _ := ij.status.Insert(gap.Lo, st)
	n.Val = st
	st.node = n
	if ij.j.Maint == join.Snapshot {
		st.expires = e.now().Add(ij.j.SnapshotT)
	}

	if clip.Empty() {
		// Nothing in this gap can match the output pattern (e.g. a scan
		// over an interleaving literal the pattern doesn't produce); the
		// range is trivially valid and stays empty.
		st.valid = true
		e.lruTouch(st)
		return 0
	}

	ex := &exec{
		e:          e,
		ij:         ij,
		st:         st,
		clip:       gap,
		installUpd: ij.j.Maint == join.Push,
		skipIdx:    -1,
	}
	if ij.j.IsAggregate() {
		ex.aggs = make(map[string]*aggState)
	}
	ex.run(0, b, nil)
	ex.flushAggs()

	if ex.missing > 0 {
		// Restart context (§3.3): fetches are in flight; the status
		// remains invalid and the caller retries when loads complete.
		st.pendingLoads = ex.missing
		return ex.missing
	}
	st.valid = true
	e.lruTouch(st)
	return 0
}

// execPull computes a pull join over rr into the overlay (§3.4): from
// scratch, no caching, no updaters.
func (e *Engine) execPull(ij *installedJoin, rr keys.Range, overlay *[]KV) (pending int) {
	e.stats.PullExecs++
	b, clip := ij.j.Out.ScanBinding(rr)
	if clip.Empty() {
		return 0
	}
	ex := &exec{e: e, ij: ij, clip: rr, overlay: overlay, skipIdx: -1}
	if ij.j.IsAggregate() {
		ex.aggs = make(map[string]*aggState)
	}
	start := len(*overlay)
	ex.run(0, b, nil)
	ex.flushAggs()
	// Keep the overlay sorted: each pull execution emits in source order,
	// which for a single value source follows output order per binding
	// group but not across groups; sort the fresh segment.
	seg := (*overlay)[start:]
	sort.Slice(seg, func(i, k int) bool { return seg[i].Key < seg[k].Key })
	return ex.missing
}

// run is the nested-loop join (Fig 3): enumerate sources in user order,
// clipping each to its containing range, and emit when every source has
// contributed a consistent key.
func (ex *exec) run(idx int, b pattern.Binding, val *store.Value) {
	j := ex.ij.j
	if idx == len(j.Sources) {
		ex.emit(b, val)
		return
	}
	if idx == ex.skipIdx {
		// Delta application: this source is pinned to the logged key,
		// already folded into b.
		ex.run(idx+1, b, val)
		return
	}
	src := j.Sources[idx]
	cr := pattern.ContainingRange(src.Pat, j.Out, b, ex.clip)
	if cr.Empty() {
		return
	}

	// Resolve missing data before scanning (§3.3): the source range may
	// be another join's output (recursive execution) or uncached base
	// data (async fetch + restart context).
	ex.missing += ex.e.ensureSource(src.Pat.Table(), cr)

	// Fig 5: add updater from the containing range to the join status,
	// before enumerating.
	if ex.installUpd {
		ex.e.installUpdater(ex.st, idx, b, cr)
	}

	isValue := idx == j.ValueSource
	visit := func(k string, v *store.Value) {
		b2, ok := src.Pat.Match(k, b)
		if !ok {
			return // schema-free store: foreign keys in range
		}
		if isValue {
			ex.run(idx+1, b2, v)
		} else {
			ex.run(idx+1, b2, val)
		}
	}
	if len(ex.e.outJoins[src.Pat.Table()]) > 0 {
		// The scanned table is itself some join's output: cascaded eager
		// maintenance triggered by our emissions could mutate it while we
		// iterate. Snapshot the (small, usually point-sized) range first.
		var snap []KV
		ex.e.s.Scan(cr.Lo, cr.Hi, func(k string, v *store.Value) bool {
			snap = append(snap, KV{k, v.String()})
			return true
		})
		for _, kv := range snap {
			visit(kv.Key, store.NewValue(kv.Value))
		}
		return
	}
	ex.e.s.Scan(cr.Lo, cr.Hi, func(k string, v *store.Value) bool {
		visit(k, v)
		return true
	})
}

// emit produces one output for the tuple bound by b. Aggregates fold into
// groups; copies install (or overlay) the value.
func (ex *exec) emit(b pattern.Binding, val *store.Value) {
	j := ex.ij.j
	outKey, ok := j.Out.BuildKey(b)
	if !ok || !ex.clip.Contains(outKey) {
		return
	}
	if ex.aggs != nil {
		a := ex.aggs[outKey]
		if a == nil {
			a = &aggState{op: j.ValueOp()}
			ex.aggs[outKey] = a
		}
		a.add(val.String())
		return
	}
	ex.install(outKey, val)
}

// install writes one output pair to the store (forward) or overlay (pull),
// honoring value sharing (§4.3) and output hints (§4.2).
func (ex *exec) install(outKey string, val *store.Value) {
	if ex.overlay != nil {
		*ex.overlay = append(*ex.overlay, KV{outKey, val.String()})
		return
	}
	v := val
	if ex.e.opts.DisableValueSharing {
		v = store.NewValue(val.String())
	}
	ex.e.applyValue(outKey, v, &ex.st.hint)
}

// flushAggs installs accumulated aggregate groups.
func (ex *exec) flushAggs() {
	if ex.aggs == nil {
		return
	}
	// Deterministic order aids tests and keeps hint locality.
	ks := make([]string, 0, len(ex.aggs))
	for k := range ex.aggs {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		a := ex.aggs[k]
		if !a.set {
			continue
		}
		if ex.overlay != nil {
			*ex.overlay = append(*ex.overlay, KV{k, itoa(a.n)})
		} else {
			ex.e.applyValue(k, store.NewValue(itoa(a.n)), &ex.st.hint)
		}
	}
}

// ensureSource makes a source range readable: recursively computing any
// joins that output into it, and starting async loads for loader-backed
// base tables. Returns the number of loads started. Always fresh (zero
// budget): it feeds forward executions and dirty recomputes, and newly
// derived coverage is computed from current sources even on a bounded
// read — the bounded win applies to already-materialized coverage.
func (e *Engine) ensureSource(table string, cr keys.Range) (missing int) {
	missing = e.ensureSourceJoins(table, cr, 0)
	if pt := e.presence[table]; pt != nil {
		missing += e.ensurePresent(table, pt, cr)
	}
	return missing
}

// ensureSourceJoins recursively freshens the joins that output into a
// source table over cr — shared by ensureSource and ensure's Pass 0,
// which deliberately skips the presence/loader half. maxStale cascades
// a bounded read's budget: a source join's within-budget staleness may
// be served, keeping the dependent's result stale by the same bound.
func (e *Engine) ensureSourceJoins(table string, cr keys.Range, maxStale time.Duration) (missing int) {
	for _, sub := range e.outJoins[table] {
		if sub.j.Maint == join.Pull {
			// Pull joins never materialize, so they cannot feed other
			// joins; feeders (like the celebrity ct| helper range) are
			// push or snapshot joins. Documented limitation.
			continue
		}
		missing += e.ensure(sub, cr, maxStale)
	}
	return missing
}

// applyLogs applies pending partial-invalidation entries to a valid
// status (§3.2): each logged check-source modification is turned into
// the minimal delta join. Entries whose shape the delta join cannot
// handle (aggregates through check changes) fall back range-granularly:
// only the output sub-interval the logged key can affect is marked
// dirty — stamped at the write's landing time, so bounded reads age it
// honestly — and the caller's dirty recompute re-derives it, leaving
// the rest of the status's coverage warm.
func (e *Engine) applyLogs(st *JoinStatus) {
	logs := st.logs
	st.logs = nil
	for _, le := range logs {
		e.stats.LogsApplied++
		if e.applyCheckDelta(st, le.srcIdx, le.key, le.op, le.had) {
			continue
		}
		src := st.ij.j.Sources[le.srcIdx]
		if b2, ok := src.Pat.Match(le.key, st.scanB); ok {
			e.markDirty(st, outAffectedRange(st.ij.j, b2, st.r), le.at)
		}
	}
}

// applyCheckDelta applies one check-source modification to a status:
// the delta-join core shared by lazy log application and eager check
// maintenance (§3.2 and the "more control over maintenance type" the
// paper asks for). Returns false when the shape is unsupported (aggregate
// joins through check changes) and the status must fully recompute.
func (e *Engine) applyCheckDelta(st *JoinStatus, srcIdx int, key string, op ChangeOp, had bool) bool {
	j := st.ij.j
	src := j.Sources[srcIdx]
	bk, ok := src.Pat.Match(key, st.scanB)
	if !ok {
		return true // outside this status's slot context
	}
	switch op {
	case OpPut:
		if had {
			// Value update on a check source: key set unchanged, and
			// check values are uninteresting — nothing to do.
			return true
		}
		if j.IsAggregate() {
			// Aggregate deltas through check-source changes need the
			// group recomputed; fall back.
			return false
		}
		ex := &exec{
			e:          e,
			ij:         st.ij,
			st:         st,
			clip:       st.r,
			installUpd: true,
			skipIdx:    srcIdx,
		}
		ex.run(0, bk, nil)
		if ex.missing > 0 {
			st.pendingLoads += ex.missing
			st.valid = false
		}
	case OpRemove, OpEvict:
		if j.IsAggregate() {
			return false
		}
		// Remove outputs derived from this check key: output keys
		// matching the pattern under bk inside the status range.
		var doomed []string
		e.s.Scan(st.r.Lo, st.r.Hi, func(k string, v *store.Value) bool {
			if _, ok := j.Out.Match(k, bk); ok {
				doomed = append(doomed, k)
			}
			return true
		})
		for _, k := range doomed {
			e.removeInternal(k)
		}
		// Uninstall value-source updater contexts so future source
		// writes don't resurrect the outputs. Contexts are stored
		// compressed, so identify them by their updater's source
		// range: it must lie within the containing range the removed
		// check key implies — the same formula installation used.
		vs := j.Sources[j.ValueSource]
		rmRange := pattern.ContainingRange(vs.Pat, j.Out, bk, st.r)
		for _, u := range st.updaters {
			if u.table != vs.Pat.Table() || u.entry == nil || !rmRange.ContainsRange(u.entry.Range()) {
				continue
			}
			u.removeContextsMatching(st, func(c *updCtx) bool {
				if c.srcIdx != j.ValueSource {
					return false
				}
				// Merged updaters carry contexts for other tuples
				// (e.g. other users following the same poster); only
				// drop contexts consistent with the removed check key.
				return bindingConsistent(mergeBinding(st.scanB, c.extra), bk)
			})
			if len(u.contexts) == 0 {
				e.dropUpdater(u)
			}
		}
	}
	return true
}

// mergeBinding overlays extra onto base (extra wins on conflicts; none
// occur in practice since compression removes overlap).
func mergeBinding(base, extra pattern.Binding) pattern.Binding {
	out := base
	for i := 0; i < pattern.MaxSlots; i++ {
		if v, ok := extra.Get(i); ok {
			out = out.With(i, v)
		}
	}
	return out
}

// bindingConsistent reports whether a and b agree on every slot bound in
// both.
func bindingConsistent(a, b pattern.Binding) bool {
	for i := 0; i < pattern.MaxSlots; i++ {
		if bv, ok := b.Get(i); ok {
			if av, ok2 := a.Get(i); ok2 && av != bv {
				return false
			}
		}
	}
	return true
}
