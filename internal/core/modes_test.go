package core

import (
	"testing"

	"pequod/internal/join"
)

// eagerTimelineJoin forces eager maintenance of the subscription (check)
// source — the per-source control §3.2's discussion asks for.
const eagerTimelineJoin = "t|<user>|<time>|<poster> = eager check s|<user>|<poster> copy p|<poster>|<time>"

func TestEagerCheckMaintenance(t *testing.T) {
	e := New(Options{})
	if err := e.InstallText(eagerTimelineJoin); err != nil {
		t.Fatal(err)
	}
	e.Put("s|ann|bob", "1")
	e.Put("p|bob|100", "from bob")
	e.Put("p|liz|090", "from liz")
	scanKeys(t, e, "t|ann|", "t|ann}")

	// With eager check maintenance, a new subscription materializes
	// immediately — no waiting for the next read.
	e.Put("s|ann|liz", "1")
	if v, ok := e.Store().Get("t|ann|090|liz"); !ok || v.String() != "from liz" {
		t.Fatal("eager check maintenance did not backfill immediately")
	}
	// And removal cleans up immediately too.
	e.Remove("s|ann|liz")
	if _, ok := e.Store().Get("t|ann|090|liz"); ok {
		t.Fatal("eager check removal did not clean up immediately")
	}
	// Future posts by the removed followee stay out.
	e.Put("p|liz|200", "should not appear")
	got := scanKeys(t, e, "t|ann|", "t|ann}")
	wantKeys(t, got, "t|ann|100|bob")
}

func TestLazyModeSpelling(t *testing.T) {
	// Explicit lazy on a check source is the default policy, spelled out.
	j, err := join.Parse("t|<u>|<ts>|<p> = lazy check s|<u>|<p> copy p|<p>|<ts>")
	if err != nil {
		t.Fatal(err)
	}
	if j.Sources[0].Mode != join.ModeLazy {
		t.Fatal("mode not recorded")
	}
	// Lazy value sources are rejected at parse time.
	if _, err := join.Parse("t|<u>|<ts> = lazy copy p|<u>|<ts>"); err == nil {
		t.Fatal("lazy copy accepted")
	}
}

// TestEagerCheckEqualsRecompute runs the randomized soak with the eager
// check policy: maintenance timing must be semantically invisible.
func TestEagerCheckEqualsRecompute(t *testing.T) {
	runTwipSoakJoin(t, 17, Options{}, 3000, eagerTimelineJoin)
}

func TestEagerAggregateCheckInvalidates(t *testing.T) {
	// Aggregate joins with check sources fall back to invalidation when
	// the check set changes, eagerly or lazily; the recompute must
	// produce correct counts.
	e := New(Options{})
	if err := e.InstallText("total|<g> = eager check enable|<g> count item|<g>|<id>"); err != nil {
		t.Fatal(err)
	}
	e.Put("item|g1|a", "1")
	e.Put("item|g1|b", "1")
	if v, ok, _ := e.Get("total|g1"); ok || v != "" {
		t.Fatalf("count without enable tuple = %q, %v", v, ok)
	}
	e.Put("enable|g1", "1")
	if v, _, _ := e.Get("total|g1"); v != "2" {
		t.Fatalf("count after enable = %q", v)
	}
	e.Remove("enable|g1")
	if v, ok, _ := e.Get("total|g1"); ok {
		t.Fatalf("count after disable = %q", v)
	}
}
