package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pequod/internal/keys"
)

// Edge-case coverage beyond the main functional and property tests.

func TestMultiCheckSourceJoin(t *testing.T) {
	// Two check sources: an output exists only when both tuples do.
	e := New(Options{})
	spec := "out|<a>|<b> = check x|<a> check y|<b> copy v|<a>|<b>"
	if err := e.InstallText(spec); err != nil {
		t.Fatal(err)
	}
	e.Put("v|1|2", "payload")
	got := scanKeys(t, e, "out|", "out}")
	wantKeys(t, got) // no checks satisfied yet
	e.Put("x|1", "")
	got = scanKeys(t, e, "out|", "out}")
	wantKeys(t, got) // y missing
	e.Put("y|2", "")
	got = scanKeys(t, e, "out|", "out}")
	wantKeys(t, got, "out|1|2")
	// Removing either check removes the output on the next read.
	e.Remove("x|1")
	got = scanKeys(t, e, "out|", "out}")
	wantKeys(t, got)
	// Restoring brings it back.
	e.Put("x|1", "")
	got = scanKeys(t, e, "out|", "out}")
	wantKeys(t, got, "out|1|2")
}

func TestSnapshotJoinUnderEviction(t *testing.T) {
	now := time.Unix(5000, 0)
	e := New(Options{
		Clock:    func() time.Time { return now },
		MemLimit: 24 * 1024,
	})
	if err := e.InstallText("snap|<u>|<i> = snapshot 60 copy src|<u>|<i>"); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		for i := 0; i < 20; i++ {
			e.Put(fmt.Sprintf("src|u%02d|%03d", u, i), strings.Repeat("x", 64))
		}
	}
	for u := 0; u < 10; u++ {
		pfx := fmt.Sprintf("snap|u%02d|", u)
		kvs, _ := e.Scan(pfx, keys.PrefixEnd(pfx), 0)
		if len(kvs) != 20 {
			t.Fatalf("snapshot scan u%02d = %d", u, len(kvs))
		}
	}
	// Under pressure some snapshots evicted; re-scan recomputes them.
	if e.Stats().Evictions == 0 {
		t.Fatal("expected evictions")
	}
	kvs, _ := e.Scan("snap|u00|", keys.PrefixEnd("snap|u00|"), 0)
	if len(kvs) != 20 {
		t.Fatalf("recomputed snapshot = %d", len(kvs))
	}
}

func TestGetThroughLoader(t *testing.T) {
	// Point gets on loader-backed base tables trigger fetches too.
	e := New(Options{})
	fl := &fakeLoader{e: e, data: map[string]string{"base|k": "v"}}
	e.SetLoader(fl, "base")
	_, ok, pending := e.Get("base|k")
	if ok || pending == 0 {
		t.Fatalf("first get: ok=%v pending=%d", ok, pending)
	}
	fl.drain()
	v, ok, pending := e.Get("base|k")
	if !ok || v != "v" || pending != 0 {
		t.Fatalf("after load: %q %v %d", v, ok, pending)
	}
}

func TestCountComputesJoins(t *testing.T) {
	e := newTwipEngine(t, Options{})
	e.Put("s|ann|bob", "1")
	for i := 0; i < 7; i++ {
		e.Put(fmt.Sprintf("p|bob|%03d", i), "x")
	}
	n, pending := e.Count("t|ann|", "t|ann}")
	if n != 7 || pending != 0 {
		t.Fatalf("Count = %d, %d", n, pending)
	}
}

func TestInterleavedLiteralGapsStayEmpty(t *testing.T) {
	// Scanning a tag subrange that the join never produces must be cheap
	// and correct (empty), and must not corrupt later full scans.
	e := New(Options{})
	if err := e.InstallText("page|<a>|z|<x> = copy src|<a>|<x>"); err != nil {
		t.Fatal(err)
	}
	e.Put("src|1|only", "v")
	got := scanKeys(t, e, "page|1|a|", "page|1|a}") // tag 'a' never produced
	wantKeys(t, got)
	got = scanKeys(t, e, "page|", "page}")
	wantKeys(t, got, "page|1|z|only")
}

func TestRemoveRangeOfBaseInvalidatesTimeline(t *testing.T) {
	e := newTwipEngine(t, Options{})
	e.Put("s|ann|bob", "1")
	e.Put("p|bob|100", "x")
	e.Put("p|bob|200", "y")
	scanKeys(t, e, "t|ann|", "t|ann}")
	// Remove posts one at a time (range removal at the engine level).
	e.Remove("p|bob|100")
	e.Remove("p|bob|200")
	got := scanKeys(t, e, "t|ann|", "t|ann}")
	wantKeys(t, got)
}

func TestValueSharingRefcountsAcrossTimelines(t *testing.T) {
	e := newTwipEngine(t, Options{})
	for u := 0; u < 5; u++ {
		e.Put(fmt.Sprintf("s|u%d|bob", u), "1")
	}
	e.Put("p|bob|100", "the shared tweet")
	for u := 0; u < 5; u++ {
		scanKeys(t, e, fmt.Sprintf("t|u%d|", u), fmt.Sprintf("t|u%d}", u))
	}
	// One base copy + five timeline copies share one value.
	v, ok := e.Store().Get("p|bob|100")
	if !ok {
		t.Fatal("base post missing")
	}
	if v.Refs() != 6 {
		t.Fatalf("refs = %d, want 6 (1 base + 5 shared timeline entries)", v.Refs())
	}
	// With sharing disabled, each copy is distinct.
	e2 := newTwipEngine(t, Options{DisableValueSharing: true})
	e2.Put("s|u1|bob", "1")
	e2.Put("p|bob|100", "the tweet")
	scanKeys(t, e2, "t|u1|", "t|u1}")
	v2, _ := e2.Store().Get("p|bob|100")
	if v2.Refs() != 1 {
		t.Fatalf("unshared refs = %d", v2.Refs())
	}
}

func TestSubtablesWithJoins(t *testing.T) {
	// Subtable boundaries on the output table must be transparent to
	// join execution and maintenance.
	e := newTwipEngine(t, Options{})
	e.SetSubtableDepth("t", 2)
	for u := 0; u < 4; u++ {
		e.Put(fmt.Sprintf("s|u%d|bob", u), "1")
	}
	for i := 0; i < 10; i++ {
		e.Put(fmt.Sprintf("p|bob|%03d", i), "x")
	}
	// Cross-subtable scan over all users' timelines.
	got := scanKeys(t, e, "t|", "t}")
	if len(got) != 40 {
		t.Fatalf("cross-subtable join scan = %d", len(got))
	}
	// Incremental maintenance still lands in the right subtables.
	e.Put("p|bob|500", "new")
	got = scanKeys(t, e, "t|", "t}")
	if len(got) != 44 {
		t.Fatalf("after post = %d", len(got))
	}
}

func TestStatsProgression(t *testing.T) {
	e := newTwipEngine(t, Options{})
	e.Put("s|ann|bob", "1")
	e.Put("p|bob|100", "x")
	scanKeys(t, e, "t|ann|", "t|ann}")
	st := e.Stats()
	if st.Puts != 2 || st.Scans == 0 || st.JoinExecs == 0 || st.UpdatersInstalled == 0 {
		t.Fatalf("stats: %+v", st)
	}
}
