// Package store implements Pequod's ordered key-value store (§4): a
// layered arrangement of red-black trees visible to clients as a single
// ordered keyspace.
//
// The first layer separates logical tables (the prefix before the first
// '|'), "separating concerns for different ranges" as Fig 6 shows. Tables
// may be subdivided into subtables at developer-marked component
// boundaries; a hash index lets operations that lie entirely within a
// subtable jump to it in O(1) instead of O(log N), while cross-boundary
// scans still execute in full key order (§4.1).
//
// Values are reference-counted (§4.3): the copy operator can install the
// same *Value under many output keys, and the store's memory accounting
// counts each shared payload once. The engine decides whether to share;
// the store only tracks references.
//
// Ordering caveat: the single-ordered-keyspace guarantee assumes table
// names are prefix-free (no table name is a proper prefix of another),
// which every Pequod application in the paper satisfies. Subtable
// boundary prefixes are prefix-free by construction.
package store

import (
	"pequod/internal/keys"
	"pequod/internal/rbtree"
)

// Approximate per-object memory overheads used for accounting, sized to
// the real footprint of the Go structures (tree node + headers). Absolute
// bytes matter less than relative movement for the §4 ablations.
const (
	nodeOverhead     = 96  // tree node, pointers, color, key header
	valueOverhead    = 24  // Value struct + string header
	subtableOverhead = 512 // subtable tree + hash index slot + prefix copy
)

// Value is a reference-counted string value (§4.3). A Value may be
// installed under many keys; the store counts its payload bytes once.
// Values are not safe for concurrent mutation — Pequod engines are
// single-writer, as in the paper.
type Value struct {
	s    string
	refs int32
}

// NewValue returns a fresh, unshared value.
func NewValue(s string) *Value { return &Value{s: s} }

// String returns the value's contents.
func (v *Value) String() string { return v.s }

// Len returns the payload length in bytes.
func (v *Value) Len() int { return len(v.s) }

// Refs returns the current reference count (for tests and stats).
func (v *Value) Refs() int { return int(v.refs) }

// node is the concrete tree node type.
type node = rbtree.Node[*Value]

// Hint is an output hint (§4.2): a pointer to the last key a join status
// range updated, enabling O(1) amortized inserts of the common
// "immediately after the previous update" case. Hints stay usable across
// deletions because the underlying tree never relocates payloads; a dead
// node simply downgrades the hinted insert to a normal one.
type Hint struct {
	node *node
	tree *rbtree.Tree[*Value]
}

// Valid reports whether the hint still points at a live node.
func (h *Hint) Valid() bool { return h != nil && h.node != nil && !h.node.Dead() }

// subtable is one hash-indexed shard of a table.
type subtable struct {
	prefix string
	tree   rbtree.Tree[*Value]
}

// Table is one logical table: a named subtree of the store.
type Table struct {
	name  string
	depth int // subtable boundary depth in components; 0 = no subtables

	tree     rbtree.Tree[*Value]  // used when depth == 0
	subs     map[string]*subtable // hash index over subtables (§4.1)
	subOrder rbtree.Tree[*subtable]
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Len returns the number of keys in the table.
func (t *Table) Len() int {
	if t.depth == 0 {
		return t.tree.Len()
	}
	n := 0
	t.subOrder.Ascend("", "", func(sn *rbtree.Node[*subtable]) bool {
		n += sn.Val.tree.Len()
		return true
	})
	return n
}

// treeFor returns the tree holding key, creating the subtable if asked.
func (t *Table) treeFor(key string, create bool) *rbtree.Tree[*Value] {
	if t.depth == 0 {
		return &t.tree
	}
	pfx := keys.Prefix(key, t.depth)
	sub := t.subs[pfx]
	if sub == nil {
		if !create {
			return nil
		}
		sub = &subtable{prefix: pfx}
		t.subs[pfx] = sub
		t.subOrder.Insert(pfx, sub)
	}
	return &sub.tree
}

// Store is the full layered store. It is not safe for concurrent use; the
// engine (like the paper's single-threaded server) serializes access.
type Store struct {
	tables map[string]*Table
	order  rbtree.Tree[*Table]

	bytes   int64
	entries int

	// SubtableDepths configures tables to be created with subtable
	// boundaries; see SetSubtableDepth.
	depths map[string]int
}

// New returns an empty store.
func New() *Store {
	return &Store{
		tables: make(map[string]*Table),
		depths: make(map[string]int),
	}
}

// SetSubtableDepth marks a natural key boundary for a table (§4.1): keys
// are sharded into hash-indexed subtables on their first depth
// components. Existing table contents are re-sharded, so the call is
// valid at any time, though it is cheapest before data arrives.
func (s *Store) SetSubtableDepth(table string, depth int) {
	if depth < 0 {
		depth = 0
	}
	s.depths[table] = depth
	t := s.tables[table]
	if t == nil || t.depth == depth {
		return
	}
	// Re-shard: collect and reinsert. Memory accounting for entries is
	// unchanged (same keys and values); subtable overhead adjusts.
	type kv struct {
		k string
		v *Value
	}
	var all []kv
	s.scanTable(t, "", "", func(k string, v *Value) bool {
		all = append(all, kv{k, v})
		return true
	})
	s.bytes -= int64(len(t.subs)) * subtableOverhead
	t.depth = depth
	t.tree = rbtree.Tree[*Value]{}
	t.subs = nil
	t.subOrder = rbtree.Tree[*subtable]{}
	if depth > 0 {
		t.subs = make(map[string]*subtable)
	}
	before := len(t.subs)
	for _, e := range all {
		t.treeFor(e.k, true).Insert(e.k, e.v)
	}
	s.bytes += int64(len(t.subs)-before) * subtableOverhead
}

// table returns the Table for key, creating it if asked.
func (s *Store) table(key string, create bool) *Table {
	name := keys.Table(key)
	t := s.tables[name]
	if t == nil && create {
		t = &Table{name: name, depth: s.depths[name]}
		if t.depth > 0 {
			t.subs = make(map[string]*subtable)
		}
		s.tables[name] = t
		s.order.Insert(name, t)
	}
	return t
}

// Table returns the named table, or nil.
func (s *Store) Table(name string) *Table { return s.tables[name] }

// Tables calls fn for each table in name order.
func (s *Store) Tables(fn func(t *Table) bool) {
	s.order.Ascend("", "", func(n *rbtree.Node[*Table]) bool { return fn(n.Val) })
}

// retain/release maintain shared-value accounting (§4.3).
func (s *Store) retain(v *Value) {
	if v.refs == 0 {
		s.bytes += int64(v.Len()) + valueOverhead
	}
	v.refs++
}

func (s *Store) release(v *Value) {
	v.refs--
	if v.refs == 0 {
		s.bytes -= int64(v.Len()) + valueOverhead
	}
}

// Get returns the value stored under key.
func (s *Store) Get(key string) (*Value, bool) {
	t := s.table(key, false)
	if t == nil {
		return nil, false
	}
	tr := t.treeFor(key, false)
	if tr == nil {
		return nil, false
	}
	n := tr.Find(key)
	if n == nil {
		return nil, false
	}
	return n.Val, true
}

// Put installs v under key, replacing and returning any previous value.
// The store takes a reference on v and drops one on the replaced value.
func (s *Store) Put(key string, v *Value) (old *Value) {
	old, _ = s.putIn(key, v, nil)
	return old
}

// PutHint is Put through an output hint (§4.2). The hint is updated to
// point at the written node; pass the same Hint on consecutive calls to
// get O(1) amortized appends. A nil hint behaves like Put.
func (s *Store) PutHint(key string, v *Value, h *Hint) (old *Value) {
	old, _ = s.putIn(key, v, h)
	return old
}

func (s *Store) putIn(key string, v *Value, h *Hint) (old *Value, n *node) {
	t := s.table(key, true)
	var subsBefore int
	if t.depth > 0 {
		subsBefore = len(t.subs)
	}
	tr := t.treeFor(key, true)
	if t.depth > 0 && len(t.subs) != subsBefore {
		s.bytes += subtableOverhead
	}
	var existed bool
	if h != nil && h.tree == tr && h.Valid() {
		n, existed = tr.InsertAfterHint(h.node, key, v)
	} else {
		// A hint pointing into a different subtable (or a dead node)
		// cannot be used; the tree insert would corrupt structure.
		n, existed = tr.Insert(key, v)
	}
	if h != nil {
		h.node, h.tree = n, tr
	}
	if existed {
		old = n.Val
		n.Val = v
	} else {
		s.entries++
		s.bytes += int64(len(key)) + nodeOverhead
	}
	// Retain before releasing so re-putting the same Value never drops
	// its refcount to zero transiently.
	s.retain(v)
	if old != nil {
		s.release(old)
	}
	return old, n
}

// Remove deletes key, returning the removed value.
func (s *Store) Remove(key string) (*Value, bool) {
	t := s.table(key, false)
	if t == nil {
		return nil, false
	}
	tr := t.treeFor(key, false)
	if tr == nil {
		return nil, false
	}
	n := tr.Find(key)
	if n == nil {
		return nil, false
	}
	v := n.Val
	tr.Delete(n)
	s.entries--
	s.bytes -= int64(len(key)) + nodeOverhead
	s.release(v)
	return v, true
}

// scanTable iterates one table's keys in [lo, hi).
func (s *Store) scanTable(t *Table, lo, hi string, fn func(k string, v *Value) bool) bool {
	if t.depth == 0 {
		ok := true
		t.tree.Ascend(lo, hi, func(n *node) bool {
			ok = fn(n.Key(), n.Val)
			return ok
		})
		return ok
	}
	start := keys.Prefix(lo, t.depth)
	ok := true
	t.subOrder.Ascend(start, "", func(sn *rbtree.Node[*subtable]) bool {
		sub := sn.Val
		if hi != "" && sub.prefix >= hi {
			return false
		}
		sub.tree.Ascend(lo, hi, func(n *node) bool {
			ok = fn(n.Key(), n.Val)
			return ok
		})
		return ok
	})
	return ok
}

// Scan calls fn for every key in [lo, hi) in ascending order (hi == ""
// means unbounded), stopping early if fn returns false.
func (s *Store) Scan(lo, hi string, fn func(k string, v *Value) bool) {
	startTable := keys.Table(lo)
	s.order.Ascend(startTable, "", func(n *rbtree.Node[*Table]) bool {
		t := n.Val
		if hi != "" && t.name >= hi {
			return false
		}
		return s.scanTable(t, lo, hi, fn)
	})
}

// CountRange returns the number of keys in [lo, hi).
func (s *Store) CountRange(lo, hi string) int {
	c := 0
	s.Scan(lo, hi, func(string, *Value) bool { c++; return true })
	return c
}

// RemoveRange deletes every key in [lo, hi), invoking fn (if non-nil) for
// each removed pair, and returns the number removed. Used by eviction and
// invalidation.
func (s *Store) RemoveRange(lo, hi string, fn func(k string, v *Value)) int {
	type kv struct {
		k string
		v *Value
	}
	var doomed []kv
	s.Scan(lo, hi, func(k string, v *Value) bool {
		doomed = append(doomed, kv{k, v})
		return true
	})
	for _, e := range doomed {
		s.Remove(e.k)
		if fn != nil {
			fn(e.k, e.v)
		}
	}
	return len(doomed)
}

// Len returns the total number of keys.
func (s *Store) Len() int { return s.entries }

// Bytes returns the store's approximate memory footprint, counting shared
// value payloads once (§4.3).
func (s *Store) Bytes() int64 { return s.bytes }

// SubtableCount reports the number of subtables in a table (0 if the
// table has no boundary configured or doesn't exist); used by the §4.1
// ablation to report bookkeeping overhead.
func (s *Store) SubtableCount(table string) int {
	t := s.tables[table]
	if t == nil {
		return 0
	}
	return len(t.subs)
}
