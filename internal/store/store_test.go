package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestPutGetRemove(t *testing.T) {
	s := New()
	if _, ok := s.Get("p|bob|100"); ok {
		t.Fatal("get on empty store")
	}
	s.Put("p|bob|100", NewValue("Hi"))
	v, ok := s.Get("p|bob|100")
	if !ok || v.String() != "Hi" {
		t.Fatal("get after put")
	}
	old := s.Put("p|bob|100", NewValue("Hello"))
	if old == nil || old.String() != "Hi" {
		t.Fatal("replace should return old value")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	rv, ok := s.Remove("p|bob|100")
	if !ok || rv.String() != "Hello" {
		t.Fatal("remove")
	}
	if _, ok := s.Get("p|bob|100"); ok || s.Len() != 0 {
		t.Fatal("get after remove")
	}
	if _, ok := s.Remove("p|bob|100"); ok {
		t.Fatal("double remove")
	}
	if _, ok := s.Remove("zz|nothere"); ok {
		t.Fatal("remove from absent table")
	}
}

func TestScanOrderAcrossTables(t *testing.T) {
	s := New()
	in := []string{"s|ann|bob", "p|bob|100", "t|ann|100|bob", "p|ann|050", "s|ann|liz"}
	for _, k := range in {
		s.Put(k, NewValue(""))
	}
	var got []string
	s.Scan("", "", func(k string, v *Value) bool {
		got = append(got, k)
		return true
	})
	want := append([]string(nil), in...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %d keys", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
}

func TestScanBounds(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("t|ann|%03d", i), NewValue(""))
		s.Put(fmt.Sprintf("t|bob|%03d", i), NewValue(""))
	}
	var got []string
	s.Scan("t|ann|003", "t|ann|007", func(k string, v *Value) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 4 || got[0] != "t|ann|003" || got[3] != "t|ann|006" {
		t.Fatalf("bounded scan = %v", got)
	}
	// Cross-boundary scan touches both users.
	if c := s.CountRange("t|ann|008", "t|bob|002"); c != 4 {
		t.Fatalf("cross-user count = %d", c)
	}
	// Early stop.
	calls := 0
	s.Scan("t|", "", func(k string, v *Value) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("early stop: %d", calls)
	}
}

func TestSubtables(t *testing.T) {
	s := New()
	s.SetSubtableDepth("t", 2) // shard timelines per user
	users := []string{"ann", "bob", "liz"}
	for _, u := range users {
		for i := 0; i < 20; i++ {
			s.Put(fmt.Sprintf("t|%s|%03d", u, i), NewValue("x"))
		}
	}
	if got := s.SubtableCount("t"); got != 3 {
		t.Fatalf("SubtableCount = %d", got)
	}
	// Point ops work through the hash index.
	if v, ok := s.Get("t|bob|007"); !ok || v.String() != "x" {
		t.Fatal("get in subtable")
	}
	// In-subtable scan.
	if c := s.CountRange("t|bob|", "t|bob}"); c != 20 {
		t.Fatalf("subtable scan count = %d", c)
	}
	// Cross-subtable scan preserves global order.
	var got []string
	s.Scan("t|ann|018", "t|liz|002", func(k string, v *Value) bool {
		got = append(got, k)
		return true
	})
	want := []string{"t|ann|018", "t|ann|019"}
	for i := 0; i < 20; i++ {
		want = append(want, fmt.Sprintf("t|bob|%03d", i))
	}
	want = append(want, "t|liz|000", "t|liz|001")
	if len(got) != len(want) {
		t.Fatalf("cross-subtable scan: %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cross-subtable order at %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestSubtableResharding(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("t|u%02d|%03d", i%5, i), NewValue("v"))
	}
	before := s.Len()
	s.SetSubtableDepth("t", 2)
	if s.Len() != before {
		t.Fatal("reshard changed length")
	}
	if s.SubtableCount("t") != 5 {
		t.Fatalf("SubtableCount = %d", s.SubtableCount("t"))
	}
	if c := s.CountRange("t|", "t}"); c != before {
		t.Fatalf("count after reshard = %d", c)
	}
	// Reshard back to flat.
	s.SetSubtableDepth("t", 0)
	if c := s.CountRange("t|", "t}"); c != before {
		t.Fatalf("count after unshard = %d", c)
	}
	// Setting the same depth is a no-op.
	s.SetSubtableDepth("t", 0)
}

func TestValueSharingAccounting(t *testing.T) {
	s := New()
	v := NewValue("a-tweet-of-some-length")
	base := s.Bytes()
	s.Put("t|ann|100|bob", v)
	afterOne := s.Bytes() - base
	s.Put("t|liz|100|bob", v)
	s.Put("t|pat|100|bob", v)
	afterThree := s.Bytes() - base
	if v.Refs() != 3 {
		t.Fatalf("refs = %d", v.Refs())
	}
	// Sharing: the payload is counted once; the growth from one to three
	// entries must be less than 3x the single-entry cost.
	perEntryShared := (afterThree - afterOne) / 2
	if perEntryShared >= afterOne {
		t.Fatalf("sharing saved nothing: first=%d, later=%d", afterOne, perEntryShared)
	}
	// Removing two keys keeps the payload accounted (one ref left).
	s.Remove("t|ann|100|bob")
	s.Remove("t|liz|100|bob")
	if v.Refs() != 1 {
		t.Fatalf("refs after removes = %d", v.Refs())
	}
	s.Remove("t|pat|100|bob")
	if v.Refs() != 0 {
		t.Fatalf("refs after all removes = %d", v.Refs())
	}
	if s.Bytes() != base {
		t.Fatalf("bytes leaked: %d != %d", s.Bytes(), base)
	}
}

func TestReplaceSameValueKeepsRefs(t *testing.T) {
	s := New()
	v := NewValue("x")
	s.Put("k|1", v)
	old := s.Put("k|1", v) // re-put same value object
	if old != v || v.Refs() != 1 {
		t.Fatalf("re-put: old=%v refs=%d", old, v.Refs())
	}
}

func TestPutHint(t *testing.T) {
	s := New()
	h := &Hint{}
	// Monotone inserts through a hint (the timeline-append pattern).
	for i := 0; i < 1000; i++ {
		s.PutHint(fmt.Sprintf("t|ann|%04d", i), NewValue("v"), h)
	}
	if !h.Valid() {
		t.Fatal("hint should be valid")
	}
	if c := s.CountRange("t|ann|", "t|ann}"); c != 1000 {
		t.Fatalf("count = %d", c)
	}
	// Hint survives interleaved unrelated writes.
	s.Put("zz|other", NewValue(""))
	s.PutHint("t|ann|9999", NewValue("v"), h)
	if _, ok := s.Get("t|ann|9999"); !ok {
		t.Fatal("hinted put after unrelated write")
	}
	// Hint crossing subtables must not corrupt the trees.
	s2 := New()
	s2.SetSubtableDepth("t", 2)
	h2 := &Hint{}
	for _, u := range []string{"ann", "bob", "cat"} {
		for i := 0; i < 100; i++ {
			s2.PutHint(fmt.Sprintf("t|%s|%03d", u, i), NewValue("v"), h2)
		}
	}
	if c := s2.CountRange("t|", "t}"); c != 300 {
		t.Fatalf("subtable hinted count = %d", c)
	}
	// Removal kills the hint; next hinted put falls back cleanly.
	s2.RemoveRange("t|cat|", "t|cat}", nil)
	s2.PutHint("t|cat|500", NewValue("v"), h2)
	if _, ok := s2.Get("t|cat|500"); !ok {
		t.Fatal("hinted put after range removal")
	}
}

func TestRemoveRange(t *testing.T) {
	s := New()
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("a|%02d", i), NewValue("v"))
	}
	var removed []string
	n := s.RemoveRange("a|05", "a|15", func(k string, v *Value) {
		removed = append(removed, k)
	})
	if n != 10 || len(removed) != 10 || removed[0] != "a|05" {
		t.Fatalf("RemoveRange = %d, %v", n, removed)
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestTablesIteration(t *testing.T) {
	s := New()
	s.Put("b|1", NewValue(""))
	s.Put("a|1", NewValue(""))
	s.Put("c|1", NewValue(""))
	var names []string
	s.Tables(func(tb *Table) bool {
		names = append(names, tb.Name())
		return true
	})
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("Tables = %v", names)
	}
	if tb := s.Table("b"); tb == nil || tb.Len() != 1 {
		t.Fatal("Table lookup")
	}
	if s.Table("zzz") != nil {
		t.Fatal("absent table")
	}
}

// TestRandomizedAgainstModel compares the layered store (with subtables on
// some tables) against a flat map reference model.
func TestRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New()
	s.SetSubtableDepth("t", 2)
	model := map[string]string{}
	tables := []string{"t", "p", "s"}
	keyOf := func() string {
		tb := tables[rng.Intn(len(tables))]
		return fmt.Sprintf("%s|u%02d|%03d", tb, rng.Intn(20), rng.Intn(50))
	}
	for step := 0; step < 20000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			k := keyOf()
			v := fmt.Sprintf("v%d", step)
			s.Put(k, NewValue(v))
			model[k] = v
		case 5, 6:
			k := keyOf()
			_, ok := s.Remove(k)
			if _, mok := model[k]; mok != ok {
				t.Fatalf("remove mismatch at %d", step)
			}
			delete(model, k)
		case 7:
			k := keyOf()
			v, ok := s.Get(k)
			mv, mok := model[k]
			if ok != mok || (ok && v.String() != mv) {
				t.Fatalf("get mismatch at %d", step)
			}
		default:
			lo, hi := keyOf(), keyOf()
			if hi < lo {
				lo, hi = hi, lo
			}
			var got []string
			s.Scan(lo, hi, func(k string, v *Value) bool {
				got = append(got, k)
				return true
			})
			var want []string
			for k := range model {
				if k >= lo && k < hi {
					want = append(want, k)
				}
			}
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("scan size mismatch at %d: got %d want %d", step, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("scan order mismatch at step %d index %d", step, i)
				}
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("final length: %d vs %d", s.Len(), len(model))
	}
	if len(model) > 0 && s.Bytes() <= 0 {
		t.Fatal("bytes accounting broken")
	}
}

func BenchmarkPutFlat(b *testing.B) {
	s := New()
	ks := make([]string, b.N)
	for i := range ks {
		ks[i] = fmt.Sprintf("t|u%05d|%09d", i%1000, i)
	}
	v := NewValue("value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(ks[i], v)
	}
}

func BenchmarkPutSubtables(b *testing.B) {
	s := New()
	s.SetSubtableDepth("t", 2)
	ks := make([]string, b.N)
	for i := range ks {
		ks[i] = fmt.Sprintf("t|u%05d|%09d", i%1000, i)
	}
	v := NewValue("value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(ks[i], v)
	}
}

func BenchmarkGetSubtables(b *testing.B) {
	s := New()
	s.SetSubtableDepth("t", 2)
	const n = 1 << 16
	ks := make([]string, n)
	for i := 0; i < n; i++ {
		ks[i] = fmt.Sprintf("t|u%05d|%09d", i%1000, i)
		s.Put(ks[i], NewValue("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(ks[i&(n-1)])
	}
}
