// Package client implements the Pequod client library: a pipelined,
// goroutine-safe connection that keeps many RPCs outstanding, exactly as
// the paper's event-driven clients do (§5.1: "Clients are event-driven
// processes that keep many RPCs outstanding").
//
// Every operation has an async form returning a *Future and a sync
// wrapper. Unsolicited Notify frames (cross-server subscription pushes,
// §2.4) are delivered to the OnNotify callback.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pequod/internal/core"
	"pequod/internal/freshness"
	"pequod/internal/rpc"
)

// ErrClosed is returned for operations on a closed client.
var ErrClosed = errors.New("pequod client: connection closed")

// DefaultDialTimeout bounds Dial's connection attempt; before it existed
// a dead address hung for the kernel's default (minutes). DialContext
// callers control their own bound.
const DefaultDialTimeout = 10 * time.Second

// Client is a connection to one Pequod server. Methods are safe for
// concurrent use; requests pipeline on the single connection.
type Client struct {
	conn net.Conn

	mu      sync.Mutex
	bw      *bufio.Writer
	scratch []byte
	seq     uint64
	pending map[uint64]*Future
	dirty   bool
	closed  error

	kick chan struct{} // flush signal; never closed (senders race sends)
	quit chan struct{} // closed once by fail() to stop the flusher
	done chan struct{}

	rpcs atomic.Int64 // requests sent (evaluation metric: RPC counts)

	// OnNotify, if set before any traffic, receives server-push change
	// batches (subscription maintenance). Called from the reader
	// goroutine; implementations must not block on this client's sync
	// calls.
	OnNotify func([]rpc.Change)
}

// Future is a pending reply.
type Future struct {
	c   *Client // nil for futures failed at creation
	seq uint64
	ch  chan struct{}
	m   *rpc.Message
	err error

	// onReply, if set, runs on the reader goroutine when the reply
	// arrives, before the future resolves — in program order with this
	// connection's OnNotify deliveries. Cross-server subscriptions use
	// it to apply a snapshot before any push that followed it on the
	// wire. Like OnNotify, it must not block on this client's sync
	// calls. Not called on transport failure.
	onReply func(*rpc.Message)
}

// Wait blocks until the reply arrives.
func (f *Future) Wait() (*rpc.Message, error) {
	<-f.ch
	return f.m, f.err
}

// WaitCtx blocks until the reply arrives or ctx is done. A canceled wait
// fails the future (a later Wait returns the same error) and abandons
// the in-flight request: its eventual reply is discarded, and the
// connection stays usable for subsequent calls.
func (f *Future) WaitCtx(ctx context.Context) (*rpc.Message, error) {
	if ctx == nil || ctx.Done() == nil {
		return f.Wait()
	}
	select {
	case <-f.ch:
		return f.m, f.err
	case <-ctx.Done():
	}
	if f.c != nil && f.c.abandon(f, ctx.Err()) {
		return nil, f.err
	}
	// The reply (or a connection failure) raced the cancellation;
	// deliver it rather than dropping a completed result.
	<-f.ch
	return f.m, f.err
}

// abandon detaches a still-pending future after cancellation, failing it
// with cause. It reports false when the reply already landed (or the
// connection already failed the future).
func (c *Client) abandon(f *Future, cause error) bool {
	c.mu.Lock()
	if c.pending[f.seq] != f {
		c.mu.Unlock()
		return false
	}
	delete(c.pending, f.seq)
	c.mu.Unlock()
	f.err = cause
	close(f.ch)
	return true
}

// Dial connects to a Pequod server, bounding the attempt by
// DefaultDialTimeout.
func Dial(addr string) (*Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultDialTimeout)
	defer cancel()
	return DialContext(ctx, addr)
}

// DialContext connects to a Pequod server under ctx: cancellation or
// deadline expiry aborts the connection attempt.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: make(map[uint64]*Future),
		kick:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	go c.flushLoop()
	return c
}

// Close shuts the connection down; outstanding futures fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}

// Failed reports whether the connection has permanently failed (Close
// was called or the transport died); every operation on it returns an
// error. Connection caches use it to decide a redial is needed.
func (c *Client) Failed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed != nil
}

// RPCs reports the number of requests sent on this connection; the §5.2
// comparison uses it to show client-managed systems' RPC amplification.
func (c *Client) RPCs() int64 { return c.rpcs.Load() }

// send enqueues a request and returns its future.
func (c *Client) send(m *rpc.Message) *Future { return c.sendCB(m, nil) }

// sendCB is send with an optional reader-goroutine reply callback.
func (c *Client) sendCB(m *rpc.Message, onReply func(*rpc.Message)) *Future {
	c.rpcs.Add(1)
	f := &Future{c: c, ch: make(chan struct{}), onReply: onReply}
	c.mu.Lock()
	if c.closed != nil {
		err := c.closed
		c.mu.Unlock()
		f.err = err
		close(f.ch)
		return f
	}
	c.seq++
	m.Seq = c.seq
	f.seq = m.Seq
	c.pending[m.Seq] = f
	var err error
	c.scratch, err = rpc.WriteMessage(c.bw, m, c.scratch)
	c.dirty = true
	c.mu.Unlock()
	if err != nil {
		c.fail(err)
		return f
	}
	select {
	case c.kick <- struct{}{}:
	default:
	}
	return f
}

// flushLoop flushes buffered writes when the pipeline goes momentarily
// idle, batching frames from concurrent callers into single syscalls.
func (c *Client) flushLoop() {
	for {
		select {
		case <-c.kick:
		case <-c.quit:
			return
		}
		c.mu.Lock()
		if c.dirty {
			c.dirty = false
			if err := c.bw.Flush(); err != nil {
				c.mu.Unlock()
				c.fail(err)
				return
			}
		}
		c.mu.Unlock()
	}
}

func (c *Client) readLoop() {
	defer close(c.done)
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var scratch []byte
	for {
		var m *rpc.Message
		var err error
		m, scratch, err = rpc.ReadMessage(br, scratch)
		if err != nil {
			c.fail(err)
			return
		}
		if m.Type == rpc.MsgNotify {
			if c.OnNotify != nil {
				c.OnNotify(m.Changes)
			}
			continue
		}
		c.mu.Lock()
		f := c.pending[m.Seq]
		delete(c.pending, m.Seq)
		c.mu.Unlock()
		if f != nil {
			f.m = m
			if f.onReply != nil {
				f.onReply(m)
			}
			close(f.ch)
		}
	}
}

// fail poisons the client and wakes all waiters.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed == nil {
		c.closed = err
		close(c.quit) // kick itself is never closed: senders race sends
	}
	pend := c.pending
	c.pending = make(map[uint64]*Future)
	c.mu.Unlock()
	for _, f := range pend {
		f.err = err
		close(f.ch)
	}
	c.conn.Close()
}

// NotOwnerError reports that the server does not (or no longer does)
// own the request's keys in the cluster partition — a live migration or
// membership change moved them. It carries the server's current map —
// total-order position (Epoch, Version), Bounds, and member addresses
// (Peers) — so the caller can adopt it, re-route, and retry, even when
// the member set itself changed.
type NotOwnerError struct {
	Epoch   int64
	Version int64
	Bounds  []string
	Peers   []string
}

func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("pequod: not the owner of the requested range (cluster map e%d v%d)", e.Epoch, e.Version)
}

func replyErr(m *rpc.Message, err error) error {
	if err != nil {
		return err
	}
	if m.Status == rpc.StatusNotOwner {
		return &NotOwnerError{Epoch: m.Epoch, Version: m.MapVersion, Bounds: m.Bounds, Peers: m.Peers}
	}
	if m.Status != rpc.StatusOK {
		return fmt.Errorf("pequod: %s", m.Err)
	}
	return nil
}

// ReplyErr folds a (reply, transport error) pair into one error,
// surfacing server-reported failures — the shared error path for callers
// driving the async API directly.
func ReplyErr(m *rpc.Message, err error) error { return replyErr(m, err) }

// CollectReplies waits out every future under ctx — the second half of
// a pipelined batch (many Sends, then one CollectReplies). All futures
// are waited even after a failure, so sibling requests settle rather
// than being abandoned mid-batch; the first error (transport,
// cancellation, or server-reported) is returned after they do. On
// success the replies align with futs.
func CollectReplies(ctx context.Context, futs []*Future) ([]*rpc.Message, error) {
	out := make([]*rpc.Message, len(futs))
	var first error
	for i, f := range futs {
		m, err := f.WaitCtx(ctx)
		if err := replyErr(m, err); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		out[i] = m
	}
	if first != nil {
		return nil, first
	}
	return out, nil
}

// ReplyWaitCtx waits out one future under ctx and folds the reply
// status into the error — the per-element form of CollectReplies, for
// callers that handle element failures (e.g. NotOwner re-routing)
// individually.
func ReplyWaitCtx(ctx context.Context, f *Future) (*rpc.Message, error) {
	m, err := f.WaitCtx(ctx)
	if err := replyErr(m, err); err != nil {
		return nil, err
	}
	return m, nil
}

// WaitAll is CollectReplies for batches that only need the error.
func WaitAll(ctx context.Context, futs []*Future) error {
	_, err := CollectReplies(ctx, futs)
	return err
}

// Do sends m and waits for its reply under ctx, stamping the remaining
// deadline budget onto the frame so the server can bound blocking work.
// It returns an error for transport failures, cancellation, and
// server-reported errors alike.
func (c *Client) Do(ctx context.Context, m *rpc.Message) (*rpc.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := c.Send(ctx, m).WaitCtx(ctx)
	if err := replyErr(r, err); err != nil {
		return nil, err
	}
	return r, nil
}

// --- Async API ---

// GetAsync fetches a key.
func (c *Client) GetAsync(key string) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgGet, Key: key})
}

// PutAsync stores a value.
func (c *Client) PutAsync(key, value string) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgPut, Key: key, Value: value})
}

// RemoveAsync deletes a key.
func (c *Client) RemoveAsync(key string) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgRemove, Key: key})
}

// ScanAsync reads [lo, hi) up to limit pairs (0 = unlimited). subscribe
// asks the server to install a base-data subscription for the range
// (server-to-server replication, §2.4).
func (c *Client) ScanAsync(lo, hi string, limit int, subscribe bool) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgScan, Lo: lo, Hi: hi, Limit: limit, SubscribeFlag: subscribe})
}

// ScanSubAsync issues a subscribing scan whose onReply callback runs on
// the reader goroutine (see Future.onReply): the snapshot is observed in
// order with the subscription pushes that race it on the wire.
func (c *Client) ScanSubAsync(lo, hi string, onReply func(*rpc.Message)) *Future {
	return c.sendCB(&rpc.Message{Type: rpc.MsgScan, Lo: lo, Hi: hi, SubscribeFlag: true}, onReply)
}

// Send stamps ctx's remaining deadline budget and staleness budget
// (freshness.WithBudget) onto m and enqueues it, returning the future —
// the pipelining-friendly building block batch operations use (many
// Sends, then WaitCtx each). Stamping happens per attempt, so a retry
// through a fresh Send re-derives both budgets from the same ctx.
func (c *Client) Send(ctx context.Context, m *rpc.Message) *Future {
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain > 0 {
			m.TimeoutMS = uint64((remain + time.Millisecond - 1) / time.Millisecond)
		}
	}
	if b := freshness.Budget(ctx); b > 0 {
		m.StaleMS = uint64((b + time.Millisecond - 1) / time.Millisecond)
	}
	return c.send(m)
}

// CountAsync counts keys in [lo, hi).
func (c *Client) CountAsync(lo, hi string) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgCount, Lo: lo, Hi: hi})
}

// AddJoinAsync installs cache joins from their textual form.
func (c *Client) AddJoinAsync(text string) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgAddJoin, Text: text})
}

// NotifyAsync pushes a change batch (used by peers and the write-around
// database feed).
func (c *Client) NotifyAsync(changes []rpc.Change) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgNotify, Changes: changes})
}

// --- Sync API ---

// Get returns the value for key.
func (c *Client) Get(key string) (string, bool, error) {
	m, err := c.GetAsync(key).Wait()
	if err := replyErr(m, err); err != nil {
		return "", false, err
	}
	return m.Value, m.Found, nil
}

// Put stores value under key.
func (c *Client) Put(key, value string) error {
	m, err := c.PutAsync(key, value).Wait()
	return replyErr(m, err)
}

// Remove deletes key, reporting whether it existed.
func (c *Client) Remove(key string) (bool, error) {
	m, err := c.RemoveAsync(key).Wait()
	if err := replyErr(m, err); err != nil {
		return false, err
	}
	return m.Found, nil
}

// Scan returns up to limit pairs from [lo, hi).
func (c *Client) Scan(lo, hi string, limit int) ([]rpc.KV, error) {
	m, err := c.ScanAsync(lo, hi, limit, false).Wait()
	if err := replyErr(m, err); err != nil {
		return nil, err
	}
	return m.KVs, nil
}

// Count returns the number of keys in [lo, hi).
func (c *Client) Count(lo, hi string) (int64, error) {
	m, err := c.CountAsync(lo, hi).Wait()
	if err := replyErr(m, err); err != nil {
		return 0, err
	}
	return m.Count, nil
}

// AddJoin installs cache joins ("add-join" RPC, §3).
func (c *Client) AddJoin(text string) error {
	m, err := c.AddJoinAsync(text).Wait()
	return replyErr(m, err)
}

// Stat returns the server's JSON statistics snapshot.
func (c *Client) Stat() (string, error) {
	m, err := c.send(&rpc.Message{Type: rpc.MsgStat}).Wait()
	if err := replyErr(m, err); err != nil {
		return "", err
	}
	return m.Value, nil
}

// Stats fetches and decodes the server's engine counters (summed across
// its shards).
func (c *Client) Stats(ctx context.Context) (core.Stats, error) {
	m, err := c.Do(ctx, &rpc.Message{Type: rpc.MsgStat})
	if err != nil {
		return core.Stats{}, err
	}
	var snap struct {
		Stats core.Stats `json:"stats"`
	}
	if err := json.Unmarshal([]byte(m.Value), &snap); err != nil {
		return core.Stats{}, fmt.Errorf("pequod client: bad stat reply: %w", err)
	}
	return snap.Stats, nil
}

// StatSnapshot is the decoded form of the server's stat JSON: identity,
// footprint, engine counters, the load block a cluster rebalancer
// polls, and (on cluster members) the published cluster map.
type StatSnapshot struct {
	Name    string     `json:"name"`
	ID      string     `json:"id"`
	Shards  int        `json:"shards"`
	Entries int        `json:"entries"`
	Bytes   int64      `json:"bytes"`
	Stats   core.Stats `json:"stats"`
	Load    struct {
		Units   int64    `json:"units"`
		Samples []string `json:"samples"`
	} `json:"load"`
	Joins string `json:"joins"`
	// Staleness is the member's deferred-maintenance debt: the
	// forwarded-write queue lag, the deferred spans bounded reads trade
	// against their budgets, and the bounded-read activity counters.
	Staleness struct {
		LagUS      int64 `json:"lag_us"`
		DebtSpans  int   `json:"debt_spans"`
		DebtOldUS  int64 `json:"debt_old_us"`
		BoundedSrv int64 `json:"bounded_srv"`
		PartialInv int64 `json:"partial_inv"`
		DirtyRecmp int64 `json:"dirty_recmp"`
	} `json:"staleness"`
	Durable *struct {
		Dir           string `json:"dir"`
		LagBytes      int64  `json:"lag_bytes"`
		Segment       int64  `json:"segment"`
		SegmentBytes  int64  `json:"segment_bytes"`
		Snapshot      int64  `json:"snapshot"`
		SnapshotAgeMS int64  `json:"snapshot_age_ms"`
		Dropped       int64  `json:"dropped_records,omitempty"`
		Err           string `json:"error,omitempty"`

		// Failure and damage surfaces: records held for flush retry,
		// segments rotated away after failed writes, and the lineage
		// damage set maintained by recovery replay and the background
		// scrub (corrupt entries mean fsynced data was lost mid-lineage
		// — unlike a torn recovery tail, which is the expected crash
		// window).
		PendingRecords   int64   `json:"pending_records,omitempty"`
		FailedRotations  int64   `json:"failed_rotations,omitempty"`
		ScrubRuns        int64   `json:"scrub_runs,omitempty"`
		CorruptSegments  []int64 `json:"corrupt_segments,omitempty"`
		CorruptSnapshots []int64 `json:"corrupt_snapshots,omitempty"`
		Compactions      int64   `json:"compactions,omitempty"`
		ReclaimedBytes   int64   `json:"reclaimed_bytes,omitempty"`

		Recovery *struct {
			SnapshotRows     int     `json:"snapshot_rows"`
			LogSegments      int     `json:"log_segments"`
			LogRecords       int     `json:"log_records"`
			RestoredRows     int     `json:"restored_rows"`
			RestoredWarm     int     `json:"restored_warm"`
			Torn             bool    `json:"torn,omitempty"`
			CorruptSegments  []int64 `json:"corrupt_segments,omitempty"`
			CorruptSnapshots []int64 `json:"corrupt_snapshots,omitempty"`
		} `json:"recovery,omitempty"`
	} `json:"durable,omitempty"`
	Cluster *struct {
		Epoch    int64    `json:"epoch"`
		Version  int64    `json:"version"`
		Bounds   []string `json:"bounds"`
		Peers    []string `json:"peers"`
		Self     []int    `json:"self"`
		Retained int      `json:"retained"`
		Replicas int      `json:"replicas"`
	} `json:"cluster"`
}

// StatSnapshot fetches and decodes the server's statistics snapshot.
func (c *Client) StatSnapshot(ctx context.Context) (*StatSnapshot, error) {
	m, err := c.Do(ctx, &rpc.Message{Type: rpc.MsgStat})
	if err != nil {
		return nil, err
	}
	var s StatSnapshot
	if err := json.Unmarshal([]byte(m.Value), &s); err != nil {
		return nil, fmt.Errorf("pequod client: bad stat reply: %w", err)
	}
	return &s, nil
}

// Flush clears the server's store (benchmark support).
func (c *Client) Flush() error {
	m, err := c.send(&rpc.Message{Type: rpc.MsgFlush}).Wait()
	return replyErr(m, err)
}

// SetSubtableDepth configures a table's subtable boundary (§4.1).
func (c *Client) SetSubtableDepth(table string, depth int) error {
	m, err := c.send(&rpc.Message{Type: rpc.MsgSetSubtable, Table: table, Depth: depth}).Wait()
	return replyErr(m, err)
}

// Quiesce blocks until replication visible to the server has settled:
// its in-process shard forwarding, its outbound subscription pushes, and
// — by pinging each of its upstream peers — the subscription pushes in
// flight toward it. After it returns, reads at this server see every
// write acknowledged before the call.
func (c *Client) Quiesce(ctx context.Context) error {
	_, err := c.Do(ctx, &rpc.Message{Type: rpc.MsgQuiesce})
	return err
}

// Ping round-trips the connection. The server drains this connection's
// pending subscription pushes before replying, so a ping doubles as a
// delivery fence: every push enqueued before the ping was handled is in
// the stream ahead of the reply.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.Do(ctx, &rpc.Message{Type: rpc.MsgPing})
	return err
}

// ConnectPeers asks the server to wire itself into a partitioned mesh:
// dial the peer at addrs[i] for each owner range i it does not itself
// own (self lists the owner indexes that are the recipient), and load +
// subscribe to the listed base tables remotely (§2.4).
func (c *Client) ConnectPeers(ctx context.Context, bounds, addrs []string, self []int, tables []string) error {
	_, err := c.Do(ctx, &rpc.Message{
		Type:   rpc.MsgConnectPeers,
		Bounds: bounds,
		Peers:  addrs,
		Self:   self,
		Tables: tables,
	})
	return err
}

// Drain asks the server to tear down its cluster mesh wiring — the last
// step of DrainServer, sent after the member's final range has moved
// out and the shrunk map has been published. The server keeps its gate
// (so stale clients still get NotOwner replies carrying the post-drain
// map) but closes its peer connections and stops loading remotely.
func (c *Client) Drain(ctx context.Context) error {
	_, err := c.Do(ctx, &rpc.Message{Type: rpc.MsgDrain})
	return err
}

// SnapshotNow asks the server to commit one durable snapshot before
// returning, reporting the rows it captured. Errors when the server
// has no data dir configured.
func (c *Client) SnapshotNow(ctx context.Context) (int64, error) {
	m, err := c.Do(ctx, &rpc.Message{Type: rpc.MsgSnapshot})
	if err != nil {
		return 0, err
	}
	return m.Count, nil
}

// RebuildRange asks the server to restore [lo, hi) from its own
// durable store — the last-resort repair path when no live member
// holds a warm copy — reporting the rows it brought back. Only keys
// absent from the server's memory are installed, so writes that landed
// after a promotion are never clobbered by older disk state.
func (c *Client) RebuildRange(ctx context.Context, lo, hi string) (int64, error) {
	m, err := c.Do(ctx, &rpc.Message{Type: rpc.MsgRebuildRange, Lo: lo, Hi: hi})
	if err != nil {
		return 0, err
	}
	return m.Count, nil
}

// CommandAsync issues a generic command (baseline comparison engines:
// Redis-like, memcached-like, and relational servers share the Pequod
// framing with engine-specific command verbs).
func (c *Client) CommandAsync(args ...string) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgCommand, Args: args})
}

// Command issues a generic command and returns the raw reply.
func (c *Client) Command(args ...string) (*rpc.Message, error) {
	m, err := c.CommandAsync(args...).Wait()
	if err := replyErr(m, err); err != nil {
		return nil, err
	}
	return m, nil
}
