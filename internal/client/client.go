// Package client implements the Pequod client library: a pipelined,
// goroutine-safe connection that keeps many RPCs outstanding, exactly as
// the paper's event-driven clients do (§5.1: "Clients are event-driven
// processes that keep many RPCs outstanding").
//
// Every operation has an async form returning a *Future and a sync
// wrapper. Unsolicited Notify frames (cross-server subscription pushes,
// §2.4) are delivered to the OnNotify callback.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"pequod/internal/rpc"
)

// ErrClosed is returned for operations on a closed client.
var ErrClosed = errors.New("pequod client: connection closed")

// Client is a connection to one Pequod server. Methods are safe for
// concurrent use; requests pipeline on the single connection.
type Client struct {
	conn net.Conn

	mu      sync.Mutex
	bw      *bufio.Writer
	scratch []byte
	seq     uint64
	pending map[uint64]*Future
	dirty   bool
	closed  error

	kick chan struct{} // flush signal; never closed (senders race sends)
	quit chan struct{} // closed once by fail() to stop the flusher
	done chan struct{}

	rpcs atomic.Int64 // requests sent (evaluation metric: RPC counts)

	// OnNotify, if set before any traffic, receives server-push change
	// batches (subscription maintenance). Called from the reader
	// goroutine; implementations must not block on this client's sync
	// calls.
	OnNotify func([]rpc.Change)
}

// Future is a pending reply.
type Future struct {
	ch  chan struct{}
	m   *rpc.Message
	err error
}

// Wait blocks until the reply arrives.
func (f *Future) Wait() (*rpc.Message, error) {
	<-f.ch
	return f.m, f.err
}

// Dial connects to a Pequod server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: make(map[uint64]*Future),
		kick:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	go c.flushLoop()
	return c
}

// Close shuts the connection down; outstanding futures fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}

// RPCs reports the number of requests sent on this connection; the §5.2
// comparison uses it to show client-managed systems' RPC amplification.
func (c *Client) RPCs() int64 { return c.rpcs.Load() }

// send enqueues a request and returns its future.
func (c *Client) send(m *rpc.Message) *Future {
	c.rpcs.Add(1)
	f := &Future{ch: make(chan struct{})}
	c.mu.Lock()
	if c.closed != nil {
		err := c.closed
		c.mu.Unlock()
		f.err = err
		close(f.ch)
		return f
	}
	c.seq++
	m.Seq = c.seq
	c.pending[m.Seq] = f
	var err error
	c.scratch, err = rpc.WriteMessage(c.bw, m, c.scratch)
	c.dirty = true
	c.mu.Unlock()
	if err != nil {
		c.fail(err)
		return f
	}
	select {
	case c.kick <- struct{}{}:
	default:
	}
	return f
}

// flushLoop flushes buffered writes when the pipeline goes momentarily
// idle, batching frames from concurrent callers into single syscalls.
func (c *Client) flushLoop() {
	for {
		select {
		case <-c.kick:
		case <-c.quit:
			return
		}
		c.mu.Lock()
		if c.dirty {
			c.dirty = false
			if err := c.bw.Flush(); err != nil {
				c.mu.Unlock()
				c.fail(err)
				return
			}
		}
		c.mu.Unlock()
	}
}

func (c *Client) readLoop() {
	defer close(c.done)
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var scratch []byte
	for {
		var m *rpc.Message
		var err error
		m, scratch, err = rpc.ReadMessage(br, scratch)
		if err != nil {
			c.fail(err)
			return
		}
		if m.Type == rpc.MsgNotify {
			if c.OnNotify != nil {
				c.OnNotify(m.Changes)
			}
			continue
		}
		c.mu.Lock()
		f := c.pending[m.Seq]
		delete(c.pending, m.Seq)
		c.mu.Unlock()
		if f != nil {
			f.m = m
			close(f.ch)
		}
	}
}

// fail poisons the client and wakes all waiters.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed == nil {
		c.closed = err
		close(c.quit) // kick itself is never closed: senders race sends
	}
	pend := c.pending
	c.pending = make(map[uint64]*Future)
	c.mu.Unlock()
	for _, f := range pend {
		f.err = err
		close(f.ch)
	}
	c.conn.Close()
}

func replyErr(m *rpc.Message, err error) error {
	if err != nil {
		return err
	}
	if m.Status != rpc.StatusOK {
		return fmt.Errorf("pequod: %s", m.Err)
	}
	return nil
}

// --- Async API ---

// GetAsync fetches a key.
func (c *Client) GetAsync(key string) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgGet, Key: key})
}

// PutAsync stores a value.
func (c *Client) PutAsync(key, value string) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgPut, Key: key, Value: value})
}

// RemoveAsync deletes a key.
func (c *Client) RemoveAsync(key string) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgRemove, Key: key})
}

// ScanAsync reads [lo, hi) up to limit pairs (0 = unlimited). subscribe
// asks the server to install a base-data subscription for the range
// (server-to-server replication, §2.4).
func (c *Client) ScanAsync(lo, hi string, limit int, subscribe bool) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgScan, Lo: lo, Hi: hi, Limit: limit, SubscribeFlag: subscribe})
}

// CountAsync counts keys in [lo, hi).
func (c *Client) CountAsync(lo, hi string) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgCount, Lo: lo, Hi: hi})
}

// AddJoinAsync installs cache joins from their textual form.
func (c *Client) AddJoinAsync(text string) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgAddJoin, Text: text})
}

// NotifyAsync pushes a change batch (used by peers and the write-around
// database feed).
func (c *Client) NotifyAsync(changes []rpc.Change) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgNotify, Changes: changes})
}

// --- Sync API ---

// Get returns the value for key.
func (c *Client) Get(key string) (string, bool, error) {
	m, err := c.GetAsync(key).Wait()
	if err := replyErr(m, err); err != nil {
		return "", false, err
	}
	return m.Value, m.Found, nil
}

// Put stores value under key.
func (c *Client) Put(key, value string) error {
	m, err := c.PutAsync(key, value).Wait()
	return replyErr(m, err)
}

// Remove deletes key, reporting whether it existed.
func (c *Client) Remove(key string) (bool, error) {
	m, err := c.RemoveAsync(key).Wait()
	if err := replyErr(m, err); err != nil {
		return false, err
	}
	return m.Found, nil
}

// Scan returns up to limit pairs from [lo, hi).
func (c *Client) Scan(lo, hi string, limit int) ([]rpc.KV, error) {
	m, err := c.ScanAsync(lo, hi, limit, false).Wait()
	if err := replyErr(m, err); err != nil {
		return nil, err
	}
	return m.KVs, nil
}

// Count returns the number of keys in [lo, hi).
func (c *Client) Count(lo, hi string) (int64, error) {
	m, err := c.CountAsync(lo, hi).Wait()
	if err := replyErr(m, err); err != nil {
		return 0, err
	}
	return m.Count, nil
}

// AddJoin installs cache joins ("add-join" RPC, §3).
func (c *Client) AddJoin(text string) error {
	m, err := c.AddJoinAsync(text).Wait()
	return replyErr(m, err)
}

// Stat returns the server's JSON statistics snapshot.
func (c *Client) Stat() (string, error) {
	m, err := c.send(&rpc.Message{Type: rpc.MsgStat}).Wait()
	if err := replyErr(m, err); err != nil {
		return "", err
	}
	return m.Value, nil
}

// Flush clears the server's store (benchmark support).
func (c *Client) Flush() error {
	m, err := c.send(&rpc.Message{Type: rpc.MsgFlush}).Wait()
	return replyErr(m, err)
}

// SetSubtableDepth configures a table's subtable boundary (§4.1).
func (c *Client) SetSubtableDepth(table string, depth int) error {
	m, err := c.send(&rpc.Message{Type: rpc.MsgSetSubtable, Table: table, Depth: depth}).Wait()
	return replyErr(m, err)
}

// CommandAsync issues a generic command (baseline comparison engines:
// Redis-like, memcached-like, and relational servers share the Pequod
// framing with engine-specific command verbs).
func (c *Client) CommandAsync(args ...string) *Future {
	return c.send(&rpc.Message{Type: rpc.MsgCommand, Args: args})
}

// Command issues a generic command and returns the raw reply.
func (c *Client) Command(args ...string) (*rpc.Message, error) {
	m, err := c.CommandAsync(args...).Wait()
	if err := replyErr(m, err); err != nil {
		return nil, err
	}
	return m, nil
}
