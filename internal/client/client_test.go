package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pequod/internal/rpc"
)

// echoServer accepts one connection and answers every request with a
// canned reply keyed by message type; it can also push Notify frames.
type echoServer struct {
	ln     net.Listener
	mu     sync.Mutex
	conns  []*echoConn
	pushed chan []rpc.Change
}

// echoConn serializes writes between the request handler and push.
type echoConn struct {
	c  net.Conn
	mu sync.Mutex
	bw *bufio.Writer
}

func (ec *echoConn) write(m *rpc.Message) error {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if _, err := rpc.WriteMessage(ec.bw, m, nil); err != nil {
		return err
	}
	return ec.bw.Flush()
}

func startEcho(t *testing.T) (*echoServer, *Client) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	es := &echoServer{ln: ln, pushed: make(chan []rpc.Change, 4)}
	go es.serve()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		ln.Close()
		es.mu.Lock()
		for _, cn := range es.conns {
			cn.c.Close()
		}
		es.mu.Unlock()
	})
	return es, c
}

func (es *echoServer) serve() {
	for {
		cn, err := es.ln.Accept()
		if err != nil {
			return
		}
		ec := &echoConn{c: cn, bw: bufio.NewWriter(cn)}
		es.mu.Lock()
		es.conns = append(es.conns, ec)
		es.mu.Unlock()
		go es.handle(ec)
	}
}

func (es *echoServer) handle(ec *echoConn) {
	br := bufio.NewReader(ec.c)
	var rs []byte
	for {
		m, sc, err := rpc.ReadMessage(br, rs)
		if err != nil {
			return
		}
		rs = sc
		r := rpc.OKReply(m.Seq)
		switch m.Type {
		case rpc.MsgGet:
			// Keys prefixed "slow:" simulate a server stuck on base-data
			// loads; cancellation tests race against this delay.
			if strings.HasPrefix(m.Key, "slow:") {
				time.Sleep(200 * time.Millisecond)
			}
			r.Found = true
			r.Value = "value-of-" + m.Key
		case rpc.MsgScan:
			r.KVs = []rpc.KV{{Key: m.Lo, Value: "first"}}
		case rpc.MsgCount:
			r.Count = 42
		case rpc.MsgStat:
			r.Value = `{"ok":true}`
		case rpc.MsgAddJoin:
			if m.Text == "bad" {
				r = rpc.ErrReply(m.Seq, fmt.Errorf("no such join"))
			}
		}
		if err := ec.write(r); err != nil {
			return
		}
	}
}

func (es *echoServer) push(changes []rpc.Change) error {
	es.mu.Lock()
	defer es.mu.Unlock()
	if len(es.conns) == 0 {
		return fmt.Errorf("no connections")
	}
	return es.conns[0].write(&rpc.Message{Type: rpc.MsgNotify, Changes: changes})
}

func TestSyncOps(t *testing.T) {
	_, c := startEcho(t)
	v, found, err := c.Get("k1")
	if err != nil || !found || v != "value-of-k1" {
		t.Fatalf("Get = %q %v %v", v, found, err)
	}
	if err := c.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	kvs, err := c.Scan("lo", "hi", 0)
	if err != nil || len(kvs) != 1 || kvs[0].Key != "lo" {
		t.Fatalf("Scan = %v %v", kvs, err)
	}
	n, err := c.Count("a", "b")
	if err != nil || n != 42 {
		t.Fatalf("Count = %d %v", n, err)
	}
	st, err := c.Stat()
	if err != nil || st != `{"ok":true}` {
		t.Fatalf("Stat = %q %v", st, err)
	}
	// Server-reported errors surface as Go errors.
	if err := c.AddJoin("bad"); err == nil {
		t.Fatal("error reply not surfaced")
	}
	if err := c.AddJoin("good"); err != nil {
		t.Fatal(err)
	}
	if c.RPCs() == 0 {
		t.Fatal("RPC counter")
	}
}

func TestPipelinedOutOfOrderWaits(t *testing.T) {
	_, c := startEcho(t)
	// Issue many async requests, then wait in reverse order: sequence
	// matching must route each reply to its future.
	futs := make([]*Future, 50)
	for i := range futs {
		futs[i] = c.GetAsync(fmt.Sprintf("k%02d", i))
	}
	for i := len(futs) - 1; i >= 0; i-- {
		m, err := futs[i].Wait()
		if err != nil {
			t.Fatal(err)
		}
		if m.Value != fmt.Sprintf("value-of-k%02d", i) {
			t.Fatalf("future %d got %q", i, m.Value)
		}
	}
}

func TestNotifyDelivery(t *testing.T) {
	es, c := startEcho(t)
	got := make(chan []rpc.Change, 1)
	c.OnNotify = func(ch []rpc.Change) { got <- ch }
	// Prime the connection so the server has it registered.
	if _, _, err := c.Get("x"); err != nil {
		t.Fatal(err)
	}
	if err := es.push([]rpc.Change{{Op: rpc.ChangePut, Key: "n", Value: "v"}}); err != nil {
		t.Fatal(err)
	}
	select {
	case ch := <-got:
		if len(ch) != 1 || ch[0].Key != "n" {
			t.Fatalf("notify = %v", ch)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("notify not delivered")
	}
}

// TestWaitCtxCancellation is the issue's contract: a canceled call
// fails fast, fails its Future, and leaves the connection usable for
// subsequent calls.
func TestWaitCtxCancellation(t *testing.T) {
	_, c := startEcho(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	f := c.GetAsync("slow:k")
	start := time.Now()
	_, err := f.WaitCtx(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitCtx = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("cancellation took %v; not fast", elapsed)
	}
	// The future itself is failed: a later Wait sees the same error.
	if _, err := f.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned future Wait = %v", err)
	}
	// The connection is still usable — including for the same key, whose
	// stale reply must have been discarded, not delivered to a new call.
	if v, found, err := c.Get("k2"); err != nil || !found || v != "value-of-k2" {
		t.Fatalf("Get after cancellation = %q %v %v", v, found, err)
	}
	if v, _, err := c.Get("slow:k"); err != nil || v != "value-of-slow:k" {
		t.Fatalf("slow Get after cancellation = %q %v", v, err)
	}
}

// TestWaitCtxDeliversRacedReply: when the reply lands before the
// cancellation takes effect, the completed result is delivered.
func TestWaitCtxDeliversRacedReply(t *testing.T) {
	_, c := startEcho(t)
	f := c.GetAsync("k")
	f.Wait() // reply is in
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := f.WaitCtx(ctx)
	if err != nil || m.Value != "value-of-k" {
		t.Fatalf("raced WaitCtx = %v %v", m, err)
	}
}

// TestDoStampsDeadline: Do carries the remaining budget on the wire.
func TestDoStampsDeadline(t *testing.T) {
	_, c := startEcho(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	m := &rpc.Message{Type: rpc.MsgGet, Key: "k"}
	if _, err := c.Do(ctx, m); err != nil {
		t.Fatal(err)
	}
	if m.TimeoutMS == 0 || m.TimeoutMS > 1000 {
		t.Fatalf("TimeoutMS = %d, want (0, 1000]", m.TimeoutMS)
	}
	// An already-expired context fails without sending.
	before := c.RPCs()
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := c.Do(expired, &rpc.Message{Type: rpc.MsgGet, Key: "k"}); err == nil {
		t.Fatal("expired Do succeeded")
	}
	if c.RPCs() != before {
		t.Fatal("expired Do still sent a request")
	}
}

func TestDialContext(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c, err := DialContext(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialContext(canceled, ln.Addr().String()); err == nil {
		t.Fatal("dial under canceled context succeeded")
	}
}

func TestCloseFailsPendingAndFutureCalls(t *testing.T) {
	_, c := startEcho(t)
	c.Close()
	if _, _, err := c.Get("k"); err == nil {
		t.Fatal("call on closed client should fail")
	}
}

func TestServerDisappearing(t *testing.T) {
	es, c := startEcho(t)
	if _, _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	es.ln.Close()
	es.mu.Lock()
	for _, cn := range es.conns {
		cn.c.Close()
	}
	es.mu.Unlock()
	// Pending and subsequent calls fail rather than hang.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, err := c.Get("k"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("calls still succeed after server death")
		}
	}
}

func TestConcurrentMixedCallers(t *testing.T) {
	_, c := startEcho(t)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 3 {
				case 0:
					if _, _, err := c.Get(fmt.Sprintf("g%d-%d", g, i)); err != nil {
						t.Errorf("get: %v", err)
						return
					}
				case 1:
					if err := c.Put("k", "v"); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				default:
					if _, err := c.Scan("a", "b", 1); err != nil {
						t.Errorf("scan: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.RPCs(); got != 16*50 {
		t.Fatalf("RPCs = %d, want %d", got, 16*50)
	}
}
