package client

import (
	"context"
	"errors"
	"io"
	"net"

	"pequod/internal/perrs"
)

// Is makes NotOwnerError match the public sentinel via errors.Is:
// errors.Is(err, pequod.ErrNotOwner) holds for every NotOwner reply
// while the richer type (with the server's current map position) stays
// reachable through errors.As.
func (e *NotOwnerError) Is(target error) bool {
	return target == perrs.ErrNotOwner
}

// IsUnavailable reports whether err means the server could not be
// reached at all — the connection failed to dial, died mid-request, or
// was already marked failed — as opposed to the server answering with
// an error. The cluster client uses it to decide which failures are
// worth retrying against a (possibly repaired) view: a NotOwner
// bounce, a caller-cancelled context, and an ordinary reply error all
// return false.
func IsUnavailable(err error) bool {
	if err == nil {
		return false
	}
	var noe *NotOwnerError
	if errors.As(err, &noe) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}
