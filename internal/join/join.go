// Package join implements the cache-join specification language of §3
// (Fig 2):
//
//	<cachejoin> ::= <key> "=" ["push" | "pull" | "snapshot <T>"] <sources>;
//	<sources>   ::= <source> | <sources> <source>;
//	<source>    ::= <operator> <key>;
//	<operator>  ::= "copy" | "min" | "max" | "count" | "sum" | "check";
//
// Keys are patterns in the syntax of package pattern, with slots written
// in angle brackets: the paper's timeline join
//
//	t|user|time|poster = check s|user|poster copy p|poster|time;
//
// is spelled
//
//	t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>
//
// which disambiguates slots from interleaving literal tags such as the
// "a"/"r"/"c"/"k" markers in the Newp page joins (Fig 1).
//
// Parse enforces the paper's install-time checks: exactly n-1 of a join's
// n operators must be check (§3, "we currently impose additional
// technical requirements"), the output's slots must be computable from
// the sources, and annotations must be well-formed. Cross-join recursion
// is checked by the engine at installation, where the full set of
// installed joins is known.
package join

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"pequod/internal/pattern"
)

// Op is a source operator.
type Op int

const (
	// Copy copies the source's value to the output key.
	Copy Op = iota
	// Check marks sources whose values aren't interesting; only the
	// existence and contents of their keys matter.
	Check
	// Count counts matching source keys into the output value.
	Count
	// Sum sums matching source values (decimal integers).
	Sum
	// Min keeps the minimum matching source value.
	Min
	// Max keeps the maximum matching source value.
	Max
)

var opNames = map[string]Op{
	"copy": Copy, "check": Check, "count": Count,
	"sum": Sum, "min": Min, "max": Max,
}

// String returns the grammar spelling of the operator.
func (o Op) String() string {
	for s, v := range opNames {
		if v == o {
			return s
		}
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsAggregate reports whether the operator folds many source keys into one
// output value.
func (o Op) IsAggregate() bool {
	return o == Count || o == Sum || o == Min || o == Max
}

// Maintenance selects how a join's outputs are kept fresh (§3.4).
type Maintenance int

const (
	// Push (the default) asks for eager incremental maintenance.
	Push Maintenance = iota
	// Pull recomputes the join from scratch on each query, caching
	// nothing.
	Pull
	// Snapshot computes from scratch and caches the result — without
	// updates — for the configured duration.
	Snapshot
)

func (m Maintenance) String() string {
	switch m {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case Snapshot:
		return "snapshot"
	}
	return fmt.Sprintf("Maintenance(%d)", int(m))
}

// SourceMode selects per-source maintenance for push joins. The paper's
// prototype hard-wires "lazy maintenance (invalidations) for check
// sources and eager maintenance for all other sources" and notes "we
// would like to offer users more control over maintenance type" (§3.2);
// the eager/lazy source prefixes provide that control.
type SourceMode int

const (
	// ModeDefault applies the prototype policy: lazy for check sources,
	// eager otherwise.
	ModeDefault SourceMode = iota
	// ModeEager forces eager incremental maintenance for this source.
	ModeEager
	// ModeLazy forces lazy (invalidation-log) maintenance.
	ModeLazy
)

func (m SourceMode) String() string {
	switch m {
	case ModeEager:
		return "eager"
	case ModeLazy:
		return "lazy"
	}
	return "default"
}

// Source is one operator + pattern pair.
type Source struct {
	Op   Op
	Pat  *pattern.Pattern
	Mode SourceMode
}

// Join is a compiled cache join.
type Join struct {
	// Text is the original specification.
	Text string
	// Out is the output pattern.
	Out *pattern.Pattern
	// Sources are the source patterns in user order — the order is a
	// performance annotation (§3.4): sources are examined left to right
	// by the nested-loop executor.
	Sources []Source
	// ValueSource indexes the single non-check source, whose operator
	// produces output values.
	ValueSource int
	// Maint and SnapshotT are the maintenance annotation.
	Maint     Maintenance
	SnapshotT time.Duration
	// Slots is the join-wide slot table shared by all patterns.
	Slots pattern.SlotTable
}

// ValueOp returns the operator of the value source.
func (j *Join) ValueOp() Op { return j.Sources[j.ValueSource].Op }

// IsAggregate reports whether the join folds source keys (count/sum/min/max).
func (j *Join) IsAggregate() bool { return j.ValueOp().IsAggregate() }

// String returns the join's original text.
func (j *Join) String() string { return j.Text }

// Parse compiles a textual cache join. Multiple joins may be separated by
// semicolons and parsed one at a time with ParseAll.
func Parse(text string) (*Join, error) {
	j := &Join{Text: strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(text), ";"))}
	toks := strings.Fields(j.Text)
	if len(toks) < 4 {
		return nil, fmt.Errorf("join %q: want `out = [annotation] op pattern ...`", text)
	}
	if toks[1] != "=" {
		return nil, fmt.Errorf("join %q: missing '=' after output pattern", text)
	}
	out, err := pattern.Parse(toks[0], &j.Slots)
	if err != nil {
		return nil, err
	}
	j.Out = out
	rest := toks[2:]

	// Optional maintenance annotation.
	switch rest[0] {
	case "push":
		j.Maint = Push
		rest = rest[1:]
	case "pull":
		j.Maint = Pull
		rest = rest[1:]
	case "snapshot":
		if len(rest) < 2 {
			return nil, fmt.Errorf("join %q: snapshot needs a duration", text)
		}
		d, err := parseDuration(rest[1])
		if err != nil {
			return nil, fmt.Errorf("join %q: %v", text, err)
		}
		j.Maint = Snapshot
		j.SnapshotT = d
		rest = rest[2:]
	}

	if len(rest) == 0 {
		return nil, fmt.Errorf("join %q: sources must be operator/pattern pairs", text)
	}
	for i := 0; i < len(rest); {
		mode := ModeDefault
		switch rest[i] {
		case "eager":
			mode = ModeEager
			i++
		case "lazy":
			mode = ModeLazy
			i++
		}
		if i+1 >= len(rest) {
			return nil, fmt.Errorf("join %q: sources must be operator/pattern pairs", text)
		}
		op, ok := opNames[rest[i]]
		if !ok {
			return nil, fmt.Errorf("join %q: unknown operator %q", text, rest[i])
		}
		if mode == ModeLazy && op != Check {
			// Lazy value sources would leave outputs permanently stale
			// between reads without any log to apply; reject like the
			// engine's other install-time checks (§3).
			return nil, fmt.Errorf("join %q: lazy maintenance applies to check sources only", text)
		}
		pat, err := pattern.Parse(rest[i+1], &j.Slots)
		if err != nil {
			return nil, err
		}
		j.Sources = append(j.Sources, Source{Op: op, Pat: pat, Mode: mode})
		i += 2
	}
	if err := j.validate(); err != nil {
		return nil, fmt.Errorf("join %q: %v", text, err)
	}
	return j, nil
}

// MustParse is Parse that panics on error, for static join tables.
func MustParse(text string) *Join {
	j, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return j
}

// ParseAll parses a semicolon- or newline-separated list of joins,
// skipping blank entries and //-comments. Comments are stripped per line
// before splitting, so a ';' inside a comment does not break a
// specification apart.
func ParseAll(text string) ([]*Join, error) {
	var clean strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteByte('\n')
	}
	var out []*Join
	for _, spec := range strings.FieldsFunc(clean.String(), func(r rune) bool { return r == ';' || r == '\n' }) {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		j, err := Parse(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, j)
	}
	return out, nil
}

// parseDuration accepts Go durations ("30s") and bare seconds ("30").
func parseDuration(s string) (time.Duration, error) {
	if n, err := strconv.Atoi(s); err == nil {
		if n < 0 {
			return 0, fmt.Errorf("negative snapshot duration %d", n)
		}
		return time.Duration(n) * time.Second, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad snapshot duration %q", s)
	}
	return d, nil
}

// validate applies the paper's install-time requirements.
func (j *Join) validate() error {
	// Exactly n-1 check operators.
	value := -1
	for i, s := range j.Sources {
		if s.Op != Check {
			if value >= 0 {
				return fmt.Errorf("exactly one non-check source allowed (have %s and %s)",
					j.Sources[value].Op, s.Op)
			}
			value = i
		}
	}
	if value < 0 {
		return fmt.Errorf("need one non-check source to produce output values")
	}
	j.ValueSource = value

	// The output must not read from its own table (self-recursion); the
	// engine rejects cross-join cycles at install time.
	for _, s := range j.Sources {
		if s.Pat.Table() == j.Out.Table() {
			return fmt.Errorf("recursive join: source table %q equals output table", s.Pat.Table())
		}
	}

	// Every output slot must be bound by some source, or the join can
	// never construct an output key.
	srcSlots := uint16(0)
	for _, s := range j.Sources {
		srcSlots |= s.Pat.Slots()
	}
	if j.Out.Slots()&^srcSlots != 0 {
		return fmt.Errorf("output slot(s) not bound by any source")
	}

	// The snapshot annotation needs a duration; zero means "always stale"
	// and is almost certainly a mistake.
	if j.Maint == Snapshot && j.SnapshotT <= 0 {
		return fmt.Errorf("snapshot join needs a positive duration")
	}
	return nil
}

// Ambiguous reports whether the join can produce colliding output keys: a
// non-aggregate join whose sources bind slots that do not appear in the
// output pattern (the paper's t|user|time variant, §3). Pequod installs
// such joins — "users are left responsible for avoiding ambiguous cache
// joins" — but applications can consult this before installing.
func (j *Join) Ambiguous() bool {
	if j.IsAggregate() {
		return false
	}
	srcSlots := uint16(0)
	for _, s := range j.Sources {
		srcSlots |= s.Pat.Slots()
	}
	return srcSlots&^j.Out.Slots() != 0
}

// SourceTables returns the distinct tables the join reads.
func (j *Join) SourceTables() []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range j.Sources {
		if !seen[s.Pat.Table()] {
			seen[s.Pat.Table()] = true
			out = append(out, s.Pat.Table())
		}
	}
	return out
}
