package join

import "testing"

// FuzzParse hardens the cache-join parser: arbitrary specifications must
// either parse into a valid join (whose text re-parses identically) or
// return an error — never panic.
func FuzzParse(f *testing.F) {
	f.Add("t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>")
	f.Add("karma|<author> = count vote|<author>|<id>|<voter>")
	f.Add("x|<a> = snapshot 30 copy y|<a>")
	f.Add("t|<u>|<ts>|<p> = pull copy ct|<ts>|<p> check s|<u>|<p>")
	f.Add("page|<a>|<id>|k|<cid>|<c> = eager check comment|<a>|<id>|<cid>|<c> copy karma|<c>")
	f.Add("a|<x> = lazy copy b|<x>")
	f.Add("= copy")
	f.Add("x|<a:8> = copy y|<a:9>")

	f.Fuzz(func(t *testing.T, spec string) {
		j, err := Parse(spec)
		if err != nil {
			return
		}
		// A successfully parsed join must re-parse from its own text.
		j2, err := Parse(j.Text)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", j.Text, err)
		}
		if j2.Out.Table() != j.Out.Table() || len(j2.Sources) != len(j.Sources) ||
			j2.Maint != j.Maint || j2.ValueSource != j.ValueSource {
			t.Fatalf("re-parse drift for %q", j.Text)
		}
	})
}
