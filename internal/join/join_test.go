package join

import (
	"testing"
	"time"
)

func TestParseTimelineJoin(t *testing.T) {
	j, err := Parse("t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>")
	if err != nil {
		t.Fatal(err)
	}
	if j.Out.Table() != "t" || len(j.Sources) != 2 {
		t.Fatalf("out=%q sources=%d", j.Out.Table(), len(j.Sources))
	}
	if j.Sources[0].Op != Check || j.Sources[1].Op != Copy {
		t.Fatal("operators")
	}
	if j.ValueSource != 1 || j.ValueOp() != Copy {
		t.Fatal("value source")
	}
	if j.Maint != Push {
		t.Fatal("default maintenance should be push")
	}
	if j.IsAggregate() || j.Ambiguous() {
		t.Fatal("flags")
	}
	if got := j.SourceTables(); len(got) != 2 || got[0] != "s" || got[1] != "p" {
		t.Fatalf("SourceTables = %v", got)
	}
}

func TestParseAnnotations(t *testing.T) {
	j, err := Parse("t|<u>|<ts>|<p> = pull copy ct|<ts>|<p> check s|<u>|<p>;")
	if err != nil {
		t.Fatal(err)
	}
	if j.Maint != Pull || j.ValueSource != 0 {
		t.Fatalf("maint=%v valueSource=%d", j.Maint, j.ValueSource)
	}

	j, err = Parse("x|<a> = snapshot 30 copy y|<a>")
	if err != nil {
		t.Fatal(err)
	}
	if j.Maint != Snapshot || j.SnapshotT != 30*time.Second {
		t.Fatalf("snapshot: %v %v", j.Maint, j.SnapshotT)
	}
	j, err = Parse("x|<a> = snapshot 500ms copy y|<a>")
	if err != nil {
		t.Fatal(err)
	}
	if j.SnapshotT != 500*time.Millisecond {
		t.Fatalf("snapshot duration: %v", j.SnapshotT)
	}
	j, err = Parse("x|<a> = push copy y|<a>")
	if err != nil || j.Maint != Push {
		t.Fatalf("explicit push: %v %v", err, j)
	}
}

func TestParseAggregates(t *testing.T) {
	j, err := Parse("karma|<author> = count vote|<author>|<id>|<voter>")
	if err != nil {
		t.Fatal(err)
	}
	if !j.IsAggregate() || j.ValueOp() != Count {
		t.Fatal("count join flags")
	}
	for _, op := range []string{"sum", "min", "max"} {
		if _, err := Parse("agg|<a> = " + op + " src|<a>|<b>"); err != nil {
			t.Errorf("%s join: %v", op, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                               // empty
		"t|<a> copy s|<a>",               // missing =
		"t|<a> =",                        // no sources
		"t|<a> = copy",                   // op without pattern
		"t|<a> = frob s|<a>",             // unknown op
		"t|<a> = check s|<a>",            // no value source
		"t|<a> = copy s|<a> copy u|<a>",  // two value sources
		"t|<a> = copy u|<a> sum v|<a>",   // two value sources (mixed)
		"t|<a> = copy t|<a>",             // self-recursive
		"t|<a>|<b> = copy s|<a>",         // output slot b unbound
		"t|<a> = snapshot copy s|<a>",    // snapshot without duration
		"t|<a> = snapshot -3 copy s|<a>", // negative duration
		"t|<a> = snapshot 0 copy s|<a>",  // zero duration
		"t|<a> = copy s|<bad",            // pattern error propagates
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestAmbiguous(t *testing.T) {
	// The paper's t|user|time variant: copies collapse distinct posters.
	j, err := Parse("t|<user>|<time> = check s|<user>|<poster> copy p|<poster>|<time>")
	if err != nil {
		t.Fatalf("ambiguous joins install (users are responsible): %v", err)
	}
	if !j.Ambiguous() {
		t.Fatal("should report ambiguity")
	}
	// Aggregates are never ambiguous: folding is their semantics.
	j = MustParse("karma|<author> = count vote|<author>|<id>|<voter>")
	if j.Ambiguous() {
		t.Fatal("aggregate join reported ambiguous")
	}
}

func TestParseAllAndComments(t *testing.T) {
	text := `
	  karma|<author> = count vote|<author>|<id>|<voter>;
	  // a comment line
	  rank|<author>|<id> = count vote|<author>|<id>|<voter>; // trailing comment
	  page|<author>|<id>|a = copy article|<author>|<id>
	`
	js, err := ParseAll(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 3 {
		t.Fatalf("parsed %d joins", len(js))
	}
	if js[2].Out.Table() != "page" {
		t.Fatal("third join")
	}
	if _, err := ParseAll("x|<a> = copy"); err == nil {
		t.Fatal("ParseAll should propagate errors")
	}
	// Comments containing semicolons must not split specifications.
	js, err = ParseAll(`
	  // a comment with a semicolon; and more words after it
	  a|<x> = copy b|<x>
	`)
	if err != nil || len(js) != 1 {
		t.Fatalf("comment-with-semicolon: %v, %d joins", err, len(js))
	}
}

func TestNewpFigure1Joins(t *testing.T) {
	// The complete Fig 1 join set must parse.
	text := `
	  karma|<author> = count vote|<author>|<id>|<voter>;
	  rank|<author>|<id> = count vote|<author>|<id>|<voter>;
	  page|<author>|<id>|a = copy article|<author>|<id>;
	  page|<author>|<id>|r = copy rank|<author>|<id>;
	  page|<author>|<id>|c|<cid>|<commenter> = copy comment|<author>|<id>|<cid>|<commenter>;
	  page|<author>|<id>|k|<cid>|<commenter> = check comment|<author>|<id>|<cid>|<commenter> copy karma|<commenter>
	`
	js, err := ParseAll(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 6 {
		t.Fatalf("parsed %d joins", len(js))
	}
	// page…k reads the karma view: join-on-join.
	last := js[5]
	tables := last.SourceTables()
	if len(tables) != 2 || tables[1] != "karma" {
		t.Fatalf("page-k sources: %v", tables)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("bogus")
}

func TestOpString(t *testing.T) {
	for _, c := range []struct {
		op   Op
		want string
	}{{Copy, "copy"}, {Check, "check"}, {Count, "count"}, {Sum, "sum"}, {Min, "min"}, {Max, "max"}} {
		if c.op.String() != c.want {
			t.Errorf("Op %d String = %q", c.op, c.op.String())
		}
	}
	for _, c := range []struct {
		m    Maintenance
		want string
	}{{Push, "push"}, {Pull, "pull"}, {Snapshot, "snapshot"}} {
		if c.m.String() != c.want {
			t.Errorf("Maintenance String = %q", c.m.String())
		}
	}
}
