package backdb

import (
	"fmt"
	"sync"
	"testing"

	"pequod/internal/core"
)

func TestPutScanDelete(t *testing.T) {
	db := New()
	defer db.Close()
	db.Put("p|a|1", "v1")
	db.Put("p|a|2", "v2")
	db.Put("p|b|1", "v3")
	kvs := db.Scan("p|a|", "p|a}")
	if len(kvs) != 2 || kvs[0].Value != "v1" {
		t.Fatalf("scan = %v", kvs)
	}
	db.Delete("p|a|1")
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestSnapshotThenUpdatesInOrder(t *testing.T) {
	db := New()
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Put(fmt.Sprintf("k|%02d", i), "initial")
	}
	var mu sync.Mutex
	var events []string
	snapshotLen := -1
	sub := db.ScanAndSubscribe("k|", "k}",
		func(kvs []core.KV) {
			mu.Lock()
			snapshotLen = len(kvs)
			mu.Unlock()
		},
		func(u Update) {
			mu.Lock()
			events = append(events, fmt.Sprintf("%d:%s=%s", u.Op, u.Key, u.Value))
			mu.Unlock()
		})
	// Writes racing with the snapshot must be delivered after it.
	db.Put("k|05", "updated")
	db.Delete("k|06")
	db.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if snapshotLen != 10 {
		t.Fatalf("snapshot length = %d", snapshotLen)
	}
	if len(events) != 2 || events[0] != "0:k|05=updated" || events[1] != "1:k|06=" {
		t.Fatalf("events = %v", events)
	}
	sub.Cancel()
	db.Put("k|07", "after cancel")
	db.Quiesce()
	if len(events) != 2 {
		t.Fatalf("cancelled subscription still delivered: %v", events)
	}
}

func TestSubscriptionRangeFiltering(t *testing.T) {
	db := New()
	defer db.Close()
	var got []string
	var mu sync.Mutex
	db.ScanAndSubscribe("p|bob|", "p|bob}",
		func([]core.KV) {},
		func(u Update) {
			mu.Lock()
			got = append(got, u.Key)
			mu.Unlock()
		})
	db.Put("p|bob|1", "in range")
	db.Put("p|liz|1", "out of range")
	db.Put("p|bob|2", "also in")
	db.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != "p|bob|1" || got[1] != "p|bob|2" {
		t.Fatalf("filtered updates = %v", got)
	}
}

func TestDeleteOfAbsentKeyNotifiesNothing(t *testing.T) {
	db := New()
	defer db.Close()
	calls := 0
	var mu sync.Mutex
	db.ScanAndSubscribe("x|", "x}", func([]core.KV) {}, func(Update) {
		mu.Lock()
		calls++
		mu.Unlock()
	})
	db.Delete("x|nothere")
	db.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if calls != 0 {
		t.Fatalf("phantom delete notified %d times", calls)
	}
}

func TestConcurrentWriters(t *testing.T) {
	db := New()
	defer db.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.Put(fmt.Sprintf("c|%d|%03d", w, i), "v")
			}
		}(w)
	}
	wg.Wait()
	if db.Len() != 1600 {
		t.Fatalf("Len = %d", db.Len())
	}
}
