// Package backdb is the persistent backing store of a write-around
// Pequod deployment (§2): "connect Pequod with a database shard,
// instructing Pequod that some keys can be found in the database and
// instructing the database that updates to relevant tables should be
// forwarded to Pequod (e.g., using Postgres's notify statement)."
//
// The DB is an ordered in-memory store with ranged subscriptions. All
// deliveries — initial range snapshots and subsequent update
// notifications — flow through a single dispatcher goroutine in write
// order, so a cache attached via ScanAndSubscribe observes a consistent
// prefix of the database history (never an old value after a newer one).
package backdb

import (
	"sync"

	"pequod/internal/core"
	"pequod/internal/interval"
	"pequod/internal/store"
)

// Op classifies an update notification.
type Op int

// Update operations.
const (
	OpPut Op = iota
	OpDelete
)

// Update is one notified database change.
type Update struct {
	Op    Op
	Key   string
	Value string
}

// Subscription receives updates for a key range until cancelled.
type Subscription struct {
	entry *interval.Entry[*subState]
	db    *DB
}

type subState struct {
	fn        func(Update)
	cancelled bool
}

// Cancel stops deliveries (already-queued events may still arrive).
func (s *Subscription) Cancel() {
	s.db.mu.Lock()
	s.entry.Val.cancelled = true
	s.db.subs.Delete(s.entry)
	s.db.mu.Unlock()
}

type event struct {
	snapshot func()    // either a snapshot delivery...
	sub      *subState // ...or an update for one subscription
	upd      Update
}

// DB is the backing database.
type DB struct {
	mu    sync.Mutex
	data  *store.Store
	subs  *interval.Tree[*subState]
	queue []event
	cond  *sync.Cond
	done  bool
	wg    sync.WaitGroup
}

// New returns an empty database with its dispatcher running.
func New() *DB {
	db := &DB{data: store.New(), subs: interval.New[*subState]()}
	db.cond = sync.NewCond(&db.mu)
	db.wg.Add(1)
	go db.dispatch()
	return db
}

// Close stops the dispatcher after draining queued events.
func (db *DB) Close() {
	db.mu.Lock()
	db.done = true
	db.mu.Unlock()
	db.cond.Signal()
	db.wg.Wait()
}

func (db *DB) dispatch() {
	defer db.wg.Done()
	for {
		db.mu.Lock()
		for len(db.queue) == 0 && !db.done {
			db.cond.Wait()
		}
		if len(db.queue) == 0 && db.done {
			db.mu.Unlock()
			return
		}
		batch := db.queue
		db.queue = nil
		db.mu.Unlock()
		for _, ev := range batch {
			switch {
			case ev.snapshot != nil:
				ev.snapshot()
			case !ev.sub.cancelled:
				ev.sub.fn(ev.upd)
			}
		}
	}
}

func (db *DB) enqueueLocked(ev event) {
	db.queue = append(db.queue, ev)
	db.cond.Signal()
}

// Put writes a row (application write path of the write-around
// deployment) and notifies overlapping subscriptions.
func (db *DB) Put(key, value string) {
	db.mu.Lock()
	db.data.Put(key, store.NewValue(value))
	db.notifyLocked(Update{Op: OpPut, Key: key, Value: value})
	db.mu.Unlock()
}

// Delete removes a row and notifies overlapping subscriptions.
func (db *DB) Delete(key string) {
	db.mu.Lock()
	if _, ok := db.data.Remove(key); ok {
		db.notifyLocked(Update{Op: OpDelete, Key: key})
	}
	db.mu.Unlock()
}

func (db *DB) notifyLocked(u Update) {
	db.subs.Stab(u.Key, func(en *interval.Entry[*subState]) bool {
		db.enqueueLocked(event{sub: en.Val, upd: u})
		return true
	})
}

// Scan returns the rows in [lo, hi) (hi == "" unbounded).
func (db *DB) Scan(lo, hi string) []core.KV {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.scanLocked(lo, hi)
}

func (db *DB) scanLocked(lo, hi string) []core.KV {
	var out []core.KV
	db.data.Scan(lo, hi, func(k string, v *store.Value) bool {
		out = append(out, core.KV{Key: k, Value: v.String()})
		return true
	})
	return out
}

// Len returns the number of rows.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.data.Len()
}

// ScanAndSubscribe atomically snapshots [lo, hi) and installs a
// subscription for its future updates. The snapshot is delivered through
// snapshotFn and every later update through updateFn, both from the
// dispatcher goroutine, in database write order — the invariant that
// keeps a write-around cache fresh (§2).
func (db *DB) ScanAndSubscribe(lo, hi string, snapshotFn func([]core.KV), updateFn func(Update)) *Subscription {
	db.mu.Lock()
	kvs := db.scanLocked(lo, hi)
	st := &subState{fn: updateFn}
	en := db.subs.Insert(lo, hi, st)
	db.enqueueLocked(event{snapshot: func() { snapshotFn(kvs) }})
	db.mu.Unlock()
	return &Subscription{entry: en, db: db}
}

// Quiesce blocks until all queued deliveries have been dispatched (test
// support for eventual-consistency assertions).
func (db *DB) Quiesce() {
	for {
		db.mu.Lock()
		empty := len(db.queue) == 0
		db.mu.Unlock()
		if empty {
			// One more round: the dispatcher may be mid-batch; enqueue a
			// sentinel snapshot and wait for it.
			ch := make(chan struct{})
			db.mu.Lock()
			db.enqueueLocked(event{snapshot: func() { close(ch) }})
			db.mu.Unlock()
			<-ch
			return
		}
	}
}
