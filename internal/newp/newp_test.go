package newp

import (
	"testing"

	"pequod/internal/client"
	"pequod/internal/server"
)

func startBackend(t *testing.T, joins string, mk func(*client.Client) Backend) Backend {
	t.Helper()
	s, err := server.New(server.Config{Joins: joins})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return mk(c)
}

func TestInterleavedAndNonInterleavedAgree(t *testing.T) {
	// Both page-assembly strategies must fetch the same logical items:
	// article + rank + each comment + each karma-bearing commenter.
	d1 := &Dataset{Users: 40, Articles: 30, Comments: 80, Votes: 150, Seed: 5}
	d2 := &Dataset{Users: 40, Articles: 30, Comments: 80, Votes: 150, Seed: 5}

	inter := startBackend(t, InterleavedJoins, func(c *client.Client) Backend { return &Interleaved{C: c} })
	non := startBackend(t, AggregateJoins, func(c *client.Client) Backend { return &NonInterleaved{C: c} })

	if err := d1.Populate(inter); err != nil {
		t.Fatal(err)
	}
	if err := d2.Populate(non); err != nil {
		t.Fatal(err)
	}
	ops1 := d1.Sessions(300, 0.2, 9)
	ops2 := d2.Sessions(300, 0.2, 9)

	items1, err := RunSessions(inter, ops1, 1)
	if err != nil {
		t.Fatal(err)
	}
	items2, err := RunSessions(non, ops2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if items1 != items2 {
		t.Fatalf("interleaved fetched %d items, non-interleaved %d", items1, items2)
	}
	if items1 == 0 {
		t.Fatal("no items fetched")
	}
}

func TestInterleavedPageContents(t *testing.T) {
	b := startBackend(t, InterleavedJoins, func(c *client.Client) Backend { return &Interleaved{C: c} })
	a := Article{Author: 1, ID: 7}
	if err := b.WriteArticle(a, "body"); err != nil {
		t.Fatal(err)
	}
	if err := b.Comment(a, 1, 2, "hi"); err != nil {
		t.Fatal(err)
	}
	if err := b.Vote(a, 3); err != nil {
		t.Fatal(err)
	}
	// Commenter 2 earns karma from a vote on their own article.
	a2 := Article{Author: 2, ID: 8}
	if err := b.WriteArticle(a2, "other"); err != nil {
		t.Fatal(err)
	}
	if err := b.Vote(a2, 4); err != nil {
		t.Fatal(err)
	}
	n, err := b.ReadArticle(a)
	if err != nil {
		t.Fatal(err)
	}
	// a, r, c (1 comment), k (commenter 2 has karma 1) = 4 items.
	if n != 4 {
		t.Fatalf("page items = %d", n)
	}
	// Voting again updates rank through the cascade; page reflects it.
	if err := b.Vote(a, 5); err != nil {
		t.Fatal(err)
	}
	n, err = b.ReadArticle(a)
	if err != nil || n != 4 {
		t.Fatalf("page items after vote = %d, %v", n, err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	d := &Dataset{Users: 30, Articles: 20, Comments: 40, Votes: 60, Seed: 17}
	b := startBackend(t, InterleavedJoins, func(c *client.Client) Backend { return &Interleaved{C: c} })
	if err := d.Populate(b); err != nil {
		t.Fatal(err)
	}
	ops := d.Sessions(400, 0.5, 21)
	if _, err := RunSessions(b, ops, 8); err != nil {
		t.Fatal(err)
	}
}
