// Package newp implements the paper's Hacker-News-like example
// application with user karma (§2.3, §5.4): articles, comments, votes,
// and article pages assembled either from interleaved cache joins (one
// contiguous page| range, Fig 1) or from separate aggregate ranges read
// with many gets in two round trips.
package newp

import (
	"fmt"
	"math/rand"

	"pequod/internal/client"
	"pequod/internal/keys"
)

// InterleavedJoins is the Fig 1 join set: separate karma and rank views
// plus the interleaving page| joins, including the join-on-join that
// copies each commenter's karma next to their comment.
const InterleavedJoins = `
  karma|<author> = count vote|<author>|<id>|<voter>;
  rank|<author>|<id> = count vote|<author>|<id>|<voter>;
  page|<author>|<id>|a = copy article|<author>|<id>;
  page|<author>|<id>|r = copy rank|<author>|<id>;
  page|<author>|<id>|c|<cid>|<commenter> = copy comment|<author>|<id>|<cid>|<commenter>;
  page|<author>|<id>|k|<cid>|<commenter> = check comment|<author>|<id>|<cid>|<commenter> copy karma|<commenter>
`

// AggregateJoins is the non-interleaved variant's join set (§5.4): karma
// and vote counts are still precomputed server-side, but in their own
// ranges; page assembly is client work.
const AggregateJoins = `
  karma|<author> = count vote|<author>|<id>|<voter>;
  rank|<author>|<id> = count vote|<author>|<id>|<voter>
`

// UserID formats a user index (fixed width for prefix-freedom).
func UserID(i int32) string { return fmt.Sprintf("n%06d", i) }

// ArticleID formats an article index.
func ArticleID(i int32) string { return fmt.Sprintf("a%07d", i) }

// CommentID formats a comment index.
func CommentID(i int64) string { return fmt.Sprintf("c%08d", i) }

// Article identifies one article by author and id.
type Article struct {
	Author int32
	ID     int32
}

// Backend reads and writes Newp data; the two implementations differ
// only in page assembly, which is the Figure 9 comparison.
type Backend interface {
	Name() string
	// WriteArticle creates an article.
	WriteArticle(a Article, text string) error
	// Comment adds a comment by commenter.
	Comment(a Article, cid int64, commenter int32, text string) error
	// Vote records voter's vote on a.
	Vote(a Article, voter int32) error
	// ReadArticle renders the page, returning the number of data items
	// fetched (article, rank, comments, karmas).
	ReadArticle(a Article) (int, error)
}

// --- Interleaved (single scan on page|) ---

// Interleaved reads article pages with one scan over the interleaved
// page| range: "Newp can issue one scan ... to retrieve all of the
// disparate data needed to render an article page" (§2.3).
type Interleaved struct {
	C *client.Client
}

// Name implements Backend.
func (b *Interleaved) Name() string { return "Interleaved" }

// WriteArticle implements Backend.
func (b *Interleaved) WriteArticle(a Article, text string) error {
	return b.C.Put(keys.Join("article", UserID(a.Author), ArticleID(a.ID)), text)
}

// Comment implements Backend.
func (b *Interleaved) Comment(a Article, cid int64, commenter int32, text string) error {
	return b.C.Put(keys.Join("comment", UserID(a.Author), ArticleID(a.ID), CommentID(cid), UserID(commenter)), text)
}

// Vote implements Backend.
func (b *Interleaved) Vote(a Article, voter int32) error {
	return b.C.Put(keys.Join("vote", UserID(a.Author), ArticleID(a.ID), UserID(voter)), "1")
}

// ReadArticle implements Backend: one scan.
func (b *Interleaved) ReadArticle(a Article) (int, error) {
	lo := keys.Join("page", UserID(a.Author), ArticleID(a.ID)) + "|"
	kvs, err := b.C.Scan(lo, keys.PrefixEnd(lo), 0)
	return len(kvs), err
}

// --- Non-interleaved (many gets in two round trips) ---

// NonInterleaved assembles pages from separate ranges: "constructing an
// article requires many RPCs in two round trips" (§5.4) — round one for
// the article, its rank, and its comments; round two for each
// commenter's karma.
type NonInterleaved struct {
	C *client.Client
}

// Name implements Backend.
func (b *NonInterleaved) Name() string { return "Non-interleaved" }

// WriteArticle implements Backend.
func (b *NonInterleaved) WriteArticle(a Article, text string) error {
	return b.C.Put(keys.Join("article", UserID(a.Author), ArticleID(a.ID)), text)
}

// Comment implements Backend.
func (b *NonInterleaved) Comment(a Article, cid int64, commenter int32, text string) error {
	return b.C.Put(keys.Join("comment", UserID(a.Author), ArticleID(a.ID), CommentID(cid), UserID(commenter)), text)
}

// Vote implements Backend.
func (b *NonInterleaved) Vote(a Article, voter int32) error {
	return b.C.Put(keys.Join("vote", UserID(a.Author), ArticleID(a.ID), UserID(voter)), "1")
}

// ReadArticle implements Backend: two pipelined round trips.
func (b *NonInterleaved) ReadArticle(a Article) (int, error) {
	author, id := UserID(a.Author), ArticleID(a.ID)
	// Round trip 1: article text, vote count, comments.
	fArticle := b.C.GetAsync(keys.Join("article", author, id))
	fRank := b.C.GetAsync(keys.Join("rank", author, id))
	cLo := keys.Join("comment", author, id) + "|"
	fComments := b.C.ScanAsync(cLo, keys.PrefixEnd(cLo), 0, false)

	items := 0
	if m, err := fArticle.Wait(); err != nil {
		return 0, err
	} else if m.Found {
		items++
	}
	if m, err := fRank.Wait(); err != nil {
		return 0, err
	} else if m.Found {
		items++
	}
	mc, err := fComments.Wait()
	if err != nil {
		return 0, err
	}
	items += len(mc.KVs)

	// Round trip 2: karma for each commenter.
	futs := make([]*client.Future, 0, len(mc.KVs))
	for _, kv := range mc.KVs {
		commenter := keys.Split(kv.Key)[4]
		futs = append(futs, b.C.GetAsync("karma|"+commenter))
	}
	for _, f := range futs {
		m, err := f.Wait()
		if err != nil {
			return 0, err
		}
		if m.Found {
			items++
		}
	}
	return items, nil
}

// --- Workload (§5.4) ---

// Dataset sizes one experiment; the paper pre-populates 100K articles,
// 50K users, 1M comments, and 2M votes, then simulates 20M sessions.
type Dataset struct {
	Users    int
	Articles int
	Comments int
	Votes    int
	Seed     int64

	articles []Article
}

// Populate writes the initial data through the backend (untimed setup).
func (d *Dataset) Populate(b Backend) error {
	rng := rand.New(rand.NewSource(d.Seed))
	d.articles = make([]Article, d.Articles)
	for i := range d.articles {
		d.articles[i] = Article{Author: int32(rng.Intn(d.Users)), ID: int32(i)}
		if err := b.WriteArticle(d.articles[i], fmt.Sprintf("article %d body", i)); err != nil {
			return err
		}
	}
	for i := 0; i < d.Comments; i++ {
		a := d.articles[rng.Intn(len(d.articles))]
		if err := b.Comment(a, int64(i), int32(rng.Intn(d.Users)), "a comment"); err != nil {
			return err
		}
	}
	for i := 0; i < d.Votes; i++ {
		a := d.articles[rng.Intn(len(d.articles))]
		if err := b.Vote(a, int32(rng.Intn(d.Users))); err != nil {
			return err
		}
	}
	return nil
}

// SessionOp is one user session's actions, pre-generated for determinism.
type SessionOp struct {
	Article   Article
	Vote      bool
	Voter     int32
	Comment   bool
	CID       int64
	Commenter int32
}

// Sessions generates n sessions: "each user reads a random article; with
// a varying chance votes on the article; and independently with a 1%
// chance comments" (§5.4).
func (d *Dataset) Sessions(n int, voteRate float64, seed int64) []SessionOp {
	rng := rand.New(rand.NewSource(seed))
	out := make([]SessionOp, n)
	cid := int64(d.Comments)
	for i := range out {
		op := SessionOp{Article: d.articles[rng.Intn(len(d.articles))]}
		if rng.Float64() < voteRate {
			op.Vote = true
			op.Voter = int32(rng.Intn(d.Users))
		}
		if rng.Float64() < 0.01 {
			op.Comment = true
			cid++
			op.CID = cid
			op.Commenter = int32(rng.Intn(d.Users))
		}
		out[i] = op
	}
	return out
}

// RunSessions executes sessions through the backend with the given worker
// count, returning total items fetched.
func RunSessions(b Backend, ops []SessionOp, workers int) (int64, error) {
	type result struct {
		items int64
		err   error
	}
	ch := make(chan result, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			var items int64
			for i := w; i < len(ops); i += workers {
				op := ops[i]
				n, err := b.ReadArticle(op.Article)
				if err != nil {
					ch <- result{err: err}
					return
				}
				items += int64(n)
				if op.Vote {
					if err := b.Vote(op.Article, op.Voter); err != nil {
						ch <- result{err: err}
						return
					}
				}
				if op.Comment {
					if err := b.Comment(op.Article, op.CID, op.Commenter, "session comment"); err != nil {
						ch <- result{err: err}
						return
					}
				}
			}
			ch <- result{items: items}
		}(w)
	}
	var total int64
	for w := 0; w < workers; w++ {
		r := <-ch
		if r.err != nil {
			return 0, r.err
		}
		total += r.items
	}
	return total, nil
}
