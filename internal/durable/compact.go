package durable

// Log compaction below the snapshot cadence. Snapshots already bound
// replay, but between snapshots a write-heavy range accumulates dead
// overwrites: every superseded put and remove is replayed at restart
// just to be overwritten again. Compaction rewrites a sealed segment
// in place — same index, keeping only records that are still the final
// record for their key across the whole sealed range — so replay cost
// tracks live data, not write volume.
//
// Invariants:
//
//   - Only sealed segments compact: index >= the newest committed
//     snapshot (older ones are replay-irrelevant leftovers) and < the
//     segment currently being appended. The live segment is never
//     touched.
//   - A record is dropped only when a *later* record for the same key
//     exists within the sealed range (a later put supersedes it; a
//     later remove supersedes it). Surviving records keep their
//     original relative order, so last-record-wins replay reaches the
//     same state — with or without the snapshot underneath, because a
//     dropped record's key is rewritten by the later record either way.
//   - The rewrite is atomic: tmp + fsync + rename + dirsync, the same
//     protocol as snapshots. A crash at any point leaves either the old
//     or the new file; the tmp is cleaned at the next Open.
//   - Damaged segments are left alone. scanRecords stops at the first
//     bad frame, so rewriting a corrupt segment would silently discard
//     the walled-off suffix and destroy the evidence the scrub reports.
//   - One pass rewrites at most the configured byte budget, so
//     compaction I/O never competes with the hot path for long.

import (
	"bufio"
	"fmt"
	"os"
)

const (
	defaultCompactRatio  = 0.5
	defaultCompactBudget = int64(8 << 20)
	// minCompactBytes leaves tiny segments alone: the rewrite costs a
	// file cycle + fsync and saves almost nothing.
	minCompactBytes = int64(4 << 10)
)

// Compact runs one compaction pass: sealed segments whose live-record
// ratio is below the configured threshold are rewritten at the same
// index without their dead records. Returns segments rewritten and
// bytes reclaimed. Safe to call concurrently with appends and reads;
// it serializes with Snapshot, Recover-via-ReadRange, and other passes
// on snapMu.
func (s *Store) Compact() (segments int, reclaimed int64, err error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() (int, int64, error) {
	s.fmu.Lock()
	cur := s.segIdx
	s.fmu.Unlock()
	segs, _, err := scanDir(s.dir)
	if err != nil {
		return 0, 0, err
	}
	sealed := segs[:0:0]
	for _, idx := range segs {
		if idx >= cur {
			break // current segment and beyond: live
		}
		if s.snapIdx > 0 && idx < s.snapIdx {
			continue // below the snapshot: replay-irrelevant
		}
		sealed = append(sealed, idx)
	}
	if len(sealed) == 0 {
		return 0, 0, nil
	}

	// Pass 1: find each key's final record location across the sealed
	// range, plus per-segment record counts. Liveness must be global —
	// a record is dead only if a later record for its key exists
	// anywhere in the sealed range, not merely later in its own
	// segment.
	type loc struct {
		seg int64
		rec int
	}
	final := make(map[string]loc)
	type segInfo struct {
		records int
		size    int64
		clean   bool
	}
	info := make(map[int64]segInfo, len(sealed))
	for _, idx := range sealed {
		i := 0
		n, clean, err := readRecords(segPath(s.dir, idx), func(_ byte, k, _ string) {
			final[k] = loc{seg: idx, rec: i}
			i++
		})
		if err != nil {
			return 0, 0, fmt.Errorf("durable: compact: %w", err)
		}
		fi, err := os.Stat(segPath(s.dir, idx))
		size := int64(0)
		if err == nil {
			size = fi.Size()
		}
		info[idx] = segInfo{records: n, size: size, clean: clean}
	}

	// Pass 2: rewrite segments under the live threshold, oldest first,
	// within the byte budget.
	budget := s.compactBudget
	var done int
	var saved int64
	for _, idx := range sealed {
		si := info[idx]
		if !si.clean || si.records == 0 || si.size < minCompactBytes || si.size > budget {
			continue
		}
		live := 0
		i := 0
		readRecords(segPath(s.dir, idx), func(_ byte, k, _ string) { //nolint:errcheck // read once already
			if final[k] == (loc{seg: idx, rec: i}) {
				live++
			}
			i++
		})
		if float64(live) >= s.compactRatio*float64(si.records) {
			continue
		}
		n, err := s.rewriteSegment(idx, func(rec int, key string) bool {
			return final[key] == (loc{seg: idx, rec: rec})
		})
		if err != nil {
			return done, saved, err
		}
		budget -= si.size
		done++
		saved += si.size - n
	}
	if done > 0 {
		s.maintMu.Lock()
		s.compactions += int64(done)
		s.reclaimed += saved
		// The rewritten files are clean by construction.
		s.maintMu.Unlock()
	}
	return done, saved, nil
}

// rewriteSegment rewrites segment idx keeping only records for which
// keep(recordIndex, key) is true, atomically (tmp+fsync+rename+
// dirsync). Returns the new file size.
func (s *Store) rewriteSegment(idx int64, keep func(rec int, key string) bool) (int64, error) {
	tmp := segPath(s.dir, idx) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("durable: compact: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var scratch []byte
	var size int64
	i := 0
	_, _, rerr := readRecords(segPath(s.dir, idx), func(op byte, k, v string) {
		if keep(i, k) {
			scratch = appendRecord(scratch[:0], op, k, v)
			bw.Write(scratch) //nolint:errcheck // surfaced by Flush below
			size += int64(len(scratch))
		}
		i++
	})
	if rerr == nil {
		rerr = bw.Flush()
	}
	if rerr == nil {
		rerr = f.Sync()
	}
	if cerr := f.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("durable: compact: %w", rerr)
	}
	if err := os.Rename(tmp, segPath(s.dir, idx)); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("durable: compact: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return 0, fmt.Errorf("durable: compact: %w", err)
	}
	return size, nil
}
