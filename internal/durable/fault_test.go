package durable

// Fault-injection suite for the durable layer: a failpoint writer
// wraps the segment file so tests can inject short writes, write
// errors, and fsync failures at exact points, plus direct on-disk bit
// flips and simulated crash states (tmp files left behind, uncommitted
// snapshots), driving replay and scrub assertions.

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"
)

var errInjected = errors.New("injected fault")

// faultPlan is programmable failure state shared by every segment file
// the store opens — rotation replaces the file but keeps the plan, so
// a persistent-failure scenario keeps failing across rotations.
type faultPlan struct {
	mu          sync.Mutex
	shortWrites int  // next N writes land half their bytes, then error
	failWrites  int  // next N writes fail outright
	failSyncs   int  // next N fsyncs fail (write succeeds)
	failAll     bool // every write fails, regardless of counters
}

func (fp *faultPlan) set(f func(*faultPlan)) {
	fp.mu.Lock()
	f(fp)
	fp.mu.Unlock()
}

// faultFile wraps a segment file, consulting the shared plan on every
// operation.
type faultFile struct {
	f    *os.File
	plan *faultPlan
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.plan.mu.Lock()
	short := ff.plan.shortWrites > 0
	if short {
		ff.plan.shortWrites--
	}
	fail := ff.plan.failAll || ff.plan.failWrites > 0
	if ff.plan.failWrites > 0 {
		ff.plan.failWrites--
	}
	ff.plan.mu.Unlock()
	if short {
		n, _ := ff.f.Write(p[:len(p)/2])
		return n, fmt.Errorf("short write: %w", errInjected)
	}
	if fail {
		return 0, errInjected
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.plan.mu.Lock()
	fail := ff.plan.failSyncs > 0
	if fail {
		ff.plan.failSyncs--
	}
	ff.plan.mu.Unlock()
	if fail {
		return fmt.Errorf("fsync: %w", errInjected)
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error { return ff.f.Truncate(size) }
func (ff *faultFile) Close() error              { return ff.f.Close() }

// faultStore opens a store whose every segment file is wrapped with
// the returned plan. The sync interval is effectively infinite so the
// only flushes are the test's explicit Sync calls — each one is
// exactly one write attempt, which keeps retry-budget scenarios
// deterministic.
func faultStore(t *testing.T, dir string) (*Store, *faultPlan) {
	t.Helper()
	plan := &faultPlan{}
	s, err := OpenWith(dir, Options{
		SyncEvery: time.Hour,
		wrapSeg: func(_ int64, f *os.File) segFile {
			return &faultFile{f: f, plan: plan}
		},
	})
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, plan
}

// Regression for the tentpole bug: a short write used to leave torn
// bytes mid-segment with the store still appending behind them, so
// every later fsynced batch was silently walled off at replay. The
// store must rotate to a fresh segment and the good batch written
// after the fault must replay.
func TestFlushRotatesAfterShortWrite(t *testing.T) {
	dir := t.TempDir()
	s, plan := faultStore(t, dir)
	plan.set(func(p *faultPlan) { p.shortWrites = 1 })
	s.Append(OpPut, "a", "1")
	s.Sync() //nolint:errcheck // fails: short write leaves a torn half-batch

	// The fault is one-shot, so the retried batch plus this one land on
	// the rotated segment.
	s.Append(OpPut, "b", "2")
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync after fault cleared: %v", err)
	}
	st := s.Stats()
	if st.FailedRotations == 0 {
		t.Fatalf("stats = %+v, want a failed-write rotation", st)
	}
	if st.PendingRecords != 0 || st.Dropped != 0 || st.Err != "" {
		t.Fatalf("stats = %+v, want no pending, no drops, no sticky error", st)
	}
	s.Close()

	rec := recovered(t, dir)
	want := []KV{{"a", "1"}, {"b", "2"}}
	if !reflect.DeepEqual(rec.KVs, want) {
		t.Fatalf("recovered %v, want %v — the batch after the short write must replay", rec.KVs, want)
	}
	if len(rec.CorruptSegments) != 0 {
		t.Fatalf("corrupt segments %v, want none: the torn half-batch must be truncated away", rec.CorruptSegments)
	}
}

func TestFlushRetriesTransientFailure(t *testing.T) {
	dir := t.TempDir()
	s, plan := faultStore(t, dir)
	plan.set(func(p *faultPlan) { p.failWrites = 2 })
	s.Append(OpPut, "k", "v")
	if err := s.Sync(); err == nil {
		t.Fatal("Sync = nil during injected failure, want the error while the batch is pending")
	}
	st := s.Stats()
	if st.PendingRecords == 0 {
		t.Fatalf("stats = %+v, want pending records while retrying", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("stats = %+v, want no drops — the batch must be retried, not abandoned", st)
	}
	// Each Sync is one retry attempt; the second consumes the last
	// injected failure and the third lands the batch.
	var err error
	for i := 0; i < 5 && (i == 0 || err != nil); i++ {
		err = s.Sync()
	}
	if err != nil {
		t.Fatalf("Sync after faults drained: %v", err)
	}
	st = s.Stats()
	if st.PendingRecords != 0 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want batch landed with no drops", st)
	}
	s.Close()
	rec := recovered(t, dir)
	if !reflect.DeepEqual(rec.KVs, []KV{{"k", "v"}}) {
		t.Fatalf("recovered %v, want the retried batch", rec.KVs)
	}
}

func TestFlushDropsAfterRetryBudget(t *testing.T) {
	dir := t.TempDir()
	s, plan := faultStore(t, dir)
	plan.set(func(p *faultPlan) { p.failAll = true })
	s.Append(OpPut, "k", "v")
	for i := 0; i < maxFlushRetries+5; i++ {
		s.Sync() //nolint:errcheck // draining the budget
	}
	st := s.Stats()
	if st.Dropped == 0 {
		t.Fatalf("stats = %+v, want the batch dropped once the retry budget exhausts", st)
	}
	if st.PendingRecords != 0 {
		t.Fatalf("stats = %+v, want nothing pending after the drop", st)
	}
	if st.Err == "" {
		t.Fatalf("stats = %+v, want the failure recorded", st)
	}
	if lag := s.LagBytes(); lag != 0 {
		t.Fatalf("lag = %d after drop, want 0", lag)
	}
}

func TestFsyncFailureKeepsBatchPending(t *testing.T) {
	dir := t.TempDir()
	s, plan := faultStore(t, dir)
	plan.set(func(p *faultPlan) { p.failSyncs = 1 })
	s.Append(OpPut, "k", "v")
	if err := s.Sync(); err == nil {
		t.Fatal("Sync = nil when fsync failed, want the error")
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync after fsync fault cleared: %v", err)
	}
	s.Close()
	rec := recovered(t, dir)
	if !reflect.DeepEqual(rec.KVs, []KV{{"k", "v"}}) {
		t.Fatalf("recovered %v, want the batch whose first fsync failed", rec.KVs)
	}
	// The fsync-failed bytes were truncated and rewritten on the
	// rotated segment; both copies replaying would still be idempotent,
	// but the lineage must at least be undamaged.
	if len(rec.CorruptSegments) != 0 {
		t.Fatalf("corrupt segments %v, want none", rec.CorruptSegments)
	}
}

// flipByteInFrame flips one payload byte of the first frame of the
// file, breaking its CRC without truncating anything.
func flipByteInFrame(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if len(data) <= frameHeader {
		t.Fatalf("%s too short to corrupt (%d bytes)", path, len(data))
	}
	data[frameHeader] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

// threeGenerations builds a lineage of two sealed segments plus the
// current one: gen1 writes a/b into segment 1, gen2 writes c/d into
// segment 2, and the returned open store appends to segment 3.
func threeGenerations(t *testing.T, dir string) *Store {
	t.Helper()
	for gen, kvs := range [][2]string{{"a", "b"}, {"c", "d"}} {
		s := openT(t, dir)
		s.Append(OpPut, kvs[0], fmt.Sprint(gen))
		s.Append(OpPut, kvs[1], fmt.Sprint(gen))
		if err := s.Sync(); err != nil {
			t.Fatalf("Sync gen%d: %v", gen, err)
		}
		s.Close()
	}
	return openT(t, dir)
}

func TestRecoverSplitsTornFromCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := threeGenerations(t, dir)
	s.Close()

	// A bit flip in segment 1 — two generations back — is mid-lineage
	// damage: the next store's crash segment is segment 2, so the flip
	// must land in CorruptSegments, not Torn.
	flipByteInFrame(t, segPath(dir, 1))
	rec := recovered(t, dir)
	if rec.Torn {
		t.Fatalf("recovered %+v: mid-lineage damage misreported as a crash tail", rec)
	}
	if !reflect.DeepEqual(rec.CorruptSegments, []int64{1}) {
		t.Fatalf("corrupt segments %v, want [1]", rec.CorruptSegments)
	}
	// Replay proceeds over the hole: segment 1's suffix is lost but
	// segment 2's records survive.
	if !reflect.DeepEqual(rec.KVs, []KV{{"c", "1"}, {"d", "1"}}) {
		t.Fatalf("recovered %v, want segment 2's records despite segment 1's damage", rec.KVs)
	}
}

func TestRecoverTreatsCrashTailAsTornAndHealsIt(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(OpPut, "k", "v")
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	s.Close()
	// Simulate the crash window: garbage appended to what was the
	// newest segment.
	f, err := os.OpenFile(segPath(dir, 1), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	f.Write([]byte{0xff, 0x03, 0x00}) //nolint:errcheck
	f.Close()

	rec := recovered(t, dir)
	if !rec.Torn || len(rec.CorruptSegments) != 0 {
		t.Fatalf("recovered %+v, want Torn with no corrupt segments: the final segment's tail is the expected crash window", rec)
	}
	if !reflect.DeepEqual(rec.KVs, []KV{{"k", "v"}}) {
		t.Fatalf("recovered %v, want the pre-tear record", rec.KVs)
	}

	// Recover truncates the tail, so the next generation sees a clean
	// lineage — Torn was that restart's observation, not a permanent
	// stain.
	rec2 := recovered(t, dir)
	if rec2.Torn || len(rec2.CorruptSegments) != 0 {
		t.Fatalf("second recovery %+v, want the healed tail to replay clean", rec2)
	}
}

func TestScrubDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	s := threeGenerations(t, dir)
	flipByteInFrame(t, segPath(dir, 1))
	if err := s.Scrub(); err == nil {
		t.Fatal("Scrub = nil over a flipped frame, want an error")
	}
	st := s.Stats()
	if !reflect.DeepEqual(st.CorruptSegments, []int64{1}) {
		t.Fatalf("stats corrupt segments = %v, want [1]", st.CorruptSegments)
	}
	if st.ScrubRuns == 0 {
		t.Fatalf("stats = %+v, want the scrub pass counted", st)
	}
}

func TestScrubDetectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(OpPut, "k", "v")
	err := s.Snapshot(func(addKV func(k, v string), _ func(join int, lo, hi string)) error {
		addKV("k", "v")
		return nil
	})
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	flipByteInFrame(t, snapPath(dir, 2))
	if err := s.Scrub(); err == nil {
		t.Fatal("Scrub = nil over a flipped snapshot, want an error")
	}
	st := s.Stats()
	if !reflect.DeepEqual(st.CorruptSnapshots, []int64{2}) {
		t.Fatalf("stats corrupt snapshots = %v, want [2]", st.CorruptSnapshots)
	}
}

func TestScrubIgnoresHealthyLineage(t *testing.T) {
	dir := t.TempDir()
	s := threeGenerations(t, dir)
	if err := s.Scrub(); err != nil {
		t.Fatalf("Scrub over a healthy lineage: %v", err)
	}
	st := s.Stats()
	if len(st.CorruptSegments) != 0 || len(st.CorruptSnapshots) != 0 {
		t.Fatalf("stats = %+v, want no damage on a healthy lineage", st)
	}
}

func TestScrubDamageClearsWhenFilePruned(t *testing.T) {
	dir := t.TempDir()
	s := threeGenerations(t, dir)
	flipByteInFrame(t, segPath(dir, 1))
	s.Scrub() //nolint:errcheck
	if st := s.Stats(); len(st.CorruptSegments) == 0 {
		t.Fatalf("stats = %+v, want the flip detected first", st)
	}
	// A snapshot prunes every older segment — including the damaged one.
	err := s.Snapshot(func(addKV func(k, v string), _ func(join int, lo, hi string)) error {
		addKV("k", "v")
		return nil
	})
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := s.Scrub(); err != nil {
		t.Fatalf("Scrub after prune: %v", err)
	}
	if st := s.Stats(); len(st.CorruptSegments) != 0 {
		t.Fatalf("stats = %+v, want damage cleared once the lineage no longer includes the file", st)
	}
}

// A crash between writing a rewrite's tmp file and the rename leaves a
// *.tmp stray; Open must discard it and replay the original intact.
func TestCompactionCrashLeavesLineageIntact(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(OpPut, "k", "v1")
	s.Append(OpPut, "k", "v2")
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	s.Close()
	// Simulated crash point: the tmp exists (fully written or torn —
	// either way it is not part of the lineage), the rename never
	// happened.
	if err := os.WriteFile(segPath(dir, 1)+".tmp", []byte("torn rewrite"), 0o644); err != nil {
		t.Fatalf("plant tmp: %v", err)
	}
	rec := recovered(t, dir)
	if !reflect.DeepEqual(rec.KVs, []KV{{"k", "v2"}}) {
		t.Fatalf("recovered %v, want the original segment to win over the abandoned rewrite", rec.KVs)
	}
	if _, err := os.Stat(segPath(dir, 1) + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("stray rewrite tmp not cleaned at Open (stat err=%v)", err)
	}
}
