package durable

// Snapshots, recovery replay, and the meta file. See the package
// comment for the rotate-first snapshot protocol and why it is correct
// without a global pause.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot-file record ops (on-disk; append only). Snapshot files reuse
// the log's framing with their own op space: rows, warm coverage, and a
// trailing commit marker without which the file is ignored by recovery.
const (
	opSnapKV     = byte(3)
	opSnapWarm   = byte(4)
	opSnapCommit = byte(5)
)

// KV is one stored row.
type KV struct {
	Key   string
	Value string
}

// Warm is one previously valid computed range: Join indexes the
// engine's installed joins, in install order.
type Warm struct {
	Join   int
	Lo, Hi string
}

// Snapshot rotates the log and writes one snapshot: capture is called
// with emitters and must scan the member's state (each shard under its
// own lock), emitting every base row and every valid computed range.
// On success the snapshot commits and every older segment and snapshot
// is pruned. On any failure the previous lineage is left untouched.
func (s *Store) Snapshot(capture func(addKV func(k, v string), addWarm func(join int, lo, hi string)) error) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	// Rotate first: everything enqueued so far lands (fsynced) in the
	// old segment, and the scan below — which runs after the rotation —
	// observes at least those writes, so nothing pruned is lost.
	s.flush()
	s.fmu.Lock()
	idx := s.segIdx + 1
	s.fmu.Unlock()
	if err := s.openSegment(idx); err != nil {
		return err
	}

	tmp := snapPath(s.dir, idx) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var scratch []byte
	emit := func(op byte, key, value string) {
		scratch = appendRecord(scratch[:0], op, key, value)
		bw.Write(scratch)
	}
	captureErr := capture(
		func(k, v string) { emit(opSnapKV, k, v) },
		func(join int, lo, hi string) { emit(opSnapWarm, warmKey(join, lo), hi) },
	)
	if captureErr == nil {
		emit(opSnapCommit, "", "")
		captureErr = bw.Flush()
	}
	if captureErr == nil {
		captureErr = f.Sync()
	}
	if cerr := f.Close(); captureErr == nil {
		captureErr = cerr
	}
	if captureErr != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot: %w", captureErr)
	}
	if err := os.Rename(tmp, snapPath(s.dir, idx)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}

	// Committed: replay is now snap-idx + segments >= idx. Prune the
	// rest.
	segs, snaps, err := scanDir(s.dir)
	if err == nil {
		for _, i := range segs {
			if i < idx {
				os.Remove(segPath(s.dir, i))
			}
		}
		for _, i := range snaps {
			if i < idx {
				os.Remove(snapPath(s.dir, i))
			}
		}
	}
	s.snapIdx = idx
	s.lastSnap = time.Now()
	return nil
}

// Recovered is the result of replaying snapshot+log: the final
// surviving state (deletes collapsed), plus provenance stats that let
// tests and health surfaces assert data really came from disk.
type Recovered struct {
	KVs           []KV
	Warm          []Warm
	SnapshotIndex int64 // 0 = recovered from log alone (or nothing)
	SnapshotRows  int
	LogSegments   int
	LogRecords    int
	Torn          bool // a segment ended mid-record (crash tail)
}

// Recover replays the newest committed snapshot plus every log segment
// at or after it, returning the collapsed final state. Call it once,
// right after Open, before the member starts writing. A store with no
// history returns an empty result, not an error.
func (s *Store) Recover() (*Recovered, error) {
	segs, snaps, err := scanDir(s.dir)
	if err != nil {
		return nil, err
	}
	rec := &Recovered{}
	state := make(map[string]string)

	// Newest snapshot with an intact commit marker wins; an uncommitted
	// or corrupt one falls back to the lineage before it.
	for i := len(snaps) - 1; i >= 0; i-- {
		var kvs []KV
		var warm []Warm
		committed := false
		_, _, err := readRecords(snapPath(s.dir, snaps[i]), func(op byte, k, v string) {
			switch op {
			case opSnapKV:
				kvs = append(kvs, KV{Key: k, Value: v})
			case opSnapWarm:
				if j, lo, ok := parseWarmKey(k); ok {
					warm = append(warm, Warm{Join: j, Lo: lo, Hi: v})
				}
			case opSnapCommit:
				committed = true
			}
		})
		if err != nil || !committed {
			continue
		}
		rec.SnapshotIndex = snaps[i]
		rec.SnapshotRows = len(kvs)
		rec.Warm = warm
		for _, kv := range kvs {
			state[kv.Key] = kv.Value
		}
		break
	}

	for _, idx := range segs {
		if rec.SnapshotIndex > 0 && idx < rec.SnapshotIndex {
			continue // truncated by the snapshot
		}
		n, clean, err := readRecords(segPath(s.dir, idx), func(op byte, k, v string) {
			switch op {
			case OpPut:
				state[k] = v
			case OpRemove:
				delete(state, k)
			}
		})
		if err != nil {
			return nil, err
		}
		rec.LogSegments++
		rec.LogRecords += n
		if !clean {
			rec.Torn = true
		}
	}

	rec.KVs = make([]KV, 0, len(state))
	for k, v := range state {
		rec.KVs = append(rec.KVs, KV{Key: k, Value: v})
	}
	sort.Slice(rec.KVs, func(i, j int) bool { return rec.KVs[i].Key < rec.KVs[j].Key })
	return rec, nil
}

// ReadRange replays the store's current lineage restricted to keys in
// [lo, hi) (hi == "" means +inf) and returns the final surviving rows.
// This is the last-resort repair source: when no live member holds a
// warm copy of a dead range, the heir rebuilds it from whatever its own
// disk still holds. Everything enqueued so far is flushed first, so the
// result includes every write this member has acknowledged.
func (s *Store) ReadRange(lo, hi string) ([]KV, error) {
	if err := s.Sync(); err != nil {
		return nil, err
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	rec, err := s.Recover()
	if err != nil {
		return nil, err
	}
	out := rec.KVs[:0]
	for _, kv := range rec.KVs {
		if kv.Key >= lo && (hi == "" || kv.Key < hi) {
			out = append(out, kv)
		}
	}
	return out, nil
}

// SaveMeta atomically persists the member's cluster position. Callers
// race freely (RPC handlers, the snapshot loop, Close); metaMu keeps
// two saves from interleaving WriteFile/Rename on the shared tmp path
// and renaming a torn file into meta.json.
func (s *Store) SaveMeta(m *Meta) error {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	m.SavedUnixNano = time.Now().UnixNano()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := metaPath(s.dir) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("durable: save meta: %w", err)
	}
	if err := os.Rename(tmp, metaPath(s.dir)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: save meta: %w", err)
	}
	return syncDir(s.dir)
}

// LoadMeta reads the persisted cluster position; ok is false when none
// has ever been saved.
func (s *Store) LoadMeta() (m *Meta, ok bool, err error) {
	data, err := os.ReadFile(metaPath(s.dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("durable: load meta: %w", err)
	}
	m = &Meta{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, false, fmt.Errorf("durable: load meta: %w", err)
	}
	return m, true, nil
}

// warmKey packs a warm range's join index and low bound into the record
// key slot ("<join>\x00<lo>"); the high bound rides in the value slot.
func warmKey(join int, lo string) string {
	return strconv.Itoa(join) + "\x00" + lo
}

func parseWarmKey(k string) (join int, lo string, ok bool) {
	j, lo, found := strings.Cut(k, "\x00")
	if !found {
		return 0, "", false
	}
	n, err := strconv.Atoi(j)
	if err != nil {
		return 0, "", false
	}
	return n, lo, true
}
