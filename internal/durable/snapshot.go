package durable

// Snapshots, recovery replay, and the meta file. See the package
// comment for the rotate-first snapshot protocol and why it is correct
// without a global pause.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Snapshot-file record ops (on-disk; append only). Snapshot files reuse
// the log's framing with their own op space: rows, warm coverage, and a
// trailing commit marker without which the file is ignored by recovery.
const (
	opSnapKV     = byte(3)
	opSnapWarm   = byte(4)
	opSnapCommit = byte(5)
)

// KV is one stored row.
type KV struct {
	Key   string
	Value string
}

// Warm is one previously valid computed range: Join indexes the
// engine's installed joins, in install order.
type Warm struct {
	Join   int
	Lo, Hi string
}

// Snapshot rotates the log and writes one snapshot: capture is called
// with emitters and must scan the member's state (each shard under its
// own lock), emitting every base row and every valid computed range.
// On success the snapshot commits and every older segment and snapshot
// is pruned. On any failure the previous lineage is left untouched.
func (s *Store) Snapshot(capture func(addKV func(k, v string), addWarm func(join int, lo, hi string)) error) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	// Rotate first: everything enqueued so far lands (fsynced) in the
	// old segment, and the scan below — which runs after the rotation —
	// observes at least those writes, so nothing pruned is lost. A batch
	// held for flush retry is the one exception to "lands in the old
	// segment": it is not on disk yet, but the lock-holding scan sees
	// its effects, so it is in the snapshot — and when it later lands in
	// a segment >= idx, replaying it over the snapshot is idempotent.
	// flushMu is held across flush *and* rotation so the failed-write
	// path's own rotation cannot interleave and double-rotate.
	s.flushMu.Lock()
	s.flushLocked()
	s.fmu.Lock()
	idx := s.segIdx + 1
	s.fmu.Unlock()
	err := s.openSegment(idx)
	s.flushMu.Unlock()
	if err != nil {
		return err
	}

	tmp := snapPath(s.dir, idx) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var scratch []byte
	emit := func(op byte, key, value string) {
		scratch = appendRecord(scratch[:0], op, key, value)
		bw.Write(scratch)
	}
	captureErr := capture(
		func(k, v string) { emit(opSnapKV, k, v) },
		func(join int, lo, hi string) { emit(opSnapWarm, warmKey(join, lo), hi) },
	)
	if captureErr == nil {
		emit(opSnapCommit, "", "")
		captureErr = bw.Flush()
	}
	if captureErr == nil {
		captureErr = f.Sync()
	}
	if cerr := f.Close(); captureErr == nil {
		captureErr = cerr
	}
	if captureErr != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot: %w", captureErr)
	}
	if err := os.Rename(tmp, snapPath(s.dir, idx)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}

	// Committed: replay is now snap-idx + segments >= idx. Prune the
	// rest.
	segs, snaps, err := scanDir(s.dir)
	if err == nil {
		for _, i := range segs {
			if i < idx {
				os.Remove(segPath(s.dir, i))
			}
		}
		for _, i := range snaps {
			if i < idx {
				os.Remove(snapPath(s.dir, i))
			}
		}
	}
	s.snapIdx = idx
	s.lastSnap = time.Now()
	return nil
}

// SegmentReplay is per-segment replay provenance: which segment,
// how many intact records it contributed, how many bytes of it were
// intact, and whether it ended cleanly.
type SegmentReplay struct {
	Index   int64
	Records int
	Bytes   int64 // intact prefix length (== file size when Clean)
	Clean   bool
}

// Recovered is the result of replaying snapshot+log: the final
// surviving state (deletes collapsed), plus provenance that lets tests
// and health surfaces assert data really came from disk — and tell an
// expected crash tail apart from data-losing damage.
type Recovered struct {
	KVs           []KV
	Warm          []Warm
	SnapshotIndex int64 // 0 = recovered from log alone (or nothing)
	SnapshotRows  int
	LogSegments   int
	LogRecords    int
	Segments      []SegmentReplay

	// Torn means the segment that was newest at the last crash ended
	// mid-record — the expected exposure window of the write-behind
	// design, bounded by one sync interval; nothing before the tear is
	// lost. CorruptSegments and CorruptSnapshots list lineage files
	// with damage that is NOT that tail: a bad frame in a sealed
	// segment walls off its suffix, so acknowledged, fsynced writes
	// have been lost there. Recovery proceeds over the hole (serving
	// partial data beats serving nothing — replicas and the mesh
	// backfill), but the damage is surfaced via Stats and health
	// instead of being folded into Torn.
	Torn             bool
	CorruptSegments  []int64
	CorruptSnapshots []int64
}

// replayWorkers is the default parallelism for segment parsing during
// Recover: one goroutine per CPU, capped — parsing is CPU-bound (CRC +
// framing) and a restart replaying a big lineage should not serialize
// it behind one core.
func replayWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// parsedSeg is one segment parsed off disk, before folding.
type parsedSeg struct {
	recs  []segRec
	bytes int64
	size  int64
	clean bool
	err   error
}

type segRec struct {
	op         byte
	key, value string
}

// parseSegments reads and CRC-checks the given segments concurrently
// (workers goroutines), returning results in input order. Parsing is
// the expensive half of replay and is independent per segment; only
// the fold into final state (last-record-wins) is order-dependent, and
// the caller does that serially over the ordered results.
func parseSegments(dir string, segs []int64, workers int) []parsedSeg {
	out := make([]parsedSeg, len(segs))
	if workers < 1 {
		workers = 1
	}
	if workers > len(segs) {
		workers = len(segs)
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(segs) {
					return
				}
				data, err := os.ReadFile(segPath(dir, segs[i]))
				if err != nil {
					if os.IsNotExist(err) {
						out[i].clean = true
						continue
					}
					out[i].err = fmt.Errorf("durable: read segment %d: %w", segs[i], err)
					continue
				}
				recs := make([]segRec, 0, len(data)/32)
				_, off, clean := scanRecords(data, func(op byte, k, v string) {
					recs = append(recs, segRec{op: op, key: k, value: v})
				})
				out[i] = parsedSeg{recs: recs, bytes: int64(off), size: int64(len(data)), clean: clean}
			}
		}()
	}
	wg.Wait()
	return out
}

// Recover replays the newest committed snapshot plus every log segment
// at or after it, returning the collapsed final state. Call it once,
// right after Open, before the member starts writing. A store with no
// history returns an empty result, not an error. Segments are parsed
// in parallel; the expected crash tail on the previous run's final
// segment is truncated away so the file is clean for every later
// generation and for the scrub.
func (s *Store) Recover() (*Recovered, error) {
	return s.recover(replayWorkers())
}

func (s *Store) recover(workers int) (*Recovered, error) {
	segs, snaps, err := scanDir(s.dir)
	if err != nil {
		return nil, err
	}
	rec := &Recovered{}
	state := make(map[string]string)

	// Newest snapshot with an intact commit marker wins; an uncommitted
	// or corrupt one falls back to the lineage before it — and is
	// reported as damage, because Snapshot never leaves one behind on
	// the committed path (tmp files are cleaned at Open, older
	// snapshots pruned after commit).
	for i := len(snaps) - 1; i >= 0; i-- {
		var kvs []KV
		var warm []Warm
		committed := false
		_, clean, err := readRecords(snapPath(s.dir, snaps[i]), func(op byte, k, v string) {
			switch op {
			case opSnapKV:
				kvs = append(kvs, KV{Key: k, Value: v})
			case opSnapWarm:
				if j, lo, ok := parseWarmKey(k); ok {
					warm = append(warm, Warm{Join: j, Lo: lo, Hi: v})
				}
			case opSnapCommit:
				committed = true
			}
		})
		if err != nil || !clean || !committed {
			rec.CorruptSnapshots = append(rec.CorruptSnapshots, snaps[i])
			continue
		}
		if rec.SnapshotIndex > 0 {
			continue // older than the chosen one; prune will clear it
		}
		rec.SnapshotIndex = snaps[i]
		rec.SnapshotRows = len(kvs)
		rec.Warm = warm
		for _, kv := range kvs {
			state[kv.Key] = kv.Value
		}
	}
	sortInt64(rec.CorruptSnapshots)

	replay := segs[:0:0]
	for _, idx := range segs {
		if rec.SnapshotIndex > 0 && idx < rec.SnapshotIndex {
			continue // truncated by the snapshot
		}
		replay = append(replay, idx)
	}

	s.fmu.Lock()
	cur := s.segIdx
	s.fmu.Unlock()
	parsed := parseSegments(s.dir, replay, workers)
	for i, ps := range parsed {
		idx := replay[i]
		if ps.err != nil {
			return nil, ps.err
		}
		rec.LogSegments++
		rec.LogRecords += len(ps.recs)
		rec.Segments = append(rec.Segments, SegmentReplay{Index: idx, Records: len(ps.recs), Bytes: ps.bytes, Clean: ps.clean})
		if !ps.clean {
			switch {
			case idx == s.crashSeg || idx >= cur:
				// The segment that was newest at the last crash (or is
				// being appended right now): its tear is the expected
				// crash window. Truncate a sealed crash tail off so the
				// lineage is clean from here on — only ever the garbage
				// suffix, and never the live segment.
				rec.Torn = true
				if idx < cur {
					os.Truncate(segPath(s.dir, idx), ps.bytes) //nolint:errcheck // best effort; scrub re-reports
				}
			default:
				rec.CorruptSegments = append(rec.CorruptSegments, idx)
			}
		}
		for _, r := range ps.recs {
			switch r.op {
			case OpPut:
				state[r.key] = r.value
			case OpRemove:
				delete(state, r.key)
			}
		}
	}
	s.noteReplayDamage(rec.CorruptSegments, rec.CorruptSnapshots)

	rec.KVs = make([]KV, 0, len(state))
	for k, v := range state {
		rec.KVs = append(rec.KVs, KV{Key: k, Value: v})
	}
	sort.Slice(rec.KVs, func(i, j int) bool { return rec.KVs[i].Key < rec.KVs[j].Key })
	return rec, nil
}

// ReadRange replays the store's current lineage restricted to keys in
// [lo, hi) (hi == "" means +inf) and returns the final surviving rows.
// This is the last-resort repair source: when no live member holds a
// warm copy of a dead range, the heir rebuilds it from whatever its own
// disk still holds. Everything enqueued so far is flushed first, so the
// result includes every write this member has acknowledged.
func (s *Store) ReadRange(lo, hi string) ([]KV, error) {
	if err := s.Sync(); err != nil {
		return nil, err
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	rec, err := s.Recover()
	if err != nil {
		return nil, err
	}
	out := rec.KVs[:0]
	for _, kv := range rec.KVs {
		if kv.Key >= lo && (hi == "" || kv.Key < hi) {
			out = append(out, kv)
		}
	}
	return out, nil
}

// SaveMeta atomically persists the member's cluster position. Callers
// race freely (RPC handlers, the snapshot loop, Close); metaMu keeps
// two saves from interleaving WriteFile/Rename on the shared tmp path
// and renaming a torn file into meta.json.
func (s *Store) SaveMeta(m *Meta) error {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	m.SavedUnixNano = time.Now().UnixNano()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := metaPath(s.dir) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("durable: save meta: %w", err)
	}
	if err := os.Rename(tmp, metaPath(s.dir)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: save meta: %w", err)
	}
	return syncDir(s.dir)
}

// LoadMeta reads the persisted cluster position; ok is false when none
// has ever been saved.
func (s *Store) LoadMeta() (m *Meta, ok bool, err error) {
	data, err := os.ReadFile(metaPath(s.dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("durable: load meta: %w", err)
	}
	m = &Meta{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, false, fmt.Errorf("durable: load meta: %w", err)
	}
	return m, true, nil
}

// warmKey packs a warm range's join index and low bound into the record
// key slot ("<join>\x00<lo>"); the high bound rides in the value slot.
func warmKey(join int, lo string) string {
	return strconv.Itoa(join) + "\x00" + lo
}

func parseWarmKey(k string) (join int, lo string, ok bool) {
	j, lo, found := strings.Cut(k, "\x00")
	if !found {
		return 0, "", false
	}
	n, err := strconv.Atoi(j)
	if err != nil {
		return 0, "", false
	}
	return n, lo, true
}
