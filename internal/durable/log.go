package durable

// On-disk record framing, shared by log segments and snapshot files:
//
//	[u32 payload length][u32 CRC-32 (IEEE) of payload][payload]
//
// payload = op byte, uvarint key length, key bytes, uvarint value
// length, value bytes. A reader stops at the first frame that is
// truncated or fails its CRC — everything before a torn tail is intact
// because frames are written in order and fsynced in batches.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

const frameHeader = 8 // length + crc

// appendRecord frames one record onto buf, in place: it runs on the
// write path (under a shard lock, via Store.Append), so it must not
// allocate beyond growing buf itself.
func appendRecord(buf []byte, op byte, key, value string) []byte {
	var kl, vl [binary.MaxVarintLen64]byte
	kn := binary.PutUvarint(kl[:], uint64(len(key)))
	vn := binary.PutUvarint(vl[:], uint64(len(value)))
	plen := 1 + kn + len(key) + vn + len(value)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(plen))
	start := len(buf) + frameHeader
	buf = append(buf, hdr[:]...)
	buf = append(buf, op)
	buf = append(buf, kl[:kn]...)
	buf = append(buf, key...)
	buf = append(buf, vl[:vn]...)
	buf = append(buf, value...)
	binary.LittleEndian.PutUint32(buf[start-4:start], crc32.ChecksumIEEE(buf[start:]))
	return buf
}

// parseRecord decodes one payload.
func parseRecord(p []byte) (op byte, key, value string, err error) {
	if len(p) < 1 {
		return 0, "", "", fmt.Errorf("durable: empty record")
	}
	op = p[0]
	rest := p[1:]
	kl, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < kl {
		return 0, "", "", fmt.Errorf("durable: bad key length")
	}
	rest = rest[n:]
	key = string(rest[:kl])
	rest = rest[kl:]
	vl, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < vl {
		return 0, "", "", fmt.Errorf("durable: bad value length")
	}
	rest = rest[n:]
	value = string(rest[:vl])
	return op, key, value, nil
}

// scanRecords walks every intact record in a framed byte stream, in
// write order, stopping at the first frame that is truncated or fails
// its CRC. It returns the count of intact records, the byte offset of
// the end of the last intact frame (the known-good prefix length —
// what a post-crash truncation keeps), and whether the stream ended
// cleanly.
func scanRecords(data []byte, fn func(op byte, key, value string)) (n, off int, clean bool) {
	for {
		if off == len(data) {
			return n, off, true
		}
		if len(data)-off < frameHeader {
			return n, off, false // torn header
		}
		l := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if len(data)-off-frameHeader < l {
			return n, off, false // torn payload
		}
		p := data[off+frameHeader : off+frameHeader+l]
		if crc32.ChecksumIEEE(p) != crc {
			return n, off, false // corrupt tail
		}
		op, key, value, perr := parseRecord(p)
		if perr != nil {
			return n, off, false
		}
		fn(op, key, value)
		off += frameHeader + l
		n++
	}
}

// readRecords replays every intact record in a file in write order. A
// truncated or corrupt tail ends the replay silently (torn == 0 frames
// lost before it); a missing file replays nothing. Returns the count of
// intact records and whether the file ended cleanly (no torn tail).
func readRecords(path string, fn func(op byte, key, value string)) (n int, clean bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("durable: read %s: %w", path, err)
	}
	n, _, clean = scanRecords(data, fn)
	return n, clean, nil
}
