// Package durable is the per-member durable range store: an
// append-only write-behind log plus periodic snapshots, so a restarted
// member comes back with its gate, joins, and serving data warm instead
// of cold-loading everything through the mesh.
//
// The contract with the hot path is strict: Append only enqueues into
// an in-memory buffer (one mutexed slice append — it is called under a
// shard lock and must never touch the disk). A flusher goroutine drains
// the buffer on a configurable interval, writing one batched, CRC-framed
// write per tick and fsyncing it. Writes acknowledged inside the last
// un-synced interval are the exposure window; everything older survives
// a crash.
//
// A failed or short batch write never strands later batches behind torn
// bytes: the store truncates the segment back to its last known-good
// length (best effort), rotates to a fresh segment, and holds the batch
// for bounded retry across later flush ticks — the ticker is the
// backoff. Only when the retry budget exhausts is the batch dropped and
// counted; until then Sync keeps returning the failure so callers know
// acknowledged writes are not yet durable.
//
// Snapshots bound replay and truncate the log. The protocol is
// rotate-first: flush and fsync the current segment, open segment K,
// then capture state S (the caller scans its shards under their locks)
// and commit it as snap-K. Replay = S + every segment with index >= K.
// The rotation order makes this correct without a global pause: a write
// enqueued before the rotation went to a segment < K, and — because
// Append runs under the same shard lock as the store mutation — its
// effect is visible to the later lock-holding scan, so it is in S. A
// write enqueued after the rotation is in segment K and replays over S;
// re-applying records the scan already saw is idempotent because replay
// reduces to last-record-wins per key. Commit is tmp+fsync+rename with
// a trailing commit marker, so a crash mid-snapshot leaves the previous
// snapshot+segments lineage intact; only a committed snapshot prunes.
//
// Between snapshots, compaction (compact.go) rewrites sealed segments
// whose live-record ratio dropped below a threshold, and a scrub loop
// (scrub.go) CRC-walks the committed lineage so mid-lineage damage is
// noticed while the replica copies that could repair it still exist —
// not at the restart that needed the bytes.
//
// Alongside log and snapshots sits meta.json (atomic tmp+rename): the
// member's cluster position — partition map, peers, self set, installed
// join text, mesh tables, replica assignment — persisted on every
// membership event and on drain, so a restarted member re-gates and
// re-wires itself before serving a single key. Rekey rewrites that
// identity in place, the first step of restoring a dead member's
// lineage on a new address.
package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Op codes for log records. Values are on-disk format — append only.
const (
	OpPut    = byte(1)
	OpRemove = byte(2)
)

// DefaultSyncInterval paces the flusher when the server config leaves
// it zero: small enough that the unsynced exposure window is a blink,
// large enough that fsync cost amortizes over many writes.
const DefaultSyncInterval = 25 * time.Millisecond

// maxFlushRetries bounds how many flush ticks a failed batch is held
// for retry before it is dropped and counted. The ticker paces the
// retries, so the budget is also the backoff: with the default sync
// interval it spans about a second of persistent failure.
const maxFlushRetries = 40

// segFile is the store's view of an open segment: what flush and
// rotation need from *os.File, narrow enough for fault-injection tests
// to wrap with programmable failures.
type segFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// Options configures a Store beyond the directory.
type Options struct {
	// SyncEvery paces the write-behind flusher (0 = DefaultSyncInterval).
	SyncEvery time.Duration
	// ScrubEvery paces the background CRC scrub over committed segments
	// and snapshots (0 = no scrubbing). See Scrub.
	ScrubEvery time.Duration
	// CompactEvery paces background log compaction (0 = no compaction).
	// See Compact.
	CompactEvery time.Duration
	// CompactRatio is the live-record fraction below which a sealed
	// segment is rewritten without its dead records (0 = default 0.5).
	CompactRatio float64
	// CompactBudget bounds the bytes one compaction pass may rewrite
	// (0 = default 8 MiB) so compaction never monopolizes the disk.
	CompactBudget int64

	// wrapSeg, when non-nil (fault-injection tests), wraps every segment
	// file the store opens for appending.
	wrapSeg func(idx int64, f *os.File) segFile
}

// Store is one member's durable store rooted at a directory.
type Store struct {
	dir       string
	syncEvery time.Duration
	wrapSeg   func(idx int64, f *os.File) segFile

	compactRatio  float64
	compactBudget int64

	// Records are framed into buf at Append time: a pointer-free byte
	// buffer costs the GC nothing to scan and, unlike holding the
	// caller's key/value strings until the next flush, does not extend
	// their lifetime across collections — on the measured write path
	// that retention was the durability overhead, not the I/O.
	mu    sync.Mutex // guards buf, nrec, spare, and lag
	buf   []byte     // framed records pending flush
	nrec  int        // records in buf
	spare []byte     // recycled batch buffer, nil while a flush holds it
	lag   int64      // bytes enqueued but not yet fsynced

	// flushMu serializes entire flushes — batch swap through fsync — so
	// concurrent flush callers (ticker, Snapshot, Sync) cannot write
	// batches to the log out of enqueue order, and a Sync that finds the
	// buffer empty has necessarily waited for the in-flight batch to
	// reach disk. It also serializes segment rotation (Snapshot's
	// rotate-first step and the rotate-after-failed-write path), and it
	// alone guards the failed-batch retry state below. Ordered before mu
	// and fmu; never held by Append.
	flushMu      sync.Mutex
	pending      []byte // batch whose write failed, held for retry
	pendingRec   int    // records in pending
	pendingTries int    // flush attempts this batch has failed

	fmu      sync.Mutex // file state: current segment, rotation, reads
	seg      segFile
	segIdx   int64
	segBytes int64

	// crashSeg is the newest segment that existed when this store
	// opened — the only segment whose torn tail is the expected crash
	// window rather than mid-lineage damage. Recover truncates that
	// tail away so later generations (and the scrub) see a clean file.
	crashSeg int64

	metaMu sync.Mutex // serializes SaveMeta (fixed tmp path + rename)

	snapMu   sync.Mutex // serializes snapshots and compaction
	snapIdx  int64      // newest committed snapshot index (0 = none)
	lastSnap time.Time  // commit time of that snapshot

	emu       sync.Mutex // guards err, dropped, pendingN, rotations
	err       error      // most recent persistence failure, for stats
	dropped   int64      // records dropped because flush retries exhausted
	pendingN  int64      // records currently held for flush retry
	rotations int64      // segments rotated away after failed writes

	// maintMu guards the scrub and compaction bookkeeping (scrub.go,
	// compact.go).
	maintMu      sync.Mutex
	scrubRuns    int64
	lastScrub    time.Time
	corruptSegs  map[int64]bool
	corruptSnaps map[int64]bool
	compactions  int64
	reclaimed    int64

	stop      chan struct{}
	done      chan struct{}
	mdone     chan struct{} // nil when no maintenance loop runs
	closeOnce sync.Once
}

// Open opens (creating if needed) the durable store in dir and starts
// its flusher. Existing log segments and snapshots are left in place
// for Recover; new appends go to a fresh segment after them, so a
// segment torn by the previous crash is never appended to.
func Open(dir string, syncEvery time.Duration) (*Store, error) {
	return OpenWith(dir, Options{SyncEvery: syncEvery})
}

// OpenWith is Open with the full option set (scrub and compaction
// cadence, fault-injection hooks).
func OpenWith(dir string, opts Options) (*Store, error) {
	syncEvery := opts.SyncEvery
	if syncEvery <= 0 {
		syncEvery = DefaultSyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", dir, err)
	}
	// A crash mid-snapshot, mid-meta-save, or mid-compaction leaves a
	// *.tmp behind; the committed lineage never references one, so clear
	// them here rather than letting them accumulate (Snapshot's prune
	// only removes committed names).
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".tmp") {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	next := int64(1)
	if n := len(segs); n > 0 && segs[n-1]+1 > next {
		next = segs[n-1] + 1
	}
	if n := len(snaps); n > 0 && snaps[n-1]+1 > next {
		next = snaps[n-1] + 1
	}
	s := &Store{
		dir:           dir,
		syncEvery:     syncEvery,
		wrapSeg:       opts.wrapSeg,
		compactRatio:  opts.CompactRatio,
		compactBudget: opts.CompactBudget,
		corruptSegs:   make(map[int64]bool),
		corruptSnaps:  make(map[int64]bool),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	if s.compactRatio <= 0 || s.compactRatio >= 1 {
		s.compactRatio = defaultCompactRatio
	}
	if s.compactBudget <= 0 {
		s.compactBudget = defaultCompactBudget
	}
	if n := len(snaps); n > 0 {
		s.snapIdx = snaps[n-1]
	}
	if n := len(segs); n > 0 {
		s.crashSeg = segs[n-1]
	}
	if err := s.openSegment(next); err != nil {
		return nil, err
	}
	go s.flushLoop()
	if opts.ScrubEvery > 0 || opts.CompactEvery > 0 {
		s.mdone = make(chan struct{})
		go s.maintainLoop(opts.ScrubEvery, opts.CompactEvery)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Append enqueues one log record. It is called under a shard lock and
// therefore only frames the record onto the in-memory buffer; the
// flusher writes and fsyncs it on the next tick.
func (s *Store) Append(op byte, key, value string) {
	s.mu.Lock()
	was := len(s.buf)
	s.buf = appendRecord(s.buf, op, key, value)
	s.nrec++
	s.lag += int64(len(s.buf) - was)
	s.mu.Unlock()
}

// LagBytes reports the bytes enqueued but not yet fsynced — the crash
// exposure window, in data volume. Batches held for flush retry still
// count: they are acknowledged but not durable.
func (s *Store) LagBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lag
}

// flushLoop drains the buffer every sync interval until Close.
func (s *Store) flushLoop() {
	defer close(s.done)
	t := time.NewTicker(s.syncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			// Final drain so Close loses nothing that was enqueued.
			s.flush()
			return
		case <-t.C:
			s.flush()
		}
	}
}

// flush writes and fsyncs every pending record as one batch. flushMu
// makes swap-and-write atomic with respect to other flushes: without
// it, two in-flight flushes could swap batches under mu in one order
// and reach the segment in the other, and last-record-wins replay
// would then resurrect a stale value over a later acknowledged write.
func (s *Store) flush() {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.flushLocked()
}

// flushLocked is flush's body; the caller holds flushMu (Snapshot holds
// it across the flush *and* its rotation so a concurrent failed-write
// rotation cannot interleave).
func (s *Store) flushLocked() {
	s.mu.Lock()
	if len(s.buf) == 0 && len(s.pending) == 0 {
		s.mu.Unlock()
		return
	}
	batch, nrec := s.buf, s.nrec
	s.buf, s.nrec = s.spare[:0], 0
	s.spare = nil
	s.mu.Unlock()
	recycle := batch
	if len(s.pending) > 0 {
		// Prepend the batch awaiting retry: byte concatenation keeps the
		// log in enqueue order, so last-record-wins replay still sees
		// writes in acknowledgment order.
		batch = append(s.pending, batch...)
		nrec += s.pendingRec
		s.pending, s.pendingRec = nil, 0
		recycle = nil
	}
	s.fmu.Lock()
	err := writeAndSync(s.seg, batch)
	if err == nil {
		s.segBytes += int64(len(batch))
	}
	s.fmu.Unlock()
	if err != nil {
		s.failedFlush(batch, nrec, err)
		return
	}
	s.pendingTries = 0
	s.mu.Lock()
	s.lag -= int64(len(batch))
	if s.spare == nil && recycle != nil {
		s.spare = recycle[:0]
	}
	s.mu.Unlock()
	s.emu.Lock()
	s.err = nil
	s.pendingN = 0
	s.emu.Unlock()
}

// failedFlush handles a failed or short batch write. The segment may
// now end in torn bytes that would wall off every later fsynced batch
// at replay (readRecords stops at the first bad frame), so the store
// truncates back to the last known-good length (best effort — the
// scrub reports whatever remains) and rotates to a fresh segment
// unconditionally: later batches land on a clean file whatever state
// the old one is in. The batch itself is held and retried on later
// flush ticks — the ticker is the backoff — and only dropped, counted,
// once the retry budget exhausts; until it lands or drops, Sync keeps
// returning the error. Caller holds flushMu.
func (s *Store) failedFlush(batch []byte, nrec int, err error) {
	s.fmu.Lock()
	if s.seg != nil {
		s.seg.Truncate(s.segBytes) //nolint:errcheck // best effort
	}
	idx := s.segIdx + 1
	s.fmu.Unlock()
	if oerr := s.openSegment(idx); oerr == nil {
		s.emu.Lock()
		s.rotations++
		s.emu.Unlock()
	}
	s.pendingTries++
	if s.pendingTries <= maxFlushRetries {
		s.pending, s.pendingRec = batch, nrec
		s.emu.Lock()
		s.err = err
		s.pendingN = int64(nrec)
		s.emu.Unlock()
		return
	}
	// Budget exhausted: drop the batch — the member keeps serving from
	// memory exactly as it would with durability off — and make the
	// loss visible through Stats so health probes flag the member.
	s.pendingTries = 0
	s.mu.Lock()
	s.lag -= int64(len(batch))
	s.mu.Unlock()
	s.emu.Lock()
	s.err = err
	s.dropped += int64(nrec)
	s.pendingN = 0
	s.emu.Unlock()
}

// Sync flushes and fsyncs everything enqueued so far, synchronously.
// If another flush is mid-flight it waits for that batch to reach disk
// too (flushMu), so on return every previously enqueued record is
// durable or accounted for in the returned error — including batches
// still held for retry after a failed write, which keep Sync failing
// until they land or the retry budget drops them.
func (s *Store) Sync() error {
	s.flush()
	s.emu.Lock()
	defer s.emu.Unlock()
	return s.err
}

// Close drains the buffer one final time and releases the store. The
// final flush means a clean shutdown loses nothing regardless of the
// sync interval; a batch still failing at that point surfaces as the
// returned error.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		<-s.done
		if s.mdone != nil {
			<-s.mdone
		}
	})
	var err error
	s.emu.Lock()
	if s.pendingN > 0 {
		err = s.err
	}
	s.emu.Unlock()
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if s.seg != nil {
		cerr := s.seg.Close()
		s.seg = nil
		if err == nil {
			err = cerr
		}
	}
	return err
}

// maintainLoop drives the background scrub and compaction at their
// configured cadences until Close. Both are best-effort: failures are
// surfaced through Stats, never fatal — the store keeps logging.
func (s *Store) maintainLoop(scrubEvery, compactEvery time.Duration) {
	defer close(s.mdone)
	var scrubC, compactC <-chan time.Time
	if scrubEvery > 0 {
		t := time.NewTicker(scrubEvery)
		defer t.Stop()
		scrubC = t.C
	}
	if compactEvery > 0 {
		t := time.NewTicker(compactEvery)
		defer t.Stop()
		compactC = t.C
	}
	for {
		select {
		case <-s.stop:
			return
		case <-scrubC:
			s.Scrub() //nolint:errcheck // surfaced via Stats
		case <-compactC:
			s.Compact() //nolint:errcheck // surfaced via Stats
		}
	}
}

// Stats is a point-in-time durability report for health and stats
// surfaces.
type Stats struct {
	LagBytes      int64  `json:"lag_bytes"`                 // enqueued, not yet fsynced
	SegmentIndex  int64  `json:"segment"`                   // current log segment
	SegmentBytes  int64  `json:"segment_bytes"`             // bytes in it
	SnapshotIndex int64  `json:"snapshot"`                  // newest committed snapshot (0 = none)
	SnapshotAgeMS int64  `json:"snapshot_age_ms"`           // ms since it committed (-1 = none this run)
	Dropped       int64  `json:"dropped_records,omitempty"` // records lost after flush retries exhausted
	Err           string `json:"error,omitempty"`           // most recent persistence failure

	// PendingRecords counts records whose batch write failed and is
	// being retried; FailedRotations counts segments rotated away after
	// failed writes. Non-zero pending with zero dropped means the
	// member is riding out a transient disk failure without loss.
	PendingRecords  int64 `json:"pending_records,omitempty"`
	FailedRotations int64 `json:"failed_rotations,omitempty"`

	// Scrub and replay damage report. CorruptSegments/CorruptSnapshots
	// list committed lineage files with CRC or framing damage — data
	// has been lost there, unlike the final segment's expected crash
	// tail (Recovered.Torn). Populated by replay and by every scrub
	// pass; ScrubRuns counts completed passes.
	ScrubRuns        int64   `json:"scrub_runs,omitempty"`
	CorruptSegments  []int64 `json:"corrupt_segments,omitempty"`
	CorruptSnapshots []int64 `json:"corrupt_snapshots,omitempty"`

	// Compactions counts sealed segments rewritten below the live-record
	// threshold; ReclaimedBytes the dead bytes dropped doing it.
	Compactions    int64 `json:"compactions,omitempty"`
	ReclaimedBytes int64 `json:"reclaimed_bytes,omitempty"`
}

// Stats reports the store's current durability state.
func (s *Store) Stats() Stats {
	st := Stats{LagBytes: s.LagBytes(), SnapshotAgeMS: -1}
	s.fmu.Lock()
	st.SegmentIndex = s.segIdx
	st.SegmentBytes = s.segBytes
	s.fmu.Unlock()
	s.snapMu.Lock()
	st.SnapshotIndex = s.snapIdx
	if !s.lastSnap.IsZero() {
		st.SnapshotAgeMS = time.Since(s.lastSnap).Milliseconds()
	}
	s.snapMu.Unlock()
	s.emu.Lock()
	if s.err != nil {
		st.Err = s.err.Error()
	}
	st.Dropped = s.dropped
	st.PendingRecords = s.pendingN
	st.FailedRotations = s.rotations
	s.emu.Unlock()
	s.maintMu.Lock()
	st.ScrubRuns = s.scrubRuns
	st.CorruptSegments = sortedKeys(s.corruptSegs)
	st.CorruptSnapshots = sortedKeys(s.corruptSnaps)
	st.Compactions = s.compactions
	st.ReclaimedBytes = s.reclaimed
	s.maintMu.Unlock()
	return st
}

// sortedKeys flattens a damage set into a sorted index list.
func sortedKeys(m map[int64]bool) []int64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortInt64(out)
	return out
}

// openSegment opens wal segment idx for appending and makes it current.
// Caller must not hold fmu; rotation callers hold flushMu so two
// rotations (Snapshot's and the failed-write path's) cannot interleave.
func (s *Store) openSegment(idx int64) error {
	f, err := os.OpenFile(segPath(s.dir, idx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: open segment: %w", err)
	}
	var sf segFile = f
	if s.wrapSeg != nil {
		sf = s.wrapSeg(idx, f)
	}
	s.fmu.Lock()
	if s.seg != nil {
		s.seg.Close()
	}
	s.seg = sf
	s.segIdx = idx
	s.segBytes = 0
	s.fmu.Unlock()
	return nil
}

// Meta is the member's persisted cluster position. Zero values mean
// "not part of a cluster" — an embedded or standalone server persists
// only Joins. Epoch/Version/Bounds/Peers/Self mirror the gate map the
// member last applied (Self empty but Peers set = drained: the member
// keeps answering NotOwner with these bounds). ReplicaCopies/Tables
// mirror the last replica assignment, MeshTables the subscription mesh
// wiring.
type Meta struct {
	Name          string   `json:"name,omitempty"`
	ID            string   `json:"id,omitempty"`
	Epoch         int64    `json:"epoch,omitempty"`
	Version       int64    `json:"version,omitempty"`
	Bounds        []string `json:"bounds,omitempty"`
	Peers         []string `json:"peers,omitempty"`
	Self          []int    `json:"self,omitempty"`
	HasGate       bool     `json:"has_gate,omitempty"`
	Joins         string   `json:"joins,omitempty"`
	MeshTables    []string `json:"mesh_tables,omitempty"`
	HasMesh       bool     `json:"has_mesh,omitempty"`
	ReplicaCopies int      `json:"replica_copies,omitempty"`
	ReplicaTables []string `json:"replica_tables,omitempty"`
	SavedUnixNano int64    `json:"saved_unix_nano,omitempty"`
}

func segPath(dir string, idx int64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", idx))
}

func snapPath(dir string, idx int64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", idx))
}

func metaPath(dir string) string { return filepath.Join(dir, "meta.json") }

// scanDir lists existing segment and snapshot indexes, ascending.
// Names must match exactly — Sscanf alone ignores trailing input, so a
// leftover snap-XXXXXXXX.snap.tmp from a crash mid-snapshot would
// otherwise parse as snapshot X and burn a lineage index at every Open.
func scanDir(dir string) (segs, snaps []int64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: scan %s: %w", dir, err)
	}
	for _, e := range ents {
		name := e.Name()
		var idx int64
		if _, err := fmt.Sscanf(name, "wal-%08d.log", &idx); err == nil && name == fmt.Sprintf("wal-%08d.log", idx) {
			segs = append(segs, idx)
			continue
		}
		if _, err := fmt.Sscanf(name, "snap-%08d.snap", &idx); err == nil && name == fmt.Sprintf("snap-%08d.snap", idx) {
			snaps = append(snaps, idx)
		}
	}
	sortInt64(segs)
	sortInt64(snaps)
	return segs, snaps, nil
}

func sortInt64(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// writeAndSync writes buf fully and fsyncs the file.
func writeAndSync(f segFile, buf []byte) error {
	if _, err := f.Write(buf); err != nil {
		return err
	}
	return f.Sync()
}

// syncDir fsyncs a directory so a rename in it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
