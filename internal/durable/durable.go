// Package durable is the per-member durable range store: an
// append-only write-behind log plus periodic snapshots, so a restarted
// member comes back with its gate, joins, and serving data warm instead
// of cold-loading everything through the mesh.
//
// The contract with the hot path is strict: Append only enqueues into
// an in-memory buffer (one mutexed slice append — it is called under a
// shard lock and must never touch the disk). A flusher goroutine drains
// the buffer on a configurable interval, writing one batched, CRC-framed
// write per tick and fsyncing it. Writes acknowledged inside the last
// un-synced interval are the exposure window; everything older survives
// a crash.
//
// Snapshots bound replay and truncate the log. The protocol is
// rotate-first: flush and fsync the current segment, open segment K,
// then capture state S (the caller scans its shards under their locks)
// and commit it as snap-K. Replay = S + every segment with index >= K.
// The rotation order makes this correct without a global pause: a write
// enqueued before the rotation went to a segment < K, and — because
// Append runs under the same shard lock as the store mutation — its
// effect is visible to the later lock-holding scan, so it is in S. A
// write enqueued after the rotation is in segment K and replays over S;
// re-applying records the scan already saw is idempotent because replay
// reduces to last-record-wins per key. Commit is tmp+fsync+rename with
// a trailing commit marker, so a crash mid-snapshot leaves the previous
// snapshot+segments lineage intact; only a committed snapshot prunes.
//
// Alongside log and snapshots sits meta.json (atomic tmp+rename): the
// member's cluster position — partition map, peers, self set, installed
// join text, mesh tables, replica assignment — persisted on every
// membership event and on drain, so a restarted member re-gates and
// re-wires itself before serving a single key.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Op codes for log records. Values are on-disk format — append only.
const (
	OpPut    = byte(1)
	OpRemove = byte(2)
)

// DefaultSyncInterval paces the flusher when the server config leaves
// it zero: small enough that the unsynced exposure window is a blink,
// large enough that fsync cost amortizes over many writes.
const DefaultSyncInterval = 25 * time.Millisecond

// Store is one member's durable store rooted at a directory.
type Store struct {
	dir       string
	syncEvery time.Duration

	// Records are framed into buf at Append time: a pointer-free byte
	// buffer costs the GC nothing to scan and, unlike holding the
	// caller's key/value strings until the next flush, does not extend
	// their lifetime across collections — on the measured write path
	// that retention was the durability overhead, not the I/O.
	mu    sync.Mutex // guards buf, nrec, spare, and lag
	buf   []byte     // framed records pending flush
	nrec  int        // records in buf
	spare []byte     // recycled batch buffer, nil while a flush holds it
	lag   int64      // bytes enqueued but not yet fsynced

	// flushMu serializes entire flushes — batch swap through fsync — so
	// concurrent flush callers (ticker, Snapshot, Sync) cannot write
	// batches to the log out of enqueue order, and a Sync that finds the
	// buffer empty has necessarily waited for the in-flight batch to
	// reach disk. Ordered before mu and fmu; never held by Append.
	flushMu sync.Mutex

	fmu      sync.Mutex // file state: current segment, rotation, reads
	seg      *os.File
	segIdx   int64
	segBytes int64

	metaMu sync.Mutex // serializes SaveMeta (fixed tmp path + rename)

	snapMu   sync.Mutex // serializes snapshots
	snapIdx  int64      // newest committed snapshot index (0 = none)
	lastSnap time.Time  // commit time of that snapshot

	emu     sync.Mutex // guards err and dropped
	err     error      // most recent persistence failure, for stats
	dropped int64      // records dropped because a flush failed

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// Open opens (creating if needed) the durable store in dir and starts
// its flusher. Existing log segments and snapshots are left in place
// for Recover; new appends go to a fresh segment after them, so a
// segment torn by the previous crash is never appended to.
func Open(dir string, syncEvery time.Duration) (*Store, error) {
	if syncEvery <= 0 {
		syncEvery = DefaultSyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", dir, err)
	}
	// A crash mid-snapshot or mid-meta-save leaves a *.tmp behind; the
	// committed lineage never references one, so clear them here rather
	// than letting them accumulate (Snapshot's prune only removes
	// committed names).
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".tmp") {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	next := int64(1)
	if n := len(segs); n > 0 && segs[n-1]+1 > next {
		next = segs[n-1] + 1
	}
	if n := len(snaps); n > 0 && snaps[n-1]+1 > next {
		next = snaps[n-1] + 1
	}
	s := &Store{
		dir:       dir,
		syncEvery: syncEvery,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if n := len(snaps); n > 0 {
		s.snapIdx = snaps[n-1]
	}
	if err := s.openSegment(next); err != nil {
		return nil, err
	}
	go s.flushLoop()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Append enqueues one log record. It is called under a shard lock and
// therefore only frames the record onto the in-memory buffer; the
// flusher writes and fsyncs it on the next tick.
func (s *Store) Append(op byte, key, value string) {
	s.mu.Lock()
	was := len(s.buf)
	s.buf = appendRecord(s.buf, op, key, value)
	s.nrec++
	s.lag += int64(len(s.buf) - was)
	s.mu.Unlock()
}

// LagBytes reports the bytes enqueued but not yet fsynced — the crash
// exposure window, in data volume.
func (s *Store) LagBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lag
}

// flushLoop drains the buffer every sync interval until Close.
func (s *Store) flushLoop() {
	defer close(s.done)
	t := time.NewTicker(s.syncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			// Final drain so Close loses nothing that was enqueued.
			s.flush()
			return
		case <-t.C:
			s.flush()
		}
	}
}

// flush writes and fsyncs every pending record as one batch. flushMu
// makes swap-and-write atomic with respect to other flushes: without
// it, two in-flight flushes could swap batches under mu in one order
// and reach the segment in the other, and last-record-wins replay
// would then resurrect a stale value over a later acknowledged write.
// On failure the batch is dropped — the member keeps serving from
// memory exactly as it would with durability off — and the error is
// surfaced through Stats so health probes can flag the member.
func (s *Store) flush() {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	if len(s.buf) == 0 {
		s.mu.Unlock()
		return
	}
	batch, nrec := s.buf, s.nrec
	s.buf, s.nrec = s.spare[:0], 0
	s.spare = nil
	s.mu.Unlock()
	s.fmu.Lock()
	err := writeAndSync(s.seg, batch)
	if err == nil {
		s.segBytes += int64(len(batch))
	}
	s.fmu.Unlock()
	s.mu.Lock()
	s.lag -= int64(len(batch))
	if s.spare == nil {
		s.spare = batch[:0]
	}
	s.mu.Unlock()
	s.emu.Lock()
	if err != nil {
		s.err = err
		s.dropped += int64(nrec)
	} else {
		s.err = nil
	}
	s.emu.Unlock()
}

// Sync flushes and fsyncs everything enqueued so far, synchronously.
// If another flush is mid-flight it waits for that batch to reach disk
// too (flushMu), so on return every previously enqueued record is
// durable or accounted for in the returned error.
func (s *Store) Sync() error {
	s.flush()
	s.emu.Lock()
	defer s.emu.Unlock()
	return s.err
}

// Close drains the buffer one final time and releases the store. The
// final flush means a clean shutdown loses nothing regardless of the
// sync interval.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		<-s.done
	})
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if s.seg != nil {
		err := s.seg.Close()
		s.seg = nil
		return err
	}
	return nil
}

// Stats is a point-in-time durability report for health and stats
// surfaces.
type Stats struct {
	LagBytes      int64  `json:"lag_bytes"`                 // enqueued, not yet fsynced
	SegmentIndex  int64  `json:"segment"`                   // current log segment
	SegmentBytes  int64  `json:"segment_bytes"`             // bytes in it
	SnapshotIndex int64  `json:"snapshot"`                  // newest committed snapshot (0 = none)
	SnapshotAgeMS int64  `json:"snapshot_age_ms"`           // ms since it committed (-1 = none this run)
	Dropped       int64  `json:"dropped_records,omitempty"` // records lost to flush failures
	Err           string `json:"error,omitempty"`           // most recent persistence failure
}

// Stats reports the store's current durability state.
func (s *Store) Stats() Stats {
	st := Stats{LagBytes: s.LagBytes(), SnapshotAgeMS: -1}
	s.fmu.Lock()
	st.SegmentIndex = s.segIdx
	st.SegmentBytes = s.segBytes
	s.fmu.Unlock()
	s.snapMu.Lock()
	st.SnapshotIndex = s.snapIdx
	if !s.lastSnap.IsZero() {
		st.SnapshotAgeMS = time.Since(s.lastSnap).Milliseconds()
	}
	s.snapMu.Unlock()
	s.emu.Lock()
	if s.err != nil {
		st.Err = s.err.Error()
	}
	st.Dropped = s.dropped
	s.emu.Unlock()
	return st
}

// openSegment opens wal segment idx for appending and makes it current.
// Caller must not hold fmu.
func (s *Store) openSegment(idx int64) error {
	f, err := os.OpenFile(segPath(s.dir, idx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: open segment: %w", err)
	}
	s.fmu.Lock()
	if s.seg != nil {
		s.seg.Close()
	}
	s.seg = f
	s.segIdx = idx
	s.segBytes = 0
	s.fmu.Unlock()
	return nil
}

// Meta is the member's persisted cluster position. Zero values mean
// "not part of a cluster" — an embedded or standalone server persists
// only Joins. Epoch/Version/Bounds/Peers/Self mirror the gate map the
// member last applied (Self empty but Peers set = drained: the member
// keeps answering NotOwner with these bounds). ReplicaCopies/Tables
// mirror the last replica assignment, MeshTables the subscription mesh
// wiring.
type Meta struct {
	Name          string   `json:"name,omitempty"`
	ID            string   `json:"id,omitempty"`
	Epoch         int64    `json:"epoch,omitempty"`
	Version       int64    `json:"version,omitempty"`
	Bounds        []string `json:"bounds,omitempty"`
	Peers         []string `json:"peers,omitempty"`
	Self          []int    `json:"self,omitempty"`
	HasGate       bool     `json:"has_gate,omitempty"`
	Joins         string   `json:"joins,omitempty"`
	MeshTables    []string `json:"mesh_tables,omitempty"`
	HasMesh       bool     `json:"has_mesh,omitempty"`
	ReplicaCopies int      `json:"replica_copies,omitempty"`
	ReplicaTables []string `json:"replica_tables,omitempty"`
	SavedUnixNano int64    `json:"saved_unix_nano,omitempty"`
}

func segPath(dir string, idx int64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", idx))
}

func snapPath(dir string, idx int64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", idx))
}

func metaPath(dir string) string { return filepath.Join(dir, "meta.json") }

// scanDir lists existing segment and snapshot indexes, ascending.
// Names must match exactly — Sscanf alone ignores trailing input, so a
// leftover snap-XXXXXXXX.snap.tmp from a crash mid-snapshot would
// otherwise parse as snapshot X and burn a lineage index at every Open.
func scanDir(dir string) (segs, snaps []int64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: scan %s: %w", dir, err)
	}
	for _, e := range ents {
		name := e.Name()
		var idx int64
		if _, err := fmt.Sscanf(name, "wal-%08d.log", &idx); err == nil && name == fmt.Sprintf("wal-%08d.log", idx) {
			segs = append(segs, idx)
			continue
		}
		if _, err := fmt.Sscanf(name, "snap-%08d.snap", &idx); err == nil && name == fmt.Sprintf("snap-%08d.snap", idx) {
			snaps = append(snaps, idx)
		}
	}
	sortInt64(segs)
	sortInt64(snaps)
	return segs, snaps, nil
}

func sortInt64(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// writeAndSync writes buf fully and fsyncs the file.
func writeAndSync(f *os.File, buf []byte) error {
	if _, err := f.Write(buf); err != nil {
		return err
	}
	return f.Sync()
}

// syncDir fsyncs a directory so a rename in it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
