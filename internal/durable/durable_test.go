package durable

import (
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"
)

// openT opens a store with a fast sync interval and closes it with the
// test.
func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func recovered(t *testing.T, dir string) *Recovered {
	t.Helper()
	s := openT(t, dir)
	rec, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return rec
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(OpPut, "a|1", "x")
	s.Append(OpPut, "a|2", "y")
	s.Append(OpPut, "a|1", "x2") // overwrite collapses
	s.Append(OpRemove, "a|2", "")
	s.Append(OpPut, "b|1", "z")
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if lag := s.LagBytes(); lag != 0 {
		t.Fatalf("lag after Sync = %d, want 0", lag)
	}
	s.Close()

	rec := recovered(t, dir)
	want := []KV{{"a|1", "x2"}, {"b|1", "z"}}
	if !reflect.DeepEqual(rec.KVs, want) {
		t.Fatalf("recovered %v, want %v", rec.KVs, want)
	}
	if rec.SnapshotIndex != 0 || rec.LogRecords != 5 || rec.Torn {
		t.Fatalf("provenance = %+v, want 5 log records, no snapshot, not torn", rec)
	}
}

func TestCloseFlushesWithoutExplicitSync(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(OpPut, "k", "v")
	s.Close() // clean shutdown must not lose the enqueued record

	rec := recovered(t, dir)
	if !reflect.DeepEqual(rec.KVs, []KV{{"k", "v"}}) {
		t.Fatalf("recovered %v, want the record enqueued before Close", rec.KVs)
	}
}

func TestSnapshotTruncatesLogAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(OpPut, "a|1", "x")
	s.Append(OpPut, "a|2", "y")
	err := s.Snapshot(func(addKV func(k, v string), addWarm func(join int, lo, hi string)) error {
		addKV("a|1", "x")
		addKV("a|2", "y")
		addWarm(0, "t|", "t|~")
		return nil
	})
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	s.Append(OpPut, "a|3", "z")
	s.Append(OpRemove, "a|1", "")
	s.Close()

	// The pre-snapshot segment must be gone.
	if _, err := os.Stat(segPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("segment 1 survived the snapshot (err=%v)", err)
	}

	rec := recovered(t, dir)
	want := []KV{{"a|2", "y"}, {"a|3", "z"}}
	if !reflect.DeepEqual(rec.KVs, want) {
		t.Fatalf("recovered %v, want %v", rec.KVs, want)
	}
	if rec.SnapshotIndex == 0 || rec.SnapshotRows != 2 {
		t.Fatalf("provenance = %+v, want snapshot with 2 rows", rec)
	}
	if !reflect.DeepEqual(rec.Warm, []Warm{{Join: 0, Lo: "t|", Hi: "t|~"}}) {
		t.Fatalf("warm = %v", rec.Warm)
	}
}

func TestTornTailStopsReplayCleanly(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(OpPut, "a|1", "x")
	s.Append(OpPut, "a|2", "y")
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	s.Close()

	// Simulate a crash mid-write: garbage at the segment tail.
	f, err := os.OpenFile(segPath(dir, 1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0x03, 0x00})
	f.Close()

	rec := recovered(t, dir)
	if !reflect.DeepEqual(rec.KVs, []KV{{"a|1", "x"}, {"a|2", "y"}}) {
		t.Fatalf("recovered %v, want intact prefix", rec.KVs)
	}
	if !rec.Torn {
		t.Fatalf("Torn = false, want true")
	}
}

func TestUncommittedSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(OpPut, "a|1", "x")
	if err := s.Snapshot(func(addKV func(k, v string), addWarm func(join int, lo, hi string)) error {
		addKV("a|1", "x")
		return nil
	}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	s.Close()

	// Forge a newer snapshot missing its commit marker (a crash between
	// write and commit cannot actually leave this — rename is atomic —
	// but recovery must still reject it and fall back).
	var buf []byte
	buf = appendRecord(buf, opSnapKV, "bogus", "row")
	if err := os.WriteFile(snapPath(dir, 99), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := recovered(t, dir)
	if !reflect.DeepEqual(rec.KVs, []KV{{"a|1", "x"}}) {
		t.Fatalf("recovered %v, want fallback to committed snapshot", rec.KVs)
	}
}

func TestReadRangeFiltersAndIncludesUnsynced(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(OpPut, "a|1", "x")
	s.Append(OpPut, "b|1", "y")
	s.Append(OpPut, "c|1", "z")
	// No explicit Sync: ReadRange must flush first.
	kvs, err := s.ReadRange("b|", "c|")
	if err != nil {
		t.Fatalf("ReadRange: %v", err)
	}
	if !reflect.DeepEqual(kvs, []KV{{"b|1", "y"}}) {
		t.Fatalf("ReadRange = %v, want [b|1]", kvs)
	}
	// Open-ended high bound.
	kvs, err = s.ReadRange("b|", "")
	if err != nil {
		t.Fatalf("ReadRange: %v", err)
	}
	if len(kvs) != 2 {
		t.Fatalf("ReadRange(b|, inf) = %v, want 2 rows", kvs)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, ok, err := s.LoadMeta(); err != nil || ok {
		t.Fatalf("LoadMeta on fresh store = ok=%v err=%v, want absent", ok, err)
	}
	m := &Meta{
		Name: "m0", ID: "id0", Epoch: 3, Version: 7,
		Bounds: []string{"m"}, Peers: []string{"a:1", "b:2"}, Self: []int{0},
		HasGate: true, Joins: "t|<u> = check s|<u> copy p|<u>",
		MeshTables: []string{"s", "p"}, HasMesh: true,
		ReplicaCopies: 2, ReplicaTables: []string{"s", "p"},
	}
	if err := s.SaveMeta(m); err != nil {
		t.Fatalf("SaveMeta: %v", err)
	}
	got, ok, err := s.LoadMeta()
	if err != nil || !ok {
		t.Fatalf("LoadMeta: ok=%v err=%v", ok, err)
	}
	got.SavedUnixNano = 0
	m.SavedUnixNano = 0
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("LoadMeta = %+v, want %+v", got, m)
	}
}

func TestStatsReportProgress(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	st := s.Stats()
	if st.SnapshotAgeMS != -1 || st.SnapshotIndex != 0 {
		t.Fatalf("fresh stats = %+v", st)
	}
	s.Append(OpPut, "k", "v")
	if err := s.Snapshot(func(addKV func(k, v string), addWarm func(join int, lo, hi string)) error {
		addKV("k", "v")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.SnapshotIndex == 0 || st.SnapshotAgeMS < 0 {
		t.Fatalf("post-snapshot stats = %+v", st)
	}
}

func TestRecoverSurvivesManyGenerations(t *testing.T) {
	dir := t.TempDir()
	state := map[string]string{}
	for gen := 0; gen < 4; gen++ {
		s := openT(t, dir)
		rec, err := s.Recover()
		if err != nil {
			t.Fatalf("gen %d Recover: %v", gen, err)
		}
		got := map[string]string{}
		for _, kv := range rec.KVs {
			got[kv.Key] = kv.Value
		}
		if !reflect.DeepEqual(got, state) {
			t.Fatalf("gen %d recovered %v, want %v", gen, got, state)
		}
		// Mutate, sometimes snapshot, crash (Close).
		k := string(rune('a'+gen)) + "|k"
		s.Append(OpPut, k, "v")
		state[k] = "v"
		if gen%2 == 1 {
			if err := s.Snapshot(func(addKV func(k, v string), addWarm func(join int, lo, hi string)) error {
				for k, v := range state {
					addKV(k, v)
				}
				return nil
			}); err != nil {
				t.Fatalf("gen %d Snapshot: %v", gen, err)
			}
		}
		s.Close()
	}
}

func TestOpenNeverAppendsToOldSegments(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(OpPut, "k", "v")
	s.Close()
	s2 := openT(t, dir)
	s2.Append(OpPut, "k2", "v2")
	s2.Close()
	ents, _ := os.ReadDir(dir)
	var segs []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".log" {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) < 2 {
		t.Fatalf("segments = %v, want a fresh segment per open", segs)
	}
}

// Concurrent flush callers (the ticker, Sync, Snapshot's rotate) must
// write batches to the log in enqueue order — replay is
// last-record-wins, so an out-of-order batch would resurrect a stale
// value over a later acknowledged overwrite after a crash.
func TestConcurrentSyncKeepsLogInEnqueueOrder(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir) // 2ms ticker: the flusher races the Syncs below
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				s.Sync()
			}
		}
	}()
	const n = 4000
	for i := 0; i < n; i++ {
		s.Append(OpPut, "k", strconv.Itoa(i))
		if i%256 == 0 {
			time.Sleep(time.Millisecond) // let ticker and Sync interleave
		}
	}
	close(done)
	wg.Wait()
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	s.Close()

	rec := recovered(t, dir)
	if len(rec.KVs) != 1 || rec.KVs[0].Value != strconv.Itoa(n-1) {
		t.Fatalf("recovered %v, want the final overwrite %q", rec.KVs, strconv.Itoa(n-1))
	}
}

// SaveMeta is called concurrently from RPC handlers, the snapshot
// loop, and Close; racing saves must never rename a torn file into
// meta.json (LoadMeta failure used to be fatal at restart).
func TestSaveMetaConcurrent(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m := &Meta{Name: "m", Epoch: int64(g*1000 + i), Joins: "twitter join a|<x> = b|<x>"}
				if err := s.SaveMeta(m); err != nil {
					t.Errorf("SaveMeta: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	m, ok, err := s.LoadMeta()
	if err != nil || !ok || m.Name != "m" {
		t.Fatalf("LoadMeta after concurrent saves = %+v ok=%v err=%v", m, ok, err)
	}
}

// A crash mid-snapshot or mid-meta-save leaves *.tmp files behind;
// Open must delete them, and scanDir must not mis-parse them as
// committed lineage entries (burning a snapshot index per restart).
func TestOpenRemovesAndIgnoresStrayTmpFiles(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(OpPut, "k", "v")
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	s.Close()
	strays := []string{"snap-00000007.snap.tmp", "wal-00000009.log.tmp", "meta.json.tmp"}
	for _, name := range strays {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatalf("plant %s: %v", name, err)
		}
	}

	s2 := openT(t, dir)
	for _, name := range strays {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("stray %s survived Open", name)
		}
	}
	if st := s2.Stats(); st.SegmentIndex >= 7 {
		t.Fatalf("segment index %d, want lineage unaffected by stray tmp names", st.SegmentIndex)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !reflect.DeepEqual(rec.KVs, []KV{{"k", "v"}}) {
		t.Fatalf("recovered %v, want the pre-crash row", rec.KVs)
	}
}
