package durable

import (
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"
)

// sealSegment writes records through a store generation and closes it,
// sealing them into one segment.
func sealSegment(t *testing.T, dir string, write func(s *Store)) {
	t.Helper()
	s, err := Open(dir, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	write(s)
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	s.Close()
}

func TestCompactDropsDeadRecords(t *testing.T) {
	dir := t.TempDir()
	// Segment 1: heavy overwrite churn on few keys — mostly dead.
	sealSegment(t, dir, func(s *Store) {
		for i := 0; i < 400; i++ {
			s.Append(OpPut, fmt.Sprintf("k%d", i%4), fmt.Sprintf("v%d", i))
		}
		s.Append(OpPut, "gone", "x")
	})
	// Segment 2: the final word on k0 and the remove of "gone" — so
	// segment 1's k0 records and "gone" are dead *across* segments.
	sealSegment(t, dir, func(s *Store) {
		s.Append(OpPut, "k0", "final")
		s.Append(OpRemove, "gone", "")
	})

	s := openT(t, dir)
	before, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	oldSize, _ := os.Stat(segPath(dir, 1))
	n, saved, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n == 0 || saved <= 0 {
		t.Fatalf("Compact rewrote %d segments, reclaimed %d bytes; want the churned segment rewritten", n, saved)
	}
	newSize, _ := os.Stat(segPath(dir, 1))
	if newSize.Size() >= oldSize.Size() {
		t.Fatalf("segment 1 grew: %d -> %d bytes", oldSize.Size(), newSize.Size())
	}
	after, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover after compact: %v", err)
	}
	if !reflect.DeepEqual(after.KVs, before.KVs) {
		t.Fatalf("compaction changed replay state:\n before %v\n after  %v", before.KVs, after.KVs)
	}
	if after.LogRecords >= before.LogRecords {
		t.Fatalf("log records %d -> %d, want fewer after compaction", before.LogRecords, after.LogRecords)
	}
	if st := s.Stats(); st.Compactions == 0 || st.ReclaimedBytes != saved {
		t.Fatalf("stats = %+v, want compaction counted with %d bytes reclaimed", st, saved)
	}
	// A key removed in a later segment must stay removed: its earlier
	// put was dead, and the remove itself survives as the final record.
	for _, kv := range after.KVs {
		if kv.Key == "gone" {
			t.Fatalf("removed key resurrected by compaction: %v", kv)
		}
	}
}

func TestCompactSkipsLiveAndTinySegments(t *testing.T) {
	dir := t.TempDir()
	// All-distinct keys: every record is live, nothing to reclaim.
	sealSegment(t, dir, func(s *Store) {
		for i := 0; i < 400; i++ {
			s.Append(OpPut, fmt.Sprintf("k%d", i), "v")
		}
	})
	s := openT(t, dir)
	n, saved, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n != 0 || saved != 0 {
		t.Fatalf("Compact rewrote %d segments (%d bytes) of fully-live data, want none", n, saved)
	}
}

func TestCompactLeavesDamagedSegmentsAlone(t *testing.T) {
	dir := t.TempDir()
	sealSegment(t, dir, func(s *Store) {
		for i := 0; i < 400; i++ {
			s.Append(OpPut, fmt.Sprintf("k%d", i%2), "v")
		}
	})
	sealSegment(t, dir, func(s *Store) { s.Append(OpPut, "k0", "final") })
	flipByteInFrame(t, segPath(dir, 1))
	s := openT(t, dir)
	before, _ := os.Stat(segPath(dir, 1))
	if _, _, err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, _ := os.Stat(segPath(dir, 1))
	if after.Size() != before.Size() {
		t.Fatalf("compaction rewrote a damaged segment (%d -> %d bytes); it must preserve the evidence", before.Size(), after.Size())
	}
}

func TestRekey(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	meta := &Meta{
		Name:    "m1",
		HasGate: true,
		Bounds:  []string{"m"},
		Peers:   []string{"127.0.0.1:7001", "127.0.0.1:7002"},
		Self:    []int{1},
	}
	if err := s.SaveMeta(meta); err != nil {
		t.Fatalf("SaveMeta: %v", err)
	}
	s.Close()

	old, err := Rekey(dir, "127.0.0.1:9002")
	if err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	if old != "127.0.0.1:7002" {
		t.Fatalf("Rekey old = %q, want the dead member's address", old)
	}
	s2 := openT(t, dir)
	m, ok, err := s2.LoadMeta()
	if err != nil || !ok {
		t.Fatalf("LoadMeta: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(m.Peers, []string{"127.0.0.1:7001", "127.0.0.1:9002"}) {
		t.Fatalf("peers after rekey = %v", m.Peers)
	}
	if !reflect.DeepEqual(m.Self, []int{1}) {
		t.Fatalf("self after rekey = %v, want unchanged", m.Self)
	}
	s2.Close()

	// Idempotent: re-keying to the same address is a no-op.
	old2, err := Rekey(dir, "127.0.0.1:9002")
	if err != nil || old2 != "127.0.0.1:9002" {
		t.Fatalf("second Rekey = (%q, %v), want idempotent no-op", old2, err)
	}
}

func TestRekeyRejectsDrainedAndGatelessLineage(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.SaveMeta(&Meta{Joins: "copy a|<k> b|<k>"}); err != nil {
		t.Fatalf("SaveMeta: %v", err)
	}
	s.Close()
	if _, err := Rekey(dir, "127.0.0.1:9001"); err == nil {
		t.Fatal("Rekey of a gateless lineage = nil, want an error")
	}

	dir2 := t.TempDir()
	s2 := openT(t, dir2)
	if err := s2.SaveMeta(&Meta{HasGate: true, Peers: []string{"a", "b"}, Self: nil}); err != nil {
		t.Fatalf("SaveMeta: %v", err)
	}
	s2.Close()
	if _, err := Rekey(dir2, "127.0.0.1:9001"); err == nil {
		t.Fatal("Rekey of a drained lineage = nil, want an error")
	}
	if _, err := Rekey(t.TempDir(), "127.0.0.1:9001"); err == nil {
		t.Fatal("Rekey of an empty dir = nil, want an error")
	}
}

// buildReplayDir seeds a lineage of segs segments, each with recs
// records, for replay benchmarks.
func buildReplayDir(b *testing.B, segs, recs int) string {
	b.Helper()
	dir := b.TempDir()
	for g := 0; g < segs; g++ {
		s, err := Open(dir, time.Hour)
		if err != nil {
			b.Fatalf("Open: %v", err)
		}
		for i := 0; i < recs; i++ {
			s.Append(OpPut, fmt.Sprintf("t|%06d", (g*recs+i)%(segs*recs/2)), "value-payload-of-plausible-row-size-000000")
		}
		if err := s.Sync(); err != nil {
			b.Fatalf("Sync: %v", err)
		}
		s.Close()
	}
	return dir
}

func benchReplay(b *testing.B, workers int) {
	dir := buildReplayDir(b, 16, 4000)
	s, err := Open(dir, time.Hour)
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := s.recover(workers)
		if err != nil {
			b.Fatalf("recover: %v", err)
		}
		if rec.LogRecords == 0 {
			b.Fatal("replayed nothing")
		}
	}
}

// The parallel run pins 4 workers rather than using replayWorkers():
// on a single-vCPU CI runner replayWorkers() returns 1 and the
// "parallel" benchmark would silently time the serial path. Pinning
// keeps the work-stealing fan-out exercised (and timed) on any runner;
// the speedup itself only shows where cores exist to run it.
func BenchmarkSerialReplay(b *testing.B)   { benchReplay(b, 1) }
func BenchmarkParallelReplay(b *testing.B) { benchReplay(b, 4) }

func BenchmarkCompaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		for g := 0; g < 4; g++ {
			s, err := Open(dir, time.Hour)
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			for j := 0; j < 8000; j++ {
				s.Append(OpPut, fmt.Sprintf("t|%04d", j%64), "value-payload-of-plausible-row-size-000000")
			}
			if err := s.Sync(); err != nil {
				b.Fatalf("Sync: %v", err)
			}
			s.Close()
		}
		s, err := Open(dir, time.Hour)
		if err != nil {
			b.Fatalf("Open: %v", err)
		}
		b.StartTimer()
		n, saved, err := s.Compact()
		b.StopTimer()
		if err != nil {
			b.Fatalf("Compact: %v", err)
		}
		if n == 0 || saved == 0 {
			b.Fatalf("compacted %d segments, %d bytes; want churn reclaimed", n, saved)
		}
		s.Close()
		b.StartTimer()
	}
}
