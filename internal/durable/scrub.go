package durable

// Background lineage scrubbing. A write-behind log only proves its
// bytes are readable at restart — by which point the replica copies
// that could have repaired damage may be long gone. The scrub CRC-walks
// the committed lineage (sealed segments and committed snapshots) on a
// cadence and surfaces damage through Stats while repair sources still
// exist, instead of at the restart that needed the bytes.

import (
	"fmt"
	"os"
	"time"
)

// Scrub runs one synchronous scrub pass: every sealed segment (index
// below the one currently being appended) and every snapshot is read
// and CRC-walked end to end. Damage found is merged into the store's
// damage set, visible via Stats until the file is pruned by a later
// snapshot. The pass never repairs or removes anything — deciding
// whether a replica re-sync or a snapshot can retire the damaged file
// is the operator's (or the cluster watchdog's) call.
//
// The expected crash tail is not damage: Recover truncates it away at
// startup, so a sealed segment that still fails its walk lost fsynced
// frames to something other than the crash window. The one file the
// scrub skips is the live segment — its tail is mid-write by design.
func (s *Store) Scrub() error {
	s.fmu.Lock()
	cur := s.segIdx
	s.fmu.Unlock()
	segs, snaps, err := scanDir(s.dir)
	if err != nil {
		return err
	}
	var badSegs, badSnaps []int64
	var firstErr error
	for _, idx := range segs {
		if idx >= cur {
			continue // being appended; its tail is legitimately open
		}
		if idx == s.crashSeg {
			// The previous run's crash tail is expected until a Recover
			// truncates it; a tear here is not mid-lineage damage.
			continue
		}
		_, clean, err := readRecords(segPath(s.dir, idx), func(byte, string, string) {})
		if err != nil {
			// Unreadable (I/O error, not absence — readRecords treats a
			// pruned-under-us file as clean): that is damage too.
			if firstErr == nil {
				firstErr = err
			}
			clean = false
		}
		if !clean {
			badSegs = append(badSegs, idx)
		}
	}
	for _, idx := range snaps {
		committed := false
		_, clean, err := readRecords(snapPath(s.dir, idx), func(op byte, _, _ string) {
			if op == opSnapCommit {
				committed = true
			}
		})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			clean = false
		}
		if _, statErr := os.Stat(snapPath(s.dir, idx)); os.IsNotExist(statErr) {
			continue // pruned while we walked
		}
		if !clean || !committed {
			badSnaps = append(badSnaps, idx)
		}
	}
	s.maintMu.Lock()
	s.scrubRuns++
	s.lastScrub = time.Now()
	// Merge rather than replace: a damaged file pruned by a later
	// snapshot drops out of the set (the bytes it lost are gone either
	// way, but the lineage no longer depends on them), while damage in
	// still-live files persists across passes.
	s.pruneDamageLocked(segs, snaps)
	for _, idx := range badSegs {
		s.corruptSegs[idx] = true
	}
	for _, idx := range badSnaps {
		s.corruptSnaps[idx] = true
	}
	s.maintMu.Unlock()
	if firstErr != nil {
		return fmt.Errorf("durable: scrub: %w", firstErr)
	}
	if len(badSegs) > 0 || len(badSnaps) > 0 {
		return fmt.Errorf("durable: scrub: %d corrupt segments, %d corrupt snapshots", len(badSegs), len(badSnaps))
	}
	return nil
}

// noteReplayDamage merges damage found by Recover into the scrub's
// damage set, so a restart over a damaged lineage reports it in Stats
// immediately instead of waiting for the first scrub tick.
func (s *Store) noteReplayDamage(segs, snaps []int64) {
	if len(segs) == 0 && len(snaps) == 0 {
		return
	}
	s.maintMu.Lock()
	for _, idx := range segs {
		s.corruptSegs[idx] = true
	}
	for _, idx := range snaps {
		s.corruptSnaps[idx] = true
	}
	s.maintMu.Unlock()
}

// pruneDamageLocked drops damage entries for files that no longer
// exist. Caller holds maintMu; live is the current directory listing.
func (s *Store) pruneDamageLocked(segs, snaps []int64) {
	liveSegs := make(map[int64]bool, len(segs))
	for _, idx := range segs {
		liveSegs[idx] = true
	}
	for idx := range s.corruptSegs {
		if !liveSegs[idx] {
			delete(s.corruptSegs, idx)
		}
	}
	liveSnaps := make(map[int64]bool, len(snaps))
	for _, idx := range snaps {
		liveSnaps[idx] = true
	}
	for idx := range s.corruptSnaps {
		if !liveSnaps[idx] {
			delete(s.corruptSnaps, idx)
		}
	}
}
