package durable

// Cross-address restore, step one: re-keying a lineage's identity.
//
// A data dir's meta.json records which cluster address the lineage
// belongs to (Peers + Self). When the machine behind that address is
// gone for good, the lineage itself is still the last line of defense
// for its ranges — but a server started over it on a new address would
// recover a gate that names the dead address as self and refuse to own
// anything. Rekey rewrites the identity in place: every occurrence of
// the dead address in Peers becomes the new address, Self keeps
// pointing at the same ranges. The restored server then recovers as if
// it had always lived at the new address, and Cluster.Restore publishes
// the substitution to the rest of the cluster under a fresh epoch.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Rekey rewrites the meta.json in dir so the member identity oldAddr
// (derived from the Self set) becomes newAddr, and returns the old
// address. It is idempotent: re-keying a dir already keyed to newAddr
// returns newAddr with no change. The write is atomic (tmp+rename+
// dirsync), so a crash mid-rekey leaves either identity intact, never
// a torn meta. The store must not be open: Rekey is an offline,
// operator-driven step (pequod-cli restore -from) taken before the
// replacement server first starts.
func Rekey(dir, newAddr string) (oldAddr string, err error) {
	if newAddr == "" {
		return "", fmt.Errorf("durable: rekey: empty new address")
	}
	data, err := os.ReadFile(metaPath(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return "", fmt.Errorf("durable: rekey %s: no meta.json — not a member data dir (or the member never joined a cluster)", dir)
		}
		return "", fmt.Errorf("durable: rekey: %w", err)
	}
	m := &Meta{}
	if err := json.Unmarshal(data, m); err != nil {
		return "", fmt.Errorf("durable: rekey: %w", err)
	}
	if !m.HasGate || len(m.Peers) == 0 {
		return "", fmt.Errorf("durable: rekey %s: lineage has no cluster gate; start a server over it directly instead", dir)
	}
	if len(m.Self) == 0 {
		return "", fmt.Errorf("durable: rekey %s: member was drained (owns no ranges); nothing to restore", dir)
	}
	for _, i := range m.Self {
		if i < 0 || i >= len(m.Peers) {
			return "", fmt.Errorf("durable: rekey %s: self index %d out of range", dir, i)
		}
		if oldAddr == "" {
			oldAddr = m.Peers[i]
		} else if m.Peers[i] != oldAddr {
			return "", fmt.Errorf("durable: rekey %s: self set spans addresses %s and %s", dir, oldAddr, m.Peers[i])
		}
	}
	if oldAddr == newAddr {
		return oldAddr, nil
	}
	for i, p := range m.Peers {
		if p == oldAddr {
			m.Peers[i] = newAddr
		}
	}
	m.SavedUnixNano = time.Now().UnixNano()
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	tmp := metaPath(dir) + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return "", fmt.Errorf("durable: rekey: %w", err)
	}
	if err := os.Rename(tmp, metaPath(dir)); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("durable: rekey: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", fmt.Errorf("durable: rekey: %w", err)
	}
	return oldAddr, nil
}
