// Package shard implements Pequod's in-process sharded engine pool: N
// single-writer core.Engine instances partitioned by key range, served
// concurrently. It is the within-process analogue of the paper's
// scale-out deployment (§2.4, §5.5), where "each base key has a home
// server" and many single-threaded engines divide the key space.
//
// Routing: Get/Put/Remove go to the shard owning the key
// (partition.Map); Scans and Counts that straddle shards fan out
// concurrently, one goroutine per owning shard, and concatenate the
// per-shard sorted results (pieces arrive in key order, so
// concatenation is a merge).
//
// Joins are installed on every shard. Each shard computes the join
// outputs it owns locally — cascaded source joins recursively, exactly
// like a single engine — which requires the *base* source tables to be
// visible everywhere. The pool therefore mirrors §2.4 cross-server
// subscriptions within the process: a base write to a join source table
// is applied at its owner and forwarded, through the engine's Change
// hook and in owner-mutation order, to every sibling shard's apply
// queue. Appliers drain the queues asynchronously, so sibling replicas
// are eventually consistent — the same freshness model as the paper's
// asynchronous update notification. Quiesce waits for the queues to
// drain. Tables backed by an external loader (a backing database or a
// remote home server) are excluded from forwarding: each shard loads
// and subscribes to those ranges itself through the §3.3 presence
// machinery.
//
// # Live migration, at two scopes
//
// The partition is self-adjusting at both scopes the pool serves:
//
//   - Within the process (rebalance.go): per-shard load accounting
//     feeds a rebalancer goroutine that migrates hot key ranges live
//     between neighboring shards (Pool.MoveBound), publishing a
//     versioned successor partition.Map. Every routed operation
//     re-validates shard ownership under the shard lock it holds.
//   - Between servers (clustergate.go): a mesh-wired cluster member
//     holds a Gate — the versioned cluster map plus its own owner
//     indexes — and the same under-lock re-validation makes
//     server-to-server migration loss-free: ExtractClusterRange
//     atomically stops serving a departing range (later operations fail
//     with NotOwnerError carrying the current map), SpliceClusterRange
//     atomically starts serving an arriving one, and ApplyMapUpdate
//     retires stale replicas of ranges that moved between other
//     servers.
package shard
