package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pequod/internal/core"
)

// TestMoveBoundMovesData: plain rows physically move with the boundary,
// replicated join sources stay on both sides, and reads route correctly
// before and after.
func TestMoveBoundMovesData(t *testing.T) {
	p := newPool(t, Config{Bounds: []string{"m"}})
	p.Put("a|1", "v1")
	p.Put("a|9", "v9")
	p.Put("z|1", "w1")
	if p.Owner("a|9") != 0 || p.Owner("z|1") != 1 {
		t.Fatal("unexpected initial routing")
	}

	// Raise the bound: nothing between "a|5" and "m", so this only
	// changes ownership; then lower it below "a|9" so that row moves.
	if err := p.MoveBound(0, "a|5"); err != nil {
		t.Fatal(err)
	}
	if p.Owner("a|9") != 1 {
		t.Fatal("ownership did not move with the bound")
	}
	p.Shard(1).WithEngine(func(e *core.Engine) {
		if v, ok := e.Store().Get("a|9"); !ok || v.String() != "v9" {
			t.Fatalf("moved row not in destination store: %v %v", v, ok)
		}
	})
	p.Shard(0).WithEngine(func(e *core.Engine) {
		if _, ok := e.Store().Get("a|9"); ok {
			t.Fatal("moved row still in source store")
		}
		if _, ok := e.Store().Get("a|1"); !ok {
			t.Fatal("retained row left the source")
		}
	})
	for key, want := range map[string]string{"a|1": "v1", "a|9": "v9", "z|1": "w1"} {
		if v, ok := p.Get(key); !ok || v != want {
			t.Fatalf("Get(%q) = %q, %v after move", key, v, ok)
		}
	}
	if got := p.Scan("", "", 0, nil, nil); len(got) != 3 {
		t.Fatalf("full scan after move = %v", got)
	}
	st := p.RebalanceStats()
	if st.Migrations != 1 || st.KeysMoved != 1 || st.Version != 1 {
		t.Fatalf("stats after move = %+v", st)
	}

	// Replicated sources: install the join, then move a bound through
	// the source table — rows must remain readable and present on both
	// sides (ownership flips, data stays).
	if err := p.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	p.Put("s|u2|u8", "1")
	p.Put("p|u8|100", "Hi")
	p.Quiesce()
	if err := p.MoveBound(0, "p|u8|500"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.NumShards(); i++ {
		p.Shard(i).WithEngine(func(e *core.Engine) {
			if _, ok := e.Store().Get("p|u8|100"); !ok {
				t.Errorf("shard %d lost its source replica across migration", i)
			}
		})
	}
	if kvs := p.Scan("t|u2|", "t|u2}", 0, nil, nil); len(kvs) != 1 || kvs[0].Key != "t|u2|100|u8" {
		t.Fatalf("timeline after source-table boundary move = %v", kvs)
	}
}

func TestMoveBoundValidation(t *testing.T) {
	single := newPool(t, Config{})
	if err := single.MoveBound(0, "x"); err == nil {
		t.Fatal("single-shard move accepted")
	}
	p := newPool(t, Config{Bounds: testBounds})
	for _, c := range []struct {
		i     int
		bound string
	}{{-1, "q"}, {3, "q"}, {0, "p|"}, {0, "t|zz"}, {1, ""}} {
		if err := p.MoveBound(c.i, c.bound); err == nil {
			t.Fatalf("MoveBound(%d, %q) accepted", c.i, c.bound)
		}
	}
	if st := p.RebalanceStats(); st.Migrations != 0 || st.Version != 0 {
		t.Fatalf("rejected moves counted: %+v", st)
	}
}

// migrationBounds are the forced boundary targets the equivalence test
// cycles through: table edges, mid-table keys, mid-timeline keys — some
// invalid for a given map state (rejected, which is fine).
func migrationBounds(rng *rand.Rand, nUsers int) (int, string) {
	u := func() string { return fmt.Sprintf("u%d", rng.Intn(nUsers)) }
	candidates := []string{
		"p|" + u(), "p|" + u() + "|" + fmt.Sprintf("%03d", rng.Intn(200)),
		"s|" + u(), "t|" + u(), "t|" + u() + "|" + fmt.Sprintf("%03d", rng.Intn(200)),
		"z|" + u(), "q|", "u|",
	}
	return rng.Intn(3), candidates[rng.Intn(len(candidates))]
}

// TestRebalancedEqualsSingleEngine is the migration equivalence
// property: the randomized Twip workload, with boundary moves forced
// aggressively between operations, must return byte-identical results
// to a single static engine for every comparison range. Runs under
// -race in CI.
func TestRebalancedEqualsSingleEngine(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed * 977))
		ops := GenTwipOps(seed, 400, 10)

		single := newPool(t, Config{})
		sharded := newPool(t, Config{Bounds: testBounds})
		for _, p := range []*Pool{single, sharded} {
			if err := p.InstallText(EquivJoins); err != nil {
				t.Fatal(err)
			}
		}
		applyOps(single, ops)
		single.Quiesce()

		moves := 0
		for i, o := range ops {
			switch o.Kind {
			case OpPut:
				sharded.Put(o.Key, o.Value)
			case OpRemove:
				sharded.Remove(o.Key)
			case OpScan:
				sharded.Quiesce()
				sharded.Scan(o.Lo, o.Hi, 0, nil, nil)
			}
			if i%5 == 0 { // force a migration every few operations
				bi, bound := migrationBounds(rng, 10)
				if err := sharded.MoveBound(bi, bound); err == nil {
					moves++
				}
			}
		}
		sharded.Quiesce()
		if moves < 10 {
			t.Fatalf("seed %d: only %d forced migrations ran", seed, moves)
		}

		for _, r := range EquivRanges(seed, 10) {
			want := single.Scan(r[0], r[1], 0, nil, nil)
			got := sharded.Scan(r[0], r[1], 0, nil, nil)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d (%d moves): scan [%q, %q) diverged:\nstatic   %v\nmigrated %v",
					seed, moves, r[0], r[1], want, got)
			}
			if sn, gn := single.Count(r[0], r[1]), sharded.Count(r[0], r[1]); sn != gn {
				t.Fatalf("seed %d: count [%q, %q) = %d vs %d", seed, r[0], r[1], sn, gn)
			}
		}
	}
}

// TestMigrationUnderTraffic hammers a 2-shard pool with concurrent
// writers and readers while the main goroutine forces boundary moves
// through the hot keys. Assertions: a writer's own write is immediately
// readable (no write is ever stranded on an ex-owner), scans stay
// sorted, the timeline of a designated user only ever grows when
// sampled after a quiesce (monotonic reads of pushed join values), and
// the final state is exactly the union of everything written.
func TestMigrationUnderTraffic(t *testing.T) {
	p := newPool(t, Config{Bounds: []string{"m"}})
	if err := p.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	p.Put("s|mon|ux", "1") // the monotonic reader's subscription

	const writers = 4
	const opsEach = 400
	var stop atomic.Bool
	var wg, readerWG sync.WaitGroup

	// Plain-table writers: each owns its keys; Put then Get must see it.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				k := fmt.Sprintf("a|%02d|%04d", w, i)
				v := fmt.Sprintf("v%d", i)
				p.Put(k, v)
				if got, ok := p.Get(k); !ok || got != v {
					t.Errorf("lost write: Get(%q) = %q, %v want %q", k, got, ok, v)
					stop.Store(true)
					return
				}
				if stop.Load() {
					return
				}
			}
		}(w)
	}
	// Join-source writer: posts for the monitored timeline, in order.
	posted := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for i := 0; i < opsEach && !stop.Load(); i++ {
			p.Put(fmt.Sprintf("p|ux|%04d", i), "tweet")
			n = i + 1
		}
		posted <- n
	}()
	// Monotonic reader: after a quiesce the timeline may only grow. It
	// runs until the writers and mover are done (its own WaitGroup, so
	// waiting for the writers does not wait for it).
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		prev := 0
		for !stop.Load() {
			p.Quiesce()
			kvs := p.Scan("t|mon|", "t|mon}", 0, nil, nil)
			if len(kvs) < prev {
				t.Errorf("timeline shrank across migration: %d -> %d", prev, len(kvs))
				stop.Store(true)
				return
			}
			for k := 1; k < len(kvs); k++ {
				if kvs[k-1].Key >= kvs[k].Key {
					t.Errorf("timeline unsorted at %d", k)
					stop.Store(true)
					return
				}
			}
			prev = len(kvs)
		}
	}()

	// Force boundary moves straight through the traffic until the
	// workers finish: mostly modest hops between neighboring bounds,
	// with the occasional sweep across a whole table. A short pause
	// between moves keeps the migration lock-hold windows from starving
	// the workers outright.
	bounds := []string{"a|01|0200", "a|02|0100", "m", "p|ux|0100", "t|mon|0050", "t|zz"}
	var moved atomic.Int64
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	moverDone := make(chan struct{})
	go func() {
		defer close(moverDone)
		writersDone := false
		for i := 0; !writersDone || moved.Load() < 25; i++ {
			select {
			case <-done:
				writersDone = true // keep racing the reader to 25 moves
			default:
			}
			if err := p.MoveBound(0, bounds[i%len(bounds)]); err == nil {
				moved.Add(1)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	<-done
	<-moverDone
	stop.Store(true)
	readerWG.Wait()
	nPosts := <-posted
	moves := moved.Load()
	if moves < 10 {
		t.Fatalf("only %d migrations ran during traffic", moves)
	}
	p.Quiesce()

	// No lost writes: every plain key and every post is present, and
	// the timeline reflects every post.
	for w := 0; w < writers; w++ {
		kvs := p.Scan(fmt.Sprintf("a|%02d|", w), fmt.Sprintf("a|%02d}", w), 0, nil, nil)
		if len(kvs) != opsEach {
			t.Fatalf("writer %d: %d of %d rows survived", w, len(kvs), opsEach)
		}
	}
	if kvs := p.Scan("t|mon|", "t|mon}", 0, nil, nil); len(kvs) != nPosts {
		t.Fatalf("timeline has %d rows, want %d", len(kvs), nPosts)
	}
}

// TestRebalancerCoolsHotShard runs the rebalancer against the worst
// case the default bounds produce: every ASCII-prefixed key on one
// shard. Under skewed timeline reads the rebalancer must migrate ranges
// until the hot shard no longer serves essentially everything — and the
// data must come through intact.
func TestRebalancerCoolsHotShard(t *testing.T) {
	p := newPool(t, Config{
		Shards: 4,
		Rebalance: &Rebalance{
			Interval: 2 * time.Millisecond,
			Ratio:    1.2,
			MinOps:   32,
		},
	})
	if err := p.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	const users = 32
	for u := 0; u < users; u++ {
		for f := 1; f <= 4; f++ {
			p.Put(fmt.Sprintf("s|u%03d|u%03d", u, (u+f)%users), "1")
		}
	}
	for u := 0; u < users; u++ {
		for i := 0; i < 4; i++ {
			p.Put(fmt.Sprintf("p|u%03d|%03d", u, i), "tweet")
		}
	}
	p.Quiesce()

	// All keys sit on one shard under the default 16-bit-prefix bounds.
	before := p.RebalanceStats()
	if p.Owner("p|u000|000") != p.Owner("t|u031|003") {
		t.Fatalf("expected a fully clustered initial partition, bounds %q", before.Bounds)
	}

	zipf := rand.NewZipf(rand.New(rand.NewSource(7)), 1.3, 1, users-1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		for i := 0; i < 256; i++ {
			u := fmt.Sprintf("u%03d", zipf.Uint64())
			p.Scan("t|"+u+"|", "t|"+u+"}", 0, nil, nil)
		}
		st := p.RebalanceStats()
		if st.Migrations >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebalancer never migrated: %+v", st)
		}
	}

	st := p.RebalanceStats()
	if !st.Enabled || st.Version < 2 {
		t.Fatalf("stats after rebalance = %+v", st)
	}
	// The keyspace is genuinely spread now: the formerly hot pair of
	// probe keys no longer shares an owner with everything else.
	owners := map[int]bool{}
	for u := 0; u < users; u++ {
		owners[p.Owner(fmt.Sprintf("t|u%03d|000", u))] = true
		owners[p.Owner(fmt.Sprintf("p|u%03d|000", u))] = true
	}
	if len(owners) < 2 {
		t.Fatalf("rebalancer ran %d migrations but ownership still clustered: bounds %q",
			st.Migrations, st.Bounds)
	}
	// Correctness survived: timelines match a fresh single engine.
	single := newPool(t, Config{})
	if err := single.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	for _, tab := range []string{"p", "s"} {
		for _, kv := range p.Scan(tab+"|", tab+"}", 0, nil, nil) {
			single.Put(kv.Key, kv.Value)
		}
	}
	p.Quiesce()
	want := single.Scan("t|", "t}", 0, nil, nil)
	got := p.Scan("t|", "t}", 0, nil, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rebalanced timelines diverged: %d vs %d rows", len(got), len(want))
	}
}
