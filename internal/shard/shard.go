package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pequod/internal/core"
	"pequod/internal/join"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/perrs"
	"pequod/internal/store"
)

// ErrDeadline is returned by the deadline-taking operations when the
// deadline expires while blocked on outstanding base-data loads (§3.3
// restart contexts that never complete in time).
var ErrDeadline = errors.New("shard: deadline exceeded waiting for base data")

// Config configures a Pool.
type Config struct {
	// Shards is the number of engines; <= 1 means a single unsharded
	// engine (identical behavior to the pre-pool server).
	Shards int
	// Bounds are explicit partition split points (len = Shards-1). When
	// empty and Shards > 1, DefaultBounds splits the raw byte space
	// evenly — fine for uniformly distributed binary keys, but ASCII
	// table-prefixed keys cluster onto one shard, so real workloads
	// should pass bounds matched to their key distribution
	// (partition.UserBounds).
	Bounds []string
	// Engine holds per-engine options. A MemLimit is divided evenly
	// across the shards so the configured total is preserved.
	Engine core.Options
	// Rebalance, when non-nil, runs the load-aware rebalancer: per-shard
	// load is sampled into an EWMA and hot ranges migrate live between
	// neighboring shards (rebalance.go). Ignored for single-shard pools.
	Rebalance *Rebalance
}

// DefaultBounds returns n-1 split points dividing the 16-bit key-prefix
// space evenly: the fallback partition when no workload-aware bounds are
// given. Split points are distinct for any practical n (up to 65536).
func DefaultBounds(n int) []string {
	var bounds []string
	for i := 1; i < n; i++ {
		v := 65536 * i / n
		bounds = append(bounds, string([]byte{byte(v >> 8), byte(v)}))
	}
	return bounds
}

// Pool is a set of partitioned engines served concurrently.
type Pool struct {
	// pmap is the current partition of the key space. It is replaced —
	// never mutated — by live migration (MoveBound), which holds both
	// affected shards' locks across the state transfer and the swap.
	// Every routed operation therefore re-validates ownership after
	// acquiring a shard lock: if the key (or scan piece) is no longer
	// owned by the locked shard, the operation reroutes against the
	// fresh map, so readers never observe a gap or duplicate and writes
	// can never land on a shard that has given the range away.
	pmap   atomic.Pointer[partition.Map]
	shards []*Shard

	// gate is the cluster-ownership view (clustergate.go): nil except on
	// mesh-wired cluster members. When set, routed operations re-validate
	// cluster ownership under their shard lock exactly as they re-validate
	// pmap, so a server-to-server migration can atomically stop this
	// process serving a range.
	gate atomic.Pointer[Gate]

	// reb is the load-aware rebalancer (rebalance.go); zero-valued and
	// inert unless Config.Rebalance was set.
	reb rebState

	// hook observes owner-authoritative changes (for cross-server
	// subscription forwarding at the network layer). Set before serving.
	hook func(shard int, c core.Change)

	// fwd is the set of base source tables replicated to sibling shards;
	// copy-on-write so the change hook reads it without extra locking.
	fwd atomic.Pointer[map[string]bool]

	// extRep mirrors ext copy-on-write for the change hook: external
	// (loader-backed) tables whose *self-owned* rows must still
	// replicate to sibling shards on a gated multi-shard member —
	// remote-owned rows of those tables arrive per shard through each
	// shard's own subscription, but self-owned rows arrive as direct
	// writes to one shard and would otherwise never reach the siblings
	// whose joins read them.
	extRep atomic.Pointer[map[string]bool]

	// outs is the installed joins' output-table set, copy-on-write for
	// the durable write-behind hook (durable.go): derived rows travel
	// as warm coverage and are recomputed at recovery, never logged, so
	// the hook must classify tables without taking imu.
	outs atomic.Pointer[map[string]bool]

	// imu serializes install/loader bookkeeping (join set, fwd/ext
	// recomputation, backfill) and live migrations (rebalance.go), so
	// the forwarded-table set and partition map are stable across each.
	imu       sync.Mutex
	installed []*join.Join
	texts     []string        // install texts, replayed to dry-run new ones
	ext       map[string]bool // externally loader-backed tables

	// retained is the bounded buffer of extracted-but-unconfirmed range
	// states (clustergate.go); retmu guards it. Lock order: shard locks
	// may be held when taking retmu (extraction and demotion append
	// under them) — never acquire a shard lock while holding retmu.
	retmu           sync.Mutex
	retained        []retainedEntry
	retainedEvicted int

	wg sync.WaitGroup
}

// Shard is one engine plus its lock, load condition, and apply queue.
type Shard struct {
	p   *Pool
	idx int

	mu       sync.Mutex
	e        *core.Engine
	loadCond *sync.Cond // signaled when an async load or replica apply lands

	qmu     sync.Mutex
	qcond   *sync.Cond
	queue   []queuedChange
	busy    bool      // applier is mid-batch
	batchAt time.Time // oldest stamp of the in-flight batch (valid while busy)
	closed  bool

	// Load accounting for the rebalancer: units counts work served
	// (one per op plus one per row scanned) since the last rebalancer
	// sample, unitsTotal the same since the pool started (experiments
	// and stats read it; nothing resets it); samples is a ring of
	// recently served keys (guarded by mu, which every recording path
	// already holds) from which boundary moves pick their split points.
	units      atomic.Int64
	unitsTotal atomic.Int64
	samples    [loadSampleRing]string
	samplePos  int
}

// loadSampleRing is the per-shard key-sample capacity (a power of two).
const loadSampleRing = 256

// applyChange applies one replicated or forwarded change to the engine.
// Called with sh.mu held. Every non-remove op applies as a put: evict
// ops never reach these paths (both the pool's forwarding and the
// server's subscription push filter them out), and treating an unknown
// op as a put in four call sites beats four diverging switches.
func (sh *Shard) applyChange(c core.Change) {
	if c.Op == core.OpRemove {
		sh.e.Remove(c.Key)
	} else {
		sh.e.Put(c.Key, c.Value)
	}
}

// applyReplicaChange is applyChange via the engine's quiet path:
// replica-range maintenance mirrors writes already counted at their
// owning member, so it must not inflate this member's op counters.
// Called with sh.mu held.
func (sh *Shard) applyReplicaChange(c core.Change) {
	if c.Op == core.OpRemove {
		sh.e.RemoveQuiet(c.Key)
	} else {
		sh.e.PutQuiet(c.Key, c.Value)
	}
}

// record notes one served operation for load accounting. Called with
// sh.mu held.
func (sh *Shard) record(key string, units int64) {
	sh.units.Add(units)
	sh.unitsTotal.Add(units)
	sh.samples[sh.samplePos&(loadSampleRing-1)] = key
	sh.samplePos++
}

// New builds a pool. Shards and Bounds must agree (n shards need n-1
// bounds); either may be omitted and is derived from the other.
func New(cfg Config) (*Pool, error) {
	n := cfg.Shards
	bounds := cfg.Bounds
	switch {
	case n <= 0 && len(bounds) == 0:
		n = 1
	case n <= 0:
		n = len(bounds) + 1
	case len(bounds) == 0 && n > 1:
		if n > 65536 {
			return nil, fmt.Errorf("shard: %d shards exceeds the default-bounds limit (65536); pass explicit Bounds", n)
		}
		bounds = DefaultBounds(n)
	}
	if len(bounds) != n-1 {
		return nil, fmt.Errorf("shard: %d shards need %d bounds, have %d", n, n-1, len(bounds))
	}
	pmap, err := partition.New(bounds...)
	if err != nil {
		return nil, err
	}
	opts := cfg.Engine
	if opts.MemLimit > 0 && n > 1 {
		opts.MemLimit = (opts.MemLimit + int64(n) - 1) / int64(n)
	}
	p := &Pool{ext: make(map[string]bool)}
	p.pmap.Store(pmap)
	empty := map[string]bool{}
	p.fwd.Store(&empty)
	p.extRep.Store(&empty)
	p.outs.Store(&empty)
	for i := 0; i < n; i++ {
		sh := &Shard{p: p, idx: i, e: core.New(opts)}
		sh.loadCond = sync.NewCond(&sh.mu)
		sh.qcond = sync.NewCond(&sh.qmu)
		i := i
		sh.e.SetChangeHook(func(c core.Change) { p.onChange(i, c) })
		p.shards = append(p.shards, sh)
	}
	if n > 1 {
		for _, sh := range p.shards {
			p.wg.Add(1)
			go sh.applyLoop()
		}
		if cfg.Rebalance != nil {
			p.startRebalancer(*cfg.Rebalance)
		}
	}
	return p, nil
}

// Close stops the rebalancer and the apply goroutines (after draining
// their queues).
func (p *Pool) Close() {
	p.stopRebalancer()
	for _, sh := range p.shards {
		sh.qmu.Lock()
		sh.closed = true
		sh.qmu.Unlock()
		sh.qcond.Broadcast()
	}
	p.wg.Wait()
}

// NumShards returns the number of engines in the pool.
func (p *Pool) NumShards() int { return len(p.shards) }

// Owner returns the index of the shard currently owning key. With the
// rebalancer running the answer may be stale by the time it is used;
// the routed operations re-validate under the shard lock.
func (p *Pool) Owner(key string) int { return p.pmap.Load().Owner(key) }

// Shard returns the i'th shard handle (loader wiring, tests).
func (p *Pool) Shard(i int) *Shard { return p.shards[i] }

// Map returns the pool's current partition map (immutable; rebalancing
// replaces it).
func (p *Pool) Map() *partition.Map { return p.pmap.Load() }

// SetHook registers the observer of owner-authoritative changes, called
// with the owning shard's lock held (it must only enqueue, like the
// server's subscription forwarding). Set before serving traffic.
func (p *Pool) SetHook(fn func(shard int, c core.Change)) { p.hook = fn }

// onChange is every engine's change hook, called during mutation with
// shard i's lock held. Only owner-authoritative changes propagate:
// locally computed replicas of ranges owned elsewhere (cascaded source
// joins clip to containing ranges, not ownership) stay local, so each
// logical change is forwarded by exactly one shard, in that shard's
// mutation order.
func (p *Pool) onChange(i int, c core.Change) {
	if len(p.shards) > 1 && p.pmap.Load().Owner(c.Key) != i {
		return
	}
	// Evictions drop this shard's cached copy, not the data's validity;
	// siblings keep their replicas (§2.5).
	if c.Op != core.OpEvict && len(p.shards) > 1 {
		t := keys.Table(c.Key)
		rep := (*p.fwd.Load())[t]
		if !rep && (*p.extRep.Load())[t] {
			// External tables are loaded and subscribed per shard, so
			// remote-owned rows need no forwarding — but rows this member
			// is itself the cluster home for arrive as direct writes to
			// one shard and must replicate to siblings whose joins read
			// them (no peer pushes them to us).
			if g := p.gate.Load(); g != nil && g.OwnsKey(c.Key) {
				rep = true
			}
		}
		if rep {
			at := time.Now() // one stamp per change, shared by every sibling
			for j, sh := range p.shards {
				if j != i {
					sh.enqueue(c, at)
				}
			}
		}
	}
	if p.hook != nil {
		p.hook(i, c)
	}
}

// queuedChange is one forwarded write awaiting application, stamped at
// enqueue so the shard's lag — the age of its oldest unapplied
// forwarded write — can be read off the queue head.
type queuedChange struct {
	c  core.Change
	at time.Time
}

// enqueue appends a forwarded change to this shard's apply queue. Called
// with the *sender's* lock held so the queue preserves owner order.
func (sh *Shard) enqueue(c core.Change, at time.Time) {
	sh.qmu.Lock()
	sh.queue = append(sh.queue, queuedChange{c: c, at: at})
	sh.qmu.Unlock()
	sh.qcond.Signal()
}

// Lag reports the age of the oldest forwarded write not yet applied at
// this shard (zero when forwarding is idle): the staleness a read
// served from the shard's current view inherits from in-process
// forwarding. Bounded reads compare it against their budget; the
// fresh-read semantics are unchanged (forwarding has always been
// asynchronous — Quiesce is the settlement fence).
func (sh *Shard) Lag(now time.Time) time.Duration {
	sh.qmu.Lock()
	defer sh.qmu.Unlock()
	var oldest time.Time
	switch {
	case sh.busy:
		oldest = sh.batchAt // FIFO: the in-flight batch predates the queue
	case len(sh.queue) > 0:
		oldest = sh.queue[0].at
	default:
		return 0
	}
	if d := now.Sub(oldest); d > 0 {
		return d
	}
	return 0
}

// applyLoop drains forwarded base-data changes into the engine — the
// in-process twin of the server's MsgNotify path. The batch is popped
// only once the shard lock is held: a pending forwarded write is either
// still in the queue or already applied, never in limbo in between.
// Live migration depends on that invariant — holding the shard lock, it
// drains the queued writes for the moving range and knows none are
// hiding in a half-popped batch that would replay stale values after
// ownership flips.
func (sh *Shard) applyLoop() {
	defer sh.p.wg.Done()
	for {
		sh.qmu.Lock()
		for len(sh.queue) == 0 && !sh.closed {
			sh.qcond.Wait()
		}
		if len(sh.queue) == 0 && sh.closed {
			sh.qmu.Unlock()
			return
		}
		sh.qmu.Unlock()

		sh.mu.Lock()
		sh.qmu.Lock()
		batch := sh.queue
		sh.queue = nil
		sh.busy = len(batch) > 0
		if sh.busy {
			sh.batchAt = batch[0].at
		}
		sh.qmu.Unlock()
		for _, qc := range batch {
			sh.applyChange(qc.c)
		}
		sh.loadCond.Broadcast()
		sh.mu.Unlock()

		sh.qmu.Lock()
		sh.busy = false
		sh.qmu.Unlock()
		sh.qcond.Broadcast()
	}
}

// Quiesce blocks until every apply queue is drained and idle: after it
// returns, all previously forwarded base-data changes are visible on all
// shards. Replica applies never re-forward (they are not owner-
// authoritative at the receiver), so a single settled pass suffices; the
// outer loop re-checks in case an in-flight mutation raced the first
// pass.
func (p *Pool) Quiesce() {
	for {
		for _, sh := range p.shards {
			sh.qmu.Lock()
			for len(sh.queue) > 0 || sh.busy {
				sh.qcond.Wait()
			}
			sh.qmu.Unlock()
		}
		settled := true
		for _, sh := range p.shards {
			sh.qmu.Lock()
			if len(sh.queue) > 0 || sh.busy {
				settled = false
			}
			sh.qmu.Unlock()
		}
		if settled {
			return
		}
	}
}

// --- routed operations ---

// lockOwner locks and returns the shard owning key, re-validating
// ownership after acquiring the lock: a migration that moved the key
// completed while we waited (it held this shard's lock), so routing
// retries against the fresh map. Terminates because each retry follows
// an observed map change and migrations are finite.
func (p *Pool) lockOwner(key string) *Shard {
	for {
		sh := p.shards[p.pmap.Load().Owner(key)]
		sh.mu.Lock()
		if p.pmap.Load().Owner(key) == sh.idx {
			return sh
		}
		sh.mu.Unlock()
	}
}

// Put stores value under key at its owning shard and runs incremental
// maintenance there (forwarding to siblings via the change hook).
func (p *Pool) Put(key, value string) {
	sh := p.lockOwner(key)
	sh.e.Put(key, value)
	sh.record(key, 1)
	sh.mu.Unlock()
}

// PutGated is Put that first re-validates cluster ownership under the
// shard lock, failing with *NotOwnerError when a server-to-server
// migration has moved the key — the write path network servers use, so
// a racing client cannot land a write on a server that just gave the
// range away (the write would be silently lost). Identical to Put on
// ungated pools.
func (p *Pool) PutGated(key, value string) error {
	sh := p.lockOwner(key)
	if err := p.gateCheckKey(key); err != nil {
		sh.mu.Unlock()
		return err
	}
	sh.e.Put(key, value)
	sh.record(key, 1)
	sh.mu.Unlock()
	return nil
}

// Remove deletes key at its owning shard, reporting whether it existed.
func (p *Pool) Remove(key string) bool {
	sh := p.lockOwner(key)
	found := sh.e.Remove(key)
	sh.record(key, 1)
	sh.mu.Unlock()
	return found
}

// RemoveGated is Remove with the cluster-ownership re-validation of
// PutGated.
func (p *Pool) RemoveGated(key string) (bool, error) {
	sh := p.lockOwner(key)
	if err := p.gateCheckKey(key); err != nil {
		sh.mu.Unlock()
		return false, err
	}
	found := sh.e.Remove(key)
	sh.record(key, 1)
	sh.mu.Unlock()
	return found, nil
}

// Get returns the value under key from its owning shard, blocking on
// outstanding base-data loads (§3.3 restart contexts) like the server's
// command loop.
func (p *Pool) Get(key string) (string, bool) {
	v, ok, _ := p.GetDeadline(key, time.Time{})
	return v, ok
}

// GetDeadline is Get bounded by a deadline (zero = none): if base-data
// loads are still outstanding at dl, it returns ErrDeadline instead of
// blocking further. Waiting for loads releases the shard lock, so the
// key may migrate away mid-wait; the read then reroutes to the new
// owner.
func (p *Pool) GetDeadline(key string, dl time.Time) (string, bool, error) {
	return p.GetBounded(key, 0, dl)
}

// GetBounded is GetDeadline carrying a staleness budget (zero = fully
// fresh, today's semantics). A bounded read may serve the current view
// without applying outstanding maintenance whose age fits the budget:
// both the shard's forwarded-write queue lag and the engine's per-range
// debt (unapplied lazy logs, dirty sub-intervals) must be within
// maxStale, checked under the same shard lock the fresh path holds. A
// shard whose queue lag already exceeds the budget falls back to the
// fresh path — serving its applied view could be arbitrarily stale
// relative to the budget the caller asked for. Coverage gaps always
// compute fresh regardless of budget: bounded staleness may serve old
// state, never absent state.
func (p *Pool) GetBounded(key string, maxStale time.Duration, dl time.Time) (string, bool, error) {
	for {
		sh := p.lockOwner(key)
		for {
			if err := p.gateCheckKey(key); err != nil {
				sh.mu.Unlock()
				return "", false, err
			}
			budget := maxStale
			if budget > 0 && sh.Lag(time.Now()) > budget {
				budget = 0 // queue already over budget: fresh fallback
			}
			v, ok, pending := sh.e.GetBounded(key, budget)
			if pending == 0 {
				sh.record(key, 1)
				sh.mu.Unlock()
				return v, ok, nil
			}
			if !sh.waitLoadsLocked(dl) {
				sh.mu.Unlock()
				return "", false, deadlineErr(maxStale)
			}
			if p.pmap.Load().Owner(key) != sh.idx {
				sh.mu.Unlock()
				break // migrated away while waiting; reroute
			}
		}
	}
}

// deadlineErr attributes a deadline failure. A read that carried a
// staleness budget and still timed out could not be served even with
// the latitude the budget granted (the range needed base data, or the
// shard fell back to the fresh path), so the error carries both
// sentinels and callers can match either.
func deadlineErr(maxStale time.Duration) error {
	if maxStale > 0 {
		return fmt.Errorf("%w: %w", perrs.ErrOverBudget, ErrDeadline)
	}
	return ErrDeadline
}

// Scan returns up to limit (0 = all) pairs in [lo, hi), fanning
// cross-shard ranges out concurrently and concatenating the per-shard
// sorted pieces (which arrive in key order). buf's capacity is reused
// for the first piece. If sub is non-nil it is invoked for each piece
// while the owning shard's lock is still held, immediately after that
// piece's final (complete) scan — the atomic snapshot+subscribe window
// cross-server subscriptions need (§2.4).
func (p *Pool) Scan(lo, hi string, limit int, buf []core.KV, sub func(shard int, r keys.Range)) []core.KV {
	kvs, _ := p.ScanDeadline(lo, hi, limit, buf, sub, time.Time{})
	return kvs
}

// errMoved reports that a scan piece's ownership changed between
// computing the piece list and locking the shard (a live migration
// completed in between): the caller re-splits against the fresh map and
// retries, so no piece is ever served by a shard that owns only part of
// it.
var errMoved = errors.New("shard: range migrated mid-scan")

// ScanDeadline is Scan bounded by a deadline (zero = none); an expired
// deadline while waiting on base-data loads yields ErrDeadline.
func (p *Pool) ScanDeadline(lo, hi string, limit int, buf []core.KV, sub func(shard int, r keys.Range), dl time.Time) ([]core.KV, error) {
	return p.ScanBounded(lo, hi, limit, buf, sub, 0, dl)
}

// ScanBounded is ScanDeadline carrying a staleness budget (zero =
// fully fresh); see GetBounded for the serving condition. Subscribing
// scans (sub != nil) always run fresh — the subscription snapshot must
// be exact or the subscriber would permanently miss the writes the
// budget skipped.
func (p *Pool) ScanBounded(lo, hi string, limit int, buf []core.KV, sub func(shard int, r keys.Range), maxStale time.Duration, dl time.Time) ([]core.KV, error) {
	if sub != nil {
		maxStale = 0
	}
	for {
		kvs, err := p.scanOnce(lo, hi, limit, buf, sub, maxStale, dl)
		if err == errMoved {
			continue
		}
		return kvs, err
	}
}

// scanOnce runs one scan attempt against a snapshot of the partition
// map, failing with errMoved if a migration invalidated a piece.
func (p *Pool) scanOnce(lo, hi string, limit int, buf []core.KV, sub func(shard int, r keys.Range), maxStale time.Duration, dl time.Time) ([]core.KV, error) {
	pieces := p.pmap.Load().Split(keys.Range{Lo: lo, Hi: hi})
	if len(pieces) == 0 {
		return buf[:0], nil
	}
	if len(pieces) == 1 {
		return p.scanPiece(pieces[0], limit, buf, sub, maxStale, dl)
	}
	if limit > 0 && sub == nil {
		// A limited scan stops at the first piece that satisfies it:
		// visiting pieces sequentially with the remaining limit avoids
		// forcing join materialization (and the cache state it creates)
		// in pieces whose rows would be truncated anyway. Subscribing
		// scans still fan out to every piece — each subscription needs
		// its piece's complete snapshot.
		out, err := p.scanPiece(pieces[0], limit, buf, nil, maxStale, dl)
		if err != nil {
			return nil, err
		}
		var scratch []core.KV
		for _, pc := range pieces[1:] {
			if len(out) >= limit {
				break
			}
			var err error
			scratch, err = p.scanPiece(pc, limit-len(out), scratch[:0], nil, maxStale, dl)
			if err != nil {
				return nil, err
			}
			out = append(out, scratch...)
		}
		return out, nil
	}
	results := make([][]core.KV, len(pieces))
	errs := make([]error, len(pieces))
	var wg sync.WaitGroup
	for i, pc := range pieces {
		i, pc := i, pc
		var b []core.KV
		if i == 0 {
			b = buf
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = p.scanPiece(pc, limit, b, sub, maxStale, dl)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := results[0]
	for _, r := range results[1:] {
		out = append(out, r...)
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// scanPiece scans one owner's piece, retrying until no loads are
// pending. After taking the shard lock (and after every load wait,
// which releases it) the piece must still be wholly owned by this
// shard; a migration in between fails the attempt with errMoved.
func (p *Pool) scanPiece(pc partition.Shard, limit int, buf []core.KV, sub func(int, keys.Range), maxStale time.Duration, dl time.Time) ([]core.KV, error) {
	sh := p.shards[pc.Owner]
	sh.mu.Lock()
	for {
		if !p.pmap.Load().OwnsRange(pc.Owner, pc.R) {
			sh.mu.Unlock()
			return nil, errMoved
		}
		if err := p.gateCheckRange(pc.R); err != nil {
			sh.mu.Unlock()
			return nil, err
		}
		budget := maxStale
		if budget > 0 && sh.Lag(time.Now()) > budget {
			budget = 0 // queue already over budget: fresh fallback
		}
		kvs, pending := sh.e.ScanIntoBounded(pc.R.Lo, pc.R.Hi, limit, buf, budget)
		buf = kvs
		if pending == 0 {
			if sub != nil {
				sub(pc.Owner, pc.R)
			}
			sh.record(pc.R.Lo, 1+int64(len(kvs)))
			sh.mu.Unlock()
			return kvs, nil
		}
		if !sh.waitLoadsLocked(dl) {
			sh.mu.Unlock()
			return nil, deadlineErr(maxStale)
		}
	}
}

// Count returns the number of keys in [lo, hi) after join computation,
// summing concurrent per-shard counts.
func (p *Pool) Count(lo, hi string) int {
	n, _ := p.CountDeadline(lo, hi, time.Time{})
	return n
}

// CountDeadline is Count bounded by a deadline (zero = none).
func (p *Pool) CountDeadline(lo, hi string, dl time.Time) (int, error) {
	return p.CountBounded(lo, hi, 0, dl)
}

// CountBounded is CountDeadline carrying a staleness budget (zero =
// fully fresh); see GetBounded for the serving condition.
func (p *Pool) CountBounded(lo, hi string, maxStale time.Duration, dl time.Time) (int, error) {
retry:
	for {
		pieces := p.pmap.Load().Split(keys.Range{Lo: lo, Hi: hi})
		if len(pieces) == 0 {
			return 0, nil
		}
		counts := make([]int, len(pieces))
		errs := make([]error, len(pieces))
		var wg sync.WaitGroup
		for i, pc := range pieces {
			i, pc := i, pc
			wg.Add(1)
			go func() {
				defer wg.Done()
				sh := p.shards[pc.Owner]
				sh.mu.Lock()
				for {
					if !p.pmap.Load().OwnsRange(pc.Owner, pc.R) {
						sh.mu.Unlock()
						errs[i] = errMoved
						return
					}
					if err := p.gateCheckRange(pc.R); err != nil {
						sh.mu.Unlock()
						errs[i] = err
						return
					}
					budget := maxStale
					if budget > 0 && sh.Lag(time.Now()) > budget {
						budget = 0 // queue already over budget: fresh fallback
					}
					n, pending := sh.e.CountBounded(pc.R.Lo, pc.R.Hi, budget)
					if pending == 0 {
						counts[i] = n
						sh.record(pc.R.Lo, 1+int64(n))
						sh.mu.Unlock()
						return
					}
					if !sh.waitLoadsLocked(dl) {
						sh.mu.Unlock()
						errs[i] = deadlineErr(maxStale)
						return
					}
				}
			}()
		}
		wg.Wait()
		total := 0
		for i, n := range counts {
			if errs[i] == errMoved {
				continue retry
			}
			if errs[i] != nil {
				return 0, errs[i]
			}
			total += n
		}
		return total, nil
	}
}

// Apply routes a batch of replicated changes (peer pushes, database
// feeds) to their owning shards. Ownership is re-checked under each
// shard's lock; changes whose keys migrated between routing and locking
// are rerouted, so a concurrent boundary move cannot strand a feed's
// write on a shard that no longer owns it.
func (p *Pool) Apply(changes []core.Change) {
	p.apply(changes, true)
}

// ApplyReplica is Apply without load accounting: replica-range
// maintenance (failover warm copies) is not served work, and counting
// it would make the cluster rebalancer chase replica write traffic
// instead of client load.
func (p *Pool) ApplyReplica(changes []core.Change) {
	p.apply(changes, false)
}

func (p *Pool) apply(changes []core.Change, record bool) {
	if len(p.shards) == 1 {
		sh := p.shards[0]
		sh.mu.Lock()
		for _, c := range changes {
			if record {
				sh.applyChange(c)
			} else {
				sh.applyReplicaChange(c)
			}
		}
		sh.loadCond.Broadcast()
		sh.mu.Unlock()
		return
	}
	for len(changes) > 0 {
		byOwner := make([][]core.Change, len(p.shards))
		m := p.pmap.Load()
		for _, c := range changes {
			o := m.Owner(c.Key)
			byOwner[o] = append(byOwner[o], c)
		}
		var rerouted []core.Change
		for i, mine := range byOwner {
			if len(mine) == 0 {
				continue
			}
			sh := p.shards[i]
			sh.mu.Lock()
			cur := p.pmap.Load()
			for _, c := range mine {
				if cur.Owner(c.Key) != i {
					rerouted = append(rerouted, c)
					continue
				}
				if record {
					sh.applyChange(c)
					// Feed-driven writes are owner work like any Put; without
					// accounting them a database-fed hot shard would look
					// idle to the rebalancer.
					sh.record(c.Key, 1)
				} else {
					sh.applyReplicaChange(c)
				}
			}
			sh.loadCond.Broadcast()
			sh.mu.Unlock()
		}
		changes = rerouted
	}
}

// InstallText parses a join specification and installs it on every shard
// (each shard re-parses so engines share no mutable state). The text is
// first dry-run on a scratch engine replaying the pool's already
// installed joins, so a rejected join — even one late in a multi-join
// text — fails atomically before any shard is touched. Newly needed base
// source tables are backfilled to all shards and replicated from then on.
func (p *Pool) InstallText(text string) error {
	js, err := join.ParseAll(text)
	if err != nil {
		return err
	}
	p.imu.Lock()
	defer p.imu.Unlock()
	scratch := core.New(core.Options{})
	for _, prev := range p.texts {
		replay, err := join.ParseAll(prev)
		if err != nil {
			panic("shard: installed join text no longer parses: " + err.Error())
		}
		for _, j := range replay {
			if err := scratch.Install(j); err != nil {
				panic("shard: installed join text no longer installs: " + err.Error())
			}
		}
	}
	trial, err := join.ParseAll(text) // scratch gets its own copies too
	if err != nil {
		return err
	}
	for _, j := range trial {
		if err := scratch.Install(j); err != nil {
			return err
		}
	}
	for _, sh := range p.shards {
		own, err := join.ParseAll(text)
		if err != nil {
			panic("shard: validated join text no longer parses: " + err.Error())
		}
		sh.mu.Lock()
		for _, j := range own {
			if err := sh.e.Install(j); err != nil {
				sh.mu.Unlock()
				// The scratch replay accepted this exact sequence and all
				// engines see identical join sets, so this is
				// unreachable — but fail loudly rather than diverge.
				panic("shard: divergent join installation: " + err.Error())
			}
		}
		sh.mu.Unlock()
	}
	p.texts = append(p.texts, text)
	p.installed = append(p.installed, js...)
	outs := make(map[string]bool, len(p.installed))
	for _, j := range p.installed {
		outs[j.Out.Table()] = true
	}
	p.outs.Store(&outs)
	p.refreshForwardingLocked()
	return nil
}

// InstalledText returns the pool's installed join texts concatenated in
// install order, newline-separated — the form a JoinCluster RPC ships
// to a joining member, so a drained member re-joining the cluster can
// be recognized as already holding (a prefix of) the join set instead
// of failing on a duplicate install.
func (p *Pool) InstalledText() string {
	p.imu.Lock()
	defer p.imu.Unlock()
	out := ""
	for i, t := range p.texts {
		if i > 0 {
			out += "\n"
		}
		out += t
	}
	return out
}

// SetExternalTables marks tables as backed by an external loader (a
// database or remote home server): each shard loads and subscribes to
// those ranges itself, so the pool stops replicating them — except for
// rows this member is itself the cluster home for (a symmetric mesh),
// which no peer will ever push to us: those keep replicating to sibling
// shards (onChange's extRep path), and the current self-owned contents
// are backfilled here so joins computed on a sibling shard see them.
// Call under the same setup phase as Shard.SetLoader.
func (p *Pool) SetExternalTables(tables ...string) {
	p.imu.Lock()
	defer p.imu.Unlock()
	var fresh []string
	for _, t := range tables {
		if !p.ext[t] {
			p.ext[t] = true
			fresh = append(fresh, t)
		}
	}
	extRep := make(map[string]bool, len(p.ext))
	for t := range p.ext {
		extRep[t] = true
	}
	p.extRep.Store(&extRep)
	p.refreshForwardingLocked()
	if g := p.gate.Load(); g != nil && len(p.shards) > 1 {
		for _, t := range fresh {
			p.backfillSelfOwned(t, g)
		}
	}
}

// backfillSelfOwned replicates the self-owned rows of a newly external
// table from their owning shards to every sibling — the in-process
// subscription a multi-shard mesh member needs for source rows it is
// itself the home of. Caller holds imu.
func (p *Pool) backfillSelfOwned(table string, g *Gate) {
	m := p.pmap.Load()
	tr := keys.Range{Lo: table + keys.SepString, Hi: keys.PrefixEnd(table + keys.SepString)}
	for _, pc := range m.Split(tr) {
		sh := p.shards[pc.Owner]
		sh.mu.Lock()
		// Raw store walk: a demand scan would try to load the (external)
		// table remotely; the backfill wants only rows already here.
		sh.e.Store().Scan(pc.R.Lo, pc.R.Hi, func(k string, v *store.Value) bool {
			if m.Owner(k) != pc.Owner || !g.OwnsKey(k) {
				return true
			}
			c := core.Change{Op: core.OpPut, Key: k, Value: v.String()}
			at := time.Now()
			for j, dst := range p.shards {
				if j != pc.Owner {
					dst.enqueue(c, at)
				}
			}
			return true
		})
		sh.mu.Unlock()
	}
}

// refreshForwardingLocked recomputes the forwarded-table set — base
// source tables of installed joins that are neither some join's output
// (each shard computes those locally, recursively) nor externally
// loaded — and backfills tables that just became forwarded. Caller holds
// imu.
func (p *Pool) refreshForwardingLocked() {
	if len(p.shards) == 1 {
		return
	}
	outputs := map[string]bool{}
	for _, j := range p.installed {
		outputs[j.Out.Table()] = true
	}
	next := map[string]bool{}
	for _, j := range p.installed {
		for _, t := range j.SourceTables() {
			if !outputs[t] && !p.ext[t] {
				next[t] = true
			}
		}
	}
	prev := *p.fwd.Load()
	p.fwd.Store(&next)
	for t := range next {
		if !prev[t] {
			p.backfill(t)
		}
	}
}

// backfill replicates the current contents of a newly forwarded table
// from each owner to every sibling. Enqueueing happens under the owner's
// lock so concurrent writes forward in order behind the snapshot. The
// caller holds imu, which migration also takes, so the partition map is
// stable for the whole pass.
func (p *Pool) backfill(table string) {
	m := p.pmap.Load()
	tr := keys.Range{Lo: table + keys.SepString, Hi: keys.PrefixEnd(table + keys.SepString)}
	for _, pc := range m.Split(tr) {
		sh := p.shards[pc.Owner]
		sh.mu.Lock()
		kvs, _ := sh.e.Scan(pc.R.Lo, pc.R.Hi, 0)
		for _, kv := range kvs {
			if m.Owner(kv.Key) != pc.Owner {
				continue // a stray replica; its owner backfills it
			}
			c := core.Change{Op: core.OpPut, Key: kv.Key, Value: kv.Value}
			at := time.Now()
			for j, dst := range p.shards {
				if j != pc.Owner {
					dst.enqueue(c, at)
				}
			}
		}
		sh.mu.Unlock()
	}
}

// SetSubtableDepth marks a §4.1 boundary on every shard.
func (p *Pool) SetSubtableDepth(table string, depth int) {
	for _, sh := range p.shards {
		sh.mu.Lock()
		sh.e.SetSubtableDepth(table, depth)
		sh.mu.Unlock()
	}
}

// Stats sums the engine counters across shards.
func (p *Pool) Stats() core.Stats {
	var total core.Stats
	for _, sh := range p.shards {
		sh.mu.Lock()
		total.Add(sh.e.Stats())
		sh.mu.Unlock()
	}
	return total
}

// Bytes sums the approximate memory footprint across shards.
func (p *Pool) Bytes() int64 {
	var total int64
	for _, sh := range p.shards {
		sh.mu.Lock()
		total += sh.e.Store().Bytes()
		sh.mu.Unlock()
	}
	return total
}

// Len sums the number of cached keys across shards.
func (p *Pool) Len() int {
	total := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		total += sh.e.Store().Len()
		sh.mu.Unlock()
	}
	return total
}

// MaxLag returns the largest forwarded-write queue lag across shards —
// the age of the oldest replicated change some shard has accepted but
// not yet applied. It is the pool half of the staleness a bounded read
// tolerates (the engine half is per-range debt; see StalenessDebt).
func (p *Pool) MaxLag(now time.Time) time.Duration {
	var max time.Duration
	for _, sh := range p.shards {
		if l := sh.Lag(now); l > max {
			max = l
		}
	}
	return max
}

// StalenessDebt aggregates staleness debt across shards for health
// reporting: the number of deferred-maintenance spans (dirty
// sub-intervals plus unapplied lazy logs) and the age of the oldest,
// folded together with the forwarded-write queue lag so the result is
// the worst staleness any bounded read could currently observe.
func (p *Pool) StalenessDebt() (spans int, oldest time.Duration) {
	now := time.Now()
	for _, sh := range p.shards {
		sh.mu.Lock()
		s, o := sh.e.StalenessDebt(now)
		sh.mu.Unlock()
		spans += s
		if o > oldest {
			oldest = o
		}
	}
	if l := p.MaxLag(now); l > oldest {
		oldest = l
	}
	return spans, oldest
}

// --- shard handle (loader wiring) ---

// Index returns this shard's position in the pool.
func (sh *Shard) Index() int { return sh.idx }

// SetLoader registers a base-data loader on this shard's engine for the
// given tables (§3.3). Callers must also mark the tables external on the
// pool so replication skips them.
func (sh *Shard) SetLoader(l core.BaseLoader, tables ...string) {
	sh.mu.Lock()
	sh.e.SetLoader(l, tables...)
	sh.mu.Unlock()
}

// LoadComplete delivers an asynchronous load result to this shard and
// wakes requests blocked on it.
func (sh *Shard) LoadComplete(table string, r keys.Range, kvs []core.KV) {
	sh.mu.Lock()
	sh.e.LoadComplete(table, r, kvs)
	sh.loadCond.Broadcast()
	sh.mu.Unlock()
}

// LoadFailed abandons an asynchronous load on this shard (the remote
// owner refused or the transport died) and wakes blocked requests so
// they retry — and, if the failure was a migration, re-route.
func (sh *Shard) LoadFailed(table string, r keys.Range) {
	sh.mu.Lock()
	sh.e.LoadFailed(table, r)
	sh.loadCond.Broadcast()
	sh.mu.Unlock()
}

// ApplyBatch applies replicated changes to this shard (database update
// feeds, peer subscription pushes) and wakes blocked requests.
func (sh *Shard) ApplyBatch(changes []core.Change) {
	sh.mu.Lock()
	for _, c := range changes {
		sh.applyChange(c)
	}
	sh.loadCond.Broadcast()
	sh.mu.Unlock()
}

// WithEngine runs fn with the shard lock held — stats snapshots, tests,
// and warm-up phases that want direct engine access.
func (sh *Shard) WithEngine(fn func(e *core.Engine)) {
	sh.mu.Lock()
	fn(sh.e)
	sh.mu.Unlock()
}

// waitLoadsLocked blocks (holding sh.mu via the cond) until some async
// load completes, then lets the caller retry — the iterative evaluation
// of §3.3. A non-zero deadline bounds the wait; it reports false when
// the deadline expired before any load landed. The timer's broadcast
// cannot be lost: it needs sh.mu, which the waiter holds until it parks
// on the cond.
func (sh *Shard) waitLoadsLocked(dl time.Time) bool {
	gen := sh.e.LoadGen()
	if dl.IsZero() {
		for sh.e.LoadGen() == gen {
			sh.loadCond.Wait()
		}
		return true
	}
	t := time.AfterFunc(time.Until(dl), func() {
		sh.mu.Lock()
		sh.loadCond.Broadcast()
		sh.mu.Unlock()
	})
	defer t.Stop()
	for sh.e.LoadGen() == gen {
		if !time.Now().Before(dl) {
			return false
		}
		sh.loadCond.Wait()
	}
	return true
}
