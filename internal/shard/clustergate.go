package shard

// Cluster-level live migration: the pool-side half of moving a key range
// between *servers* (the in-process half, moving ranges between shards,
// is rebalance.go). A mesh-wired server installs a Gate — its view of
// the cluster's versioned partition map, the member address serving each
// owner index, and the owner indexes that are this process — and from
// then on every routed operation re-validates cluster ownership under
// the shard lock it already holds, exactly the way pool-internal
// migration re-validates the shard map. An operation whose range has
// migrated to another server fails with *NotOwnerError carrying the
// current map, which travels back to the client as a StatusNotOwner
// reply; the client adopts the newer map and retries against the new
// owner. The same lock-ordered swap discipline as MoveBound makes the
// ownership flip atomic with the data transfer:
//
//   - ExtractClusterRange (at the source) locks every shard overlapping
//     the range, swaps the gate to the successor map, settles queued
//     forwarded writes, and extracts the range's state. A write that
//     held a shard lock first is captured in the extracted rows; one
//     that acquires the lock afterwards re-checks the gate and bounces.
//     The extracted state is also retained in a bounded side buffer
//     until the transfer is confirmed (see "Retained extractions").
//   - SpliceClusterRange (at the destination) locks the shards, swaps
//     the gate, drops its own stale cached copies of the range (it may
//     have loaded and computed over it as a subscriber), and installs
//     the moved rows plus the source's warm computed coverage — all
//     before any reader under those locks can observe the new map.
//   - ApplyMapUpdate (at every other member) adopts the new map and
//     drops, with §2.5 eviction semantics, the cached state for ranges
//     that changed hands, so the next read re-fetches from and
//     re-subscribes at the new home. The server fences in-flight
//     subscription pushes from the old owner before calling it.
//
// Membership changes ride the same machinery: a successor map may have
// more owners (a join split one owner's range for a fresh server) or
// fewer (a drain merged the departing owner's range into a neighbor's),
// so every swap carries the successor's full identity — map, peer
// addresses, and the recipient's new self set. Ownership comparisons
// across generations are by serving *address* (partition.DiffAddrs),
// which stays meaningful when owner indexes shift.
//
// Maps are totally ordered by (epoch, version) — see partition. A
// transfer must be the direct successor of the map the member holds
// (version exactly one ahead, epoch not older); anything else is a
// concurrent coordinator that lost the race, rejected with a version
// conflict carrying the current map. Adoption (ApplyMapUpdate, splices
// ahead of the member's version) takes strictly-newer maps only.
//
// # Retained extractions
//
// Between a successful extract and a successful splice the moved rows
// exist only in the coordinator's memory — a crashed coordinator or a
// dead destination would strand them. The source therefore retains a
// copy of everything it extracts until the transfer is confirmed: a
// published map (MapUpdate) under which the intended destination serves
// the range means the splice landed, and the copy is dropped. If a
// later map instead hands the range *back* to this server without an
// accompanying splice — the coordinator reverted a failed transfer, or
// a competing coordinator's older-epoch map lost and the winner never
// knew about the move — the retained rows are restored (without
// clobbering anything written since). The buffer is bounded; entries
// beyond the cap evict oldest-first and are visible in RetainedStats
// and the stat RPC so operators can see stranded state.
//
// Readers never observe a gap or duplicate for the same reason as
// in-process migration: every key is owned by exactly one server under
// every published map, state moves while the owning shards are locked,
// and every operation re-checks ownership under the lock it holds.

import (
	"fmt"
	"time"

	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/perrs"
	"pequod/internal/store"
)

// Gate is a pool's view of the cluster partition: the versioned map,
// the member address serving each owner index, and the owner indexes
// this process serves. A Gate is immutable; migration replaces it
// (under the affected shards' locks) like the pool's own partition map.
type Gate struct {
	Map   *partition.Map
	Peers []string // serving address per owner index; may be nil (legacy wiring)
	Self  map[int]bool
}

// OwnsKey reports whether this process is key's home under the gate's
// map.
func (g *Gate) OwnsKey(key string) bool { return g.Self[g.Map.Owner(key)] }

// OwnsRange reports whether every key of r is homed at this process.
func (g *Gate) OwnsRange(r keys.Range) bool {
	if r.Empty() {
		return true
	}
	for _, pc := range g.Map.Split(r) {
		if !g.Self[pc.Owner] {
			return false
		}
	}
	return true
}

// addr returns the serving address for owner index i ("" when the gate
// carries no peer addresses).
func (g *Gate) addr(i int) string {
	if i < 0 || i >= len(g.Peers) {
		return ""
	}
	return g.Peers[i]
}

// notOwner builds the error for an operation outside the gate.
func (g *Gate) notOwner() *NotOwnerError {
	return &NotOwnerError{
		Epoch:   g.Map.Epoch(),
		Version: g.Map.Version(),
		Bounds:  g.Map.Bounds(),
		Peers:   append([]string(nil), g.Peers...),
	}
}

// NotOwnerError reports that an operation's keys are not homed at this
// process under the current cluster map (a live migration or membership
// change moved them). It carries that map — position, bounds, and
// member addresses — so the caller, ultimately the cluster client, can
// re-route and retry instead of failing.
type NotOwnerError struct {
	Epoch   int64
	Version int64
	Bounds  []string
	Peers   []string
}

func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("shard: not the owner of the requested range (cluster map e%d v%d)", e.Epoch, e.Version)
}

// Is makes NotOwnerError match the public sentinel via errors.Is
// (pequod.ErrNotOwner) while the carried map position stays reachable
// through errors.As.
func (e *NotOwnerError) Is(target error) bool { return target == perrs.ErrNotOwner }

// Gate returns the pool's current cluster view (nil when the pool is
// not part of a gated cluster).
func (p *Pool) Gate() *Gate { return p.gate.Load() }

// SetGate installs or replaces the pool's cluster view wholesale —
// initial wiring (ConnectMesh, a cluster client publishing its map), not
// migration, which swaps the gate under shard locks itself. A nil map
// clears the gate.
func (p *Pool) SetGate(g *Gate) {
	if g == nil {
		p.gate.Store(nil)
		return
	}
	p.gate.Store(g)
}

// gateCheckKey validates key against the cluster gate. Called with the
// owning shard's lock held, so a concurrent migration either completed
// before this check (new gate visible) or will lock this shard after the
// caller releases it.
func (p *Pool) gateCheckKey(key string) error {
	if g := p.gate.Load(); g != nil && !g.OwnsKey(key) {
		return g.notOwner()
	}
	return nil
}

// gateCheckRange validates a scanned range against the cluster gate,
// under the owning shard's lock.
func (p *Pool) gateCheckRange(r keys.Range) error {
	if g := p.gate.Load(); g != nil && !g.OwnsRange(r) {
		return g.notOwner()
	}
	return nil
}

// lockShardsOverlapping locks (in index order) every shard whose range
// overlaps r under the pool's current map, returning the locked shards
// and the per-shard pieces of r. Caller holds imu, so the pool map is
// stable.
func (p *Pool) lockShardsOverlapping(r keys.Range) ([]*Shard, []partition.Shard) {
	pieces := p.pmap.Load().Split(r)
	locked := make([]*Shard, 0, len(p.shards))
	seen := make(map[int]bool, len(pieces))
	for _, pc := range pieces {
		seen[pc.Owner] = true
	}
	for i, sh := range p.shards { // index order: the pool's lock hierarchy
		if seen[i] {
			sh.mu.Lock()
			locked = append(locked, sh)
		}
	}
	return locked, pieces
}

// lockAllShards locks every shard in index order — the shape-change
// paths (splice with an ownership jump, map updates) touch ranges that
// may land anywhere.
func (p *Pool) lockAllShards() []*Shard {
	for _, sh := range p.shards {
		sh.mu.Lock()
	}
	return p.shards
}

func unlockShards(locked []*Shard) {
	for i := len(locked) - 1; i >= 0; i-- {
		locked[i].mu.Unlock()
	}
}

// directSuccessor reports whether next is the direct successor of the
// gate's current map: version exactly one ahead and epoch not moving
// backwards. Transfers (extract, in-order splices) require it — it
// proves the coordinator derived next from the map this member holds,
// so a concurrent coordinator working from a stale parent conflicts
// here instead of silently forking the partition.
func directSuccessor(cur, next *partition.Map) bool {
	return next.Version() == cur.Version()+1 && next.Epoch() >= cur.Epoch()
}

// newGate assembles the successor gate for a swap.
func newGate(next *partition.Map, peers []string, self map[int]bool) *Gate {
	return &Gate{Map: next, Peers: append([]string(nil), peers...), Self: self}
}

// selfSet builds a Gate self map from owner indexes.
func selfSet(idx []int) map[int]bool {
	s := make(map[int]bool, len(idx))
	for _, i := range idx {
		s[i] = true
	}
	return s
}

// SelfSet is selfSet for callers outside the package (the server's RPC
// handlers decode owner-index lists off the wire).
func SelfSet(idx []int) map[int]bool { return selfSet(idx) }

// ExtractClusterRange removes range r's state from this pool so it can
// move to another server, atomically flipping cluster ownership: next
// must be the direct successor of the gate's map (version exactly one
// ahead), with peers and self giving this member's position under it —
// a membership change (join split, drain merge) reshapes all three. On
// success the returned state holds the owned rows — including
// presence-backed rows, whose home this server was — and the warm
// computed coverage for the destination to rebuild; a copy is retained
// until a published map confirms the destination serves the range (see
// the package comment). On a version conflict or if r is not wholly
// self-owned, *NotOwnerError carries the current map and nothing
// changes.
func (p *Pool) ExtractClusterRange(r keys.Range, next *partition.Map, peers []string, self map[int]bool) (core.RangeState, error) {
	p.imu.Lock()
	defer p.imu.Unlock()
	g := p.gate.Load()
	if g == nil {
		return core.RangeState{}, fmt.Errorf("shard: no cluster view installed")
	}
	if !directSuccessor(g.Map, next) || !g.OwnsRange(r) {
		return core.RangeState{}, g.notOwner()
	}
	ng := newGate(next, peers, self)
	locked, pieces := p.lockShardsOverlapping(r)
	defer unlockShards(locked)
	// Publish first: every operation that acquires one of the locked
	// shards' locks after us re-validates against this gate and bounces.
	p.gate.Store(ng)

	rs := p.extractLocked(r, pieces, true)
	// Retain a copy until a published map shows the destination serving
	// the range: the extracted rows otherwise live only in the
	// coordinator's memory between extract and splice.
	p.addRetained(retainedEntry{
		rs: rs, epoch: next.Epoch(), version: next.Version(),
		dst: ng.addr(next.Owner(r.Lo)), confirmable: true,
	})
	p.reb.migrations++
	p.reb.keysMoved += int64(len(rs.KVs))
	return rs, nil
}

// extractLocked captures and removes r's state from the owning shards
// and drops sibling replicas. Caller holds imu and the owning shards'
// locks (pieces is r split by the pool map); lockSiblings says whether
// the non-owning shards' locks must still be taken (false when the
// caller already holds every shard lock).
func (p *Pool) extractLocked(r keys.Range, pieces []partition.Shard, lockSiblings bool) core.RangeState {
	rs := core.RangeState{R: r}
	// Nothing is kept: unlike an in-process bound move, the range is
	// leaving this server entirely, so even rows of internally
	// forwarded source tables — whose authoritative copy lives on the
	// owning shard — are captured and moved. (The destination
	// re-replicates them to its own sibling shards during the splice.)
	keepNone := func(string) bool { return false }
	for _, pc := range pieces {
		sh := p.shards[pc.Owner]
		// Settle forwarded writes queued for the departing range so the
		// extraction captures them (in-process replication order).
		sh.applyQueuedRange(pc.R)
		one := sh.e.ExtractRange(pc.R, keepNone, true)
		rs.KVs = append(rs.KVs, one.KVs...)
		rs.Warm = append(rs.Warm, one.Warm...)
		rs.EvictedPresence = append(rs.EvictedPresence, one.EvictedPresence...)
	}
	// Sibling shards may hold forwarded (or self-replicated external)
	// copies of departing source rows; those are stale the moment the
	// range is homed elsewhere.
	if len(*p.fwd.Load())+len(*p.extRep.Load()) > 0 {
		owns := make(map[int]bool, len(pieces))
		for _, pc := range pieces {
			owns[pc.Owner] = true
		}
		for i, sh := range p.shards {
			if !owns[i] {
				if lockSiblings {
					sh.mu.Lock()
				}
				sh.e.DropRange(r)
				if lockSiblings {
					sh.mu.Unlock()
				}
			}
		}
	}
	return rs
}

// SpliceClusterRange folds a range extracted at another server into this
// pool, atomically flipping cluster ownership to us: next must be a
// strictly newer map under which we own rs.R (peers/self position us
// under it). The pool's own cached traces of the range — loaded source
// rows, computed coverage, presence records from its time as a
// subscriber — are dropped first (§2.5), then the moved rows land and
// the source's previously valid computed coverage rebuilds warm. A
// splice may jump several versions ahead (a coordinator re-offering a
// range whose first destination died); ranges that changed hands
// elsewhere between the member's map and next are reconciled like a map
// update.
func (p *Pool) SpliceClusterRange(rs core.RangeState, next *partition.Map, peers []string, self map[int]bool) error {
	p.imu.Lock()
	defer p.imu.Unlock()
	g := p.gate.Load()
	if g == nil {
		return fmt.Errorf("shard: no cluster view installed")
	}
	if !next.NewerThan(g.Map.Epoch(), g.Map.Version()) {
		// Only a retry of the exact splice already applied is an
		// idempotent success. A *different* map at the same position is a
		// concurrent coordinator that lost the race — succeeding here
		// would silently drop its extracted rows; the conflict error
		// sends them back up the coordinator's failure path instead.
		if next.Epoch() == g.Map.Epoch() && next.Version() == g.Map.Version() && sameBounds(next, g.Map) {
			return nil
		}
		return g.notOwner()
	}
	ng := newGate(next, peers, self)
	if !ng.OwnsRange(rs.R) {
		return g.notOwner()
	}
	locked := p.lockAllShards()
	p.gate.Store(ng)
	pieces := p.pmap.Load().Split(rs.R)
	for _, pc := range pieces {
		sh := p.shards[pc.Owner]
		// Stale queued forwards and subscriber-era cached state for the
		// range must not shadow the moved rows.
		sh.applyQueuedRange(pc.R)
		sh.e.DropRange(pc.R)
		sh.e.SpliceRange(clipState(rs, pc.R))
		sh.loadCond.Broadcast()
	}
	// Arriving rows of internally forwarded source tables — and of
	// external tables this member now self-owns — must reach this pool's
	// sibling shards too (every shard computes joins from its own
	// replica of the sources). Enqueued while the owning shards are
	// still locked, so later owner writes forward in order behind this
	// backfill.
	fwdSet, extSet := *p.fwd.Load(), *p.extRep.Load()
	if len(fwdSet)+len(extSet) > 0 {
		m := p.pmap.Load()
		at := time.Now()
		for _, kv := range rs.KVs {
			t := keys.Table(kv.Key)
			if !fwdSet[t] && !extSet[t] {
				continue
			}
			owner := m.Owner(kv.Key)
			c := core.Change{Op: core.OpPut, Key: kv.Key, Value: kv.Value}
			for j, sh := range p.shards {
				if j != owner {
					sh.enqueue(c, at)
				}
			}
		}
	}
	// A splice that jumped versions (a re-offer) may also move ranges
	// between other members; reconcile them exactly as a map update
	// would, excluding the spliced range itself.
	if !directSuccessor(g.Map, next) {
		p.applyDiffsLocked(g, ng, &rs.R)
	}
	unlockShards(locked)
	// The spliced data is authoritative for rs.R: retained copies of it
	// are obsolete, and the new map may confirm (or return) others.
	p.dropRetainedOverlapping(rs.R)
	p.reconcileRetained(ng)
	p.reb.migrations++
	p.reb.warmMoved += int64(len(rs.Warm))
	return nil
}

// sameBounds reports whether two maps carry identical split points.
func sameBounds(a, b *partition.Map) bool {
	ab, bb := a.Bounds(), b.Bounds()
	if len(ab) != len(bb) {
		return false
	}
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return true
}

// clipState restricts an extracted range state to one shard piece.
func clipState(rs core.RangeState, r keys.Range) core.RangeState {
	out := core.RangeState{R: r}
	for _, kv := range rs.KVs {
		if r.Contains(kv.Key) {
			out.KVs = append(out.KVs, kv)
		}
	}
	for _, w := range rs.Warm {
		if rr := w.R.Intersect(r); !rr.Empty() {
			out.Warm = append(out.Warm, core.WarmRange{Join: w.Join, R: rr})
		}
	}
	return out
}

// ApplyMapUpdate adopts a newer cluster map published after a migration
// or membership change, reconciling every range whose serving address
// changed: ranges this process neither lost through an extraction nor
// gained through a splice are dropped (with eviction semantics) so the
// next read re-fetches from — and re-subscribes at — the new home;
// ranges it lost *without* an extraction (a competing coordinator's
// newer map overruled a local move) are demoted into the retained
// buffer rather than destroyed; ranges handed back to it without a
// splice are restored from that buffer. It reports the ranges dropped
// or demoted. The server fences in-flight subscription pushes from the
// old owners before calling. A first call (no gate yet) just installs
// the view; republishing the map already held confirms retained
// extractions (the coordinator only publishes after the splice landed).
func (p *Pool) ApplyMapUpdate(next *partition.Map, peers []string, self map[int]bool) []keys.Range {
	p.imu.Lock()
	defer p.imu.Unlock()
	g := p.gate.Load()
	if g == nil {
		p.gate.Store(newGate(next, peers, self))
		return nil
	}
	ng := newGate(next, peers, self)
	if !next.NewerThan(g.Map.Epoch(), g.Map.Version()) {
		if next.Epoch() == g.Map.Epoch() && next.Version() == g.Map.Version() && sameBounds(next, g.Map) {
			// The coordinator republished the map we already hold: its
			// splice landed, so retained copies it confirms can go.
			p.reconcileRetained(g)
		}
		return nil
	}
	locked := p.lockAllShards()
	p.gate.Store(ng)
	changed := p.applyDiffsLocked(g, ng, nil)
	unlockShards(locked)
	p.reconcileRetained(ng)
	return changed
}

// applyDiffsLocked reconciles cached state with a newer gate: for every
// range whose serving address changed between old and ng (excluding
// exclude when non-nil — the caller handled that range with real
// data), the range is demoted to the retained buffer if this process
// owned it under old, restored from the buffer if it owns it under ng
// (reconcileRetained finishes that after the locks drop), or dropped as
// a stale replica otherwise. Caller holds imu and every shard lock.
// Reports the ranges that changed hands locally (demoted or dropped).
func (p *Pool) applyDiffsLocked(old, ng *Gate, exclude *keys.Range) []keys.Range {
	oldAddrs, newAddrs := gateAddrs(old), gateAddrs(ng)
	var changed []keys.Range
	for _, d := range partition.DiffAddrs(old.Map, oldAddrs, ng.Map, newAddrs) {
		if exclude != nil {
			if rr := d.Intersect(*exclude); !rr.Empty() && rr == d {
				continue // wholly the spliced range; caller handled it
			}
		}
		ownedOld := old.Self[old.Map.Owner(d.Lo)]
		ownedNew := ng.Self[ng.Map.Owner(d.Lo)]
		switch {
		case ownedOld && !ownedNew:
			// Lost without an extraction: a newer map overruled a local
			// move. Keep the rows recoverable instead of destroying the
			// only copy.
			pieces := p.pmap.Load().Split(d)
			rs := p.extractLocked(d, pieces, false)
			if len(rs.KVs) > 0 || len(rs.Warm) > 0 {
				p.addRetained(retainedEntry{
					rs: rs, epoch: ng.Map.Epoch(), version: ng.Map.Version(),
					dst: ng.addr(ng.Map.Owner(d.Lo)),
				})
			}
			changed = append(changed, d)
		case ownedNew && !ownedOld:
			// Handed to us without a splice — a failover promotion, or a
			// revert; reconcileRetained restores any retained copy after
			// the locks drop. Nothing to drop: we held at most a replica,
			// which is now authoritative-in-waiting. Replica feeds apply
			// rows only to their internally owning shard, though, so the
			// forwarded source tables sibling shards compute joins from
			// must be backfilled the way a splice would have done.
			p.promoteBackfillLocked(d)
		case !ownedOld && !ownedNew:
			// Changed hands between two other servers: our cached copy is
			// a stale replica of data homed elsewhere.
			for _, sh := range p.shards {
				sh.e.DropRange(d)
				sh.loadCond.Broadcast()
			}
			changed = append(changed, d)
		}
	}
	return changed
}

// promoteBackfillLocked re-replicates the forwarded/external-source
// rows of a range this member was just promoted to own: replica feeds
// land rows only on the internally owning shard, while sibling shards'
// joins read their own copies of the source tables. Caller holds imu
// and every shard lock; enqueued changes apply once the locks drop,
// ordered ahead of any later owner write (the owner forwards under the
// same locks).
func (p *Pool) promoteBackfillLocked(d keys.Range) {
	if len(p.shards) == 1 {
		return
	}
	fwdSet, extSet := *p.fwd.Load(), *p.extRep.Load()
	if len(fwdSet)+len(extSet) == 0 {
		return
	}
	m := p.pmap.Load()
	for _, pc := range m.Split(d) {
		sh := p.shards[pc.Owner]
		// Raw store walk: a demand scan would block on loads; the
		// backfill wants only the replica rows already here.
		sh.e.Store().Scan(pc.R.Lo, pc.R.Hi, func(k string, v *store.Value) bool {
			t := keys.Table(k)
			if !fwdSet[t] && !extSet[t] {
				return true
			}
			if m.Owner(k) != pc.Owner {
				return true
			}
			c := core.Change{Op: core.OpPut, Key: k, Value: v.String()}
			at := time.Now()
			for j, dst := range p.shards {
				if j != pc.Owner {
					dst.enqueue(c, at)
				}
			}
			return true
		})
	}
}

// DropRangeAll drops every shard's cached rows of r with eviction
// semantics — the replica manager's teardown when an assignment moves
// a replica elsewhere (the manager never calls it for self-owned
// ranges).
func (p *Pool) DropRangeAll(r keys.Range) {
	for _, sh := range p.shards {
		sh.mu.Lock()
		sh.e.DropRange(r)
		sh.loadCond.Broadcast()
		sh.mu.Unlock()
	}
}

// gateAddrs returns the gate's serving address per owner index, synthesizing
// positional placeholders when the gate was wired without addresses
// (legacy ConnectMesh paths) so DiffAddrs still compares identities.
func gateAddrs(g *Gate) []string {
	n := g.Map.Servers()
	out := make([]string, n)
	for i := 0; i < n; i++ {
		if i < len(g.Peers) && g.Peers[i] != "" {
			out[i] = g.Peers[i]
		} else {
			out[i] = fmt.Sprintf("\x00owner-%d", i)
		}
	}
	return out
}

// --- retained extractions ---

// retainedCap bounds the retained-extraction buffer; beyond it the
// oldest entry evicts (and is counted, so operators can see loss).
const retainedCap = 16

// retainedEntry is one extraction awaiting confirmation.
type retainedEntry struct {
	rs          core.RangeState
	epoch       int64 // position of the map that moved the range out
	version     int64
	dst         string // serving address the range moved to ("" unknown)
	confirmable bool   // true when a coordinator drove this extraction
}

// RetainedStats snapshots the retained-extraction buffer for stats and
// operator triage.
type RetainedStats struct {
	Entries int `json:"entries"` // extractions awaiting confirmation
	Rows    int `json:"rows"`    // rows held across them
	Evicted int `json:"evicted"` // entries dropped at capacity (potential loss)
}

// RetainedStats returns the current retained-buffer occupancy.
func (p *Pool) RetainedStats() RetainedStats {
	p.retmu.Lock()
	defer p.retmu.Unlock()
	st := RetainedStats{Entries: len(p.retained), Evicted: p.retainedEvicted}
	for _, e := range p.retained {
		st.Rows += len(e.rs.KVs)
	}
	return st
}

// addRetained appends an entry, evicting oldest-first at capacity.
// Callers hold imu.
func (p *Pool) addRetained(e retainedEntry) {
	p.retmu.Lock()
	defer p.retmu.Unlock()
	if len(p.retained) >= retainedCap {
		p.retained = p.retained[1:]
		p.retainedEvicted++
	}
	p.retained = append(p.retained, e)
}

// dropRetainedOverlapping discards retained entries overlapping r — a
// splice delivered authoritative data for the range, so the older copy
// must not resurface. Callers hold imu.
func (p *Pool) dropRetainedOverlapping(r keys.Range) {
	p.retmu.Lock()
	defer p.retmu.Unlock()
	kept := p.retained[:0]
	for _, e := range p.retained {
		if e.rs.R.Intersect(r).Empty() {
			kept = append(kept, e)
		}
	}
	p.retained = kept
}

// reconcileRetained applies the adopted gate ng to the retained buffer:
// entries whose range ng hands back to this process are restored into
// the owning shards (without clobbering fresher rows) and dropped;
// confirmable entries whose intended destination serves the range under
// a map at or beyond theirs are confirmed and dropped; everything else
// waits. Callers hold imu (so the pool map is stable) but not shard
// locks.
func (p *Pool) reconcileRetained(ng *Gate) {
	p.retmu.Lock()
	var restore []retainedEntry
	kept := p.retained[:0]
	for _, e := range p.retained {
		owner := ng.Map.Owner(e.rs.R.Lo)
		switch {
		case ng.Self[owner] && ng.OwnsRange(e.rs.R):
			restore = append(restore, e)
		case e.confirmable && e.dst != "" && ng.addr(owner) == e.dst &&
			partition.Compare(ng.Map.Epoch(), ng.Map.Version(), e.epoch, e.version) >= 0:
			// The destination serves the range under a published map at or
			// past the transfer: the splice landed.
		default:
			kept = append(kept, e)
		}
	}
	p.retained = kept
	p.retmu.Unlock()
	for _, e := range restore {
		for _, pc := range p.pmap.Load().Split(e.rs.R) {
			sh := p.shards[pc.Owner]
			sh.mu.Lock()
			sh.e.RestoreRange(clipState(e.rs, pc.R))
			sh.loadCond.Broadcast()
			sh.mu.Unlock()
		}
		// Restored source rows reach sibling shards through the same
		// replication path as a splice.
		fwdSet, extSet := *p.fwd.Load(), *p.extRep.Load()
		if len(fwdSet)+len(extSet) == 0 {
			continue
		}
		m := p.pmap.Load()
		at := time.Now()
		for _, kv := range e.rs.KVs {
			t := keys.Table(kv.Key)
			if !fwdSet[t] && !extSet[t] {
				continue
			}
			owner := m.Owner(kv.Key)
			c := core.Change{Op: core.OpPut, Key: kv.Key, Value: kv.Value}
			for j, sh := range p.shards {
				if j != owner {
					sh.enqueue(c, at)
				}
			}
		}
	}
}

// LoadInfo snapshots the pool's cumulative served load and recent key
// samples — the raw material a cluster-level rebalancer polls through
// the stat RPC to find hot servers and pick split points.
type LoadInfo struct {
	Units   int64    `json:"units"`   // ops + rows served since start
	Samples []string `json:"samples"` // recently served keys (ring snapshot)
}

// LoadInfo returns the pool's current load snapshot.
func (p *Pool) LoadInfo() LoadInfo {
	var li LoadInfo
	for _, sh := range p.shards {
		li.Units += sh.unitsTotal.Load()
		sh.mu.Lock()
		for _, k := range sh.samples {
			if k != "" {
				li.Samples = append(li.Samples, k)
			}
		}
		sh.mu.Unlock()
	}
	return li
}
