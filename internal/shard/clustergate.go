package shard

// Cluster-level live migration: the pool-side half of moving a key range
// between *servers* (the in-process half, moving ranges between shards,
// is rebalance.go). A mesh-wired server installs a Gate — its view of
// the cluster's versioned partition map plus the owner indexes that are
// this process — and from then on every routed operation re-validates
// cluster ownership under the shard lock it already holds, exactly the
// way pool-internal migration re-validates the shard map. An operation
// whose range has migrated to another server fails with *NotOwnerError
// carrying the current map, which travels back to the client as a
// StatusNotOwner reply; the client adopts the newer map and retries
// against the new owner. The same lock-ordered swap discipline as
// MoveBound makes the ownership flip atomic with the data transfer:
//
//   - ExtractClusterRange (at the source) locks every shard overlapping
//     the range, swaps the gate to the successor map, settles queued
//     forwarded writes, and extracts the range's state. A write that
//     held a shard lock first is captured in the extracted rows; one
//     that acquires the lock afterwards re-checks the gate and bounces.
//   - SpliceClusterRange (at the destination) locks the shards, swaps
//     the gate, drops its own stale cached copies of the range (it may
//     have loaded and computed over it as a subscriber), and installs
//     the moved rows plus the source's warm computed coverage — all
//     before any reader under those locks can observe the new map.
//   - ApplyMapUpdate (at every other member) adopts the new map and
//     drops, with §2.5 eviction semantics, the cached state for ranges
//     that changed hands, so the next read re-fetches from and
//     re-subscribes at the new home. The server fences in-flight
//     subscription pushes from the old owner before calling it.
//
// Readers never observe a gap or duplicate for the same reason as
// in-process migration: every key is owned by exactly one server under
// every published map, state moves while the owning shards are locked,
// and every operation re-checks ownership under the lock it holds.

import (
	"fmt"

	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/partition"
)

// Gate is a pool's view of the cluster partition: the versioned map and
// the owner indexes this process serves. A Gate is immutable; migration
// replaces it (under the affected shards' locks) like the pool's own
// partition map.
type Gate struct {
	Map  *partition.Map
	Self map[int]bool
}

// OwnsKey reports whether this process is key's home under the gate's
// map.
func (g *Gate) OwnsKey(key string) bool { return g.Self[g.Map.Owner(key)] }

// OwnsRange reports whether every key of r is homed at this process.
func (g *Gate) OwnsRange(r keys.Range) bool {
	if r.Empty() {
		return true
	}
	for _, pc := range g.Map.Split(r) {
		if !g.Self[pc.Owner] {
			return false
		}
	}
	return true
}

// notOwner builds the error for an operation outside the gate.
func (g *Gate) notOwner() *NotOwnerError {
	return &NotOwnerError{Version: g.Map.Version(), Bounds: g.Map.Bounds()}
}

// NotOwnerError reports that an operation's keys are not homed at this
// process under the current cluster map (a live migration moved them).
// It carries that map so the caller — ultimately the cluster client —
// can re-route and retry instead of failing.
type NotOwnerError struct {
	Version int64
	Bounds  []string
}

func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("shard: not the owner of the requested range (cluster map v%d)", e.Version)
}

// Gate returns the pool's current cluster view (nil when the pool is
// not part of a gated cluster).
func (p *Pool) Gate() *Gate { return p.gate.Load() }

// SetGate installs or replaces the pool's cluster view wholesale —
// initial wiring (ConnectMesh, a cluster client publishing its map), not
// migration, which swaps the gate under shard locks itself. A nil map
// clears the gate.
func (p *Pool) SetGate(g *Gate) {
	if g == nil {
		p.gate.Store(nil)
		return
	}
	p.gate.Store(g)
}

// gateCheckKey validates key against the cluster gate. Called with the
// owning shard's lock held, so a concurrent migration either completed
// before this check (new gate visible) or will lock this shard after the
// caller releases it.
func (p *Pool) gateCheckKey(key string) error {
	if g := p.gate.Load(); g != nil && !g.OwnsKey(key) {
		return g.notOwner()
	}
	return nil
}

// gateCheckRange validates a scanned range against the cluster gate,
// under the owning shard's lock.
func (p *Pool) gateCheckRange(r keys.Range) error {
	if g := p.gate.Load(); g != nil && !g.OwnsRange(r) {
		return g.notOwner()
	}
	return nil
}

// lockShardsOverlapping locks (in index order) every shard whose range
// overlaps r under the pool's current map, returning the locked shards
// and the per-shard pieces of r. Caller holds imu, so the pool map is
// stable.
func (p *Pool) lockShardsOverlapping(r keys.Range) ([]*Shard, []partition.Shard) {
	pieces := p.pmap.Load().Split(r)
	locked := make([]*Shard, 0, len(p.shards))
	seen := make(map[int]bool, len(pieces))
	for _, pc := range pieces {
		seen[pc.Owner] = true
	}
	for i, sh := range p.shards { // index order: the pool's lock hierarchy
		if seen[i] {
			sh.mu.Lock()
			locked = append(locked, sh)
		}
	}
	return locked, pieces
}

func unlockShards(locked []*Shard) {
	for i := len(locked) - 1; i >= 0; i-- {
		locked[i].mu.Unlock()
	}
}

// ExtractClusterRange removes range r's state from this pool so it can
// move to another server, atomically flipping cluster ownership: next
// must be the successor map (exactly one version ahead of the gate's).
// On success the returned state holds the owned rows — including
// presence-backed rows, whose home this server was — and the warm
// computed coverage for the destination to rebuild. On a version
// conflict or if r is not wholly self-owned, *NotOwnerError carries the
// current map and nothing changes.
func (p *Pool) ExtractClusterRange(r keys.Range, next *partition.Map) (core.RangeState, error) {
	p.imu.Lock()
	defer p.imu.Unlock()
	g := p.gate.Load()
	if g == nil {
		return core.RangeState{}, fmt.Errorf("shard: no cluster view installed")
	}
	if next.Version() != g.Map.Version()+1 || !g.OwnsRange(r) {
		return core.RangeState{}, g.notOwner()
	}
	locked, pieces := p.lockShardsOverlapping(r)
	defer unlockShards(locked)
	// Publish first: every operation that acquires one of the locked
	// shards' locks after us re-validates against this gate and bounces.
	p.gate.Store(&Gate{Map: next, Self: g.Self})

	rs := core.RangeState{R: r}
	fwdSet := *p.fwd.Load()
	// Nothing is kept: unlike an in-process bound move, the range is
	// leaving this server entirely, so even rows of internally
	// forwarded source tables — whose authoritative copy lives on the
	// owning shard — are captured and moved. (The destination
	// re-replicates them to its own sibling shards during the splice.)
	keepNone := func(string) bool { return false }
	for _, pc := range pieces {
		sh := p.shards[pc.Owner]
		// Settle forwarded writes queued for the departing range so the
		// extraction captures them (in-process replication order).
		sh.applyQueuedRange(pc.R)
		one := sh.e.ExtractRange(pc.R, keepNone, true)
		rs.KVs = append(rs.KVs, one.KVs...)
		rs.Warm = append(rs.Warm, one.Warm...)
		rs.EvictedPresence = append(rs.EvictedPresence, one.EvictedPresence...)
	}
	// Sibling shards may hold forwarded replicas of departing source
	// rows; those are stale the moment the range is homed elsewhere.
	if len(fwdSet) > 0 {
		for i, sh := range p.shards {
			owns := false
			for _, pc := range pieces {
				if pc.Owner == i {
					owns = true
				}
			}
			if !owns {
				sh.mu.Lock()
				sh.e.DropRange(r)
				sh.mu.Unlock()
			}
		}
	}
	p.reb.migrations++
	p.reb.keysMoved += int64(len(rs.KVs))
	return rs, nil
}

// SpliceClusterRange folds a range extracted at another server into this
// pool, atomically flipping cluster ownership to us: next must be the
// successor map under which we own rs.R. The pool's own cached traces of
// the range — loaded source rows, computed coverage, presence records
// from its time as a subscriber — are dropped first (§2.5), then the
// moved rows land and the source's previously valid computed coverage
// rebuilds warm.
func (p *Pool) SpliceClusterRange(rs core.RangeState, next *partition.Map) error {
	p.imu.Lock()
	defer p.imu.Unlock()
	g := p.gate.Load()
	if g == nil {
		return fmt.Errorf("shard: no cluster view installed")
	}
	if next.Version() <= g.Map.Version() {
		// Only a retry of the exact splice already applied is an
		// idempotent success. A *different* map at the same version is a
		// concurrent coordinator that lost the race — succeeding here
		// would silently drop its extracted rows; the conflict error
		// sends them back up the coordinator's failure path instead.
		if next.Version() == g.Map.Version() && sameBounds(next, g.Map) {
			return nil
		}
		return g.notOwner()
	}
	if next.Version() != g.Map.Version()+1 {
		return g.notOwner()
	}
	ng := &Gate{Map: next, Self: g.Self}
	if !ng.OwnsRange(rs.R) {
		return g.notOwner()
	}
	locked, pieces := p.lockShardsOverlapping(rs.R)
	p.gate.Store(ng)
	for _, pc := range pieces {
		sh := p.shards[pc.Owner]
		// Stale queued forwards and subscriber-era cached state for the
		// range must not shadow the moved rows.
		sh.applyQueuedRange(pc.R)
		sh.e.DropRange(pc.R)
		sh.e.SpliceRange(clipState(rs, pc.R))
		sh.loadCond.Broadcast()
	}
	// Arriving rows of internally forwarded source tables must reach
	// this pool's sibling shards too (every shard computes joins from
	// its own replica of the sources). Enqueued while the owning shards
	// are still locked, so later owner writes forward in order behind
	// this backfill.
	if fwdSet := *p.fwd.Load(); len(fwdSet) > 0 {
		m := p.pmap.Load()
		for _, kv := range rs.KVs {
			if !fwdSet[keys.Table(kv.Key)] {
				continue
			}
			owner := m.Owner(kv.Key)
			c := core.Change{Op: core.OpPut, Key: kv.Key, Value: kv.Value}
			for j, sh := range p.shards {
				if j != owner {
					sh.enqueue(c)
				}
			}
		}
	}
	unlockShards(locked)
	p.reb.migrations++
	p.reb.warmMoved += int64(len(rs.Warm))
	return nil
}

// sameBounds reports whether two maps carry identical split points.
func sameBounds(a, b *partition.Map) bool {
	ab, bb := a.Bounds(), b.Bounds()
	if len(ab) != len(bb) {
		return false
	}
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return true
}

// clipState restricts an extracted range state to one shard piece.
func clipState(rs core.RangeState, r keys.Range) core.RangeState {
	out := core.RangeState{R: r}
	for _, kv := range rs.KVs {
		if r.Contains(kv.Key) {
			out.KVs = append(out.KVs, kv)
		}
	}
	for _, w := range rs.Warm {
		if rr := w.R.Intersect(r); !rr.Empty() {
			out.Warm = append(out.Warm, core.WarmRange{Join: w.Join, R: rr})
		}
	}
	return out
}

// ApplyMapUpdate adopts a newer cluster map published after a migration
// between two other servers, dropping (with eviction semantics) the
// cached state for every changed range this process neither lost through
// an extraction nor gained through a splice. It reports the ranges
// dropped. The server fences in-flight subscription pushes from the old
// owners before calling. A first call (no gate yet) just installs the
// view.
func (p *Pool) ApplyMapUpdate(next *partition.Map, self map[int]bool) []keys.Range {
	p.imu.Lock()
	defer p.imu.Unlock()
	g := p.gate.Load()
	if g == nil {
		p.gate.Store(&Gate{Map: next, Self: self})
		return nil
	}
	if next.Version() <= g.Map.Version() {
		return nil
	}
	var dropped []keys.Range
	for _, d := range partition.Diff(g.Map, next) {
		// Ranges we own under either map were handled by extract/splice
		// (or never left this process); everything else changed hands
		// between two other servers and our cached copy is now a stale
		// replica of data homed elsewhere.
		if g.Self[g.Map.Owner(d.Lo)] || g.Self[next.Owner(d.Lo)] {
			continue
		}
		dropped = append(dropped, d)
	}
	p.gate.Store(&Gate{Map: next, Self: g.Self})
	for _, d := range dropped {
		for _, sh := range p.shards {
			sh.mu.Lock()
			sh.e.DropRange(d)
			sh.loadCond.Broadcast()
			sh.mu.Unlock()
		}
	}
	return dropped
}

// LoadInfo snapshots the pool's cumulative served load and recent key
// samples — the raw material a cluster-level rebalancer polls through
// the stat RPC to find hot servers and pick split points.
type LoadInfo struct {
	Units   int64    `json:"units"`   // ops + rows served since start
	Samples []string `json:"samples"` // recently served keys (ring snapshot)
}

// LoadInfo returns the pool's current load snapshot.
func (p *Pool) LoadInfo() LoadInfo {
	var li LoadInfo
	for _, sh := range p.shards {
		li.Units += sh.unitsTotal.Load()
		sh.mu.Lock()
		for _, k := range sh.samples {
			if k != "" {
				li.Samples = append(li.Samples, k)
			}
		}
		sh.mu.Unlock()
	}
	return li
}
