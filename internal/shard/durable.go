package shard

// Pool-level durable store support: the snapshot walk the server's
// durable subsystem drives, the recovery-side restore, and the warm
// rebuild. The pool's job here is placement — which rows are
// owner-authoritative (logged and snapshotted exactly once) and which
// shard a recovered row routes to — while internal/durable owns the
// disk format and internal/server owns when any of this runs.

import (
	"sync"
	"sync/atomic"

	"pequod/internal/core"
)

// JoinOutput reports whether table is some installed join's output.
// Safe from change hooks: the set is copy-on-write.
func (p *Pool) JoinOutput(table string) bool { return (*p.outs.Load())[table] }

// SnapshotDurable walks the pool's durable state for one snapshot:
// every owner-authoritative base row (join outputs are skipped — they
// are derived, captured as warm coverage instead) and every valid
// computed range per join. It holds imu for the duration, which
// serializes against migrations and join installs so the partition map
// and join indexes are stable across the whole walk; each shard is
// scanned under its own lock, so writes keep flowing to every shard
// not currently being walked.
func (p *Pool) SnapshotDurable(emitKV func(k, v string), emitWarm func(join int, lo, hi string)) {
	p.imu.Lock()
	defer p.imu.Unlock()
	m := p.pmap.Load()
	outs := *p.outs.Load()
	skip := func(t string) bool { return outs[t] }
	for i, sh := range p.shards {
		owner := i
		sh.mu.Lock()
		sh.e.SnapshotWalk(skip,
			func(k, v string) {
				// Sibling shards hold forwarded replicas of source tables;
				// only the owning shard's copy is authoritative.
				if m.Owner(k) == owner {
					emitKV(k, v)
				}
			},
			func(w core.WarmRange) { emitWarm(w.Join, w.R.Lo, w.R.Hi) })
		sh.mu.Unlock()
	}
}

// RestoreDurable folds recovered rows back into the pool, each routed
// to its owning shard, installing only keys the store does not already
// hold — a write that landed after recovery began is newer than
// anything on disk and must win. The quiet path still notifies, so
// forwarded source tables replicate to sibling shards exactly as a
// live write would; call it before the server's change hook is set, or
// every restored row would be re-logged. Returns the number of rows
// installed.
func (p *Pool) RestoreDurable(kvs []core.KV) int {
	n := 0
	for _, kv := range kvs {
		sh := p.lockOwner(kv.Key)
		if _, ok := sh.e.Store().Get(kv.Key); ok {
			sh.mu.Unlock()
			continue
		}
		sh.e.PutQuiet(kv.Key, kv.Value)
		sh.mu.Unlock()
		n++
	}
	return n
}

// restoreParallelMin is the recovered-row count below which the
// bucketed fan-out isn't worth its setup; small restores stay serial.
const restoreParallelMin = 4096

// RestoreDurableParallel is RestoreDurable fanned out across the
// pool's shards: recovered rows are bucketed by owning shard and the
// buckets restore concurrently, so a restart with a big data dir stops
// serializing server startup behind one goroutine's store walk. Each
// row still goes through the same per-key lockOwner/Get/PutQuiet path
// — lockOwner re-checks ownership under the shard lock, so a
// concurrent migration moves the row's bucket worker to the right
// shard exactly as it would a live write — which keeps the fan-out a
// pure scheduling change, not a second restore semantics.
func (p *Pool) RestoreDurableParallel(kvs []core.KV) int {
	if len(kvs) < restoreParallelMin || len(p.shards) < 2 {
		return p.RestoreDurable(kvs)
	}
	m := p.pmap.Load()
	buckets := make([][]core.KV, len(p.shards))
	for _, kv := range kvs {
		o := m.Owner(kv.Key)
		buckets[o] = append(buckets[o], kv)
	}
	var n int64
	var wg sync.WaitGroup
	for _, b := range buckets {
		if len(b) == 0 {
			continue
		}
		wg.Add(1)
		go func(b []core.KV) {
			defer wg.Done()
			atomic.AddInt64(&n, int64(p.RestoreDurable(b)))
		}(b)
	}
	wg.Wait()
	return int(n)
}

// RebuildWarm eagerly re-derives previously valid computed coverage on
// the owning shards, so ranges that were hot before a restart come
// back hot. Call it only once the pool's sources are wired (joins
// installed, mesh loaders connected): ensure() computes from whatever
// sources exist, and coverage computed before a loader is attached
// would be marked valid over partial data.
func (p *Pool) RebuildWarm(ws []core.WarmRange) {
	if len(ws) == 0 {
		return
	}
	p.imu.Lock()
	defer p.imu.Unlock()
	m := p.pmap.Load()
	for _, w := range ws {
		for _, pc := range m.Split(w.R) {
			sh := p.shards[pc.Owner]
			sh.mu.Lock()
			sh.e.RebuildWarm([]core.WarmRange{{Join: w.Join, R: pc.R}})
			sh.mu.Unlock()
		}
	}
}
