package shard

// Load-aware shard rebalancing with live range migration. The static
// partition PR 1 introduced caps read scaling under skew: whatever
// bounds the operator picked, a hot shard stays hot (the paper's §2.4
// deployment assumes well-chosen bounds up front). The rebalancer
// closes that gap inside the process: every shard accounts the work it
// serves, a background goroutine folds the counts into an EWMA, and
// when one shard runs hot it migrates a slice of that shard's range —
// live, under both shards' locks, without stopping reads elsewhere — to
// a cooler neighbor by moving the partition bound between them.
//
// Migration protocol (MoveBound), for a range r moving src -> dst:
//
//  1. Take imu: migrations serialize with each other and with join
//     installation/backfill, so the forwarded-table set and the map are
//     stable.
//  2. Lock both shards (in index order; scans lock one shard at a time,
//     so the pool-wide hierarchy stays acyclic).
//  3. Drain dst's queued replica writes for r into its engine, in
//     order. dst is about to become r's owner: a stale forwarded write
//     replayed after the flip would clobber newer owner writes and
//     re-forward the stale value. applyLoop's pop-under-lock guarantees
//     every unapplied forward is still in the queue here.
//  4. ExtractRange at src / SpliceRange at dst (internal/core): owned
//     rows move; replicated source-table rows stay put on both sides
//     (ownership alone flips); computed and loader-backed ranges drop
//     with eviction semantics and the previously valid computed
//     coverage is rebuilt eagerly at dst, so the hot range arrives
//     warm.
//  5. Publish the successor partition map. Routed operations
//     re-validate ownership after locking a shard, so a request that
//     raced the migration reroutes instead of reading a gap or writing
//     to the old owner.
//
// Readers never observe a gap or duplicate: every key is owned by
// exactly one shard under every published map (fuzzed in
// internal/partition), data moves while both owners are locked, and
// every read path re-checks ownership under the lock it holds.

import (
	"fmt"
	"sort"
	"time"

	"pequod/internal/core"
	"pequod/internal/keys"
)

// Rebalance configures the load-aware rebalancer.
type Rebalance struct {
	// Interval between load samples / rebalance decisions.
	// Default 100ms.
	Interval time.Duration
	// Ratio is how far above the mean per-shard load the hottest shard
	// must run before a migration triggers. Default 1.5.
	Ratio float64
	// MinOps is the per-interval pool-wide load floor below which the
	// pool is considered idle and no move happens. Default 128.
	MinOps int64
	// HalfLife weights the EWMA: the fraction of each new sample folded
	// in per interval, in (0, 1]. Default 0.5.
	HalfLife float64
}

// withDefaults fills unset knobs.
func (r Rebalance) withDefaults() Rebalance {
	if r.Interval <= 0 {
		r.Interval = 100 * time.Millisecond
	}
	if r.Ratio <= 1 {
		r.Ratio = 1.5
	}
	if r.MinOps <= 0 {
		r.MinOps = 128
	}
	if r.HalfLife <= 0 || r.HalfLife > 1 {
		r.HalfLife = 0.5
	}
	return r
}

// RebalanceStats snapshots the rebalancer's activity.
type RebalanceStats struct {
	Enabled    bool      `json:"enabled"`
	Migrations int64     `json:"migrations"` // boundary moves executed
	KeysMoved  int64     `json:"keys_moved"` // owned rows physically moved
	WarmMoved  int64     `json:"warm_moved"` // computed ranges rebuilt warm at the destination
	Version    int64     `json:"version"`    // current partition map version
	Bounds     []string  `json:"bounds"`     // current split points
	Loads      []float64 `json:"loads"`      // per-shard EWMA load (ops + rows per interval)
}

// rebState is the pool's rebalancer bookkeeping. Counters update on
// every MoveBound, including manual ones, so tests and operators see
// forced moves too.
type rebState struct {
	running    bool
	stop       chan struct{}
	done       chan struct{}
	migrations int64
	keysMoved  int64
	warmMoved  int64
	ewma       []float64

	// Hysteresis: a shard must run hot for hotPersist consecutive ticks
	// before a migration triggers, and after a migration the rebalancer
	// sits out cooldownTicks ticks. Without this, transient skew — a
	// burst draining, closed-loop workers finishing at different times —
	// causes migration thrash that costs more than the imbalance it
	// chases.
	hotStreak int
	cooldown  int
}

// hotPersist and cooldownTicks are the hysteresis constants (see
// rebState). A migration can run at most once every
// cooldownTicks+hotPersist intervals.
const (
	hotPersist    = 2
	cooldownTicks = 5
)

// startRebalancer launches the rebalance goroutine (called from New for
// multi-shard pools with Config.Rebalance set).
func (p *Pool) startRebalancer(cfg Rebalance) {
	cfg = cfg.withDefaults()
	p.reb.running = true
	p.reb.stop = make(chan struct{})
	p.reb.done = make(chan struct{})
	go p.rebalanceLoop(cfg)
}

// stopRebalancer stops the goroutine and waits for it (idempotent).
func (p *Pool) stopRebalancer() {
	p.imu.Lock()
	running := p.reb.running
	p.reb.running = false
	p.imu.Unlock()
	if running {
		close(p.reb.stop)
		<-p.reb.done
	}
}

func (p *Pool) rebalanceLoop(cfg Rebalance) {
	defer close(p.reb.done)
	t := time.NewTicker(cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.reb.stop:
			return
		case <-t.C:
			p.rebalanceTick(cfg)
		}
	}
}

// rebalanceTick takes one load sample and migrates at most one range.
// It reports whether a migration ran (tests poll it indirectly through
// RebalanceStats).
func (p *Pool) rebalanceTick(cfg Rebalance) bool {
	n := len(p.shards)
	p.imu.Lock()
	if p.reb.ewma == nil {
		p.reb.ewma = make([]float64, n)
	}
	var raw int64
	hot, total := 0, 0.0
	for i, sh := range p.shards {
		d := sh.units.Swap(0)
		raw += d
		p.reb.ewma[i] = (1-cfg.HalfLife)*p.reb.ewma[i] + cfg.HalfLife*float64(d)
		total += p.reb.ewma[i]
		if p.reb.ewma[i] > p.reb.ewma[hot] {
			hot = i
		}
	}
	ewma := append([]float64(nil), p.reb.ewma...)
	mean := total / float64(n)
	idle := raw < cfg.MinOps || total == 0
	over := !idle && ewma[hot] > cfg.Ratio*mean
	if p.reb.cooldown > 0 {
		p.reb.cooldown--
		over = false
	} else if over {
		p.reb.hotStreak++
		over = p.reb.hotStreak >= hotPersist
	} else {
		// Idle ticks break the streak too: two hot bursts separated by
		// hours of idleness are not "persistently hot", and the key
		// samples from the first burst would be stale by the second.
		p.reb.hotStreak = 0
	}
	p.imu.Unlock()

	if !over {
		return false
	}

	// Shed load to the cooler neighbor: enough to meet it halfway.
	nb := hot + 1
	if hot == n-1 || (hot > 0 && ewma[hot-1] < ewma[nb]) {
		nb = hot - 1
	}
	frac := (ewma[hot] - ewma[nb]) / (2 * ewma[hot])
	if frac <= 0 {
		return false
	}

	bound, ok := p.pickBound(hot, nb, frac)
	if !ok {
		return false
	}
	boundIdx := hot
	if nb < hot {
		boundIdx = hot - 1
	}
	moved := p.MoveBound(boundIdx, bound) == nil
	if moved {
		p.imu.Lock()
		p.reb.hotStreak = 0
		p.reb.cooldown = cooldownTicks
		p.imu.Unlock()
	}
	return moved
}

// pickBound chooses the new split point between the hot shard and its
// neighbor from the hot shard's recent key samples: the quantile that
// sheds roughly frac of the hot shard's load. Returns false when there
// are too few samples in the hot shard's current range to trust.
func (p *Pool) pickBound(hot, nb int, frac float64) (string, bool) {
	const minSamples = 16
	m := p.pmap.Load()
	sh := p.shards[hot]
	var keysIn []string
	sh.mu.Lock()
	for _, k := range sh.samples {
		if k != "" && m.Owner(k) == hot {
			keysIn = append(keysIn, k)
		}
	}
	sh.mu.Unlock()
	if len(keysIn) < minSamples {
		return "", false
	}
	sort.Strings(keysIn)
	var q string
	if nb > hot {
		// Move the top frac of the hot shard's keys right: the new
		// bound is the (1-frac) quantile.
		q = keysIn[clampIndex(int(float64(len(keysIn))*(1-frac)), len(keysIn))]
	} else {
		// Move the bottom frac left: the bound above the neighbor rises
		// to the frac quantile.
		q = keysIn[clampIndex(int(float64(len(keysIn))*frac), len(keysIn))]
	}
	return q, true
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// MoveBound executes one live migration: bound i of the partition map
// moves to bound, and the range between the old and new split points
// migrates between shards i and i+1 (whichever direction the move
// implies) without readers observing a gap or duplicate. It validates
// like partition.Map.MoveBound and is safe to call concurrently with
// traffic; the rebalancer uses it, and tests force it directly.
func (p *Pool) MoveBound(i int, bound string) error {
	if len(p.shards) == 1 {
		return fmt.Errorf("shard: single-shard pool has no bounds to move")
	}
	p.imu.Lock()
	defer p.imu.Unlock()
	m := p.pmap.Load()
	next, err := m.MoveBound(i, bound)
	if err != nil {
		return err
	}
	old := m.Bound(i)
	var src, dst int
	var r keys.Range
	if bound < old {
		src, dst, r = i, i+1, keys.Range{Lo: bound, Hi: old}
	} else {
		src, dst, r = i+1, i, keys.Range{Lo: old, Hi: bound}
	}
	a, b := p.shards[src], p.shards[dst]
	lo, hi := a, b
	if dst < src {
		lo, hi = b, a
	}
	lo.mu.Lock()
	hi.mu.Lock()

	// Step 3: settle dst's pending forwarded writes for r before it
	// becomes owner (see the protocol comment at the top of this file).
	b.applyQueuedRange(r)

	// Step 4: move state. Replicated source tables stay in place on
	// both sides; imu (held) keeps the forwarded set stable.
	fwdSet := *p.fwd.Load()
	rs := a.e.ExtractRange(r, func(table string) bool { return fwdSet[table] }, false)
	b.e.SpliceRange(rs)

	// Step 5: publish. From here every routed operation that locks
	// either shard re-validates against this map.
	p.pmap.Store(next)

	p.reb.migrations++
	p.reb.keysMoved += int64(len(rs.KVs))
	p.reb.warmMoved += int64(len(rs.Warm))

	// Readers blocked on dst waiting for data may now be satisfiable by
	// the spliced rows.
	b.loadCond.Broadcast()

	hi.mu.Unlock()
	lo.mu.Unlock()
	return nil
}

// applyQueuedRange applies (in queue order) and removes every queued
// forwarded change whose key lies in r. Called with sh.mu held; entries
// outside r stay queued for the applier. The qcond broadcast keeps
// Quiesce honest about the shrunken queue.
func (sh *Shard) applyQueuedRange(r keys.Range) {
	sh.qmu.Lock()
	var mine []core.Change
	rest := sh.queue[:0]
	for _, qc := range sh.queue {
		if r.Contains(qc.c.Key) {
			mine = append(mine, qc.c)
		} else {
			rest = append(rest, qc)
		}
	}
	sh.queue = rest
	sh.qmu.Unlock()
	for _, c := range mine {
		sh.applyChange(c)
	}
	if len(mine) > 0 {
		sh.loadCond.Broadcast()
		sh.qcond.Broadcast()
	}
}

// ShardLoads returns each shard's cumulative served load (ops + rows
// since the pool started) — the raw material for skew measurements.
func (p *Pool) ShardLoads() []float64 {
	out := make([]float64, len(p.shards))
	for i, sh := range p.shards {
		out[i] = float64(sh.unitsTotal.Load())
	}
	return out
}

// RebalanceStats snapshots rebalancer activity and per-shard load.
func (p *Pool) RebalanceStats() RebalanceStats {
	p.imu.Lock()
	defer p.imu.Unlock()
	m := p.pmap.Load()
	return RebalanceStats{
		Enabled:    p.reb.running,
		Migrations: p.reb.migrations,
		KeysMoved:  p.reb.keysMoved,
		WarmMoved:  p.reb.warmMoved,
		Version:    m.Version(),
		Bounds:     m.Bounds(),
		Loads:      append([]float64(nil), p.reb.ewma...),
	}
}
