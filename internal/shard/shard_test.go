package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"pequod/internal/core"
	"pequod/internal/keys"
)

const timelineJoin = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

// testBounds split the Twip keyspace across four shards: shard 0 owns
// everything below the post table, shard 1 the posts and subscriptions,
// and shards 2 and 3 split the timeline table down the middle — so
// timeline scans straddle shards and join sources live away from join
// outputs.
var testBounds = []string{"p|", "t|", "t|u5"}

func newPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestRoutingAndOwnership(t *testing.T) {
	p := newPool(t, Config{Bounds: testBounds})
	if p.NumShards() != 4 {
		t.Fatalf("NumShards = %d", p.NumShards())
	}
	p.Put("a|1", "v0")    // below p| -> shard 0
	p.Put("p|u1|9", "v1") // shard 1
	p.Put("t|u2|5", "v2") // shard 2
	p.Put("t|u7|5", "v3") // shard 3
	for key, want := range map[string]string{
		"a|1": "v0", "p|u1|9": "v1", "t|u2|5": "v2", "t|u7|5": "v3",
	} {
		if v, ok := p.Get(key); !ok || v != want {
			t.Fatalf("Get(%q) = %q, %v", key, v, ok)
		}
	}
	// Each key landed on exactly its owning shard's store.
	for i, key := range []string{"a|1", "p|u1|9", "t|u2|5", "t|u7|5"} {
		if p.Owner(key) != i {
			t.Fatalf("Owner(%q) = %d, want %d", key, p.Owner(key), i)
		}
		p.Shard(i).WithEngine(func(e *core.Engine) {
			if e.Store().Len() != 1 {
				t.Errorf("shard %d store len = %d", i, e.Store().Len())
			}
		})
	}
	if !p.Remove("t|u7|5") || p.Remove("t|u7|5") {
		t.Fatal("Remove")
	}
	if n := p.Count("", ""); n != 3 {
		t.Fatalf("Count = %d", n)
	}
}

func TestCrossShardScanMerges(t *testing.T) {
	p := newPool(t, Config{Bounds: testBounds})
	var want []core.KV
	for u := 0; u < 10; u++ {
		for i := 0; i < 3; i++ {
			k := fmt.Sprintf("t|u%d|%d", u, i)
			p.Put(k, "v")
			want = append(want, core.KV{Key: k, Value: "v"})
		}
	}
	got := p.Scan("t|", "t}", 0, nil, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cross-shard scan = %v", got)
	}
	if got := p.Scan("t|", "t}", 7, nil, nil); !reflect.DeepEqual(got, want[:7]) {
		t.Fatalf("limited scan = %v", got)
	}
	if n := p.Count("t|u4|", "t|u6}"); n != 9 {
		t.Fatalf("straddling count = %d", n)
	}
}

// TestJoinAcrossShards is the sharded Twip: subscriptions and posts live
// on shard 1, the computed timelines on shards 2 and 3. Source writes
// must flow to the timeline owners through the pool's forwarding.
func TestJoinAcrossShards(t *testing.T) {
	p := newPool(t, Config{Bounds: testBounds})
	if err := p.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	p.Put("s|u2|u8", "1")
	p.Put("s|u7|u8", "1")
	p.Put("p|u8|100", "Hi")
	p.Quiesce()
	for _, u := range []string{"u2", "u7"} {
		kvs := p.Scan("t|"+u+"|", "t|"+u+"}", 0, nil, nil)
		if len(kvs) != 1 || kvs[0].Key != "t|"+u+"|100|u8" || kvs[0].Value != "Hi" {
			t.Fatalf("timeline %s = %v", u, kvs)
		}
	}
	// Incremental maintenance across shards: a new post reaches both
	// materialized timelines (on different shards) after propagation.
	p.Put("p|u8|150", "again")
	p.Quiesce()
	for _, u := range []string{"u2", "u7"} {
		if v, ok := p.Get("t|" + u + "|150|u8"); !ok || v != "again" {
			t.Fatalf("timeline %s missed the new post: %q %v", u, v, ok)
		}
	}
	// Removal propagates too.
	p.Remove("p|u8|100")
	p.Quiesce()
	if _, ok := p.Get("t|u2|100|u8"); ok {
		t.Fatal("removed post still on timeline")
	}
}

// TestInstallBackfill installs the join after base data exists: the
// already-written source tables must be replicated to the shards that
// own timelines before they can compute them.
func TestInstallBackfill(t *testing.T) {
	p := newPool(t, Config{Bounds: testBounds})
	p.Put("s|u2|u8", "1")
	p.Put("p|u8|100", "Hi")
	if err := p.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	p.Quiesce()
	kvs := p.Scan("t|u2|", "t|u2}", 0, nil, nil)
	if len(kvs) != 1 || kvs[0].Key != "t|u2|100|u8" {
		t.Fatalf("backfilled timeline = %v", kvs)
	}
}

// applyOps drives an identical operation sequence into any pool.
func applyOps(p *Pool, ops []Op) {
	for _, o := range ops {
		switch o.Kind {
		case OpPut:
			p.Put(o.Key, o.Value)
		case OpRemove:
			p.Remove(o.Key)
		case OpScan:
			p.Quiesce()
			p.Scan(o.Lo, o.Hi, 0, nil, nil)
		}
	}
}

// TestShardedEqualsSingleEngine is the equivalence property: for the
// same operation sequence — including interleaved scans that force join
// materialization at different moments — a sharded pool and a
// single-engine pool return byte-identical results for every range. The
// workload generator (opsgen.go) is shared with the networked cluster's
// equivalence test in internal/cluster.
func TestShardedEqualsSingleEngine(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		ops := GenTwipOps(seed, 400, 10)

		single := newPool(t, Config{})
		sharded := newPool(t, Config{Bounds: testBounds})
		for _, p := range []*Pool{single, sharded} {
			if err := p.InstallText(EquivJoins); err != nil {
				t.Fatal(err)
			}
			applyOps(p, ops)
			p.Quiesce()
		}

		// Every row of every table, plus random sub-ranges, byte-identical.
		for _, r := range EquivRanges(seed, 10) {
			want := single.Scan(r[0], r[1], 0, nil, nil)
			got := sharded.Scan(r[0], r[1], 0, nil, nil)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: scan [%q, %q) diverged:\nsingle  %v\nsharded %v", seed, r[0], r[1], want, got)
			}
			if sn, gn := single.Count(r[0], r[1]), sharded.Count(r[0], r[1]); sn != gn {
				t.Fatalf("seed %d: count [%q, %q) = %d vs %d", seed, r[0], r[1], sn, gn)
			}
		}
	}
}

// TestBackfillTablePrefix: backfilling a newly forwarded table "s" must
// not sweep up rows of a different table that shares the name prefix
// ("sx|...") or a bare "s" key — only "s|..." rows replicate.
func TestBackfillTablePrefix(t *testing.T) {
	p := newPool(t, Config{Bounds: testBounds})
	p.Put("s|u2|u8", "1")
	p.Put("sx|other", "x")
	p.Put("s", "bare")
	if err := p.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	p.Quiesce()
	owner := p.Owner("sx|other")
	for i := 0; i < p.NumShards(); i++ {
		if i == owner {
			continue
		}
		p.Shard(i).WithEngine(func(e *core.Engine) {
			for _, key := range []string{"sx|other", "s"} {
				if _, ok, _ := e.Get(key); ok {
					t.Errorf("shard %d has stray replica of %q", i, key)
				}
			}
		})
	}
	// The real source row did replicate everywhere.
	for i := 0; i < p.NumShards(); i++ {
		p.Shard(i).WithEngine(func(e *core.Engine) {
			if v, ok, _ := e.Get("s|u2|u8"); !ok || v != "1" {
				t.Errorf("shard %d missing replicated source row", i)
			}
		})
	}
}

// TestConcurrentReadersWriters exercises the pool under the race
// detector: concurrent writers mutating join sources on one shard while
// readers run cross-shard scans, point gets, and counts against the
// others.
func TestConcurrentReadersWriters(t *testing.T) {
	p := newPool(t, Config{Bounds: testBounds})
	if err := p.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	const writers, readers, opsEach = 4, 4, 250
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsEach; i++ {
				u := fmt.Sprintf("u%d", rng.Intn(10))
				po := fmt.Sprintf("u%d", rng.Intn(10))
				switch rng.Intn(10) {
				case 0:
					p.Remove(fmt.Sprintf("p|%s|%03d", po, rng.Intn(100)))
				case 1, 2:
					p.Put(fmt.Sprintf("s|%s|%s", u, po), "1")
				default:
					p.Put(fmt.Sprintf("p|%s|%03d", po, rng.Intn(100)), "tweet")
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < opsEach; i++ {
				u := fmt.Sprintf("u%d", rng.Intn(10))
				switch rng.Intn(4) {
				case 0:
					kvs := p.Scan("t|", "t}", 0, nil, nil) // full cross-shard scan
					for k := 1; k < len(kvs); k++ {
						if kvs[k-1].Key >= kvs[k].Key {
							t.Errorf("scan unsorted at %d: %q >= %q", k, kvs[k-1].Key, kvs[k].Key)
							return
						}
					}
				case 1:
					p.Scan("t|"+u+"|", "t|"+u+"}", 0, nil, nil)
				case 2:
					p.Count("p|", "s}")
				default:
					p.Get(fmt.Sprintf("t|%s|%03d|%s", u, rng.Intn(100), u))
				}
			}
		}(g)
	}
	wg.Wait()
	p.Quiesce()

	// After quiescing, the sharded answer matches a fresh single engine
	// fed the final base state.
	single := newPool(t, Config{})
	if err := single.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	for _, tab := range []string{"p", "s"} {
		for _, kv := range p.Scan(tab+"|", tab+"}", 0, nil, nil) {
			single.Put(kv.Key, kv.Value)
		}
	}
	want := single.Scan("t|", "t}", 0, nil, nil)
	got := p.Scan("t|", "t}", 0, nil, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-quiesce timelines diverged: %d vs %d rows", len(got), len(want))
	}
}

// TestSubscribeCallback checks the snapshot+subscribe contract: the sub
// callback fires once per straddled piece, under the shard lock, with
// the piece's range.
func TestSubscribeCallback(t *testing.T) {
	p := newPool(t, Config{Bounds: testBounds})
	p.Put("t|u2|1", "a")
	p.Put("t|u7|1", "b")
	var mu sync.Mutex
	var got []keys.Range
	kvs := p.Scan("t|", "t}", 0, nil, func(sh int, r keys.Range) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	if len(kvs) != 2 {
		t.Fatalf("scan = %v", kvs)
	}
	if len(got) != 2 {
		t.Fatalf("sub pieces = %v", got)
	}
}

// TestInstallTextAtomic: a multi-join text whose later join is rejected
// must leave every shard's join set untouched (no shard keeps the
// earlier joins from the failed text), and the pool must keep working.
func TestInstallTextAtomic(t *testing.T) {
	// Shard 0 owns the sources and the low half of the timelines, so a
	// half-installed text would visibly compute rows there.
	p := newPool(t, Config{Bounds: []string{"t|u5"}})
	if err := p.InstallText("a|<x> = copy b|<x>"); err != nil {
		t.Fatal(err)
	}
	// Second join of this text cycles through table a and is rejected.
	bad := timelineJoin + "\nb|<x> = copy a|<x>"
	if err := p.InstallText(bad); err == nil {
		t.Fatal("cyclic multi-join text accepted")
	}
	// The timeline join from the failed text must not be live anywhere:
	// a source write computes no timeline rows on any shard.
	p.Put("s|u2|u8", "1")
	p.Put("p|u8|100", "Hi")
	p.Quiesce()
	if kvs := p.Scan("t|", "t}", 0, nil, nil); len(kvs) != 0 {
		t.Fatalf("join from failed text is live: %v", kvs)
	}
	// And a valid re-install still works.
	if err := p.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	p.Quiesce()
	if kvs := p.Scan("t|u2|", "t|u2}", 0, nil, nil); len(kvs) != 1 {
		t.Fatalf("timeline after re-install = %v", kvs)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: 3, Bounds: []string{"m"}}); err == nil {
		t.Fatal("mismatched shards/bounds accepted")
	}
	if _, err := New(Config{Bounds: []string{"b", "a"}}); err == nil {
		t.Fatal("unsorted bounds accepted")
	}
	p, err := New(Config{Shards: 4})
	if err != nil || p.NumShards() != 4 {
		t.Fatalf("default bounds: %v", err)
	}
	p.Close()
	p, err = New(Config{Bounds: []string{"m"}})
	if err != nil || p.NumShards() != 2 {
		t.Fatalf("bounds-derived shard count: %v", err)
	}
	p.Close()
}
