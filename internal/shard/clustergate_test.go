package shard

import (
	"errors"
	"fmt"
	"testing"

	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/partition"
)

// gatedPool builds a single-shard pool gated as owner `self` of a
// two-owner cluster split at "m".
func gatedPool(t *testing.T, self int, peers []string) *Pool {
	t.Helper()
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	pmap := partition.MustNew("m")
	p.ApplyMapUpdate(pmap, peers, map[int]bool{self: true})
	return p
}

// TestGateEpochTieBreak: two same-version maps minted by different
// coordinators are ordered by epoch — the higher epoch wins adoption,
// and the loser's splice fails with a version conflict instead of
// silently forking the partition.
func TestGateEpochTieBreak(t *testing.T) {
	peers := []string{"a:1", "a:2"}
	p := gatedPool(t, 1, peers)
	p.Put("x1", "v1")

	// Winner: epoch 20, version 1 — a direct successor of the gate's
	// (0, 0) map, accepted.
	winner, err := partition.NewEpochVersioned(20, 1, "q")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExtractClusterRange(keys.Range{Lo: "m", Hi: "q"}, winner, peers, map[int]bool{1: true}); err != nil {
		t.Fatalf("winner's extract: %v", err)
	}
	// Loser: epoch 10, version 1, different bounds — older in the total
	// order, so the splice is a version conflict carrying the winner's
	// map.
	loser, err := partition.NewEpochVersioned(10, 1, "t")
	if err != nil {
		t.Fatal(err)
	}
	err = p.SpliceClusterRange(coreRangeState("m", "t"), loser, peers, map[int]bool{1: true})
	var noe *NotOwnerError
	if !errors.As(err, &noe) {
		t.Fatalf("loser's splice = %v, want NotOwnerError", err)
	}
	if noe.Epoch != 20 || noe.Version != 1 {
		t.Fatalf("conflict carries e%d v%d, want e20 v1", noe.Epoch, noe.Version)
	}
	// An exact retry of the winner's own map is idempotent, a different
	// same-position map is not.
	if err := p.SpliceClusterRange(coreRangeState("m", "q"), winner, peers, map[int]bool{1: true}); err != nil {
		t.Fatalf("exact same-map splice retry: %v", err)
	}
	tie, _ := partition.NewEpochVersioned(20, 1, "r")
	if err := p.SpliceClusterRange(coreRangeState("m", "r"), tie, peers, map[int]bool{1: true}); !errors.As(err, &noe) {
		t.Fatalf("same-position different-bounds splice accepted: %v", err)
	}
}

// TestRetainedExtractionLifecycle: extracted rows are retained until a
// published map confirms the destination serves them; a map that hands
// the range back without a splice restores them instead.
func TestRetainedExtractionLifecycle(t *testing.T) {
	peers := []string{"a:1", "a:2"}
	p := gatedPool(t, 0, peers)
	for i := 0; i < 5; i++ {
		p.Put(fmt.Sprintf("b%d", i), fmt.Sprintf("v%d", i))
	}
	// Extract [b0, m): the rows leave the engine but a copy is retained.
	next, _ := partition.NewEpochVersioned(5, 1, "b0")
	rs, err := p.ExtractClusterRange(keys.Range{Lo: "b0", Hi: "m"}, next, peers, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.KVs) != 5 {
		t.Fatalf("extracted %d rows", len(rs.KVs))
	}
	if st := p.RetainedStats(); st.Entries != 1 || st.Rows != 5 {
		t.Fatalf("retained stats after extract = %+v", st)
	}
	// Republishing the exact map (the coordinator's post-splice publish)
	// confirms and drops the copy.
	p.ApplyMapUpdate(next, peers, map[int]bool{0: true})
	if st := p.RetainedStats(); st.Entries != 0 {
		t.Fatalf("retained not confirmed by exact publish: %+v", st)
	}

	// Hand the range back (via a splice, the normal return path), write
	// fresh rows, and extract again — but this time the transfer is
	// never confirmed: a newer map hands the range straight back (the
	// coordinator reverted, or a competing coordinator won), and the
	// retained rows must be restored.
	ret, _ := partition.NewEpochVersioned(5, 2, "m")
	if err := p.SpliceClusterRange(coreRangeState("b0", "m"), ret, peers, map[int]bool{0: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.Put(fmt.Sprintf("b%d", i), fmt.Sprintf("v%d", i))
	}
	next2, _ := partition.NewEpochVersioned(5, 3, "b0")
	if _, err := p.ExtractClusterRange(keys.Range{Lo: "b0", Hi: "m"}, next2, peers, map[int]bool{0: true}); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Get("b3"); ok {
		t.Fatal("extracted row still readable at the source")
	}
	back, _ := partition.NewEpochVersioned(5, 4, "m")
	p.ApplyMapUpdate(back, peers, map[int]bool{0: true})
	if st := p.RetainedStats(); st.Entries != 0 {
		t.Fatalf("retained entry not consumed by the restore: %+v", st)
	}
	for i := 0; i < 5; i++ {
		if v, ok := p.Get(fmt.Sprintf("b%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("row b%d not restored: %q %v", i, v, ok)
		}
	}
}

// TestRetainedRestoreKeepsNewerWrites: a restore must not clobber a row
// written after the extraction (the engine's copy is newer than the
// retained one).
func TestRetainedRestoreKeepsNewerWrites(t *testing.T) {
	peers := []string{"a:1", "a:2"}
	p := gatedPool(t, 0, peers)
	p.Put("b1", "old")
	next, _ := partition.NewEpochVersioned(5, 1, "b0")
	if _, err := p.ExtractClusterRange(keys.Range{Lo: "b0", Hi: "m"}, next, peers, map[int]bool{0: true}); err != nil {
		t.Fatal(err)
	}
	// A fresher value arrives while the range is away (a splice-back of
	// newer data, simulated via a direct engine write).
	p.shards[0].ApplyBatch([]core.Change{{Op: core.OpPut, Key: "b1", Value: "newer"}})
	back, _ := partition.NewEpochVersioned(5, 2, "m")
	p.ApplyMapUpdate(back, peers, map[int]bool{0: true})
	if v, ok := p.Get("b1"); !ok || v != "newer" {
		t.Fatalf("restore clobbered a newer write: %q %v", v, ok)
	}
}

// TestMapUpdateDemotesLostRange: a strictly newer map that takes a range
// away *without* an extraction (a competing coordinator's map won) must
// not destroy the only copy — the rows are demoted to the retained
// buffer and restored if a later map hands the range back.
func TestMapUpdateDemotesLostRange(t *testing.T) {
	peers := []string{"a:1", "a:2"}
	p := gatedPool(t, 0, peers)
	p.Put("c1", "v1")
	p.Put("c2", "v2")
	// A newer map moves [c0, m) to the other member, with no extraction.
	taken, _ := partition.NewEpochVersioned(7, 1, "c0")
	p.ApplyMapUpdate(taken, peers, map[int]bool{0: true})
	if st := p.RetainedStats(); st.Entries != 1 || st.Rows != 2 {
		t.Fatalf("lost range not demoted: %+v", st)
	}
	// Operations on the demoted range bounce.
	if err := p.PutGated("c1", "x"); err == nil {
		t.Fatal("write accepted for a range this map lost")
	}
	// A later map hands it back: restored.
	back, _ := partition.NewEpochVersioned(7, 2, "m")
	p.ApplyMapUpdate(back, peers, map[int]bool{0: true})
	for _, k := range []string{"c1", "c2"} {
		if v, ok := p.Get(k); !ok || v == "" {
			t.Fatalf("demoted row %s not restored: %q %v", k, v, ok)
		}
	}
}

// coreRangeState builds an empty extracted state for [lo, hi).
func coreRangeState(lo, hi string) core.RangeState {
	return core.RangeState{R: keys.Range{Lo: lo, Hi: hi}}
}
