package shard

import (
	"fmt"
	"math/rand"
)

// This file hosts the shared equivalence-test workload: a randomized
// Twip operation sequence with interleaved reads, used both by the
// in-process sharded-pool property test (TestShardedEqualsSingleEngine)
// and by the networked cluster's equivalence test in internal/cluster.
// It lives outside _test.go files so other packages' tests can import
// it; nothing here runs in production paths.

// Op is one generated operation. Scans carry their range in Lo/Hi.
type Op struct {
	Kind   OpKind
	Key    string // put/remove key
	Value  string // put value
	Lo, Hi string // scan range
}

// OpKind discriminates generated operations.
type OpKind int

// Generated operation kinds.
const (
	OpPut OpKind = iota
	OpRemove
	OpScan // a read that forces join materialization at this moment
)

// EquivJoins is the join set the equivalence workload exercises: the
// paper's timeline join plus a cascaded archive join, so sharded (or
// clustered) evaluation must recursively compute foreign timeline
// ranges.
const EquivJoins = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>\n" +
	"z|<user>|<time>|<poster> = copy t|<user>|<time>|<poster>"

// GenTwipOps generates n randomized Twip operations over nUsers users:
// posts, subscribes, unsubscribes/deletions, and interleaved timeline
// and archive checks that materialize joins at varied moments.
func GenTwipOps(seed int64, n, nUsers int) []Op {
	rng := rand.New(rand.NewSource(seed))
	user := func() string { return fmt.Sprintf("u%d", rng.Intn(nUsers)) }
	var ops []Op
	for i := 0; i < n; i++ {
		switch r := rng.Intn(100); {
		case r < 35: // post
			ops = append(ops, Op{Kind: OpPut, Key: fmt.Sprintf("p|%s|%03d", user(), rng.Intn(200)), Value: fmt.Sprintf("tweet%d", i)})
		case r < 60: // subscribe
			ops = append(ops, Op{Kind: OpPut, Key: fmt.Sprintf("s|%s|%s", user(), user()), Value: "1"})
		case r < 70: // unsubscribe or delete post
			if rng.Intn(2) == 0 {
				ops = append(ops, Op{Kind: OpRemove, Key: fmt.Sprintf("s|%s|%s", user(), user())})
			} else {
				ops = append(ops, Op{Kind: OpRemove, Key: fmt.Sprintf("p|%s|%03d", user(), rng.Intn(200))})
			}
		case r < 90: // timeline check
			u := user()
			ops = append(ops, Op{Kind: OpScan, Lo: "t|" + u + "|", Hi: "t|" + u + "}"})
		default: // archive check (materializes the cascade)
			u := user()
			ops = append(ops, Op{Kind: OpScan, Lo: "z|" + u + "|", Hi: "z|" + u + "}"})
		}
	}
	return ops
}

// EquivRanges returns the comparison ranges for an equivalence check:
// every table in full, plus randomized sub-ranges straddling users.
func EquivRanges(seed int64, nUsers int) [][2]string {
	rng := rand.New(rand.NewSource(seed))
	ranges := [][2]string{{"", ""}, {"p|", "p}"}, {"s|", "s}"}, {"t|", "t}"}, {"z|", "z}"}}
	for i := 0; i < 20; i++ {
		u1 := fmt.Sprintf("u%d", rng.Intn(nUsers))
		u2 := fmt.Sprintf("u%d", rng.Intn(nUsers))
		ranges = append(ranges, [2]string{"t|" + u1 + "|", "t|" + u2 + "}"})
	}
	return ranges
}
