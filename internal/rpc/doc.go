// Package rpc implements Pequod's wire protocol: length-prefixed binary
// frames over TCP, with pipelined request/response matching by sequence
// number and unsolicited server-push Notify frames for cross-server
// subscriptions (§2.4).
//
// Frame layout:
//
//	uint32 little-endian payload length
//	byte   message type
//	uvarint sequence number
//	uvarint deadline budget (milliseconds remaining; 0 = none)
//	type-specific fields (uvarint-length-prefixed strings, uvarints)
//
// The same Message structure carries every request and reply; unused
// fields are encoded as empty. This keeps the codec small and the
// protocol easy to extend, at a few bytes per frame of overhead.
//
// The protocol has three message families:
//
//   - Data plane: Get, Put, Remove, Scan (optionally subscribing),
//     Count, Notify (server push), and the batch-friendly pipelining
//     all of them share.
//   - Control plane: AddJoin, SetSubtable, Stat, Quiesce, Ping (a
//     push-delivery fence), ConnectPeers (mesh wiring), Command
//     (baseline engines).
//   - Migration plane: ExtractRange, SpliceRange, and MapUpdate move a
//     key range between servers and publish the versioned cluster
//     partition map; JoinCluster wires a fresh member into the mesh and
//     Drain tears a departing member's wiring down. Every map-bearing
//     message carries the map's total-order position (Epoch,
//     MapVersion) with its Bounds and member addresses (Peers), so a
//     membership change — which reshapes the map — travels with the
//     transfer performing it. Replies may carry StatusNotOwner plus the
//     server's current map (Epoch, MapVersion, Bounds, Peers) so
//     clients re-route and retry after a live migration, a join, or a
//     drain.
package rpc
