package rpc

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzDecode hardens the wire decoder against malformed frames: arbitrary
// payloads must produce an error or a message, never a panic, and
// round-tripping a successfully decoded message must be stable.
func FuzzDecode(f *testing.F) {
	seeds := []*Message{
		{Type: MsgGet, Seq: 1, Key: "p|bob|100"},
		{Type: MsgPut, Seq: 2, Key: "k", Value: "v"},
		{Type: MsgScan, Seq: 3, Lo: "a", Hi: "b", Limit: 10, SubscribeFlag: true},
		{Type: MsgNotify, Changes: []Change{{Op: ChangePut, Key: "k", Value: "v"}}},
		{Type: MsgReply, Seq: 4, Status: StatusOK, Found: true, Value: "v",
			KVs: []KV{{Key: "a", Value: "1"}}},
		{Type: MsgCommand, Seq: 5, Args: []string{"ZADD", "k", "1", "m"}},
	}
	for _, m := range seeds {
		f.Add(m.Encode(nil)[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := Decode(payload)
		if err != nil {
			return
		}
		// Re-encode and re-decode: must agree on the semantic fields.
		re := m.Encode(nil)
		m2, _, err := ReadMessage(bufio.NewReader(bytes.NewReader(re)), nil)
		if err != nil {
			t.Fatalf("re-decode of valid message failed: %v", err)
		}
		if m2.Type != m.Type || m2.Seq != m.Seq || m2.Key != m.Key || m2.Value != m.Value ||
			m2.Lo != m.Lo || m2.Hi != m.Hi || len(m2.KVs) != len(m.KVs) ||
			len(m2.Changes) != len(m.Changes) || len(m2.Args) != len(m.Args) {
			t.Fatalf("round trip drift:\n in: %+v\nout: %+v", m, m2)
		}
	})
}
