package rpc

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadMessage(bufio.NewReader(&buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	msgs := []*Message{
		{Type: MsgGet, Seq: 1, Key: "p|bob|100"},
		{Type: MsgPut, Seq: 2, Key: "p|bob|100", Value: "Hi"},
		{Type: MsgRemove, Seq: 3, Key: "p|bob|100"},
		{Type: MsgScan, Seq: 4, Lo: "t|ann|", Hi: "t|ann}", Limit: 50, SubscribeFlag: true},
		{Type: MsgScan, Seq: 5, Lo: "a", Hi: "", Limit: 0},
		{Type: MsgCount, Seq: 6, Lo: "x", Hi: "y"},
		{Type: MsgAddJoin, Seq: 7, Text: "t|<u> = copy p|<u>"},
		{Type: MsgNotify, Seq: 0, Changes: []Change{
			{Op: ChangePut, Key: "k1", Value: "v1"},
			{Op: ChangeRemove, Key: "k2", Value: ""},
		}},
		{Type: MsgStat, Seq: 8},
		{Type: MsgFlush, Seq: 9},
		{Type: MsgSetSubtable, Seq: 10, Table: "t", Depth: 2},
		{Type: MsgGet, Seq: 13, Key: "k", TimeoutMS: 1500},
		{Type: MsgQuiesce, Seq: 14},
		{Type: MsgPing, Seq: 15},
		{Type: MsgConnectPeers, Seq: 16,
			Bounds: []string{"p|n", "s|"},
			Peers:  []string{"a:1", "a:2", "a:1"},
			Self:   []int{1},
			Tables: []string{"p", "s"}},
		{Type: MsgReply, Seq: 11, Status: StatusOK, Found: true, Value: "v",
			Count: 42, KVs: []KV{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}}},
		{Type: MsgReply, Seq: 12, Status: StatusError, Err: "boom"},
		{Type: MsgExtractRange, Seq: 17, Epoch: 2, MapVersion: 3,
			Bounds: []string{"m", "t|"},
			Peers:  []string{"a:1", "a:2", "a:3"},
			Self:   []int{0}, Lo: "t|", Hi: "t|u5"},
		{Type: MsgSpliceRange, Seq: 18, Epoch: 5, MapVersion: 4, Src: "a:3",
			Bounds: []string{"m", "t|u3"},
			Peers:  []string{"a:1", "a:2", "a:3"},
			Self:   []int{2}, Lo: "t|u3", Hi: "t|u5",
			KVs:  []KV{{Key: "t|u4|1", Value: "x"}},
			Warm: warm(0, "t|u3|", "t|u4|")},
		{Type: MsgSpliceRange, Seq: 19, MapVersion: 1,
			Lo: "a", Hi: "b"},
		{Type: MsgMapUpdate, Seq: 20, Epoch: 1, MapVersion: 7,
			Bounds: []string{"p|", "t|"},
			Peers:  []string{"a:1", "a:2", "a:3"},
			Self:   []int{1}},
		{Type: MsgJoinCluster, Seq: 23, Epoch: 4, MapVersion: 9,
			Bounds: []string{"p|", "t|"},
			Peers:  []string{"a:1", "a:2", "a:3"},
			Self:   []int{2},
			Tables: []string{"p", "s"},
			Text:   "t|<u> = copy p|<u>"},
		{Type: MsgDrain, Seq: 24},
		{Type: MsgReplicate, Seq: 25, Epoch: 6, MapVersion: 2,
			Bounds: []string{"p|", "t|"},
			Peers:  []string{"a:1", "a:2", "a:3"},
			Self:   []int{0, 2},
			Limit:  2,
			Tables: []string{"p", "s"}},
		{Type: MsgReplicate, Seq: 26, Epoch: 1, MapVersion: 1,
			Bounds: []string{"m"},
			Peers:  []string{"a:1", "a:2"},
			Limit:  3},
		{Type: MsgSnapshot, Seq: 27},
		{Type: MsgRebuildRange, Seq: 28, Lo: "t|u3", Hi: "t|u5"},
		{Type: MsgRebuildRange, Seq: 29, Lo: "m", Hi: ""},
		{Type: MsgReply, Seq: 21, Status: StatusNotOwner, Err: "moved",
			Epoch: 3, MapVersion: 9, Bounds: []string{"q|"},
			Peers: []string{"a:1", "a:2"}},
		{Type: MsgReply, Seq: 22, Status: StatusOK,
			Warm: warm(1, "t|", "t|u5")},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		// Normalize nil vs empty slices for comparison.
		if len(got.KVs) == 0 {
			got.KVs = m.KVs
		}
		if len(got.Changes) == 0 {
			got.Changes = m.Changes
		}
		for _, p := range [][2]*[]string{
			{&got.Bounds, &m.Bounds}, {&got.Peers, &m.Peers}, {&got.Tables, &m.Tables},
		} {
			if len(*p[0]) == 0 {
				*p[0] = *p[1]
			}
		}
		if len(got.Self) == 0 {
			got.Self = m.Self
		}
		if len(got.Warm) == 0 {
			got.Warm = m.Warm
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
		}
	}
}

// warm builds a one-element warm-coverage list.
func warm(join int, lo, hi string) []WarmRange {
	w := WarmRange{Join: join}
	w.R.Lo, w.R.Hi = lo, hi
	return []WarmRange{w}
}

func TestPipelinedFrames(t *testing.T) {
	var buf bytes.Buffer
	var scratch []byte
	var err error
	for i := 0; i < 100; i++ {
		scratch, err = WriteMessage(&buf, &Message{Type: MsgGet, Seq: uint64(i), Key: "k"}, scratch)
		if err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	var rs []byte
	for i := 0; i < 100; i++ {
		var m *Message
		m, rs, err = ReadMessage(br, rs)
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != uint64(i) {
			t.Fatalf("frame %d has seq %d", i, m.Seq)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	// Unknown type.
	if _, err := Decode([]byte{255, 0}); err == nil {
		t.Error("unknown type accepted")
	}
	// Truncated payloads of every type must error, not panic.
	full := (&Message{Type: MsgReply, Seq: 9, Status: StatusOK, Found: true,
		Value: "hello", KVs: []KV{{Key: "k", Value: "v"}}}).Encode(nil)
	payload := full[4:]
	for cut := 0; cut < len(payload); cut++ {
		if _, err := Decode(payload[:cut]); err == nil && cut < len(payload)-1 {
			// Some prefixes may decode to a valid shorter message only if
			// all fields happen to be present; with this message shape
			// every strict prefix is invalid.
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB length
	if _, _, err := ReadMessage(bufio.NewReader(&buf), nil); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestReadEOF(t *testing.T) {
	_, _, err := ReadMessage(bufio.NewReader(bytes.NewReader(nil)), nil)
	if err == nil {
		t.Fatal("expected EOF")
	}
}

func TestHelpers(t *testing.T) {
	ok := OKReply(7)
	if ok.Type != MsgReply || ok.Seq != 7 || ok.Status != StatusOK {
		t.Fatal("OKReply")
	}
	er := ErrReply(8, errors.New("nope"))
	if er.Status != StatusError || er.Err != "nope" {
		t.Fatal("ErrReply")
	}
}

// Property: encode/decode round-trips arbitrary string content, including
// separators, NULs, and high bytes.
func TestRoundTripQuick(t *testing.T) {
	f := func(seq uint64, key, value string) bool {
		m := &Message{Type: MsgPut, Seq: seq, Key: key, Value: value}
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, m, nil); err != nil {
			return false
		}
		got, _, err := ReadMessage(bufio.NewReader(&buf), nil)
		return err == nil && got.Key == key && got.Value == value && got.Seq == seq
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodePut(b *testing.B) {
	m := &Message{Type: MsgPut, Seq: 12345, Key: "p|u0001234|0000005678", Value: "a typical tweet body of some length"}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.Encode(buf[:0])
	}
}

func BenchmarkDecodeScanReply(b *testing.B) {
	m := &Message{Type: MsgReply, Seq: 1, Status: StatusOK}
	for i := 0; i < 100; i++ {
		m.KVs = append(m.KVs, KV{Key: "t|u0001234|0000005678|u0004321", Value: "tweet tweet"})
	}
	payload := m.Encode(nil)[4:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
}
