package rpc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pequod/internal/core"
)

// MsgType identifies a frame's meaning.
type MsgType byte

// Protocol message types.
const (
	MsgGet          MsgType = iota + 1 // Key -> Found/Value
	MsgPut                             // Key, Value
	MsgRemove                          // Key -> Found
	MsgScan                            // Lo, Hi, Limit, SubscribeFlag -> KVs
	MsgCount                           // Lo, Hi -> Count
	MsgAddJoin                         // Text
	MsgNotify                          // Changes (server push; no reply)
	MsgStat                            // -> Value (JSON)
	MsgFlush                           // clear store (test/bench support)
	MsgSetSubtable                     // Table, Depth
	MsgReply                           // Status, reply fields
	MsgCommand                         // Args (generic command; baseline engines)
	MsgQuiesce                         // settle replication (in-process + subscriptions)
	MsgPing                            // drain this connection's pushes, then reply
	MsgConnectPeers                    // Bounds, Peers, Self, Tables: wire the §2.4 mesh

	// Cluster-level live migration (server-to-server range transfer).
	// Every map-bearing message carries the map's full total-order
	// position (Epoch, MapVersion) plus the member addresses (Peers) and
	// the recipient's owner indexes (Self), so a membership change —
	// which reshapes the map and shifts owner indexes — travels with the
	// transfer that performs it.
	MsgExtractRange // Epoch, MapVersion, Bounds, Peers, Self, Lo, Hi -> KVs, Warm: extract + flip ownership at src
	MsgSpliceRange  // Epoch, MapVersion, Bounds, Peers, Self, Lo, Hi, Src, KVs, Warm: install at dst
	MsgMapUpdate    // Epoch, MapVersion, Bounds, Peers, Self: publish the new cluster map

	// Elastic membership (server join/drain).
	MsgJoinCluster // Epoch, MapVersion, Bounds, Peers, Self, Tables, Text: wire a fresh member into the mesh
	MsgDrain       // tear down the recipient's mesh wiring after its last range left

	// Per-range replication (failover). The coordinator publishes the
	// replica assignment as the cluster view itself plus the replica
	// count (Limit) and the base tables to replicate (Tables; empty =
	// whole ranges): each member derives its own replica set from the
	// ring order of member addresses, so the assignment needs no
	// explicit range list and can never disagree with the map it rode
	// in on.
	MsgReplicate // Epoch, MapVersion, Bounds, Peers, Self, Limit (copies), Tables

	// Durable store (warm restarts and last-resort recovery).
	MsgSnapshot     // force a durable snapshot now -> Count (rows captured)
	MsgRebuildRange // Lo, Hi: rebuild a range from the recipient's durable store -> Count (rows restored)
)

// Status codes in replies.
const (
	StatusOK    byte = 0
	StatusError byte = 1
	// StatusNotOwner reports that the serving process does not (or no
	// longer does) own the request's keys in the cluster partition: a
	// live migration moved them. The reply carries the server's current
	// map (MapVersion, Bounds) so the client re-routes and retries.
	StatusNotOwner byte = 2
)

// ChangeOp mirrors core.ChangeOp on the wire.
type ChangeOp byte

// Change operations for Notify frames.
const (
	ChangePut ChangeOp = iota
	ChangeRemove
)

// Change is one replicated store mutation.
type Change struct {
	Op    ChangeOp
	Key   string
	Value string
}

// KV is a scan result pair. It aliases the engine's KV so scan results
// cross the client/server/pool layers without element-wise conversion.
type KV = core.KV

// WarmRange aliases the engine's warm-coverage record (a previously
// valid computed range, identified by installed-join index) so extracted
// range state crosses the wire without conversion. Join indexes agree
// between servers because the cluster installs join texts on every
// member in the same order.
type WarmRange = core.WarmRange

// Message is the union of all frame payloads.
type Message struct {
	Type MsgType
	Seq  uint64

	// TimeoutMS is the caller's remaining deadline budget in
	// milliseconds when the request was sent (0 = no deadline). Servers
	// use it to bound blocking work — waiting on outstanding base-data
	// loads — rather than holding a doomed request open.
	TimeoutMS uint64

	// StaleMS is the caller's staleness budget in milliseconds for read
	// requests (0 = fully fresh, the default semantics). A server may
	// answer a bounded read from its current view, skipping deferred
	// maintenance whose age fits the budget. Carried on every frame like
	// TimeoutMS — one varint byte when zero — so it survives retries and
	// re-routing without per-type plumbing.
	StaleMS uint64

	// Request fields.
	Key, Value    string
	Lo, Hi        string
	Limit         int
	SubscribeFlag bool
	Text          string
	Table         string
	Depth         int
	Changes       []Change
	Args          []string // MsgCommand

	// MsgConnectPeers fields: the partition map (Bounds), the member
	// address per owner index (Peers), the owner indexes that are the
	// recipient itself (Self), and the base tables to load remotely and
	// subscribe to (Tables).
	Bounds []string
	Peers  []string
	Self   []int
	Tables []string

	// Cluster migration fields. (Epoch, MapVersion) and Bounds carry the
	// versioned cluster partition map the message publishes (requests)
	// or the server's current map (StatusNotOwner replies), with Peers
	// giving the serving address per owner index so membership changes
	// travel with the map. Warm is the extracted computed coverage to
	// rebuild at the destination; Src is the address of the member
	// losing the range in a MsgSpliceRange ("" = none), which the
	// destination fences before splicing — an address, not an owner
	// index, because a membership change shifts indexes and a draining
	// member is absent from the new map entirely.
	Epoch      int64
	MapVersion int64
	Warm       []WarmRange
	Src        string

	// Reply fields.
	Status byte
	Found  bool
	KVs    []KV
	Count  int64
	Err    string
}

// MaxFrame bounds a single frame; scans larger than this must be limited
// by the client. 256 MiB accommodates full-timeline warm scans.
const MaxFrame = 256 << 20

// appendUvarint/appendString build the wire form.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendKVs(b []byte, kvs []KV) []byte {
	b = binary.AppendUvarint(b, uint64(len(kvs)))
	for _, kv := range kvs {
		b = appendString(b, kv.Key)
		b = appendString(b, kv.Value)
	}
	return b
}

func appendWarm(b []byte, ws []WarmRange) []byte {
	b = binary.AppendUvarint(b, uint64(len(ws)))
	for _, w := range ws {
		b = binary.AppendUvarint(b, uint64(w.Join))
		b = appendString(b, w.R.Lo)
		b = appendString(b, w.R.Hi)
	}
	return b
}

func appendInts(b []byte, is []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(is)))
	for _, i := range is {
		b = binary.AppendUvarint(b, uint64(i))
	}
	return b
}

// Encode appends the message's frame (including length prefix) to buf and
// returns the extended slice. The caller may reuse buf across calls.
func (m *Message) Encode(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = append(buf, byte(m.Type))
	buf = appendUvarint(buf, m.Seq)
	buf = appendUvarint(buf, m.TimeoutMS)
	buf = appendUvarint(buf, m.StaleMS)
	switch m.Type {
	case MsgGet, MsgRemove:
		buf = appendString(buf, m.Key)
	case MsgPut:
		buf = appendString(buf, m.Key)
		buf = appendString(buf, m.Value)
	case MsgScan:
		buf = appendString(buf, m.Lo)
		buf = appendString(buf, m.Hi)
		buf = appendUvarint(buf, uint64(m.Limit))
		flag := byte(0)
		if m.SubscribeFlag {
			flag = 1
		}
		buf = append(buf, flag)
	case MsgCount:
		buf = appendString(buf, m.Lo)
		buf = appendString(buf, m.Hi)
	case MsgAddJoin:
		buf = appendString(buf, m.Text)
	case MsgNotify:
		buf = appendUvarint(buf, uint64(len(m.Changes)))
		for _, c := range m.Changes {
			buf = append(buf, byte(c.Op))
			buf = appendString(buf, c.Key)
			buf = appendString(buf, c.Value)
		}
	case MsgStat, MsgFlush, MsgQuiesce, MsgPing:
		// no payload
	case MsgSetSubtable:
		buf = appendString(buf, m.Table)
		buf = appendUvarint(buf, uint64(m.Depth))
	case MsgCommand:
		buf = appendUvarint(buf, uint64(len(m.Args)))
		for _, a := range m.Args {
			buf = appendString(buf, a)
		}
	case MsgConnectPeers:
		buf = appendStrings(buf, m.Bounds)
		buf = appendStrings(buf, m.Peers)
		buf = appendInts(buf, m.Self)
		buf = appendStrings(buf, m.Tables)
	case MsgExtractRange:
		buf = appendUvarint(buf, uint64(m.Epoch))
		buf = appendUvarint(buf, uint64(m.MapVersion))
		buf = appendStrings(buf, m.Bounds)
		buf = appendStrings(buf, m.Peers)
		buf = appendInts(buf, m.Self)
		buf = appendString(buf, m.Lo)
		buf = appendString(buf, m.Hi)
	case MsgSpliceRange:
		buf = appendUvarint(buf, uint64(m.Epoch))
		buf = appendUvarint(buf, uint64(m.MapVersion))
		buf = appendStrings(buf, m.Bounds)
		buf = appendStrings(buf, m.Peers)
		buf = appendInts(buf, m.Self)
		buf = appendString(buf, m.Lo)
		buf = appendString(buf, m.Hi)
		buf = appendString(buf, m.Src) // "" = no fence target
		buf = appendKVs(buf, m.KVs)
		buf = appendWarm(buf, m.Warm)
	case MsgMapUpdate:
		buf = appendUvarint(buf, uint64(m.Epoch))
		buf = appendUvarint(buf, uint64(m.MapVersion))
		buf = appendStrings(buf, m.Bounds)
		buf = appendStrings(buf, m.Peers)
		buf = appendInts(buf, m.Self)
	case MsgJoinCluster:
		buf = appendUvarint(buf, uint64(m.Epoch))
		buf = appendUvarint(buf, uint64(m.MapVersion))
		buf = appendStrings(buf, m.Bounds)
		buf = appendStrings(buf, m.Peers)
		buf = appendInts(buf, m.Self)
		buf = appendStrings(buf, m.Tables)
		buf = appendString(buf, m.Text)
	case MsgDrain:
		// no payload
	case MsgReplicate:
		buf = appendUvarint(buf, uint64(m.Epoch))
		buf = appendUvarint(buf, uint64(m.MapVersion))
		buf = appendStrings(buf, m.Bounds)
		buf = appendStrings(buf, m.Peers)
		buf = appendInts(buf, m.Self)
		buf = appendUvarint(buf, uint64(m.Limit))
		buf = appendStrings(buf, m.Tables)
	case MsgSnapshot:
		// no payload
	case MsgRebuildRange:
		buf = appendString(buf, m.Lo)
		buf = appendString(buf, m.Hi)
	case MsgReply:
		buf = append(buf, m.Status)
		found := byte(0)
		if m.Found {
			found = 1
		}
		buf = append(buf, found)
		buf = appendString(buf, m.Value)
		buf = appendString(buf, m.Err)
		buf = appendUvarint(buf, uint64(m.Count))
		buf = appendKVs(buf, m.KVs)
		// Migration extensions: the current map (epoch, version, bounds,
		// peers) on NotOwner replies, the extracted warm coverage on
		// ExtractRange replies. Empty (five bytes) on every other reply.
		buf = appendUvarint(buf, uint64(m.Epoch))
		buf = appendUvarint(buf, uint64(m.MapVersion))
		buf = appendStrings(buf, m.Bounds)
		buf = appendStrings(buf, m.Peers)
		buf = appendWarm(buf, m.Warm)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// decoder walks a frame payload.
type decoder struct {
	b   []byte
	pos int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("rpc: truncated uvarint")
	}
	d.pos += n
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if d.pos+int(n) > len(d.b) {
		return "", fmt.Errorf("rpc: truncated string")
	}
	s := string(d.b[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *decoder) strs() ([]string, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)) {
		return nil, fmt.Errorf("rpc: string-list count %d exceeds payload", n)
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// mapPos decodes a map's total-order position (epoch, version).
func (d *decoder) mapPos() (epoch, version int64, err error) {
	e, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	v, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	return int64(e), int64(v), nil
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.b) {
		return 0, fmt.Errorf("rpc: truncated byte")
	}
	c := d.b[d.pos]
	d.pos++
	return c, nil
}

func (d *decoder) ints() ([]int, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)) {
		return nil, fmt.Errorf("rpc: int-list count %d exceeds payload", n)
	}
	out := make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		out = append(out, int(v))
	}
	return out, nil
}

func (d *decoder) kvs() ([]KV, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)) {
		return nil, fmt.Errorf("rpc: kv count %d exceeds payload", n)
	}
	out := make([]KV, 0, n)
	for i := uint64(0); i < n; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.str()
		if err != nil {
			return nil, err
		}
		out = append(out, KV{Key: k, Value: v})
	}
	return out, nil
}

func (d *decoder) warm() ([]WarmRange, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)) {
		return nil, fmt.Errorf("rpc: warm count %d exceeds payload", n)
	}
	out := make([]WarmRange, 0, n)
	for i := uint64(0); i < n; i++ {
		j, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		lo, err := d.str()
		if err != nil {
			return nil, err
		}
		hi, err := d.str()
		if err != nil {
			return nil, err
		}
		w := WarmRange{Join: int(j)}
		w.R.Lo, w.R.Hi = lo, hi
		out = append(out, w)
	}
	return out, nil
}

// Decode parses a frame payload (without the length prefix).
func Decode(payload []byte) (*Message, error) {
	d := &decoder{b: payload}
	t, err := d.byte()
	if err != nil {
		return nil, err
	}
	m := &Message{Type: MsgType(t)}
	if m.Seq, err = d.uvarint(); err != nil {
		return nil, err
	}
	if m.TimeoutMS, err = d.uvarint(); err != nil {
		return nil, err
	}
	if m.StaleMS, err = d.uvarint(); err != nil {
		return nil, err
	}
	switch m.Type {
	case MsgGet, MsgRemove:
		m.Key, err = d.str()
	case MsgPut:
		if m.Key, err = d.str(); err == nil {
			m.Value, err = d.str()
		}
	case MsgScan:
		if m.Lo, err = d.str(); err != nil {
			return nil, err
		}
		if m.Hi, err = d.str(); err != nil {
			return nil, err
		}
		var lim uint64
		if lim, err = d.uvarint(); err != nil {
			return nil, err
		}
		m.Limit = int(lim)
		var flag byte
		if flag, err = d.byte(); err == nil {
			m.SubscribeFlag = flag == 1
		}
	case MsgCount:
		if m.Lo, err = d.str(); err == nil {
			m.Hi, err = d.str()
		}
	case MsgAddJoin:
		m.Text, err = d.str()
	case MsgNotify:
		var n uint64
		if n, err = d.uvarint(); err != nil {
			return nil, err
		}
		m.Changes = make([]Change, 0, n)
		for i := uint64(0); i < n; i++ {
			var op byte
			if op, err = d.byte(); err != nil {
				return nil, err
			}
			var k, v string
			if k, err = d.str(); err != nil {
				return nil, err
			}
			if v, err = d.str(); err != nil {
				return nil, err
			}
			m.Changes = append(m.Changes, Change{Op: ChangeOp(op), Key: k, Value: v})
		}
	case MsgStat, MsgFlush, MsgQuiesce, MsgPing:
		// no payload
	case MsgSetSubtable:
		if m.Table, err = d.str(); err != nil {
			return nil, err
		}
		var depth uint64
		if depth, err = d.uvarint(); err == nil {
			m.Depth = int(depth)
		}
	case MsgConnectPeers:
		if m.Bounds, err = d.strs(); err != nil {
			return nil, err
		}
		if m.Peers, err = d.strs(); err != nil {
			return nil, err
		}
		if m.Self, err = d.ints(); err != nil {
			return nil, err
		}
		if m.Tables, err = d.strs(); err != nil {
			return nil, err
		}
	case MsgExtractRange:
		if m.Epoch, m.MapVersion, err = d.mapPos(); err != nil {
			return nil, err
		}
		if m.Bounds, err = d.strs(); err != nil {
			return nil, err
		}
		if m.Peers, err = d.strs(); err != nil {
			return nil, err
		}
		if m.Self, err = d.ints(); err != nil {
			return nil, err
		}
		if m.Lo, err = d.str(); err != nil {
			return nil, err
		}
		m.Hi, err = d.str()
	case MsgSpliceRange:
		if m.Epoch, m.MapVersion, err = d.mapPos(); err != nil {
			return nil, err
		}
		if m.Bounds, err = d.strs(); err != nil {
			return nil, err
		}
		if m.Peers, err = d.strs(); err != nil {
			return nil, err
		}
		if m.Self, err = d.ints(); err != nil {
			return nil, err
		}
		if m.Lo, err = d.str(); err != nil {
			return nil, err
		}
		if m.Hi, err = d.str(); err != nil {
			return nil, err
		}
		if m.Src, err = d.str(); err != nil {
			return nil, err
		}
		if m.KVs, err = d.kvs(); err != nil {
			return nil, err
		}
		m.Warm, err = d.warm()
	case MsgMapUpdate:
		if m.Epoch, m.MapVersion, err = d.mapPos(); err != nil {
			return nil, err
		}
		if m.Bounds, err = d.strs(); err != nil {
			return nil, err
		}
		if m.Peers, err = d.strs(); err != nil {
			return nil, err
		}
		m.Self, err = d.ints()
	case MsgJoinCluster:
		if m.Epoch, m.MapVersion, err = d.mapPos(); err != nil {
			return nil, err
		}
		if m.Bounds, err = d.strs(); err != nil {
			return nil, err
		}
		if m.Peers, err = d.strs(); err != nil {
			return nil, err
		}
		if m.Self, err = d.ints(); err != nil {
			return nil, err
		}
		if m.Tables, err = d.strs(); err != nil {
			return nil, err
		}
		m.Text, err = d.str()
	case MsgDrain:
		// no payload
	case MsgReplicate:
		if m.Epoch, m.MapVersion, err = d.mapPos(); err != nil {
			return nil, err
		}
		if m.Bounds, err = d.strs(); err != nil {
			return nil, err
		}
		if m.Peers, err = d.strs(); err != nil {
			return nil, err
		}
		if m.Self, err = d.ints(); err != nil {
			return nil, err
		}
		var lim uint64
		if lim, err = d.uvarint(); err != nil {
			return nil, err
		}
		m.Limit = int(lim)
		m.Tables, err = d.strs()
	case MsgSnapshot:
		// no payload
	case MsgRebuildRange:
		if m.Lo, err = d.str(); err != nil {
			return nil, err
		}
		m.Hi, err = d.str()
	case MsgCommand:
		var n uint64
		if n, err = d.uvarint(); err != nil {
			return nil, err
		}
		m.Args = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			var a string
			if a, err = d.str(); err != nil {
				return nil, err
			}
			m.Args = append(m.Args, a)
		}
	case MsgReply:
		if m.Status, err = d.byte(); err != nil {
			return nil, err
		}
		var found byte
		if found, err = d.byte(); err != nil {
			return nil, err
		}
		m.Found = found == 1
		if m.Value, err = d.str(); err != nil {
			return nil, err
		}
		if m.Err, err = d.str(); err != nil {
			return nil, err
		}
		var cnt uint64
		if cnt, err = d.uvarint(); err != nil {
			return nil, err
		}
		m.Count = int64(cnt)
		if m.KVs, err = d.kvs(); err != nil {
			return nil, err
		}
		if m.Epoch, m.MapVersion, err = d.mapPos(); err != nil {
			return nil, err
		}
		if m.Bounds, err = d.strs(); err != nil {
			return nil, err
		}
		if m.Peers, err = d.strs(); err != nil {
			return nil, err
		}
		m.Warm, err = d.warm()
	default:
		return nil, fmt.Errorf("rpc: unknown message type %d", t)
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// ReadMessage reads one frame from br. scratch (possibly nil) is reused
// for the payload when large enough; the returned buffer may be the grown
// scratch for the caller to reuse.
func ReadMessage(br *bufio.Reader, scratch []byte) (*Message, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return nil, scratch, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return nil, scratch, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	buf := scratch[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, scratch, err
	}
	m, err := Decode(buf)
	return m, scratch, err
}

// WriteMessage encodes m and writes its frame to w (typically a
// bufio.Writer; the caller controls flushing). scratch is reused as the
// encode buffer.
func WriteMessage(w io.Writer, m *Message, scratch []byte) ([]byte, error) {
	buf := m.Encode(scratch[:0])
	_, err := w.Write(buf)
	return buf, err
}

// OKReply builds a success reply for seq.
func OKReply(seq uint64) *Message {
	return &Message{Type: MsgReply, Seq: seq, Status: StatusOK}
}

// ErrReply builds an error reply.
func ErrReply(seq uint64, err error) *Message {
	return &Message{Type: MsgReply, Seq: seq, Status: StatusError, Err: err.Error()}
}

// NotOwnerReply builds a StatusNotOwner reply carrying the server's
// current cluster map — position, bounds, and member addresses — so the
// client can re-route and retry, even across a membership change.
func NotOwnerReply(seq uint64, epoch, version int64, bounds, peers []string) *Message {
	return &Message{
		Type: MsgReply, Seq: seq, Status: StatusNotOwner,
		Err:        "not the owner of the requested range",
		Epoch:      epoch,
		MapVersion: version,
		Bounds:     bounds,
		Peers:      peers,
	}
}
