// Package cluster implements the multi-server Pequod client: one handle
// over a partitioned deployment (§2.4, §5.5) that owns the key routing
// applications previously hand-rolled with partition.Map, plus the
// coordination of cluster-level live re-partitioning.
//
// A Cluster holds a versioned partition map. Point operations
// (Get/Put/Remove) go to the key's home server; range operations
// (Scan/Count) split the range by owner, fan the pieces out concurrently
// over the per-server pipelined connections, and concatenate the sorted
// pieces — the same merge the in-process shard.Pool performs, lifted
// onto the wire. Batch operations pipeline every element before waiting
// on any, so a batch costs one network round trip per server touched,
// not per element.
//
// Installing joins through the cluster also wires the mesh: every
// member receives the join set, and each member is told (via the
// ConnectPeers RPC) to remotely load and subscribe to the base source
// tables it does not own, so computed ranges anywhere stay fresh as
// base writes land at their home servers — the paper's cross-server
// subscription and asynchronous update notification, eventually
// consistent. Quiesce settles it.
//
// # Live re-partitioning
//
// The partition is not static: MoveBound (migrate.go) relocates the key
// range on one side of a partition bound between the two servers
// serving it, live — extract at the source, splice at the destination,
// then a MapUpdate publishing the successor map to every member. Every
// server re-validates ownership per request under its shard locks and
// answers NotOwner (carrying its current map, member addresses
// included) when a range has moved; the cluster client adopts the
// newer map and retries, so concurrent callers — even other, stale
// clients — see no lost writes, gaps, or duplicates. A client-driven
// rebalancer (rebalance.go) polls per-server load through the stat RPC
// and moves hot ranges to cooler neighbors with the same hysteresis as
// the in-process shard rebalancer.
//
// # Elastic membership
//
// The member set is not static either (membership.go): AddServer
// splices a fresh server into the mesh — one JoinCluster RPC wires its
// gate, mesh connections, and join set, then an ordinary
// extract/splice grants it a slice of the busiest member's range under
// a *grown* map (partition.InsertBound) — and DrainServer streams every
// range a member owns to its neighbors under successive *shrunk* maps
// (partition.RemoveBound) before tearing its mesh wiring down. A
// neighbor dying mid-drain re-offers the range to the other neighbor,
// and a transfer that cannot complete reverts, with the source's
// retained-extraction buffer (internal/shard) as the backstop — no
// range is ever stranded in just a coordinator's error message.
//
// Maps are totally ordered by (epoch, version): each coordinating
// client mints successors at its own epoch, so two clients racing from
// the same parent produce comparable maps — members adopt exactly one
// winner and the loser's transfer fails with a conflict it recovers
// from by adopting and re-deriving. See DESIGN.md ("Cluster-level live
// re-partitioning", "Membership & epochs") for the full protocol and
// docs/OPERATIONS.md for the operator runbook.
package cluster
