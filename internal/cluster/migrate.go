package cluster

// Client-driven cluster migration: MoveBound relocates a key range
// between the servers on either side of a partition bound, live, with
// no lost writes, gaps, or duplicates. The cluster client is the
// coordinator — it drives three RPCs in order and publishes the result:
//
//  1. ExtractRange at the source. The source atomically stops serving
//     the range (its pool swaps the ownership gate under the owning
//     shards' locks) and returns the owned rows plus the warm computed
//     coverage. Writes that raced the extraction either landed before
//     it (and are in the returned rows) or bounce with NotOwner and
//     retry at the destination.
//  2. SpliceRange at the destination. The destination fences in-flight
//     subscription pushes from the source (a ping; the reply follows
//     every queued push), drops its own subscriber-era cached copies of
//     the range, installs the moved rows, rebuilds the previously valid
//     computed coverage warm, and atomically starts serving the range.
//  3. MapUpdate at every member. Each member adopts the new map,
//     fences the old owner, and drops (with §2.5 eviction semantics)
//     its cached replicas of the moved range, so the next read
//     re-fetches from — and re-subscribes at — the new home.
//
// Between steps 1 and 2 the range is owned by nobody reachable:
// operations on it get NotOwner from both sides and retry with a short
// pause until the splice lands. That window is the transfer itself —
// bounded by one round trip carrying the range's rows.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pequod/internal/client"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/rpc"
)

// spliceAttempts bounds retries of the splice RPC. After a successful
// extract the moved rows exist only in this coordinator's memory, so the
// splice is retried hard before giving up.
const spliceAttempts = 3

// MoveBound migrates the key range implied by moving partition bound i
// to bound between the two servers on either side of it, live. Lowering
// the bound moves [bound, old) from owner i to owner i+1; raising it
// moves [old, bound) from owner i+1 to owner i. When both owner indexes
// are served by the same member, only the map version moves. Migrations
// through one client serialize; a concurrent coordinator's move
// surfaces as a version-conflict error carrying the newer map, which
// this client adopts.
func (cl *Cluster) MoveBound(ctx context.Context, i int, bound string) error {
	cl.mvmu.Lock()
	defer cl.mvmu.Unlock()
	err := cl.moveBoundOnce(ctx, i, bound)
	var noe *client.NotOwnerError
	if errors.As(err, &noe) && cl.pmap.Load().Version() >= noe.Version {
		// Version conflict: the source holds a newer map than we
		// proposed against (another coordinator moved first, or this
		// client started from the deployment's original bounds). The
		// conflict reply carried that map and adopt installed it; one
		// retry re-proposes against it.
		err = cl.moveBoundOnce(ctx, i, bound)
	}
	return err
}

// moveBoundOnce runs one migration attempt against the current map.
func (cl *Cluster) moveBoundOnce(ctx context.Context, i int, bound string) error {
	cur := cl.pmap.Load()
	next, err := cur.MoveBound(i, bound)
	if err != nil {
		return err
	}
	old := cur.Bound(i)
	var src, dst int
	var r keys.Range
	if bound < old {
		src, dst, r = i, i+1, keys.Range{Lo: bound, Hi: old}
	} else {
		src, dst, r = i+1, i, keys.Range{Lo: old, Hi: bound}
	}
	srcM, dstM := cl.byOwner[src], cl.byOwner[dst]
	if srcM != dstM {
		em, err := srcM.c.Do(ctx, &rpc.Message{
			Type: rpc.MsgExtractRange, Lo: r.Lo, Hi: r.Hi,
			MapVersion: next.Version(), Bounds: next.Bounds(),
		})
		if err != nil {
			var noe *client.NotOwnerError
			if errors.As(err, &noe) {
				cl.adopt(noe.Version, noe.Bounds)
			}
			return fmt.Errorf("cluster: extracting [%q, %q) from %s: %w", r.Lo, r.Hi, srcM.addr, err)
		}
		sm := &rpc.Message{
			Type: rpc.MsgSpliceRange, Lo: r.Lo, Hi: r.Hi,
			MapVersion: next.Version(), Bounds: next.Bounds(),
			KVs: em.KVs, Warm: em.Warm, Owner: src,
		}
		var serr error
		for attempt := 0; attempt < spliceAttempts; attempt++ {
			if _, serr = dstM.c.Do(ctx, sm); serr == nil {
				break
			}
			if ctx.Err() != nil {
				break
			}
			time.Sleep(retryPause)
		}
		if serr != nil {
			// The source no longer serves the range and the destination
			// never accepted it: the extracted rows ride only in this
			// error path now. Operators re-run the move (the source
			// answers with a version conflict carrying its map) or
			// restore from the application's source of truth.
			return fmt.Errorf("cluster: splicing [%q, %q) into %s failed after extract — range may be stranded: %w",
				r.Lo, r.Hi, dstM.addr, serr)
		}
	}
	// Publish, one concurrent RPC per member (the Scan fan-out pattern):
	// src and dst already hold the new map (the transfer RPCs install
	// it), so for them this is an idempotent no-op; everyone else fences
	// the old owner and drops the moved range's replicas.
	errs := make([]error, len(cl.members))
	var wg sync.WaitGroup
	for i, m := range cl.members {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = cl.publishView(ctx, m, next)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	cl.adopt(next.Version(), next.Bounds())
	return nil
}

// MemberLoads polls every member's stat RPC and returns the per-member
// cumulative load units and recent key samples — the cluster
// rebalancer's input, exported for tools and tests.
func (cl *Cluster) MemberLoads(ctx context.Context) ([]MemberLoad, error) {
	out := make([]MemberLoad, len(cl.members))
	errs := make([]error, len(cl.members))
	var wg sync.WaitGroup
	for i, m := range cl.members {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := m.c.StatSnapshot(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("cluster: stat from %s: %w", m.addr, err)
				return
			}
			out[i] = MemberLoad{Addr: m.addr, Units: st.Load.Units, Samples: st.Load.Samples}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MemberLoad is one member's load snapshot.
type MemberLoad struct {
	Addr    string
	Units   int64
	Samples []string
}

// ownerRange returns the key range owner index o serves under m.
func ownerRange(m *partition.Map, o int) keys.Range {
	var r keys.Range
	if o > 0 {
		r.Lo = m.Bound(o - 1)
	}
	if o < m.Servers()-1 {
		r.Hi = m.Bound(o)
	}
	return r
}
