package cluster

// Client-driven cluster migration: MoveBound relocates a key range
// between the servers on either side of a partition bound, live, with
// no lost writes, gaps, or duplicates. The cluster client is the
// coordinator — it drives three RPCs in order and publishes the result:
//
//  1. ExtractRange at the source. The source atomically stops serving
//     the range (its pool swaps the ownership gate under the owning
//     shards' locks), retains a recovery copy, and returns the owned
//     rows plus the warm computed coverage. Writes that raced the
//     extraction either landed before it (and are in the returned rows)
//     or bounce with NotOwner and retry at the destination.
//  2. SpliceRange at the destination. The destination fences in-flight
//     subscription pushes from the source (a ping; the reply follows
//     every queued push), drops its own subscriber-era cached copies of
//     the range, installs the moved rows, rebuilds the previously valid
//     computed coverage warm, and atomically starts serving the range.
//  3. MapUpdate at every member. Each member adopts the new map,
//     fences the old owner, and drops (with §2.5 eviction semantics)
//     its cached replicas of the moved range, so the next read
//     re-fetches from — and re-subscribes at — the new home. The
//     publish also confirms the source's retained copy.
//
// Between steps 1 and 2 the range is owned by nobody reachable:
// operations on it get NotOwner from both sides and retry with a short
// pause until the splice lands. That window is the transfer itself —
// bounded by one round trip carrying the range's rows.
//
// If step 2 fails (the destination died mid-transfer), the coordinator
// *reverts*: it mints a further successor assigning the range back to
// the source, splices the extracted state back in, and publishes — the
// cluster converges on a consistent map with no range stranded, and the
// failed move surfaces as an error. Elastic membership (membership.go)
// reuses every piece of this machinery, re-offering a drained range to
// the other neighbor before falling back to a revert.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/perrs"
	"pequod/internal/rpc"
)

// spliceAttempts bounds retries of the splice RPC before the transfer
// is re-offered or reverted.
const spliceAttempts = 3

// MoveBound migrates the key range implied by moving partition bound i
// to bound between the two servers on either side of it, live. Lowering
// the bound moves [bound, old) from owner i to owner i+1; raising it
// moves [old, bound) from owner i+1 to owner i. When both owner indexes
// are served by the same member, only the map version moves. Migrations
// through one client serialize; a concurrent coordinator's move
// surfaces as a version-conflict error carrying the newer map, which
// this client adopts — the epoch tie-break guarantees exactly one of
// two racing coordinators' maps wins, so one retry after adopting
// re-proposes against the winner and succeeds.
func (cl *Cluster) MoveBound(ctx context.Context, i int, bound string) error {
	cl.mvmu.Lock()
	defer cl.mvmu.Unlock()
	err := cl.moveBoundOnce(ctx, i, bound)
	var noe *client.NotOwnerError
	if errors.As(err, &noe) {
		cur := cl.v.Load().pmap
		if partition.Compare(cur.Epoch(), cur.Version(), noe.Epoch, noe.Version) >= 0 {
			// Version conflict: the source holds a newer map than we
			// proposed against (another coordinator moved first, or this
			// client started from the deployment's original bounds). The
			// conflict reply carried that map and adopt installed it; one
			// retry re-proposes against it.
			err = cl.moveBoundOnce(ctx, i, bound)
		}
	}
	noe = nil
	if errors.As(err, &noe) {
		// Still conflicting after re-proposing against the adopted map:
		// a concurrent coordinator keeps winning. Matchable as
		// ErrConflict (and still as NotOwnerError, which carries the
		// winner's map).
		err = fmt.Errorf("cluster: moving bound %d: %w: %w", i, perrs.ErrConflict, err)
	}
	return err
}

// moveBoundOnce runs one migration attempt against the current view.
func (cl *Cluster) moveBoundOnce(ctx context.Context, i int, bound string) error {
	v := cl.v.Load()
	next, err := v.pmap.MoveBound(i, bound)
	if err != nil {
		return err
	}
	if next, err = next.WithEpoch(cl.mintEpoch(v.pmap.Epoch())); err != nil {
		return err
	}
	nv, err := newView(next, v.addrs)
	if err != nil {
		return err
	}
	old := v.pmap.Bound(i)
	var src, dst int
	var r keys.Range
	if bound < old {
		src, dst, r = i, i+1, keys.Range{Lo: bound, Hi: old}
	} else {
		src, dst, r = i+1, i, keys.Range{Lo: old, Hi: bound}
	}
	srcA, dstA := v.addrs[src], v.addrs[dst]
	if srcA != dstA {
		rs, err := cl.extract(ctx, srcA, r, nv)
		if err != nil {
			return fmt.Errorf("cluster: extracting [%q, %q) from %s: %w", r.Lo, r.Hi, srcA, err)
		}
		if serr := cl.splice(ctx, dstA, srcA, rs, nv); serr != nil {
			// The source no longer serves the range and the destination
			// never accepted it. Revert: assign the range back to the
			// source under a further successor and splice the extracted
			// state back in, so nothing is stranded.
			rerr := cl.revert(ctx, nv, i, old, srcA, dstA, rs)
			if rerr != nil {
				return fmt.Errorf("cluster: splicing [%q, %q) into %s failed (%v) and the revert to %s also failed — range retained at the source, see its stat RPC: %w",
					r.Lo, r.Hi, dstA, serr, srcA, rerr)
			}
			return fmt.Errorf("cluster: splicing [%q, %q) into %s failed; move reverted, %s still serves the range: %w",
				r.Lo, r.Hi, dstA, srcA, serr)
		}
	}
	return cl.publish(ctx, nv, nil)
}

// extract runs the ExtractRange RPC at addr for r under the successor
// view, adopting the newer map on a version conflict.
func (cl *Cluster) extract(ctx context.Context, addr string, r keys.Range, nv *view) (core.RangeState, error) {
	em, err := cl.do(ctx, addr, &rpc.Message{
		Type: rpc.MsgExtractRange, Lo: r.Lo, Hi: r.Hi,
		Epoch: nv.pmap.Epoch(), MapVersion: nv.pmap.Version(),
		Bounds: nv.pmap.Bounds(), Peers: nv.addrs, Self: nv.ownersOf(addr),
	})
	if err != nil {
		var noe *client.NotOwnerError
		if errors.As(err, &noe) {
			cl.adopt(noe.Epoch, noe.Version, noe.Bounds, noe.Peers)
		}
		return core.RangeState{}, wrapDown(addr, err)
	}
	return core.RangeState{R: r, KVs: em.KVs, Warm: em.Warm}, nil
}

// splice retries the SpliceRange RPC at addr, installing rs under the
// successor view; src is the member address the range came from (fenced
// by the destination before the splice; "" = none).
func (cl *Cluster) splice(ctx context.Context, addr, src string, rs core.RangeState, nv *view) error {
	sm := &rpc.Message{
		Type: rpc.MsgSpliceRange, Lo: rs.R.Lo, Hi: rs.R.Hi,
		Epoch: nv.pmap.Epoch(), MapVersion: nv.pmap.Version(),
		Bounds: nv.pmap.Bounds(), Peers: nv.addrs, Self: nv.ownersOf(addr),
		KVs: rs.KVs, Warm: rs.Warm, Src: src,
	}
	var serr error
	for attempt := 0; attempt < spliceAttempts; attempt++ {
		if _, serr = cl.do(ctx, addr, sm); serr == nil {
			return nil
		}
		if ctx.Err() != nil {
			return wrapDown(addr, serr)
		}
		time.Sleep(retryPause)
	}
	return wrapDown(addr, serr)
}

// revert recovers from a failed splice of a plain bound move: a further
// successor (version +1) puts bound i back at old, the extracted state
// splices back into the source, and the result is published — the
// cluster converges with the source serving the range again. The
// publish is best-effort: the splice-back is what restores the data,
// the dead destination obviously cannot acknowledge a map, and every
// other member converges through NotOwner adoption.
func (cl *Cluster) revert(ctx context.Context, nv *view, i int, old, srcA, dstA string, rs core.RangeState) error {
	back, err := nv.pmap.MoveBound(i, old)
	if err != nil {
		return err
	}
	if back, err = back.WithEpoch(cl.mintEpoch(nv.pmap.Epoch())); err != nil {
		return err
	}
	bv, err := newView(back, nv.addrs)
	if err != nil {
		return err
	}
	if err := cl.splice(ctx, srcA, dstA, rs, bv); err != nil {
		return err
	}
	cl.publish(ctx, bv, nil) //nolint:errcheck // best-effort; see above
	return nil
}

// publish broadcasts a successor view to every member (one concurrent
// RPC each, the Scan fan-out pattern) plus any extra addresses (a
// member that just drained out still needs the final map: the publish
// both updates its NotOwner replies and confirms its retained
// extraction). Transfer participants already hold the map (the
// transfer RPCs install it), so for them this is the confirming no-op.
// The view is adopted locally even if some member could not be reached
// — the map took effect at the transfer participants, so routing must
// follow it; the error reports the first failed publish.
func (cl *Cluster) publish(ctx context.Context, nv *view, extra []string) error {
	targets := make([]string, 0, len(nv.mbrs)+len(extra))
	for _, m := range nv.mbrs {
		targets = append(targets, m.addr)
	}
	for _, a := range extra {
		if nv.ownersOf(a) == nil {
			targets = append(targets, a)
		}
	}
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, addr := range targets {
		i, addr := i, addr
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = cl.publishView(ctx, nv, addr)
		}()
	}
	wg.Wait()
	cl.adoptView(nv)
	// Replica assignments follow the map: every member re-derives its
	// replica set from the view just published (strictly after the map,
	// so a promoted owner's gate already owns its ranges when the
	// assignment arrives). Best-effort — the assignment rides every
	// publish, so a missed member converges at the next round.
	cl.publishReplicas(ctx, nv, cl.replicaTables())
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MemberLoads polls every member's stat RPC and returns the per-member
// cumulative load units and recent key samples — the cluster
// rebalancer's input, exported for tools and tests.
func (cl *Cluster) MemberLoads(ctx context.Context) ([]MemberLoad, error) {
	mbrs := cl.v.Load().mbrs
	out := make([]MemberLoad, len(mbrs))
	errs := make([]error, len(mbrs))
	var wg sync.WaitGroup
	for i, m := range mbrs {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := cl.conn(ctx, m.addr)
			if err != nil {
				errs[i] = fmt.Errorf("cluster: stat from %s: %w", m.addr, err)
				return
			}
			st, err := c.StatSnapshot(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("cluster: stat from %s: %w", m.addr, err)
				return
			}
			out[i] = MemberLoad{Addr: m.addr, Units: st.Load.Units, Samples: st.Load.Samples}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MemberLoad is one member's load snapshot.
type MemberLoad struct {
	Addr    string
	Units   int64
	Samples []string
}

// ownerRange returns the key range owner index o serves under m.
func ownerRange(m *partition.Map, o int) keys.Range {
	var r keys.Range
	if o > 0 {
		r.Lo = m.Bound(o - 1)
	}
	if o < m.Servers()-1 {
		r.Hi = m.Bound(o)
	}
	return r
}
