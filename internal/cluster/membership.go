package cluster

// Elastic cluster membership: AddServer splices a fresh server into the
// mesh live, DrainServer streams every range a member owns to its
// neighbors and removes it — both under traffic, reusing the MoveBound
// transfer machinery (extract → fence+splice → publish) with maps that
// change *shape* (partition.InsertBound / RemoveBound) instead of just
// moving a bound.
//
// A join runs:
//
//  1. JoinCluster at the fresh server: one RPC installs the current
//     cluster map as its gate (owning nothing, so it answers NotOwner
//     until granted a range), wires it into the subscription mesh, and
//     installs the cluster's join set.
//  2. The grown map is minted: the donor's range splits at a bound
//     picked from its load samples (or given explicitly), the new
//     member taking the upper slice.
//  3. ExtractRange at the donor, SpliceRange at the new member,
//     MapUpdate everywhere — the ordinary transfer, under the grown
//     map. Every member's MapUpdate resizes its mesh to include the
//     new peer; clients that never heard of it learn its address from
//     the peers carried on NotOwner replies.
//
// A drain runs the transfer in reverse, once per owned range: a shrunk
// map merges the departing member's range into a neighbor's, the range
// extracts from the departing member and splices into that neighbor,
// and the publish (which includes the departing member) retires it from
// everyone's mesh. When the last range is out, a Drain RPC tears down
// the departed server's own mesh wiring — its gate stays, so stale
// clients still get NotOwner replies carrying the post-drain map. If a
// neighbor dies mid-drain the range is re-offered to the other
// neighbor, and if that fails too it splices back into the draining
// member (which is alive — drains are graceful), so no state strands.

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/perrs"
	"pequod/internal/rpc"
)

// joinMinSamples is the fewest in-range load samples AddServer trusts
// to pick a split bound before falling back to a key scan.
const joinMinSamples = 8

// joinScanLimit bounds the fallback scan used to pick a split bound
// when the donor has too few load samples.
const joinScanLimit = 256

// AddServer splices the server at addr into the cluster live: the new
// member is wired into the subscription mesh and granted an initial
// slice — the upper half of the busiest member's hottest range, split
// at the median of its load samples (falling back to a key scan when
// the cluster is quiet). Further rebalancing is the rebalancer's job;
// the join only has to give the new member a non-empty range to serve.
// Use AddServerAt to control the donor and bound explicitly.
func (cl *Cluster) AddServer(ctx context.Context, addr string) error {
	cl.mvmu.Lock()
	defer cl.mvmu.Unlock()
	donor, bound, err := cl.pickJoinSplit(ctx, addr)
	if err != nil {
		return err
	}
	return cl.addServerAt(ctx, addr, donor, bound)
}

// AddServerAt is AddServer with an explicit initial grant: donor owner
// index `owner`'s range splits at bound, the new member taking
// [bound, hi).
func (cl *Cluster) AddServerAt(ctx context.Context, addr string, owner int, bound string) error {
	cl.mvmu.Lock()
	defer cl.mvmu.Unlock()
	return cl.addServerAt(ctx, addr, owner, bound)
}

// addServerAt runs the join under mvmu.
func (cl *Cluster) addServerAt(ctx context.Context, addr string, owner int, bound string) error {
	v := cl.v.Load()
	if v.ownersOf(addr) != nil {
		return fmt.Errorf("cluster: %s is already a member", addr)
	}
	if owner < 0 || owner >= v.pmap.Servers() {
		return fmt.Errorf("cluster: donor owner %d out of range [0,%d)", owner, v.pmap.Servers())
	}
	donorA := v.addrs[owner]
	// Validate the grant before touching the fresh server: JoinCluster
	// gates and meshes it irreversibly, so a bad bound must fail here,
	// not after.
	if _, err := v.pmap.InsertBound(owner, bound); err != nil {
		return err
	}
	// Wire the fresh server first: gate (owning nothing), mesh, joins.
	// Until the grown map publishes, no client routes to it. The join
	// set comes from the donor (the cluster is the authority; this
	// coordinator may never have installed anything itself).
	text, tables := cl.joinState(ctx, donorA)
	if _, err := cl.do(ctx, addr, &rpc.Message{
		Type:  rpc.MsgJoinCluster,
		Epoch: v.pmap.Epoch(), MapVersion: v.pmap.Version(),
		Bounds: v.pmap.Bounds(), Peers: v.addrs, Self: nil,
		Tables: tables, Text: text,
	}); err != nil {
		return fmt.Errorf("cluster: joining %s: %w", addr, err)
	}
	// Mint the grown map: donor keeps [lo, bound), the new member (owner
	// index owner+1; higher indexes shift up) takes [bound, hi).
	next, err := v.pmap.InsertBound(owner, bound)
	if err != nil {
		return err
	}
	if next, err = next.WithEpoch(cl.mintEpoch(v.pmap.Epoch())); err != nil {
		return err
	}
	grownAddrs := make([]string, 0, len(v.addrs)+1)
	grownAddrs = append(grownAddrs, v.addrs[:owner+1]...)
	grownAddrs = append(grownAddrs, addr)
	grownAddrs = append(grownAddrs, v.addrs[owner+1:]...)
	nv, err := newView(next, grownAddrs)
	if err != nil {
		return err
	}
	r := ownerRange(next, owner+1)
	rs, err := cl.extract(ctx, donorA, r, nv)
	if err != nil {
		return fmt.Errorf("cluster: extracting the initial slice [%q, %q) from %s: %w", r.Lo, r.Hi, donorA, err)
	}
	if serr := cl.splice(ctx, addr, donorA, rs, nv); serr != nil {
		// The fresh member never accepted its slice: revert by merging
		// the slice back into the donor under a further successor.
		back, err := next.RemoveBound(owner)
		if err == nil {
			back, err = back.WithEpoch(cl.mintEpoch(next.Epoch()))
		}
		var bv *view
		if err == nil {
			bv, err = newView(back, v.addrs)
		}
		if err == nil {
			err = cl.splice(ctx, donorA, addr, rs, bv)
		}
		if err == nil {
			// Best-effort: the slice is back at the donor; the failed
			// joiner and any unreachable member converge via NotOwner.
			cl.publish(ctx, bv, []string{addr}) //nolint:errcheck
		}
		if err != nil {
			return fmt.Errorf("cluster: splicing the initial slice into %s failed (%v) and the revert also failed — slice retained at %s, see its stat RPC: %w",
				addr, serr, donorA, err)
		}
		return fmt.Errorf("cluster: splicing the initial slice into %s failed; join reverted: %w", addr, serr)
	}
	return cl.publish(ctx, nv, nil)
}

// pickJoinSplit chooses the donor owner index and split bound for a
// join: the busiest member's owner range with the most load samples,
// split at the samples' median — so the new member lands where the load
// is. A quiet cluster falls back to scanning the largest-looking range
// for a middle key. Caller holds mvmu.
func (cl *Cluster) pickJoinSplit(ctx context.Context, addr string) (int, string, error) {
	v := cl.v.Load()
	loads, err := cl.MemberLoads(ctx)
	if err != nil {
		return 0, "", fmt.Errorf("cluster: polling loads to place %s: %w", addr, err)
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].Units > loads[j].Units })
	for _, ml := range loads {
		owners := v.ownersOf(ml.Addr)
		bestOwner, bestIn := -1, []string(nil)
		for _, o := range owners {
			or := ownerRange(v.pmap, o)
			var in []string
			for _, k := range ml.Samples {
				if or.Contains(k) {
					in = append(in, k)
				}
			}
			if len(in) > len(bestIn) {
				bestOwner, bestIn = o, in
			}
		}
		if bestOwner < 0 || len(bestIn) < joinMinSamples {
			continue
		}
		sort.Strings(bestIn)
		if b, ok := splitPoint(ownerRange(v.pmap, bestOwner), bestIn); ok {
			return bestOwner, b, nil
		}
	}
	// Quiet cluster: scan each owner range (cheapest first attempt: the
	// busiest member's first range) for keys and split at the middle.
	for _, ml := range loads {
		for _, o := range v.ownersOf(ml.Addr) {
			or := ownerRange(v.pmap, o)
			m, err := cl.do(ctx, ml.Addr, &rpc.Message{Type: rpc.MsgScan, Lo: or.Lo, Hi: or.Hi, Limit: joinScanLimit})
			if err != nil {
				continue
			}
			ks := make([]string, 0, len(m.KVs))
			for _, kv := range m.KVs {
				ks = append(ks, kv.Key)
			}
			if b, ok := splitPoint(or, ks); ok {
				return o, b, nil
			}
		}
	}
	return 0, "", fmt.Errorf("cluster: no key range with enough data to split for %s; use AddServerAt with an explicit bound", addr)
}

// splitPoint picks a key strictly inside r from the sorted candidates,
// preferring the median.
func splitPoint(r keys.Range, sorted []string) (string, bool) {
	if len(sorted) == 0 {
		return "", false
	}
	mid := len(sorted) / 2
	for off := 0; off < len(sorted); off++ {
		for _, i := range []int{mid - off, mid + off} {
			if i < 0 || i >= len(sorted) {
				continue
			}
			k := sorted[i]
			if k > r.Lo && (r.Hi == "" || k < r.Hi) && k != "" {
				return k, true
			}
		}
	}
	return "", false
}

// DrainServer streams every range the member at addr owns to its
// neighbors, removes it from the map, and tears down its mesh wiring —
// live, under traffic. The drained server keeps running (and keeps
// answering NotOwner with the post-drain map, so stale clients
// re-route); re-adding it later is a fresh AddServer. Draining the last
// member is refused.
func (cl *Cluster) DrainServer(ctx context.Context, addr string) error {
	cl.mvmu.Lock()
	defer cl.mvmu.Unlock()
	if cl.v.Load().ownersOf(addr) == nil {
		return fmt.Errorf("cluster: %s is not a member", addr)
	}
	// One owned range leaves per iteration; owner indexes shift under
	// us, so re-derive from the current view each round. A publish that
	// could not reach some third member does not stop the drain — the
	// map is already effective at the transfer participants and stale
	// members converge through NotOwner adoption — but it is reported
	// once the drain completes, so the operator knows who missed it.
	var pubErr error
	for {
		v := cl.v.Load()
		owners := v.ownersOf(addr)
		if owners == nil {
			break
		}
		if len(v.mbrs) == 1 {
			return fmt.Errorf("cluster: cannot drain %s: it is the last member: %w", addr, perrs.ErrDraining)
		}
		err := cl.drainOneRange(ctx, v, addr, owners[0])
		var pe *publishError
		if errors.As(err, &pe) {
			if pubErr == nil {
				pubErr = pe.err
			}
			continue
		}
		if err != nil {
			return err
		}
	}
	// The final publish already reached the drained member (it needs the
	// post-drain map for NotOwner replies, and the publish confirms its
	// retained extraction); now its own mesh wiring can go.
	c, err := cl.conn(ctx, addr)
	if err != nil {
		return fmt.Errorf("cluster: draining %s: %w", addr, err)
	}
	if err := c.Drain(ctx); err != nil {
		return fmt.Errorf("cluster: tearing down %s's mesh: %w", addr, err)
	}
	if pubErr != nil {
		return fmt.Errorf("cluster: %s drained, but publishing the map did not reach every member (they will converge via NotOwner): %w", addr, pubErr)
	}
	return nil
}

// publishError marks a drain step whose data transfer succeeded but
// whose map publish could not reach every member.
type publishError struct{ err error }

func (e *publishError) Error() string { return e.err.Error() }

// drainOneRange moves the range at owner index o off addr: a shrunk map
// merges it into a neighbor, the range extracts and splices, and the
// result is published to everyone including the draining member. A
// neighbor that is addr itself (the member owns adjacent ranges) merges
// with no transfer at all. A dead first neighbor re-offers to the other
// neighbor; if that fails too the range splices back into the draining
// member and the drain aborts with the cluster consistent.
func (cl *Cluster) drainOneRange(ctx context.Context, v *view, addr string, o int) error {
	// Shrinking at owner o: RemoveBound(o) merges o into its right
	// neighbor; RemoveBound(o-1) into its left. Either way the new
	// address list simply drops entry o.
	shrunkAddrs := make([]string, 0, len(v.addrs)-1)
	shrunkAddrs = append(shrunkAddrs, v.addrs[:o]...)
	shrunkAddrs = append(shrunkAddrs, v.addrs[o+1:]...)
	type offer struct {
		boundIdx int    // bound removed from v.pmap
		dst      string // neighbor receiving the range
	}
	var offers []offer
	if o+1 < v.pmap.Servers() {
		offers = append(offers, offer{o, v.addrs[o+1]})
	}
	if o > 0 {
		offers = append(offers, offer{o - 1, v.addrs[o-1]})
	}
	// The member owning an adjacent range too: merge within itself, no
	// data moves.
	for _, of := range offers {
		if of.dst == addr {
			offers = []offer{of}
			break
		}
	}
	first := offers[0]
	next, err := v.pmap.RemoveBound(first.boundIdx)
	if err != nil {
		return err
	}
	if next, err = next.WithEpoch(cl.mintEpoch(v.pmap.Epoch())); err != nil {
		return err
	}
	nv, err := newView(next, shrunkAddrs)
	if err != nil {
		return err
	}
	if first.dst == addr {
		if err := cl.publish(ctx, nv, []string{addr}); err != nil {
			return &publishError{err}
		}
		return nil
	}
	r := ownerRange(v.pmap, o)
	rs, err := cl.extract(ctx, addr, r, nv)
	if err != nil {
		return fmt.Errorf("cluster: draining [%q, %q) out of %s: %w", r.Lo, r.Hi, addr, err)
	}
	serr := cl.splice(ctx, first.dst, addr, rs, nv)
	if serr == nil {
		if err := cl.publish(ctx, nv, []string{addr}); err != nil {
			return &publishError{err}
		}
		return nil
	}
	reoffered := false
	if len(offers) > 1 && offers[1].dst != first.dst {
		// Re-offer to the other neighbor: under the shrunk map the range
		// merged into the (dead) first neighbor's owner index; a further
		// successor moves it over to the live one.
		reoffered = true
		if nv2, err2 := cl.reofferView(nv, r, offers[1].dst); err2 == nil {
			if serr2 := cl.splice(ctx, offers[1].dst, addr, rs, nv2); serr2 == nil {
				if err := cl.publish(ctx, nv2, []string{addr}); err != nil {
					return &publishError{err}
				}
				return nil
			}
		}
	}
	return cl.drainRevert(ctx, nv, v, addr, first.dst, o, r, rs, serr, reoffered)
}

// reofferView derives a successor of nv assigning range r (currently
// merged into a dead neighbor's owner) to dst, which must own an
// adjacent range under nv.
func (cl *Cluster) reofferView(nv *view, r keys.Range, dst string) (*view, error) {
	m := nv.pmap
	deadOwner := m.Owner(r.Lo)
	var next2 *partition.Map
	var err error
	switch {
	case deadOwner > 0 && nv.addrs[deadOwner-1] == dst:
		// dst is left of the dead owner: raise the bound between them to
		// r.Hi, handing [r.Lo, r.Hi) leftward.
		if r.Hi == "" {
			return nil, fmt.Errorf("cluster: cannot re-offer an open tail leftward")
		}
		next2, err = m.MoveBound(deadOwner-1, r.Hi)
	case deadOwner < m.Servers()-1 && nv.addrs[deadOwner+1] == dst:
		// dst is right of the dead owner: lower the bound to r.Lo.
		next2, err = m.MoveBound(deadOwner, r.Lo)
	default:
		return nil, fmt.Errorf("cluster: %s is not adjacent to [%q, %q)", dst, r.Lo, r.Hi)
	}
	if err != nil {
		return nil, err
	}
	if next2, err = next2.WithEpoch(cl.mintEpoch(m.Epoch())); err != nil {
		return nil, err
	}
	return newView(next2, nv.addrs)
}

// drainRevert undoes a failed drain step: the draining member rejoins
// the map at its old position (a successor of the shrunk map re-grows
// its owner slot) and the extracted state splices back into it. When a
// re-offer was attempted first, the revert's version jumps past the
// re-offer's — a lost reply could mean its map was applied after all,
// and the revert must supersede it everywhere.
func (cl *Cluster) drainRevert(ctx context.Context, nv, old *view, addr, dstA string, o int, r keys.Range, rs core.RangeState, serr error, reoffered bool) error {
	bv, err := cl.regrowView(nv, old, addr, o, reoffered)
	if err == nil {
		err = cl.splice(ctx, addr, dstA, rs, bv)
	}
	if err == nil {
		// Best-effort: the splice-back restored the data; the dead
		// neighbor cannot acknowledge, and other members converge
		// through NotOwner adoption.
		cl.publish(ctx, bv, nil) //nolint:errcheck
	}
	if err != nil {
		return fmt.Errorf("cluster: draining [%q, %q) into %s failed (%v) and the revert also failed — range retained at %s, see its stat RPC: %w",
			r.Lo, r.Hi, dstA, serr, addr, err)
	}
	return fmt.Errorf("cluster: draining [%q, %q) into %s failed; drain aborted, %s still serves the range: %w",
		r.Lo, r.Hi, dstA, addr, serr)
}

// regrowView derives a successor of the shrunk view nv that restores
// the draining member's owner slot o with the bounds it had under old.
// skipVersion advances one extra version (past a re-offer map that may
// or may not have been applied).
func (cl *Cluster) regrowView(nv, old *view, addr string, o int, skipVersion bool) (*view, error) {
	r := ownerRange(old.pmap, o)
	m := nv.pmap
	merged := m.Owner(r.Lo)
	mr := ownerRange(m, merged)
	var next *partition.Map
	var insertAt int
	var err error
	if mr.Lo == r.Lo {
		// The merge was rightward: the merged owner starts where the
		// drained range did. Split the range back off its lower side.
		if r.Hi == "" {
			return nil, errors.New("cluster: cannot regrow an open-tailed range")
		}
		next, err = m.InsertBound(merged, r.Hi)
		insertAt = merged
	} else {
		// Leftward merge: split at the drained range's lower edge; the
		// regrown slot is the upper part.
		next, err = m.InsertBound(merged, r.Lo)
		insertAt = merged + 1
	}
	if err != nil {
		return nil, err
	}
	version := next.Version()
	if skipVersion {
		version++
	}
	if next, err = partition.NewEpochVersioned(cl.mintEpoch(m.Epoch()), version, next.Bounds()...); err != nil {
		return nil, err
	}
	addrs := make([]string, 0, len(nv.addrs)+1)
	addrs = append(addrs, nv.addrs[:insertAt]...)
	addrs = append(addrs, addr)
	addrs = append(addrs, nv.addrs[insertAt:]...)
	return newView(next, addrs)
}
