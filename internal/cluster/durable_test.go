package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"reflect"
	"testing"
	"time"

	"pequod/internal/client"
	"pequod/internal/durable"
	"pequod/internal/perrs"
	"pequod/internal/server"
	"pequod/internal/shard"
)

// testDataDir returns a per-server data dir when the suite runs with
// PEQUOD_TEST_DATADIR set (the CI knob that re-runs the cluster tests
// with durability on), and "" — memory-only, the default — otherwise.
func testDataDir(t *testing.T) string {
	t.Helper()
	if os.Getenv("PEQUOD_TEST_DATADIR") == "" {
		return ""
	}
	return t.TempDir()
}

// durableServerConfig is the cluster-test shape of a durable member:
// fsync fast enough that a graceful close never races the flush loop,
// snapshots frequent enough that a mid-workload restart exercises
// snapshot+log replay rather than log-only replay. With
// PEQUOD_TEST_SCRUB set (the CI knob), the background lineage scrub
// and log compaction loops run at test cadence under the whole suite,
// so the maintenance work races real snapshots, flushes, restarts, and
// migrations rather than only its own unit tests.
func durableServerConfig(name, dir string) server.Config {
	cfg := server.Config{
		Name:             name,
		DataDir:          dir,
		SyncInterval:     2 * time.Millisecond,
		SnapshotInterval: 100 * time.Millisecond,
	}
	if os.Getenv("PEQUOD_TEST_SCRUB") != "" {
		cfg.ScrubInterval = 25 * time.Millisecond
		cfg.CompactInterval = 25 * time.Millisecond
	} else {
		// Off by default: unit cadences keep the suite deterministic.
		cfg.ScrubInterval = -1
		cfg.CompactInterval = -1
	}
	return cfg
}

// startServerDir launches one single-shard server persisting to dir,
// returning its address and a kill function.
func startServerDir(t *testing.T, name, dir string) (string, func()) {
	t.Helper()
	s, err := server.New(durableServerConfig(name, dir))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return addr, s.Close
}

// restartServerDir restarts a member process: a fresh server recovers
// from the data dir a previous server just closed, and rebinds the
// address it just released. Recovery runs inside server.New — the
// member replays its snapshot+log, re-installs its gate and joins, and
// re-wires its mesh before the listener comes back.
func restartServerDir(t *testing.T, name, addr, dir string) func() {
	t.Helper()
	s, err := server.New(durableServerConfig(name, dir))
	if err != nil {
		t.Fatal(err)
	}
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	go s.Serve(ln) //nolint:errcheck // exits when the test closes the server
	t.Cleanup(s.Close)
	return s.Close
}

// TestClusterEqualsEmbeddedUnderWarmRestart is the issue's warm-restart
// property: with durability on and NO failure detector — the map never
// changes — killing a member in the middle of the randomized Twip
// workload and restarting it from its data dir at the same address
// must leave the cluster byte-equivalent to the embedded cache. The
// restarted member recovers its rows and cluster position from
// snapshot+log before serving; the client retry budget carries ops
// across the gap; and the peers' mesh and replica watchdogs retire the
// dead connections, refetch, and resubscribe.
func TestClusterEqualsEmbeddedUnderWarmRestart(t *testing.T) {
	ctx := context.Background()
	seed := int64(3)
	nOps := 300
	if testing.Short() {
		nOps = 140
	}
	ops := shard.GenTwipOps(seed, nOps, 10)

	single, err := shard.New(shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(single.Close)
	if err := single.InstallText(shard.EquivJoins); err != nil {
		t.Fatal(err)
	}

	dirs := make([]string, 4)
	addrs := make([]string, 4)
	kills := make([]func(), 4)
	for i := range addrs {
		dirs[i] = t.TempDir()
		addrs[i], kills[i] = startServerDir(t, fmt.Sprintf("w%d", i), dirs[i])
	}
	cl := newCluster(t, Config{
		Addrs: addrs, Bounds: testBounds, Joins: shard.EquivJoins,
		Replicas:        2,
		CoordinatorName: "warm-restart-equiv",
	})

	quiesce := func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			err := cl.Quiesce(ctx)
			if err == nil {
				return
			}
			if !errors.Is(err, perrs.ErrMemberDown) || time.Now().After(deadline) {
				t.Fatal(err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Kill the p|-and-s| owner (member 1) halfway through and restart it
	// from its own data dir immediately: its base rows feed every
	// computed timeline, so a restart that lost them would diverge
	// everything downstream. No quiesce first — the write-behind log is
	// the durability contract here, not the replica fence.
	killAt := len(ops) / 2
	for i, o := range ops {
		if i == killAt {
			kills[1]()
			restartServerDir(t, "w1b", addrs[1], dirs[1])
			// Give the peers' watchdogs (200ms cadence) time to notice
			// the dead mesh and replica connections, drop the coverage
			// they sourced from the old process, and resync against the
			// restarted one.
			time.Sleep(600 * time.Millisecond)
		}
		switch o.Kind {
		case shard.OpPut:
			single.Put(o.Key, o.Value)
			if err := cl.Put(ctx, o.Key, o.Value); err != nil {
				t.Fatalf("op %d Put(%q): %v", i, o.Key, err)
			}
		case shard.OpRemove:
			single.Remove(o.Key)
			if _, err := cl.Remove(ctx, o.Key); err != nil {
				t.Fatalf("op %d Remove(%q): %v", i, o.Key, err)
			}
		case shard.OpScan:
			single.Scan(o.Lo, o.Hi, 0, nil, nil)
			quiesce()
			if _, err := cl.Scan(ctx, o.Lo, o.Hi, 0); err != nil {
				t.Fatalf("op %d Scan[%q, %q): %v", i, o.Lo, o.Hi, err)
			}
		}
	}
	quiesce()

	for _, r := range shard.EquivRanges(seed, 10) {
		want := single.Scan(r[0], r[1], 0, nil, nil)
		got, err := cl.Scan(ctx, r[0], r[1], 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scan [%q, %q) diverged after warm restart:\nembedded %v\ncluster  %v", r[0], r[1], want, got)
		}
		wn := single.Count(r[0], r[1])
		gn, err := cl.Count(ctx, r[0], r[1])
		if err != nil || int64(wn) != gn {
			t.Fatalf("count [%q, %q) = %d vs %d (%v)", r[0], r[1], wn, gn, err)
		}
	}

	// The restart really was a recovery, not a lucky rebuild through the
	// mesh: the member's stat must report rows restored from disk.
	c, err := client.DialContext(ctx, addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.StatSnapshot(ctx)
	if err != nil || st.Durable == nil {
		t.Fatalf("restarted member durable stat = %+v, %v", st, err)
	}
	if st.Durable.Recovery == nil || st.Durable.Recovery.RestoredRows == 0 {
		t.Fatalf("restarted member recovery stats = %+v", st.Durable.Recovery)
	}
}

// TestWarmRestartedComputeOwnerColdComputes pins the close-order
// regression: Server.Close used to tear down the mesh and replica
// manager BEFORE persisting the final meta, so a cleanly-closed
// member's meta recorded HasMesh=false — and after a warm restart the
// member had no loader for its join source tables. A base-table owner
// (what the equivalence test restarts) never notices, but a restarted
// compute owner asked to materialize a timeline it had never computed
// would pull nothing and silently serve the empty range forever. So:
// restart the t|u5.. owner, then force a cold join computation on it
// and demand the rows, plus live maintenance for a post written after
// the restart.
func TestWarmRestartedComputeOwnerColdComputes(t *testing.T) {
	ctx := context.Background()
	dirs := make([]string, 4)
	addrs := make([]string, 4)
	kills := make([]func(), 4)
	for i := range addrs {
		dirs[i] = t.TempDir()
		addrs[i], kills[i] = startServerDir(t, fmt.Sprintf("cc%d", i), dirs[i])
	}
	cl := newCluster(t, Config{
		Addrs: addrs, Bounds: testBounds, Joins: shard.EquivJoins,
		Replicas:        2,
		CoordinatorName: "cold-compute-restart",
	})
	quiesce := func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			err := cl.Quiesce(ctx)
			if err == nil {
				return
			}
			if !errors.Is(err, perrs.ErrMemberDown) || time.Now().After(deadline) {
				t.Fatal(err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// u7 follows u3; u3 posts. The timeline t|u7|... lives on member 3
	// (≥ t|u5) and is deliberately never scanned before the restart, so
	// materializing it afterwards is a genuinely cold computation that
	// must pull s| and p| rows from member 1 through the rewired mesh.
	if err := cl.Put(ctx, "s|u7|u3", "1"); err != nil {
		t.Fatal(err)
	}
	quiesce()
	for i := 1; i <= 5; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("p|u3|%03d", i), fmt.Sprintf("tweet%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	quiesce()

	kills[3]()
	restartServerDir(t, "cc3b", addrs[3], dirs[3])
	// Let the peers' mesh and replica watchdogs (200ms cadence) retire
	// connections to the dead process and resync against the new one.
	time.Sleep(600 * time.Millisecond)
	quiesce()

	kvs, err := cl.Scan(ctx, "t|u7|", "t|u7}", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 5 {
		t.Fatalf("cold timeline on restarted compute owner: want 5 rows, got %d: %v", len(kvs), kvs)
	}

	// The materialized range must also be maintained: a post written
	// after the restart streams in through the re-established
	// subscriptions.
	if err := cl.Put(ctx, "p|u3|006", "tweet6"); err != nil {
		t.Fatal(err)
	}
	quiesce()
	if kvs, err = cl.Scan(ctx, "t|u7|", "t|u7}", 0); err != nil || len(kvs) != 6 {
		t.Fatalf("post after restart did not stream into the timeline: %d rows, %v", len(kvs), err)
	}
}

// TestClusterRestoreToNewAddress is the cross-address restore
// acceptance property: kill a durable member for good, re-key its
// lineage to a fresh address (durable.Rekey — what `pequod-cli restore
// -from` runs), start a new server over the re-keyed dir there, and
// publish the substitution with Admin.Restore. The cluster must end
// byte-equivalent to the embedded cache over every equivalence range —
// the restored rows really came from the dead member's disk, and the
// ops issued after the restore converge through the re-gated member
// like any other write.
func TestClusterRestoreToNewAddress(t *testing.T) {
	ctx := context.Background()
	seed := int64(5)
	nOps := 300
	if testing.Short() {
		nOps = 140
	}
	ops := shard.GenTwipOps(seed, nOps, 10)

	single, err := shard.New(shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(single.Close)
	if err := single.InstallText(shard.EquivJoins); err != nil {
		t.Fatal(err)
	}

	dirs := make([]string, 4)
	addrs := make([]string, 4)
	kills := make([]func(), 4)
	for i := range addrs {
		dirs[i] = t.TempDir()
		addrs[i], kills[i] = startServerDir(t, fmt.Sprintf("r%d", i), dirs[i])
	}
	cl := newCluster(t, Config{
		Addrs: addrs, Bounds: testBounds, Joins: shard.EquivJoins,
		Replicas:        2,
		CoordinatorName: "restore-equiv",
	})

	quiesce := func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			err := cl.Quiesce(ctx)
			if err == nil {
				return
			}
			if !errors.Is(err, perrs.ErrMemberDown) || time.Now().After(deadline) {
				t.Fatal(err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Kill the base-table owner (member 1) halfway through and bring its
	// lineage back on a brand-new address: reserve a port, re-key the
	// dir to it, start a server over the dir there, and Restore. The
	// graceful close flushed the log, so the lineage is complete — the
	// final scans prove the new address serves exactly what the old one
	// held plus everything written since.
	var newAddr string
	killAt := len(ops) / 2
	for i, o := range ops {
		if i == killAt {
			kills[1]()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			newAddr = ln.Addr().String()
			old, err := durable.Rekey(dirs[1], newAddr)
			if err != nil {
				t.Fatalf("rekey: %v", err)
			}
			if old != addrs[1] {
				t.Fatalf("rekey reported old address %s, want %s", old, addrs[1])
			}
			s, err := server.New(durableServerConfig("r1b", dirs[1]))
			if err != nil {
				t.Fatal(err)
			}
			go s.Serve(ln) //nolint:errcheck // exits when the test closes the server
			t.Cleanup(s.Close)
			if err := cl.Restore(ctx, addrs[1], newAddr); err != nil {
				t.Fatalf("restore: %v", err)
			}
			// Give the peers' watchdogs time to retire connections to
			// the dead process and resync against the restored one.
			time.Sleep(600 * time.Millisecond)
		}
		switch o.Kind {
		case shard.OpPut:
			single.Put(o.Key, o.Value)
			if err := cl.Put(ctx, o.Key, o.Value); err != nil {
				t.Fatalf("op %d Put(%q): %v", i, o.Key, err)
			}
		case shard.OpRemove:
			single.Remove(o.Key)
			if _, err := cl.Remove(ctx, o.Key); err != nil {
				t.Fatalf("op %d Remove(%q): %v", i, o.Key, err)
			}
		case shard.OpScan:
			single.Scan(o.Lo, o.Hi, 0, nil, nil)
			quiesce()
			if _, err := cl.Scan(ctx, o.Lo, o.Hi, 0); err != nil {
				t.Fatalf("op %d Scan[%q, %q): %v", i, o.Lo, o.Hi, err)
			}
		}
	}
	quiesce()

	// The map substituted the new address for the old one.
	members := cl.MemberAddrs()
	if contains(members, addrs[1]) || !contains(members, newAddr) {
		t.Fatalf("membership after restore = %v, want %s replaced by %s", members, addrs[1], newAddr)
	}

	for _, r := range shard.EquivRanges(seed, 10) {
		want := single.Scan(r[0], r[1], 0, nil, nil)
		got, err := cl.Scan(ctx, r[0], r[1], 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scan [%q, %q) diverged after restore:\nembedded %v\ncluster  %v", r[0], r[1], want, got)
		}
		wn := single.Count(r[0], r[1])
		gn, err := cl.Count(ctx, r[0], r[1])
		if err != nil || int64(wn) != gn {
			t.Fatalf("count [%q, %q) = %d vs %d (%v)", r[0], r[1], wn, gn, err)
		}
	}

	// The restore really served from disk, not a lucky mesh rebuild: the
	// member at the new address must report rows restored from the dead
	// member's lineage.
	c, err := client.DialContext(ctx, newAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.StatSnapshot(ctx)
	if err != nil || st.Durable == nil {
		t.Fatalf("restored member durable stat = %+v, %v", st, err)
	}
	if st.Durable.Recovery == nil || st.Durable.Recovery.RestoredRows == 0 {
		t.Fatalf("restored member recovery stats = %+v", st.Durable.Recovery)
	}
}

// TestDrainedMemberRestartStillBounces: a drained member's post-drain
// NotOwner courtesy must survive a process restart. The drain persists
// the final map (owning nothing) to the data dir; a restart recovers
// that gate, so a client still holding the old map gets bounced with
// the current bounds instead of silently written.
func TestDrainedMemberRestartStillBounces(t *testing.T) {
	ctx := context.Background()
	dirs := make([]string, 3)
	addrs := make([]string, 3)
	kills := make([]func(), 3)
	for i := range addrs {
		dirs[i] = t.TempDir()
		addrs[i], kills[i] = startServerDir(t, fmt.Sprintf("d%d", i), dirs[i])
	}
	cl := newCluster(t, Config{Addrs: addrs, Bounds: []string{"h", "q"}, CoordinatorName: "drain-durable"})
	for _, k := range []string{"a|1", "k|1", "z|1"} {
		if err := cl.Put(ctx, k, "v"); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.DrainServer(ctx, addrs[2]); err != nil {
		t.Fatal(err)
	}
	kills[2]()
	restartServerDir(t, "d2b", addrs[2], dirs[2])

	c, err := client.DialContext(ctx, addrs[2])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Put("z|2", "stale-route")
	var noe *client.NotOwnerError
	if !errors.As(err, &noe) {
		t.Fatalf("drained+restarted member answered a write: %v", err)
	}
	m := cl.Map()
	if noe.Epoch != m.Epoch() || !reflect.DeepEqual(noe.Bounds, m.Bounds()) {
		t.Fatalf("bounce carries stale map: e%d %v, cluster holds e%d %v", noe.Epoch, noe.Bounds, m.Epoch(), m.Bounds())
	}
	// And the row never landed anywhere.
	if _, found, _ := c.Get("z|2"); found {
		t.Fatal("drained member stored the bounced write")
	}
}

// TestRepairRespreadsReplicas: after an automatic repair promotes an
// heir, the repaired ranges changed homes, so their replica copies
// must land on new members — via the repair's own republish retry and
// the monitor's healthy-tick anti-entropy. The cluster must converge
// back to full placement (every range replicated off its home), not
// stay a copy short until the next manual map event.
func TestRepairRespreadsReplicas(t *testing.T) {
	ctx := context.Background()
	addrs := make([]string, 4)
	kills := make([]func(), 4)
	for i := range addrs {
		addrs[i], kills[i] = startServer(t, fmt.Sprintf("rs%d", i))
	}
	cl := newCluster(t, Config{
		Addrs: addrs, Bounds: testBounds,
		Replicas:         2,
		FailoverInterval: 20 * time.Millisecond,
		FailoverMisses:   2,
		CoordinatorName:  "respread",
	})
	for i, k := range []string{"a|1", "p|u1|1", "t|u2|1", "t|u7|1"} {
		if err := cl.Put(ctx, k, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	heldReplicas := func() int {
		n := 0
		for _, h := range cl.Health(ctx) {
			n += h.Replicas
		}
		return n
	}
	// Full placement first: four ranges, each with one synced copy off
	// its home.
	deadline := time.Now().Add(10 * time.Second)
	for heldReplicas() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("initial replica spread never completed: held = %d", heldReplicas())
		}
		time.Sleep(10 * time.Millisecond)
	}

	kills[1]()
	deadline = time.Now().Add(10 * time.Second)
	for {
		left := cl.MemberAddrs()
		if len(left) == 3 && !contains(left, addrs[1]) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("automatic repair never removed the dead member: members = %v", left)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The repaired range lost both its home and (ring-wise) its old
	// copy; the survivors must re-spread to four synced copies again —
	// one per owner index, each off its (possibly promoted) home.
	deadline = time.Now().Add(15 * time.Second)
	for {
		if err := cl.Quiesce(ctx); err == nil && heldReplicas() == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never re-spread after repair: held = %d", heldReplicas())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
