package cluster

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/server"
	"pequod/internal/shard"
)

// testBounds mirror the shard package's equivalence bounds: base tables
// split away from the computed timelines, and the timeline table split
// down the middle, so joins always straddle members.
var testBounds = []string{"p|", "t|", "t|u5"}

// startServers launches n single-shard servers and returns their
// addresses. With PEQUOD_TEST_DATADIR set each server persists to its
// own temp dir, re-running the whole suite with durability on (and,
// with PEQUOD_TEST_SCRUB also set, with the lineage scrub and
// compaction loops racing the workload — see durableServerConfig).
func startServers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := server.Config{Name: fmt.Sprintf("m%d", i), DataDir: testDataDir(t)}
		if cfg.DataDir != "" {
			cfg = durableServerConfig(cfg.Name, cfg.DataDir)
		}
		s, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := s.Start()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		addrs[i] = addr
	}
	return addrs
}

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestRoutingAndPointOps(t *testing.T) {
	ctx := context.Background()
	addrs := startServers(t, 4)
	cl := newCluster(t, Config{Addrs: addrs, Bounds: testBounds})
	if cl.Members() != 4 {
		t.Fatalf("Members = %d", cl.Members())
	}
	for i, key := range []string{"a|1", "p|u1|9", "t|u2|5", "t|u7|5"} {
		if err := cl.Put(ctx, key, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, key := range []string{"a|1", "p|u1|9", "t|u2|5", "t|u7|5"} {
		v, found, err := cl.Get(ctx, key)
		if err != nil || !found || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%q) = %q %v %v", key, v, found, err)
		}
		// The key landed on exactly its owning member.
		c, err := cl.conn(ctx, cl.v.Load().addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.Stats(ctx)
		if err != nil || st.Puts != 1 {
			t.Fatalf("member %d puts = %d (%v)", i, st.Puts, err)
		}
	}
	found, err := cl.Remove(ctx, "t|u7|5")
	if err != nil || !found {
		t.Fatalf("Remove = %v %v", found, err)
	}
	if n, err := cl.Count(ctx, "", ""); err != nil || n != 3 {
		t.Fatalf("Count = %d %v", n, err)
	}
	kvs, err := cl.Scan(ctx, "", "", 0)
	if err != nil || len(kvs) != 3 {
		t.Fatalf("Scan = %v %v", kvs, err)
	}
	if kvs, err = cl.Scan(ctx, "", "", 2); err != nil || len(kvs) != 2 {
		t.Fatalf("limited Scan = %v %v", kvs, err)
	}
}

func TestBatches(t *testing.T) {
	ctx := context.Background()
	addrs := startServers(t, 4)
	cl := newCluster(t, Config{Addrs: addrs, Bounds: testBounds})
	var pairs []core.KV
	for i := 0; i < 40; i++ {
		pairs = append(pairs, core.KV{Key: fmt.Sprintf("t|u%d|%02d", i%10, i), Value: fmt.Sprintf("v%d", i)})
	}
	if err := cl.PutBatch(ctx, pairs); err != nil {
		t.Fatal(err)
	}
	gets := []string{"t|u0|00", "t|u9|39", "t|u4|nope"}
	ls, err := cl.GetBatch(ctx, gets)
	if err != nil {
		t.Fatal(err)
	}
	if !ls[0].Found || ls[0].Value != "v0" || !ls[1].Found || ls[1].Value != "v39" || ls[2].Found {
		t.Fatalf("GetBatch = %+v", ls)
	}
	scans, err := cl.ScanBatch(ctx, []keys.Range{
		{Lo: "t|u0|", Hi: "t|u0}"},
		{Lo: "t|u9|", Hi: "t|u9}"},
		{Lo: "nope|", Hi: "nope}"},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scans[0]) != 4 || len(scans[1]) != 4 || len(scans[2]) != 0 {
		t.Fatalf("ScanBatch sizes = %d %d %d", len(scans[0]), len(scans[1]), len(scans[2]))
	}
}

// TestJoinFreshnessAcrossMembers is the §2.4 story end to end: sources
// live on one member, computed timelines on others; reads anywhere see
// writes anywhere once quiesced.
func TestJoinFreshnessAcrossMembers(t *testing.T) {
	ctx := context.Background()
	addrs := startServers(t, 4)
	cl := newCluster(t, Config{Addrs: addrs, Bounds: testBounds, Joins: shard.EquivJoins})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(cl.Put(ctx, "s|u2|u8", "1"))
	must(cl.Put(ctx, "s|u7|u8", "1"))
	must(cl.Put(ctx, "p|u8|100", "Hi"))
	must(cl.Quiesce(ctx))
	// u2's timeline is on member 2, u7's on member 3; both computed from
	// member 1's base data.
	for _, u := range []string{"u2", "u7"} {
		kvs, err := cl.Scan(ctx, "t|"+u+"|", "t|"+u+"}", 0)
		must(err)
		if len(kvs) != 1 || kvs[0].Key != "t|"+u+"|100|u8" || kvs[0].Value != "Hi" {
			t.Fatalf("timeline %s = %v", u, kvs)
		}
	}
	// Incremental maintenance across members: a new post at its home
	// reaches both materialized timelines through the subscriptions.
	must(cl.Put(ctx, "p|u8|150", "again"))
	must(cl.Quiesce(ctx))
	for _, u := range []string{"u2", "u7"} {
		if v, ok, err := cl.Get(ctx, "t|"+u+"|150|u8"); err != nil || !ok || v != "again" {
			t.Fatalf("timeline %s missed the new post: %q %v %v", u, v, ok, err)
		}
	}
	// Removal propagates too.
	if _, err := cl.Remove(ctx, "p|u8|100"); err != nil {
		t.Fatal(err)
	}
	must(cl.Quiesce(ctx))
	if _, ok, _ := cl.Get(ctx, "t|u2|100|u8"); ok {
		t.Fatal("removed post still on timeline")
	}
	// The cascade: archives copy timelines across member boundaries.
	kvs, err := cl.Scan(ctx, "z|u2|", "z|u2}", 0)
	must(err)
	if len(kvs) != 1 || kvs[0].Key != "z|u2|150|u8" {
		t.Fatalf("archive = %v", kvs)
	}
}

// TestClusterEqualsEmbeddedCache is the equivalence property the issue
// asks for: a Cluster over N single-shard servers returns byte-identical
// Scan/Count results to one embedded cache (a single-engine shard.Pool)
// under the randomized Twip workload, including interleaved reads that
// materialize joins at varied moments.
func TestClusterEqualsEmbeddedCache(t *testing.T) {
	nSeeds := int64(3)
	nOps := 300
	if testing.Short() {
		nSeeds, nOps = 1, 120
	}
	for seed := int64(1); seed <= nSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ctx := context.Background()
			ops := shard.GenTwipOps(seed, nOps, 10)

			single, err := shard.New(shard.Config{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(single.Close)
			if err := single.InstallText(shard.EquivJoins); err != nil {
				t.Fatal(err)
			}

			addrs := startServers(t, 4)
			cl := newCluster(t, Config{Addrs: addrs, Bounds: testBounds, Joins: shard.EquivJoins})

			for _, o := range ops {
				switch o.Kind {
				case shard.OpPut:
					single.Put(o.Key, o.Value)
					if err := cl.Put(ctx, o.Key, o.Value); err != nil {
						t.Fatal(err)
					}
				case shard.OpRemove:
					single.Remove(o.Key)
					if _, err := cl.Remove(ctx, o.Key); err != nil {
						t.Fatal(err)
					}
				case shard.OpScan:
					single.Scan(o.Lo, o.Hi, 0, nil, nil)
					if err := cl.Quiesce(ctx); err != nil {
						t.Fatal(err)
					}
					if _, err := cl.Scan(ctx, o.Lo, o.Hi, 0); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := cl.Quiesce(ctx); err != nil {
				t.Fatal(err)
			}

			for _, r := range shard.EquivRanges(seed, 10) {
				want := single.Scan(r[0], r[1], 0, nil, nil)
				got, err := cl.Scan(ctx, r[0], r[1], 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("scan [%q, %q) diverged:\nembedded %v\ncluster  %v", r[0], r[1], want, got)
				}
				wn := single.Count(r[0], r[1])
				gn, err := cl.Count(ctx, r[0], r[1])
				if err != nil || int64(wn) != gn {
					t.Fatalf("count [%q, %q) = %d vs %d (%v)", r[0], r[1], wn, gn, err)
				}
			}
		})
	}
}

// TestSharedMembers exercises one server owning several partition
// ranges (the distributed example's shape: two servers, four ranges).
func TestSharedMembers(t *testing.T) {
	ctx := context.Background()
	two := startServers(t, 2)
	addrs := []string{two[0], two[1], two[0], two[1]}
	cl := newCluster(t, Config{Addrs: addrs, Bounds: testBounds, Joins: shard.EquivJoins})
	if cl.Members() != 2 {
		t.Fatalf("Members = %d", cl.Members())
	}
	if err := cl.Put(ctx, "s|u2|u8", "1"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(ctx, "p|u8|100", "Hi"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	kvs, err := cl.Scan(ctx, "t|u2|", "t|u2}", 0)
	if err != nil || len(kvs) != 1 || kvs[0].Key != "t|u2|100|u8" {
		t.Fatalf("timeline = %v %v", kvs, err)
	}
}

func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := New(ctx, Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(ctx, Config{Addrs: []string{"a", "b"}, Bounds: nil}); err == nil {
		t.Fatal("addr/bound mismatch accepted")
	}
	if _, err := New(ctx, Config{Addrs: []string{"a", "b"}, Bounds: []string{"b", "a"}}); err == nil {
		t.Fatal("unsorted bounds accepted")
	}
}

// TestCancellation: a canceled cluster call fails fast and the
// connections stay usable.
func TestCancellation(t *testing.T) {
	addrs := startServers(t, 2)
	cl := newCluster(t, Config{Addrs: addrs, Bounds: []string{"m"}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cl.Put(ctx, "a", "v"); err == nil {
		t.Fatal("canceled Put succeeded")
	}
	if _, err := cl.Scan(ctx, "", "", 0); err == nil {
		t.Fatal("canceled Scan succeeded")
	}
	ok := context.Background()
	if err := cl.Put(ok, "a", "v"); err != nil {
		t.Fatalf("connection unusable after cancellation: %v", err)
	}
	if v, found, err := cl.Get(ok, "a"); err != nil || !found || v != "v" {
		t.Fatalf("Get after cancellation = %q %v %v", v, found, err)
	}
}
