package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/perrs"
	"pequod/internal/server"
	"pequod/internal/shard"
)

// TestMoveBoundMovesData: base rows migrate between servers and every
// access path keeps working — through the coordinating client, and
// through a second, stale client that must learn the new map from
// NotOwner replies.
func TestMoveBoundMovesData(t *testing.T) {
	ctx := context.Background()
	addrs := startServers(t, 4)
	cl := newCluster(t, Config{Addrs: addrs, Bounds: testBounds})

	// Rows on both sides of bound 2 ("t|u5", dividing members 2 and 3).
	var want []core.KV
	for i := 0; i < 10; i++ {
		kv := core.KV{Key: fmt.Sprintf("t|u%d|0", i), Value: fmt.Sprintf("v%d", i)}
		want = append(want, kv)
		if err := cl.Put(ctx, kv.Key, kv.Value); err != nil {
			t.Fatal(err)
		}
	}
	// A stale observer that never hears about the move directly.
	stale := newCluster(t, Config{Addrs: addrs, Bounds: testBounds})

	// Move [t|u3, t|u5) from member 2 to member 3.
	if err := cl.MoveBound(ctx, 2, "t|u3"); err != nil {
		t.Fatal(err)
	}
	if v := cl.Map().Version(); v != 1 {
		t.Fatalf("map version = %d, want 1", v)
	}
	// All rows still visible, exactly once, through the coordinator.
	kvs, err := cl.Scan(ctx, "t|", "t}", 0)
	if err != nil || !reflect.DeepEqual(kvs, want) {
		t.Fatalf("post-move scan = %v (%v), want %v", kvs, err, want)
	}
	// Point reads and writes land at the new owner.
	if v, ok, err := cl.Get(ctx, "t|u4|0"); err != nil || !ok || v != "v4" {
		t.Fatalf("Get moved key = %q %v %v", v, ok, err)
	}
	if err := cl.Put(ctx, "t|u4|1", "post-move"); err != nil {
		t.Fatal(err)
	}

	// The stale client re-routes via NotOwner: its map is still v0, so
	// its first touch of the moved range bounces off member 2, adopts
	// the v1 map, and retries at member 3.
	if v, ok, err := stale.Get(ctx, "t|u4|1"); err != nil || !ok || v != "post-move" {
		t.Fatalf("stale Get = %q %v %v", v, ok, err)
	}
	if got := stale.Map().Version(); got != 1 {
		t.Fatalf("stale client adopted version %d, want 1", got)
	}
	if err := stale.Put(ctx, "t|u3|9", "stale-write"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get(ctx, "t|u3|9"); err != nil || !ok || v != "stale-write" {
		t.Fatalf("stale write lost: %q %v %v", v, ok, err)
	}

	// A direct (cluster-unaware) write to the old owner is refused, not
	// silently dropped.
	raw, err := client.Dial(addrs[2])
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	err = raw.Put("t|u4|raw", "lost?")
	var noe *client.NotOwnerError
	if !errors.As(err, &noe) || noe.Version != 1 {
		t.Fatalf("direct write to old owner: err = %v, want NotOwnerError v1", err)
	}

	// Move the range back; everything still whole.
	if err := cl.MoveBound(ctx, 2, "t|u5"); err != nil {
		t.Fatal(err)
	}
	n, err := cl.Count(ctx, "t|", "t}")
	if err != nil || n != 12 {
		t.Fatalf("post-return count = %d (%v), want 12", n, err)
	}
}

// TestMoveBoundSameMember: a bound between two ranges served by the
// same member needs no transfer, only a map version bump everywhere.
func TestMoveBoundSameMember(t *testing.T) {
	ctx := context.Background()
	one := startServers(t, 1)
	same := newCluster(t, Config{Addrs: []string{one[0], one[0]}, Bounds: []string{"m"}})
	if err := same.Put(ctx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := same.MoveBound(ctx, 0, "n"); err != nil {
		t.Fatal(err)
	}
	if v := same.Map().Version(); v != 1 {
		t.Fatalf("version = %d", v)
	}
	if v, ok, err := same.Get(ctx, "a"); err != nil || !ok || v != "1" {
		t.Fatalf("Get after same-member move = %q %v %v", v, ok, err)
	}
}

// TestClusterEqualsEmbeddedUnderMigration is the PR's gate: the
// randomized Twip workload against a cluster of four servers — with
// live server-to-server migrations forced mid-workload, moving both
// computed timeline ranges and base source ranges — returns
// byte-identical scans to a single embedded engine.
func TestClusterEqualsEmbeddedUnderMigration(t *testing.T) {
	nSeeds := int64(3)
	nOps := 300
	if testing.Short() {
		nSeeds, nOps = 1, 120
	}
	// Each entry is one forced move: bound index and its new split
	// point. Bound 2 shuffles computed timelines between members 2 and
	// 3; bound 0 shuffles the p| source table between members 0 and 1,
	// exercising presence drops, re-loads, and re-subscription.
	moves := [][2]interface{}{
		{2, "t|u3"},
		{0, "p|u4|"},
		{2, "t|u7"},
		{0, "p|"},
		{2, "t|u5"},
	}
	for seed := int64(1); seed <= nSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ctx := context.Background()
			ops := shard.GenTwipOps(seed, nOps, 10)

			single, err := shard.New(shard.Config{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(single.Close)
			if err := single.InstallText(shard.EquivJoins); err != nil {
				t.Fatal(err)
			}

			addrs := startServers(t, 4)
			cl := newCluster(t, Config{Addrs: addrs, Bounds: testBounds, Joins: shard.EquivJoins})

			moveEvery := len(ops)/len(moves) + 1
			next := 0
			for i, o := range ops {
				if i > 0 && i%moveEvery == 0 && next < len(moves) {
					mv := moves[next]
					next++
					if err := cl.MoveBound(ctx, mv[0].(int), mv[1].(string)); err != nil {
						t.Fatalf("move %d: %v", next, err)
					}
				}
				switch o.Kind {
				case shard.OpPut:
					single.Put(o.Key, o.Value)
					if err := cl.Put(ctx, o.Key, o.Value); err != nil {
						t.Fatal(err)
					}
				case shard.OpRemove:
					single.Remove(o.Key)
					if _, err := cl.Remove(ctx, o.Key); err != nil {
						t.Fatal(err)
					}
				case shard.OpScan:
					single.Scan(o.Lo, o.Hi, 0, nil, nil)
					if err := cl.Quiesce(ctx); err != nil {
						t.Fatal(err)
					}
					if _, err := cl.Scan(ctx, o.Lo, o.Hi, 0); err != nil {
						t.Fatal(err)
					}
				}
			}
			for next < len(moves) {
				mv := moves[next]
				next++
				if err := cl.MoveBound(ctx, mv[0].(int), mv[1].(string)); err != nil {
					t.Fatalf("trailing move %d: %v", next, err)
				}
			}
			if err := cl.Quiesce(ctx); err != nil {
				t.Fatal(err)
			}

			for _, r := range shard.EquivRanges(seed, 10) {
				want := single.Scan(r[0], r[1], 0, nil, nil)
				got, err := cl.Scan(ctx, r[0], r[1], 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("scan [%q, %q) diverged after migrations:\nembedded %v\ncluster  %v", r[0], r[1], want, got)
				}
			}
		})
	}
}

// TestClusterRebalancerCoolsHotServer: with every real key crammed onto
// one member, skewed reads pin that server; rebalance ticks must move
// ranges to its neighbor and spread the served load, without losing a
// row.
func TestClusterRebalancerCoolsHotServer(t *testing.T) {
	ctx := context.Background()
	addrs := startServers(t, 2)
	// Everything real lives above "b|": member 1 serves it all.
	cl := newCluster(t, Config{Addrs: addrs, Bounds: []string{"b|"}})
	const rows = 400
	var pairs []core.KV
	for i := 0; i < rows; i++ {
		pairs = append(pairs, core.KV{Key: fmt.Sprintf("e|k%04d", i), Value: "v"})
	}
	if err := cl.PutBatch(ctx, pairs); err != nil {
		t.Fatal(err)
	}
	cl.SetRebalanceConfig(Rebalance{Interval: time.Millisecond, Ratio: 1.2, MinOps: 32, HalfLife: 0.7})

	drive := func() {
		var ks []string
		for i := 0; i < rows; i++ {
			ks = append(ks, fmt.Sprintf("e|k%04d", i))
		}
		if _, err := cl.GetBatch(ctx, ks); err != nil {
			t.Fatal(err)
		}
	}
	moved := 0
	for tick := 0; tick < 40 && moved == 0; tick++ {
		drive()
		ok, err := cl.RebalanceTick(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("rebalancer never migrated a range off the hot server")
	}
	st := cl.RebalancerStats()
	if st.Migrations == 0 || st.Version == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Both members now serve part of the load.
	before, err := cl.MemberLoads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	drive()
	after, err := cl.MemberLoads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range after {
		if after[i].Units <= before[i].Units {
			t.Fatalf("member %d served nothing after rebalance (units %d -> %d)",
				i, before[i].Units, after[i].Units)
		}
	}
	// No rows were lost in the moves.
	if n, err := cl.Count(ctx, "e|", "e}"); err != nil || n != rows {
		t.Fatalf("count after rebalance = %d (%v), want %d", n, err, rows)
	}
}

// TestClusterMigrationUnderTraffic hammers concurrent readers and
// writers through repeated server-to-server migrations (run with -race
// in CI): every acknowledged write must be immediately readable, and
// the final state must be complete.
func TestClusterMigrationUnderTraffic(t *testing.T) {
	ctx := context.Background()
	addrs := startServers(t, 2)
	cl := newCluster(t, Config{Addrs: addrs, Bounds: []string{"k|m"}})

	const workers = 4
	const perWorker = 120
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			wcl, err := New(ctx, Config{Addrs: addrs, Bounds: []string{"k|m"}})
			if err != nil {
				errs <- err
				return
			}
			defer wcl.Close()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("k|%c%03d", 'a'+byte((w+i)%26), i)
				if err := wcl.Put(ctx, key, fmt.Sprintf("w%d-%d", w, i)); err != nil {
					errs <- fmt.Errorf("put %s: %w", key, err)
					return
				}
				if v, ok, err := wcl.Get(ctx, key); err != nil || !ok || v != fmt.Sprintf("w%d-%d", w, i) {
					errs <- fmt.Errorf("read-own-write %s = %q %v %v", key, v, ok, err)
					return
				}
				if i%20 == 0 {
					if _, err := wcl.Scan(ctx, "k|", "k}", 0); err != nil {
						errs <- fmt.Errorf("scan: %w", err)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	bounds := []string{"k|f", "k|t", "k|c", "k|m"}
	for i := 0; ; i++ {
		if err := cl.MoveBound(ctx, 0, bounds[i%len(bounds)]); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
			for w := 1; w < workers; w++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
			if n, err := cl.Count(ctx, "k|", "k}"); err != nil || n == 0 {
				t.Fatalf("final count = %d (%v)", n, err)
			}
			return
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestClusterStatsPartialAggregation: a dead member's stats failure
// must not zero the aggregate — the live members' counters come back
// alongside the error.
func TestClusterStatsPartialAggregation(t *testing.T) {
	ctx := context.Background()
	addrs := make([]string, 2)
	var dead func()
	for i := 0; i < 2; i++ {
		s, err := server.New(server.Config{Name: fmt.Sprintf("m%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := s.Start()
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		if i == 1 {
			dead = s.Close
		} else {
			t.Cleanup(s.Close)
		}
	}
	cl := newCluster(t, Config{Addrs: addrs, Bounds: []string{"m"}})
	if err := cl.Put(ctx, "a", "1"); err != nil { // member 0
		t.Fatal(err)
	}
	if err := cl.Put(ctx, "z", "2"); err != nil { // member 1
		t.Fatal(err)
	}
	st, err := cl.Stats(ctx)
	if err != nil || st.Puts != 2 {
		t.Fatalf("healthy Stats = %+v, %v", st, err)
	}
	dead() // kill member 1
	st, err = cl.Stats(ctx)
	if err == nil {
		t.Fatal("Stats with a dead member reported no error")
	}
	if !strings.Contains(err.Error(), addrs[1]) {
		t.Fatalf("error does not name the dead member: %v", err)
	}
	if !errors.Is(err, perrs.ErrMemberDown) {
		t.Fatalf("dead-member error is not ErrMemberDown: %v", err)
	}
	if st.Puts != 1 {
		t.Fatalf("partial aggregate lost the live member: %+v", st)
	}
}
