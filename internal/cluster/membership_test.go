package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/perrs"
	"pequod/internal/server"
	"pequod/internal/shard"
)

// startServer launches one single-shard server and returns its address
// and a kill function (for failure-injection tests; graceful cleanups
// still run via t.Cleanup). With PEQUOD_TEST_DATADIR set the server
// persists to a temp dir, re-running the suite with durability on.
func startServer(t *testing.T, name string) (string, func()) {
	t.Helper()
	s, err := server.New(server.Config{Name: name, DataDir: testDataDir(t)})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return addr, s.Close
}

// TestAddServerGrowsMap: a fresh server joins live, takes the upper
// half of a member's range, serves reads and writes there, and
// participates in the join mesh.
func TestAddServerGrowsMap(t *testing.T) {
	ctx := context.Background()
	addrs := startServers(t, 2)
	cl := newCluster(t, Config{Addrs: addrs, Bounds: []string{"m"}, Joins: shard.EquivJoins})
	var want []core.KV
	for i := 0; i < 20; i++ {
		kv := core.KV{Key: fmt.Sprintf("x|k%02d", i), Value: fmt.Sprintf("v%d", i)}
		want = append(want, kv)
		if err := cl.Put(ctx, kv.Key, kv.Value); err != nil {
			t.Fatal(err)
		}
	}
	fresh, _ := startServer(t, "joiner")
	// Explicit grant: split member 1's range [m, +inf) at x|k10.
	if err := cl.AddServerAt(ctx, fresh, 1, "x|k10"); err != nil {
		t.Fatal(err)
	}
	if cl.Members() != 3 {
		t.Fatalf("Members = %d after join", cl.Members())
	}
	m := cl.Map()
	if m.Servers() != 3 || m.Version() == 0 || m.Epoch() == 0 {
		t.Fatalf("grown map = %d servers, e%d v%d", m.Servers(), m.Epoch(), m.Version())
	}
	// All rows still visible, exactly once, and the new member serves
	// the granted slice.
	kvs, err := cl.Scan(ctx, "x|", "x}", 0)
	if err != nil || !reflect.DeepEqual(kvs, want) {
		t.Fatalf("post-join scan = %v (%v)", kvs, err)
	}
	raw, err := client.Dial(fresh)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if v, found, err := raw.Get("x|k15"); err != nil || !found || v != "v15" {
		t.Fatalf("new member does not serve its slice: %q %v %v", v, found, err)
	}
	// ...and bounces keys outside it with the grown map.
	var noe *client.NotOwnerError
	if err := raw.Put("x|k05", "nope"); !errors.As(err, &noe) {
		t.Fatalf("new member accepted a key outside its slice: %v", err)
	}
	// Writes route to the new member; joins still compute everywhere.
	if err := cl.Put(ctx, "x|k21", "fresh"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get(ctx, "x|k21"); err != nil || !ok || v != "fresh" {
		t.Fatalf("Get after join = %q %v %v", v, ok, err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(cl.Put(ctx, "s|u2|u8", "1"))
	must(cl.Put(ctx, "p|u8|100", "Hi"))
	must(cl.Quiesce(ctx))
	tl, err := cl.Scan(ctx, "t|u2|", "t|u2}", 0)
	must(err)
	if len(tl) != 1 || tl[0].Key != "t|u2|100|u8" {
		t.Fatalf("timeline after join = %v", tl)
	}
}

// TestAddServerAutoPick: AddServer without an explicit bound places the
// new member where the load is.
func TestAddServerAutoPick(t *testing.T) {
	ctx := context.Background()
	addrs := startServers(t, 2)
	cl := newCluster(t, Config{Addrs: addrs, Bounds: []string{"e|k0100"}})
	var pairs []core.KV
	for i := 0; i < 300; i++ {
		pairs = append(pairs, core.KV{Key: fmt.Sprintf("e|k%04d", i), Value: "v"})
	}
	if err := cl.PutBatch(ctx, pairs); err != nil {
		t.Fatal(err)
	}
	// Drive reads so the busiest member accumulates samples.
	var ks []string
	for i := 100; i < 300; i++ {
		ks = append(ks, fmt.Sprintf("e|k%04d", i))
	}
	for pass := 0; pass < 3; pass++ {
		if _, err := cl.GetBatch(ctx, ks); err != nil {
			t.Fatal(err)
		}
	}
	fresh, _ := startServer(t, "auto-joiner")
	if err := cl.AddServer(ctx, fresh); err != nil {
		t.Fatal(err)
	}
	if cl.Members() != 3 {
		t.Fatalf("Members = %d", cl.Members())
	}
	if cl.v.Load().ownersOf(fresh) == nil {
		t.Fatal("joined member owns nothing")
	}
	if n, err := cl.Count(ctx, "e|", "e}"); err != nil || n != 300 {
		t.Fatalf("count after auto join = %d (%v)", n, err)
	}
	// Joining the same address twice is refused.
	if err := cl.AddServer(ctx, fresh); err == nil {
		t.Fatal("double join accepted")
	}
}

// TestDrainServerStreamsRanges: draining a member moves every range it
// owns to neighbors, the map shrinks, data survives byte-identical, and
// the drained server answers NotOwner with the post-drain map.
func TestDrainServerStreamsRanges(t *testing.T) {
	ctx := context.Background()
	addrs := startServers(t, 4)
	cl := newCluster(t, Config{Addrs: addrs, Bounds: testBounds, Joins: shard.EquivJoins})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(cl.Put(ctx, "s|u2|u8", "1"))
	must(cl.Put(ctx, "s|u7|u8", "1"))
	must(cl.Put(ctx, "p|u8|100", "Hi"))
	must(cl.Quiesce(ctx))
	want, err := cl.Scan(ctx, "", "", 0)
	must(err)
	if len(want) == 0 {
		t.Fatal("no data to drain")
	}

	// Drain member 2 — it owns the computed timelines [t|, t|u5).
	must(cl.DrainServer(ctx, addrs[2]))
	if cl.Members() != 3 {
		t.Fatalf("Members = %d after drain", cl.Members())
	}
	if got := cl.Map().Servers(); got != 3 {
		t.Fatalf("map has %d owners after drain", got)
	}
	got, err := cl.Scan(ctx, "", "", 0)
	must(err)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-drain scan diverged:\nbefore %v\nafter  %v", want, got)
	}
	// The drained server refuses ownership with the post-drain map.
	raw, err := client.Dial(addrs[2])
	must(err)
	defer raw.Close()
	var noe *client.NotOwnerError
	if err := raw.Put("t|u2|zzz", "stale"); !errors.As(err, &noe) {
		t.Fatalf("drained member accepted a write: %v", err)
	}
	if noe.Version != cl.Map().Version() || noe.Epoch != cl.Map().Epoch() {
		t.Fatalf("drained member's map = e%d v%d, cluster at e%d v%d",
			noe.Epoch, noe.Version, cl.Map().Epoch(), cl.Map().Version())
	}
	// Incremental maintenance still flows to the timelines' new home.
	must(cl.Put(ctx, "p|u8|150", "again"))
	must(cl.Quiesce(ctx))
	if v, ok, err := cl.Get(ctx, "t|u2|150|u8"); err != nil || !ok || v != "again" {
		t.Fatalf("timeline missed a post after drain: %q %v %v", v, ok, err)
	}
	want, err = cl.Scan(ctx, "", "", 0) // the new post is in the expectation now
	must(err)
	// Draining everything but one member works; draining the last is
	// refused.
	must(cl.DrainServer(ctx, addrs[3]))
	must(cl.DrainServer(ctx, addrs[0]))
	if cl.Members() != 1 {
		t.Fatalf("Members = %d", cl.Members())
	}
	if err := cl.DrainServer(ctx, addrs[1]); err == nil {
		t.Fatal("drained the last member")
	}
	got, err = cl.Scan(ctx, "", "", 0)
	must(err)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scan diverged after draining to one member:\nbefore %v\nafter  %v", want, got)
	}
}

// TestStaleClientDuringDrain: a client that never hears about a drain
// keeps working — its first write into the drained range bounces with
// NotOwner carrying the post-drain map, it adopts (including the
// changed member set) and retries successfully.
func TestStaleClientDuringDrain(t *testing.T) {
	ctx := context.Background()
	addrs := startServers(t, 3)
	cl := newCluster(t, Config{Addrs: addrs, Bounds: []string{"h", "q"}})
	if err := cl.Put(ctx, "k1", "v1"); err != nil {
		t.Fatal(err)
	}
	stale := newCluster(t, Config{Addrs: addrs, Bounds: []string{"h", "q"}})

	if err := cl.DrainServer(ctx, addrs[1]); err != nil {
		t.Fatal(err)
	}
	// addrs[1] owned [h, q); the stale client still routes "k1" there.
	if err := stale.Put(ctx, "k1", "v2"); err != nil {
		t.Fatalf("stale write during drain failed: %v", err)
	}
	if got := stale.Map().Servers(); got != 2 {
		t.Fatalf("stale client adopted %d owners, want 2", got)
	}
	if stale.Members() != 2 {
		t.Fatalf("stale client sees %d members", stale.Members())
	}
	if v, ok, err := cl.Get(ctx, "k1"); err != nil || !ok || v != "v2" {
		t.Fatalf("stale write lost: %q %v %v", v, ok, err)
	}
}

// TestDrainReoffersWhenNeighborDies: the destination neighbor dying
// between extract and splice must not strand the range — it re-offers
// to the other neighbor, and every row survives.
func TestDrainReoffersWhenNeighborDies(t *testing.T) {
	ctx := context.Background()
	addrA, _ := startServer(t, "a")
	addrB, _ := startServer(t, "b")
	addrC, killC := startServer(t, "c")
	cl := newCluster(t, Config{Addrs: []string{addrA, addrB, addrC}, Bounds: []string{"h", "q"}})
	var want []core.KV
	for i := 0; i < 12; i++ {
		kv := core.KV{Key: fmt.Sprintf("%c%02d", 'a'+byte(i%26), i), Value: fmt.Sprintf("v%d", i)}
		want = append(want, kv)
		if err := cl.Put(ctx, kv.Key, kv.Value); err != nil {
			t.Fatal(err)
		}
	}
	// Kill C, then drain B: the drain first offers B's range [h, q) to
	// its right neighbor C (dead), must fall back to A.
	killC()
	err := cl.DrainServer(ctx, addrB)
	// The drain itself may report the unreachable member (the final
	// publish cannot reach C), but B must be out of the map and no row
	// may be lost.
	if err != nil && !strings.Contains(err.Error(), addrC) {
		t.Fatalf("drain failed for an unexpected reason: %v", err)
	}
	if owners := cl.v.Load().ownersOf(addrB); owners != nil {
		t.Fatalf("drained member still owns %v", owners)
	}
	// Every row is still served (C's range is gone with C, but the test
	// data lives in [a, h) and [h, q), now on A).
	for _, kv := range want {
		if cl.v.Load().ownerAddr(kv.Key) == addrC {
			continue
		}
		v, ok, err := cl.Get(ctx, kv.Key)
		if err != nil || !ok || v != kv.Value {
			t.Fatalf("row %s lost in re-offered drain: %q %v %v", kv.Key, v, ok, err)
		}
	}
	// The re-offered range landed on A.
	raw, err := client.Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if v, found, err := raw.Get("h07"); err != nil || !found || v != "v7" {
		t.Fatalf("A does not serve the re-offered range: %q %v %v", v, found, err)
	}
}

// TestDrainRevertsWhenNeighborPermanentlyDead: when the draining
// member's only neighbor is dead (so there is nobody to re-offer to),
// the drain must revert — the member stays in the map, keeps serving
// every row, and the failure is matchable as ErrMemberDown.
func TestDrainRevertsWhenNeighborPermanentlyDead(t *testing.T) {
	ctx := context.Background()
	addrA, _ := startServer(t, "a")
	addrB, killB := startServer(t, "b")
	cl := newCluster(t, Config{Addrs: []string{addrA, addrB}, Bounds: []string{"m"}})
	var want []core.KV
	for i := 0; i < 10; i++ {
		kv := core.KV{Key: fmt.Sprintf("c%02d", i), Value: fmt.Sprintf("v%d", i)}
		want = append(want, kv)
		if err := cl.Put(ctx, kv.Key, kv.Value); err != nil {
			t.Fatal(err)
		}
	}
	killB() // B never comes back: every offer of A's range must fail
	err := cl.DrainServer(ctx, addrA)
	if err == nil {
		t.Fatal("draining with a permanently dead neighbor reported success")
	}
	if !errors.Is(err, perrs.ErrMemberDown) {
		t.Fatalf("drain failure is not ErrMemberDown: %v", err)
	}
	// The drain aborted: A is still a member and still serves its range.
	if owners := cl.v.Load().ownersOf(addrA); owners == nil {
		t.Fatalf("reverted drain removed %s from the map", addrA)
	}
	for _, kv := range want {
		v, ok, gerr := cl.Get(ctx, kv.Key)
		if gerr != nil || !ok || v != kv.Value {
			t.Fatalf("row %s lost in reverted drain: %q %v %v", kv.Key, v, ok, gerr)
		}
	}
	// And the refusal to drain the last member is a typed error too
	// (on a fresh server: A still carries the two-member map above).
	addrS, _ := startServer(t, "solo")
	solo := newCluster(t, Config{Addrs: []string{addrS}})
	if derr := solo.DrainServer(ctx, addrS); !errors.Is(derr, perrs.ErrDraining) {
		t.Fatalf("last-member drain refusal is not ErrDraining: %v", derr)
	}
}

// TestMoveBoundRevertsOnDeadDestination: a plain bound move whose
// destination died reverts — the source serves the range again, no row
// is lost, and the failure is reported.
func TestMoveBoundRevertsOnDeadDestination(t *testing.T) {
	ctx := context.Background()
	addrA, _ := startServer(t, "a")
	addrB, killB := startServer(t, "b")
	cl := newCluster(t, Config{Addrs: []string{addrA, addrB}, Bounds: []string{"m"}})
	for i := 0; i < 10; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("c%02d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	killB()
	// Move [g, m) from A to B: extract at A succeeds, splice at dead B
	// fails, the move reverts.
	err := cl.MoveBound(ctx, 0, "g")
	if err == nil {
		t.Fatal("move to a dead destination reported success")
	}
	if !strings.Contains(err.Error(), "reverted") {
		t.Fatalf("move did not revert: %v", err)
	}
	// Every row is still served by A under the reverted map.
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("c%02d", i)
		v, ok, gerr := cl.Get(ctx, key)
		if gerr != nil || !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("row %s lost after revert: %q %v %v", key, v, ok, gerr)
		}
	}
	// And writes into the reverted range work.
	if err := cl.Put(ctx, "g99", "after"); err != nil {
		t.Fatalf("write after revert: %v", err)
	}
}

// TestConcurrentCoordinatorsEpochTieBreak: two coordinators with
// distinct identities racing from the same parent map cannot publish
// distinct maps at the same position. The loser's transfer fails with a
// version conflict, and its MoveBound retry-after-adopt succeeds
// against the winner's map.
func TestConcurrentCoordinatorsEpochTieBreak(t *testing.T) {
	ctx := context.Background()
	addrs := startServers(t, 2)
	a := newCluster(t, Config{Addrs: addrs, Bounds: []string{"m"}, CoordinatorID: 7})
	b := newCluster(t, Config{Addrs: addrs, Bounds: []string{"m"}, CoordinatorID: 9})
	for i := 0; i < 6; i++ {
		if err := a.Put(ctx, fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	// A moves first; B still holds the original map and proposes a
	// conflicting successor from the same parent. B's transfer must fail
	// with a version conflict internally and succeed on the
	// retry-after-adopt inside MoveBound.
	if err := a.MoveBound(ctx, 0, "k3"); err != nil {
		t.Fatal(err)
	}
	if err := b.MoveBound(ctx, 0, "k5"); err != nil {
		t.Fatalf("loser's retry-after-adopt failed: %v", err)
	}
	am, bm := a.Map(), b.Map()
	// B's final map is strictly newer than A's published one and the
	// cluster converged on it.
	if !bm.NewerThan(am.Epoch(), am.Version()) && !(bm.Epoch() == am.Epoch() && bm.Version() == am.Version()) {
		t.Fatalf("maps diverged: a=e%d v%d, b=e%d v%d", am.Epoch(), am.Version(), bm.Epoch(), bm.Version())
	}
	if n, err := a.Count(ctx, "", ""); err != nil || n != 6 {
		t.Fatalf("count after racing coordinators = %d (%v)", n, err)
	}
	// A touching the moved range adopts B's map.
	if _, _, err := a.Get(ctx, "k4"); err != nil {
		t.Fatal(err)
	}
	if got := a.Map(); !got.NewerThan(am.Epoch()-1, am.Version()) {
		t.Fatalf("a did not adopt: e%d v%d", got.Epoch(), got.Version())
	}
}

// TestMultiShardMemberMeshSeesSelfOwnedSources is the regression test
// for the PR 2 mesh gap: a *multi-shard* member whose join output
// computes on a different internal shard than the one holding its
// self-owned source rows must still see them — the pool replicates
// self-owned rows of external tables across its internal shards.
func TestMultiShardMemberMeshSeesSelfOwnedSources(t *testing.T) {
	ctx := context.Background()
	// Member A: two internal shards split at t| — sources (p|, s|) land
	// on shard 0, computed timelines (t|) on shard 1. It serves cluster
	// ranges [p|, t|) and [t|, t|u5). Member B serves the rest.
	a, err := server.New(server.Config{Name: "A", Shards: 2, Bounds: []string{"t|"}})
	if err != nil {
		t.Fatal(err)
	}
	addrA, err := a.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	addrB, _ := startServer(t, "B")
	cl := newCluster(t, Config{
		Addrs:  []string{addrB, addrA, addrA, addrB},
		Bounds: testBounds,
		Joins:  shard.EquivJoins,
	})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// Source rows homed at A (owner 1, internal shard 0): u2's timeline
	// is computed at A too (owner 2, internal shard 1) — before the fix
	// the join there missed these rows.
	must(cl.Put(ctx, "s|u2|u8", "1"))
	must(cl.Put(ctx, "s|u7|u8", "1"))
	must(cl.Put(ctx, "p|u8|100", "Hi"))
	must(cl.Quiesce(ctx))
	kvs, err := cl.Scan(ctx, "t|u2|", "t|u2}", 0)
	must(err)
	if len(kvs) != 1 || kvs[0].Key != "t|u2|100|u8" || kvs[0].Value != "Hi" {
		t.Fatalf("multi-shard member's own timeline missed self-owned sources: %v", kvs)
	}
	// A timeline on the other member still works too (the ordinary
	// cross-server path).
	kvs, err = cl.Scan(ctx, "t|u7|", "t|u7}", 0)
	must(err)
	if len(kvs) != 1 || kvs[0].Key != "t|u7|100|u8" {
		t.Fatalf("remote timeline = %v", kvs)
	}
	// Incremental maintenance across the internal shards: a new post
	// reaches the sibling shard's computed timeline.
	must(cl.Put(ctx, "p|u8|150", "again"))
	must(cl.Quiesce(ctx))
	if v, ok, err := cl.Get(ctx, "t|u2|150|u8"); err != nil || !ok || v != "again" {
		t.Fatalf("sibling shard missed the new post: %q %v %v", v, ok, err)
	}
	// Removal propagates too.
	if _, err := cl.Remove(ctx, "p|u8|100"); err != nil {
		t.Fatal(err)
	}
	must(cl.Quiesce(ctx))
	if _, ok, _ := cl.Get(ctx, "t|u2|100|u8"); ok {
		t.Fatal("removed post still on the sibling shard's timeline")
	}
}

// TestClusterEqualsEmbeddedUnderMembershipChange is the PR's gate: the
// randomized Twip workload against a cluster whose membership changes
// mid-workload — a server joins, absorbs ranges, and later drains back
// out — returns byte-identical scans to a single embedded engine.
func TestClusterEqualsEmbeddedUnderMembershipChange(t *testing.T) {
	nSeeds := int64(3)
	nOps := 300
	if testing.Short() {
		nSeeds, nOps = 1, 120
	}
	for seed := int64(1); seed <= nSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ctx := context.Background()
			ops := shard.GenTwipOps(seed, nOps, 10)

			single, err := shard.New(shard.Config{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(single.Close)
			if err := single.InstallText(shard.EquivJoins); err != nil {
				t.Fatal(err)
			}

			addrs := startServers(t, 3)
			fresh, _ := startServer(t, "joiner")
			cl := newCluster(t, Config{Addrs: addrs, Bounds: testBounds[:2], Joins: shard.EquivJoins})

			// Membership changes forced mid-workload: the fresh server
			// joins (splitting the computed-timeline range), a bound move
			// shifts load onto it, and it drains back out.
			changes := []func() error{
				func() error { return cl.AddServerAt(ctx, fresh, 2, "t|u5") },
				func() error { return cl.MoveBound(ctx, 2, "t|u3") },
				func() error { return cl.DrainServer(ctx, fresh) },
				func() error { return cl.AddServerAt(ctx, fresh, 1, "p|u5|") },
			}
			changeEvery := len(ops)/len(changes) + 1
			next := 0
			for i, o := range ops {
				if i > 0 && i%changeEvery == 0 && next < len(changes) {
					if err := changes[next](); err != nil {
						t.Fatalf("membership change %d: %v", next, err)
					}
					next++
				}
				switch o.Kind {
				case shard.OpPut:
					single.Put(o.Key, o.Value)
					if err := cl.Put(ctx, o.Key, o.Value); err != nil {
						t.Fatal(err)
					}
				case shard.OpRemove:
					single.Remove(o.Key)
					if _, err := cl.Remove(ctx, o.Key); err != nil {
						t.Fatal(err)
					}
				case shard.OpScan:
					single.Scan(o.Lo, o.Hi, 0, nil, nil)
					if err := cl.Quiesce(ctx); err != nil {
						t.Fatal(err)
					}
					if _, err := cl.Scan(ctx, o.Lo, o.Hi, 0); err != nil {
						t.Fatal(err)
					}
				}
			}
			for next < len(changes) {
				if err := changes[next](); err != nil {
					t.Fatalf("trailing membership change %d: %v", next, err)
				}
				next++
			}
			if err := cl.Quiesce(ctx); err != nil {
				t.Fatal(err)
			}

			for _, r := range shard.EquivRanges(seed, 10) {
				want := single.Scan(r[0], r[1], 0, nil, nil)
				got, err := cl.Scan(ctx, r[0], r[1], 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("scan [%q, %q) diverged after membership changes:\nembedded %v\ncluster  %v", r[0], r[1], want, got)
				}
				wn := single.Count(r[0], r[1])
				gn, err := cl.Count(ctx, r[0], r[1])
				if err != nil || int64(wn) != gn {
					t.Fatalf("count [%q, %q) = %d vs %d (%v)", r[0], r[1], wn, gn, err)
				}
			}
		})
	}
}
