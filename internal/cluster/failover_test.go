package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"pequod/internal/perrs"
	"pequod/internal/shard"
)

// TestClusterEqualsEmbeddedUnderFailover is the issue's failover
// property: with per-range replication enabled, killing a member in
// the middle of the randomized Twip workload — with NO manual
// intervention — must leave the cluster byte-equivalent to the
// embedded cache. The failure detector notices the death, the
// coordinator promotes the surviving replicas under a repaired map,
// and the client retry budget carries every in-flight op across the
// gap, so no acknowledged write is lost.
func TestClusterEqualsEmbeddedUnderFailover(t *testing.T) {
	nSeeds := int64(2)
	nOps := 300
	if testing.Short() {
		nSeeds, nOps = 1, 140
	}
	for seed := int64(1); seed <= nSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ctx := context.Background()
			ops := shard.GenTwipOps(seed, nOps, 10)

			single, err := shard.New(shard.Config{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(single.Close)
			if err := single.InstallText(shard.EquivJoins); err != nil {
				t.Fatal(err)
			}

			addrs := make([]string, 4)
			kills := make([]func(), 4)
			for i := range addrs {
				addrs[i], kills[i] = startServer(t, fmt.Sprintf("f%d", i))
			}
			cl := newCluster(t, Config{
				Addrs: addrs, Bounds: testBounds, Joins: shard.EquivJoins,
				Replicas:         2,
				FailoverInterval: 20 * time.Millisecond,
				FailoverMisses:   2,
				CoordinatorName:  "failover-equiv",
			})

			// Quiesce fails fast when a member is down; during the
			// detection window that is expected, so retry until the
			// repaired map routes around the death.
			quiesce := func() {
				t.Helper()
				deadline := time.Now().Add(10 * time.Second)
				for {
					err := cl.Quiesce(ctx)
					if err == nil {
						return
					}
					if !errors.Is(err, perrs.ErrMemberDown) || time.Now().After(deadline) {
						t.Fatal(err)
					}
					time.Sleep(5 * time.Millisecond)
				}
			}

			// Kill the p| owner (member 1) halfway through: its base
			// rows feed every computed timeline, so losing them would
			// diverge everything downstream. Quiesce first — the fence
			// settles the replica copies, which is the write-durability
			// contract a failover promotes under.
			killAt := len(ops) / 2
			for i, o := range ops {
				if i == killAt {
					quiesce()
					kills[1]()
				}
				switch o.Kind {
				case shard.OpPut:
					single.Put(o.Key, o.Value)
					if err := cl.Put(ctx, o.Key, o.Value); err != nil {
						t.Fatalf("op %d Put(%q): %v", i, o.Key, err)
					}
				case shard.OpRemove:
					single.Remove(o.Key)
					if _, err := cl.Remove(ctx, o.Key); err != nil {
						t.Fatalf("op %d Remove(%q): %v", i, o.Key, err)
					}
				case shard.OpScan:
					single.Scan(o.Lo, o.Hi, 0, nil, nil)
					if i >= killAt {
						quiesce()
					} else if err := cl.Quiesce(ctx); err != nil {
						t.Fatal(err)
					}
					if _, err := cl.Scan(ctx, o.Lo, o.Hi, 0); err != nil {
						t.Fatalf("op %d Scan[%q, %q): %v", i, o.Lo, o.Hi, err)
					}
				}
			}

			// The detector and coordinator must have repaired the map on
			// their own — the dead member gone, epoch advanced, and every
			// range owned by a survivor.
			deadline := time.Now().Add(10 * time.Second)
			for {
				left := cl.MemberAddrs()
				if len(left) == 3 && !contains(left, addrs[1]) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("automatic repair never removed the dead member: members = %v", left)
				}
				time.Sleep(5 * time.Millisecond)
			}
			quiesce()

			for _, r := range shard.EquivRanges(seed, 10) {
				want := single.Scan(r[0], r[1], 0, nil, nil)
				got, err := cl.Scan(ctx, r[0], r[1], 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("scan [%q, %q) diverged after failover:\nembedded %v\ncluster  %v", r[0], r[1], want, got)
				}
				wn := single.Count(r[0], r[1])
				gn, err := cl.Count(ctx, r[0], r[1])
				if err != nil || int64(wn) != gn {
					t.Fatalf("count [%q, %q) = %d vs %d (%v)", r[0], r[1], wn, gn, err)
				}
			}
		})
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// TestHealthAndManualRepair drives the Admin surface directly: Health
// rows flip to dead, a manual Repair promotes the survivor, and the
// repaired map serves the dead member's rows from its replica.
func TestHealthAndManualRepair(t *testing.T) {
	ctx := context.Background()
	addrA, _ := startServer(t, "ha")
	addrB, killB := startServer(t, "hb")
	// No FailoverInterval: detection and repair are manual here, so the
	// test controls exactly when promotion happens.
	cl := newCluster(t, Config{Addrs: []string{addrA, addrB}, Bounds: []string{"m"}, Replicas: 2, CoordinatorName: "manual-repair"})
	for i := 0; i < 8; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("z%02d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	rows := cl.Health(ctx)
	if len(rows) != 2 {
		t.Fatalf("Health rows = %d", len(rows))
	}
	for _, h := range rows {
		if !h.Alive || h.ID == "" || h.Owners == 0 {
			t.Fatalf("healthy member row = %+v", h)
		}
	}
	// With 2 total copies over 2 members, each member replicates the
	// other's range.
	for _, h := range rows {
		if h.Replicas == 0 {
			t.Fatalf("member %s holds no replicas: %+v", h.Addr, h)
		}
	}

	killB()
	rows = cl.Health(ctx)
	var sawDead bool
	for _, h := range rows {
		if h.Addr == addrB {
			sawDead = true
			if h.Alive || h.Err == "" {
				t.Fatalf("dead member row = %+v", h)
			}
		}
	}
	if !sawDead {
		t.Fatalf("Health lost the dead member: %+v", rows)
	}

	repaired, err := cl.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) != 1 || repaired[0] != addrB {
		t.Fatalf("Repair = %v", repaired)
	}
	if got := cl.MemberAddrs(); len(got) != 1 || got[0] != addrA {
		t.Fatalf("repaired members = %v", got)
	}
	// B's range promoted from A's replica: every acknowledged row
	// (including B's own "z..." rows) survives, served by A.
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("z%02d", i)
		v, ok, err := cl.Get(ctx, key)
		if err != nil || !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("row %s lost in failover: %q %v %v", key, v, ok, err)
		}
	}
	// A second Repair is a no-op on a healthy (single-member) cluster.
	if again, err := cl.Repair(ctx); err != nil || len(again) != 0 {
		t.Fatalf("idempotent Repair = %v, %v", again, err)
	}
	// An error naming the member would be confusing after repair: a
	// fresh write to the promoted range must work first try.
	if err := cl.Put(ctx, "z99", "after"); err != nil {
		t.Fatal(err)
	}
}
