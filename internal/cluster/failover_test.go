package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"pequod/internal/perrs"
	"pequod/internal/server"
	"pequod/internal/shard"
)

// TestClusterEqualsEmbeddedUnderFailover is the issue's failover
// property: with per-range replication enabled, killing a member in
// the middle of the randomized Twip workload — with NO manual
// intervention — must leave the cluster byte-equivalent to the
// embedded cache. The failure detector notices the death, the
// coordinator promotes the surviving replicas under a repaired map,
// and the client retry budget carries every in-flight op across the
// gap, so no acknowledged write is lost.
func TestClusterEqualsEmbeddedUnderFailover(t *testing.T) {
	nSeeds := int64(2)
	nOps := 300
	if testing.Short() {
		nSeeds, nOps = 1, 140
	}
	for seed := int64(1); seed <= nSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ctx := context.Background()
			ops := shard.GenTwipOps(seed, nOps, 10)

			single, err := shard.New(shard.Config{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(single.Close)
			if err := single.InstallText(shard.EquivJoins); err != nil {
				t.Fatal(err)
			}

			addrs := make([]string, 4)
			kills := make([]func(), 4)
			for i := range addrs {
				addrs[i], kills[i] = startServer(t, fmt.Sprintf("f%d", i))
			}
			cl := newCluster(t, Config{
				Addrs: addrs, Bounds: testBounds, Joins: shard.EquivJoins,
				Replicas:         2,
				FailoverInterval: 20 * time.Millisecond,
				FailoverMisses:   2,
				CoordinatorName:  "failover-equiv",
			})

			// Quiesce fails fast when a member is down; during the
			// detection window that is expected, so retry until the
			// repaired map routes around the death.
			quiesce := func() {
				t.Helper()
				deadline := time.Now().Add(10 * time.Second)
				for {
					err := cl.Quiesce(ctx)
					if err == nil {
						return
					}
					if !errors.Is(err, perrs.ErrMemberDown) || time.Now().After(deadline) {
						t.Fatal(err)
					}
					time.Sleep(5 * time.Millisecond)
				}
			}

			// Kill the p| owner (member 1) halfway through: its base
			// rows feed every computed timeline, so losing them would
			// diverge everything downstream. Quiesce first — the fence
			// settles the replica copies, which is the write-durability
			// contract a failover promotes under.
			killAt := len(ops) / 2
			for i, o := range ops {
				if i == killAt {
					quiesce()
					kills[1]()
				}
				switch o.Kind {
				case shard.OpPut:
					single.Put(o.Key, o.Value)
					if err := cl.Put(ctx, o.Key, o.Value); err != nil {
						t.Fatalf("op %d Put(%q): %v", i, o.Key, err)
					}
				case shard.OpRemove:
					single.Remove(o.Key)
					if _, err := cl.Remove(ctx, o.Key); err != nil {
						t.Fatalf("op %d Remove(%q): %v", i, o.Key, err)
					}
				case shard.OpScan:
					single.Scan(o.Lo, o.Hi, 0, nil, nil)
					if i >= killAt {
						quiesce()
					} else if err := cl.Quiesce(ctx); err != nil {
						t.Fatal(err)
					}
					if _, err := cl.Scan(ctx, o.Lo, o.Hi, 0); err != nil {
						t.Fatalf("op %d Scan[%q, %q): %v", i, o.Lo, o.Hi, err)
					}
				}
			}

			// The detector and coordinator must have repaired the map on
			// their own — the dead member gone, epoch advanced, and every
			// range owned by a survivor.
			deadline := time.Now().Add(10 * time.Second)
			for {
				left := cl.MemberAddrs()
				if len(left) == 3 && !contains(left, addrs[1]) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("automatic repair never removed the dead member: members = %v", left)
				}
				time.Sleep(5 * time.Millisecond)
			}
			quiesce()

			for _, r := range shard.EquivRanges(seed, 10) {
				want := single.Scan(r[0], r[1], 0, nil, nil)
				got, err := cl.Scan(ctx, r[0], r[1], 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("scan [%q, %q) diverged after failover:\nembedded %v\ncluster  %v", r[0], r[1], want, got)
				}
				wn := single.Count(r[0], r[1])
				gn, err := cl.Count(ctx, r[0], r[1])
				if err != nil || int64(wn) != gn {
					t.Fatalf("count [%q, %q) = %d vs %d (%v)", r[0], r[1], wn, gn, err)
				}
			}
		})
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// restartServer binds a fresh (empty) server to an address a previous
// server just released, simulating a member process restart.
func restartServer(t *testing.T, name, addr string) func() {
	t.Helper()
	s, err := server.New(server.Config{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	go s.Serve(ln) //nolint:errcheck // exits when the test closes the server
	t.Cleanup(s.Close)
	return s.Close
}

// TestReplicaResyncsAfterHomeRestart: a home that restarts kills its
// replica feed silently — the old connection fails, pushes stop, and
// the replica's assignment has not changed. The member must notice the
// failed connection, re-snapshot the ranges it sourced from that home,
// and track it from then on: a later promotion serves the restarted
// home's state (including rows it no longer has), not the pre-restart
// copy.
func TestReplicaResyncsAfterHomeRestart(t *testing.T) {
	ctx := context.Background()
	addrA, _ := startServer(t, "ra")
	addrB, killB := startServer(t, "rb")
	cl := newCluster(t, Config{Addrs: []string{addrA, addrB}, Bounds: []string{"m"}, Replicas: 2, CoordinatorName: "resync"})
	for i := 0; i < 6; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("z%02d", i), "old"); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}

	// Restart B's process on the same address: an empty engine, and A's
	// replica feed for B's range dead with the old connection.
	killB()
	killB2 := restartServer(t, "rb2", addrB)

	// Give the member-side watchdog (200ms cadence) time to notice the
	// failed home connection and mark A's copy unsynced. Until it runs,
	// A still reports the pre-restart copy as synced and quiesce fences
	// the dead peer vacuously, so the poll below could pass stale.
	time.Sleep(600 * time.Millisecond)

	// Re-write only the first half; the rest existed solely before the
	// restart, so a correctly resynced replica must drop them as ghosts.
	for i := 0; i < 3; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("z%02d", i), "new"); err != nil {
			t.Fatal(err)
		}
	}

	// A's replica count recovers only after a full snapshot+subscribe
	// pass against the restarted home; a green quiesce then fences the
	// fresh connection, so together they mean the copy is current.
	replicasOf := func(addr string) int {
		for _, h := range cl.Health(ctx) {
			if h.Addr == addr {
				return h.Replicas
			}
		}
		return -1
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		qerr := cl.Quiesce(ctx)
		n := replicasOf(addrA)
		if qerr == nil && n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never resynced after home restart: quiesce=%v, replicas=%d", qerr, n)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Promote A over the dead range and check it serves B's
	// post-restart state exactly.
	killB2()
	repaired, err := cl.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) != 1 || repaired[0] != addrB {
		t.Fatalf("Repair = %v", repaired)
	}
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("z%02d", i)
		v, ok, err := cl.Get(ctx, key)
		if err != nil || !ok || v != "new" {
			t.Fatalf("post-restart write %s lost: %q %v %v", key, v, ok, err)
		}
	}
	for i := 3; i < 6; i++ {
		key := fmt.Sprintf("z%02d", i)
		if _, ok, err := cl.Get(ctx, key); err != nil || ok {
			t.Fatalf("ghost row %s survived the resync: %v %v", key, ok, err)
		}
	}
}

// TestRepairWarnsOnColdPromotion: when every warm replica holder of a
// range died along with its owner, Repair still promotes a survivor so
// the range is served — but it must tell the operator that the range
// came back empty instead of silently losing acknowledged writes.
func TestRepairWarnsOnColdPromotion(t *testing.T) {
	ctx := context.Background()
	addrs := make([]string, 3)
	kills := make([]func(), 3)
	for i := range addrs {
		addrs[i], kills[i] = startServer(t, fmt.Sprintf("c%d", i))
	}
	cl := newCluster(t, Config{Addrs: addrs, Bounds: []string{"h", "p"}, Replicas: 2, CoordinatorName: "cold"})
	if err := cl.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill member 0 and its ring successor (member 1) — the only warm
	// holder of member 0's range with two total copies.
	kills[0]()
	kills[1]()

	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(prev)

	repaired, err := cl.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) != 2 || !contains(repaired, addrs[0]) || !contains(repaired, addrs[1]) {
		t.Fatalf("Repair = %v", repaired)
	}
	if got := cl.MemberAddrs(); len(got) != 1 || got[0] != addrs[2] {
		t.Fatalf("surviving members = %v", got)
	}
	if !strings.Contains(buf.String(), "without a warm copy") {
		t.Fatalf("cold promotion not surfaced to the operator; log = %q", buf.String())
	}
}

// TestUnavailableRetryPauseScalesWithDetector: the per-attempt pause
// for unavailable-member retries must stretch with the configured
// failure detector, so the whole retry budget outlasts detection plus
// repair instead of exhausting in under half a second.
func TestUnavailableRetryPauseScalesWithDetector(t *testing.T) {
	addrs := startServers(t, 2)
	cl := newCluster(t, Config{Addrs: addrs, Bounds: []string{"m"}, CoordinatorName: "budget-manual"})
	if cl.downPause != failPause {
		t.Fatalf("manual-failover pause = %v, want the %v floor", cl.downPause, failPause)
	}
	cl2 := newCluster(t, Config{
		Addrs: addrs, Bounds: []string{"m"},
		FailoverInterval: time.Second, FailoverMisses: 3,
		CoordinatorName: "budget-auto",
	})
	detection := cl2.failEvery * time.Duration(cl2.failMisses+1)
	if budget := cl2.downPause * time.Duration(opRetries-1); budget < detection {
		t.Fatalf("retry budget %v does not span the %v detection window (pause %v)", budget, detection, cl2.downPause)
	}
}

// TestHealthAndManualRepair drives the Admin surface directly: Health
// rows flip to dead, a manual Repair promotes the survivor, and the
// repaired map serves the dead member's rows from its replica.
func TestHealthAndManualRepair(t *testing.T) {
	ctx := context.Background()
	addrA, _ := startServer(t, "ha")
	addrB, killB := startServer(t, "hb")
	// No FailoverInterval: detection and repair are manual here, so the
	// test controls exactly when promotion happens.
	cl := newCluster(t, Config{Addrs: []string{addrA, addrB}, Bounds: []string{"m"}, Replicas: 2, CoordinatorName: "manual-repair"})
	for i := 0; i < 8; i++ {
		if err := cl.Put(ctx, fmt.Sprintf("z%02d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	rows := cl.Health(ctx)
	if len(rows) != 2 {
		t.Fatalf("Health rows = %d", len(rows))
	}
	for _, h := range rows {
		if !h.Alive || h.ID == "" || h.Owners == 0 {
			t.Fatalf("healthy member row = %+v", h)
		}
	}
	// With 2 total copies over 2 members, each member replicates the
	// other's range.
	for _, h := range rows {
		if h.Replicas == 0 {
			t.Fatalf("member %s holds no replicas: %+v", h.Addr, h)
		}
	}

	killB()
	rows = cl.Health(ctx)
	var sawDead bool
	for _, h := range rows {
		if h.Addr == addrB {
			sawDead = true
			if h.Alive || h.Err == "" {
				t.Fatalf("dead member row = %+v", h)
			}
		}
	}
	if !sawDead {
		t.Fatalf("Health lost the dead member: %+v", rows)
	}

	repaired, err := cl.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) != 1 || repaired[0] != addrB {
		t.Fatalf("Repair = %v", repaired)
	}
	if got := cl.MemberAddrs(); len(got) != 1 || got[0] != addrA {
		t.Fatalf("repaired members = %v", got)
	}
	// B's range promoted from A's replica: every acknowledged row
	// (including B's own "z..." rows) survives, served by A.
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("z%02d", i)
		v, ok, err := cl.Get(ctx, key)
		if err != nil || !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("row %s lost in failover: %q %v %v", key, v, ok, err)
		}
	}
	// A second Repair is a no-op on a healthy (single-member) cluster.
	if again, err := cl.Repair(ctx); err != nil || len(again) != 0 {
		t.Fatalf("idempotent Repair = %v, %v", again, err)
	}
	// An error naming the member would be confusing after repair: a
	// fresh write to the promoted range must work first try.
	if err := cl.Put(ctx, "z99", "after"); err != nil {
		t.Fatal(err)
	}
}
