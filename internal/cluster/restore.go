package cluster

// Cross-address restore, coordinator side. Repair is the fast path
// after a member dies: promote surviving replicas and move on. Restore
// is the other path — the machine is gone for good, but its durable
// lineage (copied or remounted elsewhere) is the last line of defense
// for its ranges, most valuable exactly when Repair would have had to
// cold-promote. The operator re-keys the lineage to a new address
// (durable.Rekey via `pequod-cli restore -from`), starts a server over
// it there, and Restore publishes the substitution: a same-bounds
// epoch successor in which the new address owns everything the dead
// one did. The restored member recovered its rows, gate, and mesh
// wiring from the lineage before the publish; the publish re-gates it
// under the current epoch, the replica assignment riding it re-syncs
// its copies, and a per-range durable rebuild backfills whatever its
// startup gate filtered out. Deltas it missed while dead converge
// through the mesh and replica feeds exactly as after a warm restart.

import (
	"context"
	"fmt"
	"log"

	"pequod/internal/partition"
)

// Restore substitutes newAddr for the confirmed-dead member oldAddr in
// the cluster map, serving oldAddr's ranges from the durable lineage
// the server at newAddr recovered. Preconditions, each checked here:
// oldAddr must still be in the current map (after a completed Repair
// its ranges have moved on — join newAddr with AddServer instead),
// must fail the same consecutive-probe death test Repair applies, and
// newAddr must not be a member yet but must be running with a durable
// store — restoring over a memory-only fresh server would serve the
// dead member's ranges empty.
func (cl *Cluster) Restore(ctx context.Context, oldAddr, newAddr string) error {
	if oldAddr == newAddr {
		return fmt.Errorf("cluster: restore: old and new address are both %s", oldAddr)
	}
	cl.mvmu.Lock()
	defer cl.mvmu.Unlock()
	v := cl.v.Load()
	if v.ownersOf(oldAddr) == nil {
		return fmt.Errorf("cluster: restore: %s is not in the current map — a repair may have moved its ranges already; join %s with AddServer instead", oldAddr, newAddr)
	}
	if v.ownersOf(newAddr) != nil {
		return fmt.Errorf("cluster: restore: %s is already a member", newAddr)
	}
	if err := cl.confirmDead(ctx, oldAddr); err == nil {
		return fmt.Errorf("cluster: restore: %s still answers probes; drain it instead of restoring over it", oldAddr)
	}
	c, err := cl.conn(ctx, newAddr)
	if err != nil {
		return fmt.Errorf("cluster: restore: dialing %s: %w", newAddr, wrapDown(newAddr, err))
	}
	st, err := c.StatSnapshot(ctx)
	if err != nil {
		return fmt.Errorf("cluster: restore: stat %s: %w", newAddr, wrapDown(newAddr, err))
	}
	if st.Durable == nil {
		return fmt.Errorf("cluster: restore: %s runs without a data dir; start it with -data-dir over the dead member's re-keyed lineage first", newAddr)
	}

	// Publish the substitution as a same-bounds epoch successor: the
	// usual coordination currency, so a restore racing a migration or a
	// repair serializes through the epoch-ordered versions like any
	// other map change.
	addrs := make([]string, len(v.addrs))
	for i, a := range v.addrs {
		if a == oldAddr {
			addrs[i] = newAddr
		} else {
			addrs[i] = a
		}
	}
	next, err := partition.NewEpochVersioned(cl.mintEpoch(v.pmap.Epoch()), v.pmap.Version()+1, v.pmap.Bounds()...)
	if err != nil {
		return err
	}
	nv, err := newView(next, addrs)
	if err != nil {
		return err
	}
	if err := cl.publish(ctx, nv, nil); err != nil {
		return fmt.Errorf("cluster: restore published, but not to every member (they converge via NotOwner): %w", err)
	}

	// Backfill from the restored member's own lineage: rows its startup
	// gate filtered out (the recovered meta predates every map change
	// since the death) restore now that the member owns the ranges
	// again — absent keys only, so live writes accepted since the
	// publish win. Best-effort: what the lineage lost, the replica
	// re-sync below re-seeds.
	for _, o := range nv.ownersOf(newAddr) {
		r := ownerRange(nv.pmap, o)
		if n, err := c.RebuildRange(ctx, r.Lo, r.Hi); err != nil {
			log.Printf("pequod cluster: restore: range %d: durable rebuild at %s failed: %v", o, newAddr, err)
		} else if n > 0 {
			log.Printf("pequod cluster: restore: range %d: rebuilt %d rows at %s from its lineage", o, n, newAddr)
		}
	}

	// Re-spread replica assignments over the substituted membership,
	// with Repair's retry budget (the monitor's anti-entropy republish
	// backstops a budget spent against a flaky member).
	for attempt := 0; cl.copies > 1; attempt++ {
		failed := cl.publishReplicas(ctx, nv, cl.replicaTables())
		if len(failed) == 0 {
			break
		}
		if attempt >= 4 || !cl.pause(ctx, probeTimeout/2) {
			log.Printf("pequod cluster: restore: replica assignment not acknowledged by %v; monitor anti-entropy will converge them", failed)
			break
		}
	}

	// Best-effort fence toward the old address: if it was falsely dead
	// (or its machine resurrects later), it must learn it owns nothing
	// under the restored map rather than acknowledge writes from
	// clients holding the old one.
	fctx, cancel := context.WithTimeout(ctx, probeTimeout)
	cl.publishView(fctx, nv, oldAddr) //nolint:errcheck // best-effort fence
	cancel()
	cl.cmu.Lock()
	if cl.conns != nil {
		if old := cl.conns[oldAddr]; old != nil {
			cl.retiredRPCs += old.RPCs()
			old.Close()
			delete(cl.conns, oldAddr)
		}
	}
	cl.cmu.Unlock()
	return nil
}
