// Package cluster implements the multi-server Pequod client: one handle
// over a partitioned deployment (§2.4, §5.5) that owns the key routing
// applications previously hand-rolled with partition.Map.
//
// A Cluster embeds the partition map. Point operations (Get/Put/Remove)
// go to the key's home server; range operations (Scan/Count) split the
// range by owner, fan the pieces out concurrently over the per-server
// pipelined connections, and concatenate the sorted pieces — the same
// merge the in-process shard.Pool performs, lifted onto the wire. Batch
// operations pipeline every element before waiting on any, so a batch
// costs one network round trip per server touched, not per element.
//
// Installing joins through the cluster also wires the mesh: every
// member receives the join set, and each member is told (via the
// ConnectPeers RPC) to remotely load and subscribe to the base source
// tables it does not own, so computed ranges anywhere stay fresh as
// base writes land at their home servers — the paper's cross-server
// subscription and asynchronous update notification, eventually
// consistent. Quiesce settles it.
package cluster

import (
	"context"
	"fmt"
	"sync"

	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/join"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/rpc"
)

// Config describes a cluster: the partition of the key space and the
// member serving each range.
type Config struct {
	// Addrs holds one server address per partition range (len(Bounds)+1
	// entries). The same address may serve several ranges.
	Addrs []string
	// Bounds are the partition split points: range i is
	// [Bounds[i-1], Bounds[i]), with the usual implicit extremes.
	Bounds []string
	// Joins, if non-empty, is installed on every member at New, and the
	// cross-server subscription mesh for its base source tables is
	// wired before New returns.
	Joins string
}

// member is one distinct server and the partition ranges it owns.
type member struct {
	addr   string
	c      *client.Client
	owners []int
}

// Cluster is a client for a partitioned set of Pequod servers.
type Cluster struct {
	pmap    *partition.Map
	addrs   []string
	members []*member
	byOwner []*member

	// imu guards the installed-join bookkeeping (Install derives the
	// source-table set from everything installed so far).
	imu       sync.Mutex
	installed []*join.Join
}

// New dials every member and, if cfg.Joins is set, installs the joins
// and wires the subscription mesh. On error, connections dialed so far
// are closed.
func New(ctx context.Context, cfg Config) (*Cluster, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("cluster: no addresses")
	}
	if len(cfg.Addrs) != len(cfg.Bounds)+1 {
		return nil, fmt.Errorf("cluster: %d bounds need %d addresses, have %d",
			len(cfg.Bounds), len(cfg.Bounds)+1, len(cfg.Addrs))
	}
	pmap, err := partition.New(cfg.Bounds...)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		pmap:    pmap,
		addrs:   append([]string(nil), cfg.Addrs...),
		byOwner: make([]*member, len(cfg.Addrs)),
	}
	byAddr := make(map[string]*member)
	for i, a := range cfg.Addrs {
		m := byAddr[a]
		if m == nil {
			c, err := client.DialContext(ctx, a)
			if err != nil {
				cl.Close()
				return nil, fmt.Errorf("cluster: dial %s: %w", a, err)
			}
			m = &member{addr: a, c: c}
			byAddr[a] = m
			cl.members = append(cl.members, m)
		}
		m.owners = append(m.owners, i)
		cl.byOwner[i] = m
	}
	if cfg.Joins != "" {
		if err := cl.Install(ctx, cfg.Joins); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// Members returns the number of distinct servers in the cluster.
func (cl *Cluster) Members() int { return len(cl.members) }

// Map returns the cluster's partition map.
func (cl *Cluster) Map() *partition.Map { return cl.pmap }

// RPCs sums the requests sent across all member connections.
func (cl *Cluster) RPCs() int64 {
	var n int64
	for _, m := range cl.members {
		n += m.c.RPCs()
	}
	return n
}

// Close closes every member connection. The servers themselves are not
// owned by the cluster and keep running.
func (cl *Cluster) Close() error {
	var first error
	for _, m := range cl.members {
		if err := m.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// owner returns the member homing key.
func (cl *Cluster) owner(key string) *member { return cl.byOwner[cl.pmap.Owner(key)] }

// Get returns the value under key from its home server.
func (cl *Cluster) Get(ctx context.Context, key string) (string, bool, error) {
	m, err := cl.owner(key).c.Do(ctx, &rpc.Message{Type: rpc.MsgGet, Key: key})
	if err != nil {
		return "", false, err
	}
	return m.Value, m.Found, nil
}

// Put stores value under key at its home server.
func (cl *Cluster) Put(ctx context.Context, key, value string) error {
	_, err := cl.owner(key).c.Do(ctx, &rpc.Message{Type: rpc.MsgPut, Key: key, Value: value})
	return err
}

// Remove deletes key at its home server, reporting whether it existed.
func (cl *Cluster) Remove(ctx context.Context, key string) (bool, error) {
	m, err := cl.owner(key).c.Do(ctx, &rpc.Message{Type: rpc.MsgRemove, Key: key})
	if err != nil {
		return false, err
	}
	return m.Found, nil
}

// Scan returns up to limit (0 = all) pairs in [lo, hi), splitting the
// range by home server, fetching the pieces concurrently, and
// concatenating the sorted pieces in key order — shard.Pool's fan-out
// on the wire. Limited scans visit pieces sequentially with the
// remaining limit, like the pool, so servers whose rows would be
// truncated anyway are not forced to materialize joins.
func (cl *Cluster) Scan(ctx context.Context, lo, hi string, limit int) ([]core.KV, error) {
	pieces := cl.pmap.Split(keys.Range{Lo: lo, Hi: hi})
	switch {
	case len(pieces) == 0:
		return nil, nil
	case len(pieces) == 1:
		return cl.scanPiece(ctx, pieces[0], limit)
	case limit > 0:
		var out []core.KV
		for _, pc := range pieces {
			kvs, err := cl.scanPiece(ctx, pc, limit-len(out))
			if err != nil {
				return nil, err
			}
			out = append(out, kvs...)
			if len(out) >= limit {
				break
			}
		}
		return out, nil
	}
	results := make([][]core.KV, len(pieces))
	errs := make([]error, len(pieces))
	var wg sync.WaitGroup
	for i, pc := range pieces {
		i, pc := i, pc
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = cl.scanPiece(ctx, pc, limit)
		}()
	}
	wg.Wait()
	var out []core.KV
	for i, r := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, r...)
	}
	return out, nil
}

func (cl *Cluster) scanPiece(ctx context.Context, pc partition.Shard, limit int) ([]core.KV, error) {
	m, err := cl.byOwner[pc.Owner].c.Do(ctx, &rpc.Message{Type: rpc.MsgScan, Lo: pc.R.Lo, Hi: pc.R.Hi, Limit: limit})
	if err != nil {
		return nil, err
	}
	return m.KVs, nil
}

// Count returns the number of keys in [lo, hi), summing concurrent
// per-server counts.
func (cl *Cluster) Count(ctx context.Context, lo, hi string) (int64, error) {
	pieces := cl.pmap.Split(keys.Range{Lo: lo, Hi: hi})
	counts := make([]int64, len(pieces))
	errs := make([]error, len(pieces))
	var wg sync.WaitGroup
	for i, pc := range pieces {
		i, pc := i, pc
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := cl.byOwner[pc.Owner].c.Do(ctx, &rpc.Message{Type: rpc.MsgCount, Lo: pc.R.Lo, Hi: pc.R.Hi})
			if err != nil {
				errs[i] = err
				return
			}
			counts[i] = m.Count
		}()
	}
	wg.Wait()
	var total int64
	for i, n := range counts {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += n
	}
	return total, nil
}

// GetBatch fetches many keys with one pipelined round per server: all
// requests are sent before any reply is awaited. Results align with
// keys; Found distinguishes missing keys.
func (cl *Cluster) GetBatch(ctx context.Context, getKeys []string) ([]core.Lookup, error) {
	futs := make([]*client.Future, len(getKeys))
	for i, k := range getKeys {
		futs[i] = cl.owner(k).c.Send(ctx, &rpc.Message{Type: rpc.MsgGet, Key: k})
	}
	replies, err := client.CollectReplies(ctx, futs)
	if err != nil {
		return nil, err
	}
	out := make([]core.Lookup, len(replies))
	for i, m := range replies {
		out[i] = core.Lookup{Value: m.Value, Found: m.Found}
	}
	return out, nil
}

// PutBatch stores many pairs with one pipelined round per server.
// Writes to the same server apply in slice order; writes to different
// servers are concurrent, like independent callers.
func (cl *Cluster) PutBatch(ctx context.Context, pairs []core.KV) error {
	futs := make([]*client.Future, len(pairs))
	for i, kv := range pairs {
		futs[i] = cl.owner(kv.Key).c.Send(ctx, &rpc.Message{Type: rpc.MsgPut, Key: kv.Key, Value: kv.Value})
	}
	return client.WaitAll(ctx, futs)
}

// ScanBatch runs several range scans concurrently, each with its own
// limit budget, returning results aligned with ranges.
func (cl *Cluster) ScanBatch(ctx context.Context, ranges []keys.Range, limit int) ([][]core.KV, error) {
	out := make([][]core.KV, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i], errs[i] = cl.Scan(ctx, r.Lo, r.Hi, limit)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Install parses joins, wires the subscription mesh for their base
// source tables, and installs the joins on every member. Wiring comes
// first so no member computes a join before its remote sources are
// loader-backed.
func (cl *Cluster) Install(ctx context.Context, text string) error {
	js, err := join.ParseAll(text)
	if err != nil {
		return err
	}
	cl.imu.Lock()
	defer cl.imu.Unlock()
	all := append(append([]*join.Join(nil), cl.installed...), js...)
	tables := sourceTables(all)
	bounds := cl.pmap.Bounds()
	for _, m := range cl.members {
		if err := m.c.ConnectPeers(ctx, bounds, cl.addrs, m.owners, tables); err != nil {
			return fmt.Errorf("cluster: wiring %s: %w", m.addr, err)
		}
	}
	for _, m := range cl.members {
		if _, err := m.c.Do(ctx, &rpc.Message{Type: rpc.MsgAddJoin, Text: text}); err != nil {
			return fmt.Errorf("cluster: installing joins on %s: %w", m.addr, err)
		}
	}
	cl.installed = all
	return nil
}

// sourceTables returns the base source tables of a join set: sources
// that are not themselves some join's output (those are computed
// locally, recursively, wherever they are needed) — the same rule
// shard.Pool uses to pick its forwarded tables.
func sourceTables(js []*join.Join) []string {
	outputs := map[string]bool{}
	for _, j := range js {
		outputs[j.Out.Table()] = true
	}
	seen := map[string]bool{}
	var tables []string
	for _, j := range js {
		for _, t := range j.SourceTables() {
			if !outputs[t] && !seen[t] {
				seen[t] = true
				tables = append(tables, t)
			}
		}
	}
	return tables
}

// Stats sums the engine counters across all members.
func (cl *Cluster) Stats(ctx context.Context) (core.Stats, error) {
	var total core.Stats
	for _, m := range cl.members {
		st, err := m.c.Stats(ctx)
		if err != nil {
			return core.Stats{}, err
		}
		total.Add(st)
	}
	return total, nil
}

// Quiesce blocks until replication across the cluster has settled: each
// member settles its in-process forwarding, drains its outbound
// subscription pushes, and fences the pushes in flight toward it (see
// client.Quiesce). After it returns, reads anywhere in the cluster see
// every write acknowledged before the call.
func (cl *Cluster) Quiesce(ctx context.Context) error {
	errs := make([]error, len(cl.members))
	var wg sync.WaitGroup
	for i, m := range cl.members {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = m.c.Quiesce(ctx)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SetSubtableDepth marks a §4.1 natural key boundary on every member.
func (cl *Cluster) SetSubtableDepth(ctx context.Context, table string, depth int) error {
	for _, m := range cl.members {
		if _, err := m.c.Do(ctx, &rpc.Message{Type: rpc.MsgSetSubtable, Table: table, Depth: depth}); err != nil {
			return err
		}
	}
	return nil
}
