package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/join"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/rpc"
)

// Config describes a cluster: the partition of the key space and the
// member serving each range.
type Config struct {
	// Addrs holds one server address per partition range (len(Bounds)+1
	// entries). The same address may serve several ranges.
	Addrs []string
	// Bounds are the partition split points: range i is
	// [Bounds[i-1], Bounds[i]), with the usual implicit extremes.
	Bounds []string
	// Joins, if non-empty, is installed on every member at New, and the
	// cross-server subscription mesh for its base source tables is
	// wired before New returns.
	Joins string
}

// member is one distinct server and the partition ranges it owns.
type member struct {
	idx    int // position in Cluster.members
	addr   string
	c      *client.Client
	owners []int
}

// Cluster is a client for a partitioned set of Pequod servers.
type Cluster struct {
	// pmap is the cluster's current versioned partition map. Live
	// migration replaces it — either through this client's own MoveBound
	// or by adopting the newer map carried on a NotOwner reply from a
	// server that has moved on. Operations route against a snapshot and
	// retry on NotOwner, so a stale map costs a round trip, never a
	// wrong result.
	pmap    atomic.Pointer[partition.Map]
	addrs   []string
	members []*member
	byOwner []*member

	// imu guards the installed-join bookkeeping (Install derives the
	// source-table set from everything installed so far).
	imu       sync.Mutex
	installed []*join.Join

	// mvmu serializes migrations driven through this client.
	mvmu sync.Mutex

	// reb is the client-driven cluster rebalancer (rebalance.go).
	reb rebState
}

// New dials every member and, if cfg.Joins is set, installs the joins
// and wires the subscription mesh. On error, connections dialed so far
// are closed.
func New(ctx context.Context, cfg Config) (*Cluster, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("cluster: no addresses")
	}
	if len(cfg.Addrs) != len(cfg.Bounds)+1 {
		return nil, fmt.Errorf("cluster: %d bounds need %d addresses, have %d",
			len(cfg.Bounds), len(cfg.Bounds)+1, len(cfg.Addrs))
	}
	pmap, err := partition.New(cfg.Bounds...)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		addrs:   append([]string(nil), cfg.Addrs...),
		byOwner: make([]*member, len(cfg.Addrs)),
	}
	cl.pmap.Store(pmap)
	byAddr := make(map[string]*member)
	for i, a := range cfg.Addrs {
		m := byAddr[a]
		if m == nil {
			c, err := client.DialContext(ctx, a)
			if err != nil {
				cl.Close()
				return nil, fmt.Errorf("cluster: dial %s: %w", a, err)
			}
			m = &member{idx: len(cl.members), addr: a, c: c}
			byAddr[a] = m
			cl.members = append(cl.members, m)
		}
		m.owners = append(m.owners, i)
		cl.byOwner[i] = m
	}
	// Publish the cluster view to every member: each learns the
	// versioned map and which owner indexes it serves, and from then on
	// rejects operations outside its ranges with NotOwner — the
	// precondition for live migration to be loss-free. Members that saw
	// a newer map already (another client migrated) keep it; the first
	// misrouted operation teaches this client the newer map.
	for _, m := range cl.members {
		if err := cl.publishView(ctx, m, pmap); err != nil {
			cl.Close()
			return nil, err
		}
	}
	if cfg.Joins != "" {
		if err := cl.Install(ctx, cfg.Joins); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// publishView sends member m the cluster map and its self set. The
// reply carries the map the member actually holds; when that is newer —
// this client started from the deployment's original bounds after
// migrations had already run — the newer map is adopted.
func (cl *Cluster) publishView(ctx context.Context, m *member, pmap *partition.Map) error {
	r, err := m.c.Do(ctx, &rpc.Message{
		Type:       rpc.MsgMapUpdate,
		MapVersion: pmap.Version(),
		Bounds:     pmap.Bounds(),
		Peers:      cl.addrs,
		Self:       m.owners,
	})
	if err != nil {
		return fmt.Errorf("cluster: publishing map to %s: %w", m.addr, err)
	}
	if r.MapVersion > pmap.Version() {
		cl.adopt(r.MapVersion, r.Bounds)
	}
	return nil
}

// Members returns the number of distinct servers in the cluster.
func (cl *Cluster) Members() int { return len(cl.members) }

// Map returns the cluster's current partition map (immutable; live
// migration replaces it).
func (cl *Cluster) Map() *partition.Map { return cl.pmap.Load() }

// RPCs sums the requests sent across all member connections.
func (cl *Cluster) RPCs() int64 {
	var n int64
	for _, m := range cl.members {
		n += m.c.RPCs()
	}
	return n
}

// Close closes every member connection. The servers themselves are not
// owned by the cluster and keep running.
func (cl *Cluster) Close() error {
	cl.StopRebalancer()
	var first error
	for _, m := range cl.members {
		if err := m.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// owner returns the member homing key.
func (cl *Cluster) owner(key string) *member { return cl.byOwner[cl.pmap.Load().Owner(key)] }

// opRetries bounds NotOwner re-routing per operation; each retry follows
// an adopted newer map or a short pause (the window between a range
// leaving its old home and landing at its new one), so a retry budget
// this size outlasts any single migration.
const opRetries = 16

// retryPause is the wait before retrying when no newer map was learned.
const retryPause = 2 * time.Millisecond

// adopt installs a newer map learned from a NotOwner reply (no-op when
// ours is as new, or the carried map does not match this cluster's
// shape).
func (cl *Cluster) adopt(version int64, bounds []string) {
	if len(bounds)+1 != len(cl.byOwner) {
		return
	}
	next, err := partition.NewVersioned(version, bounds...)
	if err != nil {
		return
	}
	for {
		cur := cl.pmap.Load()
		if cur.Version() >= version {
			return
		}
		if cl.pmap.CompareAndSwap(cur, next) {
			return
		}
	}
}

// retryNotOwner handles one NotOwner failure: adopt the newer map it
// carries and report whether the caller should retry — immediately when
// the routing map changed, after a short pause otherwise (the range is
// mid-transfer, or a lagging server has not yet seen our map).
func (cl *Cluster) retryNotOwner(ctx context.Context, err error, attempt int) bool {
	var noe *client.NotOwnerError
	if !errors.As(err, &noe) || attempt >= opRetries-1 {
		return false
	}
	before := cl.pmap.Load().Version()
	cl.adopt(noe.Version, noe.Bounds)
	if cl.pmap.Load().Version() == before {
		t := time.NewTimer(retryPause)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
		}
	}
	return true
}

// doKey sends a point operation to key's home server, re-routing and
// retrying when a live migration moved the key (NotOwner).
func (cl *Cluster) doKey(ctx context.Context, key string, m *rpc.Message) (*rpc.Message, error) {
	for attempt := 0; ; attempt++ {
		r, err := cl.owner(key).c.Do(ctx, m)
		if err == nil || !cl.retryNotOwner(ctx, err, attempt) {
			return r, err
		}
	}
}

// Get returns the value under key from its home server.
func (cl *Cluster) Get(ctx context.Context, key string) (string, bool, error) {
	m, err := cl.doKey(ctx, key, &rpc.Message{Type: rpc.MsgGet, Key: key})
	if err != nil {
		return "", false, err
	}
	return m.Value, m.Found, nil
}

// Put stores value under key at its home server.
func (cl *Cluster) Put(ctx context.Context, key, value string) error {
	_, err := cl.doKey(ctx, key, &rpc.Message{Type: rpc.MsgPut, Key: key, Value: value})
	return err
}

// Remove deletes key at its home server, reporting whether it existed.
func (cl *Cluster) Remove(ctx context.Context, key string) (bool, error) {
	m, err := cl.doKey(ctx, key, &rpc.Message{Type: rpc.MsgRemove, Key: key})
	if err != nil {
		return false, err
	}
	return m.Found, nil
}

// Scan returns up to limit (0 = all) pairs in [lo, hi), splitting the
// range by home server, fetching the pieces concurrently, and
// concatenating the sorted pieces in key order — shard.Pool's fan-out
// on the wire. Limited scans visit pieces sequentially with the
// remaining limit, like the pool, so servers whose rows would be
// truncated anyway are not forced to materialize joins. A piece whose
// range migrated mid-scan fails with NotOwner; the scan adopts the
// newer map, re-splits, and retries whole, so no piece is ever served
// by a server that owns only part of it.
func (cl *Cluster) Scan(ctx context.Context, lo, hi string, limit int) ([]core.KV, error) {
	for attempt := 0; ; attempt++ {
		kvs, err := cl.scanOnce(ctx, lo, hi, limit)
		if err == nil || !cl.retryNotOwner(ctx, err, attempt) {
			return kvs, err
		}
	}
}

// scanOnce runs one scan attempt against a snapshot of the map.
func (cl *Cluster) scanOnce(ctx context.Context, lo, hi string, limit int) ([]core.KV, error) {
	pieces := cl.pmap.Load().Split(keys.Range{Lo: lo, Hi: hi})
	switch {
	case len(pieces) == 0:
		return nil, nil
	case len(pieces) == 1:
		return cl.scanPiece(ctx, pieces[0], limit)
	case limit > 0:
		var out []core.KV
		for _, pc := range pieces {
			kvs, err := cl.scanPiece(ctx, pc, limit-len(out))
			if err != nil {
				return nil, err
			}
			out = append(out, kvs...)
			if len(out) >= limit {
				break
			}
		}
		return out, nil
	}
	results := make([][]core.KV, len(pieces))
	errs := make([]error, len(pieces))
	var wg sync.WaitGroup
	for i, pc := range pieces {
		i, pc := i, pc
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = cl.scanPiece(ctx, pc, limit)
		}()
	}
	wg.Wait()
	var out []core.KV
	for i, r := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, r...)
	}
	return out, nil
}

func (cl *Cluster) scanPiece(ctx context.Context, pc partition.Shard, limit int) ([]core.KV, error) {
	m, err := cl.byOwner[pc.Owner].c.Do(ctx, &rpc.Message{Type: rpc.MsgScan, Lo: pc.R.Lo, Hi: pc.R.Hi, Limit: limit})
	if err != nil {
		return nil, err
	}
	return m.KVs, nil
}

// Count returns the number of keys in [lo, hi), summing concurrent
// per-server counts. Like Scan, it re-splits and retries whole when a
// piece migrated mid-count.
func (cl *Cluster) Count(ctx context.Context, lo, hi string) (int64, error) {
	for attempt := 0; ; attempt++ {
		n, err := cl.countOnce(ctx, lo, hi)
		if err == nil || !cl.retryNotOwner(ctx, err, attempt) {
			return n, err
		}
	}
}

func (cl *Cluster) countOnce(ctx context.Context, lo, hi string) (int64, error) {
	pieces := cl.pmap.Load().Split(keys.Range{Lo: lo, Hi: hi})
	counts := make([]int64, len(pieces))
	errs := make([]error, len(pieces))
	var wg sync.WaitGroup
	for i, pc := range pieces {
		i, pc := i, pc
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := cl.byOwner[pc.Owner].c.Do(ctx, &rpc.Message{Type: rpc.MsgCount, Lo: pc.R.Lo, Hi: pc.R.Hi})
			if err != nil {
				errs[i] = err
				return
			}
			counts[i] = m.Count
		}()
	}
	wg.Wait()
	var total int64
	for i, n := range counts {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += n
	}
	return total, nil
}

// GetBatch fetches many keys with one pipelined round per server: all
// requests are sent before any reply is awaited. Results align with
// keys; Found distinguishes missing keys. Elements whose key migrated
// mid-batch are retried individually against the adopted map.
func (cl *Cluster) GetBatch(ctx context.Context, getKeys []string) ([]core.Lookup, error) {
	futs := make([]*client.Future, len(getKeys))
	for i, k := range getKeys {
		futs[i] = cl.owner(k).c.Send(ctx, &rpc.Message{Type: rpc.MsgGet, Key: k})
	}
	out := make([]core.Lookup, len(getKeys))
	var firstErr error
	for i, f := range futs {
		m, err := client.ReplyWaitCtx(ctx, f)
		if err != nil {
			var noe *client.NotOwnerError
			if errors.As(err, &noe) {
				cl.adopt(noe.Version, noe.Bounds)
				m, err = cl.doKey(ctx, getKeys[i], &rpc.Message{Type: rpc.MsgGet, Key: getKeys[i]})
			}
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
		}
		out[i] = core.Lookup{Value: m.Value, Found: m.Found}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// PutBatch stores many pairs with one pipelined round per server.
// Writes to the same server apply in slice order; writes to different
// servers are concurrent, like independent callers. Pairs whose key
// migrated mid-batch are retried individually against the adopted map —
// a retried write can land after a later same-key write in the batch,
// the same last-writer-wins race as two independent callers.
func (cl *Cluster) PutBatch(ctx context.Context, pairs []core.KV) error {
	futs := make([]*client.Future, len(pairs))
	for i, kv := range pairs {
		futs[i] = cl.owner(kv.Key).c.Send(ctx, &rpc.Message{Type: rpc.MsgPut, Key: kv.Key, Value: kv.Value})
	}
	var firstErr error
	for i, f := range futs {
		_, err := client.ReplyWaitCtx(ctx, f)
		if err != nil {
			var noe *client.NotOwnerError
			if errors.As(err, &noe) {
				cl.adopt(noe.Version, noe.Bounds)
				_, err = cl.doKey(ctx, pairs[i].Key, &rpc.Message{Type: rpc.MsgPut, Key: pairs[i].Key, Value: pairs[i].Value})
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// ScanBatch runs several range scans concurrently, each with its own
// limit budget, returning results aligned with ranges.
func (cl *Cluster) ScanBatch(ctx context.Context, ranges []keys.Range, limit int) ([][]core.KV, error) {
	out := make([][]core.KV, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i], errs[i] = cl.Scan(ctx, r.Lo, r.Hi, limit)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Install parses joins, wires the subscription mesh for their base
// source tables, and installs the joins on every member. Wiring comes
// first so no member computes a join before its remote sources are
// loader-backed.
func (cl *Cluster) Install(ctx context.Context, text string) error {
	js, err := join.ParseAll(text)
	if err != nil {
		return err
	}
	cl.imu.Lock()
	defer cl.imu.Unlock()
	all := append(append([]*join.Join(nil), cl.installed...), js...)
	tables := sourceTables(all)
	bounds := cl.pmap.Load().Bounds()
	for _, m := range cl.members {
		if err := m.c.ConnectPeers(ctx, bounds, cl.addrs, m.owners, tables); err != nil {
			return fmt.Errorf("cluster: wiring %s: %w", m.addr, err)
		}
	}
	for _, m := range cl.members {
		if _, err := m.c.Do(ctx, &rpc.Message{Type: rpc.MsgAddJoin, Text: text}); err != nil {
			return fmt.Errorf("cluster: installing joins on %s: %w", m.addr, err)
		}
	}
	cl.installed = all
	return nil
}

// sourceTables returns the base source tables of a join set: sources
// that are not themselves some join's output (those are computed
// locally, recursively, wherever they are needed) — the same rule
// shard.Pool uses to pick its forwarded tables.
func sourceTables(js []*join.Join) []string {
	outputs := map[string]bool{}
	for _, j := range js {
		outputs[j.Out.Table()] = true
	}
	seen := map[string]bool{}
	var tables []string
	for _, j := range js {
		for _, t := range j.SourceTables() {
			if !outputs[t] && !seen[t] {
				seen[t] = true
				tables = append(tables, t)
			}
		}
	}
	return tables
}

// Stats sums the engine counters across all members. A member that
// cannot be reached does not zero the aggregate: the counters collected
// from the live members are returned alongside the first failure, so a
// monitoring caller still sees the surviving cluster's activity.
func (cl *Cluster) Stats(ctx context.Context) (core.Stats, error) {
	var total core.Stats
	var firstErr error
	for _, m := range cl.members {
		st, err := m.c.Stats(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: stats from %s: %w", m.addr, err)
			}
			continue
		}
		total.Add(st)
	}
	return total, firstErr
}

// Quiesce blocks until replication across the cluster has settled: each
// member settles its in-process forwarding, drains its outbound
// subscription pushes, and fences the pushes in flight toward it (see
// client.Quiesce). After it returns, reads anywhere in the cluster see
// every write acknowledged before the call.
func (cl *Cluster) Quiesce(ctx context.Context) error {
	errs := make([]error, len(cl.members))
	var wg sync.WaitGroup
	for i, m := range cl.members {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = m.c.Quiesce(ctx)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SetSubtableDepth marks a §4.1 natural key boundary on every member.
func (cl *Cluster) SetSubtableDepth(ctx context.Context, table string, depth int) error {
	for _, m := range cl.members {
		if _, err := m.c.Do(ctx, &rpc.Message{Type: rpc.MsgSetSubtable, Table: table, Depth: depth}); err != nil {
			return err
		}
	}
	return nil
}
