package cluster

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/join"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/perrs"
	"pequod/internal/rpc"
)

// Config describes a cluster: the partition of the key space and the
// member serving each range.
type Config struct {
	// Addrs holds one server address per partition range (len(Bounds)+1
	// entries). The same address may serve several ranges.
	Addrs []string
	// Bounds are the partition split points: range i is
	// [Bounds[i-1], Bounds[i]), with the usual implicit extremes.
	Bounds []string
	// Joins, if non-empty, is installed on every member at New, and the
	// cross-server subscription mesh for its base source tables is
	// wired before New returns.
	Joins string
	// CoordinatorID, if non-zero, fixes this client's coordinator
	// identity (the low bits of the epochs it mints — see
	// partition's epoch ordering). Distinct coordinators must use
	// distinct IDs; the default is a random 31-bit value, which tests
	// override for determinism.
	CoordinatorID int64
	// CoordinatorName, if non-empty and CoordinatorID is zero, derives
	// the coordinator identity by hashing the name: a restarted
	// coordinator with the same name mints epochs in the same identity
	// lane, so its repaired maps order against its own earlier maps by
	// version instead of racing a fresh random identity.
	CoordinatorName string
	// Replicas is the total number of copies of each range kept across
	// the cluster, counting the serving owner. 0 means the default (2);
	// 1 keeps only the serving copy, disabling replication. Replicas
	// are kept fresh through the subscription mesh and promoted by
	// Repair when their owner dies.
	Replicas int
	// FailoverInterval, if non-zero, starts a failure detector: every
	// interval each member is pinged, and a member that misses
	// FailoverMisses consecutive probes is declared dead and repaired
	// out of the map automatically. Zero leaves failover manual
	// (Repair).
	FailoverInterval time.Duration
	// FailoverMisses is the consecutive probe failures that confirm a
	// death. 0 means the default (3).
	FailoverMisses int
}

// view is one immutable generation of the cluster's shape: the
// versioned partition map, the serving address per owner index, and the
// distinct members. Operations route against a snapshot; migrations and
// membership changes publish a successor and swap it atomically.
type view struct {
	pmap  *partition.Map
	addrs []string  // serving address per owner index
	mbrs  []*member // distinct members, in first-appearance order
}

// member is one distinct server and the partition ranges it owns under
// the enclosing view.
type member struct {
	addr   string
	owners []int
}

// newView assembles a view from a map and its per-owner addresses.
func newView(pmap *partition.Map, addrs []string) (*view, error) {
	if len(addrs) != pmap.Servers() {
		return nil, fmt.Errorf("cluster: %d ranges need %d addresses, have %d",
			pmap.Servers(), pmap.Servers(), len(addrs))
	}
	v := &view{pmap: pmap, addrs: append([]string(nil), addrs...)}
	byAddr := make(map[string]*member)
	for i, a := range v.addrs {
		m := byAddr[a]
		if m == nil {
			m = &member{addr: a}
			byAddr[a] = m
			v.mbrs = append(v.mbrs, m)
		}
		m.owners = append(m.owners, i)
	}
	return v, nil
}

// ownerAddr returns the serving address for key.
func (v *view) ownerAddr(key string) string { return v.addrs[v.pmap.Owner(key)] }

// ownersOf returns the owner indexes addr serves under this view (nil
// when it is not a member).
func (v *view) ownersOf(addr string) []int {
	for _, m := range v.mbrs {
		if m.addr == addr {
			return m.owners
		}
	}
	return nil
}

// Cluster is a client for a partitioned set of Pequod servers. It is
// also the coordinator for live re-partitioning (migrate.go) and
// elastic membership (membership.go): servers never coordinate among
// themselves, any client can drive a change, and concurrent
// coordinators serialize through the epoch-ordered map versions.
type Cluster struct {
	// v is the cluster's current shape. Live migration and membership
	// changes replace it — either through this client's own coordination
	// or by adopting the newer map carried on a NotOwner reply from a
	// server that has moved on. Operations route against a snapshot and
	// retry on NotOwner, so a stale view costs a round trip, never a
	// wrong result.
	v atomic.Pointer[view]

	// coordID is this client's coordinator identity: the low bits of
	// every epoch it mints, making concurrent coordinators' maps
	// comparable instead of tied (see partition). epoch is the epoch of
	// the client's last mint, ratcheted past every epoch it observes.
	coordID int64
	epoch   atomic.Int64

	// cmu guards conns: one persistent connection per member address,
	// shared across view generations and dialed on first use. A failed
	// connection is redialed on the next routing decision that needs
	// it; its request count rolls into retiredRPCs so RPCs() stays
	// cumulative across redials.
	cmu         sync.Mutex
	conns       map[string]*client.Client
	retiredRPCs int64

	// imu guards the installed-join bookkeeping (Install derives the
	// source-table set from everything installed so far; AddServer
	// replays the texts onto joining members).
	imu       sync.Mutex
	installed []*join.Join
	texts     []string

	// mvmu serializes migrations and membership changes driven through
	// this client.
	mvmu sync.Mutex

	// reb is the client-driven cluster rebalancer (rebalance.go).
	reb rebState

	// copies is the configured total copies per range (owner included);
	// <= 1 disables replication.
	copies int

	// failEvery/failMisses configure the failure detector; monStop and
	// monDone bracket its goroutine's lifetime (failover.go). downPause
	// is the per-attempt wait for unavailable-member retries, scaled at
	// New so the whole budget spans detection plus repair.
	failEvery  time.Duration
	failMisses int
	downPause  time.Duration
	monStop    chan struct{}
	monDone    chan struct{}
	monOnce    sync.Once
}

// New dials every member and, if cfg.Joins is set, installs the joins
// and wires the subscription mesh. On error, connections dialed so far
// are closed.
func New(ctx context.Context, cfg Config) (*Cluster, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("cluster: no addresses")
	}
	if len(cfg.Addrs) != len(cfg.Bounds)+1 {
		return nil, fmt.Errorf("cluster: %d bounds need %d addresses, have %d",
			len(cfg.Bounds), len(cfg.Bounds)+1, len(cfg.Addrs))
	}
	pmap, err := partition.New(cfg.Bounds...)
	if err != nil {
		return nil, err
	}
	v, err := newView(pmap, cfg.Addrs)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		coordID:    cfg.CoordinatorID,
		conns:      make(map[string]*client.Client),
		copies:     cfg.Replicas,
		failEvery:  cfg.FailoverInterval,
		failMisses: cfg.FailoverMisses,
	}
	if cl.copies == 0 {
		cl.copies = defaultReplicas
	}
	if cl.failMisses <= 0 {
		cl.failMisses = defaultFailMisses
	}
	// The unavailable-retry budget must outlast an automatic failover:
	// detection takes FailoverInterval × FailoverMisses plus the
	// confirming tick, and the repair itself re-probes and publishes.
	// Spread that window (with a second of repair slack) across the
	// retry attempts; without a detector the fixed floor stands, since
	// only a manual Repair can ever route around the death.
	cl.downPause = failPause
	if cl.failEvery > 0 {
		budget := cl.failEvery*time.Duration(cl.failMisses+1) + time.Second
		if p := budget / time.Duration(opRetries-1); p > cl.downPause {
			cl.downPause = p
		}
	}
	if cl.coordID == 0 && cfg.CoordinatorName != "" {
		cl.coordID = nameCoordID(cfg.CoordinatorName)
	}
	if cl.coordID == 0 {
		cl.coordID = randomCoordID()
	}
	cl.coordID &= epochIDMask
	cl.v.Store(v)
	// An unreachable member must not block the client from starting:
	// Health and Repair exist precisely to deal with a dead member, and
	// both need a running client. Tolerate dial failures as long as at
	// least one member answers; ops routed at the dead ranges surface
	// ErrMemberDown until a repair promotes them elsewhere.
	alive := 0
	var dialErr error
	for _, m := range v.mbrs {
		if _, err := cl.conn(ctx, m.addr); err != nil {
			dialErr = fmt.Errorf("cluster: dial %s: %w", m.addr, wrapDown("", err))
			continue
		}
		alive++
	}
	if alive == 0 {
		cl.Close()
		return nil, dialErr
	}
	// Publish the cluster view to every member: each learns the
	// versioned map and which owner indexes it serves, and from then on
	// rejects operations outside its ranges with NotOwner — the
	// precondition for live migration to be loss-free. Members that saw
	// a newer map already (another client migrated) keep it; the reply
	// teaches this client the newer map. Unreachable members miss the
	// publish (they converge through NotOwner adoption if they return).
	for _, m := range v.mbrs {
		if err := cl.publishView(ctx, v, m.addr); err != nil {
			if client.IsUnavailable(err) || errors.Is(err, perrs.ErrMemberDown) {
				continue
			}
			cl.Close()
			return nil, err
		}
	}
	if cfg.Joins != "" {
		if err := cl.Install(ctx, cfg.Joins); err != nil {
			cl.Close()
			return nil, err
		}
	} else if cl.copies > 1 {
		// Install publishes replica assignments itself; without joins,
		// seed them here so base tables replicate from the start.
		cl.publishReplicas(ctx, cl.v.Load(), nil)
	}
	if cl.failEvery > 0 {
		cl.monStop = make(chan struct{})
		cl.monDone = make(chan struct{})
		go cl.monitor()
	}
	return cl, nil
}

// epochIDBits splits an epoch into a ratchet round (high bits) and a
// coordinator identity (low bits): two coordinators minting from the
// same parent take the same next round but different identities, so
// their maps are ordered instead of tied.
const epochIDBits = 31

const epochIDMask = (int64(1) << epochIDBits) - 1

// defaultReplicas is the total copies per range when Config.Replicas
// is zero: the owner plus one warm replica.
const defaultReplicas = 2

// defaultFailMisses is the consecutive probe failures that confirm a
// death when Config.FailoverMisses is zero.
const defaultFailMisses = 3

// nameCoordID hashes a durable coordinator name to a non-zero 31-bit
// identity, so a restarted coordinator keeps its epoch lane.
func nameCoordID(name string) int64 {
	h := fnv.New32a()
	h.Write([]byte(name))
	id := int64(h.Sum32()) & epochIDMask
	if id == 0 {
		id = 1
	}
	return id
}

// randomCoordID draws a non-zero 31-bit coordinator identity.
func randomCoordID() int64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a fixed odd constant; collisions then order
		// arbitrarily but deterministically.
		return 0x2e8ba2e9 & epochIDMask
	}
	id := int64(binary.LittleEndian.Uint64(b[:])) & epochIDMask
	if id == 0 {
		id = 1
	}
	return id
}

// mintEpoch returns the epoch for a successor of a map at cur: the
// client's own epoch when it already leads (its successive moves order
// by version), otherwise the next round stamped with this coordinator's
// identity — strictly above cur, and distinct from what any other
// coordinator mints from the same parent.
func (cl *Cluster) mintEpoch(cur int64) int64 {
	if own := cl.epoch.Load(); own >= cur && own != 0 && own&epochIDMask == cl.coordID {
		return own
	}
	next := (cur>>epochIDBits+1)<<epochIDBits | cl.coordID
	return next
}

// noteEpoch ratchets the client's mint position after publishing (or
// observing) an epoch.
func (cl *Cluster) noteEpoch(e int64) {
	for {
		cur := cl.epoch.Load()
		if cur >= e || cl.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// conn returns the connection to addr, dialing on first use and
// redialing if a previous connection failed (a member restarted, or a
// drain-test killed it and a later test target reuses the address).
// The dial happens outside cmu — one dead member must not serialize
// every operation to healthy members behind its connect timeout — so
// concurrent callers may race a dial; the loser's connection closes.
func (cl *Cluster) conn(ctx context.Context, addr string) (*client.Client, error) {
	cl.cmu.Lock()
	if cl.conns == nil {
		cl.cmu.Unlock()
		return nil, client.ErrClosed
	}
	if c, ok := cl.conns[addr]; ok {
		if !c.Failed() {
			cl.cmu.Unlock()
			return c, nil
		}
		delete(cl.conns, addr)
		cl.retiredRPCs += c.RPCs()
	}
	cl.cmu.Unlock()
	c, err := client.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	cl.cmu.Lock()
	defer cl.cmu.Unlock()
	if cl.conns == nil {
		c.Close()
		return nil, client.ErrClosed
	}
	if cur, ok := cl.conns[addr]; ok && !cur.Failed() {
		c.Close() // lost a dial race; use the winner
		return cur, nil
	}
	cl.conns[addr] = c
	return c, nil
}

// do sends one request to the member at addr.
func (cl *Cluster) do(ctx context.Context, addr string, m *rpc.Message) (*rpc.Message, error) {
	c, err := cl.conn(ctx, addr)
	if err != nil {
		return nil, err
	}
	return c.Do(ctx, m)
}

// publishView sends member addr the cluster map and its self set. The
// reply carries the map the member actually holds; when that is newer —
// this client started from the deployment's original bounds after
// migrations had already run — the newer map is adopted.
func (cl *Cluster) publishView(ctx context.Context, v *view, addr string) error {
	r, err := cl.do(ctx, addr, &rpc.Message{
		Type:       rpc.MsgMapUpdate,
		Epoch:      v.pmap.Epoch(),
		MapVersion: v.pmap.Version(),
		Bounds:     v.pmap.Bounds(),
		Peers:      v.addrs,
		Self:       v.ownersOf(addr),
	})
	if err != nil {
		return fmt.Errorf("cluster: publishing map to %s: %w", addr, err)
	}
	if r.MapVersion != 0 || r.Epoch != 0 || len(r.Bounds) > 0 {
		cl.adopt(r.Epoch, r.MapVersion, r.Bounds, r.Peers)
	}
	return nil
}

// Members returns the number of distinct servers in the cluster.
func (cl *Cluster) Members() int { return len(cl.v.Load().mbrs) }

// MemberAddrs returns the distinct member addresses under the current
// view, in first-appearance order.
func (cl *Cluster) MemberAddrs() []string {
	v := cl.v.Load()
	out := make([]string, len(v.mbrs))
	for i, m := range v.mbrs {
		out[i] = m.addr
	}
	return out
}

// Map returns the cluster's current partition map (immutable; live
// migration replaces it).
func (cl *Cluster) Map() *partition.Map { return cl.v.Load().pmap }

// Addrs returns the serving address per owner index under the current
// view.
func (cl *Cluster) Addrs() []string { return append([]string(nil), cl.v.Load().addrs...) }

// RPCs sums the requests sent across all member connections, including
// connections retired by a redial.
func (cl *Cluster) RPCs() int64 {
	cl.cmu.Lock()
	defer cl.cmu.Unlock()
	n := cl.retiredRPCs
	for _, c := range cl.conns {
		n += c.RPCs()
	}
	return n
}

// Close closes every member connection. The servers themselves are not
// owned by the cluster and keep running.
func (cl *Cluster) Close() error {
	cl.stopMonitor()
	cl.StopRebalancer()
	cl.cmu.Lock()
	conns := cl.conns
	cl.conns = nil
	cl.cmu.Unlock()
	var first error
	for _, c := range conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// opRetries bounds NotOwner re-routing per operation; each retry follows
// an adopted newer map or a short pause (the window between a range
// leaving its old home and landing at its new one), so a retry budget
// this size outlasts any single migration.
const opRetries = 16

// retryPause is the wait before retrying when no newer map was learned.
const retryPause = 2 * time.Millisecond

// adopt installs a newer map learned from a NotOwner reply or a
// MapUpdate response. peers gives the serving address per owner index;
// when the reply omitted them (a legacy gate), the current addresses
// are reused if the owner count still matches — otherwise the map
// cannot be placed and is ignored (the next NotOwner bounce carries the
// full identity).
func (cl *Cluster) adopt(epoch, version int64, bounds, peers []string) {
	next, err := partition.NewEpochVersioned(epoch, version, bounds...)
	if err != nil {
		return
	}
	cl.noteEpoch(epoch)
	for {
		cur := cl.v.Load()
		if !next.NewerThan(cur.pmap.Epoch(), cur.pmap.Version()) {
			return
		}
		addrs := peers
		if len(addrs) != next.Servers() {
			if len(cur.addrs) != next.Servers() {
				return
			}
			addrs = cur.addrs
		}
		nv, err := newView(next, addrs)
		if err != nil {
			return
		}
		if cl.v.CompareAndSwap(cur, nv) {
			return
		}
	}
}

// adoptView installs a view this client itself published.
func (cl *Cluster) adoptView(nv *view) {
	cl.noteEpoch(nv.pmap.Epoch())
	for {
		cur := cl.v.Load()
		if !nv.pmap.NewerThan(cur.pmap.Epoch(), cur.pmap.Version()) {
			return
		}
		if cl.v.CompareAndSwap(cur, nv) {
			return
		}
	}
}

// failPause is the minimum wait before retrying an operation that
// failed because its member was unreachable. When an automatic failure
// detector is configured, New scales the actual pause (Cluster.
// downPause) from FailoverInterval × FailoverMisses so the full retry
// budget outlasts detection plus repair — fixed constants would
// exhaust in under half a second while a production detector is still
// counting misses.
const failPause = 30 * time.Millisecond

// retryOp handles one routed-operation failure and reports whether the
// caller should retry. A NotOwner bounce adopts the newer map it
// carries and retries — immediately when the routing map changed, after
// a short pause otherwise (the range is mid-transfer, or a lagging
// server has not yet seen our map). An unreachable member retries after
// a longer pause: the failure detector needs time to confirm the death
// and publish a repaired map that routes around it.
func (cl *Cluster) retryOp(ctx context.Context, err error, attempt int) bool {
	if attempt >= opRetries-1 {
		return false
	}
	var noe *client.NotOwnerError
	if errors.As(err, &noe) {
		before := cl.v.Load().pmap
		cl.adopt(noe.Epoch, noe.Version, noe.Bounds, noe.Peers)
		after := cl.v.Load().pmap
		if after.Epoch() == before.Epoch() && after.Version() == before.Version() {
			return cl.pause(ctx, retryPause)
		}
		return true
	}
	if client.IsUnavailable(err) {
		return cl.pause(ctx, cl.downPause)
	}
	return false
}

// pause sleeps for d unless ctx ends first, reporting whether to keep
// going.
func (cl *Cluster) pause(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// wrapDown marks an exhausted unreachable-member failure with the
// ErrMemberDown sentinel so callers can match it without knowing the
// transport error's concrete type. Other errors pass through.
func wrapDown(addr string, err error) error {
	if err == nil || !client.IsUnavailable(err) {
		return err
	}
	if addr != "" {
		return fmt.Errorf("cluster: member %s: %w: %v", addr, perrs.ErrMemberDown, err)
	}
	return fmt.Errorf("cluster: %w: %v", perrs.ErrMemberDown, err)
}

// doKey sends a point operation to key's home server, re-routing and
// retrying when a live migration moved the key (NotOwner) or its member
// died (the retry budget spans an automatic failover).
func (cl *Cluster) doKey(ctx context.Context, key string, m *rpc.Message) (*rpc.Message, error) {
	for attempt := 0; ; attempt++ {
		addr := cl.v.Load().ownerAddr(key)
		r, err := cl.do(ctx, addr, m)
		if err == nil || !cl.retryOp(ctx, err, attempt) {
			return r, wrapDown(addr, err)
		}
	}
}

// Get returns the value under key from its home server.
func (cl *Cluster) Get(ctx context.Context, key string) (string, bool, error) {
	m, err := cl.doKey(ctx, key, &rpc.Message{Type: rpc.MsgGet, Key: key})
	if err != nil {
		return "", false, err
	}
	return m.Value, m.Found, nil
}

// Put stores value under key at its home server.
func (cl *Cluster) Put(ctx context.Context, key, value string) error {
	_, err := cl.doKey(ctx, key, &rpc.Message{Type: rpc.MsgPut, Key: key, Value: value})
	return err
}

// Remove deletes key at its home server, reporting whether it existed.
func (cl *Cluster) Remove(ctx context.Context, key string) (bool, error) {
	m, err := cl.doKey(ctx, key, &rpc.Message{Type: rpc.MsgRemove, Key: key})
	if err != nil {
		return false, err
	}
	return m.Found, nil
}

// Scan returns up to limit (0 = all) pairs in [lo, hi), splitting the
// range by home server, fetching the pieces concurrently, and
// concatenating the sorted pieces in key order — shard.Pool's fan-out
// on the wire. Limited scans visit pieces sequentially with the
// remaining limit, like the pool, so servers whose rows would be
// truncated anyway are not forced to materialize joins. A piece whose
// range migrated mid-scan fails with NotOwner; the scan adopts the
// newer map, re-splits, and retries whole, so no piece is ever served
// by a server that owns only part of it.
func (cl *Cluster) Scan(ctx context.Context, lo, hi string, limit int) ([]core.KV, error) {
	for attempt := 0; ; attempt++ {
		kvs, err := cl.scanOnce(ctx, lo, hi, limit)
		if err == nil || !cl.retryOp(ctx, err, attempt) {
			return kvs, wrapDown("", err)
		}
	}
}

// scanOnce runs one scan attempt against a snapshot of the map.
func (cl *Cluster) scanOnce(ctx context.Context, lo, hi string, limit int) ([]core.KV, error) {
	v := cl.v.Load()
	pieces := v.pmap.Split(keys.Range{Lo: lo, Hi: hi})
	switch {
	case len(pieces) == 0:
		return nil, nil
	case len(pieces) == 1:
		return cl.scanPiece(ctx, v, pieces[0], limit)
	case limit > 0:
		var out []core.KV
		for _, pc := range pieces {
			kvs, err := cl.scanPiece(ctx, v, pc, limit-len(out))
			if err != nil {
				return nil, err
			}
			out = append(out, kvs...)
			if len(out) >= limit {
				break
			}
		}
		return out, nil
	}
	results := make([][]core.KV, len(pieces))
	errs := make([]error, len(pieces))
	var wg sync.WaitGroup
	for i, pc := range pieces {
		i, pc := i, pc
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = cl.scanPiece(ctx, v, pc, limit)
		}()
	}
	wg.Wait()
	var out []core.KV
	for i, r := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, r...)
	}
	return out, nil
}

func (cl *Cluster) scanPiece(ctx context.Context, v *view, pc partition.Shard, limit int) ([]core.KV, error) {
	m, err := cl.do(ctx, v.addrs[pc.Owner], &rpc.Message{Type: rpc.MsgScan, Lo: pc.R.Lo, Hi: pc.R.Hi, Limit: limit})
	if err != nil {
		return nil, err
	}
	return m.KVs, nil
}

// Count returns the number of keys in [lo, hi), summing concurrent
// per-server counts. Like Scan, it re-splits and retries whole when a
// piece migrated mid-count.
func (cl *Cluster) Count(ctx context.Context, lo, hi string) (int64, error) {
	for attempt := 0; ; attempt++ {
		n, err := cl.countOnce(ctx, lo, hi)
		if err == nil || !cl.retryOp(ctx, err, attempt) {
			return n, wrapDown("", err)
		}
	}
}

func (cl *Cluster) countOnce(ctx context.Context, lo, hi string) (int64, error) {
	v := cl.v.Load()
	pieces := v.pmap.Split(keys.Range{Lo: lo, Hi: hi})
	counts := make([]int64, len(pieces))
	errs := make([]error, len(pieces))
	var wg sync.WaitGroup
	for i, pc := range pieces {
		i, pc := i, pc
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := cl.do(ctx, v.addrs[pc.Owner], &rpc.Message{Type: rpc.MsgCount, Lo: pc.R.Lo, Hi: pc.R.Hi})
			if err != nil {
				errs[i] = err
				return
			}
			counts[i] = m.Count
		}()
	}
	wg.Wait()
	var total int64
	for i, n := range counts {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += n
	}
	return total, nil
}

// GetBatch fetches many keys with one pipelined round per server: all
// requests are sent before any reply is awaited. Results align with
// keys; Found distinguishes missing keys. Elements whose key migrated
// mid-batch (NotOwner), or whose member died, are retried individually
// against the adopted map — like independent doKey callers.
func (cl *Cluster) GetBatch(ctx context.Context, getKeys []string) ([]core.Lookup, error) {
	v := cl.v.Load()
	futs := make([]*client.Future, len(getKeys))
	for i, k := range getKeys {
		c, err := cl.conn(ctx, v.ownerAddr(k))
		if err != nil {
			continue // a dead member's elements retry individually below
		}
		futs[i] = c.Send(ctx, &rpc.Message{Type: rpc.MsgGet, Key: k})
	}
	out := make([]core.Lookup, len(getKeys))
	var firstErr error
	for i, f := range futs {
		var m *rpc.Message
		var err error
		if f != nil {
			m, err = client.ReplyWaitCtx(ctx, f)
		} else {
			err = client.ErrClosed
		}
		if err != nil {
			var noe *client.NotOwnerError
			if errors.As(err, &noe) {
				cl.adopt(noe.Epoch, noe.Version, noe.Bounds, noe.Peers)
			}
			if noe != nil || client.IsUnavailable(err) {
				m, err = cl.doKey(ctx, getKeys[i], &rpc.Message{Type: rpc.MsgGet, Key: getKeys[i]})
			}
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
		}
		out[i] = core.Lookup{Value: m.Value, Found: m.Found}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// PutBatch stores many pairs with one pipelined round per server.
// Writes to the same server apply in slice order; writes to different
// servers are concurrent, like independent callers. Pairs whose key
// migrated mid-batch (NotOwner), or whose member died, are retried
// individually against the adopted map — a retried write can land after
// a later same-key write in the batch, the same last-writer-wins race
// as two independent callers.
func (cl *Cluster) PutBatch(ctx context.Context, pairs []core.KV) error {
	v := cl.v.Load()
	futs := make([]*client.Future, len(pairs))
	for i, kv := range pairs {
		c, err := cl.conn(ctx, v.ownerAddr(kv.Key))
		if err != nil {
			continue // a dead member's elements retry individually below
		}
		futs[i] = c.Send(ctx, &rpc.Message{Type: rpc.MsgPut, Key: kv.Key, Value: kv.Value})
	}
	var firstErr error
	for i, f := range futs {
		var err error
		if f != nil {
			_, err = client.ReplyWaitCtx(ctx, f)
		} else {
			err = client.ErrClosed
		}
		if err != nil {
			var noe *client.NotOwnerError
			if errors.As(err, &noe) {
				cl.adopt(noe.Epoch, noe.Version, noe.Bounds, noe.Peers)
			}
			if noe != nil || client.IsUnavailable(err) {
				_, err = cl.doKey(ctx, pairs[i].Key, &rpc.Message{Type: rpc.MsgPut, Key: pairs[i].Key, Value: pairs[i].Value})
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// ScanBatch runs several range scans concurrently, each with its own
// limit budget, returning results aligned with ranges.
func (cl *Cluster) ScanBatch(ctx context.Context, ranges []keys.Range, limit int) ([][]core.KV, error) {
	out := make([][]core.KV, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i], errs[i] = cl.Scan(ctx, r.Lo, r.Hi, limit)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Install parses joins, wires the subscription mesh for their base
// source tables, and installs the joins on every member. Wiring comes
// first so no member computes a join before its remote sources are
// loader-backed.
func (cl *Cluster) Install(ctx context.Context, text string) error {
	js, err := join.ParseAll(text)
	if err != nil {
		return err
	}
	cl.imu.Lock()
	defer cl.imu.Unlock()
	all := append(append([]*join.Join(nil), cl.installed...), js...)
	tables := sourceTables(all)
	v := cl.v.Load()
	bounds := v.pmap.Bounds()
	for _, m := range v.mbrs {
		c, err := cl.conn(ctx, m.addr)
		if err != nil {
			return fmt.Errorf("cluster: wiring %s: %w", m.addr, err)
		}
		if err := c.ConnectPeers(ctx, bounds, v.addrs, m.owners, tables); err != nil {
			return fmt.Errorf("cluster: wiring %s: %w", m.addr, err)
		}
	}
	for _, m := range v.mbrs {
		if _, err := cl.do(ctx, m.addr, &rpc.Message{Type: rpc.MsgAddJoin, Text: text}); err != nil {
			return fmt.Errorf("cluster: installing joins on %s: %w", m.addr, err)
		}
	}
	cl.installed = all
	cl.texts = append(cl.texts, text)
	// Re-seed replica assignments: the replicated table set just grew.
	// Best-effort — every later map publish re-sends the assignment.
	if cl.copies > 1 {
		cl.publishReplicas(ctx, v, tables)
	}
	return nil
}

// joinState snapshots the installed joins for a joining member: the
// concatenated install texts (replayed verbatim, so join indexes agree
// across members) and the base source tables to wire. The cluster
// itself is the authority — a coordinator that never called Install
// (a fresh pequod-cli run driving `add`) asks the member at from for
// the join set its pool reports in stats; the client-local bookkeeping
// is the fallback when that member is unreachable.
func (cl *Cluster) joinState(ctx context.Context, from string) (text string, tables []string) {
	if c, err := cl.conn(ctx, from); err == nil {
		if st, err := c.StatSnapshot(ctx); err == nil && st.Joins != "" {
			if js, err := join.ParseAll(st.Joins); err == nil {
				return st.Joins, sourceTables(js)
			}
		}
	}
	cl.imu.Lock()
	defer cl.imu.Unlock()
	for i, t := range cl.texts {
		if i > 0 {
			text += "\n"
		}
		text += t
	}
	return text, sourceTables(cl.installed)
}

// sourceTables returns the base source tables of a join set: sources
// that are not themselves some join's output (those are computed
// locally, recursively, wherever they are needed) — the same rule
// shard.Pool uses to pick its forwarded tables.
func sourceTables(js []*join.Join) []string {
	outputs := map[string]bool{}
	for _, j := range js {
		outputs[j.Out.Table()] = true
	}
	seen := map[string]bool{}
	var tables []string
	for _, j := range js {
		for _, t := range j.SourceTables() {
			if !outputs[t] && !seen[t] {
				seen[t] = true
				tables = append(tables, t)
			}
		}
	}
	return tables
}

// Stats sums the engine counters across all members. A member that
// cannot be reached does not zero the aggregate: the counters collected
// from the live members are returned alongside the first failure, so a
// monitoring caller still sees the surviving cluster's activity.
func (cl *Cluster) Stats(ctx context.Context) (core.Stats, error) {
	var total core.Stats
	var firstErr error
	for _, m := range cl.v.Load().mbrs {
		c, err := cl.conn(ctx, m.addr)
		if err == nil {
			var st core.Stats
			st, err = c.Stats(ctx)
			if err == nil {
				total.Add(st)
				continue
			}
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("cluster: stats from %s: %w", m.addr, wrapDown("", err))
		}
	}
	return total, firstErr
}

// Quiesce blocks until replication across the cluster has settled: each
// member settles its in-process forwarding, drains its outbound
// subscription pushes, and fences the pushes in flight toward it (see
// client.Quiesce). After it returns, reads anywhere in the cluster see
// every write acknowledged before the call.
func (cl *Cluster) Quiesce(ctx context.Context) error {
	mbrs := cl.v.Load().mbrs
	errs := make([]error, len(mbrs))
	var wg sync.WaitGroup
	for i, m := range mbrs {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := cl.conn(ctx, m.addr)
			if err == nil {
				err = c.Quiesce(ctx)
			}
			if err != nil {
				errs[i] = fmt.Errorf("cluster: quiesce at %s: %w", m.addr, wrapDown("", err))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SetSubtableDepth marks a §4.1 natural key boundary on every member.
func (cl *Cluster) SetSubtableDepth(ctx context.Context, table string, depth int) error {
	for _, m := range cl.v.Load().mbrs {
		if _, err := cl.do(ctx, m.addr, &rpc.Message{Type: rpc.MsgSetSubtable, Table: table, Depth: depth}); err != nil {
			return err
		}
	}
	return nil
}
