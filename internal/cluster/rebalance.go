package cluster

// Client-driven cluster rebalancing: the cross-server twin of the shard
// pool's in-process rebalancer (internal/shard/rebalance.go), built on
// the same knobs and hysteresis. The cluster client polls every
// member's stat RPC for its cumulative load units and recent key
// samples, folds the per-member deltas into an EWMA, and when one
// server runs persistently hot migrates a slice of its range — through
// MoveBound's live transfer protocol — to the cooler server on the
// other side of a partition bound. No server-side coordinator exists:
// any client (or the pequod-cli rebalance subcommand) can drive it, and
// concurrent coordinators serialize through map version conflicts.

import (
	"context"
	"sort"
	"sync"
	"time"

	"pequod/internal/shard"
)

// Rebalance re-exports the shard rebalancer's knob set: the same
// Interval/Ratio/MinOps/HalfLife tuning applies at cluster scope.
type Rebalance = shard.Rebalance

// hotPersist and cooldownTicks mirror the in-process rebalancer's
// hysteresis: a server must run hot for hotPersist consecutive ticks
// before a move triggers, and after a move the rebalancer sits out
// cooldownTicks ticks. Cluster moves are costlier than in-process ones
// (a network transfer plus a map publish), so thrash damping matters
// even more here.
const (
	hotPersist    = 2
	cooldownTicks = 5
)

// minSamples is the fewest in-range key samples a bound pick trusts.
const minSamples = 16

// rebState is the cluster rebalancer's bookkeeping. Load history is
// keyed by member *address*, so a membership change (a joining or
// draining server, owner indexes shifting) neither loses history for
// the members that stay nor misattributes it: a fresh member simply
// primes at zero and earns its EWMA over the next ticks.
type rebState struct {
	mu         sync.Mutex
	running    bool
	stop       chan struct{}
	done       chan struct{}
	cfg        Rebalance
	ewma       map[string]float64 // per member address
	last       map[string]int64   // per member address, previous cumulative units
	migrations int64
	hotStreak  int
	cooldown   int
}

// RebalancerStats snapshots the cluster rebalancer's activity.
type RebalancerStats struct {
	Enabled    bool      `json:"enabled"`
	Migrations int64     `json:"migrations"`
	Epoch      int64     `json:"epoch"`
	Version    int64     `json:"version"`
	Bounds     []string  `json:"bounds"`
	Addrs      []string  `json:"addrs"` // distinct members, first-appearance order
	Loads      []float64 `json:"loads"` // per-member EWMA load, aligned with Addrs
}

// RebalancerStats returns the rebalancer's current view.
func (cl *Cluster) RebalancerStats() RebalancerStats {
	cl.reb.mu.Lock()
	defer cl.reb.mu.Unlock()
	v := cl.v.Load()
	st := RebalancerStats{
		Enabled:    cl.reb.running,
		Migrations: cl.reb.migrations,
		Epoch:      v.pmap.Epoch(),
		Version:    v.pmap.Version(),
		Bounds:     v.pmap.Bounds(),
	}
	for _, m := range v.mbrs {
		st.Addrs = append(st.Addrs, m.addr)
		st.Loads = append(st.Loads, cl.reb.ewma[m.addr])
	}
	return st
}

// StartRebalancer launches the background rebalance loop (idempotent:
// a second start while running is a no-op). Stop it with StopRebalancer
// or Close.
func (cl *Cluster) StartRebalancer(cfg Rebalance) {
	cfg = withDefaults(cfg)
	cl.reb.mu.Lock()
	if cl.reb.running {
		cl.reb.mu.Unlock()
		return
	}
	cl.reb.running = true
	cl.reb.cfg = cfg
	cl.reb.stop = make(chan struct{})
	cl.reb.done = make(chan struct{})
	stop, done := cl.reb.stop, cl.reb.done
	cl.reb.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), cfg.Interval*4+time.Second)
				cl.RebalanceTick(ctx)
				cancel()
			}
		}
	}()
}

// SetRebalanceConfig sets the knobs RebalanceTick uses without starting
// the background loop, for harnesses (tests, pequod-cli rebalance) that
// drive ticks themselves.
func (cl *Cluster) SetRebalanceConfig(cfg Rebalance) {
	cl.reb.mu.Lock()
	cl.reb.cfg = cfg
	cl.reb.mu.Unlock()
}

// StopRebalancer stops the background loop and waits for it
// (idempotent).
func (cl *Cluster) StopRebalancer() {
	cl.reb.mu.Lock()
	running := cl.reb.running
	cl.reb.running = false
	stop, done := cl.reb.stop, cl.reb.done
	cl.reb.mu.Unlock()
	if running {
		close(stop)
		<-done
	}
}

// withDefaults mirrors shard.Rebalance's defaults with a cluster-scale
// sampling interval (stat polls cost a network round per member).
func withDefaults(r Rebalance) Rebalance {
	if r.Interval <= 0 {
		r.Interval = time.Second
	}
	if r.Ratio <= 1 {
		r.Ratio = 1.5
	}
	if r.MinOps <= 0 {
		r.MinOps = 128
	}
	if r.HalfLife <= 0 || r.HalfLife > 1 {
		r.HalfLife = 0.5
	}
	return r
}

// RebalanceTick takes one load sample across the members and migrates
// at most one range, reporting whether a migration ran. The background
// loop calls it each interval; tests and the pequod-cli rebalance
// subcommand drive it directly. Members that joined since the last
// tick prime at zero load; members that drained fall out of the
// bookkeeping.
func (cl *Cluster) RebalanceTick(ctx context.Context) (bool, error) {
	loads, err := cl.MemberLoads(ctx)
	if err != nil {
		return false, err
	}
	n := len(loads)
	if n == 0 {
		return false, nil
	}

	cl.reb.mu.Lock()
	cfg := withDefaults(cl.reb.cfg)
	if cl.reb.ewma == nil {
		cl.reb.ewma = make(map[string]float64)
		cl.reb.last = make(map[string]int64)
	}
	var raw int64
	hot, total := "", 0.0
	ewma := make(map[string]float64, n)
	current := make(map[string]bool, n)
	for _, ml := range loads {
		current[ml.Addr] = true
		prev, seen := cl.reb.last[ml.Addr]
		d := ml.Units - prev
		cl.reb.last[ml.Addr] = ml.Units
		if !seen {
			d = 0 // first poll of this member: cumulative counter, not a delta
		}
		raw += d
		cl.reb.ewma[ml.Addr] = (1-cfg.HalfLife)*cl.reb.ewma[ml.Addr] + cfg.HalfLife*float64(d)
		ewma[ml.Addr] = cl.reb.ewma[ml.Addr]
		total += ewma[ml.Addr]
		if hot == "" || ewma[ml.Addr] > ewma[hot] {
			hot = ml.Addr
		}
	}
	for addr := range cl.reb.ewma {
		if !current[addr] {
			delete(cl.reb.ewma, addr) // drained out
			delete(cl.reb.last, addr)
		}
	}
	mean := total / float64(n)
	idle := raw < cfg.MinOps || total == 0
	over := !idle && ewma[hot] > cfg.Ratio*mean
	if cl.reb.cooldown > 0 {
		cl.reb.cooldown--
		over = false
	} else if over {
		cl.reb.hotStreak++
		over = cl.reb.hotStreak >= hotPersist
	} else {
		cl.reb.hotStreak = 0
	}
	cl.reb.mu.Unlock()

	if !over {
		return false, nil
	}

	var hotSamples []string
	for _, ml := range loads {
		if ml.Addr == hot {
			hotSamples = ml.Samples
		}
	}
	boundIdx, q, ok := cl.pickMove(hot, ewma, hotSamples)
	if !ok {
		return false, nil
	}
	if err := cl.MoveBound(ctx, boundIdx, q); err != nil {
		return false, err
	}
	cl.reb.mu.Lock()
	cl.reb.migrations++
	cl.reb.hotStreak = 0
	cl.reb.cooldown = cooldownTicks
	cl.reb.mu.Unlock()
	return true, nil
}

// pickMove chooses the partition bound to move and its new split point:
// among the bounds separating the hot member from a cooler one, the one
// with the coolest neighbor, split at the load-weighted quantile of the
// hot member's key samples that sheds half the imbalance. A member that
// just joined (EWMA near zero) is the coolest neighbor by construction,
// so the rebalancer naturally sheds hot ranges toward it. Returns false
// when no eligible bound exists or too few samples fall in the hot
// range to trust a quantile.
func (cl *Cluster) pickMove(hot string, ewma map[string]float64, samples []string) (int, string, bool) {
	v := cl.v.Load()
	m := v.pmap
	type cand struct {
		boundIdx int
		hotOwner int    // owner index on the hot member's side of the bound
		nb       string // neighbor member address
	}
	best, bestLoad := cand{}, 0.0
	found := false
	for b := 0; b < m.Servers()-1; b++ {
		l, r := v.addrs[b], v.addrs[b+1]
		if l == r {
			continue
		}
		if l == hot && ewma[r] < ewma[hot] {
			if !found || ewma[r] < bestLoad {
				best, bestLoad, found = cand{b, b, r}, ewma[r], true
			}
		}
		if r == hot && ewma[l] < ewma[hot] {
			if !found || ewma[l] < bestLoad {
				best, bestLoad, found = cand{b, b + 1, l}, ewma[l], true
			}
		}
	}
	if !found || ewma[hot] == 0 {
		return 0, "", false
	}
	hr := ownerRange(m, best.hotOwner)
	var in []string
	for _, k := range samples {
		if hr.Contains(k) {
			in = append(in, k)
		}
	}
	if len(in) < minSamples {
		return 0, "", false
	}
	sort.Strings(in)
	frac := (ewma[hot] - ewma[best.nb]) / (2 * ewma[hot])
	if frac <= 0 {
		return 0, "", false
	}
	var q string
	if best.hotOwner == best.boundIdx {
		// Hot side is left of the bound: lower the bound to the (1-frac)
		// quantile, shedding the top slice rightward.
		q = in[clampIndex(int(float64(len(in))*(1-frac)), len(in))]
	} else {
		// Hot side is right: raise the bound to the frac quantile,
		// shedding the bottom slice leftward.
		q = in[clampIndex(int(float64(len(in))*frac), len(in))]
	}
	// The quantile can land on the current bound (a previous move's
	// split point) or collide with a neighbor; a dry run against the map
	// turns that into "no move this tick" instead of an error.
	if _, err := m.MoveBound(best.boundIdx, q); err != nil {
		return 0, "", false
	}
	return best.boundIdx, q, true
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
