package cluster

// Per-range replication and automatic failover, coordinator side.
//
// Replication piggybacks on the machinery the cluster already has:
// after every map publish the coordinator sends each member a
// MsgReplicate carrying the view plus two scalars — the total copies
// per range and the base tables to mirror. Which member holds which
// replica is never listed: both sides derive it from the same ring walk
// (partition.ReplicaAddrs over the view's distinct members), so the
// coordinator and the members cannot disagree about placement. Members
// keep their replicas fresh through the ordinary subscription feed
// protocol against each range's owner (internal/server/replica.go).
//
// Failover closes the loop:
//
//	probe    Health / the monitor ping every member; a member that
//	         misses failMisses consecutive probes is confirmed dead.
//	repair   Repair substitutes each dead owner's address with the
//	         surviving ring successor — the member already holding its
//	         replica — and publishes a same-bounds epoch successor.
//	promote  Each survivor adopts the repaired map through the normal
//	         MapUpdate path; the heir's ownership gate flips under its
//	         shard locks and its warm replica rows become served data
//	         (clustergate.go's promotion backfill re-seeds computed
//	         joins from them). Clients re-route through the published
//	         map or its NotOwner echoes; in-flight operations ride the
//	         unavailable-retry budget (retryOp) across the outage.
//
// Repair mints epochs like any other coordination here, so a repair
// racing a migration or another coordinator's repair serializes through
// the epoch-ordered map versions — exactly one successor wins and the
// losers re-propose against it.

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"pequod/internal/client"
	"pequod/internal/partition"
	"pequod/internal/perrs"
	"pequod/internal/rpc"
)

// probeTimeout bounds one health probe: long enough for a loaded
// member to answer a ping, short enough that a wedged one is noticed
// within a few detector ticks.
const probeTimeout = 250 * time.Millisecond

// repairTimeout bounds one automatic repair round (probe + publish).
const repairTimeout = 10 * time.Second

// MemberHealth is one member's row in a Health report.
type MemberHealth struct {
	// Addr is the member's serving address; ID its durable identity
	// (the server's configured ID, surviving restarts and address
	// reuse), known only while it answers.
	Addr string `json:"addr"`
	ID   string `json:"id,omitempty"`
	// Alive reports whether the member answered within the probe
	// timeout; Err carries the failure otherwise.
	Alive bool   `json:"alive"`
	Err   string `json:"err,omitempty"`
	// Owners is the number of partition ranges the member serves under
	// the current map; Replicas the number of ranges it holds warm
	// copies of for other members.
	Owners   int `json:"owners"`
	Replicas int `json:"replicas"`
	// LagUS is the member's forwarded-write queue lag in microseconds
	// (the age of the oldest accepted-but-unapplied replicated change);
	// StaleSpans/StaleOldUS its deferred-maintenance backlog — the spans
	// a bounded read (WithFreshness) trades against its budget, and the
	// age of the oldest. An operator picks read budgets above the
	// steady-state StaleOldUS to get the bounded fast path, and watches
	// for a member whose lag outgrows every budget in use.
	LagUS      int64 `json:"lag_us,omitempty"`
	StaleSpans int   `json:"stale_spans,omitempty"`
	StaleOldUS int64 `json:"stale_old_us,omitempty"`
	// Durable reports whether the member runs with a durable range
	// store (a -data-dir); when it does, LogLagBytes is how much logged
	// data is still waiting for its batched fsync and SnapshotAgeMS how
	// old the last durable snapshot is (-1 until the first one lands) —
	// together, the member's worst-case loss and replay window.
	Durable       bool  `json:"durable,omitempty"`
	LogLagBytes   int64 `json:"log_lag_bytes,omitempty"`
	SnapshotAgeMS int64 `json:"snapshot_age_ms,omitempty"`
	// Lineage damage surfaces, durable members only. TornTail means the
	// last restart replayed over the expected crash-window tear — a
	// healthy post-crash recovery. CorruptSegments/CorruptSnapshots
	// count lineage files where replay or the background scrub found
	// mid-lineage damage: fsynced data was lost there, and the member's
	// ranges should be re-synced (or re-replicated) while live copies
	// exist. DroppedRecords counts log records abandoned after flush
	// retries exhausted; PendingRecords counts records still riding a
	// flush retry.
	TornTail         bool  `json:"torn_tail,omitempty"`
	CorruptSegments  int   `json:"corrupt_segments,omitempty"`
	CorruptSnapshots int   `json:"corrupt_snapshots,omitempty"`
	DroppedRecords   int64 `json:"dropped_records,omitempty"`
	PendingRecords   int64 `json:"pending_records,omitempty"`
}

// Health probes every member concurrently and reports each one's
// liveness, identity, and replica footprint. It never fails as a whole:
// an unreachable member is a row with Alive=false, which is the point
// of asking.
func (cl *Cluster) Health(ctx context.Context) []MemberHealth {
	v := cl.v.Load()
	out := make([]MemberHealth, len(v.mbrs))
	var wg sync.WaitGroup
	for i, m := range v.mbrs {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := MemberHealth{Addr: m.addr, Owners: len(m.owners)}
			pctx, cancel := context.WithTimeout(ctx, probeTimeout)
			defer cancel()
			c, err := cl.conn(pctx, m.addr)
			if err == nil {
				var st *client.StatSnapshot
				if st, err = c.StatSnapshot(pctx); err == nil {
					h.Alive = true
					h.ID = st.ID
					h.LagUS = st.Staleness.LagUS
					h.StaleSpans = st.Staleness.DebtSpans
					h.StaleOldUS = st.Staleness.DebtOldUS
					if st.Cluster != nil {
						h.Replicas = st.Cluster.Replicas
					}
					if st.Durable != nil {
						h.Durable = true
						h.LogLagBytes = st.Durable.LagBytes
						h.SnapshotAgeMS = st.Durable.SnapshotAgeMS
						h.CorruptSegments = len(st.Durable.CorruptSegments)
						h.CorruptSnapshots = len(st.Durable.CorruptSnapshots)
						h.DroppedRecords = st.Durable.Dropped
						h.PendingRecords = st.Durable.PendingRecords
						if r := st.Durable.Recovery; r != nil {
							h.TornTail = r.Torn
						}
					}
				}
			}
			if err != nil {
				h.Err = err.Error()
			}
			out[i] = h
		}()
	}
	wg.Wait()
	return out
}

// Snapshot asks every member to write a durable snapshot now — before
// planned maintenance, an operator bounds every member's restart replay
// to the log written after this call. Members run their snapshots
// concurrently; each one's log truncates on success. Memory-only
// members (no -data-dir) fail theirs, and the joined error names each
// member that could not comply while the rest still snapshot.
func (cl *Cluster) Snapshot(ctx context.Context) error {
	v := cl.v.Load()
	errs := make([]error, len(v.mbrs))
	var wg sync.WaitGroup
	for i, m := range v.mbrs {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := cl.conn(ctx, m.addr)
			if err == nil {
				_, err = c.SnapshotNow(ctx)
			}
			if err != nil {
				errs[i] = fmt.Errorf("cluster: snapshot at %s: %w", m.addr, err)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// probe pings one member within the probe timeout.
func (cl *Cluster) probe(ctx context.Context, addr string) error {
	pctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	c, err := cl.conn(pctx, addr)
	if err != nil {
		return err
	}
	return c.Ping(pctx)
}

// confirmDead decides whether Repair may remove a member: one missed
// ping must not repair out a merely slow or GC-paused member that
// would keep accepting writes from clients holding the old map, so
// death requires failMisses consecutive probe failures — the same
// threshold the automatic detector applies across its ticks — and any
// answered probe confirms life immediately. Returns nil for a live
// member, the last probe error for a confirmed-dead one.
func (cl *Cluster) confirmDead(ctx context.Context, addr string) error {
	var err error
	for i := 0; i < cl.failMisses; i++ {
		if i > 0 && !cl.pause(ctx, probeTimeout/2) {
			return err
		}
		if err = cl.probe(ctx, addr); err == nil {
			return nil
		}
	}
	return err
}

// Repair probes every member and, if some are confirmed unreachable
// (failMisses consecutive missed probes each — a single missed ping
// never removes a member), publishes a same-bounds successor map that
// reassigns each dead member's ranges to a surviving replica holder
// (the live ring successor — the member the shared placement walk put
// the replica on). Survivors adopt the map, the heirs' gates promote
// their warm replicas to served data, and the repaired addresses are
// returned. With every member healthy it is a no-op. Repairing a
// cluster with no survivors fails with ErrMemberDown; nothing can be
// promoted.
func (cl *Cluster) Repair(ctx context.Context) ([]string, error) {
	cl.mvmu.Lock()
	defer cl.mvmu.Unlock()
	v := cl.v.Load()
	probeErrs := make([]error, len(v.mbrs))
	var wg sync.WaitGroup
	for i, m := range v.mbrs {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			probeErrs[i] = cl.confirmDead(ctx, m.addr)
		}()
	}
	wg.Wait()
	dead := make(map[string]bool)
	var deadAddrs []string
	for i, m := range v.mbrs {
		if probeErrs[i] != nil {
			dead[m.addr] = true
			deadAddrs = append(deadAddrs, m.addr)
		}
	}
	if len(deadAddrs) == 0 {
		return nil, nil
	}
	if len(deadAddrs) == len(v.mbrs) {
		return nil, fmt.Errorf("cluster: repair: all %d members unreachable: %w", len(v.mbrs), perrs.ErrMemberDown)
	}
	// Substitute each dead owner with its first live ring successor.
	// ReplicaAddrs over the full ring yields every other member starting
	// just past the owner; the first copies-1 of them are exactly where
	// the replicas live, so walking in that order hands the range to a
	// member that already holds it warm whenever one survives.
	heirs := make([]string, len(v.addrs))
	type coldPromo struct {
		owner int
		heir  string
	}
	var cold []coldPromo
	for o, a := range v.addrs {
		if !dead[a] {
			heirs[o] = a
			continue
		}
		for i, s := range partition.ReplicaAddrs(v.addrs, o, len(v.mbrs)) {
			if dead[s] {
				continue
			}
			heirs[o] = s
			if i >= cl.copies-1 {
				// The heir is past the first copies-1 successors — every
				// member actually holding a warm copy of this range died
				// with its owner. Last resort: after the publish, ask the
				// heir to rebuild the range from its own durable store
				// (rows from an earlier replica assignment or ownership
				// stint linger there until its next snapshot).
				log.Printf("pequod cluster: repair: range %d (owner %s): no replica holder survives; promoting %s without a warm copy", o, a, s)
				cold = append(cold, coldPromo{owner: o, heir: s})
			}
			break
		}
		if heirs[o] == "" {
			return nil, fmt.Errorf("cluster: repair: no survivor for owner %d (%s): %w", o, a, perrs.ErrMemberDown)
		}
	}
	next, err := partition.NewEpochVersioned(cl.mintEpoch(v.pmap.Epoch()), v.pmap.Version()+1, v.pmap.Bounds()...)
	if err != nil {
		return nil, err
	}
	nv, err := newView(next, heirs)
	if err != nil {
		return nil, err
	}
	// The dead members are not in nv.mbrs, so the publish (and the
	// replica republish riding it) only contacts survivors. Member-side,
	// fences toward a dead peer resolve vacuously — a dead peer owes
	// nothing — and the heirs' gates promote instead of re-fetching.
	if err := cl.publish(ctx, nv, nil); err != nil {
		return deadAddrs, fmt.Errorf("cluster: repair published, but not to every survivor (they converge via NotOwner): %w", err)
	}
	// Cold promotions: the heir owns the range now (the publish landed),
	// so disk-recovered rows restore behind live writes — absent keys
	// only — and whatever its durable lineage still holds comes back
	// instead of nothing. Best-effort: a memory-only heir reports an
	// error and the promotion stays empty, exactly as before.
	for _, cp := range cold {
		r := ownerRange(nv.pmap, cp.owner)
		c, err := cl.conn(ctx, cp.heir)
		if err == nil {
			var n int64
			if n, err = c.RebuildRange(ctx, r.Lo, r.Hi); err == nil {
				log.Printf("pequod cluster: repair: range %d: rebuilt %d rows from %s's durable store", cp.owner, n, cp.heir)
				continue
			}
		}
		log.Printf("pequod cluster: repair: range %d: durable rebuild at %s failed (%v) — acknowledged writes in this range are lost", cp.owner, cp.heir, err)
	}
	// The repaired ranges changed homes, so the replica placement walk
	// lands their copies on new members. The assignment that rode the
	// publish above is one best-effort shot; a member that missed it
	// would leave the repaired ranges a copy short until the next map
	// event, so retry here until every survivor has acknowledged (the
	// monitor's anti-entropy republish backstops a retry budget spent
	// against a flaky member).
	for attempt := 0; cl.copies > 1; attempt++ {
		failed := cl.publishReplicas(ctx, nv, cl.replicaTables())
		if len(failed) == 0 {
			break
		}
		if attempt >= 4 || !cl.pause(ctx, probeTimeout/2) {
			log.Printf("pequod cluster: repair: replica assignment not acknowledged by %v; monitor anti-entropy will converge them", failed)
			break
		}
	}
	// Best-effort fence toward the removed members: a falsely-dead one
	// (slow, paused, briefly partitioned) must learn it owns nothing
	// under the repaired map, or it would keep acknowledging writes from
	// clients still holding the old map — writes silently lost once
	// traffic routes to the heirs. Its gate flips to NotOwner-bouncing
	// everything on adoption; a truly dead member just misses the
	// message.
	var fwg sync.WaitGroup
	for _, a := range deadAddrs {
		a := a
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			fctx, cancel := context.WithTimeout(ctx, probeTimeout)
			defer cancel()
			cl.publishView(fctx, nv, a) //nolint:errcheck // best-effort fence
		}()
	}
	fwg.Wait()
	// Retire the dead members' connections so no later routing decision
	// waits out a connect timeout to an address known to be gone.
	cl.cmu.Lock()
	if cl.conns != nil {
		for _, a := range deadAddrs {
			if c := cl.conns[a]; c != nil {
				cl.retiredRPCs += c.RPCs()
				c.Close()
				delete(cl.conns, a)
			}
		}
	}
	cl.cmu.Unlock()
	return deadAddrs, nil
}

// publishReplicas sends every member of v its replica assignment: the
// view itself, the total copies per range (Limit), and the base tables
// mirrored (empty = whole ranges). Placement is not in the message —
// each member derives the ranges it must hold from the same ring walk
// the coordinator uses (partition.ReplicaAddrs), so the two sides
// cannot disagree. Best-effort: it returns the addresses that did not
// acknowledge (nil when all did) instead of failing — the assignment
// rides every map publish, Repair retries it, and the monitor
// republishes it as anti-entropy, so a missed member converges at
// whichever round reaches it next. Re-applying an assignment a member
// already holds diffs to nothing, which is what makes all three rounds
// safe to overlap. No-op when replication is off or the cluster has a
// single member.
func (cl *Cluster) publishReplicas(ctx context.Context, v *view, tables []string) []string {
	if cl.copies <= 1 || len(v.mbrs) < 2 {
		return nil
	}
	errs := make([]error, len(v.mbrs))
	var wg sync.WaitGroup
	for i, m := range v.mbrs {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = cl.do(ctx, m.addr, &rpc.Message{
				Type:       rpc.MsgReplicate,
				Epoch:      v.pmap.Epoch(),
				MapVersion: v.pmap.Version(),
				Bounds:     v.pmap.Bounds(),
				Peers:      v.addrs,
				Self:       v.ownersOf(m.addr),
				Limit:      cl.copies,
				Tables:     tables,
			})
		}()
	}
	wg.Wait()
	var failed []string
	for i, m := range v.mbrs {
		if errs[i] != nil {
			failed = append(failed, m.addr)
		}
	}
	return failed
}

// replicaTables returns the base tables replication mirrors: the
// installed joins' source tables (computed tables are rebuilt from them
// at promotion), or nil — replicate whole ranges — when no joins are
// installed through this client.
func (cl *Cluster) replicaTables() []string {
	cl.imu.Lock()
	defer cl.imu.Unlock()
	return sourceTables(cl.installed)
}

// monitor is the failure detector: every failEvery it pings each
// member, counts consecutive misses per address, and once any member
// misses failMisses in a row runs an automatic Repair. Repaired (or
// recovered, or departed) addresses reset their counters.
func (cl *Cluster) monitor() {
	defer close(cl.monDone)
	t := time.NewTicker(cl.failEvery)
	defer t.Stop()
	misses := make(map[string]int)
	for {
		select {
		case <-cl.monStop:
			return
		case <-t.C:
		}
		v := cl.v.Load()
		probeErrs := make([]error, len(v.mbrs))
		var wg sync.WaitGroup
		for i, m := range v.mbrs {
			i, m := i, m
			wg.Add(1)
			go func() {
				defer wg.Done()
				probeErrs[i] = cl.probe(context.Background(), m.addr)
			}()
		}
		wg.Wait()
		confirmed := false
		for i, m := range v.mbrs {
			if probeErrs[i] == nil {
				delete(misses, m.addr)
				continue
			}
			misses[m.addr]++
			if misses[m.addr] >= cl.failMisses {
				confirmed = true
			}
		}
		for a := range misses {
			if v.ownersOf(a) == nil {
				delete(misses, a) // drained or repaired out since
			}
		}
		if !confirmed {
			// Anti-entropy: re-send the current replica assignment while
			// the cluster is healthy. A member that missed the assignment
			// when it was first published (a repair's retry budget ran
			// out, a restart raced a publish) converges here; members
			// already holding it diff the republish to nothing.
			if cl.copies > 1 {
				actx, cancel := context.WithTimeout(context.Background(), probeTimeout*2)
				cl.publishReplicas(actx, v, cl.replicaTables())
				cancel()
			}
			continue
		}
		rctx, cancel := context.WithTimeout(context.Background(), repairTimeout)
		repaired, err := cl.Repair(rctx)
		cancel()
		if err == nil {
			for _, a := range repaired {
				delete(misses, a)
			}
		}
	}
}

// stopMonitor stops the failure detector and waits for it to exit.
func (cl *Cluster) stopMonitor() {
	if cl.monStop == nil {
		return
	}
	cl.monOnce.Do(func() {
		close(cl.monStop)
		<-cl.monDone
	})
}
