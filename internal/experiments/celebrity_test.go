package experiments

import (
	"io"
	"testing"
)

func TestCelebrityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := Celebrity(Tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// §2.3/§5.2: "celebrity timelines don't offer performance
	// advantages, but they do save memory."
	if rows[1].Bytes >= rows[0].Bytes {
		t.Errorf("celebrity joins should save memory: %d vs %d", rows[1].Bytes, rows[0].Bytes)
	}
}
