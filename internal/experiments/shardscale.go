package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"pequod/internal/core"
	"pequod/internal/partition"
	"pequod/internal/shard"
	"pequod/internal/twip"
)

// ShardScaleRow is one shard count's measurement from ShardScale.
type ShardScaleRow struct {
	Shards  int
	QPS     float64 // timeline checks per second, all workers
	Speedup float64 // QPS relative to the single-shard baseline
}

// ShardScale measures within-process read scaling (§5.5 scaled into one
// process): warm timelines served by an in-process shard pool as the
// shard count sweeps. Workers run a closed loop of timeline-check scans
// against a fully materialized Twip dataset — the §5.1 read path with
// the network and write traffic removed, so the measured quantity is
// pure engine concurrency. Every sharded pool's timeline table is first
// verified byte-identical to a single-engine baseline; throughput scales
// with shards only up to GOMAXPROCS.
func ShardScale(sc Scale, shardCounts []int, out io.Writer) ([]ShardScaleRow, error) {
	g := twip.Generate(sc.Users, sc.Edges, sc.seedAt(42))
	posts := twip.GeneratePosts(g, sc.Posts, sc.seedAt(43), sc.TweetLen)

	// The fixed read stream: each worker drains its stripe of a
	// precomputed user sequence with no think time (closed loop).
	totalChecks := sc.Users * sc.ChecksPerUser
	rng := rand.New(rand.NewSource(sc.seedAt(45)))
	users := make([]int32, totalChecks)
	for i := range users {
		users[i] = int32(rng.Intn(g.Users))
	}

	base, err := warmShardPool(g, posts, 1)
	if err != nil {
		return nil, err
	}
	defer base.Close()
	want := base.Scan("t|", "t}", 0, nil, nil)
	baseQPS := float64(totalChecks) / driveShardChecks(base, users, sc.Workers).Seconds()

	fprintf(out, "Shard scaling (%s): %d users, %d checks, %d workers\n",
		sc.Name, g.Users, totalChecks, sc.Workers)
	var rows []ShardScaleRow
	for _, n := range shardCounts {
		qps := baseQPS
		if n != 1 {
			p, err := warmShardPool(g, posts, n)
			if err != nil {
				return nil, err
			}
			got := p.Scan("t|", "t}", 0, nil, nil)
			if err := kvsEqual(got, want); err != nil {
				p.Close()
				return nil, fmt.Errorf("%d-shard timelines diverge from single engine: %w", n, err)
			}
			qps = float64(totalChecks) / driveShardChecks(p, users, sc.Workers).Seconds()
			p.Close()
		}
		row := ShardScaleRow{Shards: n, QPS: qps, Speedup: qps / baseQPS}
		rows = append(rows, row)
		fprintf(out, "  %2d shards: %9.0f checks/s  (%.2fx)\n", row.Shards, row.QPS, row.Speedup)
	}
	return rows, nil
}

// warmShardPool builds an n-shard pool with the timeline table split
// evenly by user (sources below "t|" land on shard 0 and replicate to
// the timeline owners), loads the graph and historical posts, and
// materializes every timeline so the measured loop reads warm data.
func warmShardPool(g *twip.Graph, posts []twip.Op, n int) (*shard.Pool, error) {
	var bounds []string
	if n > 1 {
		bounds = partition.UserBounds(n, g.Users, 7, "u", "t")
	}
	return warmPool(g, posts, shard.Config{Shards: n, Bounds: bounds})
}

// warmPool is warmShardPool for any shard configuration (the rebalance
// experiment passes deliberately bad bounds plus a rebalancer).
func warmPool(g *twip.Graph, posts []twip.Op, cfg shard.Config) (*shard.Pool, error) {
	p, err := shard.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := p.InstallText(twip.Joins); err != nil {
		p.Close()
		return nil, err
	}
	p.SetSubtableDepth("t", 2)
	for u, following := range g.Following {
		uid := twip.UserID(int32(u))
		for _, poster := range following {
			p.Put("s|"+uid+"|"+twip.UserID(poster), "1")
		}
	}
	for _, op := range posts {
		p.Put("p|"+twip.UserID(op.User)+"|"+twip.TimeID(op.Time), op.Text)
	}
	p.Quiesce() // sources fully replicated before timelines compute
	for u := 0; u < g.Users; u++ {
		uid := twip.UserID(int32(u))
		p.Scan("t|"+uid+"|", "t|"+uid+"}", 0, nil, nil)
	}
	p.Quiesce()
	return p, nil
}

// driveShardChecks runs the closed-loop read phase: workers scan their
// stripe of warm timelines as fast as the pool serves them, reusing one
// scan buffer per worker like a pipelining client.
func driveShardChecks(p *shard.Pool, users []int32, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	stripe := (len(users) + workers - 1) / workers
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		lo := w * stripe
		hi := min(lo+stripe, len(users))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(stripe []int32) {
			defer wg.Done()
			var buf []core.KV
			for _, u := range stripe {
				uid := twip.UserID(u)
				buf = p.Scan("t|"+uid+"|", "t|"+uid+"}", 0, buf[:0], nil)
			}
		}(users[lo:hi])
	}
	wg.Wait()
	return time.Since(start)
}

// kvsEqual reports the first difference between two scan results.
func kvsEqual(got, want []core.KV) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("row %d = %q:%q, want %q:%q",
				i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
	return nil
}
