package experiments

import (
	"io"
	"runtime"
	"testing"
)

// TestShardScaleShape runs the shard-scaling sweep at Tiny scale. The
// byte-identity of sharded vs single-engine timelines is asserted inside
// ShardScale for every count; here we check the rows are sane. The ≥2x
// speedup at 4 shards only manifests with 4+ cores, so it is reported,
// not asserted, on smaller machines.
func TestShardScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	counts := []int{1, 2, 4}
	rows, err := ShardScale(Tiny, counts, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(counts) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Shards != counts[i] || r.QPS <= 0 || r.Speedup <= 0 {
			t.Fatalf("row %d = %+v", i, r)
		}
	}
	if rows[0].Speedup != 1.0 {
		t.Fatalf("baseline speedup = %v", rows[0].Speedup)
	}
	t.Logf("GOMAXPROCS=%d: 1 shard %.0f qps, 4 shards %.0f qps (%.2fx)",
		runtime.GOMAXPROCS(0), rows[0].QPS, rows[2].QPS, rows[2].Speedup)
}
