package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"pequod/internal/twip"
)

// The helpers below size and route the figure experiments; they were
// previously untested arithmetic embedded in the run functions.

// seedAt must preserve every historical default when the root is unset
// (recorded BENCH numbers regenerate from identical streams) and shift
// all derived seeds together under an override.
func TestSeedAt(t *testing.T) {
	var sc Scale
	for _, def := range []int64{42, 43, 44, 7, 11, 13, 5, 9, 45} {
		if got := sc.seedAt(def); got != def {
			t.Fatalf("default root: seedAt(%d) = %d, want unchanged", def, got)
		}
	}
	if sc.EffectiveSeed() != defaultSeedRoot {
		t.Fatalf("EffectiveSeed = %d, want %d", sc.EffectiveSeed(), defaultSeedRoot)
	}
	sc.Seed = 100
	if got := sc.seedAt(42); got != 100 {
		t.Fatalf("override root: seedAt(42) = %d, want 100", got)
	}
	if got := sc.seedAt(7); got != 7+(100-42) {
		t.Fatalf("override root: seedAt(7) = %d, want %d", got, 7+(100-42))
	}
	// Distinct defaults stay distinct under any root: streams never
	// collapse onto each other.
	if sc.seedAt(43)-sc.seedAt(42) != 1 || sc.seedAt(44)-sc.seedAt(43) != 1 {
		t.Fatal("override root broke the relative spacing of derived seeds")
	}
	if sc.EffectiveSeed() != 100 {
		t.Fatalf("EffectiveSeed = %d, want 100", sc.EffectiveSeed())
	}
	// Explicitly setting the historical root is the same as leaving it
	// unset.
	sc.Seed = defaultSeedRoot
	if got := sc.seedAt(13); got != 13 {
		t.Fatalf("explicit default root: seedAt(13) = %d, want 13", got)
	}
}

// shardOfBound must route the empty bound to shard 0, recover the shard
// from any boundary id exactly, and clamp at the top.
func TestShardOfBound(t *testing.T) {
	const users, nBase = 1000, 4
	if got := shardOfBound("", users, nBase); got != 0 {
		t.Fatalf("empty bound -> %d, want 0", got)
	}
	// A bound's id is the smallest id on its shard (ceiling split), so
	// the arithmetic must map it back to that shard for both tables.
	for i := 1; i < nBase; i++ {
		id := (users*i + nBase - 1) / nBase
		for _, table := range []string{"p", "s"} {
			bound := fmt.Sprintf("%s|u%07d", table, id)
			if got := shardOfBound(bound, users, nBase); got != i {
				t.Fatalf("shardOfBound(%q) = %d, want %d", bound, got, i)
			}
		}
	}
	if got := shardOfBound("p|u0000999", users, nBase); got != nBase-1 {
		t.Fatalf("top id -> %d, want %d", got, nBase-1)
	}
	// Ids beyond the universe clamp instead of indexing out of range.
	if got := shardOfBound("p|u9999999", users, nBase); got != nBase-1 {
		t.Fatalf("overflow id -> %d, want clamp to %d", got, nBase-1)
	}
	if got := shardOfBound("garbage", users, nBase); got != 0 {
		t.Fatalf("malformed bound -> %d, want 0", got)
	}
}

// basePartition must build one owner per range, with every owner's
// address agreeing with shardOfBound — the invariant that makes client
// writes and the compute servers' remote loader agree on key homes.
func TestBasePartition(t *testing.T) {
	const users, nBase = 1000, 4
	addrs := []string{"base0", "base1", "base2", "base3"}
	pmap, ownerAddr := basePartition(users, nBase, addrs)
	// Two tables (p, s) × (nBase-1) bounds each, plus the s|
	// table-boundary bound -> 2(nBase-1)+2 ranges.
	if want := 2*(nBase-1) + 2; pmap.Servers() != want {
		t.Fatalf("pmap has %d owners, want %d", pmap.Servers(), want)
	}
	if len(ownerAddr) != pmap.Servers() {
		t.Fatalf("ownerAddr has %d entries, want %d", len(ownerAddr), pmap.Servers())
	}
	// Every Twip base key must land on the address the shard arithmetic
	// picks directly.
	for id := 0; id < users; id += 37 {
		for _, table := range []string{"p", "s"} {
			key := fmt.Sprintf("%s|u%07d|x", table, id)
			owner := pmap.Owner(key)
			want := addrs[id*nBase/users]
			if ownerAddr[owner] != want {
				t.Fatalf("key %q: owner %d -> %s, want %s", key, owner, ownerAddr[owner], want)
			}
		}
	}
}

// fig8PostBase scales with the history but never collapses below the
// floor that keeps the check:post interleave meaningful.
func TestFig8PostBase(t *testing.T) {
	if got := fig8PostBase(16000); got != 4000 {
		t.Fatalf("fig8PostBase(16000) = %d, want 4000", got)
	}
	for _, posts := range []int{0, 100, 1999} {
		if got := fig8PostBase(posts); got != 500 {
			t.Fatalf("fig8PostBase(%d) = %d, want floor 500", posts, got)
		}
	}
	if got := fig8PostBase(2000); got != 500 {
		t.Fatalf("fig8PostBase(2000) = %d, want 500", got)
	}
}

// fig9Users and fig9Dataset must keep the §5.4 ratios (2 articles, 20
// comments, 40 votes per user) at every scale, with the tiny-scale
// floor applied before the ratios.
func TestFig9DatasetRatios(t *testing.T) {
	if got := fig9Users(2000); got != 1000 {
		t.Fatalf("fig9Users(2000) = %d, want 1000", got)
	}
	if got := fig9Users(10); got != 20 {
		t.Fatalf("fig9Users(10) = %d, want floor 20", got)
	}
	for _, users := range []int{20, 150, 1000} {
		d := fig9Dataset(users, 5)
		if d.Users != users || d.Articles != users*2 || d.Comments != users*20 || d.Votes != users*40 {
			t.Fatalf("fig9Dataset(%d) = %+v, want 1:2:20:40 ratios", users, d)
		}
		if d.Seed != 5 {
			t.Fatalf("fig9Dataset seed = %d, want 5", d.Seed)
		}
	}
}

// The §4.2 write-heavy ablation mix must stay a valid percentage blend,
// and heavier on writes than the paper's default.
func TestWriteHeavyMix(t *testing.T) {
	if writeHeavyMix.Total() != 100 {
		t.Fatalf("writeHeavyMix sums to %d, want 100", writeHeavyMix.Total())
	}
	if writeHeavyMix.Post+writeHeavyMix.Subscribe <= twip.DefaultMix.Post+twip.DefaultMix.Subscribe {
		t.Fatal("writeHeavyMix is not write-heavier than the default mix")
	}
}

// parallel must visit every index exactly once and surface a worker's
// error.
func TestParallelHelper(t *testing.T) {
	const n = 1000
	var visited [n]atomic.Int32
	if err := parallel(8, n, func(i int) error {
		visited[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range visited {
		if visited[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, visited[i].Load())
		}
	}
	boom := errors.New("boom")
	if err := parallel(4, 100, func(i int) error {
		if i == 57 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("error not surfaced: %v", err)
	}
	if err := parallel(0, 3, func(int) error { return nil }); err != nil {
		t.Fatalf("w<1 must clamp to serial, got %v", err)
	}
}

// A seed override must actually change the generated workload while
// staying deterministic — the property the repro -seed flag sells.
func TestSeedOverrideChangesStreams(t *testing.T) {
	a := Tiny
	b := Tiny
	b.Seed = 1234
	_, _, wa := buildTwip(a, a.ActivePct, twip.DefaultMix)
	_, _, wb := buildTwip(b, b.ActivePct, twip.DefaultMix)
	_, _, wb2 := buildTwip(b, b.ActivePct, twip.DefaultMix)
	if len(wb.Ops) == 0 || len(wb2.Ops) != len(wb.Ops) {
		t.Fatalf("override run not deterministic: %d vs %d ops", len(wb.Ops), len(wb2.Ops))
	}
	same := len(wa.Ops) == len(wb.Ops)
	if same {
		for i := range wa.Ops {
			if wa.Ops[i] != wb.Ops[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed override produced an identical op stream")
	}
}
