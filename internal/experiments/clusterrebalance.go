package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	pcluster "pequod/internal/cluster"
	"pequod/internal/core"
	"pequod/internal/server"
)

// ClusterRebalanceRow is one configuration's measurement from
// ClusterRebalance.
type ClusterRebalanceRow struct {
	Rebalance  bool
	QPS        float64 // steady-state timeline checks per second
	Speedup    float64 // QPS relative to the static partition
	Migrations int64   // server-to-server range moves the rebalancer ran
	HotShare   float64 // hottest server's fraction of the served load
}

// ClusterRebalance measures what client-driven cluster rebalancing buys
// under skew — the cross-server twin of RebalanceScale. Four networked
// servers are partitioned with the worst realistic bounds (every real
// key lands on the last member); a Zipf-skewed closed-loop timeline-
// check stream hammers the cluster with rebalancing off, then on. The
// static cluster funnels every check through one server; the rebalancer
// polls per-server load through the stat RPC, migrates hot timeline
// ranges live between servers (ExtractRange/SpliceRange/MapUpdate on
// the wire) under the same traffic, and the hottest server's served
// share — near 100% statically — drops toward 1/members. Timelines are
// verified byte-identical to a reference before anything is timed.
func ClusterRebalance(sc Scale, out io.Writer) ([]ClusterRebalanceRow, error) {
	const nServers = 4
	users := sc.Users
	if users < 64 {
		users = 64
	}
	// A few timeline rows per user; the hot users' rows form contiguous
	// hot key ranges a boundary move can spread.
	var pairs []core.KV
	for u := 0; u < users; u++ {
		for p := 0; p < 3; p++ {
			pairs = append(pairs, core.KV{
				Key:   fmt.Sprintf("t|u%07d|%04d", u, p),
				Value: "cluster-rebalance tweet body",
			})
		}
	}
	want := append([]core.KV(nil), pairs...)
	sort.Slice(want, func(i, j int) bool { return want[i].Key < want[j].Key })

	totalChecks := users * sc.ChecksPerUser
	if totalChecks < 6000 {
		totalChecks = 6000
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(sc.seedAt(45))), 1.2, 8, uint64(users-1))
	checks := make([]int32, totalChecks)
	for i := range checks {
		checks[i] = int32(zipf.Uint64())
	}

	fprintf(out, "ClusterRebalance (%s): %d users, %d Zipf checks, %d workers, %d servers, clustered bounds\n",
		sc.Name, users, totalChecks, sc.Workers, nServers)

	ctx := context.Background()
	var rows []ClusterRebalanceRow
	for _, reb := range []bool{false, true} {
		cl, closeAll, err := startCluster(ctx, nServers)
		if err != nil {
			return nil, err
		}
		if err := cl.PutBatch(ctx, pairs); err != nil {
			closeAll()
			return nil, err
		}
		if reb {
			cl.SetRebalanceConfig(pcluster.Rebalance{
				Interval: 3 * time.Millisecond, Ratio: 1.25, MinOps: 64,
			})
			// Adaptation phase: serve the skewed stream and tick the
			// rebalancer until it stops moving ranges (the quiet window
			// outlasts the post-migration cooldown).
			quiet, prev := 0, int64(0)
			for pass := 0; pass < 80 && quiet < 8; pass++ {
				driveClusterChecks(ctx, cl, checks[:min(len(checks), 2048)], sc.Workers)
				if _, err := cl.RebalanceTick(ctx); err != nil {
					closeAll()
					return nil, err
				}
				if st := cl.RebalancerStats(); st.Migrations == prev && st.Migrations > 0 {
					quiet++
				} else {
					quiet, prev = 0, cl.RebalancerStats().Migrations
				}
			}
		}
		got, err := cl.Scan(ctx, "t|", "t}", 0)
		if err == nil {
			err = kvsEqual(got, want)
		}
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("rebalance=%v timelines diverge: %w", reb, err)
		}
		before, err := cl.MemberLoads(ctx)
		if err != nil {
			closeAll()
			return nil, err
		}
		qps := float64(totalChecks) / driveClusterChecks(ctx, cl, checks, sc.Workers).Seconds()
		after, err := cl.MemberLoads(ctx)
		if err != nil {
			closeAll()
			return nil, err
		}
		hotShare := hotUnitShare(unitsOf(before), unitsOf(after))
		st := cl.RebalancerStats()
		closeAll()

		row := ClusterRebalanceRow{Rebalance: reb, QPS: qps, Migrations: st.Migrations, HotShare: hotShare}
		row.Speedup = 1
		if len(rows) > 0 {
			row.Speedup = qps / rows[0].QPS
		}
		rows = append(rows, row)
		fprintf(out, "  rebalance=%-5v %9.0f checks/s  (%.2fx, %d migrations, hottest server served %.0f%%)\n",
			row.Rebalance, row.QPS, row.Speedup, row.Migrations, 100*row.HotShare)
	}
	return rows, nil
}

// startCluster launches n loopback servers whose partition crams every
// real (table-prefixed) key onto the last member, and a cluster client
// over them.
func startCluster(ctx context.Context, n int) (*pcluster.Cluster, func(), error) {
	var servers []*server.Server
	closeAll := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	addrs := make([]string, n)
	bounds := make([]string, n-1)
	for i := range bounds {
		// "\x01", "\x02", ...: far below any printable table prefix.
		bounds[i] = string(rune(i + 1))
	}
	for i := 0; i < n; i++ {
		s, err := server.New(server.Config{Name: fmt.Sprintf("m%d", i)})
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		servers = append(servers, s)
		if addrs[i], err = s.Start(); err != nil {
			closeAll()
			return nil, nil, err
		}
	}
	cl, err := pcluster.New(ctx, pcluster.Config{Addrs: addrs, Bounds: bounds})
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	all := func() {
		cl.Close()
		closeAll()
	}
	return cl, all, nil
}

// driveClusterChecks serves the check stream closed-loop with the given
// worker count and returns the elapsed wall time. Each check is one
// timeline scan through the cluster client (pipelined per server).
func driveClusterChecks(ctx context.Context, cl *pcluster.Cluster, users []int32, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	chunk := (len(users) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(users) {
			break
		}
		hi := min(lo+chunk, len(users))
		wg.Add(1)
		go func(mine []int32) {
			defer wg.Done()
			for _, u := range mine {
				lo := fmt.Sprintf("t|u%07d|", u)
				cl.Scan(ctx, lo, lo[:len(lo)-1]+"}", 0)
			}
		}(users[lo:hi])
	}
	wg.Wait()
	return time.Since(start)
}

// unitsOf projects member loads onto the float slice hotUnitShare wants.
func unitsOf(ls []pcluster.MemberLoad) []float64 {
	out := make([]float64, len(ls))
	for i, l := range ls {
		out[i] = float64(l.Units)
	}
	return out
}
