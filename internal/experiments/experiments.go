// Package experiments implements the paper's evaluation (§5): one
// function per table/figure, shared by the root benchmark suite and the
// cmd/repro harness. Each function prints the same rows/series the paper
// reports and returns them for programmatic checks.
//
// Scales: the paper ran 1.8M-user graphs and 62M timeline checks on
// 32-core EC2 machines; the reproduction runs laptop-scale versions whose
// *shape* — which system wins, rough factors, where crossovers fall — is
// the comparison target (see EXPERIMENTS.md for paper-vs-measured).
package experiments

import (
	"fmt"
	"io"

	"pequod/internal/baselines"
	"pequod/internal/client"
	"pequod/internal/server"
	"pequod/internal/twip"
)

// Scale sizes an experiment run.
type Scale struct {
	Name          string
	Users         int
	Edges         int
	Posts         int // historical posts
	ChecksPerUser int
	ActivePct     int // Fig 7 active-user percentage
	Sessions      int // Newp sessions
	Servers       int // cache servers per system (Fig 7)
	Workers       int // driver goroutines
	TweetLen      int
	Seed          int64 // determinism root; 0 keeps the historical defaults
}

// defaultSeedRoot is the root the experiments have always run under:
// graph seed 42, with the other fixed stream seeds (43, 44, 7, 11, 13,
// 5, 9) derived alongside it.
const defaultSeedRoot = 42

// seedAt shifts one of the experiment's fixed default seeds by the
// scale's Seed override. With Seed unset (or set to the default root)
// every historical seed keeps its exact value, so recorded BENCH
// numbers regenerate from the same streams; with a -seed override
// every derived stream — graph, posts, workload, datasets — shifts
// together, giving an independent but still fully deterministic run.
func (sc Scale) seedAt(def int64) int64 {
	return def + (sc.EffectiveSeed() - defaultSeedRoot)
}

// EffectiveSeed is the resolved determinism root (the historical
// default when Seed is unset) — what repro prints so a run can be
// replayed exactly.
func (sc Scale) EffectiveSeed() int64 {
	if sc.Seed == 0 {
		return defaultSeedRoot
	}
	return sc.Seed
}

// Tiny runs in CI test time; Small in seconds; Medium in tens of seconds.
var (
	Tiny = Scale{
		Name: "tiny", Users: 300, Edges: 2500, Posts: 2500,
		ChecksPerUser: 6, ActivePct: 70, Sessions: 800,
		Servers: 2, Workers: 8, TweetLen: 60,
	}
	Small = Scale{
		Name: "small", Users: 2000, Edges: 30000, Posts: 16000,
		ChecksPerUser: 15, ActivePct: 70, Sessions: 8000,
		Servers: 3, Workers: 16, TweetLen: 100,
	}
	Medium = Scale{
		Name: "medium", Users: 20000, Edges: 400000, Posts: 150000,
		ChecksPerUser: 30, ActivePct: 70, Sessions: 60000,
		Servers: 4, Workers: 32, TweetLen: 140,
	}
)

// ScaleByName resolves a scale flag value.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	}
	return Scale{}, fmt.Errorf("unknown scale %q (tiny|small|medium)", name)
}

// cluster is a set of servers + clients with teardown.
type cluster struct {
	clients []*client.Client
	closers []func()
}

func (c *cluster) Close() {
	for _, cl := range c.clients {
		cl.Close()
	}
	for _, f := range c.closers {
		f()
	}
}

// startPequodCluster boots n Pequod servers with the given joins and
// subtable config.
func startPequodCluster(n int, joins string, depths map[string]int, opts server.Config) (*cluster, error) {
	cl := &cluster{}
	for i := 0; i < n; i++ {
		cfg := opts
		cfg.Name = fmt.Sprintf("pequod%d", i)
		cfg.Joins = joins
		cfg.SubtableDepths = depths
		s, err := server.New(cfg)
		if err != nil {
			cl.Close()
			return nil, err
		}
		addr, err := s.Start()
		if err != nil {
			cl.Close()
			return nil, err
		}
		c, err := client.Dial(addr)
		if err != nil {
			s.Close()
			cl.Close()
			return nil, err
		}
		cl.clients = append(cl.clients, c)
		cl.closers = append(cl.closers, s.Close)
	}
	return cl, nil
}

// startBaselineCluster boots n baseline servers from a handler factory.
func startBaselineCluster(n int, mk func() baselines.Handler) (*cluster, error) {
	cl := &cluster{}
	for i := 0; i < n; i++ {
		srv := baselines.NewServer(mk())
		addr, err := srv.Start()
		if err != nil {
			cl.Close()
			return nil, err
		}
		c, err := client.Dial(addr)
		if err != nil {
			srv.Close()
			cl.Close()
			return nil, err
		}
		cl.clients = append(cl.clients, c)
		cl.closers = append(cl.closers, srv.Close)
	}
	return cl, nil
}

// buildTwip generates the graph, prepopulation, and workload for a scale.
func buildTwip(sc Scale, activePct int, mix twip.Mix) (*twip.Graph, []twip.Op, *twip.Workload) {
	g := twip.Generate(sc.Users, sc.Edges, sc.seedAt(42))
	posts := twip.GeneratePosts(g, sc.Posts, sc.seedAt(43), sc.TweetLen)
	w := twip.GenerateWorkload(g, twip.WorkloadConfig{
		ActiveFraction: float64(activePct) / 100,
		ChecksPerUser:  sc.ChecksPerUser,
		Mix:            mix,
		Seed:           sc.seedAt(44),
		StartTime:      int64(len(posts)),
		TweetLen:       sc.TweetLen,
	})
	return g, posts, w
}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// pequodServerDefaults returns the server configuration used by the
// experiments (paper defaults: all optimizations on, no memory limit —
// §5.1 "Although we enable eviction, it never triggers").
func pequodServerDefaults() server.Config {
	return server.Config{}
}
