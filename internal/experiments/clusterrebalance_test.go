package experiments

import (
	"io"
	"runtime"
	"testing"
)

// TestClusterRebalanceShape runs the cluster rebalance experiment at
// Tiny scale: timeline byte-identity against a reference is asserted
// inside ClusterRebalance; here we check the rebalancer actually moved
// ranges between servers and the hot server demonstrably cooled off.
// The throughput win depends on core count, so it is logged, not
// asserted.
func TestClusterRebalanceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := ClusterRebalance(Tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Rebalance || !rows[1].Rebalance {
		t.Fatalf("rows = %+v", rows)
	}
	for i, r := range rows {
		if r.QPS <= 0 || r.Speedup <= 0 {
			t.Fatalf("row %d = %+v", i, r)
		}
	}
	if rows[0].Migrations != 0 {
		t.Fatalf("static cluster migrated: %+v", rows[0])
	}
	if rows[1].Migrations == 0 {
		t.Fatalf("rebalancer never migrated: %+v", rows[1])
	}
	if rows[0].HotShare < 0.95 {
		t.Fatalf("static cluster was not hot to begin with: %+v", rows[0])
	}
	if rows[1].HotShare > 0.85 {
		t.Fatalf("hot server did not cool off: %+v", rows[1])
	}
	t.Logf("GOMAXPROCS=%d: static %.0f checks/s (hottest %.0f%%), rebalanced %.0f checks/s (hottest %.0f%%, %.2fx, %d moves)",
		runtime.GOMAXPROCS(0), rows[0].QPS, 100*rows[0].HotShare,
		rows[1].QPS, 100*rows[1].HotShare, rows[1].Speedup, rows[1].Migrations)
}
