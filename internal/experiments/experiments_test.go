package experiments

import (
	"io"
	"runtime"
	"testing"
)

// The experiment harness tests run at Tiny scale and assert the *shape*
// of each result — who wins, where crossovers sit — not absolute numbers.

// perfShape gates the timing/throughput shape assertions: they hold on
// an idle multi-core machine (the paper's setting) but not under the
// race detector's non-uniform slowdown or on 1-2 core boxes, where
// multi-server/multi-worker runs can't beat single ones and tiny-scale
// runtimes are dominated by scheduling noise. Structural assertions
// (RPC counts, memory, row shapes) always run.
var perfShape = !raceEnabled && runtime.GOMAXPROCS(0) >= 4

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := Fig7(Tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Fig7Row{}
	for _, r := range rows {
		byName[r.System] = r
	}
	// Robust shape assertions at tiny scale (runtimes of the three fast
	// caches are within transport noise of each other here; see
	// EXPERIMENTS.md). Runtime-based assertions are skipped under the
	// race detector, whose slowdown is non-uniform across systems.
	if perfShape {
		// 1. "Pequod performs no worse than widely available key-value
		//    caches" — within a noise margin of the fastest system. The
		// margin is generous because the full test suite runs packages in
		// parallel and tiny-scale runtimes are ~100ms; `cmd/repro -scale
		// small` on an idle machine gives the meaningful ratios
		// (EXPERIMENTS.md).
		fastest := rows[0].Runtime
		for _, r := range rows {
			if r.Runtime < fastest {
				fastest = r.Runtime
			}
		}
		if byName["Pequod"].Runtime.Seconds() > fastest.Seconds()*2.5 {
			t.Errorf("Pequod (%v) much slower than fastest (%v)", byName["Pequod"].Runtime, fastest)
		}
		// 2. The relational database trails the caches (paper: 9.55x).
		if byName["PostgreSQL"].Runtime <= byName["Redis"].Runtime {
			t.Errorf("PostgreSQL (%v) should be slower than Redis (%v)",
				byName["PostgreSQL"].Runtime, byName["Redis"].Runtime)
		}
	}
	// 3. "client Pequod makes many more RPCs" (§5.2) — deterministic.
	if byName["Client Pequod"].RPCs < byName["Pequod"].RPCs*3/2 {
		t.Errorf("client Pequod RPCs (%d) should far exceed Pequod's (%d)",
			byName["Client Pequod"].RPCs, byName["Pequod"].RPCs)
	}
	// 4. Redis's client-managed model also amplifies RPCs vs Pequod.
	if byName["Redis"].RPCs <= byName["Pequod"].RPCs {
		t.Errorf("Redis RPCs (%d) should exceed Pequod's (%d)",
			byName["Redis"].RPCs, byName["Pequod"].RPCs)
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := Fig8(Tiny, []int{5, 50}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	get := func(strategy string, pct int) Fig8Row {
		for _, r := range rows {
			if r.Strategy == strategy && r.ActivePct == pct {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", strategy, pct)
		return Fig8Row{}
	}
	// At high check rates materialization must beat recompute-per-read.
	if perfShape && get("Dynamic materialization", 50).Runtime >= get("No materialization", 50).Runtime {
		t.Error("dynamic should beat no-materialization at 50% active")
	}
	// Dynamic uses no more memory than full (it materializes a subset).
	if get("Dynamic materialization", 5).Bytes > get("Full materialization", 5).Bytes {
		t.Error("dynamic should use less memory than full at 5% active")
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := Fig9(Tiny, []int{10}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	get := func(strategy string) Fig9Row {
		for _, r := range rows {
			if r.Strategy == strategy {
				return r
			}
		}
		t.Fatalf("missing %s", strategy)
		return Fig9Row{}
	}
	// "interleaved cache joins are superior for most vote rates" (§5.4):
	// at a 10% vote rate interleaved must win.
	if perfShape && get("Interleaved").Runtime >= get("Non-interleaved").Runtime {
		t.Errorf("interleaved (%v) should beat non-interleaved (%v) at low vote rates",
			get("Interleaved").Runtime, get("Non-interleaved").Runtime)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := Fig10(Tiny, []int{1, 2}, 2, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More compute servers must not lose throughput dramatically; the
	// paper sees 3x at 4x servers. At tiny scale we only require
	// non-collapse (>= 0.9x) and successful distributed execution.
	if perfShape && rows[1].QPS < rows[0].QPS*0.9 {
		t.Errorf("scaling collapsed: 1 server %.0f qps, 2 servers %.0f qps", rows[0].QPS, rows[1].QPS)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := AblationValueSharing(Tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// §4.3: sharing reduces memory.
	if rows[1].Bytes >= rows[0].Bytes {
		t.Errorf("value sharing did not reduce memory: %d vs %d", rows[1].Bytes, rows[0].Bytes)
	}
	if _, err := AblationOutputHints(Tiny, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationSubtables(Tiny, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestScaleByName(t *testing.T) {
	for _, n := range []string{"tiny", "small", "medium"} {
		if _, err := ScaleByName(n); err != nil {
			t.Errorf("ScaleByName(%q): %v", n, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}
