package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"pequod/internal/shard"
	"pequod/internal/twip"
)

// RebalanceRow is one configuration's measurement from RebalanceScale.
type RebalanceRow struct {
	Rebalance  bool
	QPS        float64 // steady-state timeline checks per second
	Speedup    float64 // QPS relative to the static partition
	Migrations int64   // boundary moves the rebalancer ran
	HotShare   float64 // hottest shard's fraction of the served load
}

// RebalanceScale measures what live rebalancing buys under skew: a
// 4-shard pool with the *default* bounds — which cluster every
// ASCII-prefixed Twip key onto one shard, the worst realistic
// mispartition — serves a Zipf-skewed closed-loop timeline-check stream
// with rebalancing off, then on. The static pool funnels every check
// through the one hot shard's lock no matter how many workers run; the
// rebalancer watches per-shard load, migrates hot timeline ranges to
// the idle shards live under the same traffic, and the steady-state
// throughput afterwards is the payoff. Both pools' timelines are
// verified byte-identical to a single-engine baseline before anything
// is timed.
func RebalanceScale(sc Scale, out io.Writer) ([]RebalanceRow, error) {
	g := twip.Generate(sc.Users, sc.Edges, sc.seedAt(42))
	posts := twip.GeneratePosts(g, sc.Posts, sc.seedAt(43), sc.TweetLen)

	// The skewed read stream: Zipf over user ids, so the hot users form
	// a contiguous hot key range — exactly the case a boundary move can
	// spread. The stream is long enough for a stable steady-state
	// window even at tiny scales (migrations cost microseconds, not
	// milliseconds, but a 10ms window would still be all noise).
	totalChecks := sc.Users * sc.ChecksPerUser
	if totalChecks < 40000 {
		totalChecks = 40000
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(sc.seedAt(45))), 1.2, 8, uint64(g.Users-1))
	users := make([]int32, totalChecks)
	for i := range users {
		users[i] = int32(zipf.Uint64())
	}

	base, err := warmShardPool(g, posts, 1)
	if err != nil {
		return nil, err
	}
	defer base.Close()
	want := base.Scan("t|", "t}", 0, nil, nil)

	fprintf(out, "Rebalance (%s): %d users, %d Zipf checks, %d workers, 4 shards, default (clustered) bounds\n",
		sc.Name, g.Users, totalChecks, sc.Workers)

	const nShards = 4
	var rows []RebalanceRow
	for _, reb := range []bool{false, true} {
		cfg := shard.Config{Shards: nShards}
		if reb {
			cfg.Rebalance = &shard.Rebalance{
				Interval: 3 * time.Millisecond,
				Ratio:    1.25,
				MinOps:   64,
			}
		}
		p, err := warmPool(g, posts, cfg)
		if err != nil {
			return nil, err
		}
		if reb {
			// Adaptation phase: serve the same skewed stream until the
			// rebalancer stops moving ranges. The quiet window must
			// outlast the rebalancer's post-migration cooldown, or a
			// pause mid-cascade reads as convergence and the remaining
			// migrations get charged to the steady state.
			quiet, prev := 0, int64(0)
			for pass := 0; pass < 80 && quiet < 4; pass++ {
				driveShardChecks(p, users[:min(len(users), 4096)], sc.Workers)
				time.Sleep(8 * time.Millisecond) // let sampling ticks fire
				if st := p.RebalanceStats(); st.Migrations == prev && st.Migrations > 0 {
					quiet++
				} else {
					quiet, prev = 0, p.RebalanceStats().Migrations
				}
			}
		}
		p.Quiesce()
		got := p.Scan("t|", "t}", 0, nil, nil)
		if err := kvsEqual(got, want); err != nil {
			p.Close()
			return nil, fmt.Errorf("rebalance=%v timelines diverge from single engine: %w", reb, err)
		}
		before := p.ShardLoads()
		qps := float64(totalChecks) / driveShardChecks(p, users, sc.Workers).Seconds()

		// How concentrated was the measured load? The hottest shard's
		// share of the checks served is the "hot shard cooling off"
		// metric: ~1.0 statically (everything funnels through one
		// engine), a fair fraction of 1/shards once ranges migrated.
		hotShare := hotUnitShare(before, p.ShardLoads())
		st := p.RebalanceStats()
		p.Close()

		row := RebalanceRow{Rebalance: reb, QPS: qps, Migrations: st.Migrations, HotShare: hotShare}
		row.Speedup = 1
		if len(rows) > 0 {
			row.Speedup = qps / rows[0].QPS
		}
		rows = append(rows, row)
		fprintf(out, "  rebalance=%-5v %9.0f checks/s  (%.2fx, %d migrations, hottest shard served %.0f%%)\n",
			row.Rebalance, row.QPS, row.Speedup, row.Migrations, 100*row.HotShare)
	}
	return rows, nil
}

// hotUnitShare returns the hottest shard's fraction of the load served
// between two cumulative ShardLoads snapshots.
func hotUnitShare(before, after []float64) float64 {
	total, hot := 0.0, 0.0
	for i := range after {
		d := after[i] - before[i]
		total += d
		if d > hot {
			hot = d
		}
	}
	if total == 0 {
		return 0
	}
	return hot / total
}
