package experiments

import (
	"fmt"
	"io"
	"time"

	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/twip"
)

// AblationRow reports one configuration of a §4 optimization ablation.
type AblationRow struct {
	Config  string
	Runtime time.Duration
	Bytes   int64
}

// runTwipEmbedded drives a Twip-like workload on an embedded engine with
// the given options, returning runtime and store bytes. mix selects the
// operation blend: the insert-path optimizations (§4.2) are measured
// under a write-heavy mix so maintenance work dominates the runtime.
func runTwipEmbedded(sc Scale, opts core.Options, subtables bool, mix twip.Mix) (AblationRow, error) {
	e := core.New(opts)
	if err := e.InstallText(twip.Joins); err != nil {
		return AblationRow{}, err
	}
	if subtables {
		// "Twip scans mostly lie within a timeline range" (§4.1): the
		// developer marks the user boundary in the t table.
		e.SetSubtableDepth("t", 2)
		e.SetSubtableDepth("p", 2)
	}
	g := twip.Generate(sc.Users, sc.Edges, sc.seedAt(42))
	for u := 0; u < g.Users; u++ {
		uid := twip.UserID(int32(u))
		for _, p := range g.Following[u] {
			e.Put(keys.Join("s", uid, twip.UserID(p)), "1")
		}
	}
	hist := twip.GeneratePosts(g, sc.Posts, sc.seedAt(7), sc.TweetLen)
	for _, op := range hist {
		e.Put(keys.Join("p", twip.UserID(op.User), twip.TimeID(op.Time)), op.Text)
	}
	w := twip.GenerateWorkload(g, twip.WorkloadConfig{
		ActiveFraction: float64(sc.ActivePct) / 100,
		ChecksPerUser:  sc.ChecksPerUser,
		Mix:            mix,
		Seed:           sc.seedAt(44),
		StartTime:      int64(len(hist)),
		TweetLen:       sc.TweetLen,
	})

	start := time.Now()
	for _, op := range w.Ops {
		switch op.Kind {
		case twip.OpLogin, twip.OpCheck:
			uid := twip.UserID(op.User)
			lo := keys.Join("t", uid, twip.TimeID(op.Since))
			e.Scan(lo, keys.RangeEnd("t", uid), 0)
		case twip.OpSubscribe:
			e.Put(keys.Join("s", twip.UserID(op.User), twip.UserID(op.Target)), "1")
		case twip.OpPost:
			e.Put(keys.Join("p", twip.UserID(op.User), twip.TimeID(op.Time)), op.Text)
		}
	}
	return AblationRow{Runtime: time.Since(start), Bytes: e.Store().Bytes()}, nil
}

// AblationSubtables reproduces the §4.1 measurement: "The use of
// subtables improves the runtime of our Twip benchmark by a factor of
// 1.55x, but increases memory consumption by a factor of 1.17x."
func AblationSubtables(sc Scale, out io.Writer) ([]AblationRow, error) {
	return runAblation(sc, out, "subtables (§4.1)",
		[]ablationCase{
			{"without subtables", core.Options{}, false},
			{"with subtables", core.Options{}, true},
		})
}

// AblationOutputHints reproduces §4.2: output hints "improve performance
// by a factor of 1.11x" by avoiding tree lookups on in-order inserts.
// Measured under a write-heavy mix, where the insert path dominates, and
// on flat tables: subtables shrink each timeline tree to a handful of
// nodes, which makes the O(log n) lookup the hint avoids nearly free —
// the optimizations overlap, and hints matter most where trees are deep.
func AblationOutputHints(sc Scale, out io.Writer) ([]AblationRow, error) {
	return runAblationMix(sc, out, "output hints (§4.2)",
		[]ablationCase{
			{"without output hints", core.Options{DisableOutputHints: true}, false},
			{"with output hints", core.Options{}, false},
		}, writeHeavyMix)
}

// AblationValueSharing reproduces §4.3: value sharing "reduces memory
// consumption by a factor of 1.14x" on the Twip benchmark (the metric is
// bytes, not runtime).
func AblationValueSharing(sc Scale, out io.Writer) ([]AblationRow, error) {
	return runAblation(sc, out, "value sharing (§4.3)",
		[]ablationCase{
			{"without value sharing", core.Options{DisableValueSharing: true}, true},
			{"with value sharing", core.Options{}, true},
		})
}

type ablationCase struct {
	name      string
	opts      core.Options
	subtables bool
}

// writeHeavyMix emphasizes the insert/maintenance path for the §4.2
// measurement (posts and subscription churn rather than scans).
var writeHeavyMix = twip.Mix{Login: 5, Check: 45, Subscribe: 20, Post: 30}

func runAblation(sc Scale, out io.Writer, title string, cases []ablationCase) ([]AblationRow, error) {
	return runAblationMix(sc, out, title, cases, twip.DefaultMix)
}

func runAblationMix(sc Scale, out io.Writer, title string, cases []ablationCase, mix twip.Mix) ([]AblationRow, error) {
	fprintf(out, "Ablation: %s (scale=%s)\n", title, sc.Name)
	var rows []AblationRow
	for _, c := range cases {
		// Best of three runs: single-process macro runtimes carry
		// scheduler/GC noise larger than some of the §4 effects.
		var row AblationRow
		for rep := 0; rep < 3; rep++ {
			r, err := runTwipEmbedded(sc, c.opts, c.subtables, mix)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", c.name, err)
			}
			if rep == 0 || r.Runtime < row.Runtime {
				r.Config = c.name
				row = r
			}
		}
		rows = append(rows, row)
		fprintf(out, "  %-24s %11.3fs %14d bytes\n", c.name, row.Runtime.Seconds(), row.Bytes)
	}
	if len(rows) == 2 {
		fprintf(out, "  speedup %.2fx, memory ratio %.2fx\n",
			rows[0].Runtime.Seconds()/rows[1].Runtime.Seconds(),
			float64(rows[1].Bytes)/float64(rows[0].Bytes))
	}
	return rows, nil
}
