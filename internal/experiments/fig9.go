package experiments

import (
	"fmt"
	"io"
	"time"

	"pequod/internal/newp"
)

// Fig9Row is one point of the Figure 9 sweep: runtime of a Newp page
// strategy at a given vote rate.
type Fig9Row struct {
	Strategy string
	VoteRate int // percent
	Runtime  time.Duration
}

// Fig9 compares Newp cache-join choices (§5.4): interleaved joins (one
// scan per article page) versus separate aggregate ranges (many gets in
// two round trips), across vote rates. "We expect the interleaved
// approach to perform well when article reads far outnumber votes."
func Fig9(sc Scale, voteRates []int, out io.Writer) ([]Fig9Row, error) {
	users := fig9Users(sc.Users)
	fprintf(out, "Figure 9: Newp cache-join choice (scale=%s: %d users, %d articles, %d sessions/run)\n",
		sc.Name, users, users*2, sc.Sessions)
	fprintf(out, "%-16s %8s %12s\n", "Strategy", "vote%", "Runtime")

	type strat struct {
		name  string
		joins string
		mk    func(c *cluster) newp.Backend
	}
	strategies := []strat{
		{"Interleaved", newp.InterleavedJoins,
			func(c *cluster) newp.Backend { return &newp.Interleaved{C: c.clients[0]} }},
		{"Non-interleaved", newp.AggregateJoins,
			func(c *cluster) newp.Backend { return &newp.NonInterleaved{C: c.clients[0]} }},
	}

	var rows []Fig9Row
	for _, s := range strategies {
		for _, vr := range voteRates {
			cl, err := startPequodCluster(1, s.joins, nil, pequodServerDefaults())
			if err != nil {
				return nil, err
			}
			b := s.mk(cl)
			d := fig9Dataset(users, sc.seedAt(5))
			if err := d.Populate(b); err != nil {
				cl.Close()
				return nil, fmt.Errorf("%s: populate: %w", s.name, err)
			}
			ops := d.Sessions(sc.Sessions, float64(vr)/100, sc.seedAt(9))
			// Warm the page/aggregate ranges so the timed phase measures
			// steady-state reads + maintenance, as the paper's
			// long-running sessions do.
			if _, err := newp.RunSessions(b, ops[:min(len(ops), 200)], sc.Workers); err != nil {
				cl.Close()
				return nil, err
			}
			start := time.Now()
			if _, err := newp.RunSessions(b, ops, sc.Workers); err != nil {
				cl.Close()
				return nil, fmt.Errorf("%s at %d%%: %w", s.name, vr, err)
			}
			runtime := time.Since(start)
			cl.Close()
			rows = append(rows, Fig9Row{s.name, vr, runtime})
			fprintf(out, "%-16s %7d%% %11.3fs\n", s.name, vr, runtime.Seconds())
		}
	}
	return rows, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// fig9Users scales the Newp population from the Twip scale (§5.4 ran
// 50K users against Twip's 1.8M; half the scale's user count keeps the
// same spirit), with a floor that keeps tiny scales runnable.
func fig9Users(scaleUsers int) int {
	users := scaleUsers / 2
	if users < 20 {
		users = 20
	}
	return users
}

// fig9Dataset applies the §5.4 dataset ratios — 100K articles : 50K
// users : 1M comments : 2M votes = 2 : 1 : 20 : 40 per user. The 20
// comments/user ratio drives the karma fan-out that makes interleaving
// expensive at high vote rates (each vote copies the commenter's karma
// into every page they commented on).
func fig9Dataset(users int, seed int64) *newp.Dataset {
	return &newp.Dataset{
		Users:    users,
		Articles: users * 2,
		Comments: users * 20,
		Votes:    users * 40,
		Seed:     seed,
	}
}
