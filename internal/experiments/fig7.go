package experiments

import (
	"fmt"
	"io"
	"time"

	"pequod/internal/client"

	"pequod/internal/baselines"
	"pequod/internal/baselines/memsim"
	"pequod/internal/baselines/redisim"
	"pequod/internal/baselines/sqlsim"
	"pequod/internal/twip"
)

// Fig7Row is one line of the Figure 7 table: "Time to process a Twip
// experiment to completion using Pequod and related systems. Smaller
// numbers are better."
type Fig7Row struct {
	System  string
	Runtime time.Duration
	Ratio   float64 // runtime / Pequod runtime (paper: 1.00x … 9.55x)
	RPCs    int64   // client requests issued during the timed run
}

// Fig7 runs the §5.2 system comparison: the same Twip workload to
// completion on Pequod, Redis, client Pequod, memcached, and the
// trigger-maintained relational database.
func Fig7(sc Scale, out io.Writer) ([]Fig7Row, error) {
	g, posts, w := buildTwip(sc, sc.ActivePct, twip.DefaultMix)
	fprintf(out, "Figure 7: system comparison (scale=%s: %d users, %d edges, %d ops)\n",
		sc.Name, sc.Users, g.Edges(), len(w.Ops))

	type sys struct {
		name  string
		setup func() (twip.Backend, func(), error)
	}
	var clusterClients []*client.Client // set by each setup for RPC counting
	systems := []sys{
		{"Pequod", func() (twip.Backend, func(), error) {
			cl, err := startPequodCluster(sc.Servers, twip.Joins,
				map[string]int{"t": 2}, pequodServerDefaults())
			if err != nil {
				return nil, nil, err
			}
			clusterClients = cl.clients
			return &twip.PequodBackend{Clients: cl.clients}, cl.Close, nil
		}},
		{"Redis", func() (twip.Backend, func(), error) {
			cl, err := startBaselineCluster(sc.Servers, func() baselines.Handler { return redisim.New() })
			if err != nil {
				return nil, nil, err
			}
			clusterClients = cl.clients
			return &twip.RedisBackend{Clients: cl.clients}, cl.Close, nil
		}},
		{"Client Pequod", func() (twip.Backend, func(), error) {
			cl, err := startPequodCluster(sc.Servers, "", nil, pequodServerDefaults())
			if err != nil {
				return nil, nil, err
			}
			clusterClients = cl.clients
			return &twip.ClientPequodBackend{Clients: cl.clients}, cl.Close, nil
		}},
		{"memcached", func() (twip.Backend, func(), error) {
			cl, err := startBaselineCluster(sc.Servers, func() baselines.Handler { return memsim.New() })
			if err != nil {
				return nil, nil, err
			}
			clusterClients = cl.clients
			return &twip.MemcachedBackend{Clients: cl.clients}, cl.Close, nil
		}},
		{"PostgreSQL", func() (twip.Backend, func(), error) {
			// One database instance, as in the paper's setup.
			cl, err := startBaselineCluster(1, func() baselines.Handler { return sqlsim.NewTwip() })
			if err != nil {
				return nil, nil, err
			}
			clusterClients = cl.clients
			return &twip.PostgresBackend{Client: cl.clients[0]}, cl.Close, nil
		}},
	}

	var rows []Fig7Row
	for _, s := range systems {
		b, cleanup, err := s.setup()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		if err := twip.LoadGraph(b, g, sc.Workers); err != nil {
			cleanup()
			return nil, fmt.Errorf("%s: load graph: %w", s.name, err)
		}
		if err := twip.LoadPosts(b, posts, sc.Workers); err != nil {
			cleanup()
			return nil, fmt.Errorf("%s: load posts: %w", s.name, err)
		}
		var before int64
		for _, c := range clusterClients {
			before += c.RPCs()
		}
		res, err := twip.Run(b, w, sc.Workers)
		var after int64
		for _, c := range clusterClients {
			after += c.RPCs()
		}
		cleanup()
		if err != nil {
			return nil, fmt.Errorf("%s: run: %w", s.name, err)
		}
		if res.Errors > 0 {
			return nil, fmt.Errorf("%s: %d op errors", s.name, res.Errors)
		}
		rows = append(rows, Fig7Row{System: s.name, Runtime: res.Duration, RPCs: after - before})
	}

	base := rows[0].Runtime.Seconds()
	for i := range rows {
		rows[i].Ratio = rows[i].Runtime.Seconds() / base
	}
	fprintf(out, "%-16s %12s %8s %12s\n", "System", "Runtime", "Ratio", "RPCs")
	for _, r := range rows {
		fprintf(out, "%-16s %11.3fs %7.2fx %12d\n", r.System, r.Runtime.Seconds(), r.Ratio, r.RPCs)
	}
	fprintf(out, "(\u00a75.2: client-managed systems amplify RPC counts; the paper attributes\n")
	fprintf(out, " half of client Pequod's penalty to RPC overhead, half to insertion overhead)\n")
	return rows, nil
}
