package experiments

import (
	"io"
	"runtime"
	"testing"
)

// TestRebalanceScaleShape runs the rebalance experiment at Tiny scale.
// Byte-identity of both pools' timelines against a single engine is
// asserted inside RebalanceScale; here we check the rows are sane and
// that the rebalancer actually migrated off the clustered default
// bounds. The throughput win only manifests with multiple cores, so it
// is reported, not asserted.
func TestRebalanceScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := RebalanceScale(Tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Rebalance || !rows[1].Rebalance {
		t.Fatalf("rows = %+v", rows)
	}
	for i, r := range rows {
		if r.QPS <= 0 || r.Speedup <= 0 {
			t.Fatalf("row %d = %+v", i, r)
		}
	}
	if rows[0].Migrations != 0 {
		t.Fatalf("static pool migrated: %+v", rows[0])
	}
	if rows[1].Migrations == 0 {
		t.Fatalf("rebalancer never migrated: %+v", rows[1])
	}
	// The hot shard must demonstrably cool off: statically one shard
	// serves essentially everything; after rebalancing it serves a
	// strictly smaller share. (The throughput ratio depends on core
	// count, so it is logged, not asserted.)
	if rows[0].HotShare < 0.95 {
		t.Fatalf("static pool was not hot to begin with: %+v", rows[0])
	}
	if rows[1].HotShare > 0.8 {
		t.Fatalf("hot shard did not cool off: %+v", rows[1])
	}
	t.Logf("GOMAXPROCS=%d: static %.0f qps (hottest %.0f%%), rebalanced %.0f qps (hottest %.0f%%, %.2fx, %d migrations)",
		runtime.GOMAXPROCS(0), rows[0].QPS, 100*rows[0].HotShare,
		rows[1].QPS, 100*rows[1].HotShare, rows[1].Speedup, rows[1].Migrations)
}
