package experiments

import (
	"io"
	"sort"
	"time"

	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/twip"
)

// CelebrityRow reports one configuration of the §2.3 celebrity-join
// comparison.
type CelebrityRow struct {
	Config      string
	Runtime     time.Duration
	Bytes       int64
	Celebrities int
}

// Celebrity reproduces the §2.3/§5.2 claim: "In our tests, celebrity
// timelines don't offer performance advantages, but they do save
// memory." The same workload runs with (a) the plain timeline join, all
// posts eagerly copied into followers' timelines, and (b) the celebrity
// join set, where the most-followed users' posts live in cp|/ct| and
// reach timelines through a pull join at read time, never materialized.
func Celebrity(sc Scale, out io.Writer) ([]CelebrityRow, error) {
	g := twip.Generate(sc.Users, sc.Edges, sc.seedAt(42))
	// Celebrities: the top 1% most-followed users (at least 1).
	type uc struct {
		u int32
		n int
	}
	byFollowers := make([]uc, g.Users)
	for u := 0; u < g.Users; u++ {
		byFollowers[u] = uc{int32(u), len(g.Followers[u])}
	}
	sort.Slice(byFollowers, func(i, j int) bool { return byFollowers[i].n > byFollowers[j].n })
	nCeleb := g.Users / 100
	if nCeleb < 1 {
		nCeleb = 1
	}
	isCeleb := map[int32]bool{}
	for _, c := range byFollowers[:nCeleb] {
		isCeleb[c.u] = true
	}

	hist := twip.GeneratePosts(g, sc.Posts, sc.seedAt(7), sc.TweetLen)

	run := func(name string, joins string, celebSplit bool) (CelebrityRow, error) {
		e := core.New(core.Options{})
		if err := e.InstallText(joins); err != nil {
			return CelebrityRow{}, err
		}
		e.SetSubtableDepth("t", 2)
		for u := 0; u < g.Users; u++ {
			uid := twip.UserID(int32(u))
			for _, p := range g.Following[u] {
				e.Put(keys.Join("s", uid, twip.UserID(p)), "1")
			}
		}
		for _, op := range hist {
			table := "p"
			if celebSplit && isCeleb[op.User] {
				table = "cp"
			}
			e.Put(keys.Join(table, twip.UserID(op.User), twip.TimeID(op.Time)), op.Text)
		}
		start := time.Now()
		// Everyone logs in (materializing timelines), then a round of
		// incremental checks.
		for u := 0; u < g.Users; u++ {
			uid := twip.UserID(int32(u))
			e.Scan("t|"+uid+"|", keys.RangeEnd("t", uid), 0)
		}
		for u := 0; u < g.Users; u++ {
			uid := twip.UserID(int32(u))
			e.Scan(keys.Join("t", uid, twip.TimeID(int64(sc.Posts/2))), keys.RangeEnd("t", uid), 0)
		}
		return CelebrityRow{
			Config:      name,
			Runtime:     time.Since(start),
			Bytes:       e.Store().Bytes(),
			Celebrities: nCeleb,
		}, nil
	}

	fprintf(out, "Celebrity joins (§2.3): %d celebrities among %d users\n", nCeleb, g.Users)
	var rows []CelebrityRow
	a, err := run("regular join", twip.Joins, false)
	if err != nil {
		return nil, err
	}
	rows = append(rows, a)
	b, err := run("celebrity joins", twip.CelebrityJoins, true)
	if err != nil {
		return nil, err
	}
	rows = append(rows, b)
	for _, r := range rows {
		fprintf(out, "  %-16s %11.3fs %14d bytes\n", r.Config, r.Runtime.Seconds(), r.Bytes)
	}
	fprintf(out, "  memory saved by celebrity joins: %.2fx\n",
		float64(rows[0].Bytes)/float64(rows[1].Bytes))
	return rows, nil
}
