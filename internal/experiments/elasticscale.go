package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	pcluster "pequod/internal/cluster"
	"pequod/internal/core"
	"pequod/internal/partition"
	"pequod/internal/server"
)

// ElasticScaleRow is one phase's measurement from ElasticScale.
type ElasticScaleRow struct {
	Phase   string  // "3 members", "joined (4)", "drained (3)"
	Members int     // distinct servers serving
	QPS     float64 // steady-state timeline checks per second
	Speedup float64 // QPS relative to the first phase
}

// ElasticScale traces aggregate throughput while a cluster grows and
// shrinks live: three networked servers serve a uniform closed-loop
// timeline-check stream; a fourth server joins under that traffic
// (Cluster.AddServer — JoinCluster wiring, an extract/splice granting
// it the busiest member's upper slice, a published grown map) and the
// stream is measured again; then the new member drains back out
// (Cluster.DrainServer streams its ranges to the neighbors) and the
// stream is measured a third time. Timelines are verified byte-
// identical to a reference before each timed phase, so the elasticity
// is exercised for correctness as well as throughput. With single-shard
// members each server serializes its reads, so the join's extra server
// raises aggregate throughput when cores are available; the drain gives
// that gain back.
func ElasticScale(sc Scale, out io.Writer) ([]ElasticScaleRow, error) {
	const nServers = 3
	users := sc.Users
	if users < 64 {
		users = 64
	}
	var pairs []core.KV
	for u := 0; u < users; u++ {
		for p := 0; p < 3; p++ {
			pairs = append(pairs, core.KV{
				Key:   fmt.Sprintf("t|u%07d|%04d", u, p),
				Value: "elastic-scale tweet body",
			})
		}
	}
	want := append([]core.KV(nil), pairs...)
	sort.Slice(want, func(i, j int) bool { return want[i].Key < want[j].Key })

	totalChecks := users * sc.ChecksPerUser
	if totalChecks < 6000 {
		totalChecks = 6000
	}
	checks := make([]int32, totalChecks)
	for i := range checks {
		checks[i] = int32(i % users)
	}

	fprintf(out, "ElasticScale (%s): %d users, %d checks, %d workers, %d servers growing to %d and back\n",
		sc.Name, users, totalChecks, sc.Workers, nServers, nServers+1)

	ctx := context.Background()
	var servers []*server.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	addrs := make([]string, nServers)
	bounds := partition.UserBounds(nServers, users, 7, "u", "t")
	for i := 0; i < nServers; i++ {
		s, err := server.New(server.Config{Name: fmt.Sprintf("m%d", i)})
		if err != nil {
			return nil, err
		}
		servers = append(servers, s)
		if addrs[i], err = s.Start(); err != nil {
			return nil, err
		}
	}
	cl, err := pcluster.New(ctx, pcluster.Config{Addrs: addrs, Bounds: bounds})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if err := cl.PutBatch(ctx, pairs); err != nil {
		return nil, err
	}

	fresh, err := server.New(server.Config{Name: "joiner"})
	if err != nil {
		return nil, err
	}
	servers = append(servers, fresh)
	freshAddr, err := fresh.Start()
	if err != nil {
		return nil, err
	}

	var rows []ElasticScaleRow
	measure := func(phase string) error {
		got, err := cl.Scan(ctx, "t|", "t}", 0)
		if err == nil {
			err = kvsEqual(got, want)
		}
		if err != nil {
			return fmt.Errorf("%s: timelines diverge: %w", phase, err)
		}
		// One warm pass so every member's coverage is materialized before
		// the timed pass.
		driveElasticChecks(ctx, cl, checks[:min(len(checks), 2048)], sc.Workers)
		qps := float64(totalChecks) / driveElasticChecks(ctx, cl, checks, sc.Workers).Seconds()
		row := ElasticScaleRow{Phase: phase, Members: cl.Members(), QPS: qps, Speedup: 1}
		if len(rows) > 0 {
			row.Speedup = qps / rows[0].QPS
		}
		rows = append(rows, row)
		fprintf(out, "  %-12s %d members %9.0f checks/s  (%.2fx)\n", phase, row.Members, row.QPS, row.Speedup)
		return nil
	}

	if err := measure("static"); err != nil {
		return nil, err
	}
	// Grow under traffic: run the check stream concurrently with the
	// join so the elasticity is exercised live, then measure.
	var wg sync.WaitGroup
	wg.Add(1)
	var joinErr error
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond) // land mid-stream
		joinErr = cl.AddServer(ctx, freshAddr)
	}()
	driveElasticChecks(ctx, cl, checks, sc.Workers)
	wg.Wait()
	if joinErr != nil {
		return nil, fmt.Errorf("joining %s: %w", freshAddr, joinErr)
	}
	if err := measure("joined"); err != nil {
		return nil, err
	}
	// Shrink back, also under traffic.
	wg.Add(1)
	var drainErr error
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		drainErr = cl.DrainServer(ctx, freshAddr)
	}()
	driveElasticChecks(ctx, cl, checks, sc.Workers)
	wg.Wait()
	if drainErr != nil {
		return nil, fmt.Errorf("draining %s: %w", freshAddr, drainErr)
	}
	if err := measure("drained"); err != nil {
		return nil, err
	}
	return rows, nil
}

// driveElasticChecks serves the check stream closed-loop with the given
// worker count and returns the elapsed wall time.
func driveElasticChecks(ctx context.Context, cl *pcluster.Cluster, users []int32, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	chunk := (len(users) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(users) {
			break
		}
		hi := min(lo+chunk, len(users))
		wg.Add(1)
		go func(mine []int32) {
			defer wg.Done()
			for _, u := range mine {
				lo := fmt.Sprintf("t|u%07d|", u)
				cl.Scan(ctx, lo, lo[:len(lo)-1]+"}", 0)
			}
		}(users[lo:hi])
	}
	wg.Wait()
	return time.Since(start)
}
