package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/twip"
)

// Fig8Row is one point of the Figure 8 sweep: runtime (and memory) of a
// materialization strategy at a given active-user percentage.
type Fig8Row struct {
	Strategy  string
	ActivePct int
	Runtime   time.Duration
	Bytes     int64
}

// Fig8 compares materialization strategies (§5.3): no materialization
// (pull), full materialization (everything warmed and kept up to date),
// and Pequod's dynamic materialization. The workload has only timeline
// checks and posts; p active-user percentages sweep the check:post ratio
// from 1:1 toward 100:1.
func Fig8(sc Scale, activePcts []int, out io.Writer) ([]Fig8Row, error) {
	g := twip.Generate(sc.Users, sc.Edges, sc.seedAt(42))
	postBase := fig8PostBase(sc.Posts)
	fprintf(out, "Figure 8: materialization strategy (scale=%s, %d posts per run)\n", sc.Name, postBase)
	fprintf(out, "%-22s %8s %12s %14s\n", "Strategy", "active%", "Runtime", "Bytes")

	strategies := []struct {
		name string
		pull bool
		full bool
	}{
		{"No materialization", true, false},
		{"Full materialization", false, true},
		{"Dynamic materialization", false, false},
	}

	var rows []Fig8Row
	for _, strat := range strategies {
		for _, p := range activePcts {
			runtime, bytes, err := runFig8(g, sc, postBase, p, strat.pull, strat.full)
			if err != nil {
				return nil, fmt.Errorf("%s at %d%%: %w", strat.name, p, err)
			}
			rows = append(rows, Fig8Row{strat.name, p, runtime, bytes})
			fprintf(out, "%-22s %7d%% %11.3fs %14d\n", strat.name, p, runtime.Seconds(), bytes)
		}
	}
	return rows, nil
}

// fig8PostBase sizes the per-run post count: the check count scales as
// p × posts (up to 100:1), so the post base is kept smaller than
// Figure 7's history, with a floor that keeps tiny scales meaningful.
func fig8PostBase(scalePosts int) int {
	postBase := scalePosts / 4
	if postBase < 500 {
		postBase = 500
	}
	return postBase
}

// runFig8 executes one (strategy, activePct) cell on an embedded engine:
// the strategies differ in join annotation and warming, not transport, so
// the comparison runs in process.
func runFig8(g *twip.Graph, sc Scale, postBase, activePct int, pull, full bool) (time.Duration, int64, error) {
	e := core.New(core.Options{})
	joins := twip.Joins
	if pull {
		joins = "t|<user>|<time:10>|<poster> = pull check s|<user>|<poster> copy p|<poster>|<time:10>"
	}
	if err := e.InstallText(joins); err != nil {
		return 0, 0, err
	}
	e.SetSubtableDepth("t", 2)

	// Subscription graph (base data).
	for u := 0; u < g.Users; u++ {
		uid := twip.UserID(int32(u))
		for _, p := range g.Following[u] {
			e.Put(keys.Join("s", uid, twip.UserID(p)), "1")
		}
	}
	// Historical posts, distributed log-proportionally (§5.3).
	hist := twip.GeneratePosts(g, postBase, sc.seedAt(7), sc.TweetLen)
	for _, op := range hist {
		e.Put(keys.Join("p", twip.UserID(op.User), twip.TimeID(op.Time)), op.Text)
	}

	rng := rand.New(rand.NewSource(sc.seedAt(11)))
	nActive := g.Users * activePct / 100
	if nActive < 1 {
		nActive = 1
	}
	active := make([]int32, nActive)
	for i, u := range rng.Perm(g.Users)[:nActive] {
		active[i] = int32(u)
	}

	if full {
		// Full materialization: every timeline (active or not) is
		// computed up front and kept up to date — "inevitably uses more
		// memory when users can be inactive" (§5.3). Warming is part of
		// the strategy's cost and is included in the runtime, matching
		// run-to-completion measurement.
	}

	// Timed phase: postBase new posts + p × postBase checks, uniformly
	// across active users — §5.3's "check:post ratio between 1:1 and
	// 100:1" as p sweeps 1..100.
	newPosts := twip.GeneratePosts(g, postBase, sc.seedAt(13), sc.TweetLen)
	for i := range newPosts {
		newPosts[i].Time += int64(postBase) // after history
	}
	nChecks := postBase * activePct
	lastCheck := make(map[int32]int64, nActive)

	start := time.Now()
	if full {
		for u := 0; u < g.Users; u++ {
			uid := twip.UserID(int32(u))
			e.Scan("t|"+uid+"|", keys.PrefixEnd("t|"+uid+"|"), 0)
		}
	}
	ci, pi := 0, 0
	clock := int64(postBase)
	for ci < nChecks || pi < len(newPosts) {
		// Interleave: p checks per post keeps the ratio steady.
		doChecks := activePct
		if doChecks < 1 {
			doChecks = 1
		}
		for k := 0; k < doChecks && ci < nChecks; k++ {
			u := active[ci%nActive]
			uid := twip.UserID(u)
			lo := keys.Join("t", uid, twip.TimeID(lastCheck[u]))
			e.Scan(lo, keys.RangeEnd("t", uid), 0)
			lastCheck[u] = clock
			ci++
		}
		if pi < len(newPosts) {
			op := newPosts[pi]
			clock = op.Time
			e.Put(keys.Join("p", twip.UserID(op.User), twip.TimeID(op.Time)), op.Text)
			pi++
		}
	}
	return time.Since(start), e.Store().Bytes(), nil
}
