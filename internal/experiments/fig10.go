package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"pequod/internal/client"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/server"
	"pequod/internal/twip"
)

// Fig10Row is one point of the scalability sweep: aggregate query
// throughput with a given number of compute servers.
type Fig10Row struct {
	ComputeServers int
	QPS            float64
	Ops            int
	Runtime        time.Duration
	BaseBytes      int64
	ComputeBytes   int64
}

// Fig10 reproduces §5.5: a fixed Twip workload against a backing store of
// base servers and a varying number of compute servers executing the
// timeline join. "All of a user's compute requests are directed to the
// same compute server"; caches are warmed (every active user logged in)
// before measurement; throughput should rise sub-linearly with compute
// servers (the paper: 3x from 12→48).
func Fig10(sc Scale, computeCounts []int, baseServers int, out io.Writer) ([]Fig10Row, error) {
	g := twip.Generate(sc.Users, sc.Edges, sc.seedAt(42))
	posts := twip.GeneratePosts(g, sc.Posts, sc.seedAt(43), sc.TweetLen)
	w := twip.GenerateWorkload(g, twip.WorkloadConfig{
		ActiveFraction: float64(sc.ActivePct) / 100,
		ChecksPerUser:  sc.ChecksPerUser,
		Seed:           sc.seedAt(44),
		StartTime:      int64(len(posts)),
		TweetLen:       sc.TweetLen,
	})
	fprintf(out, "Figure 10: scalability (scale=%s, %d base servers, %d ops per run)\n",
		sc.Name, baseServers, len(w.Ops))
	fprintf(out, "%8s %12s %12s %14s %14s\n", "compute", "QPS", "Runtime", "BaseBytes", "ComputeBytes")

	var rows []Fig10Row
	for _, nc := range computeCounts {
		row, err := runFig10(g, posts, w, sc, baseServers, nc)
		if err != nil {
			return nil, fmt.Errorf("compute=%d: %w", nc, err)
		}
		rows = append(rows, row)
		fprintf(out, "%8d %12.0f %11.3fs %14d %14d\n",
			row.ComputeServers, row.QPS, row.Runtime.Seconds(), row.BaseBytes, row.ComputeBytes)
	}
	return rows, nil
}

// fig10Cluster is the §5.5 topology.
type fig10Cluster struct {
	baseServers    []*server.Server
	baseClients    []*client.Client
	computeServers []*server.Server
	computeClients []*client.Client
	pmap           *partition.Map
	ownerAddr      []string
}

func (c *fig10Cluster) Close() {
	for _, cl := range c.baseClients {
		cl.Close()
	}
	for _, cl := range c.computeClients {
		cl.Close()
	}
	for _, s := range c.computeServers {
		s.Close()
	}
	for _, s := range c.baseServers {
		s.Close()
	}
}

// basePartition builds the home-server map for the Twip base tables and
// the per-owner address list. Besides the per-table user splits, each
// table after the first gets a bound at its start: without it, one
// range spans the previous table's tail and this table's head — two
// spans whose user-id arithmetic picks different servers — and remote
// loads for the head span would be routed to the tail's server, where
// the rows never were (clients write them via shardOfBound).
func basePartition(users, nBase int, baseAddrs []string) (*partition.Map, []string) {
	bounds := append(partition.UserBounds(nBase, users, 7, "u", "p", "s"), "s|")
	sort.Strings(bounds)
	pmap := partition.MustNew(bounds...)
	// Owner i covers [bounds[i-1], bounds[i]); its server is determined
	// by the covering range's low key (table-local user split).
	ownerAddr := make([]string, pmap.Servers())
	for i := range ownerAddr {
		var rep string
		if i == 0 {
			rep = "" // lowest range: first shard
		} else {
			rep = bounds[i-1]
		}
		ownerAddr[i] = baseAddrs[shardOfBound(rep, users, nBase)]
	}
	return pmap, ownerAddr
}

// shardOfBound maps a partition bound ("p|u0001234" or "") to its base
// server index.
func shardOfBound(bound string, users, nBase int) int {
	if bound == "" {
		return 0
	}
	comps := keys.Split(bound)
	if len(comps) < 2 {
		return 0
	}
	var id int
	fmt.Sscanf(comps[1], "u%d", &id)
	s := id * nBase / users
	if s >= nBase {
		s = nBase - 1
	}
	return s
}

func startFig10(users, nBase, nCompute int) (*fig10Cluster, error) {
	c := &fig10Cluster{}
	baseAddrs := make([]string, nBase)
	for i := 0; i < nBase; i++ {
		s, err := server.New(server.Config{Name: fmt.Sprintf("base%d", i)})
		if err != nil {
			c.Close()
			return nil, err
		}
		addr, err := s.Start()
		if err != nil {
			c.Close()
			return nil, err
		}
		cl, err := client.Dial(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.baseServers = append(c.baseServers, s)
		c.baseClients = append(c.baseClients, cl)
		baseAddrs[i] = addr
	}
	c.pmap, c.ownerAddr = basePartition(users, nBase, baseAddrs)
	for i := 0; i < nCompute; i++ {
		s, err := server.New(server.Config{
			Name:           fmt.Sprintf("compute%d", i),
			Joins:          twip.Joins,
			SubtableDepths: map[string]int{"t": 2},
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := s.ConnectPeers(c.pmap, c.ownerAddr, "p", "s"); err != nil {
			c.Close()
			return nil, err
		}
		addr, err := s.Start()
		if err != nil {
			c.Close()
			return nil, err
		}
		cl, err := client.Dial(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.computeServers = append(c.computeServers, s)
		c.computeClients = append(c.computeClients, cl)
	}
	return c, nil
}

func runFig10(g *twip.Graph, posts []twip.Op, w *twip.Workload, sc Scale, nBase, nCompute int) (Fig10Row, error) {
	c, err := startFig10(g.Users, nBase, nCompute)
	if err != nil {
		return Fig10Row{}, err
	}
	defer c.Close()

	// "We run enough clients to saturate the Pequod servers" (§5.1):
	// driver parallelism scales with the cluster under test.
	workers := sc.Workers * 4
	sc.Workers = workers

	// Base-table keys ("p|uNNNNNNN|..." / "s|uNNNNNNN|...") route to
	// their home server by the same shard arithmetic that built the
	// partition map, so client writes and the compute servers' remote
	// loader agree on every key's home.
	baseFor := func(key string) *client.Client {
		return c.baseClients[shardOfBound(key, g.Users, nBase)]
	}
	computeFor := func(u int32) *client.Client {
		return c.computeClients[partition.UserShard(twip.UserID(u), nCompute)]
	}

	// Base data: subscriptions and historical posts to home servers.
	err = parallel(sc.Workers, len(w.Active), func(i int) error {
		u := w.Active[i]
		uid := twip.UserID(u)
		for _, p := range g.Following[u] {
			key := keys.Join("s", uid, twip.UserID(p))
			if err := baseFor(key).Put(key, "1"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Fig10Row{}, err
	}
	// Inactive users' subscriptions still live at the base store.
	activeSet := map[int32]bool{}
	for _, u := range w.Active {
		activeSet[u] = true
	}
	err = parallel(sc.Workers, g.Users, func(i int) error {
		u := int32(i)
		if activeSet[u] {
			return nil
		}
		uid := twip.UserID(u)
		for _, p := range g.Following[u] {
			key := keys.Join("s", uid, twip.UserID(p))
			if err := baseFor(key).Put(key, "1"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Fig10Row{}, err
	}
	err = parallel(sc.Workers, len(posts), func(i int) error {
		op := posts[i]
		key := keys.Join("p", twip.UserID(op.User), twip.TimeID(op.Time))
		return baseFor(key).Put(key, op.Text)
	})
	if err != nil {
		return Fig10Row{}, err
	}

	// Warm: log every active user in (installs join status ranges,
	// fetches base data, establishes subscriptions — §5.5).
	err = parallel(sc.Workers, len(w.Active), func(i int) error {
		u := w.Active[i]
		uid := twip.UserID(u)
		_, err := computeFor(u).Scan("t|"+uid+"|", keys.RangeEnd("t", uid), 0)
		return err
	})
	if err != nil {
		return Fig10Row{}, err
	}

	// Timed phase: the workload runs as fast as possible; writes go to
	// base homes, reads to user-affine compute servers.
	start := time.Now()
	var errCount int64
	var mu sync.Mutex
	err = parallel(sc.Workers, len(w.Ops), func(i int) error {
		op := w.Ops[i]
		var err error
		switch op.Kind {
		case twip.OpLogin:
			uid := twip.UserID(op.User)
			_, err = computeFor(op.User).Scan("t|"+uid+"|", keys.RangeEnd("t", uid), 0)
		case twip.OpCheck:
			uid := twip.UserID(op.User)
			lo := keys.Join("t", uid, twip.TimeID(op.Since))
			_, err = computeFor(op.User).Scan(lo, keys.RangeEnd("t", uid), 0)
		case twip.OpSubscribe:
			key := keys.Join("s", twip.UserID(op.User), twip.UserID(op.Target))
			err = baseFor(key).Put(key, "1")
		case twip.OpPost:
			key := keys.Join("p", twip.UserID(op.User), twip.TimeID(op.Time))
			err = baseFor(key).Put(key, op.Text)
		}
		if err != nil {
			mu.Lock()
			errCount++
			mu.Unlock()
		}
		return nil
	})
	runtime := time.Since(start)
	if err != nil {
		return Fig10Row{}, err
	}
	if errCount > 0 {
		return Fig10Row{}, fmt.Errorf("%d op errors", errCount)
	}

	row := Fig10Row{
		ComputeServers: nCompute,
		Ops:            len(w.Ops),
		Runtime:        runtime,
		QPS:            float64(len(w.Ops)) / runtime.Seconds(),
	}
	for _, s := range c.baseServers {
		row.BaseBytes += s.Bytes()
	}
	for _, s := range c.computeServers {
		row.ComputeBytes += s.Bytes()
	}
	return row, nil
}

// parallel runs fn(0..n-1) across w workers, returning the first error.
func parallel(w, n int, fn func(i int) error) error {
	if w < 1 {
		w = 1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, w)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := k; i < n; i += w {
				if err := fn(i); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(k)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}
