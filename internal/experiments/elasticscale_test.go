package experiments

import (
	"io"
	"runtime"
	"testing"
)

// TestElasticScaleShape runs the elastic-membership experiment at Tiny
// scale: timeline byte-identity against a reference is asserted inside
// ElasticScale before every timed phase; here we check the membership
// arc actually happened — three members, four after the live join, three
// again after the drain — and that every phase served traffic. The
// throughput win from the join depends on core count, so it is logged,
// not asserted.
func TestElasticScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := ElasticScale(Tiny, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Members != 3 || rows[1].Members != 4 || rows[2].Members != 3 {
		t.Fatalf("membership arc = %d -> %d -> %d, want 3 -> 4 -> 3",
			rows[0].Members, rows[1].Members, rows[2].Members)
	}
	for i, r := range rows {
		if r.QPS <= 0 || r.Speedup <= 0 {
			t.Fatalf("row %d = %+v", i, r)
		}
	}
	t.Logf("GOMAXPROCS=%d: static %.0f checks/s, joined %.0f checks/s (%.2fx), drained %.0f checks/s (%.2fx)",
		runtime.GOMAXPROCS(0), rows[0].QPS, rows[1].QPS, rows[1].Speedup, rows[2].QPS, rows[2].Speedup)
}
