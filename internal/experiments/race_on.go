//go:build race

package experiments

// raceEnabled reports whether the race detector is active; performance-
// shape assertions are skipped under its order-of-magnitude slowdown.
const raceEnabled = true
