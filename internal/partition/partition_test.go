package partition

import (
	"testing"

	"pequod/internal/keys"
)

func TestOwner(t *testing.T) {
	m := MustNew("g", "p")
	cases := []struct {
		key  string
		want int
	}{
		{"a", 0}, {"f", 0}, {"g", 1}, {"m", 1}, {"p", 2}, {"z", 2}, {"", 0},
	}
	for _, c := range cases {
		if got := m.Owner(c.key); got != c.want {
			t.Errorf("Owner(%q) = %d, want %d", c.key, got, c.want)
		}
	}
	if m.Servers() != 3 {
		t.Fatalf("Servers = %d", m.Servers())
	}
}

func TestNewVersioned(t *testing.T) {
	m, err := NewVersioned(7, "g", "p")
	if err != nil || m.Version() != 7 || m.Servers() != 3 {
		t.Fatalf("NewVersioned = %v, %v", m, err)
	}
	if _, err := NewVersioned(1, "b", "a"); err == nil {
		t.Fatal("unsorted bounds accepted")
	}
	// A successor of a rebuilt map continues the generation.
	n, err := m.MoveBound(0, "h")
	if err != nil || n.Version() != 8 {
		t.Fatalf("MoveBound from rebuilt map: %v, %v", n, err)
	}
}

func TestEpochOrdering(t *testing.T) {
	m, err := NewEpochVersioned(3, 7, "g", "p")
	if err != nil || m.Epoch() != 3 || m.Version() != 7 {
		t.Fatalf("NewEpochVersioned = %v, %v", m, err)
	}
	// Successors keep the epoch and bump the version.
	n, err := m.MoveBound(0, "h")
	if err != nil || n.Epoch() != 3 || n.Version() != 8 {
		t.Fatalf("MoveBound successor = e%d v%d (%v)", n.Epoch(), n.Version(), err)
	}
	// Total order: epoch dominates, version breaks epoch ties.
	cases := []struct {
		aE, aV, bE, bV int64
		want           int
	}{
		{3, 7, 3, 7, 0},
		{3, 7, 3, 8, -1},
		{3, 8, 3, 7, 1},
		{2, 99, 3, 0, -1},
		{4, 0, 3, 99, 1},
	}
	for _, c := range cases {
		if got := Compare(c.aE, c.aV, c.bE, c.bV); got != c.want {
			t.Errorf("Compare(e%d v%d, e%d v%d) = %d, want %d", c.aE, c.aV, c.bE, c.bV, got, c.want)
		}
	}
	if !n.NewerThan(3, 7) || n.NewerThan(3, 8) || n.NewerThan(4, 0) {
		t.Fatalf("NewerThan inconsistent at e%d v%d", n.Epoch(), n.Version())
	}
	// WithEpoch ratchets forward only.
	w, err := n.WithEpoch(5)
	if err != nil || w.Epoch() != 5 || w.Version() != 8 || len(w.Bounds()) != 2 {
		t.Fatalf("WithEpoch = %v, %v", w, err)
	}
	if _, err := n.WithEpoch(2); err == nil {
		t.Fatal("epoch moved backwards")
	}
	// Two coordinators racing from one parent mint comparable maps.
	a, _ := m.MoveBound(0, "d")
	b, _ := m.MoveBound(0, "k")
	a, _ = a.WithEpoch(10)
	b, _ = b.WithEpoch(11)
	if Compare(a.Epoch(), a.Version(), b.Epoch(), b.Version()) == 0 {
		t.Fatal("concurrent mints tied")
	}
}

func TestInsertRemoveBound(t *testing.T) {
	m := MustNew("g", "p") // owners: [ ,g) [g,p) [p, )
	grown, err := m.InsertBound(2, "t")
	if err != nil || grown.Servers() != 4 || grown.Version() != 1 {
		t.Fatalf("InsertBound = %v, %v", grown, err)
	}
	// New owner 3 serves [t, +inf); owner 2 kept [p, t).
	if grown.Owner("s") != 2 || grown.Owner("t") != 3 || grown.Owner("z") != 3 {
		t.Fatalf("grown owners: s=%d t=%d z=%d", grown.Owner("s"), grown.Owner("t"), grown.Owner("z"))
	}
	// Splitting a middle owner shifts higher indexes up.
	mid, err := m.InsertBound(1, "k")
	if err != nil || mid.Servers() != 4 {
		t.Fatalf("middle InsertBound: %v, %v", mid, err)
	}
	if mid.Owner("h") != 1 || mid.Owner("k") != 2 || mid.Owner("q") != 3 {
		t.Fatalf("mid owners: h=%d k=%d q=%d", mid.Owner("h"), mid.Owner("k"), mid.Owner("q"))
	}
	// Bounds outside the owner's range are rejected.
	for _, bad := range []string{"a", "g", "p", ""} {
		if _, err := m.InsertBound(1, bad); err == nil {
			t.Fatalf("InsertBound(1, %q) accepted", bad)
		}
	}
	if _, err := m.InsertBound(5, "x"); err == nil {
		t.Fatal("out-of-range owner accepted")
	}

	shrunk, err := grown.RemoveBound(2)
	if err != nil || shrunk.Servers() != 3 || shrunk.Version() != 2 {
		t.Fatalf("RemoveBound = %v, %v", shrunk, err)
	}
	// Owners 2 and 3 merged into owner 2.
	if shrunk.Owner("q") != 2 || shrunk.Owner("z") != 2 {
		t.Fatalf("shrunk owners: q=%d z=%d", shrunk.Owner("q"), shrunk.Owner("z"))
	}
	if _, err := shrunk.RemoveBound(2); err == nil {
		t.Fatal("out-of-range bound removal accepted")
	}
}

func TestDiffAddrs(t *testing.T) {
	old := MustNew("g", "p")
	oldA := []string{"a", "b", "c"}
	// Same shape, one bound lowered: same as Diff.
	d := DiffAddrs(old, oldA, MustNew("d", "p"), oldA)
	if len(d) != 1 || d[0] != (keys.Range{Lo: "d", Hi: "g"}) {
		t.Fatalf("lowered-bound DiffAddrs = %v", d)
	}
	// A join: owner 2's range split at t, new server d takes the top.
	grown, _ := old.InsertBound(2, "t")
	d = DiffAddrs(old, oldA, grown, []string{"a", "b", "c", "d"})
	if len(d) != 1 || d[0] != (keys.Range{Lo: "t", Hi: ""}) {
		t.Fatalf("join DiffAddrs = %v", d)
	}
	// A drain: middle owner b removed, its range merged into c; owner
	// indexes above shift down but c's address still serves its range —
	// only b's old range changes hands.
	shrunk, _ := old.RemoveBound(1)
	d = DiffAddrs(old, oldA, shrunk, []string{"a", "c"})
	if len(d) != 1 || d[0] != (keys.Range{Lo: "g", Hi: "p"}) {
		t.Fatalf("drain DiffAddrs = %v", d)
	}
	// No change at all.
	if d := DiffAddrs(old, oldA, old, oldA); len(d) != 0 {
		t.Fatalf("identical DiffAddrs = %v", d)
	}
	// Mis-sized addr lists: everything reported changed.
	if d := DiffAddrs(old, oldA[:2], old, oldA); len(d) != 1 || d[0] != (keys.Range{}) {
		t.Fatalf("mis-sized DiffAddrs = %v", d)
	}
	// Adjacent segments changing to different destinations stay separate
	// ranges (consumers inspect only Lo).
	d = DiffAddrs(old, oldA, MustNew("g", "p"), []string{"x", "y", "c"})
	if len(d) != 2 {
		t.Fatalf("two-destination DiffAddrs = %v", d)
	}
}

func TestDiff(t *testing.T) {
	old := MustNew("g", "p")
	if d := Diff(old, MustNew("g", "p")); len(d) != 0 {
		t.Fatalf("identical maps diff = %v", d)
	}
	// One bound lowered: exactly the shifted slice changes owner.
	if d := Diff(old, MustNew("d", "p")); len(d) != 1 || d[0] != (keys.Range{Lo: "d", Hi: "g"}) {
		t.Fatalf("lowered-bound diff = %v", d)
	}
	// One bound raised.
	if d := Diff(old, MustNew("g", "t")); len(d) != 1 || d[0] != (keys.Range{Lo: "p", Hi: "t"}) {
		t.Fatalf("raised-bound diff = %v", d)
	}
	// Both bounds moved: two changed ranges, each with one owner per
	// side (never merged across a split point).
	d := Diff(old, MustNew("d", "t"))
	if len(d) != 2 || d[0] != (keys.Range{Lo: "d", Hi: "g"}) || d[1] != (keys.Range{Lo: "p", Hi: "t"}) {
		t.Fatalf("double-move diff = %v", d)
	}
	for _, r := range d {
		if old.Owner(r.Lo) == MustNew("d", "t").Owner(r.Lo) {
			t.Fatalf("diff range %v did not change owner", r)
		}
	}
	// Last bound raised toward +inf keeps the open tail intact.
	if d := Diff(MustNew("g"), MustNew("x")); len(d) != 1 || d[0] != (keys.Range{Lo: "g", Hi: "x"}) {
		t.Fatalf("tail diff = %v", d)
	}
	// Mismatched shapes: everything reported changed.
	if d := Diff(MustNew("g"), MustNew("g", "p")); len(d) != 1 || d[0] != (keys.Range{}) {
		t.Fatalf("shape-mismatch diff = %v", d)
	}
}

func TestSingleServerMap(t *testing.T) {
	m := MustNew()
	if m.Owner("anything") != 0 || m.Servers() != 1 {
		t.Fatal("empty map should own everything at server 0")
	}
	sh := m.Split(keys.Range{Lo: "a", Hi: "z"})
	if len(sh) != 1 || sh[0].Owner != 0 {
		t.Fatalf("Split = %v", sh)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("b", "a"); err == nil {
		t.Fatal("unsorted bounds accepted")
	}
	if _, err := New("a", "a"); err == nil {
		t.Fatal("duplicate bounds accepted")
	}
}

func TestSplit(t *testing.T) {
	m := MustNew("g", "p")
	sh := m.Split(keys.Range{Lo: "c", Hi: "t"})
	if len(sh) != 3 {
		t.Fatalf("Split = %v", sh)
	}
	if sh[0].R != (keys.Range{Lo: "c", Hi: "g"}) || sh[0].Owner != 0 {
		t.Errorf("shard 0 = %v", sh[0])
	}
	if sh[1].R != (keys.Range{Lo: "g", Hi: "p"}) || sh[1].Owner != 1 {
		t.Errorf("shard 1 = %v", sh[1])
	}
	if sh[2].R != (keys.Range{Lo: "p", Hi: "t"}) || sh[2].Owner != 2 {
		t.Errorf("shard 2 = %v", sh[2])
	}
	// Range within one shard.
	sh = m.Split(keys.Range{Lo: "h", Hi: "i"})
	if len(sh) != 1 || sh[0].Owner != 1 {
		t.Fatalf("single-shard split = %v", sh)
	}
	// Unbounded range reaches the last server.
	sh = m.Split(keys.Range{Lo: "a", Hi: ""})
	if len(sh) != 3 || sh[2].R.Hi != "" {
		t.Fatalf("unbounded split = %v", sh)
	}
	// Empty range splits to nothing.
	if sh := m.Split(keys.Range{Lo: "x", Hi: "x"}); sh != nil {
		t.Fatalf("empty split = %v", sh)
	}
}

func TestSplitCoversExactly(t *testing.T) {
	m := MustNew("d", "h", "m", "r")
	r := keys.Range{Lo: "b", Hi: "z"}
	sh := m.Split(r)
	// Shards must tile r exactly, in order.
	if sh[0].R.Lo != r.Lo || sh[len(sh)-1].R.Hi != r.Hi {
		t.Fatalf("ends wrong: %v", sh)
	}
	for i := 1; i < len(sh); i++ {
		if sh[i].R.Lo != sh[i-1].R.Hi {
			t.Fatalf("gap between shards %d and %d: %v", i-1, i, sh)
		}
		if sh[i].Owner != sh[i-1].Owner+1 {
			t.Fatalf("owners not increasing: %v", sh)
		}
	}
	// Every shard's keys belong to its owner.
	for _, s := range sh {
		if m.Owner(s.R.Lo) != s.Owner {
			t.Fatalf("shard lo %q owned by %d, labeled %d", s.R.Lo, m.Owner(s.R.Lo), s.Owner)
		}
	}
}

func TestUserBounds(t *testing.T) {
	bounds := UserBounds(4, 1000, 7, "u", "p", "s")
	m := MustNew(bounds...)
	if m.Servers() != 7 {
		t.Fatalf("Servers = %d (bounds %v)", m.Servers(), bounds)
	}
	// Keys for the same user land on one server per table region, and
	// low/high users land on different servers.
	lowP := m.Owner("p|u0000001|0000000001")
	highP := m.Owner("p|u0000999|0000000001")
	if lowP == highP {
		t.Fatal("user spread failed")
	}
	// All of one user's posts are on one server.
	if m.Owner("p|u0000400|0000000001") != m.Owner("p|u0000400|9999999999") {
		t.Fatal("one user's post range split across servers")
	}
}

func TestUserShardStable(t *testing.T) {
	a := UserShard("u0001234", 8)
	for i := 0; i < 10; i++ {
		if UserShard("u0001234", 8) != a {
			t.Fatal("unstable shard")
		}
	}
	if UserShard("anyone", 1) != 0 {
		t.Fatal("single shard")
	}
	// Spread check: many users hit more than one shard.
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[UserShard(string(rune('a'+i%26))+"user", 4)] = true
	}
	if len(seen) < 2 {
		t.Fatal("no spread")
	}
}
