package partition

import (
	"fmt"
	"math/rand"
	"testing"

	"pequod/internal/keys"
)

// checkTotal asserts the ownership invariants a Map must keep across any
// sequence of MoveBound operations: the bound list stays strictly
// increasing, Split of the full keyspace yields exactly one contiguous
// piece per server with no gaps or overlaps, and Owner agrees with Split
// for every probed key — every key owned exactly once.
func checkTotal(t *testing.T, m *Map, probes []string) {
	t.Helper()
	bounds := m.Bounds()
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing: %q >= %q", bounds[i-1], bounds[i])
		}
	}
	pieces := m.Split(keys.Range{})
	if len(pieces) != m.Servers() {
		t.Fatalf("full split has %d pieces, want %d servers", len(pieces), m.Servers())
	}
	cursor := ""
	for i, pc := range pieces {
		if pc.Owner != i {
			t.Fatalf("piece %d owned by %d", i, pc.Owner)
		}
		if pc.R.Lo != cursor {
			t.Fatalf("piece %d starts at %q, want %q (gap or overlap)", i, pc.R.Lo, cursor)
		}
		if i < len(pieces)-1 {
			if pc.R.Hi == "" || pc.R.Hi <= pc.R.Lo {
				t.Fatalf("piece %d range [%q,%q) empty or unbounded", i, pc.R.Lo, pc.R.Hi)
			}
			cursor = pc.R.Hi
		} else if pc.R.Hi != "" {
			t.Fatalf("last piece ends at %q, want +inf", pc.R.Hi)
		}
	}
	for _, k := range probes {
		owner := m.Owner(k)
		holders := 0
		for _, pc := range pieces {
			if pc.R.Contains(k) {
				holders++
				if pc.Owner != owner {
					t.Fatalf("key %q: Owner = %d but piece says %d", k, owner, pc.Owner)
				}
			}
		}
		if holders != 1 {
			t.Fatalf("key %q owned by %d pieces", k, holders)
		}
	}
}

// fuzzProbe builds a key set that straddles every bound: the bounds
// themselves, their immediate neighbors, and a few fixed keys.
func fuzzProbe(m *Map, rng *rand.Rand) []string {
	probes := []string{"", "a", "p|u0000001", "t|u0000042|99", "zz", "\xff\xff"}
	for _, b := range m.Bounds() {
		probes = append(probes, b, b+"\x00")
		if len(b) > 0 {
			probes = append(probes, b[:len(b)-1])
		}
	}
	for i := 0; i < 8; i++ {
		probes = append(probes, fmt.Sprintf("%c|u%07d", 'a'+rng.Intn(26), rng.Intn(1000)))
	}
	return probes
}

// applyMoves drives nMoves randomized MoveBound operations (some invalid
// on purpose) from seed, checking invariants after every accepted move.
// It returns the final map.
func applyMoves(t *testing.T, seed int64, nMoves int) *Map {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(6)
	bounds := make([]string, 0, n-1)
	for i := 1; i < n; i++ {
		bounds = append(bounds, fmt.Sprintf("%c|", 'b'+3*i))
	}
	m := MustNew(bounds...)
	version := m.Version()
	accepted := 0
	for i := 0; i < nMoves; i++ {
		idx := rng.Intn(len(bounds)+1) - 1 // sometimes out of range
		var bound string
		switch rng.Intn(4) {
		case 0: // random printable key
			bound = fmt.Sprintf("%c|u%07d", 'a'+rng.Intn(26), rng.Intn(1000))
		case 1: // nudge an existing bound
			b := m.Bound(rng.Intn(len(bounds)))
			bound = b + string(rune('a'+rng.Intn(26)))
		case 2: // duplicate an existing bound (must be rejected)
			bound = m.Bound(rng.Intn(len(bounds)))
		case 3: // empty key (must be rejected)
			bound = ""
		}
		next, err := m.MoveBound(idx, bound)
		if err != nil {
			continue
		}
		accepted++
		if next.Version() != version+1 {
			t.Fatalf("version %d after move, want %d", next.Version(), version+1)
		}
		version = next.Version()
		if next.Servers() != m.Servers() {
			t.Fatalf("move changed server count %d -> %d", m.Servers(), next.Servers())
		}
		m = next
		checkTotal(t, m, fuzzProbe(m, rng))
	}
	if nMoves >= 50 && accepted == 0 {
		t.Fatalf("no move accepted in %d attempts", nMoves)
	}
	return m
}

// FuzzMapMoves fuzzes sequences of boundary moves: after any accepted
// sequence the map must still assign every key to exactly one owner with
// no gaps or overlaps. `go test` runs the seed corpus; `go test
// -fuzz=FuzzMapMoves ./internal/partition` explores further.
func FuzzMapMoves(f *testing.F) {
	f.Add(int64(1), 50)
	f.Add(int64(2), 200)
	f.Add(int64(42), 120)
	f.Add(int64(-7), 80)
	f.Fuzz(func(t *testing.T, seed int64, nMoves int) {
		if nMoves < 0 {
			nMoves = -nMoves
		}
		if nMoves > 500 {
			nMoves = nMoves % 500
		}
		applyMoves(t, seed, nMoves)
	})
}

// TestMoveBoundRejections pins the validation rules MoveBound enforces.
func TestMoveBoundRejections(t *testing.T) {
	m := MustNew("g", "p")
	for _, c := range []struct {
		idx   int
		bound string
	}{
		{-1, "h"}, // index below range
		{2, "h"},  // index above range
		{0, "g"},  // no-op move
		{0, "p"},  // collides with right neighbor
		{0, "q"},  // beyond right neighbor
		{1, "g"},  // collides with left neighbor
		{1, "a"},  // below left neighbor
		{0, ""},   // empty bound
	} {
		if _, err := m.MoveBound(c.idx, c.bound); err == nil {
			t.Errorf("MoveBound(%d, %q) accepted", c.idx, c.bound)
		}
	}
	if m.Version() != 0 {
		t.Fatalf("rejected moves changed version: %d", m.Version())
	}
	next, err := m.MoveBound(0, "k")
	if err != nil {
		t.Fatal(err)
	}
	if next.Owner("h") != 0 || next.Owner("k") != 1 || m.Owner("h") != 1 {
		t.Fatal("move did not shift ownership (or mutated the receiver)")
	}
}
