package partition

// Replica placement: which members hold warm copies of a range owned
// by another member. Placement is a pure function of the cluster view
// (the address per owner index) and the replica count, so the
// coordinator that publishes assignments and the members that derive
// their own replica sets from them can never disagree — both call
// ReplicaAddrs on the same view.

// UniqueAddrs returns the distinct member addresses of a view in first-
// appearance order — the ring replica placement walks. A member owning
// several ranges (several owner indexes) appears once.
func UniqueAddrs(addrs []string) []string {
	seen := make(map[string]bool, len(addrs))
	out := make([]string, 0, len(addrs))
	for _, a := range addrs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// ReplicaAddrs returns the member addresses holding replica copies of
// the range at owner index `owner`: the next copies-1 distinct members
// after the owner in ring order over UniqueAddrs(addrs). copies counts
// total copies including the owner's serving copy, so copies <= 1 (or
// a single-member cluster) yields nil — no replication.
func ReplicaAddrs(addrs []string, owner, copies int) []string {
	if owner < 0 || owner >= len(addrs) {
		return nil
	}
	ring := UniqueAddrs(addrs)
	if copies <= 1 || len(ring) < 2 {
		return nil
	}
	if copies > len(ring) {
		copies = len(ring)
	}
	own := addrs[owner]
	start := 0
	for i, a := range ring {
		if a == own {
			start = i
			break
		}
	}
	out := make([]string, 0, copies-1)
	for i := 1; i < copies; i++ {
		out = append(out, ring[(start+i)%len(ring)])
	}
	return out
}
