package partition

import (
	"fmt"
	"hash/fnv"
	"sort"

	"pequod/internal/keys"
)

// Map assigns contiguous key ranges to servers: server i owns
// [bounds[i-1], bounds[i]) with implicit bounds[-1] = "" and
// bounds[n-1] = +infinity. A Map with no bounds assigns everything to
// server 0.
//
// A Map is immutable. Rebalancing produces successor Maps through
// MoveBound (and membership changes through InsertBound/RemoveBound),
// each carrying a version one higher than its parent, so concurrent
// readers holding an old Map can detect that ownership has moved on
// (the shard pool's live migration swaps Maps atomically and
// re-validates ownership under shard locks).
//
// Maps are totally ordered by (epoch, version). The version counter
// orders one coordinator's successive maps; the epoch orders maps from
// different coordinators. A coordinator mints successors at its own
// epoch (WithEpoch), chosen strictly above every epoch it has observed,
// so two coordinators racing from the same parent produce maps at the
// same version but different epochs — one of them is strictly newer,
// members adopt only strictly-newer maps, and the loser's transfer is
// rejected with a version conflict instead of leaving the cluster with
// two incomparable maps. Epoch 0 is the unversioned initial epoch every
// deployment starts from.
type Map struct {
	bounds  []string // sorted; len(bounds) = servers-1
	epoch   int64    // coordinator epoch; 0 for a fresh deployment
	version int64    // 0 for a fresh Map; +1 per successor
}

// New builds a Map from split points, which must be strictly increasing.
func New(bounds ...string) (*Map, error) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("partition: bounds not strictly increasing at %d", i)
		}
	}
	return &Map{bounds: append([]string(nil), bounds...)}, nil
}

// MustNew is New that panics on error, for static configurations.
func MustNew(bounds ...string) *Map {
	m, err := New(bounds...)
	if err != nil {
		panic(err)
	}
	return m
}

// NewVersioned is New at an explicit version (epoch 0) — rebuilding a
// Map that was shipped over the wire (the cluster migration RPCs carry
// version + bounds, and both sides must agree on the generation, not
// just the split points).
func NewVersioned(version int64, bounds ...string) (*Map, error) {
	return NewEpochVersioned(0, version, bounds...)
}

// NewEpochVersioned is New at an explicit (epoch, version) — rebuilding
// a Map shipped over the wire with its full total-order position.
func NewEpochVersioned(epoch, version int64, bounds ...string) (*Map, error) {
	m, err := New(bounds...)
	if err != nil {
		return nil, err
	}
	m.epoch, m.version = epoch, version
	return m, nil
}

// Servers returns the number of servers the map distributes over.
func (m *Map) Servers() int { return len(m.bounds) + 1 }

// Version returns the map's rebalance generation: 0 for a Map built by
// New, incremented by every successor (MoveBound, InsertBound,
// RemoveBound).
func (m *Map) Version() int64 { return m.version }

// Epoch returns the map's coordinator epoch: 0 for a fresh deployment,
// re-stamped by WithEpoch when a coordinator mints a successor.
func (m *Map) Epoch() int64 { return m.epoch }

// Compare orders two (epoch, version) pairs: -1, 0, or +1 as a is
// older than, equal to, or newer than b. Maps are totally ordered by
// epoch first, version second.
func Compare(aEpoch, aVersion, bEpoch, bVersion int64) int {
	switch {
	case aEpoch < bEpoch:
		return -1
	case aEpoch > bEpoch:
		return 1
	case aVersion < bVersion:
		return -1
	case aVersion > bVersion:
		return 1
	}
	return 0
}

// NewerThan reports whether m is strictly newer than (epoch, version)
// in the total order — the adoption test members and clients apply.
func (m *Map) NewerThan(epoch, version int64) bool {
	return Compare(m.epoch, m.version, epoch, version) > 0
}

// WithEpoch returns a copy of m re-stamped at the coordinator epoch e,
// which must not order the map backwards (e >= m.Epoch()). Coordinators
// call it on a freshly derived successor so concurrent coordinators
// racing from the same parent cannot mint two maps at the same
// position: each mints at its own distinct epoch, and the total order
// picks the winner.
func (m *Map) WithEpoch(e int64) (*Map, error) {
	if e < m.epoch {
		return nil, fmt.Errorf("partition: epoch %d would order map (e%d v%d) backwards", e, m.epoch, m.version)
	}
	next := *m
	next.epoch = e
	return &next, nil
}

// Bound returns the i'th split point (the lower edge of server i+1's
// range).
func (m *Map) Bound(i int) string { return m.bounds[i] }

// MoveBound returns a successor Map with bounds[i] moved to bound — the
// rebalancer's primitive. Lowering the bound shifts [bound, old) from
// server i to server i+1; raising it shifts [old, bound) from server i+1
// to server i. The new bound must stay strictly between its neighbors so
// every server keeps a non-empty range; a bound equal to the current one
// is rejected (a no-op move would spend a migration for nothing). The
// receiver is unchanged.
func (m *Map) MoveBound(i int, bound string) (*Map, error) {
	if i < 0 || i >= len(m.bounds) {
		return nil, fmt.Errorf("partition: bound index %d out of range [0,%d)", i, len(m.bounds))
	}
	if bound == m.bounds[i] {
		return nil, fmt.Errorf("partition: bound %d already at %q", i, bound)
	}
	if i > 0 && bound <= m.bounds[i-1] {
		return nil, fmt.Errorf("partition: bound %d = %q not above left neighbor %q", i, bound, m.bounds[i-1])
	}
	if i < len(m.bounds)-1 && bound >= m.bounds[i+1] {
		return nil, fmt.Errorf("partition: bound %d = %q not below right neighbor %q", i, bound, m.bounds[i+1])
	}
	if bound == "" {
		return nil, fmt.Errorf("partition: bound %d cannot be the empty key", i)
	}
	next := append([]string(nil), m.bounds...)
	next[i] = bound
	return &Map{bounds: next, epoch: m.epoch, version: m.version + 1}, nil
}

// InsertBound returns a successor Map with one more owner: owner's
// range is split at bound, owner keeping [lo, bound) and a new owner
// index owner+1 taking [bound, hi); owner indexes above shift up by
// one. This is the map half of a server join — the caller assigns the
// new index an address and transfers [bound, hi) to it. bound must lie
// strictly inside owner's current range.
func (m *Map) InsertBound(owner int, bound string) (*Map, error) {
	if owner < 0 || owner > len(m.bounds) {
		return nil, fmt.Errorf("partition: owner %d out of range [0,%d]", owner, len(m.bounds))
	}
	if bound == "" {
		return nil, fmt.Errorf("partition: inserted bound cannot be the empty key")
	}
	if owner > 0 && bound <= m.bounds[owner-1] {
		return nil, fmt.Errorf("partition: bound %q not above owner %d's lower edge %q", bound, owner, m.bounds[owner-1])
	}
	if owner < len(m.bounds) && bound >= m.bounds[owner] {
		return nil, fmt.Errorf("partition: bound %q not below owner %d's upper edge %q", bound, owner, m.bounds[owner])
	}
	next := make([]string, 0, len(m.bounds)+1)
	next = append(next, m.bounds[:owner]...)
	next = append(next, bound)
	next = append(next, m.bounds[owner:]...)
	return &Map{bounds: next, epoch: m.epoch, version: m.version + 1}, nil
}

// RemoveBound returns a successor Map with one fewer owner: split point
// i is removed, merging owners i and i+1 into owner i; owner indexes
// above shift down by one. This is the map half of a server drain — the
// caller decides which of the two old owners' addresses serves the
// merged range and transfers the other's data to it.
func (m *Map) RemoveBound(i int) (*Map, error) {
	if i < 0 || i >= len(m.bounds) {
		return nil, fmt.Errorf("partition: bound index %d out of range [0,%d)", i, len(m.bounds))
	}
	next := make([]string, 0, len(m.bounds)-1)
	next = append(next, m.bounds[:i]...)
	next = append(next, m.bounds[i+1:]...)
	return &Map{bounds: next, epoch: m.epoch, version: m.version + 1}, nil
}

// Bounds returns a copy of the split points, for shipping a Map over the
// wire (the cluster client's ConnectPeers RPC).
func (m *Map) Bounds() []string { return append([]string(nil), m.bounds...) }

// Owner returns the home server index for key.
func (m *Map) Owner(key string) int {
	return sort.SearchStrings(m.bounds, key+"\x00")
}

// OwnsRange reports whether server owner holds every key of r — the
// shard pool's post-lock validation that a scan piece computed against
// an older Map is still wholly served by the locked shard.
func (m *Map) OwnsRange(owner int, r keys.Range) bool {
	if m.Owner(r.Lo) != owner {
		return false
	}
	if owner == len(m.bounds) {
		return true // last server: owns up to +inf
	}
	return r.Hi != "" && r.Hi <= m.bounds[owner]
}

// Diff returns the key ranges whose owner differs between two Maps over
// the same number of servers, in key order. Each returned range has a
// single owner under both maps (segments are cut at every split point of
// either map, never merged across one). Members use it when a new
// cluster map is published: the returned ranges are exactly the state
// that changed hands and must be dropped (with eviction semantics) so it
// is re-fetched from — and re-subscribed at — its new home.
func Diff(old, new *Map) []keys.Range {
	if old.Servers() != new.Servers() {
		// Caller error; treat everything as changed rather than guess.
		return []keys.Range{{}}
	}
	// Segment the key space at every split point of either map; within a
	// segment both maps assign one owner, so comparing the owners of the
	// segment's low edge decides the whole segment.
	points := append(append([]string(nil), old.bounds...), new.bounds...)
	sort.Strings(points)
	var out []keys.Range
	lo := ""
	for i := 0; i <= len(points); i++ {
		hi := ""
		if i < len(points) {
			hi = points[i]
			if hi == lo { // duplicate split point
				continue
			}
		}
		if old.Owner(lo) != new.Owner(lo) {
			out = append(out, keys.Range{Lo: lo, Hi: hi})
		}
		if hi == "" {
			break
		}
		lo = hi
	}
	return out
}

// DiffAddrs returns the key ranges whose owner *address* differs
// between two maps, in key order — the shape-change-tolerant Diff.
// oldAddrs and newAddrs give the serving address per owner index
// (len = Servers()), so a membership change (different owner counts, or
// owner indexes shifted by an insert/remove) compares what actually
// matters: which process serves each key. Members adopting a successor
// map drop (with eviction semantics) exactly the returned ranges they
// neither extracted nor spliced.
func DiffAddrs(old *Map, oldAddrs []string, new *Map, newAddrs []string) []keys.Range {
	if len(oldAddrs) != old.Servers() || len(newAddrs) != new.Servers() {
		// Caller error; treat everything as changed rather than guess.
		return []keys.Range{{}}
	}
	points := append(append([]string(nil), old.bounds...), new.bounds...)
	sort.Strings(points)
	var out []keys.Range
	lo, prevOld, prevNew := "", "", ""
	for i := 0; i <= len(points); i++ {
		hi := ""
		if i < len(points) {
			hi = points[i]
			if hi == lo { // duplicate split point
				continue
			}
		}
		oa, na := oldAddrs[old.Owner(lo)], newAddrs[new.Owner(lo)]
		if oa != na {
			// Merge with the previous segment only when it is contiguous
			// and has the same owner addresses on both sides, so each
			// returned range still has a single serving address under
			// either map (consumers inspect only d.Lo).
			if n := len(out); n > 0 && out[n-1].Hi == lo && prevOld == oa && prevNew == na {
				out[n-1].Hi = hi
			} else {
				out = append(out, keys.Range{Lo: lo, Hi: hi})
			}
			prevOld, prevNew = oa, na
		} else {
			prevOld, prevNew = "", ""
		}
		if hi == "" {
			break
		}
		lo = hi
	}
	return out
}

// Shard is one piece of a range split across owners.
type Shard struct {
	R     keys.Range
	Owner int
}

// Split divides r into per-owner shards in key order. Containing ranges
// that straddle home servers become one fetch per owner.
func (m *Map) Split(r keys.Range) []Shard {
	if r.Empty() {
		return nil
	}
	var out []Shard
	lo := r.Lo
	owner := m.Owner(lo)
	for owner < len(m.bounds) {
		bound := m.bounds[owner]
		if r.Hi != "" && bound >= r.Hi {
			break
		}
		out = append(out, Shard{R: keys.Range{Lo: lo, Hi: bound}, Owner: owner})
		lo = bound
		owner++
	}
	out = append(out, Shard{R: keys.Range{Lo: lo, Hi: r.Hi}, Owner: owner})
	return out
}

// UserBounds builds split points that spread fixed-width user IDs of the
// form prefix + zero-padded number evenly across n servers, for each of
// the given tables. For example, UserBounds(4, 1000, 7, "p", "s")
// produces bounds like p|u0000250, p|u0000500, ... — matching the
// synthetic Twip graph's u%07d identifiers.
func UserBounds(n, users, width int, idPrefix string, tables ...string) []string {
	var bounds []string
	for _, t := range tables {
		for i := 1; i < n; i++ {
			// Ceiling split: the bound is the smallest id on shard i, so
			// id*n/users recovers the shard exactly at the boundary.
			id := (users*i + n - 1) / n
			bounds = append(bounds, fmt.Sprintf("%s|%s%0*d", t, idPrefix, width, id))
		}
	}
	sort.Strings(bounds)
	return bounds
}

// UserShard is the Twip client-routing function S(u) (§2.4): all timeline
// checks for user u go to compute server S(u), minimizing duplicate
// timeline storage.
func UserShard(user string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(user))
	return int(h.Sum32() % uint32(n))
}
