package partition

import (
	"fmt"
	"hash/fnv"
	"sort"

	"pequod/internal/keys"
)

// Map assigns contiguous key ranges to servers: server i owns
// [bounds[i-1], bounds[i]) with implicit bounds[-1] = "" and
// bounds[n-1] = +infinity. A Map with no bounds assigns everything to
// server 0.
//
// A Map is immutable. Rebalancing produces successor Maps through
// MoveBound, each carrying a version one higher than its parent, so
// concurrent readers holding an old Map can detect that ownership has
// moved on (the shard pool's live migration swaps Maps atomically and
// re-validates ownership under shard locks).
type Map struct {
	bounds  []string // sorted; len(bounds) = servers-1
	version int64    // 0 for a fresh Map; +1 per MoveBound
}

// New builds a Map from split points, which must be strictly increasing.
func New(bounds ...string) (*Map, error) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("partition: bounds not strictly increasing at %d", i)
		}
	}
	return &Map{bounds: append([]string(nil), bounds...)}, nil
}

// MustNew is New that panics on error, for static configurations.
func MustNew(bounds ...string) *Map {
	m, err := New(bounds...)
	if err != nil {
		panic(err)
	}
	return m
}

// NewVersioned is New at an explicit version — rebuilding a Map that was
// shipped over the wire (the cluster migration RPCs carry version +
// bounds, and both sides must agree on the generation, not just the
// split points).
func NewVersioned(version int64, bounds ...string) (*Map, error) {
	m, err := New(bounds...)
	if err != nil {
		return nil, err
	}
	m.version = version
	return m, nil
}

// Servers returns the number of servers the map distributes over.
func (m *Map) Servers() int { return len(m.bounds) + 1 }

// Version returns the map's rebalance generation: 0 for a Map built by
// New, incremented by every MoveBound.
func (m *Map) Version() int64 { return m.version }

// Bound returns the i'th split point (the lower edge of server i+1's
// range).
func (m *Map) Bound(i int) string { return m.bounds[i] }

// MoveBound returns a successor Map with bounds[i] moved to bound — the
// rebalancer's primitive. Lowering the bound shifts [bound, old) from
// server i to server i+1; raising it shifts [old, bound) from server i+1
// to server i. The new bound must stay strictly between its neighbors so
// every server keeps a non-empty range; a bound equal to the current one
// is rejected (a no-op move would spend a migration for nothing). The
// receiver is unchanged.
func (m *Map) MoveBound(i int, bound string) (*Map, error) {
	if i < 0 || i >= len(m.bounds) {
		return nil, fmt.Errorf("partition: bound index %d out of range [0,%d)", i, len(m.bounds))
	}
	if bound == m.bounds[i] {
		return nil, fmt.Errorf("partition: bound %d already at %q", i, bound)
	}
	if i > 0 && bound <= m.bounds[i-1] {
		return nil, fmt.Errorf("partition: bound %d = %q not above left neighbor %q", i, bound, m.bounds[i-1])
	}
	if i < len(m.bounds)-1 && bound >= m.bounds[i+1] {
		return nil, fmt.Errorf("partition: bound %d = %q not below right neighbor %q", i, bound, m.bounds[i+1])
	}
	if bound == "" {
		return nil, fmt.Errorf("partition: bound %d cannot be the empty key", i)
	}
	next := append([]string(nil), m.bounds...)
	next[i] = bound
	return &Map{bounds: next, version: m.version + 1}, nil
}

// Bounds returns a copy of the split points, for shipping a Map over the
// wire (the cluster client's ConnectPeers RPC).
func (m *Map) Bounds() []string { return append([]string(nil), m.bounds...) }

// Owner returns the home server index for key.
func (m *Map) Owner(key string) int {
	return sort.SearchStrings(m.bounds, key+"\x00")
}

// OwnsRange reports whether server owner holds every key of r — the
// shard pool's post-lock validation that a scan piece computed against
// an older Map is still wholly served by the locked shard.
func (m *Map) OwnsRange(owner int, r keys.Range) bool {
	if m.Owner(r.Lo) != owner {
		return false
	}
	if owner == len(m.bounds) {
		return true // last server: owns up to +inf
	}
	return r.Hi != "" && r.Hi <= m.bounds[owner]
}

// Diff returns the key ranges whose owner differs between two Maps over
// the same number of servers, in key order. Each returned range has a
// single owner under both maps (segments are cut at every split point of
// either map, never merged across one). Members use it when a new
// cluster map is published: the returned ranges are exactly the state
// that changed hands and must be dropped (with eviction semantics) so it
// is re-fetched from — and re-subscribed at — its new home.
func Diff(old, new *Map) []keys.Range {
	if old.Servers() != new.Servers() {
		// Caller error; treat everything as changed rather than guess.
		return []keys.Range{{}}
	}
	// Segment the key space at every split point of either map; within a
	// segment both maps assign one owner, so comparing the owners of the
	// segment's low edge decides the whole segment.
	points := append(append([]string(nil), old.bounds...), new.bounds...)
	sort.Strings(points)
	var out []keys.Range
	lo := ""
	for i := 0; i <= len(points); i++ {
		hi := ""
		if i < len(points) {
			hi = points[i]
			if hi == lo { // duplicate split point
				continue
			}
		}
		if old.Owner(lo) != new.Owner(lo) {
			out = append(out, keys.Range{Lo: lo, Hi: hi})
		}
		if hi == "" {
			break
		}
		lo = hi
	}
	return out
}

// Shard is one piece of a range split across owners.
type Shard struct {
	R     keys.Range
	Owner int
}

// Split divides r into per-owner shards in key order. Containing ranges
// that straddle home servers become one fetch per owner.
func (m *Map) Split(r keys.Range) []Shard {
	if r.Empty() {
		return nil
	}
	var out []Shard
	lo := r.Lo
	owner := m.Owner(lo)
	for owner < len(m.bounds) {
		bound := m.bounds[owner]
		if r.Hi != "" && bound >= r.Hi {
			break
		}
		out = append(out, Shard{R: keys.Range{Lo: lo, Hi: bound}, Owner: owner})
		lo = bound
		owner++
	}
	out = append(out, Shard{R: keys.Range{Lo: lo, Hi: r.Hi}, Owner: owner})
	return out
}

// UserBounds builds split points that spread fixed-width user IDs of the
// form prefix + zero-padded number evenly across n servers, for each of
// the given tables. For example, UserBounds(4, 1000, 7, "p", "s")
// produces bounds like p|u0000250, p|u0000500, ... — matching the
// synthetic Twip graph's u%07d identifiers.
func UserBounds(n, users, width int, idPrefix string, tables ...string) []string {
	var bounds []string
	for _, t := range tables {
		for i := 1; i < n; i++ {
			// Ceiling split: the bound is the smallest id on shard i, so
			// id*n/users recovers the shard exactly at the boundary.
			id := (users*i + n - 1) / n
			bounds = append(bounds, fmt.Sprintf("%s|%s%0*d", t, idPrefix, width, id))
		}
	}
	sort.Strings(bounds)
	return bounds
}

// UserShard is the Twip client-routing function S(u) (§2.4): all timeline
// checks for user u go to compute server S(u), minimizing duplicate
// timeline storage.
func UserShard(user string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(user))
	return int(h.Sum32() % uint32(n))
}
