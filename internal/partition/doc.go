// Package partition implements Pequod's key-space partitioning (§2.4):
// "Each base key has a home server to which updates are directed (a
// partition function maps key ranges to home servers)", plus the Twip
// client-routing helper S(u) that sends all of one user's timeline
// reads to the same compute server.
//
// The central type is Map: an immutable assignment of contiguous key
// ranges to owner indexes (shards in a pool, servers in a cluster),
// carrying an (epoch, version) position in a total order. Rebalancing
// never mutates a Map; it derives a successor through MoveBound — or,
// for membership changes, InsertBound (a joining server splits an
// owner's range) and RemoveBound (a draining server's range merges into
// a neighbor's) — one version higher, and publishes it atomically.
// Concurrent readers holding the old Map detect that ownership moved on
// by re-validating (Owner, OwnsRange) against the current one.
//
// # Epochs
//
// Versions alone order one coordinator's successive maps; the epoch
// orders maps from different coordinators. Each coordinator mints
// successors at its own epoch (WithEpoch), chosen strictly above every
// epoch it has observed, so two coordinators racing from the same
// parent produce maps at the same version but different epochs — the
// total order (Compare, NewerThan: epoch first, version second) picks
// one winner, members and clients adopt strictly-newer maps only, and
// the loser's transfer fails with a version conflict it recovers from
// by adopting and re-deriving. Epoch 0 is the unversioned initial epoch
// every deployment starts from; the in-process shard pool, which has a
// single coordinator by construction, stays at epoch 0 forever.
//
// NewEpochVersioned rebuilds a Map shipped over the wire at its exact
// position, Diff reports the ranges that changed owner index between
// two same-shape generations, and DiffAddrs reports the ranges that
// changed serving *address* between any two generations — what a
// cluster member must drop and re-fetch when it adopts a successor map,
// including across joins and drains where owner indexes shift. Every
// key is owned by exactly one range under every Map (fuzzed in
// FuzzMapMoves).
package partition
