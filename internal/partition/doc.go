// Package partition implements Pequod's key-space partitioning (§2.4):
// "Each base key has a home server to which updates are directed (a
// partition function maps key ranges to home servers)", plus the Twip
// client-routing helper S(u) that sends all of one user's timeline
// reads to the same compute server.
//
// The central type is Map: an immutable assignment of contiguous key
// ranges to owner indexes (shards in a pool, servers in a cluster),
// carrying a version. Rebalancing never mutates a Map; it derives a
// successor through MoveBound, one version higher, and publishes it
// atomically — concurrent readers holding the old Map detect that
// ownership moved on by re-validating (Owner, OwnsRange) against the
// current one. NewVersioned rebuilds a Map shipped over the wire at its
// original generation, and Diff reports exactly the ranges that changed
// hands between two generations — what a cluster member must drop and
// re-fetch when it adopts a newer map. Every key is owned by exactly
// one range under every Map (fuzzed in FuzzMapMoves).
package partition
