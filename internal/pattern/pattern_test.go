package pattern

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pequod/internal/keys"
)

func mustParse(t *testing.T, raw string, st *SlotTable) *Pattern {
	t.Helper()
	p, err := Parse(raw, st)
	if err != nil {
		t.Fatalf("Parse(%q): %v", raw, err)
	}
	return p
}

func TestParseBasics(t *testing.T) {
	var st SlotTable
	p := mustParse(t, "t|<user>|<time>|<poster>", &st)
	if p.Table() != "t" || len(p.Segs()) != 4 {
		t.Fatalf("table=%q segs=%d", p.Table(), len(p.Segs()))
	}
	if len(st.Names) != 3 || st.Names[0] != "user" || st.Names[1] != "time" || st.Names[2] != "poster" {
		t.Fatalf("slots = %v", st.Names)
	}
	// Second pattern shares slot indices.
	q := mustParse(t, "s|<user>|<poster>", &st)
	if len(st.Names) != 3 {
		t.Fatalf("slot table grew: %v", st.Names)
	}
	if q.Slots() != (1<<0)|(1<<2) {
		t.Fatalf("slot mask = %b", q.Slots())
	}
}

func TestParseWidths(t *testing.T) {
	var st SlotTable
	mustParse(t, "p|<poster>|<time:8>", &st)
	if st.Widths[st.Lookup("time")] != 8 {
		t.Fatal("width not recorded")
	}
	// Conflicting widths rejected.
	if _, err := Parse("x|<time:4>", &st); err == nil {
		t.Fatal("conflicting width accepted")
	}
	// Consistent widths fine.
	if _, err := Parse("x|<time:8>", &st); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, raw := range []string{
		"",
		"<user>|x",                              // slot table name
		"t|<user",                               // malformed slot
		"t|us<er>",                              // stray bracket
		"t|<>",                                  // empty slot name
		"t|<a:x>",                               // bad width
		"t|<a:0>",                               // zero width
		"t|<a>|<a>",                             // repeated slot in one pattern
		"|x",                                    // empty table
		"t|<a>|<b>|<c>|<d>|<e>|<f>|<g>|<h>|<i>", // too many slots
	} {
		var st SlotTable
		if _, err := Parse(raw, &st); err == nil {
			t.Errorf("Parse(%q) should fail", raw)
		}
	}
}

func TestMatch(t *testing.T) {
	var st SlotTable
	p := mustParse(t, "t|<user>|<time>|<poster>", &st)
	b, ok := p.Match("t|ann|100|bob", Binding{})
	if !ok {
		t.Fatal("match failed")
	}
	if v, _ := b.Get(0); v != "ann" {
		t.Fatal("user binding")
	}
	if v, _ := b.Get(1); v != "100" {
		t.Fatal("time binding")
	}
	if v, _ := b.Get(2); v != "bob" {
		t.Fatal("poster binding")
	}
	// Existing binding must agree.
	if _, ok := p.Match("t|ann|100|bob", Binding{}.With(0, "liz")); ok {
		t.Fatal("conflicting binding matched")
	}
	if b2, ok := p.Match("t|ann|100|bob", Binding{}.With(0, "ann")); !ok || !b2.Has(2) {
		t.Fatal("consistent binding should match and extend")
	}
	// Wrong arity.
	if _, ok := p.Match("t|ann|100", Binding{}); ok {
		t.Fatal("short key matched")
	}
	if _, ok := p.Match("t|ann|100|bob|x", Binding{}); ok {
		t.Fatal("long key matched")
	}
	// Wrong literal.
	if _, ok := p.Match("s|ann|100|bob", Binding{}); ok {
		t.Fatal("wrong table matched")
	}
}

func TestMatchInterleavedTag(t *testing.T) {
	var st SlotTable
	p := mustParse(t, "page|<author>|<id>|k|<cid>|<commenter>", &st)
	if _, ok := p.Match("page|bob|101|k|c1|liz", Binding{}); !ok {
		t.Fatal("tagged key should match")
	}
	if _, ok := p.Match("page|bob|101|a|c1|liz", Binding{}); ok {
		t.Fatal("wrong tag matched")
	}
}

func TestMatchFixedWidth(t *testing.T) {
	var st SlotTable
	p := mustParse(t, "p|<poster>|<time:4>", &st)
	if _, ok := p.Match("p|bob|0100", Binding{}); !ok {
		t.Fatal("width-4 component should match")
	}
	if _, ok := p.Match("p|bob|100", Binding{}); ok {
		t.Fatal("width-3 component matched a width-4 slot")
	}
}

func TestBuildKeyAndPrefix(t *testing.T) {
	var st SlotTable
	p := mustParse(t, "t|<user>|<time>|<poster>", &st)
	b := Binding{}.With(0, "ann").With(1, "100").With(2, "bob")
	k, ok := p.BuildKey(b)
	if !ok || k != "t|ann|100|bob" {
		t.Fatalf("BuildKey = %q, %v", k, ok)
	}
	if _, ok := p.BuildKey(Binding{}.With(0, "ann")); ok {
		t.Fatal("partial BuildKey should fail")
	}
	pfx, next := p.BuildPrefix(Binding{}.With(0, "ann"))
	if pfx != "t|ann|" || next != 2 {
		t.Fatalf("BuildPrefix = %q, %d", pfx, next)
	}
	pfx, next = p.BuildPrefix(b)
	if pfx != "t|ann|100|bob" || next != 4 {
		t.Fatalf("complete BuildPrefix = %q, %d", pfx, next)
	}
	pfx, next = p.BuildPrefix(Binding{})
	if pfx != "t|" || next != 1 {
		t.Fatalf("empty BuildPrefix = %q, %d", pfx, next)
	}
}

func TestScanBinding(t *testing.T) {
	var st SlotTable
	p := mustParse(t, "t|<user>|<time>|<poster>", &st)

	// Full-timeline scan binds user.
	b, clip := p.ScanBinding(keys.Range{Lo: "t|ann|100", Hi: "t|ann}"})
	if v, ok := b.Get(0); !ok || v != "ann" {
		t.Fatalf("user not bound: %v", b)
	}
	if b.Has(1) {
		t.Fatal("time must not be exactly bound")
	}
	if clip.Lo != "t|ann|100" {
		t.Fatalf("clip = %v", clip)
	}

	// Bounded-time scan still binds only user (time is a range).
	b, _ = p.ScanBinding(keys.Range{Lo: "t|ann|100|", Hi: "t|ann|200|"})
	if v, ok := b.Get(0); !ok || v != "ann" || b.Has(1) {
		t.Fatalf("bindings = %v", b)
	}

	// Cross-timeline scan binds nothing.
	b, _ = p.ScanBinding(keys.Range{Lo: "t|a", Hi: "t|b"})
	if b.Mask() != 0 {
		t.Fatalf("cross-timeline bound %v", b)
	}

	// Scan of a different table clips to empty.
	_, clip = p.ScanBinding(keys.Range{Lo: "s|a", Hi: "s|z"})
	if !clip.Empty() {
		t.Fatalf("foreign-table clip = %v", clip)
	}

	// Point-ish scan binds everything it can.
	b, _ = p.ScanBinding(keys.Range{Lo: "t|ann|100|bob", Hi: "t|ann|100|bob\x00"})
	if v, ok := b.Get(0); !ok || v != "ann" {
		t.Fatal("user")
	}
	if v, ok := b.Get(1); !ok || v != "100" {
		t.Fatal("time should be bound for point scans")
	}
}

func TestContainingRangePaperExamples(t *testing.T) {
	var st SlotTable
	out := mustParse(t, "t|<user>|<time>|<poster>", &st)
	subs := mustParse(t, "s|<user>|<poster>", &st)
	posts := mustParse(t, "p|<poster>|<time>", &st)

	scan := keys.Range{Lo: "t|ann|100|", Hi: keys.PrefixEnd("t|ann|")}
	b, _ := out.ScanBinding(scan)

	// §3.1: "Pequod can limit its examination of subscriptions to the
	// range [s|ann|, s|ann|+)".
	sr := ContainingRange(subs, out, b, scan)
	if sr.Lo != "s|ann|" || sr.Hi != "s|ann}" {
		t.Fatalf("subscription containing range = %v", sr)
	}

	// "...the minimal containing range for the p source would be
	// [p|bob|100, p|bob|+)" — after binding poster=bob. (The paper's
	// scan lower bound t|ann|100 and ours t|ann|100| differ only in the
	// trailing separator; both map onto the post range the same way.)
	b2, ok := subs.Match("s|ann|bob", b)
	if !ok {
		t.Fatal("subscription match")
	}
	pr := ContainingRange(posts, out, b2, scan)
	if pr.Lo != "p|bob|100" || pr.Hi != "p|bob}" {
		t.Fatalf("post containing range = %v", pr)
	}

	// Time-bounded scan clips both ends: [t|ann|100, t|ann|200) →
	// [p|bob|100, p|bob|200).
	scan2 := keys.Range{Lo: "t|ann|100", Hi: "t|ann|200"}
	b3, _ := out.ScanBinding(scan2)
	b3, _ = subs.Match("s|ann|bob", b3)
	pr2 := ContainingRange(posts, out, b3, scan2)
	if pr2.Lo != "p|bob|100" || pr2.Hi != "p|bob|200" {
		t.Fatalf("bounded post containing range = %v", pr2)
	}
}

func TestContainingRangeCrossTimeline(t *testing.T) {
	// "we correctly implement queries like [t|ann|100,t|bob|200) and
	// [t|a,t|b) that cross multiple timelines."
	var st SlotTable
	out := mustParse(t, "t|<user>|<time>|<poster>", &st)
	subs := mustParse(t, "s|<user>|<poster>", &st)

	scan := keys.Range{Lo: "t|a", Hi: "t|b"}
	b, _ := out.ScanBinding(scan)
	sr := ContainingRange(subs, out, b, scan)
	// user is range-constrained [a, b): subscriptions clip to [s|a, s|b).
	if sr.Lo != "s|a" || sr.Hi != "s|b" {
		t.Fatalf("cross-timeline subscription range = %v", sr)
	}
}

func TestContainingRangeFullyBound(t *testing.T) {
	var st SlotTable
	out := mustParse(t, "page|<author>|<id>|k|<cid>|<commenter>", &st)
	karma := mustParse(t, "karma|<commenter>", &st)
	b := Binding{}.With(st.Lookup("commenter"), "liz")
	r := ContainingRange(karma, out, b, keys.Range{Lo: "page|", Hi: "page}"})
	if r.Lo != "karma|liz" || r.Hi != "karma|liz\x00" {
		t.Fatalf("point containing range = %v", r)
	}
}

func TestContainingRangeDisjointScan(t *testing.T) {
	var st SlotTable
	out := mustParse(t, "t|<user>|<time>", &st)
	posts := mustParse(t, "p|<user>|<time>", &st)
	// Scan is entirely below the binding's output prefix.
	b := Binding{}.With(0, "zed")
	r := ContainingRange(posts, out, b, keys.Range{Lo: "t|ann|", Hi: "t|ann}"})
	if !r.Empty() {
		t.Fatalf("scan below binding should be empty, got %v", r)
	}
	// Entirely above.
	b = Binding{}.With(0, "ann")
	r = ContainingRange(posts, out, b, keys.Range{Lo: "t|bob|", Hi: "t|bob}"})
	if !r.Empty() {
		t.Fatalf("scan above binding should be empty, got %v", r)
	}
}

// TestContainingRangeIsContaining is the package's central property test:
// for random universes of fixed-width component values, every source key
// that produces an output key inside the scan range must lie inside the
// computed containing range.
func TestContainingRangeIsContaining(t *testing.T) {
	var st SlotTable
	out := mustParse(t, "t|<user:2>|<time:3>|<poster:2>", &st)
	subs := mustParse(t, "s|<user:2>|<poster:2>", &st)
	posts := mustParse(t, "p|<poster:2>|<time:3>", &st)

	rng := rand.New(rand.NewSource(99))
	users := []string{"aa", "ab", "ba", "zz"}
	times := []string{"100", "150", "200", "999"}

	randKeyish := func() string {
		u := users[rng.Intn(len(users))]
		tm := times[rng.Intn(len(times))]
		p := users[rng.Intn(len(users))]
		forms := []string{
			"t|" + u + "|" + tm + "|" + p,
			"t|" + u + "|" + tm,
			"t|" + u + "|",
			"t|" + u,
			keys.PrefixEnd("t|" + u + "|"),
			"t|",
			"t}",
		}
		return forms[rng.Intn(len(forms))]
	}

	for trial := 0; trial < 5000; trial++ {
		lo, hi := randKeyish(), randKeyish()
		if hi < lo {
			lo, hi = hi, lo
		}
		scan := keys.Range{Lo: lo, Hi: hi}
		b, _ := out.ScanBinding(scan)

		// Enumerate the full cross product and verify containment.
		for _, su := range users {
			for _, sp := range users {
				skey := "s|" + su + "|" + sp
				sb, ok := subs.Match(skey, b)
				if !ok {
					continue
				}
				for _, tm := range times {
					pkey := "p|" + sp + "|" + tm
					pb, ok := posts.Match(pkey, sb)
					if !ok {
						continue
					}
					okey, ok := out.BuildKey(pb)
					if !ok || !scan.Contains(okey) {
						continue
					}
					// This (skey, pkey) pair contributes; both must be
					// inside their containing ranges.
					srange := ContainingRange(subs, out, b, scan)
					if !srange.Contains(skey) {
						t.Fatalf("scan %v: source %q escapes subs containing range %v", scan, skey, srange)
					}
					prange := ContainingRange(posts, out, sb, scan)
					if !prange.Contains(pkey) {
						t.Fatalf("scan %v: source %q escapes posts containing range %v (binding after %q)",
							scan, pkey, prange, skey)
					}
				}
			}
		}
	}
}

// TestContainingRangeMinimality spot-checks that bound transfer actually
// narrows ranges (the optimization §3.1 exists for).
func TestContainingRangeMinimality(t *testing.T) {
	var st SlotTable
	out := mustParse(t, "t|<user>|<time:3>|<poster>", &st)
	posts := mustParse(t, "p|<poster>|<time:3>", &st)
	scan := keys.Range{Lo: "t|ann|150|", Hi: "t|ann|300|"}
	b := Binding{}.With(st.Lookup("user"), "ann").With(st.Lookup("poster"), "bob")
	r := ContainingRange(posts, out, b, scan)
	if !strings.HasPrefix(r.Lo, "p|bob|150") || r.Hi >= "p|bob|301" {
		t.Fatalf("bound transfer failed: %v", r)
	}
	for _, tm := range []string{"100", "149"} {
		if r.Contains("p|bob|" + tm) {
			t.Fatalf("range %v should exclude time %s", r, tm)
		}
	}
	for _, tm := range []string{"150", "299"} {
		if !r.Contains("p|bob|" + tm) {
			t.Fatalf("range %v should include time %s", r, tm)
		}
	}
}

func TestBindingString(t *testing.T) {
	var st SlotTable
	mustParse(t, "t|<user>|<time>", &st)
	b := Binding{}.With(0, "ann")
	if got := b.String(&st); got != `{user="ann"}` {
		t.Fatalf("String = %s", got)
	}
}

func TestTruncComps(t *testing.T) {
	cases := []struct {
		s    string
		n    int
		want string
	}{
		{"100|zed|x", 1, "100"},
		{"100|zed|x", 2, "100|zed"},
		{"100|zed|x", 3, "100|zed|x"},
		{"100", 2, "100"},
	}
	for _, c := range cases {
		if got := truncComps(c.s, c.n); got != c.want {
			t.Errorf("truncComps(%q,%d) = %q want %q", c.s, c.n, got, c.want)
		}
	}
}

func TestPointRange(t *testing.T) {
	r := PointRange("k")
	if !r.Contains("k") || r.Contains("k\x00x") || r.Contains("j") {
		t.Fatalf("PointRange = %v", r)
	}
}

func BenchmarkMatch(b *testing.B) {
	var st SlotTable
	p, _ := Parse("t|<user>|<time>|<poster>", &st)
	key := "t|u00012345|0000001234|u00099999"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Match(key, Binding{})
	}
}

func BenchmarkContainingRange(b *testing.B) {
	var st SlotTable
	out, _ := Parse("t|<user>|<time>|<poster>", &st)
	posts, _ := Parse("p|<poster>|<time>", &st)
	scan := keys.Range{Lo: "t|ann|100|", Hi: keys.PrefixEnd("t|ann|")}
	bind := Binding{}.With(0, "ann").With(2, "bob")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ContainingRange(posts, out, bind, scan)
	}
}

func ExampleContainingRange() {
	var st SlotTable
	out, _ := Parse("t|<user>|<time>|<poster>", &st)
	subs, _ := Parse("s|<user>|<poster>", &st)
	posts, _ := Parse("p|<poster>|<time>", &st)
	scan := keys.Range{Lo: "t|ann|100|", Hi: keys.PrefixEnd("t|ann|")}
	b, _ := out.ScanBinding(scan)     // {user=ann}
	b, _ = subs.Match("s|ann|bob", b) // {user=ann, poster=bob}
	fmt.Println(ContainingRange(posts, out, b, scan))
	// Output: [p|bob|100, p|bob})
}
